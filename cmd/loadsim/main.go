// Command loadsim runs one load-balancing negotiation and prints the full
// per-round trace — the textual counterpart of the prototype's GUI screens
// in Figures 6-9 of the paper.
//
// Usage:
//
//	loadsim                          # the paper's Figures 6-9 scenario
//	loadsim -scenario population -n 50 -seed 7
//	loadsim -method offer            # compare announcement methods
//	loadsim -beta 3 -adaptive        # negotiation-speed experiments
//	loadsim -drop 0.1 -round-timeout 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"loadbalance"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	var (
		scenario     = fs.String("scenario", "paper", "scenario: paper | population")
		n            = fs.Int("n", 50, "population size (population scenario)")
		seed         = fs.Int64("seed", 1, "random seed")
		method       = fs.String("method", "reward_table", "method: reward_table | offer | request_for_bids | auto")
		beta         = fs.Float64("beta", 0, "override beta (0 keeps the scenario default)")
		adaptive     = fs.Bool("adaptive", false, "enable adaptive beta (Section 7 extension)")
		drop         = fs.Float64("drop", 0, "message drop rate in [0,1]")
		roundTimeout = fs.Duration("round-timeout", 0, "close rounds on timeout (required with -drop)")
		margin       = fs.Float64("margin", 0.2, "customer profit margin (population scenario)")
		verifyTrace  = fs.Bool("verify", true, "verify the trace against the protocol properties")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		s   loadbalance.Scenario
		err error
	)
	switch *scenario {
	case "paper":
		s, err = loadbalance.PaperScenario()
	case "population":
		s, err = loadbalance.PopulationScenario(loadbalance.PopulationConfig{
			N: *n, Seed: *seed, Margin: *margin,
		})
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	switch *method {
	case "reward_table":
		s.Method = loadbalance.MethodRewardTable
	case "offer":
		s.Method = loadbalance.MethodOffer
	case "request_for_bids":
		s.Method = loadbalance.MethodRequestForBids
	case "auto":
		s.Method = loadbalance.MethodAuto
		s.LeadTime = 2 * time.Hour
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if *beta > 0 {
		s.Params.Beta = *beta
	}
	s.Params.AdaptiveBeta = *adaptive
	s.DropRate = *drop
	s.RoundTimeout = *roundTimeout
	s.Seed = *seed

	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(loadbalance.Render(res))

	if *verifyTrace && s.Method == utilityagent.MethodRewardTable && len(res.History) > 0 {
		rep := loadbalance.VerifyTrace(res, s.Params)
		if rep.OK() {
			fmt.Printf("\nverified %d protocol properties: all hold\n", len(rep.Checked))
		} else {
			return fmt.Errorf("trace violates protocol properties: %w", rep.Error())
		}
	}
	return nil
}
