package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Segment header: a 5-byte magic and a one-byte format version. A segment
// whose version byte is unknown ends the log there on recovery (forward
// compatibility without guessing at an unknown frame layout).
const (
	segMagic   = "LBWAL"
	segVersion = byte(1)
	headerSize = len(segMagic) + 1
)

// segmentName renders the file name of the segment whose first record has
// the given sequence number.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// segmentFirstSeq parses a segment file name back into its first sequence
// number.
func segmentFirstSeq(path string) (uint64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// journalWriter appends record frames to the current segment through one
// buffered writer, rotating to a new segment file at the size threshold.
type journalWriter struct {
	dir     string
	opts    Options
	f       *os.File
	w       *bufio.Writer
	segPath string
	nextSeq uint64
	bytes   int64 // bytes appended to the current segment (including header)
	scratch []byte
	didRot  bool
}

// writerBufSize keeps a whole live tick's records (checkpoint plus a
// re-negotiation outcome) inside one flush, so a commit is one write
// syscall.
const writerBufSize = 256 << 10

// newJournalWriter starts a fresh segment whose first record will carry
// firstSeq. A zero-record leftover segment with the same name (a crash
// between segment creation and the first append) is simply overwritten.
func newJournalWriter(dir string, firstSeq uint64, opts Options) (*journalWriter, error) {
	jw := &journalWriter{dir: dir, opts: opts, nextSeq: firstSeq}
	if err := jw.openSegment(); err != nil {
		return nil, err
	}
	return jw, nil
}

// openSegment creates the segment file for nextSeq and writes its header.
// The directory entry is fsynced too: a machine crash after rotation must
// not lose the new segment's existence.
func (jw *journalWriter) openSegment() error {
	path := filepath.Join(jw.dir, segmentName(jw.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	if err := syncDir(jw.dir); err != nil {
		f.Close()
		return err
	}
	jw.f = f
	jw.segPath = path
	jw.w = bufio.NewWriterSize(f, writerBufSize)
	if _, err := jw.w.WriteString(segMagic); err != nil {
		return err
	}
	if err := jw.w.WriteByte(segVersion); err != nil {
		return err
	}
	jw.bytes = int64(headerSize)
	return nil
}

// path returns the current segment's file path.
func (jw *journalWriter) path() string { return jw.segPath }

// append encodes one record into the segment, rotating first if the current
// segment is full. It returns the frame size. rotated() reports whether this
// append rotated, so the store can count it.
func (jw *journalWriter) append(r Record) (int, error) {
	jw.didRot = false
	if jw.bytes >= jw.opts.SegmentBytes {
		if err := jw.rotate(); err != nil {
			return 0, err
		}
		jw.didRot = true
	}
	jw.scratch = appendFrame(jw.scratch[:0], r)
	if _, err := jw.w.Write(jw.scratch); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	jw.bytes += int64(len(jw.scratch))
	jw.nextSeq++
	return len(jw.scratch), nil
}

// appendRaw writes one already-encoded frame (checksum verified by the
// caller) into the segment, rotating first if the current segment is full —
// the replica path, which persists a primary's frames byte-exactly.
func (jw *journalWriter) appendRaw(frame []byte) error {
	jw.didRot = false
	if jw.bytes >= jw.opts.SegmentBytes {
		if err := jw.rotate(); err != nil {
			return err
		}
		jw.didRot = true
	}
	if _, err := jw.w.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	jw.bytes += int64(len(frame))
	jw.nextSeq++
	return nil
}

// rotated reports whether the last append opened a new segment.
func (jw *journalWriter) rotated() bool { return jw.didRot }

// rotate seals the current segment (flush + fsync + close) and opens the
// next one.
func (jw *journalWriter) rotate() error {
	if err := jw.sync(); err != nil {
		return err
	}
	if err := jw.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return jw.openSegment()
}

// flush pushes the buffer to the file in (at most) one write.
func (jw *journalWriter) flush() error {
	if err := jw.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// sync flushes and fsyncs the segment.
func (jw *journalWriter) sync() error {
	if err := jw.flush(); err != nil {
		return err
	}
	if err := jw.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	return nil
}

// close flushes and closes the segment file without fsync (callers sync
// first when they need durability).
func (jw *journalWriter) close() error {
	if err := jw.flush(); err != nil {
		return err
	}
	return jw.f.Close()
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable against machine crash, not just process crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}
