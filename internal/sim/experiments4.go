package sim

import (
	"fmt"
	"math"
	"time"

	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
)

// E11ClusterScale measures the hierarchical sharded negotiation against the
// flat engine: for each fleet size it negotiates the same seeded synthetic
// scenario once flat and once per shard count, and reports rounds, total
// messages, wall time, the speedup over flat and the convergence outcome.
// Aggregate predicted overuse must agree between flat and every tree (the
// concentrators' additive aggregation preserves the paper's conditions (1)
// and (2)); the row's overuse_match column records that check.
//
// Sized for the ROADMAP's scaling question: sizes of 1k/10k/100k customers
// show the root's per-round cost dropping from O(N) to O(K) while shards run
// in parallel.
func E11ClusterScale(sizes, shardCounts []int, seed int64) (*Table, error) {
	if len(sizes) == 0 || len(shardCounts) == 0 {
		return nil, fmt.Errorf("cluster scale: empty sweep")
	}
	t := &Table{
		Name:    "E11ClusterScale: flat vs hierarchical sharded negotiation",
		Columns: []string{"customers", "shards", "rounds", "messages", "elapsed_ms", "speedup", "final_overuse_ratio", "overuse_match", "outcome"},
		Notes:   "shards=flat is the single-bus baseline; overuse_match compares each tree's final overuse to flat within 1e-6 kWh",
	}
	for _, n := range sizes {
		s, err := core.SyntheticScenario(core.SyntheticConfig{N: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		s.Timeout = 10 * time.Minute
		flat, err := core.Run(s)
		if err != nil {
			return nil, fmt.Errorf("flat n=%d: %w", n, err)
		}
		flatMS := float64(flat.Elapsed.Microseconds()) / 1000
		t.AddRowF(n, "flat", flat.Rounds, flat.Bus.Sent, flatMS, 1.0, flat.FinalOveruseRatio, "-", flat.Outcome)

		for _, k := range shardCounts {
			res, err := cluster.Run(cluster.Config{Scenario: s, Shards: k})
			if err != nil {
				return nil, fmt.Errorf("n=%d shards=%d: %w", n, k, err)
			}
			match := "yes"
			if math.Abs(res.FinalOveruseKWh-flat.FinalOveruseKWh) > 1e-6 {
				match = fmt.Sprintf("no (Δ%.3g kWh)", res.FinalOveruseKWh-flat.FinalOveruseKWh)
			}
			speedup := 0.0
			if res.Elapsed > 0 {
				speedup = float64(flat.Elapsed) / float64(res.Elapsed)
			}
			t.AddRowF(n, k, res.Rounds, res.Messages(), float64(res.Elapsed.Microseconds())/1000,
				speedup, res.FinalOveruseRatio, match, res.Outcome)
		}
	}
	return t, nil
}
