package kb

// Persistence for information states: a Store's facts round-trip through a
// deterministic JSON document, so an agent's knowledge survives restarts
// alongside the grid's negotiation journal. The format is explicit about
// term kinds (a constant and a string are different terms even when they
// print alike) and loading validates every fact — against the ontology when
// one is supplied — so a damaged or hand-edited document can never smuggle
// ill-formed facts into an information state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrBadDocument reports a persisted information state that cannot be
// decoded.
var ErrBadDocument = errors.New("kb: bad information-state document")

// savedTerm is one term's on-disk form.
type savedTerm struct {
	Kind string  `json:"kind"` // "const" | "number" | "string"
	Name string  `json:"name,omitempty"`
	Num  float64 `json:"num,omitempty"`
	Str  string  `json:"str,omitempty"`
}

// savedFact is one fact's on-disk form.
type savedFact struct {
	Pred  string      `json:"pred"`
	Args  []savedTerm `json:"args"`
	Truth string      `json:"truth"` // "true" | "false"
}

// savedState is the document: a format tag plus the facts in deterministic
// (key-sorted) order.
type savedState struct {
	Format string      `json:"format"`
	Facts  []savedFact `json:"facts"`
}

// stateFormat tags the document so future layouts can coexist.
const stateFormat = "kb-state-1"

// saveTerm converts a ground term.
func saveTerm(t Term) (savedTerm, error) {
	switch t.Kind {
	case KindConst:
		return savedTerm{Kind: "const", Name: t.Name}, nil
	case KindNumber:
		return savedTerm{Kind: "number", Num: t.Num}, nil
	case KindString:
		return savedTerm{Kind: "string", Str: t.Str}, nil
	default:
		return savedTerm{}, fmt.Errorf("%w: variable %q in stored fact", ErrNotGround, t.Name)
	}
}

// loadTerm converts back.
func (s savedTerm) term() (Term, error) {
	switch s.Kind {
	case "const":
		if s.Name == "" {
			return Term{}, fmt.Errorf("%w: constant with no name", ErrBadDocument)
		}
		return C(s.Name), nil
	case "number":
		return N(s.Num), nil
	case "string":
		return S(s.Str), nil
	default:
		return Term{}, fmt.Errorf("%w: term kind %q", ErrBadDocument, s.Kind)
	}
}

// Save renders the store's facts as one JSON document. The encoding is
// deterministic: facts appear in the store's key-sorted order.
func (s *Store) Save(w io.Writer) error {
	doc := savedState{Format: stateFormat}
	for _, f := range s.Facts() {
		sf := savedFact{Pred: f.Atom.Pred, Truth: f.Truth.String()}
		for _, t := range f.Atom.Args {
			st, err := saveTerm(t)
			if err != nil {
				return err
			}
			sf.Args = append(sf.Args, st)
		}
		doc.Facts = append(doc.Facts, sf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadStore loads an information state written by Save. With a non-nil
// ontology every fact is validated against it, exactly as a live Assert
// would be; ill-typed facts fail the load rather than entering the state.
func ReadStore(r io.Reader, ont *Ontology) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kb: read state: %w", err)
	}
	var doc savedState
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if doc.Format != stateFormat {
		return nil, fmt.Errorf("%w: format %q", ErrBadDocument, doc.Format)
	}
	out := NewStore(ont)
	for _, sf := range doc.Facts {
		if sf.Pred == "" {
			return nil, fmt.Errorf("%w: fact with no predicate", ErrBadDocument)
		}
		var tv Truth
		switch sf.Truth {
		case True.String():
			tv = True
		case False.String():
			tv = False
		default:
			return nil, fmt.Errorf("%w: truth value %q", ErrBadDocument, sf.Truth)
		}
		a := Atom{Pred: sf.Pred}
		for _, st := range sf.Args {
			t, err := st.term()
			if err != nil {
				return nil, err
			}
			a.Args = append(a.Args, t)
		}
		if err := out.Assert(a, tv); err != nil {
			return nil, err
		}
	}
	return out, nil
}
