// Command gridctl is the fleet operator console: it reads the /fleet
// endpoints a hub-hosting gridd daemon serves and renders them for a
// terminal.
//
//	gridctl -addr host:port top   [-interval 2s] [-n 0]
//	gridctl -addr host:port logs  [-f] [-level warn] [-proc p] [-component c] [-limit 50]
//	gridctl -addr host:port trace <session> [-limit N]
//
// top polls /fleet/status and renders the per-process table (score, replica
// lag, tick p95, batch age). logs dumps /fleet/logs once, or follows it with
// -f using the afterUs cursor so each event prints exactly once. trace
// fetches the stitched /fleet/trace for a session and prints the span tree.
// -addr defaults to $GRIDCTL_ADDR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"loadbalance/internal/obsplane"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return usageError()
	}
	// Accept -addr before the subcommand too (gridctl -addr X top).
	global := flag.NewFlagSet("gridctl", flag.ContinueOnError)
	global.SetOutput(io.Discard)
	addr := global.String("addr", os.Getenv("GRIDCTL_ADDR"), "host:port of the hub daemon's HTTP endpoint")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usageError()
	}
	cmd, rest := rest[0], rest[1:]
	c := &client{w: w, addr: addr}
	switch cmd {
	case "top":
		return c.top(rest)
	case "logs":
		return c.logs(rest)
	case "trace":
		return c.trace(rest)
	case "plot":
		return c.plot(rest)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

const usage = `usage:
  gridctl -addr host:port top   [-interval 2s] [-n 0] [-watch]
  gridctl -addr host:port logs  [-f] [-level warn] [-proc p] [-component c] [-limit 50]
  gridctl -addr host:port trace <session> [-limit N]
  gridctl -addr host:port plot  <series> [-from -60s] [-to 0s] [-step 1s] [-height 8] [-local]

plot renders a range query as a terminal chart. <series> is a /fleet/query
expression — a series name or rate()/increase()/avg_over_time()/
max_over_time() over one, e.g. 'rate(negotiation_session_seconds_count{proc="gridd-cc-000"}[10s])'.
-local queries the daemon's own /query history instead of the fleet's.
top -watch adds per-proc score and session-rate trend sparklines from the
fleet history.`

func usageError() error { return fmt.Errorf("no command\n%s", usage) }

// client holds the target address and output sink shared by the
// subcommands. addr points at the flag so a subcommand may also accept
// -addr after its name.
type client struct {
	w    io.Writer
	addr *string
}

// flags builds a subcommand flag set that re-registers -addr, so both
// `gridctl -addr X top` and `gridctl top -addr X` work.
func (c *client) flags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(c.addr, "addr", *c.addr, "host:port of the hub daemon's HTTP endpoint")
	return fs
}

// get fetches one /fleet document into out.
func (c *client) get(path string, out any) error {
	if *c.addr == "" {
		return fmt.Errorf("no hub address: pass -addr or set GRIDCTL_ADDR")
	}
	url := "http://" + *c.addr + path
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusDoc mirrors /fleet/status.
type statusDoc struct {
	FleetScore float64               `json:"fleetScore"`
	SilenceAge float64               `json:"silenceAge"`
	Procs      []obsplane.ProcStatus `json:"procs"`
}

// top renders the fleet table; -n bounds the refresh count (0 = forever,
// 1 = print once and exit). -watch appends per-proc trend sparklines
// (score and negotiation-session rate) read from the hub's /fleet/query
// history.
func (c *client) top(args []string) error {
	fs := c.flags("top")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	n := fs.Int("n", 1, "refreshes before exiting (0 = forever)")
	watch := fs.Bool("watch", false, "show score and session-rate trends from fleet history")
	window := fs.Duration("window", time.Minute, "trend window with -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; ; i++ {
		var doc statusDoc
		if err := c.get("/fleet/status", &doc); err != nil {
			return err
		}
		fmt.Fprintf(c.w, "fleet score %.1f  procs %d  silence %.1fs\n",
			doc.FleetScore, len(doc.Procs), doc.SilenceAge)
		fmt.Fprintf(c.w, "%-20s %-12s %7s %8s %10s %8s %8s %6s",
			"PROC", "ROLE", "SCORE", "LAG", "TICK_P95", "BATCHES", "AGE", "STATE")
		if *watch {
			fmt.Fprintf(c.w, "  %-16s %-16s", "SCORE_TREND", "SESSIONS/S")
		}
		fmt.Fprintln(c.w)
		for _, p := range doc.Procs {
			state := "live"
			if p.Closed {
				state = "closed"
			}
			fmt.Fprintf(c.w, "%-20s %-12s %7.1f %8.0f %9.3fs %8d %7.1fs %6s",
				p.Proc, p.Role, p.Score, p.Lag, p.TickP95, p.Batches, p.LastBatchAge, state)
			if *watch {
				fmt.Fprintf(c.w, "  %-16s %-16s",
					c.trend(fmt.Sprintf("feedback_score{proc=%q}", p.Proc), *window),
					c.trend(fmt.Sprintf("rate(negotiation_session_seconds_count{proc=%q}[10s])", p.Proc), *window))
			}
			fmt.Fprintln(c.w)
		}
		if *n > 0 && i+1 >= *n {
			return nil
		}
		time.Sleep(*interval)
	}
}

// queryDoc mirrors the /query and /fleet/query response body.
type queryDoc struct {
	Series string       `json:"series"`
	FromUs int64        `json:"fromUs"`
	ToUs   int64        `json:"toUs"`
	StepUs int64        `json:"stepUs"`
	Points []tsdb.Point `json:"points"`
}

// rangeQuery fetches one range query from path (/query or /fleet/query).
func (c *client) rangeQuery(path, series, from, to, step string) (queryDoc, error) {
	v := url.Values{}
	v.Set("series", series)
	v.Set("from", from)
	v.Set("to", to)
	v.Set("step", step)
	var doc queryDoc
	err := c.get(path+"?"+v.Encode(), &doc)
	return doc, err
}

// trend renders a one-line sparkline of a fleet series over the trailing
// window, or "-" when the hub has no history for it.
func (c *client) trend(series string, window time.Duration) string {
	doc, err := c.rangeQuery("/fleet/query", series,
		"-"+window.String(), "0s", (window / 16).String())
	if err != nil || len(doc.Points) == 0 {
		return "-"
	}
	vals := make([]float64, len(doc.Points))
	for i, p := range doc.Points {
		vals[i] = p.Value
	}
	return sparkline(vals, 16)
}

// sparkBlocks are the eight partial-height block characters a sparkline
// cell maps a normalized value onto.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals as a width-bounded run of block characters
// normalized to the series' own min..max (a flat series renders low).
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}

// plot renders one range query as a terminal chart: a block-character
// column per step, scaled to the series' own range, with axis labels.
func (c *client) plot(args []string) error {
	fs := c.flags("plot")
	from := fs.String("from", "-60s", "range start (duration back from now, or unix µs)")
	to := fs.String("to", "0s", "range end")
	step := fs.String("step", "1s", "step between points")
	height := fs.Int("height", 8, "chart height in rows")
	local := fs.Bool("local", false, "query the daemon's own /query instead of /fleet/query")
	// The documented shape is series-first (plot <series> -from -5m); stdlib
	// flag parsing stops at the first positional, so lift it out before Parse
	// while still accepting flags-first.
	series := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		series, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if series == "" && fs.NArg() == 1 {
		series = fs.Arg(0)
	} else if fs.NArg() != 0 {
		return fmt.Errorf("plot wants exactly one series argument\n%s", usage)
	}
	if series == "" {
		return fmt.Errorf("plot wants exactly one series argument\n%s", usage)
	}
	path := "/fleet/query"
	if *local {
		path = "/query"
	}
	doc, err := c.rangeQuery(path, series, *from, *to, *step)
	if err != nil {
		return err
	}
	if len(doc.Points) == 0 {
		fmt.Fprintf(c.w, "%s: no points in range\n", doc.Series)
		return nil
	}
	renderChart(c.w, doc, *height)
	return nil
}

// renderChart draws the chart body: each point is one column, each row an
// eighth-resolved band of the value range, newest point rightmost.
func renderChart(w io.Writer, doc queryDoc, height int) {
	if height < 1 {
		height = 1
	}
	const maxCols = 72
	pts := doc.Points
	if len(pts) > maxCols {
		pts = pts[len(pts)-maxCols:]
	}
	lo, hi := pts[0].Value, pts[0].Value
	for _, p := range pts {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	// levels[i] is the column height in eighths of a row.
	levels := make([]int, len(pts))
	for i, p := range pts {
		lv := int(math.Round((p.Value - lo) / span * float64(height*8)))
		// A sliver marks every sampled point, so a flat series (or one at
		// the range floor) still draws a baseline rather than blank space.
		if lv == 0 && (p.Value > lo || hi == lo) {
			lv = 1
		}
		levels[i] = lv
	}
	fmt.Fprintf(w, "%s  [%s .. %s] step %s\n", doc.Series,
		time.UnixMicro(doc.FromUs).UTC().Format("15:04:05"),
		time.UnixMicro(doc.ToUs).UTC().Format("15:04:05"),
		time.Duration(doc.StepUs)*time.Microsecond)
	for row := height - 1; row >= 0; row-- {
		label := ""
		switch row {
		case height - 1:
			label = fmt.Sprintf("%.4g", hi)
		case 0:
			label = fmt.Sprintf("%.4g", lo)
		}
		fmt.Fprintf(w, "%10s |", label)
		for _, lv := range levels {
			eighths := lv - row*8
			switch {
			case eighths >= 8:
				fmt.Fprint(w, "█")
			case eighths >= 1:
				fmt.Fprint(w, string(sparkBlocks[eighths-1]))
			default:
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", len(pts)))
	fmt.Fprintf(w, "%10s  last %.6g  min %.6g  max %.6g  points %d\n",
		"", pts[len(pts)-1].Value, lo, hi, len(doc.Points))
}

// logs dumps or follows the merged fleet log.
func (c *client) logs(args []string) error {
	fs := c.flags("logs")
	follow := fs.Bool("f", false, "follow: poll for new events")
	level := fs.String("level", "", "minimum level (debug|info|warn|error)")
	proc := fs.String("proc", "", "only this process")
	component := fs.String("component", "", "only this component")
	limit := fs.Int("limit", 50, "newest N events on the first fetch")
	interval := fs.Duration("interval", time.Second, "poll interval with -f")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "/fleet/logs?"
	q := make([]string, 0, 4)
	if *level != "" {
		q = append(q, "level="+*level)
	}
	if *proc != "" {
		q = append(q, "proc="+*proc)
	}
	if *component != "" {
		q = append(q, "component="+*component)
	}
	var afterUs int64
	first := true
	for {
		params := q
		if first && *limit > 0 {
			params = append(params, fmt.Sprintf("limit=%d", *limit))
		}
		if afterUs > 0 {
			params = append(params, fmt.Sprintf("afterUs=%d", afterUs))
		}
		var doc obsplane.FleetLogsDoc
		if err := c.get(base+strings.Join(params, "&"), &doc); err != nil {
			return err
		}
		for _, ev := range doc.Events {
			line := fmt.Sprintf("%s %-5s [%s] %s: %s",
				time.UnixMicro(ev.TsUs).UTC().Format("15:04:05.000"),
				strings.ToUpper(ev.Level), ev.Proc, ev.Component, ev.Msg)
			if len(ev.Fields) > 2 { // more than "{}"
				line += " " + string(ev.Fields)
			}
			fmt.Fprintln(c.w, line)
			if ev.TsUs > afterUs {
				afterUs = ev.TsUs
			}
		}
		if !*follow {
			return nil
		}
		first = false
		time.Sleep(*interval)
	}
}

// trace prints the stitched span tree of one session.
func (c *client) trace(args []string) error {
	fs := c.flags("trace")
	limit := fs.Int("limit", 0, "newest N spans (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace wants exactly one session argument\n%s", usage)
	}
	session := fs.Arg(0)
	path := "/fleet/trace?session=" + session
	if *limit > 0 {
		path += fmt.Sprintf("&limit=%d", *limit)
	}
	var doc obsplane.FleetTraceDoc
	if err := c.get(path, &doc); err != nil {
		return err
	}
	fmt.Fprintf(c.w, "session %s: %d spans from %d processes %v (missed %d)\n",
		session, len(doc.Spans), len(doc.Procs), doc.Procs, doc.Missed)
	printTree(c.w, doc.Spans)
	return nil
}

// printTree renders spans as an indented forest: children group under their
// parent, orphans (parent outside the document) and roots print flush left.
func printTree(w io.Writer, spans []trace.Record) {
	children := make(map[string][]int, len(spans))
	have := make(map[string]bool, len(spans))
	for i := range spans {
		have[spans[i].Span] = true
	}
	var roots []int
	for i := range spans {
		if p := spans[i].Parent; p != "" && have[p] {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].StartUs < spans[idx[b]].StartUs })
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		r := &spans[i]
		fmt.Fprintf(w, "%s%s  %.3fms  proc=%s", strings.Repeat("  ", depth), r.Name,
			float64(r.DurUs)/1e3, r.Proc)
		if r.Agent != "" {
			fmt.Fprintf(w, " agent=%s", r.Agent)
		}
		if r.Shard != "" {
			fmt.Fprintf(w, " shard=%s", r.Shard)
		}
		fmt.Fprintln(w)
		kids := children[r.Span]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, i := range roots {
		walk(i, 0)
	}
}
