// Methods compares the paper's three announcement methods (Section 3.2) on
// one synthetic fleet of households: the one-shot offer, the iterated
// request for bids, and the announced reward tables of the prototype.
//
// Expected shape (Section 3.2.4): the offer is fastest but gives customers
// no influence and discounts everyone; the reward-table method iterates a
// few rounds and pays only for the savings it needs.
package main

import (
	"fmt"
	"log"
	"time"

	"loadbalance"
	"loadbalance/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const fleet = 60
	fmt.Printf("comparing announcement methods on %d synthetic households\n\n", fleet)
	tab, err := sim.E5MethodComparison(fleet, 42)
	if err != nil {
		return err
	}
	fmt.Println(tab.String())

	// Also show what the auto-selector would pick at different horizons.
	for _, lead := range []string{"5m", "2h", "12h"} {
		s, err := loadbalance.PopulationScenario(loadbalance.PopulationConfig{
			N: fleet, Seed: 42, Margin: 0.2, Method: loadbalance.MethodAuto,
		})
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(lead)
		if err != nil {
			return err
		}
		s.LeadTime = d
		res, err := loadbalance.Run(s)
		if err != nil {
			return err
		}
		fmt.Printf("auto with %s lead time chose: %s (%s in %d rounds)\n",
			lead, res.Method, res.Outcome, res.Rounds)
	}
	return nil
}
