package obsplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// testLogger builds a quiet ring-only logger for one fake process.
func testLogger(t *testing.T, proc string, ring int) *health.Logger {
	t.Helper()
	l, err := health.New(health.Config{Proc: proc, MinLevel: health.Debug, RingSize: ring, StderrLevel: health.Off})
	if err != nil {
		t.Fatalf("health.New: %v", err)
	}
	return l
}

// getJSON fetches one fleet document from the test server.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// TestHubMergeAndEndpoints drives two emitters into a hub and checks every
// /fleet surface: status rows, merged logs with all filters, the stitched
// trace with session and trace-id filters, and the relabelled metrics page.
func TestHubMergeAndEndpoints(t *testing.T) {
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: testLogger(t, "hub", 256)})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	defer hub.Close()

	// Process w1: a session trace, an info log, and a metrics page with
	// labels, a histogram bucket (must be skipped) and a comment line.
	log1 := testLogger(t, "w1", 256)
	tr1 := trace.NewTracer("w1", 256)
	root := tr1.Root("session.run")
	root.SetSession("s1")
	child := tr1.Child(root.Context(), "phase.negotiate")
	child.SetSession("s1")
	child.End()
	root.End()
	other := tr1.Root("background.tick")
	other.End()
	log1.Log(health.Info, "comp1", "hello from w1", health.Str("k", "v"))
	e1 := StartEmitter(EmitterConfig{
		Hub: hub.Addr(), Proc: "w1", Role: "worker", Addr: "127.0.0.1:1111",
		Interval: 10 * time.Millisecond,
		Logger:   log1,
		Tracer:   func() *trace.Tracer { return tr1 },
		MetricsFn: func(w io.Writer) {
			fmt.Fprint(w, "# TYPE feedback_score gauge\n")
			fmt.Fprint(w, "feedback_score 90\n")
			fmt.Fprint(w, "replica_lag_records 3\n")
			fmt.Fprint(w, "grid_tick_seconds_p95 0.01\n")
			fmt.Fprint(w, "shard_load{shard=\"2\"} 5\n")
			fmt.Fprint(w, "tick_seconds_bucket{le=\"0.1\"} 7\n")
		},
	})
	defer e1.Close()

	// Process w2: a warn log and a plain score.
	log2 := testLogger(t, "w2", 256)
	tr2 := trace.NewTracer("w2", 256)
	sp := tr2.Root("apply.journal")
	sp.End()
	log2.Log(health.Warn, "comp2", "warn from w2")
	e2 := StartEmitter(EmitterConfig{
		Hub: hub.Addr(), Proc: "w2", Role: "standby",
		Interval:  10 * time.Millisecond,
		Logger:    log2,
		Tracer:    func() *trace.Tracer { return tr2 },
		MetricsFn: func(w io.Writer) { fmt.Fprint(w, "feedback_score 70\n") },
	})
	defer e2.Close()

	waitFor(t, 5*time.Second, func() bool {
		st := hub.Status()
		if len(st) != 2 {
			return false
		}
		return st[0].Spans >= 3 && st[0].Logs >= 1 && st[0].Score == 90 &&
			st[1].Spans >= 1 && st[1].Logs >= 1 && st[1].Score == 70
	}, "both processes merged")

	if got := hub.FleetScore(); got != 80 {
		t.Fatalf("FleetScore = %v, want 80 (mean of 90 and 70)", got)
	}
	st := hub.Status()
	if st[0].Proc != "w1" || st[1].Proc != "w2" {
		t.Fatalf("Status not sorted by proc: %+v", st)
	}
	if st[0].Role != "worker" || st[0].Addr != "127.0.0.1:1111" || st[0].Lag != 3 || st[0].TickP95 != 0.01 {
		t.Fatalf("w1 row wrong: %+v", st[0])
	}

	mux := http.NewServeMux()
	hub.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// /fleet/status carries the score and both rows.
	var status struct {
		FleetScore float64      `json:"fleetScore"`
		Procs      []ProcStatus `json:"procs"`
	}
	getJSON(t, srv.URL+"/fleet/status", &status)
	if status.FleetScore != 80 || len(status.Procs) != 2 {
		t.Fatalf("/fleet/status = score %v, %d procs", status.FleetScore, len(status.Procs))
	}

	// /fleet/logs merges both processes; filters narrow it.
	var logs FleetLogsDoc
	getJSON(t, srv.URL+"/fleet/logs", &logs)
	if len(logs.Procs) != 2 || len(logs.Events) < 2 {
		t.Fatalf("/fleet/logs: procs %v, %d events", logs.Procs, len(logs.Events))
	}
	getJSON(t, srv.URL+"/fleet/logs?proc=w1", &logs)
	for _, ev := range logs.Events {
		if ev.Proc != "w1" {
			t.Fatalf("proc filter leaked %+v", ev)
		}
	}
	getJSON(t, srv.URL+"/fleet/logs?level=warn", &logs)
	if len(logs.Events) != 1 || logs.Events[0].Msg != "warn from w2" {
		t.Fatalf("level filter: %+v", logs.Events)
	}
	getJSON(t, srv.URL+"/fleet/logs?component=comp1", &logs)
	if len(logs.Events) != 1 || logs.Events[0].Component != "comp1" {
		t.Fatalf("component filter: %+v", logs.Events)
	}
	if len(logs.Events[0].Fields) == 0 || !strings.Contains(string(logs.Events[0].Fields), `"k"`) {
		t.Fatalf("fields not carried: %s", logs.Events[0].Fields)
	}
	// afterUs is the follow cursor: everything at or before it is excluded.
	getJSON(t, srv.URL+"/fleet/logs", &logs)
	last := logs.Events[len(logs.Events)-1].TsUs
	getJSON(t, fmt.Sprintf("%s/fleet/logs?afterUs=%d", srv.URL, last), &logs)
	if len(logs.Events) != 0 {
		t.Fatalf("afterUs cursor returned %d old events", len(logs.Events))
	}
	getJSON(t, srv.URL+"/fleet/logs?limit=1", &logs)
	if len(logs.Events) != 1 {
		t.Fatalf("limit=1 returned %d events", len(logs.Events))
	}

	// /fleet/trace stitches: the session filter keeps only s1's tree, with
	// the child's parent resolving inside the document.
	var tdoc FleetTraceDoc
	getJSON(t, srv.URL+"/fleet/trace", &tdoc)
	if len(tdoc.Spans) < 4 {
		t.Fatalf("unfiltered trace has %d spans", len(tdoc.Spans))
	}
	getJSON(t, srv.URL+"/fleet/trace?session=s1", &tdoc)
	if len(tdoc.Spans) != 2 {
		t.Fatalf("session filter: %d spans, want 2", len(tdoc.Spans))
	}
	have := map[string]bool{}
	for _, r := range tdoc.Spans {
		have[r.Span] = true
		if r.Proc != "w1" {
			t.Fatalf("session span from wrong proc: %+v", r)
		}
	}
	for _, r := range tdoc.Spans {
		if r.Parent != "" && !have[r.Parent] {
			t.Fatalf("unresolved parent %s", r.Parent)
		}
	}
	// A trace id with leading zeros stripped still matches (ParseID
	// normalisation on the filter side).
	id := tdoc.Spans[0].Trace
	getJSON(t, srv.URL+"/fleet/trace?trace="+strings.TrimLeft(id, "0"), &tdoc)
	if len(tdoc.Spans) != 2 {
		t.Fatalf("trace-id filter: %d spans, want 2", len(tdoc.Spans))
	}

	// /fleet/metrics: hub summary plus relayed samples relabelled with
	// their sender; bucket series never travel.
	resp, err := http.Get(srv.URL + "/fleet/metrics")
	if err != nil {
		t.Fatalf("GET /fleet/metrics: %v", err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"fleet_procs 2",
		"fleet_feedback_score 80",
		`obs_batches_total{proc="w1"}`,
		`obs_spans_total{proc="w2"}`,
		`feedback_score{proc="w1"} 90`,
		`shard_load{proc="w1",shard="2"} 5`,
		`feedback_score{proc="w2"} 70`,
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/fleet/metrics missing %q:\n%s", want, page)
		}
	}
	if strings.Contains(string(page), "_bucket") {
		t.Fatalf("/fleet/metrics carries a histogram bucket:\n%s", page)
	}

	// Malformed query params are 400s, not silent full dumps.
	for _, path := range []string{
		"/fleet/logs?level=nope",
		"/fleet/logs?afterUs=abc",
		"/fleet/logs?limit=-1",
		"/fleet/trace?trace=zzz",
		"/fleet/trace?limit=0",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %s, want 400", path, resp.Status)
		}
	}

	// Clean emitter shutdown ships a Closing batch: the silence gauge must
	// ignore closed processes.
	e1.Close()
	e2.Close()
	waitFor(t, 5*time.Second, func() bool {
		st := hub.Status()
		return len(st) == 2 && st[0].Closed && st[1].Closed
	}, "closing batches merged")
	if age := hub.SilenceAge(); age != 0 {
		t.Fatalf("SilenceAge = %v after clean close, want 0", age)
	}
	s1 := e1.Stats()
	if s1.Batches == 0 || s1.Acked == 0 || s1.Dials != 1 || s1.Resubscribes != 0 || s1.Sheds != 0 {
		t.Fatalf("w1 stats: %+v", s1)
	}
}

// TestEmitterReconnectAfterHubRestart kills the hub mid-stream, restarts it
// on the same address, and checks the emitter redials, re-subscribes and
// resumes shipping — the root-restart failure mode.
func TestEmitterReconnectAfterHubRestart(t *testing.T) {
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: testLogger(t, "hub", 256)})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	addr := hub.Addr()

	logger := testLogger(t, "w1", 256)
	logger.Log(health.Info, "boot", "before restart")
	em := StartEmitter(EmitterConfig{
		Hub: addr, Proc: "w1", Role: "worker",
		Interval: 10 * time.Millisecond,
		Redial:   20 * time.Millisecond,
		Logger:   logger,
		Tracer:   func() *trace.Tracer { return nil },
	})
	defer em.Close()

	waitFor(t, 5*time.Second, func() bool {
		st := hub.Status()
		return len(st) == 1 && st[0].Logs >= 1
	}, "first hub merged the boot log")
	hub.Close()

	logger.Log(health.Warn, "boot", "after restart")

	// Rebind the same address; the listener may linger briefly.
	var hub2 *Hub
	waitFor(t, 5*time.Second, func() bool {
		h, err := StartHub(HubConfig{Addr: addr, Logger: testLogger(t, "hub2", 256)})
		if err != nil {
			return false
		}
		hub2 = h
		return true
	}, "rebinding the hub address")
	defer hub2.Close()

	waitFor(t, 5*time.Second, func() bool {
		doc := hub2.mergedLogs(logFilter{})
		for _, ev := range doc.Events {
			if ev.Msg == "after restart" {
				return true
			}
		}
		return false
	}, "post-restart event reaching the new hub")

	st := em.Stats()
	if st.Dials < 2 {
		t.Fatalf("Dials = %d, want >= 2 after hub restart", st.Dials)
	}
	if st.Resubscribes < 1 {
		t.Fatalf("Resubscribes = %d, want >= 1 after hub restart", st.Resubscribes)
	}
}

// TestEmitterShedsUnderBackpressure points an emitter at a hub that never
// acks: the resend window must fill, further flushes must shed (counted),
// and the pending buffer must stay bounded at the window size.
func TestEmitterShedsUnderBackpressure(t *testing.T) {
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatalf("NewInProc: %v", err)
	}
	srv, err := bus.ListenAndServeConfig("127.0.0.1:0", inner, bus.ServerConfig{})
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	inbox, err := inner.Register(hubName, 1024)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Drain so sends never block, but never ack.
	go func() {
		for range inbox {
		}
	}()

	em := StartEmitter(EmitterConfig{
		Hub: srv.Addr(), Proc: "w1", Role: "worker",
		Interval: 5 * time.Millisecond,
		Window:   2,
		Logger:   testLogger(t, "w1", 256),
		Tracer:   func() *trace.Tracer { return nil },
	})

	waitFor(t, 5*time.Second, func() bool { return em.Stats().Sheds >= 3 }, "sheds under backpressure")
	em.mu.Lock()
	pending := len(em.pending)
	em.mu.Unlock()
	if pending > 2 {
		t.Fatalf("pending window grew to %d, want <= 2", pending)
	}
	if st := em.Stats(); st.Acked != 0 {
		t.Fatalf("Acked = %d with a mute hub", st.Acked)
	}

	// Tear the fake hub down first so the emitter's final flush fails fast
	// instead of waiting out its ack deadline.
	srv.Close()
	inner.Close()
	em.Close()
}

// TestMissedCountersAccounted wraps the source rings before the first drain
// and checks the losses are shipped and served as Missed counts — the
// lossy-but-accounted contract.
func TestMissedCountersAccounted(t *testing.T) {
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: testLogger(t, "hub", 256)})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	defer hub.Close()

	// Ring size 16 is the logger minimum; 100 events wrap 84 past it.
	logger := testLogger(t, "w1", 16)
	for i := 0; i < 100; i++ {
		logger.Log(health.Info, "burst", "event", health.Int("i", int64(i)))
	}
	tr := trace.NewTracer("w1", 16)
	for i := 0; i < 40; i++ {
		sp := tr.Root("burst.span")
		sp.End()
	}

	em := StartEmitter(EmitterConfig{
		Hub: hub.Addr(), Proc: "w1", Role: "worker",
		Interval: 10 * time.Millisecond,
		Logger:   logger,
		Tracer:   func() *trace.Tracer { return tr },
	})
	defer em.Close()

	waitFor(t, 5*time.Second, func() bool {
		st := hub.Status()
		return len(st) == 1 && st[0].Batches >= 1
	}, "first batch merged")

	st := hub.Status()[0]
	if st.MissedLogs != 84 {
		t.Fatalf("MissedLogs = %d, want 84 (100 events through a 16-ring)", st.MissedLogs)
	}
	if st.MissedSpans != 24 {
		t.Fatalf("MissedSpans = %d, want 24 (40 spans through a 16-ring)", st.MissedSpans)
	}
	if st.Logs != 16 || st.Spans != 16 {
		t.Fatalf("merged %d logs / %d spans, want 16/16", st.Logs, st.Spans)
	}
	if doc := hub.mergedLogs(logFilter{}); doc.Missed != 84 {
		t.Fatalf("/fleet/logs missed = %d, want 84", doc.Missed)
	}
	es := em.Stats()
	if es.MissedLogs != 84 || es.MissedSpans != 24 {
		t.Fatalf("emitter stats missed = %d/%d, want 84/24", es.MissedLogs, es.MissedSpans)
	}
}

// TestSilentWorkerAlertDrill subscribes a raw wire client that goes silent
// without a Closing batch, then drives the alert engine on the hub's
// silence gauge: the worker_silent rule must fire and the bound flight
// recorder must write a bundle.
func TestSilentWorkerAlertDrill(t *testing.T) {
	logger := testLogger(t, "root", 256)
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: logger})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	defer hub.Close()

	cli, err := bus.DialConfig(hub.Addr(), "w-silent", bus.ClientConfig{InboxSize: 8})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	send := func(p message.Payload) {
		t.Helper()
		env, err := message.NewEnvelope("w-silent", hubName, obsSession, p)
		if err != nil {
			t.Fatalf("NewEnvelope: %v", err)
		}
		if err := cli.Send(env); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	send(message.ObsSubscribe{Proc: "w-silent", Role: "worker"})
	send(message.ObsBatch{Seq: 1})
	waitFor(t, 5*time.Second, func() bool {
		st := hub.Status()
		return len(st) == 1 && st[0].LastSeq == 1
	}, "silent worker's first batch")
	// Abrupt close: no Closing batch, so the process stays in the silence
	// gauge and its age starts growing.
	cli.Close()

	dir := t.TempDir()
	rec := health.NewRecorder(dir, 4, logger)
	rec.MetricsFn = hub.WriteSummaryMetrics
	engine := health.NewEngine([]health.RuleConfig{{
		Name: "worker_silent", Metric: "fleet_last_batch_age_seconds",
		Op: ">", Threshold: 0.01, For: 2,
	}}, logger)
	engine.OnFire = func(a health.AlertStatus) { rec.Dump("alert", a.Rule.Name) }

	time.Sleep(30 * time.Millisecond) // let the batch age past the threshold
	engine.Eval()
	engine.Eval()
	if n := engine.FiringCount(); n != 1 {
		t.Fatalf("FiringCount = %d, want 1", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no flight-recorder bundle written (err=%v)", err)
	}
	if !strings.Contains(entries[0].Name(), "-alert-") {
		t.Fatalf("bundle %q not an alert bundle", entries[0].Name())
	}
}

// TestParseExposition checks the metrics page parser: comments and bucket
// series skipped, labelled series kept whole, malformed lines dropped.
func TestParseExposition(t *testing.T) {
	page := []byte(`# TYPE foo counter
foo 1
bar{a="b",c="d"} 2.5
baz_bucket{le="0.1"} 9
baz_sum 0.4
baz_count 3
malformed
also_malformed notanumber
`)
	got := parseExposition(page)
	want := []message.ObsMetricSample{
		{Name: "foo", Value: 1},
		{Name: `bar{a="b",c="d"}`, Value: 2.5},
		{Name: "baz_sum", Value: 0.4},
		{Name: "baz_count", Value: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d samples, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFleetQueryFromHubHistory wires a hub with a history store, streams a
// worker's metrics into it, and checks /fleet/query serves proc-labelled
// range queries over the retained samples — including the same 400
// discipline as the other fleet endpoints.
func TestFleetQueryFromHubHistory(t *testing.T) {
	hist := tsdb.New(tsdb.Config{})
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: testLogger(t, "hub", 256), History: hist})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	defer hub.Close()

	var flushes atomic.Int64
	em := StartEmitter(EmitterConfig{
		Hub: hub.Addr(), Proc: "w1", Role: "worker",
		Interval: 10 * time.Millisecond,
		Logger:   testLogger(t, "w1", 256),
		MetricsFn: func(w io.Writer) {
			fmt.Fprintf(w, "feedback_score 90\n")
			fmt.Fprintf(w, "session_count %d\n", 5*flushes.Add(1))
		},
	})
	defer em.Close()

	series := `feedback_score{proc="w1"}`
	waitFor(t, 5*time.Second, func() bool {
		pts := hist.Query(tsdb.Expr{Series: series}, time.Now().Add(-time.Minute).UnixMicro(), time.Now().UnixMicro(), 1000)
		return len(pts) >= 3
	}, "streamed samples retained in hub history")

	mux := http.NewServeMux()
	hub.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var doc struct {
		Series string       `json:"series"`
		Points []tsdb.Point `json:"points"`
	}
	getJSON(t, srv.URL+"/fleet/query?"+url.Values{"series": {series}, "step": {"10ms"}}.Encode(), &doc)
	if doc.Series != series || len(doc.Points) == 0 {
		t.Fatalf("/fleet/query = %+v", doc)
	}
	if last := doc.Points[len(doc.Points)-1].Value; last != 90 {
		t.Fatalf("last feedback_score point = %g, want 90", last)
	}

	// A derived query over the streamed counter works and never dips
	// negative (the counter only climbs).
	rateSeries := `rate(session_count{proc="w1"}[1s])`
	getJSON(t, srv.URL+"/fleet/query?"+url.Values{"series": {rateSeries}, "step": {"100ms"}}.Encode(), &doc)
	for _, p := range doc.Points {
		if p.Value < 0 {
			t.Fatalf("negative fleet rate %g", p.Value)
		}
	}

	// The shared 400 discipline: malformed series/from/to/step/limit fail
	// like the other fleet endpoints, with a reasoned body.
	for _, q := range []string{
		"", "series=rate(x", "series=g&from=nope", "series=g&to=nope",
		"series=g&step=0s", "series=g&limit=0", "series=g&from=0s&to=-10s",
	} {
		resp, err := http.Get(srv.URL + "/fleet/query?" + q)
		if err != nil {
			t.Fatalf("GET ?%s: %v", q, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || len(body) == 0 {
			t.Fatalf("GET ?%s = %s %q, want 400 with body", q, resp.Status, body)
		}
	}
}

// TestFleetQueryUnmountedWithoutHistory checks a hub with no history store
// serves 404 on /fleet/query rather than an empty result.
func TestFleetQueryUnmountedWithoutHistory(t *testing.T) {
	hub, err := StartHub(HubConfig{Addr: "127.0.0.1:0", Logger: testLogger(t, "hub", 256)})
	if err != nil {
		t.Fatalf("StartHub: %v", err)
	}
	defer hub.Close()
	mux := http.NewServeMux()
	hub.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/fleet/query?series=feedback_score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("historyless /fleet/query = %s, want 404", resp.Status)
	}
}

// TestRelabel checks proc-label injection on plain and labelled series.
func TestRelabel(t *testing.T) {
	if got := relabel("foo", "w1"); got != `foo{proc="w1"}` {
		t.Fatalf("relabel plain = %s", got)
	}
	if got := relabel(`foo{a="b"}`, "w1"); got != `foo{proc="w1",a="b"}` {
		t.Fatalf("relabel labelled = %s", got)
	}
}
