package cluster

import (
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/protocol"
)

// TierConfig parameterises StartTier.
type TierConfig struct {
	// SessionID identifies the negotiation the tier relays.
	SessionID string
	// FleetMinResponses is the fleet-level "acceptable number of bids",
	// scaled proportionally (rounding up) to each shard; 0 means every
	// member.
	FleetMinResponses int
	// RoundTimeout is each concentrator's shard round timeout; it must be
	// comfortably shorter than the root's round timeout.
	RoundTimeout time.Duration
	// InboxSize sizes each concentrator's mailboxes.
	InboxSize int
}

// Tier is a started concentrator tier fronting a fleet. Both negotiation
// engines build their trees through it — the in-process engine (Run) with
// one bus per shard, cmd/gridd with all shards sharing the TCP-bridged bus —
// so the root-tier contract (quorum scaling, concentrator naming, parameter
// overrides) lives in exactly one place.
type Tier struct {
	Topology      Topology
	Concentrators []*Concentrator
}

// StartTier starts one Concentrator per shard of the topology: upward-facing
// on parent, downward-facing on shardBus(i). shardBus may return the same
// bus for every shard (fan-out is targeted), but never the parent bus.
func StartTier(parent bus.Bus, shardBus func(i int) bus.Bus, topo Topology, cfg TierConfig) (*Tier, error) {
	t := &Tier{Topology: topo}
	for i := 0; i < topo.Shards(); i++ {
		cc, err := NewConcentrator(ConcentratorConfig{
			Name:         topo.ConcentratorName(i),
			SessionID:    cfg.SessionID,
			Members:      topo.MemberLoads(i),
			MinResponses: shardQuorum(cfg.FleetMinResponses, topo.FleetSize(), len(topo.Members(i))),
			RoundTimeout: cfg.RoundTimeout,
		})
		if err != nil {
			t.Stop()
			return nil, err
		}
		if err := cc.Start(parent, shardBus(i), cfg.InboxSize); err != nil {
			t.Stop()
			return nil, err
		}
		t.Concentrators = append(t.Concentrators, cc)
	}
	return t, nil
}

// Stop tears down every concentrator.
func (t *Tier) Stop() {
	for _, c := range t.Concentrators {
		c.Stop()
	}
}

// Errors collects handler errors from every concentrator.
func (t *Tier) Errors() []error {
	var out []error
	for _, c := range t.Concentrators {
		out = append(out, c.Errors()...)
	}
	return out
}

// RootParams adapts the fleet's negotiation parameters for the root session
// over a concentrator tier: aggregated bids are continuous, and the
// concentrators' own quorum and timeout rules guarantee one answer per shard
// per round, so the root waits for every concentrator's bid.
func RootParams(p protocol.Params) protocol.Params {
	p.ContinuousBids = true
	p.MinResponses = 0
	return p
}
