package agent

import (
	"fmt"

	"loadbalance/internal/kb"
)

// Model implements the two maintenance tasks of the generic agent model:
// maintenance of agent information ("models of other agents, including for
// example, information on how often Customer Agents have positively
// responded to announcements", Section 5.1.4) and maintenance of world
// information (weather, consumption). Both are kb stores so agent knowledge
// stays declarative and inspectable.
type Model struct {
	ont       *kb.Ontology
	AgentInfo *kb.Store
	WorldInfo *kb.Store
}

// Predicates maintained by the model.
const (
	predResponses = "responses"   // responses(agent, positive, total)
	predWorldVal  = "world_value" // world_value(topic, value)
)

// NewModel builds the model with its maintenance ontology.
func NewModel() (*Model, error) {
	ont := kb.NewOntology()
	steps := []error{
		ont.DeclareSort("peer", kb.SortAny),
		ont.DeclarePred(predResponses, kb.SortString, kb.SortNumber, kb.SortNumber),
		ont.DeclarePred(predWorldVal, kb.SortString, kb.SortNumber),
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("agent: model ontology: %w", err)
		}
	}
	return &Model{
		ont:       ont,
		AgentInfo: kb.NewStore(ont),
		WorldInfo: kb.NewStore(ont),
	}, nil
}

// RecordResponse updates the response statistics for a peer: whether it
// answered an announcement positively. This feeds the UA's prediction that
// "normally about 70% of the Customer Agents will respond positively".
func (m *Model) RecordResponse(peer string, positive bool) error {
	pos, total := m.responseCounts(peer)
	m.AgentInfo.Retract(kb.A(predResponses, kb.S(peer), kb.N(pos), kb.N(total)))
	if positive {
		pos++
	}
	total++
	return m.AgentInfo.Assert(kb.A(predResponses, kb.S(peer), kb.N(pos), kb.N(total)), kb.True)
}

// responseCounts reads the current (positive, total) pair for a peer.
func (m *Model) responseCounts(peer string) (pos, total float64) {
	matches := m.AgentInfo.Query(kb.A(predResponses, kb.S(peer), kb.V("P"), kb.V("T")))
	if len(matches) == 0 {
		return 0, 0
	}
	return matches[0].Args[1].Num, matches[0].Args[2].Num
}

// ResponseRate returns the observed positive-response rate for a peer and
// whether any observation exists.
func (m *Model) ResponseRate(peer string) (float64, bool) {
	pos, total := m.responseCounts(peer)
	if total == 0 {
		return 0, false
	}
	return pos / total, true
}

// OverallResponseRate aggregates response statistics over all peers.
func (m *Model) OverallResponseRate() (float64, bool) {
	matches := m.AgentInfo.Query(kb.A(predResponses, kb.V("A"), kb.V("P"), kb.V("T")))
	var pos, total float64
	for _, a := range matches {
		pos += a.Args[1].Num
		total += a.Args[2].Num
	}
	if total == 0 {
		return 0, false
	}
	return pos / total, true
}

// SetWorldValue records a named observation about the external world
// (e.g. "temperature_c", "predicted_use_kwh").
func (m *Model) SetWorldValue(topic string, value float64) error {
	for _, a := range m.WorldInfo.Query(kb.A(predWorldVal, kb.S(topic), kb.V("V"))) {
		m.WorldInfo.Retract(a)
	}
	return m.WorldInfo.Assert(kb.A(predWorldVal, kb.S(topic), kb.N(value)), kb.True)
}

// WorldValue reads a named world observation.
func (m *Model) WorldValue(topic string) (float64, bool) {
	matches := m.WorldInfo.Query(kb.A(predWorldVal, kb.S(topic), kb.V("V")))
	if len(matches) == 0 {
		return 0, false
	}
	return matches[0].Args[1].Num, true
}
