package bus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"loadbalance/internal/message"
)

// The TCP transport frames messages as newline-delimited JSON. A connection
// opens with a hello frame naming the remote agent; afterwards both sides
// exchange message envelopes. The server bridges remote agents onto a local
// Bus, so the rest of the system cannot tell remote agents from local ones.

// helloFrame is the first frame a client sends.
type helloFrame struct {
	Hello string `json:"hello"`
}

// frame is the union wire frame: exactly one field is set.
type frame struct {
	Hello    string            `json:"hello,omitempty"`
	Envelope *message.Envelope `json:"envelope,omitempty"`
}

// Server accepts TCP connections and bridges each remote agent onto the
// wrapped bus.
type Server struct {
	bus Bus
	ln  net.Listener

	mu     sync.Mutex
	conns  map[string]net.Conn
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts a server on addr, bridging onto bus. Callers must
// Close the returned server.
func ListenAndServe(addr string, b Bus) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen %s: %w", addr, err)
	}
	s := &Server{bus: b, ln: ln, conns: make(map[string]net.Conn)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one client connection for its lifetime.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return
	}
	var hello helloFrame
	if err := json.Unmarshal(line, &hello); err != nil || hello.Hello == "" {
		return
	}
	name := hello.Hello

	inbox, err := s.bus.Register(name, 0)
	if err != nil {
		return
	}
	defer s.bus.Unregister(name)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[name] = conn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, name)
		s.mu.Unlock()
	}()

	// Writer: forward bus inbox to the connection.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		enc := json.NewEncoder(conn)
		for env := range inbox {
			e := env
			if err := enc.Encode(frame{Envelope: &e}); err != nil {
				return
			}
		}
	}()

	// Reader: forward connection frames to the bus.
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break
		}
		var f frame
		if err := json.Unmarshal(line, &f); err != nil || f.Envelope == nil {
			continue // skip malformed frames rather than killing the session
		}
		env := *f.Envelope
		env.From = name // trust boundary: the connection owns its identity
		if _, err := env.Decode(); err != nil {
			continue
		}
		_ = s.bus.Send(env) // delivery errors are the protocol layer's concern
	}
	// Unregister closes the inbox, which stops the writer.
	s.bus.Unregister(name)
	<-writerDone
}

// Close stops accepting, drops all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// Client is a remote agent's connection to a Server.
type Client struct {
	name string
	conn net.Conn
	enc  *json.Encoder

	inbox chan message.Envelope
	done  chan struct{}

	mu     sync.Mutex
	closed bool
}

// Dial connects to a server and identifies as the named agent.
func Dial(addr, name string) (*Client, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownAgent)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: dial %s: %w", addr, err)
	}
	c := &Client{
		name:  name,
		conn:  conn,
		enc:   json.NewEncoder(conn),
		inbox: make(chan message.Envelope, 64),
		done:  make(chan struct{}),
	}
	if err := c.enc.Encode(helloFrame{Hello: name}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("bus: hello: %w", err)
	}
	go c.readLoop()
	return c, nil
}

// readLoop pumps inbound frames into the inbox until the connection dies.
func (c *Client) readLoop() {
	defer close(c.inbox)
	defer close(c.done)
	r := bufio.NewReader(c.conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var f frame
		if err := json.Unmarshal(line, &f); err != nil || f.Envelope == nil {
			continue
		}
		select {
		case c.inbox <- *f.Envelope:
		default:
			// Inbox full: drop, matching InProc semantics under overload.
		}
	}
}

// Inbox returns the channel of inbound envelopes. It closes when the
// connection ends.
func (c *Client) Inbox() <-chan message.Envelope { return c.inbox }

// Send transmits an envelope. From is forced to the client's identity.
func (c *Client) Send(env message.Envelope) error {
	env.From = c.name
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.enc.Encode(frame{Envelope: &env}); err != nil {
		return fmt.Errorf("bus: send: %w", err)
	}
	return nil
}

// Close tears down the connection and waits for the read loop to exit.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.conn.Close()
	<-c.done
}
