package replica

import (
	"context"
	"fmt"
	"sort"
	"time"

	"loadbalance/internal/store"
	"loadbalance/internal/telemetry"
)

// StoreTap is a journal-only follower: replicated frames land in a local
// store with no engine on top. It backs archival replicas and the
// replication benchmark.
type StoreTap struct {
	St *store.Store
}

// LastSeq implements Tap.
func (t *StoreTap) LastSeq() uint64 { return t.St.Stats().LastSeq }

// ApplySnapshot implements Tap.
func (t *StoreTap) ApplySnapshot(seq uint64, blob []byte) error {
	return t.St.InstallSnapshot(seq, blob)
}

// ApplyFrames implements Tap.
func (t *StoreTap) ApplyFrames(firstSeq uint64, frames []byte) (int, bool, error) {
	recs, sealed, err := t.St.AppendFrames(firstSeq, frames)
	return len(recs), sealed, err
}

// Promotable is the deterministic promotion rule: on primary loss, the
// standby whose id sorts lowest among the configured replica set promotes;
// every other standby keeps following the dial list until the promoted
// peer's stream appears. peers lists every standby id in the set (with or
// without self — self always counts).
func Promotable(self string, peers []string) bool {
	min := self
	for _, p := range peers {
		if p != "" && p < min {
			min = p
		}
	}
	return min == self
}

// StandbyConfig parameterises one hot standby.
type StandbyConfig struct {
	// ID is this standby's replica id — subscription identity and promotion
	// tiebreak key (lowest id in Peers wins).
	ID string
	// PrimaryAddrs is the replication dial list: the primary's address
	// first, then the peer standbys' (so a promoted peer is found).
	PrimaryAddrs []string
	// Peers lists every standby id in the replica set (self included or
	// not); it drives the lowest-id-wins rule. Empty means self-only: this
	// standby always promotes.
	Peers []string
	// Live is the grid configuration — it must match the primary's.
	Live telemetry.LiveConfig
	// Durable is the standby's own data directory configuration.
	Durable telemetry.DurableConfig
	// FailoverTimeout is how long the primary may be silent before
	// promotion is considered (default 3s).
	FailoverTimeout time.Duration
	// Redial is the receiver's pause between dial rounds (default 200ms).
	Redial time.Duration
}

// Outcome is how a standby's watch ended.
type Outcome struct {
	// Promoted is set when this standby took over; Engine is the live
	// engine continuing the run and Promotion describes the takeover.
	Promoted  bool
	Engine    *telemetry.LiveEngine
	Promotion *telemetry.PromotionInfo
	// DetectLatency is the time from the last primary contact to the dead
	// verdict; Promotion.Elapsed is the takeover itself. Their sum is the
	// availability gap.
	DetectLatency time.Duration
	// CleanShutdown is set when the primary sealed its journal and the
	// standby followed it down.
	CleanShutdown bool
}

// Standby is a hot standby: a StandbyEngine holding live replica state, fed
// by a Receiver, promoting itself by the lowest-id-wins rule when the
// primary goes silent.
type Standby struct {
	cfg StandbyConfig
	Eng *telemetry.StandbyEngine
	rx  *Receiver
}

// StartStandby opens the local data directory (resuming any previous replica
// prefix) and begins following the primary.
func StartStandby(cfg StandbyConfig) (*Standby, *telemetry.RecoveryInfo, error) {
	if cfg.ID == "" {
		return nil, nil, fmt.Errorf("%w: standby needs an id", ErrBadConfig)
	}
	eng, info, err := telemetry.OpenStandby(cfg.Live, cfg.Durable)
	if err != nil {
		return nil, nil, err
	}
	rx, err := StartReceiver(ReceiverConfig{
		ID:              cfg.ID,
		Addrs:           cfg.PrimaryAddrs,
		FailoverTimeout: cfg.FailoverTimeout,
		Redial:          cfg.Redial,
	}, eng)
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	return &Standby{cfg: cfg, Eng: eng, rx: rx}, info, nil
}

// Receiver exposes the stream receiver (status endpoints).
func (s *Standby) Receiver() *Receiver { return s.rx }

// Promotable reports whether this standby wins the promotion tiebreak.
func (s *Standby) Promotable() bool { return Promotable(s.cfg.ID, s.cfg.Peers) }

// PeerList returns the configured replica set, sorted, self included.
func (s *Standby) PeerList() []string {
	set := map[string]bool{s.cfg.ID: true}
	for _, p := range s.cfg.Peers {
		if p != "" {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Run follows the stream until the primary dies (and this standby wins the
// promotion), the primary shuts down cleanly, or ctx is cancelled (Outcome
// zero, ctx.Err() returned). A standby that loses the tiebreak never
// returns from a primary death: it keeps following the dial list and
// resumes from the promoted peer.
func (s *Standby) Run(ctx context.Context) (Outcome, error) {
	for {
		select {
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		case ev := <-s.rx.Events():
			switch ev.Kind {
			case EventCleanShutdown:
				return Outcome{CleanShutdown: true}, nil
			case EventFallenBehind, EventDiverged, EventApplyFailed:
				return Outcome{}, fmt.Errorf("replica: standby %s %s", s.cfg.ID, s.rx.Status().Fatal)
			case EventPrimaryDead:
				detect := time.Since(s.rx.Status().LastContact)
				if !s.Promotable() {
					continue // a peer with a lower id owns the takeover
				}
				s.rx.Close() // stop applying before the state diverges
				eng, pinfo, err := s.Eng.Promote(s.cfg.ID, "primary contact lost")
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Promoted:      true,
					Engine:        eng,
					Promotion:     pinfo,
					DetectLatency: detect,
				}, nil
			}
		}
	}
}

// Close stops the standby without promoting.
func (s *Standby) Close() error {
	s.rx.Close()
	return s.Eng.Close()
}
