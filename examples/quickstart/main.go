// Quickstart: the smallest end-to-end negotiation. Three customers with
// hand-written preference tables face a 25% predicted peak; the Utility
// Agent announces growing reward tables until the peak is acceptable.
package main

import (
	"fmt"
	"log"
	"time"

	"loadbalance"
	"loadbalance/internal/units"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A customer's private valuation: the minimum reward it demands for
	// each cut-down fraction. Levels not listed are infeasible for it.
	levels := []float64{0, 0.1, 0.2, 0.3, 0.4}
	cheap, err := loadbalance.NewPreferences(levels, map[float64]float64{
		0: 0, 0.1: 2, 0.2: 5, 0.3: 9, 0.4: 15,
	})
	if err != nil {
		return err
	}
	picky, err := loadbalance.NewPreferences(levels, map[float64]float64{
		0: 0, 0.1: 6, 0.2: 14,
	})
	if err != nil {
		return err
	}

	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	s := loadbalance.Scenario{
		SessionID: "quickstart",
		Window:    units.Interval{Start: start, End: start.Add(2 * time.Hour)},
		NormalUse: 24, // kWh of cheap capacity; the fleet predicts 30
		Method:    loadbalance.MethodRewardTable,
		Params:    loadbalance.PaperParams(),
		// Round-1 rewards: 42.5 × cut-down (the prototype's table).
		InitialSlope: 42.5,
		Customers: []loadbalance.CustomerSpec{
			{Name: "casa-verde", Predicted: 10, Allowed: 10, Prefs: cheap.WithExpectedUse(10), Strategy: loadbalance.StrategyGreedy},
			{Name: "casa-azul", Predicted: 12, Allowed: 12, Prefs: cheap.WithExpectedUse(12), Strategy: loadbalance.StrategyIncremental},
			{Name: "casa-roja", Predicted: 8, Allowed: 8, Prefs: picky.WithExpectedUse(8), Strategy: loadbalance.StrategyGreedy},
		},
	}

	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(loadbalance.Render(res))

	// Every trace can be checked against the monotonic concession
	// protocol's formal properties.
	rep := loadbalance.VerifyTrace(res, s.Params)
	fmt.Printf("\nprotocol properties: %d checked, %d violated\n",
		len(rep.Checked), len(rep.Violations))
	return rep.Error()
}
