package kb

import (
	"fmt"
	"sort"
)

// Store holds ground facts under a three-valued reading: each atom is True,
// False, or Unknown (absent). A Store is the executable form of a DESIRE
// information state. Stores are not safe for concurrent use; each agent
// component owns its stores and all cross-component traffic flows through
// information links (see internal/desire).
type Store struct {
	ont   *Ontology
	facts map[string]Fact
}

// NewStore returns an empty store. If ont is non-nil, every asserted fact is
// validated against it.
func NewStore(ont *Ontology) *Store {
	return &Store{ont: ont, facts: make(map[string]Fact)}
}

// Assert records the truth value of a ground atom, overwriting any previous
// value. Asserting Unknown removes the fact.
func (s *Store) Assert(a Atom, tv Truth) error {
	if !a.IsGround() {
		return fmt.Errorf("%w: %s", ErrNotGround, a)
	}
	if s.ont != nil {
		if err := s.ont.CheckAtom(a); err != nil {
			return err
		}
	}
	k := a.key()
	if tv == Unknown {
		delete(s.facts, k)
		return nil
	}
	s.facts[k] = Fact{Atom: a, Truth: tv}
	return nil
}

// AssertTrue is shorthand for Assert(a, True).
func (s *Store) AssertTrue(a Atom) error { return s.Assert(a, True) }

// Retract removes any recorded truth value for the atom.
func (s *Store) Retract(a Atom) { delete(s.facts, a.key()) }

// TruthOf returns the truth value recorded for a ground atom (Unknown when
// absent).
func (s *Store) TruthOf(a Atom) Truth {
	f, ok := s.facts[a.key()]
	if !ok {
		return Unknown
	}
	return f.Truth
}

// Holds reports whether the atom is explicitly True.
func (s *Store) Holds(a Atom) bool { return s.TruthOf(a) == True }

// Len returns the number of explicitly-valued facts.
func (s *Store) Len() int { return len(s.facts) }

// Facts returns all facts in deterministic (key-sorted) order.
func (s *Store) Facts() []Fact {
	keys := make([]string, 0, len(s.facts))
	for k := range s.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Fact, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.facts[k])
	}
	return out
}

// Clear removes every fact.
func (s *Store) Clear() {
	s.facts = make(map[string]Fact)
}

// Clone returns a deep copy sharing the ontology.
func (s *Store) Clone() *Store {
	c := NewStore(s.ont)
	for k, f := range s.facts {
		c.facts[k] = f
	}
	return c
}

// Binding maps variable names to ground terms.
type Binding map[string]Term

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// substitute applies a binding to a term.
func substitute(t Term, b Binding) Term {
	if t.Kind == KindVar {
		if g, ok := b[t.Name]; ok {
			return g
		}
	}
	return t
}

// SubstituteAtom applies a binding to every argument of an atom.
func SubstituteAtom(a Atom, b Binding) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = substitute(t, b)
	}
	return out
}

// unify extends binding b so the pattern term matches the ground term, or
// reports failure. The ground side must be ground.
func unify(pattern, ground Term, b Binding) (Binding, bool) {
	pattern = substitute(pattern, b)
	if pattern.Kind == KindVar {
		nb := b.clone()
		nb[pattern.Name] = ground
		return nb, true
	}
	if pattern.Equal(ground) {
		return b, true
	}
	return nil, false
}

// Match finds all bindings under which the pattern atom matches a True fact
// in the store. Results are in deterministic order. A ground pattern yields a
// single empty binding when it holds.
func (s *Store) Match(pattern Atom, seed Binding) []Binding {
	if seed == nil {
		seed = Binding{}
	}
	var out []Binding
	for _, f := range s.Facts() {
		if f.Truth != True || f.Atom.Pred != pattern.Pred || len(f.Atom.Args) != len(pattern.Args) {
			continue
		}
		b := seed
		ok := true
		for i := range pattern.Args {
			b, ok = unify(pattern.Args[i], f.Atom.Args[i], b)
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// Query returns the ground atoms of all True facts matching the pattern.
func (s *Store) Query(pattern Atom) []Atom {
	bindings := s.Match(pattern, nil)
	out := make([]Atom, 0, len(bindings))
	for _, b := range bindings {
		out = append(out, SubstituteAtom(pattern, b))
	}
	return out
}
