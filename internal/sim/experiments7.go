package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"loadbalance/internal/telemetry"
)

// RecoveryReport is E16's machine-readable result: the crash/recover
// timeline and the recovery latency, saved as JSON next to the CSV.
type RecoveryReport struct {
	Fleet             int    `json:"fleet"`
	Shards            int    `json:"shards"`
	Ticks             int    `json:"ticks"`
	CrashTick         int    `json:"crashTick"`
	Renegotiations    int    `json:"renegotiations"`
	RecoveryLatencyNS int64  `json:"recoveryLatencyNs"`
	SnapshotSeq       uint64 `json:"snapshotSeq"`
	ReplayedRecords   int    `json:"replayedRecords"`
	ResumeTick        int    `json:"resumeTick"`
	AwardsBytes       int    `json:"awardsBytes"`
	AwardsMatch       bool   `json:"awardsMatch"`
}

// E16CrashRecovery demonstrates durable live-grid operation: one seeded
// spiked run is executed twice — uninterrupted, and crashed halfway then
// recovered from its data directory. The recovered run resumes at the next
// tick after the journal's last checkpoint and finishes with awards and
// shard profiles byte-identical to the uninterrupted run, which the table's
// last row asserts; the report records the recovery latency (snapshot load +
// tail replay).
//
// dir hosts the two data directories; empty uses a temp dir removed on
// return.
func E16CrashRecovery(n, shards, ticks int, seed int64, dir string) (*Table, *RecoveryReport, error) {
	if n < shards {
		n = shards
	}
	if ticks < 8 {
		ticks = 8
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "e16-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	crashTick := ticks / 2
	spikeAt := ticks / 3
	cfg := func() (telemetry.LiveConfig, error) {
		s, err := telemetry.ElasticFleetScenario(n, seed)
		if err != nil {
			return telemetry.LiveConfig{}, err
		}
		return telemetry.LiveConfig{
			Scenario:       s,
			Shards:         shards,
			TicksPerWindow: 8,
			Jitter:         0.01,
			Seed:           seed,
			ShardEvents: map[int][]telemetry.Event{
				0:          {{StartTick: spikeAt, EndTick: ticks + 1, Factor: 2.5}},
				shards / 2: {{StartTick: spikeAt, EndTick: ticks + 1, Factor: 2.5}},
			},
		}, nil
	}
	durable := func(sub string) telemetry.DurableConfig {
		return telemetry.DurableConfig{Dir: filepath.Join(dir, sub), SnapshotEvery: 5}
	}
	profile := func(e *telemetry.LiveEngine) ([]byte, error) { return json.Marshal(e.Profile()) }

	t := &Table{
		Name:    fmt.Sprintf("E16CrashRecovery: %d customers, %d shards, crash at tick %d of %d", n, shards, crashTick, ticks),
		Columns: []string{"phase", "ticks", "renegs", "notes"},
		Notes:   "a durable live grid killed mid-loop recovers from snapshot + journal tail and converges byte-identically",
	}

	// Reference: uninterrupted run.
	c, err := cfg()
	if err != nil {
		return nil, nil, err
	}
	ref, _, err := telemetry.OpenDurable(c, durable("uninterrupted"))
	if err != nil {
		return nil, nil, err
	}
	if _, err := ref.Run(ticks); err != nil {
		return nil, nil, err
	}
	want, err := profile(ref)
	if err != nil {
		return nil, nil, err
	}
	refRenegs := ref.Renegotiations()
	if err := ref.Shutdown(); err != nil {
		return nil, nil, err
	}
	t.AddRowF("uninterrupted", ticks, refRenegs, "(reference)")

	// Victim: same run, crashed halfway — the journal is left unsealed.
	c, err = cfg()
	if err != nil {
		return nil, nil, err
	}
	victim, _, err := telemetry.OpenDurable(c, durable("crashed"))
	if err != nil {
		return nil, nil, err
	}
	if _, err := victim.Run(crashTick); err != nil {
		return nil, nil, err
	}
	victim.Stop()
	if err := victim.Store().Close(); err != nil {
		return nil, nil, err
	}
	t.AddRowF("crashed", crashTick, victim.Renegotiations(), "journal unsealed, no shutdown")

	// Recovery: reopen the data dir and finish the run.
	c, err = cfg()
	if err != nil {
		return nil, nil, err
	}
	rec, info, err := telemetry.OpenDurable(c, durable("crashed"))
	if err != nil {
		return nil, nil, err
	}
	if _, err := rec.Run(ticks - info.ResumeTick); err != nil {
		return nil, nil, err
	}
	got, err := profile(rec)
	if err != nil {
		return nil, nil, err
	}
	recRenegs := rec.Renegotiations()
	if err := rec.Shutdown(); err != nil {
		return nil, nil, err
	}
	match := bytes.Equal(got, want)
	verdict := "awards DIFFER from reference"
	if match {
		verdict = "awards byte-identical to reference"
	}
	t.AddRowF("recovered", ticks-info.ResumeTick,
		recRenegs, fmt.Sprintf("replayed %d records from snapshot seq %d in %v; %s",
			info.Replayed, info.SnapshotSeq, info.Elapsed.Round(10*time.Microsecond), verdict))

	rep := &RecoveryReport{
		Fleet:             n,
		Shards:            shards,
		Ticks:             ticks,
		CrashTick:         crashTick,
		Renegotiations:    recRenegs,
		RecoveryLatencyNS: info.Elapsed.Nanoseconds(),
		SnapshotSeq:       info.SnapshotSeq,
		ReplayedRecords:   info.Replayed,
		ResumeTick:        info.ResumeTick,
		AwardsBytes:       len(got),
		AwardsMatch:       match,
	}
	if !match {
		return t, rep, fmt.Errorf("sim: e16 recovered awards diverged from the uninterrupted run")
	}
	return t, rep, nil
}
