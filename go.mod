module loadbalance

go 1.22
