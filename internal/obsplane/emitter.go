package obsplane

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
)

// EmitterConfig parameterises one process's observability stream.
type EmitterConfig struct {
	// Hub is the root hub's dial address.
	Hub string
	// Proc is this process's label (trace proc, log proc) — it becomes the
	// wire connection name, so it must be unique across the fleet.
	Proc string
	// Role names what kind of process this is ("worker", "live", "standby",
	// "serve", ...), served verbatim on /fleet/status.
	Role string
	// Addr is this process's own serving address, if any (informational).
	Addr string
	// Interval is the flush cadence (default 250ms).
	Interval time.Duration
	// MinLevel is the lowest log level streamed (the zero value streams
	// Debug and up — the logger's own gate already bounds what the ring
	// holds).
	MinLevel health.Level
	// Window bounds unacked batches held for resend; when it fills the
	// emitter sheds flushes (counted in Stats) instead of growing without
	// bound (default 8).
	Window int
	// Redial is the reconnect backoff after a lost hub connection
	// (default 200ms).
	Redial time.Duration
	// MaxFrame bounds one wire frame (default bus.DefaultMaxFrame).
	MaxFrame int
	// MetricsFn renders this process's metrics page; each flush parses the
	// rendered exposition text into samples (histogram _bucket series are
	// skipped to keep batches lean). Nil streams no metrics.
	MetricsFn func(io.Writer)
	// Logger is the drained log ring (default health.Default()).
	Logger *health.Logger
	// Tracer returns the drained span ring per flush (default the
	// process-wide trace.Active, resolved at flush time so late Enable
	// still streams).
	Tracer func() *trace.Tracer
}

// withDefaults fills unset fields.
func (c EmitterConfig) withDefaults() EmitterConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Redial <= 0 {
		c.Redial = 200 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = health.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.Active
	}
	return c
}

// EmitterStats counts the stream's life so far.
type EmitterStats struct {
	Batches      uint64 `json:"batches"`      // flushed batches (incl. resends once each)
	Acked        uint64 `json:"acked"`        // highest acked sequence
	Sheds        uint64 `json:"sheds"`        // flushes skipped because the resend window was full
	Dials        uint64 `json:"dials"`        // successful hub connections
	Resubscribes uint64 `json:"resubscribes"` // subscriptions after the first
	MissedLogs   uint64 `json:"missedLogs"`   // log events lost to ring wrap before draining
	MissedSpans  uint64 `json:"missedSpans"`  // spans lost to ring wrap before draining
}

// Emitter streams one process's observability state to the hub. Start it
// with StartEmitter; Close flushes once more (with the Closing mark) and
// waits briefly for the ack so final spans reach the root before exit.
type Emitter struct {
	cfg EmitterConfig

	mu      sync.Mutex
	stats   EmitterStats
	pending []message.ObsBatch // unacked, oldest first
	seq     uint64
	logCur  uint64
	spanCur uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// StartEmitter begins streaming to cfg.Hub. The emitter survives hub
// restarts: it redials forever (until Close), re-subscribes, and resends
// its unacked window.
func StartEmitter(cfg EmitterConfig) *Emitter {
	e := &Emitter{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go e.loop()
	return e
}

// Stats snapshots the stream counters.
func (e *Emitter) Stats() EmitterStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close flushes a final Closing batch, waits briefly for its ack, and
// stops the stream.
func (e *Emitter) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// loop is the emitter goroutine: dial, subscribe, resend, then flush on a
// ticker and trim on acks until the connection dies (redial) or Close.
func (e *Emitter) loop() {
	defer close(e.done)
	for {
		cli := e.dial()
		if cli == nil {
			return // closed while dialing
		}
		if !e.session(cli) {
			cli.Close()
			return // closed during the session
		}
		cli.Close()
		// Connection lost: back off, then redial and resume.
		select {
		case <-e.stop:
			return
		case <-time.After(e.cfg.Redial):
		}
	}
}

// dial connects to the hub, retrying until it succeeds or Close is called
// (nil return).
func (e *Emitter) dial() *bus.Client {
	for {
		cli, err := bus.DialConfig(e.cfg.Hub, e.cfg.Proc, bus.ClientConfig{
			InboxSize: 64,
			MaxFrame:  e.cfg.MaxFrame,
		})
		if err == nil {
			e.mu.Lock()
			e.stats.Dials++
			dials := e.stats.Dials
			e.mu.Unlock()
			if dials > 1 {
				e.cfg.Logger.Log(health.Info, "obsplane", "hub reconnected",
					health.Str("proc", e.cfg.Proc), health.Str("hub", e.cfg.Hub))
			}
			return cli
		}
		select {
		case <-e.stop:
			return nil
		case <-time.After(e.cfg.Redial):
		}
	}
}

// session runs one connection's lifetime. It returns false when the
// emitter is closing (final flush already sent), true when the connection
// died and the loop should redial.
func (e *Emitter) session(cli *bus.Client) bool {
	if !e.subscribe(cli) {
		return true
	}
	// Resend the unacked window: the hub drops duplicates by sequence, so
	// racing a late ack is harmless.
	e.mu.Lock()
	resend := append([]message.ObsBatch(nil), e.pending...)
	e.mu.Unlock()
	for i := range resend {
		if e.send(cli, resend[i]) != nil {
			return true
		}
	}

	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			e.finalFlush(cli)
			return false
		case <-ticker.C:
			if err := e.flush(cli, false); err != nil {
				return true
			}
		case env, ok := <-cli.Inbox():
			if !ok {
				return true
			}
			e.handleAck(env)
		}
	}
}

// subscribe announces this process's identity.
func (e *Emitter) subscribe(cli *bus.Client) bool {
	e.mu.Lock()
	if e.stats.Dials > 1 {
		e.stats.Resubscribes++
	}
	e.mu.Unlock()
	return e.sendPayload(cli, message.ObsSubscribe{
		Proc:     e.cfg.Proc,
		Role:     e.cfg.Role,
		Addr:     e.cfg.Addr,
		MinLevel: e.cfg.MinLevel.String(),
	}) == nil
}

// handleAck trims the resend window up to the acked sequence.
func (e *Emitter) handleAck(env message.Envelope) {
	p, err := env.Decode()
	if err != nil {
		return
	}
	ack, ok := p.(message.ObsAck)
	if !ok {
		return
	}
	e.mu.Lock()
	if ack.Seq > e.stats.Acked {
		e.stats.Acked = ack.Seq
	}
	i := 0
	for i < len(e.pending) && e.pending[i].Seq <= ack.Seq {
		i++
	}
	e.pending = e.pending[i:]
	e.mu.Unlock()
}

// flush drains the rings into one batch and ships it. With the resend
// window full it sheds instead — the rings keep wrapping and the next
// successful drain ships the wrap losses as Missed counters, so
// backpressure degrades coverage, never memory.
func (e *Emitter) flush(cli *bus.Client, closing bool) error {
	e.mu.Lock()
	if !closing && len(e.pending) >= e.cfg.Window {
		e.stats.Sheds++
		e.mu.Unlock()
		return nil
	}
	e.seq++
	batch := message.ObsBatch{Seq: e.seq, Closing: closing}
	e.mu.Unlock()

	// Drain outside the emitter lock: ring drains take the ring locks.
	if t := e.cfg.Tracer(); t != nil {
		recs, cur, missed := t.DrainSince(e.loadSpanCur())
		e.storeSpanCur(cur)
		batch.MissedSpans = missed
		if len(recs) > 0 {
			batch.Spans = make([]message.ObsSpan, len(recs))
			for i, r := range recs {
				batch.Spans[i] = message.ObsSpan{
					Trace:   r.Trace,
					Span:    r.Span,
					Parent:  r.Parent,
					Name:    r.Name,
					Agent:   r.Agent,
					Session: r.Session,
					Shard:   r.Shard,
					StartUs: r.StartUs,
					DurUs:   r.DurUs,
				}
			}
		}
	}
	evs, cur, missedLogs := e.cfg.Logger.DrainSince(e.loadLogCur(), e.cfg.MinLevel)
	e.storeLogCur(cur)
	batch.MissedLogs = missedLogs
	if len(evs) > 0 {
		batch.Logs = make([]message.ObsLogEvent, len(evs))
		for i, ev := range evs {
			batch.Logs[i] = message.ObsLogEvent{
				TsUs:      ev.TimeUs,
				Level:     ev.Level,
				Component: ev.Component,
				Msg:       ev.Msg,
				Fields:    ev.Fields,
			}
		}
	}
	if e.cfg.MetricsFn != nil {
		var buf bytes.Buffer
		e.cfg.MetricsFn(&buf)
		batch.Metrics = parseExposition(buf.Bytes())
	}

	e.mu.Lock()
	e.stats.Batches++
	e.stats.MissedLogs += batch.MissedLogs
	e.stats.MissedSpans += batch.MissedSpans
	e.pending = append(e.pending, batch)
	e.mu.Unlock()
	return e.send(cli, batch)
}

// finalFlush ships the Closing batch (window ignored — the last spans must
// go out) and waits briefly for its ack.
func (e *Emitter) finalFlush(cli *bus.Client) {
	if err := e.flush(cli, true); err != nil {
		return
	}
	e.mu.Lock()
	want := e.seq
	e.mu.Unlock()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-deadline:
			return
		case env, ok := <-cli.Inbox():
			if !ok {
				return
			}
			e.handleAck(env)
			e.mu.Lock()
			acked := e.stats.Acked
			e.mu.Unlock()
			if acked >= want {
				return
			}
		}
	}
}

// Cursor accessors: the cursors are only touched by the emitter goroutine,
// but Stats readers share the mutex, so keep them under it for -race.
func (e *Emitter) loadSpanCur() uint64   { e.mu.Lock(); defer e.mu.Unlock(); return e.spanCur }
func (e *Emitter) storeSpanCur(v uint64) { e.mu.Lock(); e.spanCur = v; e.mu.Unlock() }
func (e *Emitter) loadLogCur() uint64    { e.mu.Lock(); defer e.mu.Unlock(); return e.logCur }
func (e *Emitter) storeLogCur(v uint64)  { e.mu.Lock(); e.logCur = v; e.mu.Unlock() }

// send ships one batch.
func (e *Emitter) send(cli *bus.Client, b message.ObsBatch) error {
	return e.sendPayload(cli, b)
}

// sendPayload wraps and ships one payload to the hub.
func (e *Emitter) sendPayload(cli *bus.Client, p message.Payload) error {
	env, err := message.NewEnvelope(e.cfg.Proc, hubName, obsSession, p)
	if err != nil {
		return err
	}
	return cli.Send(env)
}

// parseExposition extracts metric samples from Prometheus text exposition
// format: comment lines are skipped, histogram _bucket series are skipped
// (quantile gauges and _sum/_count travel instead), everything else becomes
// one sample named by its full series (labels included).
func parseExposition(page []byte) []message.ObsMetricSample {
	var out []message.ObsMetricSample
	for len(page) > 0 {
		line := page
		if i := bytes.IndexByte(page, '\n'); i >= 0 {
			line, page = page[:i], page[i+1:]
		} else {
			page = nil
		}
		s := strings.TrimSpace(string(line))
		if s == "" || s[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(s, ' ')
		if sp <= 0 {
			continue
		}
		name := s[:sp]
		if strings.Contains(name, "_bucket{") || strings.HasSuffix(name, "_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(s[sp+1:], 64)
		if err != nil {
			continue
		}
		out = append(out, message.ObsMetricSample{Name: name, Value: v})
	}
	return out
}
