package trace

import (
	"fmt"
	"testing"
)

// TestDrainSinceCursor walks the streaming-export cursor through fills,
// idle drains, and ring wraps — the obsplane emitter's contract.
func TestDrainSinceCursor(t *testing.T) {
	tr := NewTracer("p1", 16)

	// Empty ring: nothing pending, cursor stays at zero.
	recs, cur, missed := tr.DrainSince(0)
	if len(recs) != 0 || cur != 0 || missed != 0 {
		t.Fatalf("empty drain = %d recs, cur %d, missed %d", len(recs), cur, missed)
	}

	for i := 0; i < 10; i++ {
		sp := tr.Root(fmt.Sprintf("span-%02d", i))
		sp.End()
	}
	recs, cur, missed = tr.DrainSince(0)
	if len(recs) != 10 || cur != 10 || missed != 0 {
		t.Fatalf("first drain = %d recs, cur %d, missed %d", len(recs), cur, missed)
	}
	// Oldest first, every record labelled with the tracer's proc.
	for i, r := range recs {
		if r.Name != fmt.Sprintf("span-%02d", i) {
			t.Fatalf("record %d = %s, out of order", i, r.Name)
		}
		if r.Proc != "p1" {
			t.Fatalf("record %d proc = %q", i, r.Proc)
		}
	}

	// Idle drain from the returned cursor: nothing new.
	recs, cur2, missed := tr.DrainSince(cur)
	if len(recs) != 0 || cur2 != cur || missed != 0 {
		t.Fatalf("idle drain = %d recs, cur %d, missed %d", len(recs), cur2, missed)
	}

	// Drain only the delta.
	sp := tr.Root("span-10")
	sp.End()
	recs, cur, missed = tr.DrainSince(cur)
	if len(recs) != 1 || recs[0].Name != "span-10" || missed != 0 {
		t.Fatalf("delta drain = %+v, missed %d", recs, missed)
	}

	// Wrap the ring far past the cursor: the overwritten spans are counted,
	// the surviving window is returned oldest-first.
	for i := 0; i < 40; i++ {
		sp := tr.Root(fmt.Sprintf("wrap-%02d", i))
		sp.End()
	}
	recs, cur, missed = tr.DrainSince(cur)
	if len(recs) != 16 {
		t.Fatalf("wrap drain returned %d recs, want the full 16-ring", len(recs))
	}
	if missed != 24 {
		t.Fatalf("wrap drain missed = %d, want 24 (40 new through a 16-ring)", missed)
	}
	if cur != 51 {
		t.Fatalf("cursor = %d, want 51 spans total", cur)
	}
	if recs[0].Name != "wrap-24" || recs[15].Name != "wrap-39" {
		t.Fatalf("wrap window = %s..%s, want wrap-24..wrap-39", recs[0].Name, recs[15].Name)
	}

	// A stale cursor beyond total (e.g. after tracer replacement) is safe.
	recs, cur2, missed = tr.DrainSince(cur + 100)
	if len(recs) != 0 || cur2 != cur || missed != 0 {
		t.Fatalf("stale cursor drain = %d recs, cur %d, missed %d", len(recs), cur2, missed)
	}
}

// TestDrainSinceParentIDs checks parent span ids survive the drain as the
// same zero-padded hex the /trace endpoint renders, so cross-process
// stitching works on equal strings.
func TestDrainSinceParentIDs(t *testing.T) {
	tr := NewTracer("p1", 16)
	root := tr.Root("root")
	child := tr.Child(root.Context(), "child")
	child.End()
	root.End()

	recs, _, _ := tr.DrainSince(0)
	if len(recs) != 2 {
		t.Fatalf("drained %d records, want 2", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		if len(r.Span) != 16 || len(r.Trace) != 16 {
			t.Fatalf("ids not 16-hex: %+v", r)
		}
		byName[r.Name] = r
	}
	if byName["child"].Parent != byName["root"].Span {
		t.Fatalf("child parent %q != root span %q", byName["child"].Parent, byName["root"].Span)
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root has parent %q", byName["root"].Parent)
	}
	if byName["child"].Trace != byName["root"].Trace {
		t.Fatal("child and root on different traces")
	}
}
