package utilityagent

import (
	"errors"
	"testing"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/prediction"
	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
)

func testWindow() units.Interval {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}

func tenLoads() map[string]protocol.CustomerLoad {
	loads := make(map[string]protocol.CustomerLoad, 10)
	for i := 0; i < 10; i++ {
		loads[string(rune('a'+i))] = protocol.CustomerLoad{Predicted: 13.5, Allowed: 13.5}
	}
	return loads
}

func baseConfig() Config {
	return Config{
		SessionID: "s1",
		Window:    testWindow(),
		NormalUse: 100,
		Loads:     tenLoads(),
		Method:    MethodRewardTable,
		Params: protocol.Params{
			Beta:                1.85,
			MaxRewardSlope:      125,
			Epsilon:             1,
			AllowedOveruseRatio: 0.13,
		},
		InitialSlope: 42.5,
		WarrantRatio: 0.05,
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "empty session", mutate: func(c *Config) { c.SessionID = "" }},
		{name: "no loads", mutate: func(c *Config) { c.Loads = nil }},
		{name: "zero normal use", mutate: func(c *Config) { c.NormalUse = 0 }},
		{name: "negative slope", mutate: func(c *Config) { c.InitialSlope = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	ua, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ua.cfg.Name != "ua" {
		t.Fatalf("default name = %q", ua.cfg.Name)
	}
}

func TestChooseMethod(t *testing.T) {
	tests := []struct {
		name string
		give Situation
		want Method
	}{
		{
			name: "imminent peak forces offer",
			give: Situation{LeadTime: 5 * time.Minute, OveruseRatio: 0.35, Customers: 100},
			want: MethodOffer,
		},
		{
			name: "small peak takes the fast offer",
			give: Situation{LeadTime: 2 * time.Hour, OveruseRatio: 0.08, Customers: 100, ResponseRate: 0.7},
			want: MethodOffer,
		},
		{
			name: "long horizon small fleet allows rfb",
			give: Situation{LeadTime: 12 * time.Hour, OveruseRatio: 0.35, Customers: 20},
			want: MethodRequestForBids,
		},
		{
			name: "default is reward tables",
			give: Situation{LeadTime: 2 * time.Hour, OveruseRatio: 0.35, Customers: 1000},
			want: MethodRewardTable,
		},
		{
			name: "large fleet stays on reward tables even with time",
			give: Situation{LeadTime: 12 * time.Hour, OveruseRatio: 0.35, Customers: 1000},
			want: MethodRewardTable,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ChooseMethod(tt.give); got != tt.want {
				t.Fatalf("ChooseMethod = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvaluatePrediction(t *testing.T) {
	ratio, negotiate := EvaluatePrediction(tenLoads(), 100, 0.05)
	if !units.NearlyEqual(ratio, 0.35, 1e-12) || !negotiate {
		t.Fatalf("EvaluatePrediction = %v, %v", ratio, negotiate)
	}
	ratio, negotiate = EvaluatePrediction(tenLoads(), 200, 0.05)
	if negotiate {
		t.Fatalf("below-capacity prediction should not negotiate (ratio %v)", ratio)
	}
}

func TestNoNegotiationWhenPeakSmall(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := baseConfig()
	cfg.NormalUse = 500 // no peak at all
	ua, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := agentrt.Start("ua", b, ua, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	select {
	case res := <-ua.Done():
		if res.Outcome != "no negotiation needed" {
			t.Fatalf("outcome = %q", res.Outcome)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result")
	}
}

// scriptedCustomer joins the bus and answers announcements with a fixed
// function per round.
func scriptedCustomer(t *testing.T, b bus.Bus, name string, bidFor func(round int) float64) *agentrt.Runtime {
	t.Helper()
	rt, err := agentrt.Start(name, b, agentrt.HandlerFuncs{
		Message: func(rt *agentrt.Runtime, env message.Envelope) error {
			p, err := env.Decode()
			if err != nil {
				return err
			}
			switch m := p.(type) {
			case message.RewardTable:
				return rt.Send(env.From, env.Session, message.CutDownBid{
					Round: m.Round, CutDown: bidFor(m.Round),
				})
			case message.OfferTerms:
				return rt.Send(env.From, env.Session, message.OfferReply{
					Round: 1, Accept: bidFor(1) > 0,
				})
			case message.BidRequest:
				return rt.Send(env.From, env.Session, message.EnergyBid{
					Round: m.Round, YMinKWh: 13.5 * (1 - bidFor(m.Round)),
				})
			default:
				return nil
			}
		},
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt
}

func TestRewardTableNegotiationConverges(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	cfg := baseConfig()
	ua, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Customers concede one level per round up to 0.4: by round 2 the fleet
	// cuts 10×0.2 = 2.0 ⇒ usage 108, ratio 0.08 ≤ 0.13 → converged.
	for name := range cfg.Loads {
		scriptedCustomer(t, b, name, func(round int) float64 {
			cd := 0.1 * float64(round)
			if cd > 0.4 {
				cd = 0.4
			}
			return cd
		})
	}
	rt, err := agentrt.Start("ua", b, ua, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		if res.Method != MethodRewardTable {
			t.Fatalf("method = %v", res.Method)
		}
		if res.Outcome != protocol.OutcomeConverged.String() {
			t.Fatalf("outcome = %q (rounds %d, final %v)", res.Outcome, res.Rounds, res.FinalOveruseRatio)
		}
		if res.Rounds != 2 {
			t.Fatalf("rounds = %d, want 2", res.Rounds)
		}
		if !units.NearlyEqual(res.InitialOveruseKWh, 35, 1e-9) {
			t.Fatalf("initial overuse = %v", res.InitialOveruseKWh)
		}
		if !units.NearlyEqual(res.FinalOveruseKWh, 8, 1e-9) {
			t.Fatalf("final overuse = %v, want 8", res.FinalOveruseKWh)
		}
		if len(res.Awards) != 10 {
			t.Fatalf("awards = %d", len(res.Awards))
		}
		if res.TotalReward <= 0 {
			t.Fatal("total reward should be positive")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("negotiation never finished")
	}
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("UA errors: %v", errs)
	}
}

func TestOfferNegotiation(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := baseConfig()
	cfg.Method = MethodOffer
	cfg.Offer = message.OfferTerms{
		Window:       message.FromInterval(cfg.Window),
		XMax:         0.7,
		AllowanceKWh: 13.5,
		LowPrice:     0.5,
		NormalPrice:  1,
		HighPrice:    2,
	}
	ua, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for name := range cfg.Loads {
		accept := i%2 == 0 // five accept, five decline
		i++
		bid := 0.0
		if accept {
			bid = 1
		}
		scriptedCustomer(t, b, name, func(round int) float64 { return bid })
	}
	rt, err := agentrt.Start("ua", b, ua, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		if res.Method != MethodOffer || res.Offer == nil {
			t.Fatalf("result = %+v", res)
		}
		if res.Offer.Accepted != 5 || res.Offer.Declined != 5 {
			t.Fatalf("offer outcome = %+v", res.Offer)
		}
		// Accepters cap at 0.7×13.5 = 9.45: usage 5×9.45+5×13.5 = 114.75.
		if !units.NearlyEqual(res.FinalOveruseKWh, 14.75, 1e-9) {
			t.Fatalf("final overuse = %v", res.FinalOveruseKWh)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("offer never closed")
	}
}

func TestRFBNegotiation(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := baseConfig()
	cfg.Method = MethodRequestForBids
	cfg.RFB = protocol.RFBParams{
		LowPrice: 0.5, NormalPrice: 1, HighPrice: 2,
		AllowedOveruseRatio: 0.10,
	}
	ua, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each round customers shave 10% more of their prediction, to a floor.
	for name := range cfg.Loads {
		scriptedCustomer(t, b, name, func(round int) float64 {
			cd := 0.1 * float64(round)
			if cd > 0.3 {
				cd = 0.3
			}
			return cd
		})
	}
	rt, err := agentrt.Start("ua", b, ua, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		if res.Method != MethodRequestForBids {
			t.Fatalf("method = %v", res.Method)
		}
		if res.Outcome != protocol.RFBConverged.String() {
			t.Fatalf("outcome = %q", res.Outcome)
		}
		// Round 2: everyone at 0.8×13.5 = 10.8 ⇒ usage 108, ratio 0.08.
		if res.Rounds != 2 {
			t.Fatalf("rounds = %d", res.Rounds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rfb never finished")
	}
}

// TestRoundTimeoutClosesWithSilentCustomers is the liveness half of E9: two
// customers never answer, quorum is never reached, and the timeout closes
// each round anyway.
func TestRoundTimeoutClosesWithSilentCustomers(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := baseConfig()
	cfg.RoundTimeout = 30 * time.Millisecond
	ua, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for name := range cfg.Loads {
		if i < 2 {
			// Silent customers: register but never answer.
			if _, err := b.Register(name, 64); err != nil {
				t.Fatal(err)
			}
		} else {
			scriptedCustomer(t, b, name, func(round int) float64 {
				cd := 0.1 * float64(round)
				if cd > 0.4 {
					cd = 0.4
				}
				return cd
			})
		}
		i++
	}
	rt, err := agentrt.Start("ua", b, ua, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		if res.Rounds == 0 {
			t.Fatalf("result = %+v", res)
		}
		// Eight active customers at 0.4 → usage 8×8.1 + 2×13.5 = 91.8,
		// ratio −0.082: converged despite the silent pair.
		if res.Outcome != protocol.OutcomeConverged.String() {
			t.Fatalf("outcome = %q", res.Outcome)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed-out negotiation never finished")
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodAuto, MethodOffer, MethodRequestForBids, MethodRewardTable, Method(9)} {
		if m.String() == "" {
			t.Fatal("empty method string")
		}
	}
}

func TestForecasterRequiresHistory(t *testing.T) {
	f := Forecaster{}
	if _, _, err := f.Forecast([]float64{1, 2}); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("error = %v, want ErrNoHistory", err)
	}
	if _, _, err := f.LoadsFromHistory(nil); !errors.Is(err, ErrNoHistory) {
		t.Fatal("no customers should fail")
	}
}

func TestForecasterPicksGoodModel(t *testing.T) {
	f := Forecaster{}
	// A flat series: every model is near-perfect; the forecast must be ~12.
	series := []float64{12, 12, 12, 12, 12, 12, 12}
	v, model, err := f.Forecast(series)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(v, 12, 1e-9) {
		t.Fatalf("forecast = %v, want 12", v)
	}
	if model == "" {
		t.Fatal("model name missing")
	}
	// A trending series: exponential smoothing (alpha 0.6) should beat the
	// wide moving average; at minimum the forecast lands within the range.
	trend := []float64{8, 9, 10, 11, 12, 13, 14}
	v, _, err = f.Forecast(trend)
	if err != nil {
		t.Fatal(err)
	}
	if v < 10 || v > 15 {
		t.Fatalf("trend forecast = %v, want near the recent values", v)
	}
}

func TestForecasterNegativeClamp(t *testing.T) {
	f := Forecaster{Candidates: []prediction.Predictor{prediction.SeasonalNaive{Period: 1}}, Warmup: 1}
	// A crafted series ending negative would clamp; predictors here cannot
	// produce negatives from non-negative input, so verify the clamp via a
	// custom candidate instead.
	v, _, err := f.Forecast([]float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("forecast = %v, want last value 2", v)
	}
}

func TestLoadsFromHistory(t *testing.T) {
	histories := map[string][]float64{
		"c1": {10, 11, 10, 12, 11, 10, 11},
		"c2": {5, 5, 6, 5, 5, 6, 5},
	}
	loads, rep, err := Forecaster{}.LoadsFromHistory(histories)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 {
		t.Fatalf("loads = %d", len(loads))
	}
	for name, l := range loads {
		if l.Predicted <= 0 || l.Allowed != l.Predicted {
			t.Fatalf("%s load = %+v", name, l)
		}
		if rep.ModelByCustomer[name] == "" {
			t.Fatalf("%s has no model", name)
		}
	}
	want := loads["c1"].Predicted + loads["c2"].Predicted
	if rep.TotalPredicted != want {
		t.Fatalf("total = %v, want %v", rep.TotalPredicted, want)
	}
}

func TestForecastError(t *testing.T) {
	loads := map[string]protocol.CustomerLoad{
		"c1": {Predicted: 11},
		"c2": {Predicted: 5},
	}
	actual := map[string]units.Energy{"c1": 10, "c2": 5}
	mape, err := ForecastError(loads, actual)
	if err != nil {
		t.Fatal(err)
	}
	// c1 off by 10%, c2 exact → MAPE 5%.
	if !units.NearlyEqual(mape, 0.05, 1e-9) {
		t.Fatalf("MAPE = %v, want 0.05", mape)
	}
}
