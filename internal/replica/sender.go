// Package replica is the grid head's hot-standby replication subsystem: a
// primary gridd streams its write-ahead journal (internal/store) to standbys
// over the v2 binary wire protocol (internal/bus), each standby replays the
// records through the same recovery paths crash recovery uses
// (internal/telemetry), and on primary loss a deterministic lowest-id-wins
// promotion turns one standby into the new primary without discarding a
// single committed negotiation outcome.
//
// The stream ships the journal's raw on-disk frames, CRC trailers included,
// so a standby verifies the primary's bytes end to end and persists them
// unchanged: a replica journal is byte-identical to the primary's record
// stream. A standby that subscribes below the primary's pruned journal head
// is bootstrapped with the latest snapshot, then tailed from there.
package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
)

// shipHist measures one batch's read-and-ship latency on the primary (the
// replica_ship_seconds series on /metrics).
var shipHist = trace.GetHistogram("replica_ship_seconds")

// Errors reported by the package.
var (
	ErrBadConfig = errors.New("replica: invalid configuration")
	ErrClosed    = errors.New("replica: closed")
)

// senderName is the replication agent's name on the primary's stream bus.
const senderName = "repl"

// SenderConfig parameterises a primary's replication sender.
type SenderConfig struct {
	// Dir is the primary's data directory — the journal being streamed.
	Dir string
	// Addr is the TCP listen address standbys dial.
	Addr string
	// Heartbeat is the idle-stream liveness cadence (default 500ms).
	Heartbeat time.Duration
	// Poll is the journal tail poll interval (default 15ms) — the upper
	// bound replication adds to a standby's staleness beyond batch size.
	Poll time.Duration
	// BatchBytes caps one batch's raw frame bytes (default 256 KiB).
	BatchBytes int
	// WindowRecords bounds how far a streamer runs ahead of a standby's acks
	// before pausing (default 65536 records) — flow control that keeps the
	// per-connection outbound queue from shedding replication frames.
	WindowRecords int
	// MaxFrame bounds one wire frame; it must fit a snapshot bootstrap
	// (default 64 MiB).
	MaxFrame int
}

// withDefaults fills unset fields.
func (c SenderConfig) withDefaults() (SenderConfig, error) {
	if c.Dir == "" {
		return c, fmt.Errorf("%w: sender needs a data directory", ErrBadConfig)
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 15 * time.Millisecond
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 256 << 10
	}
	if c.WindowRecords <= 0 {
		c.WindowRecords = 65536
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	return c, nil
}

// StandbyStatus is one subscribed standby's view from the primary.
type StandbyStatus struct {
	ID         string    `json:"id"`
	ShippedSeq uint64    `json:"shippedSeq"`
	AckedSeq   uint64    `json:"ackedSeq"`
	LagRecords uint64    `json:"lagRecords"` // shipped - acked
	LastAck    time.Time `json:"lastAck"`
	Snapshots  uint64    `json:"snapshots"` // bootstrap snapshots shipped
}

// SenderStatus is the primary-side replication state.
type SenderStatus struct {
	Addr      string          `json:"addr"`
	Standbys  []StandbyStatus `json:"standbys"`
	Batches   uint64          `json:"batches"`
	Records   uint64          `json:"records"`
	Bytes     uint64          `json:"bytes"`
	Snapshots uint64          `json:"snapshots"`
	Resyncs   uint64          `json:"resyncs"` // re-subscriptions served
}

// sub is one standby's streaming state.
type sub struct {
	id       string
	stop     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}

	mu         sync.Mutex
	shippedSeq uint64
	ackedSeq   uint64
	lastAck    time.Time
	snapshots  uint64
}

// halt asks the streamer to stop (idempotent).
func (sb *sub) halt() { sb.stopOnce.Do(func() { close(sb.stop) }) }

// Sender streams a journal directory to subscribed standbys. One Sender
// serves any number of standbys, each on its own TCP connection and cursor.
type Sender struct {
	cfg   SenderConfig
	inner *bus.InProc
	srv   *bus.Server
	inbox <-chan message.Envelope

	mu     sync.Mutex
	subs   map[string]*sub
	closed bool

	statBatches, statRecords, statBytes, statSnapshots, statResyncs uint64

	done chan struct{}
}

// StartSender listens on cfg.Addr and serves the replication stream from
// cfg.Dir. Callers must Close it.
func StartSender(cfg SenderConfig) (*Sender, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}
	srv, err := bus.ListenAndServeConfig(cfg.Addr, inner, bus.ServerConfig{MaxFrame: cfg.MaxFrame})
	if err != nil {
		inner.Close()
		return nil, err
	}
	inbox, err := inner.Register(senderName, 1024)
	if err != nil {
		srv.Close()
		inner.Close()
		return nil, err
	}
	s := &Sender{
		cfg:   cfg,
		inner: inner,
		srv:   srv,
		inbox: inbox,
		subs:  make(map[string]*sub),
		done:  make(chan struct{}),
	}
	go s.controlLoop()
	return s, nil
}

// Addr returns the sender's bound listen address.
func (s *Sender) Addr() string { return s.srv.Addr() }

// controlLoop handles subscribe and ack messages from standbys.
func (s *Sender) controlLoop() {
	defer close(s.done)
	for env := range s.inbox {
		p, err := env.Decode()
		if err != nil {
			continue
		}
		switch m := p.(type) {
		case message.ReplSubscribe:
			s.subscribe(env.From, m)
		case message.ReplAck:
			s.ack(env.From, m)
		}
	}
}

// subscribe starts (or restarts) the streamer for one standby.
func (s *Sender) subscribe(conn string, m message.ReplSubscribe) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if old, ok := s.subs[conn]; ok {
		// A re-subscription replaces the cursor: stop the old streamer first
		// so two goroutines never interleave frames to one standby.
		old.halt()
		s.mu.Unlock()
		<-old.stopped
		s.mu.Lock()
		if s.subs[conn] == old {
			delete(s.subs, conn)
		}
		s.statResyncs++
	}
	sb := &sub{id: m.Replica, stop: make(chan struct{}), stopped: make(chan struct{})}
	sb.ackedSeq = m.FromSeq
	sb.shippedSeq = m.FromSeq
	sb.lastAck = time.Now()
	s.subs[conn] = sb
	s.mu.Unlock()
	go s.stream(conn, sb, m.FromSeq)
}

// ack records a standby's applied position.
func (s *Sender) ack(conn string, m message.ReplAck) {
	s.mu.Lock()
	sb := s.subs[conn]
	s.mu.Unlock()
	if sb == nil {
		return
	}
	sb.mu.Lock()
	if m.AppliedSeq > sb.ackedSeq {
		sb.ackedSeq = m.AppliedSeq
	}
	sb.lastAck = time.Now()
	sb.mu.Unlock()
}

// send ships one payload to a standby's connection. A delivery error means
// the connection (or its bridged mailbox) is gone; the streamer unwinds and
// the standby re-subscribes on its next connection.
func (s *Sender) send(conn string, p message.Payload) error {
	env, err := message.NewEnvelope(senderName, conn, "replication", p)
	if err != nil {
		return err
	}
	return s.inner.Send(env)
}

// stream is one standby's streamer goroutine: cursor open (with snapshot
// bootstrap on a gap), then poll-tail-ship until the connection dies or the
// sender closes.
func (s *Sender) stream(conn string, sb *sub, fromSeq uint64) {
	defer close(sb.stopped)
	defer func() {
		s.mu.Lock()
		if s.subs[conn] == sb {
			delete(s.subs, conn)
		}
		s.mu.Unlock()
	}()

	tl, err := store.OpenTail(s.cfg.Dir, fromSeq)
	if errors.Is(err, store.ErrGap) {
		// The standby's position was pruned away (or it is empty and the
		// journal starts beyond 1): bootstrap it from the latest snapshot.
		seq, blob, ok := store.LatestSnapshotData(s.cfg.Dir)
		if !ok || seq <= fromSeq {
			// Nothing here can move this follower forward — its cursor is
			// beyond everything this journal holds (a forked follower, e.g.
			// an old primary rejoining with an unreplicated tail). Silence
			// would look like a dead primary and invite a promotion; answer
			// with a heartbeat at our head instead, which the follower reads
			// as a divergence verdict, then drop the stream.
			_ = s.send(conn, message.ReplHeartbeat{LastSeq: seq})
			return
		}
		if err := s.send(conn, message.ReplSnapshot{Seq: seq, Blob: blob}); err != nil {
			return
		}
		sb.mu.Lock()
		sb.snapshots++
		sb.shippedSeq = seq
		sb.mu.Unlock()
		s.mu.Lock()
		s.statSnapshots++
		s.mu.Unlock()
		tl, err = store.OpenTail(s.cfg.Dir, seq)
	}
	if err != nil {
		return
	}
	defer tl.Close()

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	poll := time.NewTicker(s.cfg.Poll)
	defer poll.Stop()

	for {
		select {
		case <-sb.stop:
			return
		case <-heartbeat.C:
			sb.mu.Lock()
			shipped := sb.shippedSeq
			sb.mu.Unlock()
			if err := s.send(conn, message.ReplHeartbeat{LastSeq: shipped}); err != nil {
				return
			}
		case <-poll.C:
			for {
				// Flow control: never run further ahead of the standby's acks
				// than the window, so the per-connection outbound queue can
				// never shed a replication frame.
				sb.mu.Lock()
				inFlight := sb.shippedSeq - sb.ackedSeq
				sb.mu.Unlock()
				if inFlight >= uint64(s.cfg.WindowRecords) {
					break
				}
				t0 := time.Now()
				batch, err := tl.Next(s.cfg.BatchBytes)
				if err != nil {
					// The standby lagged past a prune (ErrGap) or the journal
					// turned unreadable: drop the stream; the standby will
					// re-subscribe and bootstrap from a snapshot.
					return
				}
				if batch.Count == 0 {
					break // caught up; next poll tick looks again
				}
				if err := s.send(conn, message.ReplBatch{FirstSeq: batch.FirstSeq, Count: batch.Count, Frames: batch.Frames}); err != nil {
					return
				}
				shipHist.Observe(time.Since(t0))
				sb.mu.Lock()
				sb.shippedSeq = batch.LastSeq()
				sb.mu.Unlock()
				s.mu.Lock()
				s.statBatches++
				s.statRecords += uint64(batch.Count)
				s.statBytes += uint64(len(batch.Frames))
				s.mu.Unlock()
				select {
				case <-sb.stop:
					return
				default:
				}
			}
		}
	}
}

// Status snapshots the sender's replication state.
func (s *Sender) Status() SenderStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SenderStatus{
		Addr:      s.srv.Addr(),
		Batches:   s.statBatches,
		Records:   s.statRecords,
		Bytes:     s.statBytes,
		Snapshots: s.statSnapshots,
		Resyncs:   s.statResyncs,
	}
	for _, sb := range s.subs {
		sb.mu.Lock()
		st.Standbys = append(st.Standbys, StandbyStatus{
			ID:         sb.id,
			ShippedSeq: sb.shippedSeq,
			AckedSeq:   sb.ackedSeq,
			LagRecords: sb.shippedSeq - sb.ackedSeq,
			LastAck:    sb.lastAck,
			Snapshots:  sb.snapshots,
		})
		sb.mu.Unlock()
	}
	sort.Slice(st.Standbys, func(i, j int) bool { return st.Standbys[i].ID < st.Standbys[j].ID })
	return st
}

// WaitDrain blocks until every subscribed standby has acknowledged seq (or
// the timeout passes), reporting whether the fleet fully drained. A primary
// shutting down cleanly calls it after sealing, so the seal reaches the
// standbys before their connections drop.
func (s *Sender) WaitDrain(seq uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		drained := true
		s.mu.Lock()
		for _, sb := range s.subs {
			sb.mu.Lock()
			if sb.ackedSeq < seq {
				drained = false
			}
			sb.mu.Unlock()
		}
		s.mu.Unlock()
		if drained {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops every streamer and tears the listener down.
func (s *Sender) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := make([]*sub, 0, len(s.subs))
	for _, sb := range s.subs {
		subs = append(subs, sb)
	}
	s.mu.Unlock()
	for _, sb := range subs {
		sb.halt()
		<-sb.stopped
	}
	s.srv.Close()
	s.inner.Close() // closes the control inbox; controlLoop exits
	<-s.done
}
