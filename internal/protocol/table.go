package protocol

import (
	"fmt"
	"math"
	"strings"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// Entry is one reward-table row.
type Entry struct {
	CutDown float64
	Reward  float64
}

// Table is the Utility Agent's internal reward table: rewards indexed by
// strictly increasing cut-down levels.
type Table struct {
	Entries []Entry
}

// NewLinearTable builds the paper's initial table shape: a reward
// proportional to the cut-down (Figure 6 shows 4.25 per 0.1 step, i.e.
// slope 42.5). cutDowns must be strictly increasing fractions.
func NewLinearTable(cutDowns []float64, slope float64) (Table, error) {
	if len(cutDowns) == 0 {
		return Table{}, fmt.Errorf("%w: no cut-down levels", ErrBadTable)
	}
	if slope < 0 {
		return Table{}, fmt.Errorf("%w: negative slope %v", ErrBadTable, slope)
	}
	t := Table{Entries: make([]Entry, 0, len(cutDowns))}
	prev := -1.0
	for _, cd := range cutDowns {
		if cd < 0 || cd > 1 || math.IsNaN(cd) {
			return Table{}, fmt.Errorf("%w: cut-down %v", ErrBadTable, cd)
		}
		if cd <= prev {
			return Table{}, fmt.Errorf("%w: cut-downs must be strictly increasing", ErrBadTable)
		}
		prev = cd
		t.Entries = append(t.Entries, Entry{CutDown: cd, Reward: slope * cd})
	}
	return t, nil
}

// StandardTable builds the prototype's table over cut-downs 0.0 … 0.9.
func StandardTable(slope float64) (Table, error) {
	cds := units.StandardCutDowns()
	raw := make([]float64, len(cds))
	for i, cd := range cds {
		raw[i] = cd.Float()
	}
	return NewLinearTable(raw, slope)
}

// Clone deep-copies the table.
func (t Table) Clone() Table {
	return Table{Entries: append([]Entry(nil), t.Entries...)}
}

// RewardFor returns the reward at an exact cut-down level.
func (t Table) RewardFor(cutDown float64) (float64, bool) {
	for _, e := range t.Entries {
		if e.CutDown == cutDown {
			return e.Reward, true
		}
	}
	return 0, false
}

// Levels returns the cut-down levels in order.
func (t Table) Levels() []float64 {
	out := make([]float64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.CutDown
	}
	return out
}

// Update applies the paper's reward update rule to every entry:
//
//	new_reward = reward + beta · overuse · (1 − reward/max_reward) · reward
//
// where max_reward is the per-level ceiling from Params. It returns the new
// table and the largest reward increase across entries (the quantity the
// termination rule compares against Epsilon). Entries with reward 0 (the
// cut-down 0 row) stay 0, as in the prototype. A non-positive overuse leaves
// the table unchanged: the UA never concedes downwards (monotonic
// concession) and has no reason to concede upwards without a peak.
func (t Table) Update(overuse float64, p Params) (Table, float64) {
	next := t.Clone()
	if overuse <= 0 {
		return next, 0
	}
	maxDelta := 0.0
	for i, e := range next.Entries {
		maxR := p.MaxRewardAt(e.CutDown)
		if maxR <= 0 || e.Reward <= 0 {
			continue
		}
		logistic := 1 - e.Reward/maxR
		if logistic < 0 {
			logistic = 0
		}
		delta := p.Beta * overuse * logistic * e.Reward
		next.Entries[i].Reward = e.Reward + delta
		if next.Entries[i].Reward > maxR {
			next.Entries[i].Reward = maxR
		}
		if d := next.Entries[i].Reward - e.Reward; d > maxDelta {
			maxDelta = d
		}
	}
	return next, maxDelta
}

// InterpolatedReward returns the reward at an arbitrary cut-down fraction by
// linear interpolation between the bracketing table rows. Below the first row
// it interpolates from (0, 0); above the last row the last reward applies
// (the table promises nothing extra beyond its top level). An empty table
// pays 0.
func (t Table) InterpolatedReward(cutDown float64) float64 {
	if len(t.Entries) == 0 {
		return 0
	}
	prev := Entry{CutDown: 0, Reward: 0}
	for _, e := range t.Entries {
		if cutDown <= e.CutDown {
			span := e.CutDown - prev.CutDown
			if span <= 0 {
				return e.Reward
			}
			frac := (cutDown - prev.CutDown) / span
			return prev.Reward + frac*(e.Reward-prev.Reward)
		}
		prev = e
	}
	return prev.Reward
}

// DominatesOrEqual reports whether every reward in t is at least the reward
// at the same level in prev — the monotonic concession invariant between
// consecutive announcements. Tables with different levels do not compare.
func (t Table) DominatesOrEqual(prev Table) bool {
	if len(t.Entries) != len(prev.Entries) {
		return false
	}
	for i := range t.Entries {
		if t.Entries[i].CutDown != prev.Entries[i].CutDown {
			return false
		}
		if t.Entries[i].Reward < prev.Entries[i].Reward-1e-12 {
			return false
		}
	}
	return true
}

// AtCeiling reports whether every positive-cut-down entry has reached its
// ceiling within epsilon — a diagnostic for the paper's second termination
// condition. RTSession.CloseRound no longer consults it: the session
// terminates via the maxDelta <= Epsilon rule alone, one round after the
// saturated table was announced, so customers always get to bid on it ("the
// reward values ... have (almost) reached the maximum value").
func (t Table) AtCeiling(p Params, epsilon float64) bool {
	for _, e := range t.Entries {
		if e.CutDown == 0 {
			continue
		}
		if p.MaxRewardAt(e.CutDown)-e.Reward > epsilon {
			return false
		}
	}
	return true
}

// Message converts the table to its wire form for a given window and round.
func (t Table) Message(window units.Interval, round int) message.RewardTable {
	entries := make([]message.RewardEntry, len(t.Entries))
	for i, e := range t.Entries {
		entries[i] = message.RewardEntry{CutDown: e.CutDown, Reward: e.Reward}
	}
	return message.RewardTable{
		Window:  message.FromInterval(window),
		Round:   round,
		Entries: entries,
	}
}

// TableFromMessage converts a wire reward table to the internal form.
func TableFromMessage(m message.RewardTable) Table {
	entries := make([]Entry, len(m.Entries))
	for i, e := range m.Entries {
		entries[i] = Entry{CutDown: e.CutDown, Reward: e.Reward}
	}
	return Table{Entries: entries}
}

// String renders the table as "cutdown:reward" pairs.
func (t Table) String() string {
	parts := make([]string, len(t.Entries))
	for i, e := range t.Entries {
		parts[i] = fmt.Sprintf("%.1f:%.2f", e.CutDown, e.Reward)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
