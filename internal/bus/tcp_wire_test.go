package bus

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"loadbalance/internal/message"
)

// newServer boots a server over a fresh in-proc bus with a local "ua" agent.
func newServer(t *testing.T, cfg ServerConfig) (*Server, *InProc, <-chan message.Envelope) {
	t.Helper()
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inner.Close)
	uaBox, err := inner.Register("ua", 64)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServeConfig("127.0.0.1:0", inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, inner, uaBox
}

// TestDuplicateHelloFailsFast dials twice under one name: the second dial
// must be answered with a terminal error frame at handshake time instead of
// hanging until its first read.
func TestDuplicateHelloFailsFast(t *testing.T) {
	srv, _, _ := newServer(t, ServerConfig{})
	c1, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	start := time.Now()
	_, err = Dial(srv.Addr(), "c1")
	if err == nil {
		t.Fatal("duplicate hello must fail")
	}
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("error = %v, want remote duplicate-agent rejection", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("rejection took %v, should be immediate", d)
	}
	if ws := srv.WireStats(); ws.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", ws.Rejected)
	}

	// The name frees up when the first client leaves; a redial then works —
	// which also proves the session teardown unregisters exactly once and
	// cleanly.
	c1.Close()
	redial := func() error {
		c, err := Dial(srv.Addr(), "c1")
		if err != nil {
			return err
		}
		c.Close()
		return nil
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := redial(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("name never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLegacyDuplicateHelloGetsErrorFrame covers the v1 path: a JSON client
// dialing a taken name receives a terminal error line.
func TestLegacyDuplicateHelloGetsErrorFrame(t *testing.T) {
	srv, _, _ := newServer(t, ServerConfig{})
	c1, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{\"hello\":\"c1\"}\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	var f frame
	if err := json.Unmarshal(line, &f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Error, "already registered") {
		t.Fatalf("error frame = %+v", f)
	}
}

// TestLegacyClientInterop proves v1 clients still work end to end against
// the v2 server: hello, inbound envelope, outbound envelope, all as
// newline-JSON.
func TestLegacyClientInterop(t *testing.T) {
	srv, inner, uaBox := newServer(t, ServerConfig{})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{\"hello\":\"c1\"}\n")); err != nil {
		t.Fatal(err)
	}

	// Inbound: legacy envelope frame reaches the bridged bus.
	in := env(t, "c1", "ua")
	buf, err := json.Marshal(frame{Envelope: &in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(buf, '\n')); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" {
			t.Fatalf("envelope = %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy inbound envelope never delivered")
	}
	if ws := srv.WireStats(); ws.LegacyConn != 1 {
		t.Fatalf("legacy conns = %d, want 1", ws.LegacyConn)
	}

	// Outbound: a local agent's reply arrives as a JSON line.
	reply, err := message.NewEnvelope("ua", "c1", "s1", message.Award{Round: 1, CutDown: 0.2, Reward: 8.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Send(reply); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no outbound frame: %v", err)
	}
	var f frame
	if err := json.Unmarshal(line, &f); err != nil || f.Envelope == nil {
		t.Fatalf("outbound frame = %s (err %v)", line, err)
	}
	if f.Envelope.Kind != message.KindAward {
		t.Fatalf("outbound envelope = %+v", f.Envelope)
	}
}

// TestVersionNegotiation checks the hello ack carries the negotiated
// version, and that a client offering a higher version is accepted at the
// server's level.
func TestVersionNegotiation(t *testing.T) {
	srv, _, _ := newServer(t, ServerConfig{})
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if v := cli.Version(); v != WireVersion {
		t.Fatalf("version = %d, want %d", v, WireVersion)
	}

	// A future client offering version 9 is negotiated down to 2.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := appendFrame([]byte{wireMagic, 9}, frameHello, []byte("c2"))
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	kind, payload, _, err := readFrame(bufio.NewReader(conn), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameHelloAck || len(payload) != 1 || payload[0] != WireVersion {
		t.Fatalf("ack = kind %d payload %v, want version %d ack", kind, payload, WireVersion)
	}
}

// TestMalformedBinaryFrameSkipped sends an undecodable envelope frame
// between two valid ones: the session survives and the malformed counter
// ticks.
func TestMalformedBinaryFrameSkipped(t *testing.T) {
	srv, _, uaBox := newServer(t, ServerConfig{})
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Send(env(t, "c1", "ua")); err != nil {
		t.Fatal(err)
	}
	<-uaBox

	// Raw garbage wearing an envelope frame kind.
	raw := appendFrame(nil, frameEnvelope, []byte{0xff, 0xff, 0xff})
	if _, err := cli.conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	// And a structurally valid envelope with an unknown kind tag.
	bogus := message.Envelope{From: "c1", To: "ua", Session: "s1", Kind: "bogus", Body: []byte("{}")}
	if _, err := cli.conn.Write(EncodeEnvelopeFrame(nil, bogus)); err != nil {
		t.Fatal(err)
	}

	if err := cli.Send(env(t, "c1", "ua")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" {
			t.Fatalf("envelope = %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid frame after garbage never delivered")
	}
	if ws := srv.WireStats(); ws.Malformed != 2 {
		t.Fatalf("malformed = %d, want 2", ws.Malformed)
	}
}

// TestOversizedFrameKillsSession declares a frame over the limit: the
// server answers with a terminal error and drops the connection.
func TestOversizedFrameKillsSession(t *testing.T) {
	srv, _, _ := newServer(t, ServerConfig{MaxFrame: 1 << 10})
	cli, err := DialConfig(srv.Addr(), "c1", ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], 1<<20)
	if _, err := cli.conn.Write(huge[:n]); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-cli.Inbox():
		if open {
			t.Fatal("expected the inbox to close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session survived an oversized frame")
	}
	if err := cli.Err(); err == nil || !strings.Contains(err.Error(), "size limit") {
		t.Fatalf("terminal error = %v, want frame-size rejection", err)
	}
}

// TestDecodeEnvelopeFrameHugeLength feeds the exported decoder a crafted
// 2^63-scale length varint: it must error, not overflow int and panic.
func TestDecodeEnvelopeFrameHugeLength(t *testing.T) {
	data := appendUvarint(nil, 1<<63)
	data = append(data, frameEnvelope)
	if _, _, err := DecodeEnvelopeFrame(data); err == nil {
		t.Fatal("huge declared length must be rejected")
	}
	// And a merely-large length that exceeds the buffer.
	data = appendUvarint(nil, 1<<20)
	data = append(data, frameEnvelope)
	if _, _, err := DecodeEnvelopeFrame(data); err == nil {
		t.Fatal("length beyond the buffer must be rejected")
	}
}

// TestMidFrameDisconnect drops the connection halfway through a frame; the
// server must unwind the session and free the name.
func TestMidFrameDisconnect(t *testing.T) {
	srv, inner, _ := newServer(t, ServerConfig{})
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}

	full := EncodeEnvelopeFrame(nil, env(t, "c1", "ua"))
	if _, err := cli.conn.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		agents := inner.Agents()
		if len(agents) == 1 && agents[0] == "ua" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never unregistered after mid-frame disconnect: %v", agents)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCloseRacesHandlers closes the server while a crowd of clients is
// mid-handshake and mid-send; nothing may deadlock or panic (run with -race
// in CI).
func TestServerCloseRacesHandlers(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := inner.Register("ua", 1024); err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), fmt_c(i))
			if err != nil {
				return // the race is the point: rejected dials are fine
			}
			for j := 0; j < 50; j++ {
				if err := cli.Send(env(t, fmt_c(i), "ua")); err != nil {
					break
				}
			}
			cli.Close()
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	wg.Wait()
}

// fmt_c names a test client.
func fmt_c(i int) string { return "c" + string(rune('a'+i)) }

// TestClientInboxOverflowCounted floods a one-slot inbox and expects the
// overflow to be counted, not silent.
func TestClientInboxOverflowCounted(t *testing.T) {
	srv, inner, _ := newServer(t, ServerConfig{})
	_ = srv
	cli, err := DialConfig(srv.Addr(), "c1", ClientConfig{InboxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const sends = 20
	for i := 0; i < sends; i++ {
		reply, err := message.NewEnvelope("ua", "c1", "s1", message.Award{Round: 1, CutDown: 0.2, Reward: 8.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := inner.Send(reply); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := cli.Stats()
		if st.Received+st.Dropped == sends {
			if st.Dropped == 0 {
				t.Fatalf("stats = %+v, expected drops at a 1-slot inbox", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", cli.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientSendConcurrentWithClose stresses the Send/Close split: Close
// must never wait behind a Send's network write.
func TestClientSendConcurrentWithClose(t *testing.T) {
	srv, _, _ := newServer(t, ServerConfig{})
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if err := cli.Send(env(t, "c1", "ua")); err != nil {
				return
			}
		}
	}()
	time.Sleep(time.Millisecond)
	done := make(chan struct{})
	go func() {
		cli.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind Send")
	}
	wg.Wait()
}

// TestRemoteBusRoundTrip drives the Bus adapter: two agents registered on a
// Remote exchange envelopes through the server's bridged bus.
func TestRemoteBusRoundTrip(t *testing.T) {
	srv, _, uaBox := newServer(t, ServerConfig{})
	remote := NewRemote(srv.Addr())
	defer remote.Close()

	c1Box, err := remote.Register("c1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := remote.Agents(); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("agents = %v", got)
	}
	if err := remote.Send(env(t, "c1", "ua")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" {
			t.Fatalf("envelope = %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remote send never delivered")
	}

	// Unknown sender is rejected locally.
	if err := remote.Send(env(t, "ghost", "ua")); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("ghost send error = %v", err)
	}
	// Duplicate registration is rejected before dialing.
	if _, err := remote.Register("c1", 16); !errors.Is(err, ErrDuplicateAgent) {
		t.Fatalf("duplicate register error = %v", err)
	}
	// Unregister closes the inbox and frees the name on the server.
	remote.Unregister("c1")
	if _, open := <-c1Box; open {
		t.Fatal("inbox should close on Unregister")
	}
}
