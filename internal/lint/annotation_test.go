package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseAllowBody(t *testing.T) {
	cases := []struct {
		in      string
		names   []string
		wantErr string
	}{
		{in: "allow walltime(latency measurement)", names: []string{"walltime"}},
		{in: "allow walltime(reason with spaces, commas; punctuation!)", names: []string{"walltime"}},
		{in: "allow walltime(a), globalrand(b)", names: []string{"walltime", "globalrand"}},
		{in: "allow  walltime(padded)  ,  lockedsend(more)", names: []string{"walltime", "lockedsend"}},
		{in: "allow walltime", wantErr: "missing (reason)"},
		{in: "allow walltime()", wantErr: "empty reason"},
		{in: "allow walltime(   )", wantErr: "empty reason"},
		{in: "allow walltime(unclosed", wantErr: "unclosed reason"},
		{in: "allow Walltime(caps)", wantErr: "bad analyzer name"},
		{in: "allow wall time(space)", wantErr: "bad analyzer name"},
		{in: "allow (anonymous)", wantErr: "bad analyzer name"},
		{in: "allow", wantErr: "missing space"},
		{in: "allow\t", wantErr: "missing analyzer list"},
		{in: "allow walltime(a) globalrand(b)", wantErr: "trailing text"},
		{in: "allow walltime(a),", wantErr: "missing (reason)"},
		{in: "allowed walltime(verb typo)", wantErr: "unknown verb"},
		{in: "ignore walltime(wrong verb)", wantErr: "unknown verb"},
		{in: "disable", wantErr: "unknown verb"},
	}
	for _, c := range cases {
		names, err := parseAllowBody(c.in)
		if c.wantErr != "" {
			if err == nil {
				t.Errorf("%q: expected error containing %q, got names %v", c.in, c.wantErr, names)
			} else if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%q: error %q does not contain %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error: %v", c.in, err)
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("%q: got %v, want %v", c.in, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("%q: got %v, want %v", c.in, names, c.names)
			}
		}
	}
}

// parseFileAnnotations is a test helper running the full comment scan.
func parseFileAnnotations(t *testing.T, src string, known ...string) (allowSet, []rawDiag) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	knownSet := make(map[string]bool)
	for _, k := range known {
		knownSet[k] = true
	}
	return parseAnnotations(fset, []*ast.File{f}, knownSet)
}

func TestParseAnnotationsPlacement(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //gridlint:allow walltime(trailing form)
	//gridlint:allow globalrand(own-line form)
	_ = 2
}
`
	allows, bad := parseFileAnnotations(t, src, "walltime", "globalrand")
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", bad)
	}
	// Trailing: suppresses on its own line (4).
	if !allows.suppressed("walltime", position("fixture.go", 4)) {
		t.Error("trailing annotation must suppress its own line")
	}
	// Own-line on 5: suppresses line 6.
	if !allows.suppressed("globalrand", position("fixture.go", 6)) {
		t.Error("own-line annotation must suppress the line below")
	}
	// Wrong analyzer or far line: no suppression.
	if allows.suppressed("globalrand", position("fixture.go", 4)) {
		t.Error("annotation must only suppress its named analyzer")
	}
	if allows.suppressed("walltime", position("fixture.go", 7)) {
		t.Error("annotation must not reach two lines down")
	}
}

func TestParseAnnotationsMalformed(t *testing.T) {
	src := `package p

//gridlint:allow walltime
//gridlint:allow unknownanalyzer(reason)
//gridlint:allow gridlint(self-allow)
//gridlint:suppress walltime(wrong verb)
func f() {}
`
	allows, bad := parseFileAnnotations(t, src, "walltime")
	if len(bad) != 4 {
		t.Fatalf("want 4 malformed annotations, got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if b.analyzer != AnnotationAnalyzerName {
			t.Errorf("malformed annotation reported under %q, want %q", b.analyzer, AnnotationAnalyzerName)
		}
		if !strings.Contains(b.message, "annotation") {
			t.Errorf("message %q should mention the annotation", b.message)
		}
	}
	// None of the malformed forms may suppress anything.
	for line := 1; line <= 7; line++ {
		if allows.suppressed("walltime", position("fixture.go", line)) {
			t.Errorf("malformed annotation suppressed line %d", line)
		}
	}
}

func position(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}
