package health

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseRule(t *testing.T) {
	rc, err := ParseRule("overload:feedback_score<40:for=2")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	want := RuleConfig{Name: "overload", Metric: "feedback_score", Op: "<", Threshold: 40, For: 2}
	if rc != want {
		t.Fatalf("got %+v, want %+v", rc, want)
	}

	rc, err = ParseRule("slow:negotiation_session_seconds_p99>1.5")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if rc.Op != ">" || rc.Threshold != 1.5 || rc.For != 1 {
		t.Fatalf("defaulted rule wrong: %+v", rc)
	}

	for _, bad := range []string{
		"", "noname", ":x<1", "n:metric", "n:<1", "n:m<", "n:m<abc",
		"n:m<1:for=0", "n:m<1:for=x", "n:m<1:until=3",
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}

	rules, err := ParseRules("a:m<1, b:n>2:for=3")
	if err != nil || len(rules) != 2 {
		t.Fatalf("ParseRules: %v, %+v", err, rules)
	}
	if rules, err := ParseRules("  "); err != nil || rules != nil {
		t.Fatalf("empty ParseRules: %v, %+v", err, rules)
	}
}

func TestAlertSustainFireResolve(t *testing.T) {
	v := 100.0
	RegisterGauge("test_alert_metric", func() float64 { return v })
	defer UnregisterGauge("test_alert_metric")

	l := newTestLogger(t, Config{MinLevel: Debug})
	e := NewEngine([]RuleConfig{{Name: "low", Metric: "test_alert_metric", Op: "<", Threshold: 40, For: 2}}, l)
	var fired []string
	e.OnFire = func(a AlertStatus) { fired = append(fired, a.Rule.Name) }

	st := e.Eval()[0]
	if st.State != StateOK {
		t.Fatalf("healthy eval state = %s", st.State)
	}

	v = 30 // breach 1 of 2: pending, not firing
	if st = e.Eval()[0]; st.State != StatePending || len(fired) != 0 {
		t.Fatalf("first breach: state=%s fired=%v", st.State, fired)
	}
	// breach 2 of 2: fires exactly once
	if st = e.Eval()[0]; st.State != StateFiring {
		t.Fatalf("second breach: state=%s", st.State)
	}
	e.Eval() // still breaching: stays firing, no re-fire
	if len(fired) != 1 || fired[0] != "low" {
		t.Fatalf("OnFire calls = %v, want exactly one", fired)
	}
	if e.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d", e.FiringCount())
	}

	v = 80 // clears: resolves immediately
	if st = e.Eval()[0]; st.State != StateOK || st.FireCount != 1 {
		t.Fatalf("resolve: %+v", st)
	}
	if e.FiringCount() != 0 {
		t.Fatalf("FiringCount after resolve = %d", e.FiringCount())
	}

	// A single-eval blip below sustain never fires.
	v = 30
	e.Eval()
	v = 80
	e.Eval()
	if len(fired) != 1 {
		t.Fatalf("blip fired: %v", fired)
	}

	// Transition events landed in the log with the alert name.
	var sawFire, sawResolve bool
	for _, ev := range l.Events(LogFilter{Component: "alerts"}) {
		switch ev.Msg {
		case "alert firing":
			sawFire = true
		case "alert resolved":
			sawResolve = true
		}
	}
	if !sawFire || !sawResolve {
		t.Fatalf("alert transitions not logged (fire=%v resolve=%v)", sawFire, sawResolve)
	}
}

func TestAlertUnknownMetricNeverFires(t *testing.T) {
	e := NewEngine([]RuleConfig{{Name: "ghost", Metric: "does_not_exist", Op: ">", Threshold: 0, For: 1}}, newTestLogger(t, Config{MinLevel: Off}))
	for i := 0; i < 3; i++ {
		if st := e.Eval()[0]; st.State != StateOK {
			t.Fatalf("unknown metric state = %s", st.State)
		}
	}
}

func TestAlertsHandler(t *testing.T) {
	v := 10.0
	RegisterGauge("test_handler_metric", func() float64 { return v })
	defer UnregisterGauge("test_handler_metric")
	e := NewEngine([]RuleConfig{{Name: "hot", Metric: "test_handler_metric", Op: ">", Threshold: 5, For: 1}}, newTestLogger(t, Config{MinLevel: Off}))
	e.Eval()

	rec := httptest.NewRecorder()
	AlertsHandler(e)(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /alerts: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Alerts []struct {
			Name  string  `json:"name"`
			State string  `json:"state"`
			Value float64 `json:"value"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0].State != StateFiring || doc.Alerts[0].Value != 10 {
		t.Fatalf("alerts doc = %+v", doc)
	}
}

func TestWriteAlertMetrics(t *testing.T) {
	v := 10.0
	RegisterGauge("test_metrics_metric", func() float64 { return v })
	defer UnregisterGauge("test_metrics_metric")
	e := NewEngine([]RuleConfig{{Name: "hot", Metric: "test_metrics_metric", Op: ">", Threshold: 5, For: 1}}, newTestLogger(t, Config{MinLevel: Off}))
	e.Eval()
	var sb strings.Builder
	WriteAlertMetrics(&sb, e)
	out := sb.String()
	for _, want := range []string{
		`health_alert_firing{alert="hot"} 1`,
		`health_alert_fired_total{alert="hot"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("alert metrics missing %q:\n%s", want, out)
		}
	}
}
