package kb

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// domainOntology builds a small load-management ontology used across tests.
func domainOntology(t *testing.T) *Ontology {
	t.Helper()
	o := NewOntology()
	steps := []error{
		o.DeclareSort("agent", SortAny),
		o.DeclareSort("customer", "agent"),
		o.DeclareSort("utility", "agent"),
		o.DeclareConst("ua", "utility"),
		o.DeclareConst("c1", "customer"),
		o.DeclareConst("c2", "customer"),
		o.DeclarePred("offered_reward", SortNumber, SortNumber),              // cutdown, reward
		o.DeclarePred("required_reward", "customer", SortNumber, SortNumber), // who, cutdown, reward
		o.DeclarePred("acceptable", "customer", SortNumber),
		o.DeclarePred("responded", "customer"),
		o.DeclarePred("silent", "customer"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatalf("ontology setup: %v", err)
		}
	}
	return o
}

func TestOntologyDeclarationErrors(t *testing.T) {
	o := NewOntology()
	if err := o.DeclareSort("agent", SortAny); err != nil {
		t.Fatalf("DeclareSort: %v", err)
	}
	if err := o.DeclareSort("agent", SortAny); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate sort error = %v, want ErrDuplicate", err)
	}
	if err := o.DeclareSort("ghost", "nosuch"); !errors.Is(err, ErrUnknownSort) {
		t.Fatalf("unknown parent error = %v, want ErrUnknownSort", err)
	}
	if err := o.DeclareConst("x", "nosuch"); !errors.Is(err, ErrUnknownSort) {
		t.Fatalf("const with unknown sort error = %v, want ErrUnknownSort", err)
	}
	if err := o.DeclarePred("p", "nosuch"); !errors.Is(err, ErrUnknownSort) {
		t.Fatalf("pred with unknown sort error = %v, want ErrUnknownSort", err)
	}
}

func TestIsSubsort(t *testing.T) {
	o := domainOntology(t)
	tests := []struct {
		sub, super string
		want       bool
	}{
		{"customer", "agent", true},
		{"customer", SortAny, true},
		{"customer", "customer", true},
		{"agent", "customer", false},
		{"utility", "customer", false},
		{SortNumber, SortAny, true},
	}
	for _, tt := range tests {
		if got := o.IsSubsort(tt.sub, tt.super); got != tt.want {
			t.Errorf("IsSubsort(%q, %q) = %v, want %v", tt.sub, tt.super, got, tt.want)
		}
	}
}

func TestCheckAtom(t *testing.T) {
	o := domainOntology(t)
	tests := []struct {
		name    string
		give    Atom
		wantErr error
	}{
		{name: "ok", give: A("acceptable", C("c1"), N(0.4))},
		{name: "unknown pred", give: A("nosuch", C("c1")), wantErr: ErrUnknownPredicate},
		{name: "arity", give: A("acceptable", C("c1")), wantErr: ErrArity},
		{name: "sort mismatch", give: A("acceptable", C("ua"), N(0.4)), wantErr: ErrSortMismatch},
		{name: "unknown const", give: A("acceptable", C("c9"), N(0.4)), wantErr: ErrUnknownConstant},
		{name: "not ground", give: A("acceptable", V("X"), N(0.4)), wantErr: ErrNotGround},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := o.CheckAtom(tt.give); !errors.Is(err, tt.wantErr) {
				t.Fatalf("CheckAtom error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestOntologyMerge(t *testing.T) {
	a := NewOntology()
	if err := a.DeclareSort("agent", SortAny); err != nil {
		t.Fatal(err)
	}
	if err := a.DeclarePred("p", "agent"); err != nil {
		t.Fatal(err)
	}
	b := NewOntology()
	if err := b.DeclareSort("agent", SortAny); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareConst("x", "agent"); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if _, err := a.SortOfConst("x"); err != nil {
		t.Fatalf("merged constant missing: %v", err)
	}

	c := NewOntology()
	if err := c.DeclareSort("agent", SortAny); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclarePred("p", SortNumber); err != nil { // conflicting signature
		t.Fatal(err)
	}
	if err := a.Merge(c); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("conflicting merge error = %v, want ErrDuplicate", err)
	}
}

func TestStoreAssertAndTruth(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	atom := A("acceptable", C("c1"), N(0.4))
	if got := s.TruthOf(atom); got != Unknown {
		t.Fatalf("fresh store truth = %v, want Unknown", got)
	}
	if err := s.Assert(atom, True); err != nil {
		t.Fatalf("Assert: %v", err)
	}
	if !s.Holds(atom) {
		t.Fatal("atom should hold after Assert(True)")
	}
	if err := s.Assert(atom, False); err != nil {
		t.Fatalf("Assert(False): %v", err)
	}
	if got := s.TruthOf(atom); got != False {
		t.Fatalf("truth = %v, want False", got)
	}
	if err := s.Assert(atom, Unknown); err != nil {
		t.Fatalf("Assert(Unknown): %v", err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestStoreRejectsBadAtoms(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	if err := s.Assert(A("acceptable", V("X"), N(0.4)), True); !errors.Is(err, ErrNotGround) {
		t.Fatalf("non-ground assert error = %v, want ErrNotGround", err)
	}
	if err := s.Assert(A("nosuch", C("c1")), True); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("unknown predicate error = %v, want ErrUnknownPredicate", err)
	}
}

func TestStoreQueryAndMatch(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	mustAssert(t, s, A("required_reward", C("c1"), N(0.3), N(10)))
	mustAssert(t, s, A("required_reward", C("c1"), N(0.4), N(21)))
	mustAssert(t, s, A("required_reward", C("c2"), N(0.4), N(15)))

	got := s.Query(A("required_reward", C("c1"), V("Cut"), V("Req")))
	if len(got) != 2 {
		t.Fatalf("query returned %d atoms, want 2", len(got))
	}
	for _, a := range got {
		if a.Args[0].Name != "c1" {
			t.Fatalf("query leaked other customer: %s", a)
		}
	}

	// Repeated-variable pattern: same variable must bind consistently.
	mustAssert(t, s, A("offered_reward", N(0.4), N(0.4)))
	same := s.Match(A("offered_reward", V("X"), V("X")), nil)
	if len(same) != 1 {
		t.Fatalf("repeated-variable match = %d, want 1", len(same))
	}
}

func TestStoreCloneIsolation(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	mustAssert(t, s, A("responded", C("c1")))
	c := s.Clone()
	mustAssert(t, c, A("responded", C("c2")))
	if s.Holds(A("responded", C("c2"))) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Holds(A("responded", C("c1"))) {
		t.Fatal("clone lost original fact")
	}
}

func TestGuardEval(t *testing.T) {
	tests := []struct {
		name string
		g    Guard
		b    Binding
		want bool
	}{
		{name: "geq true", g: Guard{Op: OpGeq, Left: V("A"), Right: N(10)}, b: Binding{"A": N(17)}, want: true},
		{name: "geq false", g: Guard{Op: OpGeq, Left: V("A"), Right: N(10)}, b: Binding{"A": N(9)}, want: false},
		{name: "lt", g: Guard{Op: OpLt, Left: N(1), Right: N(2)}, b: Binding{}, want: true},
		{name: "unbound", g: Guard{Op: OpEq, Left: V("Z"), Right: N(1)}, b: Binding{}, want: false},
		{name: "const eq", g: Guard{Op: OpEq, Left: C("c1"), Right: C("c1")}, b: Binding{}, want: true},
		{name: "const neq", g: Guard{Op: OpNeq, Left: C("c1"), Right: C("c2")}, b: Binding{}, want: true},
		{name: "const lt invalid", g: Guard{Op: OpLt, Left: C("c1"), Right: C("c2")}, b: Binding{}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Eval(tt.b); got != tt.want {
				t.Fatalf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRuleValidateUnboundVariables(t *testing.T) {
	r := Rule{
		Name: "bad",
		If:   []Literal{Pos(A("responded", V("C")))},
		Then: []Atom{A("acceptable", V("D"), N(0.1))}, // D unbound
	}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "?D") {
		t.Fatalf("Validate error = %v, want unbound ?D", err)
	}
	neg := Rule{
		Name: "badneg",
		If:   []Literal{Neg(A("responded", V("C")))},
	}
	if err := neg.Validate(); err == nil {
		t.Fatal("negated literal with unbound var should fail validation")
	}
}

// TestInferAcceptability exercises the exact knowledge pattern the Customer
// Agent uses (Section 6.2): a cut-down is acceptable when the offered reward
// meets the customer's required reward.
func TestInferAcceptability(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	mustAssert(t, s, A("required_reward", C("c1"), N(0.3), N(10)))
	mustAssert(t, s, A("required_reward", C("c1"), N(0.4), N(21)))
	mustAssert(t, s, A("offered_reward", N(0.3), N(12.75)))
	mustAssert(t, s, A("offered_reward", N(0.4), N(17)))

	rule := Rule{
		Name: "acceptable_cutdown",
		If: []Literal{
			Pos(A("required_reward", V("C"), V("Cut"), V("Req"))),
			Pos(A("offered_reward", V("Cut"), V("Off"))),
		},
		Guards: []Guard{{Op: OpGeq, Left: V("Off"), Right: V("Req")}},
		Then:   []Atom{A("acceptable", V("C"), V("Cut"))},
	}
	base, err := NewBase("ca", rule)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := NewEngine(base).Infer(s)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if len(derived) != 1 {
		t.Fatalf("derived %d facts, want 1: %v", len(derived), derived)
	}
	if !s.Holds(A("acceptable", C("c1"), N(0.3))) {
		t.Fatal("0.3 should be acceptable (12.75 >= 10)")
	}
	if s.Holds(A("acceptable", C("c1"), N(0.4))) {
		t.Fatal("0.4 should not be acceptable (17 < 21)")
	}
}

func TestInferNegationAsUnknown(t *testing.T) {
	o := domainOntology(t)
	s := NewStore(o)
	mustAssert(t, s, A("required_reward", C("c1"), N(0.3), N(10)))
	mustAssert(t, s, A("required_reward", C("c2"), N(0.3), N(10)))
	mustAssert(t, s, A("responded", C("c1")))

	rule := Rule{
		Name: "mark_silent",
		If: []Literal{
			Pos(A("required_reward", V("C"), V("Cut"), V("Req"))),
			Neg(A("responded", V("C"))),
		},
		Then: []Atom{A("silent", V("C"))},
	}
	base, err := NewBase("sentinel", rule)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(base).Infer(s); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if s.Holds(A("silent", C("c1"))) {
		t.Fatal("c1 responded; must not be silent")
	}
	if !s.Holds(A("silent", C("c2"))) {
		t.Fatal("c2 did not respond; must be silent")
	}
}

func TestInferChainsToFixpoint(t *testing.T) {
	o := NewOntology()
	if err := o.DeclarePred("n", SortNumber); err != nil {
		t.Fatal(err)
	}
	s := NewStore(o)
	mustAssert(t, s, A("n", N(0)))
	// n(X) and X < 5 then n(X+1) cannot be expressed without arithmetic
	// construction; emulate a chain with explicit rules instead.
	var rules []Rule
	for i := 0; i < 5; i++ {
		rules = append(rules, Rule{
			Name: "step",
			If:   []Literal{Pos(A("n", N(float64(i))))},
			Then: []Atom{A("n", N(float64(i+1)))},
		})
	}
	base, err := NewBase("chain", rules...)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := NewEngine(base).Infer(s)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if len(derived) != 5 {
		t.Fatalf("derived %d, want 5", len(derived))
	}
	if !s.Holds(A("n", N(5))) {
		t.Fatal("chain did not reach n(5)")
	}
}

func TestInferConflictIsError(t *testing.T) {
	o := NewOntology()
	if err := o.DeclarePred("p", SortNumber); err != nil {
		t.Fatal(err)
	}
	if err := o.DeclarePred("q", SortNumber); err != nil {
		t.Fatal(err)
	}
	s := NewStore(o)
	mustAssert(t, s, A("p", N(1)))
	pos := Rule{Name: "pos", If: []Literal{Pos(A("p", V("X")))}, Then: []Atom{A("q", V("X"))}}
	neg := Rule{Name: "neg", If: []Literal{Pos(A("p", V("X")))}, ThenFalse: []Atom{A("q", V("X"))}}
	base, err := NewBase("conflict", pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(base).Infer(s); err == nil {
		t.Fatal("conflicting derivation should be an error")
	}
}

func TestComposeBasesPreservesOrder(t *testing.T) {
	r1 := Rule{Name: "r1", If: []Literal{Pos(A("p", V("X")))}, Then: []Atom{A("q", V("X"))}}
	r2 := Rule{Name: "r2", If: []Literal{Pos(A("q", V("X")))}, Then: []Atom{A("r", V("X"))}}
	b1, err := NewBase("b1", r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBase("b2", r2)
	if err != nil {
		t.Fatal(err)
	}
	c := Compose("both", b1, b2)
	if len(c.Rules) != 2 || c.Rules[0].Name != "r1" || c.Rules[1].Name != "r2" {
		t.Fatalf("composed rules = %+v", c.Rules)
	}

	o := NewOntology()
	for _, p := range []string{"p", "q", "r"} {
		if err := o.DeclarePred(p, SortNumber); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore(o)
	mustAssert(t, s, A("p", N(7)))
	if _, err := NewEngine(c).Infer(s); err != nil {
		t.Fatal(err)
	}
	if !s.Holds(A("r", N(7))) {
		t.Fatal("composed base did not chain p -> q -> r")
	}
}

func TestInferRunawayIsBounded(t *testing.T) {
	// A rule that keeps deriving new facts every pass cannot exist in this
	// fragment (consequent terms come from antecedent bindings), so emulate a
	// low pass bound with a deep chain to exercise the bound error path.
	o := NewOntology()
	if err := o.DeclarePred("n", SortNumber); err != nil {
		t.Fatal(err)
	}
	s := NewStore(o)
	mustAssert(t, s, A("n", N(0)))
	var rules []Rule
	for i := 0; i < 10; i++ {
		rules = append(rules, Rule{
			Name: "step",
			If:   []Literal{Pos(A("n", N(float64(i))))},
			Then: []Atom{A("n", N(float64(i+1)))},
		})
	}
	// Reverse rule order so each pass derives exactly one new fact.
	for i, j := 0, len(rules)-1; i < j; i, j = i+1, j-1 {
		rules[i], rules[j] = rules[j], rules[i]
	}
	base, err := NewBase("deep", rules...)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(base)
	e.MaxPasses = 3
	if _, err := e.Infer(s); err == nil {
		t.Fatal("expected fixpoint bound error")
	}
}

// Property: forward chaining is monotonic — every fact present before Infer
// is still present afterwards, and inference is idempotent.
func TestInferMonotoneProperty(t *testing.T) {
	o := domainOntology(t)
	rule := Rule{
		Name: "acceptable_cutdown",
		If: []Literal{
			Pos(A("required_reward", V("C"), V("Cut"), V("Req"))),
			Pos(A("offered_reward", V("Cut"), V("Off"))),
		},
		Guards: []Guard{{Op: OpGeq, Left: V("Off"), Right: V("Req")}},
		Then:   []Atom{A("acceptable", V("C"), V("Cut"))},
	}
	base, err := NewBase("ca", rule)
	if err != nil {
		t.Fatal(err)
	}
	f := func(req1, req2, off1, off2 uint8) bool {
		s := NewStore(o)
		mustAssertQ(s, A("required_reward", C("c1"), N(0.3), N(float64(req1))))
		mustAssertQ(s, A("required_reward", C("c2"), N(0.4), N(float64(req2))))
		mustAssertQ(s, A("offered_reward", N(0.3), N(float64(off1))))
		mustAssertQ(s, A("offered_reward", N(0.4), N(float64(off2))))
		before := s.Facts()
		if _, err := NewEngine(base).Infer(s); err != nil {
			return false
		}
		for _, f := range before {
			if s.TruthOf(f.Atom) != f.Truth {
				return false
			}
		}
		n := s.Len()
		if _, err := NewEngine(base).Infer(s); err != nil {
			return false
		}
		return s.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	r := Rule{
		Name:   "acc",
		If:     []Literal{Pos(A("offered_reward", V("Cut"), V("Off"))), Neg(A("responded", C("c1")))},
		Guards: []Guard{{Op: OpGeq, Left: V("Off"), Right: N(10)}},
		Then:   []Atom{A("acceptable", C("c1"), V("Cut"))},
	}
	got := r.String()
	for _, want := range []string{"acc:", "offered_reward(?Cut, ?Off)", "not responded(c1)", "?Off >= 10", "acceptable(c1, ?Cut)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("rule string %q missing %q", got, want)
		}
	}
	if got := (Fact{Atom: A("p", N(1)), Truth: False}).String(); got != "p(1) = false" {
		t.Fatalf("fact string = %q", got)
	}
	if got := Unknown.String(); got != "unknown" {
		t.Fatalf("Unknown.String = %q", got)
	}
}

func mustAssert(t *testing.T, s *Store, a Atom) {
	t.Helper()
	if err := s.Assert(a, True); err != nil {
		t.Fatalf("assert %s: %v", a, err)
	}
}

func mustAssertQ(s *Store, a Atom) {
	if err := s.Assert(a, True); err != nil {
		panic(err)
	}
}
