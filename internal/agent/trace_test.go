package agent

import (
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
)

// TestTracedEnvelopePropagatesThroughRuntime proves the choke point: a
// traced envelope handled by one agent produces a handling span, and the
// reply the handler sends carries that span as its parent.
func TestTracedEnvelopePropagatesThroughRuntime(t *testing.T) {
	tr := trace.Enable("test", 64)
	t.Cleanup(trace.Disable)

	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	replies, err := b.Register("sink", 8)
	if err != nil {
		t.Fatal(err)
	}

	echo, err := Start("echo", b, HandlerFuncs{
		Message: func(rt *Runtime, env message.Envelope) error {
			return rt.Send("sink", env.Session, message.CutDownBid{Round: 1, CutDown: 0.1})
		},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Stop()

	root := tr.Root("session.open")
	env, err := message.NewEnvelope("sink", "echo", "s1", message.SessionEnd{Round: 1, Reason: "x"})
	if err != nil {
		t.Fatal(err)
	}
	env.TraceID, env.SpanID = root.Context().Trace, root.Context().Span
	if err := b.Send(env); err != nil {
		t.Fatal(err)
	}

	select {
	case got := <-replies:
		if got.TraceID != root.Context().Trace {
			t.Fatalf("reply trace id %x, want %x", got.TraceID, root.Context().Trace)
		}
		if got.SpanID == root.Context().Span || got.SpanID == 0 {
			t.Fatalf("reply span id %x should be the handling span, not the root", got.SpanID)
		}
		// The handling span must be in the ring with the root as parent.
		root.End()
		recs := tr.Records(trace.Filter{})
		var handle trace.Record
		for _, r := range recs {
			if r.Name == "handle.session_end" {
				handle = r
			}
		}
		if handle.Name == "" {
			t.Fatalf("no handling span recorded; ring: %+v", recs)
		}
		if handle.Agent != "echo" || handle.Session != "s1" {
			t.Fatalf("handling span labels wrong: %+v", handle)
		}
		var rootHex string
		for _, r := range recs {
			if r.Name == "session.open" {
				rootHex = r.Span
			}
		}
		if handle.Parent != rootHex {
			t.Fatalf("handling span parent %q, want root %q", handle.Parent, rootHex)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
}

// TestUntracedEnvelopeStaysUntraced guards the overhead story: without a
// trace context (or with tracing disabled) nothing is recorded or stamped.
func TestUntracedEnvelopeStaysUntraced(t *testing.T) {
	trace.Disable()

	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	replies, err := b.Register("sink", 8)
	if err != nil {
		t.Fatal(err)
	}
	echo, err := Start("echo", b, HandlerFuncs{
		Message: func(rt *Runtime, env message.Envelope) error {
			return rt.Send("sink", env.Session, message.CutDownBid{Round: 1, CutDown: 0.1})
		},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Stop()

	env, err := message.NewEnvelope("sink", "echo", "s1", message.SessionEnd{Round: 1, Reason: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-replies:
		if got.Traced() {
			t.Fatalf("untraced request produced traced reply %x/%x", got.TraceID, got.SpanID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
}
