// Package bus provides the message transport connecting agents: a
// deterministic in-process bus built on channels (the default substrate for
// simulations and tests) and a TCP/JSON transport for running the Utility
// Agent and Customer Agents as separate OS processes.
//
// All inter-agent communication in this system flows through a Bus; agents
// never share memory. The in-process bus supports seeded failure injection
// (message loss) so the protocol's robustness rules — "when all (or an
// acceptable number of) bids have been collected" (Section 3.2.2) — can be
// exercised (experiment E9).
package bus

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"loadbalance/internal/message"
)

// Errors reported by bus operations.
var (
	ErrDuplicateAgent = errors.New("bus: agent already registered")
	ErrUnknownAgent   = errors.New("bus: unknown agent")
	ErrClosed         = errors.New("bus: closed")
	ErrInboxFull      = errors.New("bus: inbox full")
)

// Bus is the transport abstraction agents communicate through.
type Bus interface {
	// Register creates a mailbox for the named agent and returns its inbox.
	Register(name string, inboxSize int) (<-chan message.Envelope, error)
	// Unregister removes an agent's mailbox and closes its inbox.
	Unregister(name string)
	// Send delivers an envelope. An empty To broadcasts to every registered
	// agent except the sender.
	Send(env message.Envelope) error
	// Agents returns the registered agent names, sorted.
	Agents() []string
}

// Stats counts bus traffic. All counters are cumulative.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int // lost to fault injection
	Rejected  int // no such agent / inbox full
}

// Config parameterises an in-process bus.
type Config struct {
	// DropRate is the probability in [0,1] that any single delivery is lost.
	DropRate float64
	// Seed drives the fault-injection randomness.
	Seed int64
	// DefaultInboxSize is used when Register is called with size <= 0.
	DefaultInboxSize int
}

// InProc is the channel-based bus. It is safe for concurrent use.
type InProc struct {
	mu       sync.Mutex
	boxes    map[string]chan message.Envelope
	closed   bool
	stats    Stats
	dropRate float64
	rng      *rand.Rand
	defSize  int
}

var _ Bus = (*InProc)(nil)

// NewInProc constructs an in-process bus.
func NewInProc(cfg Config) (*InProc, error) {
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("bus: drop rate %v out of [0,1]", cfg.DropRate)
	}
	size := cfg.DefaultInboxSize
	if size <= 0 {
		size = 64
	}
	return &InProc{
		boxes:    make(map[string]chan message.Envelope),
		dropRate: cfg.DropRate,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		defSize:  size,
	}, nil
}

// Register implements Bus.
func (b *InProc) Register(name string, inboxSize int) (<-chan message.Envelope, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownAgent)
	}
	if inboxSize <= 0 {
		inboxSize = b.defSize
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.boxes[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAgent, name)
	}
	ch := make(chan message.Envelope, inboxSize)
	b.boxes[name] = ch
	return ch, nil
}

// Unregister implements Bus.
func (b *InProc) Unregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.boxes[name]; ok {
		delete(b.boxes, name)
		close(ch)
	}
}

// Send implements Bus. Broadcast delivery order is deterministic
// (alphabetical by recipient) so simulations are reproducible.
func (b *InProc) Send(env message.Envelope) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.stats.Sent++
	if env.To != "" {
		return b.deliverLocked(env.To, env)
	}
	names := make([]string, 0, len(b.boxes))
	for n := range b.boxes {
		if n != env.From {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var firstErr error
	for _, n := range names {
		if err := b.deliverLocked(n, env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// deliverLocked pushes an envelope into one mailbox. The caller holds b.mu.
func (b *InProc) deliverLocked(to string, env message.Envelope) error {
	ch, ok := b.boxes[to]
	if !ok {
		b.stats.Rejected++
		return fmt.Errorf("%w: %q", ErrUnknownAgent, to)
	}
	// Self-addressed messages model an agent's internal control flow (e.g.
	// the UA's round timeouts); they never traverse the network and are
	// exempt from fault injection.
	if b.dropRate > 0 && env.From != to && b.rng.Float64() < b.dropRate {
		b.stats.Dropped++
		return nil // silently lost, like a real lossy network
	}
	env.To = to // concretise broadcast recipient
	select {
	case ch <- env:
		b.stats.Delivered++
		return nil
	default:
		b.stats.Rejected++
		return fmt.Errorf("%w: %q", ErrInboxFull, to)
	}
}

// Agents implements Bus.
func (b *InProc) Agents() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.boxes))
	for n := range b.boxes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the traffic counters.
func (b *InProc) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close shuts the bus; subsequent Register/Send calls fail and all inboxes
// are closed.
func (b *InProc) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for n, ch := range b.boxes {
		delete(b.boxes, n)
		close(ch)
	}
}
