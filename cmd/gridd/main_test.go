package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{name: "no mode", args: nil, want: "-serve ADDR or -connect ADDR"},
		{name: "both modes", args: []string{"-serve", ":1", "-connect", "x:1"}, want: "mutually exclusive"},
		{name: "connect without name", args: []string{"-connect", "x:1"}, want: "requires -name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want %q", err, tt.want)
			}
		})
	}
}

func TestClientPreferencesDeterministic(t *testing.T) {
	p1, err := clientPreferences(3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := clientPreferences(3)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RequiredFor(0.4) != p2.RequiredFor(0.4) {
		t.Fatal("same seed must give identical preferences")
	}
	p3, err := clientPreferences(4)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RequiredFor(0.4) == p3.RequiredFor(0.4) {
		t.Fatal("different seeds should scale the table differently")
	}
	if p1.ExpectedUse != 13.5 {
		t.Fatalf("expected use = %v", p1.ExpectedUse)
	}
}

func TestWindowNow(t *testing.T) {
	iv := windowNow()
	if iv.Duration() != 2*time.Hour {
		t.Fatalf("duration = %v", iv.Duration())
	}
	if !iv.Start.After(time.Now()) {
		t.Fatal("window should start in the future")
	}
}

// TestServerClientEndToEnd runs the daemon and three customer processes'
// worth of clients inside one test over real TCP.
func TestServerClientEndToEnd(t *testing.T) {
	ctx := context.Background()
	ready := make(chan string, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, "127.0.0.1:0", 3, 1, 30*time.Second, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addr, []string{"c01", "c02", "c03"}[i], int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished")
	}
}

// TestShardedServerEndToEnd runs the daemon with -shards 2 and four TCP
// clients: the fleet negotiates through concentrators and every client must
// still see its session end.
func TestShardedServerEndToEnd(t *testing.T) {
	ctx := context.Background()
	ready := make(chan string, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, "127.0.0.1:0", 4, 2, 30*time.Second, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	names := []string{"c01", "c02", "c03", "c04"}
	var wg sync.WaitGroup
	clientErrs := make([]error, len(names))
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addr, names[i], int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished")
	}
}

// TestShardsFlagValidation rejects nonsensical shard counts.
func TestShardsFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-serve", ":0", "-shards", "0"})
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("error = %v, want -shards validation", err)
	}
}

// TestServeShutsDownOnCancel covers graceful shutdown: a cancelled context
// unwinds the daemon while it waits for customers, with a nil error.
func TestServeShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, "127.0.0.1:0", 3, 1, 30*time.Second, ready)
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("interrupted serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on cancellation")
	}
}

// TestLiveGridServesHealthAndMetrics boots the live grid, scrapes both HTTP
// endpoints while it ticks, and shuts it down via context cancellation.
func TestLiveGridServesHealthAndMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	liveErr := make(chan error, 1)
	go func() {
		liveErr <- runLive(ctx, "127.0.0.1:0", 16, 4, 20*time.Millisecond, 0, 1, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("live grid never became ready")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	health := get("/healthz")
	if !strings.Contains(health, `"status":"ok"`) {
		t.Fatalf("healthz = %s", health)
	}

	// Let a few ticks elapse so the gauges carry real measurements.
	time.Sleep(150 * time.Millisecond)
	metrics := get("/metrics")
	for _, want := range []string{
		"grid_tick ",
		"grid_readings_total ",
		"grid_renegotiations_total 0",
		"grid_fleet_load_kwh ",
		"grid_fleet_target_kwh ",
		`grid_shard_load_kwh{shard="0"}`,
		`grid_shard_breached{shard="3"} 0`,
		`grid_shard_renegotiations_total{shard="0"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	select {
	case err := <-liveErr:
		if err != nil {
			t.Fatalf("live grid returned %v, want nil on cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live grid did not shut down on cancellation")
	}
}

// TestLiveGridBoundedTicks runs the live grid to its -live-ticks limit.
func TestLiveGridBoundedTicks(t *testing.T) {
	err := runLive(context.Background(), "127.0.0.1:0", 8, 2, time.Millisecond, 3, 1, nil)
	if err != nil {
		t.Fatalf("bounded live run: %v", err)
	}
}
