// Fixture: every order-sensitive float accumulation shape floatmaprange
// must flag.
package flag

import "math"

func sumDirect(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation`
	}
	return total
}

func sumField(m map[string]struct{ X float64 }) float64 {
	total := 0.0
	for _, v := range m {
		total += v.X // want `float accumulation`
	}
	return total
}

func sumIndirect(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		scaled := v * 2
		total += scaled // want `float accumulation`
	}
	return total
}

func minAccum(m map[string]float64) float64 {
	lo := math.Inf(1)
	for _, v := range m {
		lo = math.Min(lo, v) // want `float accumulator`
	}
	return lo
}

func appendThenSum(m map[int]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `append to float slice`
	}
	return vals
}

type energy float64

func (e energy) Add(o energy) energy { return e + o }

func methodChain(m map[string]energy) energy {
	var total energy
	for _, v := range m {
		total = total.Add(v) // want `float accumulator`
	}
	return total
}

func keyIndexed(m map[string]float64) float64 {
	var total float64
	for k := range m {
		total += m[k] // want `float accumulation`
	}
	return total
}

type stats struct{ mean float64 }

func fieldAccum(m map[string]float64) stats {
	var s stats
	for _, v := range m {
		s.mean += v // want `float accumulation`
	}
	s.mean /= float64(len(m))
	return s
}
