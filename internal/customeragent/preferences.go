// Package customeragent implements the Customer Agent (CA) of the paper: it
// maintains the customer's private cut-down-reward table, decides how to
// answer each kind of announcement from the Utility Agent, and negotiates
// with its Resource Consumer Agents (via internal/resource) to learn how
// much load it can shed.
//
// The decision kernel follows the paper's own decomposition (Figure 5,
// "determine bid"): interpretation of the announcement and acceptability
// knowledge run in a DESIRE reasoning component ("each cut-down for which
// the required reward value of the customer is lower than the reward offered
// by the Utility Agent, is an acceptable cut-down", Section 6.2); the bid
// selection among acceptable cut-downs is a calculation task parameterised
// by a bidding strategy.
package customeragent

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"loadbalance/internal/resource"
	"loadbalance/internal/units"
)

// Errors reported by the package.
var (
	ErrBadPreferences = errors.New("customeragent: invalid preferences")
	ErrBadStrategy    = errors.New("customeragent: unknown strategy")
)

// Preferences is the customer's private valuation: for each cut-down level
// the minimum acceptable reward (+Inf where the cut is infeasible), plus the
// aggregates used for offer and request-for-bids decisions.
type Preferences struct {
	// Levels is the cut-down grid, strictly increasing, starting at 0.
	Levels []float64
	// Required maps each level to the minimum acceptable reward.
	Required map[float64]float64
	// MaxCutDown is the largest feasible cut-down fraction.
	MaxCutDown float64
	// ExpectedUse is the customer's own expectation of its energy use in the
	// negotiation window; it converts between cut-down fractions and kWh.
	ExpectedUse units.Energy
	// MarginalComfortCost approximates the comfort cost per shed kWh of the
	// first increment of shedding — used for offer/RFB decisions. It is +Inf
	// until ExpectedUse is known (WithExpectedUse or FromReport).
	MarginalComfortCost float64
}

// NewPreferences validates and constructs preferences from an explicit
// table, as when reproducing the paper's hand-written customer (Figures 8-9:
// at least 10 for 0.3, at least 21 for 0.4).
func NewPreferences(levels []float64, required map[float64]float64) (Preferences, error) {
	if len(levels) == 0 {
		return Preferences{}, fmt.Errorf("%w: no levels", ErrBadPreferences)
	}
	prev := -1.0
	for _, l := range levels {
		if l < 0 || l > 1 || math.IsNaN(l) || l <= prev {
			return Preferences{}, fmt.Errorf("%w: levels %v", ErrBadPreferences, levels)
		}
		prev = l
	}
	if levels[0] != 0 {
		return Preferences{}, fmt.Errorf("%w: grid must start at 0", ErrBadPreferences)
	}
	req := make(map[float64]float64, len(levels))
	lastFinite := 0.0
	maxCD := 0.0
	prevReq := 0.0
	for _, l := range levels {
		r, ok := required[l]
		if !ok {
			r = math.Inf(1)
		}
		if r < 0 || math.IsNaN(r) {
			return Preferences{}, fmt.Errorf("%w: required(%v) = %v", ErrBadPreferences, l, r)
		}
		if !math.IsInf(r, 1) {
			if r+1e-9 < prevReq {
				return Preferences{}, fmt.Errorf("%w: required rewards must be non-decreasing", ErrBadPreferences)
			}
			prevReq = r
			lastFinite = r
			maxCD = l
		}
		req[l] = r
	}
	_ = lastFinite
	if req[0] != 0 {
		return Preferences{}, fmt.Errorf("%w: required(0) must be 0", ErrBadPreferences)
	}
	p := Preferences{
		Levels:              append([]float64(nil), levels...),
		Required:            req,
		MaxCutDown:          maxCD,
		MarginalComfortCost: math.Inf(1),
	}
	return p, nil
}

// WithExpectedUse returns a copy of the preferences knowing the customer's
// expected energy use, which fixes the marginal comfort cost per kWh.
func (p Preferences) WithExpectedUse(e units.Energy) Preferences {
	p.ExpectedUse = e
	p.MarginalComfortCost = p.marginalCostPerKWh()
	return p
}

// FromReport derives preferences from the customer's Resource Consumer
// Agents (the normal path in simulations).
func FromReport(rep resource.Report, levels []float64, margin float64) (Preferences, error) {
	required, err := rep.RequiredRewards(levels, margin)
	if err != nil {
		return Preferences{}, fmt.Errorf("customeragent: %w", err)
	}
	p, err := NewPreferences(levels, required)
	if err != nil {
		return Preferences{}, err
	}
	return p.WithExpectedUse(rep.TotalUse), nil
}

// marginalCostPerKWh estimates the comfort cost per kWh of the first
// feasible shedding increment.
func (p Preferences) marginalCostPerKWh() float64 {
	if p.ExpectedUse <= 0 {
		return math.Inf(1)
	}
	for _, l := range p.Levels {
		if l == 0 {
			continue
		}
		r := p.Required[l]
		if !math.IsInf(r, 1) {
			return r / (l * p.ExpectedUse.KWhs())
		}
	}
	return math.Inf(1) // fully inflexible customer
}

// RequiredFor returns the minimum acceptable reward at a level (+Inf when
// the level is not on the grid or infeasible).
func (p Preferences) RequiredFor(level float64) float64 {
	r, ok := p.Required[level]
	if !ok {
		return math.Inf(1)
	}
	return r
}

// AcceptableLevels returns the levels (ascending) whose offered reward meets
// the requirement, given a reward lookup.
func (p Preferences) AcceptableLevels(offered func(level float64) (float64, bool)) []float64 {
	var out []float64
	for _, l := range p.Levels {
		off, ok := offered(l)
		if !ok {
			continue
		}
		if off >= p.RequiredFor(l) {
			out = append(out, l)
		}
	}
	sort.Float64s(out)
	return out
}

// Surplus returns the customer's gain at a level for an offered reward
// (offered − required); negative means unacceptable.
func (p Preferences) Surplus(level, offeredReward float64) float64 {
	return offeredReward - p.RequiredFor(level)
}

// ShedCost returns the approximate comfort cost of shedding the given
// energy, priced at the marginal comfort cost.
func (p Preferences) ShedCost(e units.Energy) float64 {
	if math.IsInf(p.MarginalComfortCost, 1) {
		return math.Inf(1)
	}
	return e.KWhs() * p.MarginalComfortCost
}
