package health

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	l := newTestLogger(t, Config{Proc: "fr-test", MinLevel: Debug})
	l.Log(Warn, "alerts", "alert firing", Str("alert", "overload"))

	util := 2.0
	s := NewScorer(Sources{Utilization: func() float64 { return util }}, DefaultBudgets(), Weights{Utilization: 1})
	s.gcStats = func() (float64, float64) { return 0, 0 }
	defer UnregisterGauge("feedback_score")
	s.Compute()

	e := NewEngine([]RuleConfig{{Name: "overload", Metric: "feedback_score", Op: "<", Threshold: 40, For: 1}}, l)
	e.Eval()

	r := NewRecorder(dir, 3, l)
	r.Bind(s, e)
	bundle, err := r.Dump("alert", "overload")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}

	for _, f := range []string{"meta.json", "trace.json", "logs.json", "metrics.prom", "alerts.json"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	metaData, _ := os.ReadFile(filepath.Join(bundle, "meta.json"))
	var meta BundleMeta
	if err := json.Unmarshal(metaData, &meta); err != nil {
		t.Fatalf("meta.json: %v\n%s", err, metaData)
	}
	if meta.Reason != "alert" || meta.Detail != "overload" || meta.Proc != "fr-test" {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Score != 0 || meta.Firing != 1 {
		t.Fatalf("meta score/firing = %g/%d, want 0/1", meta.Score, meta.Firing)
	}

	logsData, _ := os.ReadFile(filepath.Join(bundle, "logs.json"))
	if !strings.Contains(string(logsData), "alert firing") {
		t.Fatalf("logs.json missing the alert-firing event:\n%s", logsData)
	}
	alertsData, _ := os.ReadFile(filepath.Join(bundle, "alerts.json"))
	if !strings.Contains(string(alertsData), `"state":"firing"`) {
		t.Fatalf("alerts.json missing firing state:\n%s", alertsData)
	}
	metricsData, _ := os.ReadFile(filepath.Join(bundle, "metrics.prom"))
	if len(metricsData) == 0 {
		t.Fatal("metrics.prom empty")
	}
}

func TestFlightRecorderProfileCapture(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	l := newTestLogger(t, Config{MinLevel: Off})
	r := NewRecorder(dir, 2, l)
	r.ProfileDur = 50 * time.Millisecond
	bundle, err := r.Dump("alert", "overload")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	// The heap profile is written inline; the CPU profile lands async.
	if fi, err := os.Stat(filepath.Join(bundle, "heap.pprof")); err != nil || fi.Size() == 0 {
		t.Fatalf("heap.pprof: %v", err)
	}
	r.WaitProfiles()
	if fi, err := os.Stat(filepath.Join(bundle, "cpu.pprof")); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu.pprof after WaitProfiles: %v", err)
	}
	metaData, _ := os.ReadFile(filepath.Join(bundle, "meta.json"))
	var meta BundleMeta
	if err := json.Unmarshal(metaData, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if !strings.Contains(meta.Layout, "heap.pprof") || !strings.Contains(meta.Layout, "cpu.pprof") {
		t.Fatalf("layout missing profile entries: %q", meta.Layout)
	}
	// Keep-N pruning still applies to profiled bundles.
	for i := 0; i < 4; i++ {
		if _, err := r.Dump("test", ""); err != nil {
			t.Fatalf("Dump %d: %v", i, err)
		}
		r.WaitProfiles()
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 2 {
		t.Fatalf("profiled bundles escaped pruning: %d entries", len(entries))
	}
}

func TestFlightRecorderPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flightrec")
	l := newTestLogger(t, Config{MinLevel: Off})
	r := NewRecorder(dir, 2, l)
	for i := 0; i < 5; i++ {
		if _, err := r.Dump("test", ""); err != nil {
			t.Fatalf("Dump %d: %v", i, err)
		}
	}
	// A stale temp dir from a crashed dump gets swept too.
	stale := filepath.Join(dir, ".tmp-crashed")
	os.MkdirAll(stale, 0o755)
	if _, err := r.Dump("test", ""); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("after prune: %v, want 2 bundles", names)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp dir survived prune: %v", err)
	}
}

func TestCrashDumpHook(t *testing.T) {
	if dir := CrashDump("panic", "no recorder"); dir != "" {
		t.Fatalf("CrashDump without recorder wrote %q", dir)
	}
	dir := filepath.Join(t.TempDir(), "flightrec")
	r := NewRecorder(dir, 2, newTestLogger(t, Config{MinLevel: Off}))
	SetRecorder(r)
	defer SetRecorder(nil)
	bundle := CrashDump("panic", "boom")
	if bundle == "" {
		t.Fatal("CrashDump wrote nothing")
	}
	if _, err := os.Stat(filepath.Join(bundle, "meta.json")); err != nil {
		t.Fatalf("crash bundle incomplete: %v", err)
	}
}

func TestResponderLine(t *testing.T) {
	for score, want := range map[float64]string{0: "0%\n", 49.6: "50%\n", 100: "100%\n", 120: "100%\n", -3: "0%\n"} {
		if got := feedbackLine(score); got != want {
			t.Errorf("feedbackLine(%g) = %q, want %q", score, got, want)
		}
	}
}

func TestResponderServes(t *testing.T) {
	util := 0.5
	s := NewScorer(Sources{Utilization: func() float64 { return util }}, DefaultBudgets(), Weights{Utilization: 1})
	s.gcStats = func() (float64, float64) { return 0, 0 }
	defer UnregisterGauge("feedback_score")
	s.Compute()

	r, err := NewResponder("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("NewResponder: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { r.Serve(ctx); close(done) }()

	read := func() string {
		conn, err := net.DialTimeout("tcp", r.Addr(), 2*time.Second)
		if err != nil {
			t.Fatalf("dial responder: %v", err)
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 16)
		n, _ := conn.Read(buf)
		return string(buf[:n])
	}

	if got := read(); got != "100%\n" {
		t.Fatalf("healthy responder line = %q", got)
	}
	util = 2.0
	s.Compute()
	if got := read(); got != "0%\n" {
		t.Fatalf("overloaded responder line = %q", got)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not exit on cancel")
	}
}
