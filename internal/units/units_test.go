package units

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKWhValidation(t *testing.T) {
	tests := []struct {
		name    string
		give    float64
		wantErr error
	}{
		{name: "zero", give: 0},
		{name: "positive", give: 13.5},
		{name: "negative", give: -1, wantErr: ErrNegativeEnergy},
		{name: "nan", give: math.NaN(), wantErr: ErrNotFinite},
		{name: "inf", give: math.Inf(1), wantErr: ErrNotFinite},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := KWh(tt.give)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("KWh(%v) error = %v, want %v", tt.give, err, tt.wantErr)
			}
			if err == nil && e.KWhs() != tt.give {
				t.Fatalf("KWh(%v) = %v", tt.give, e)
			}
		})
	}
}

func TestKWValidation(t *testing.T) {
	if _, err := KW(-0.1); !errors.Is(err, ErrNegativePower) {
		t.Fatalf("KW(-0.1) error = %v, want ErrNegativePower", err)
	}
	if _, err := KW(math.NaN()); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("KW(NaN) error = %v, want ErrNotFinite", err)
	}
	p, err := KW(2.5)
	if err != nil {
		t.Fatalf("KW(2.5) error = %v", err)
	}
	if p.KWs() != 2.5 {
		t.Fatalf("KWs = %v, want 2.5", p.KWs())
	}
}

func TestAmountValidation(t *testing.T) {
	if _, err := Amount(-3); !errors.Is(err, ErrNegativeMoney) {
		t.Fatalf("Amount(-3) error = %v, want ErrNegativeMoney", err)
	}
	m, err := Amount(17)
	if err != nil {
		t.Fatalf("Amount(17) error = %v", err)
	}
	if got := m.Add(7.8).Value(); got != 24.8 {
		t.Fatalf("Add = %v, want 24.8", got)
	}
}

func TestEnergySubFloorsAtZero(t *testing.T) {
	if got := Energy(3).Sub(5); got != 0 {
		t.Fatalf("3-5 kWh = %v, want 0", got)
	}
	if got := Energy(5).Sub(3); got != 2 {
		t.Fatalf("5-3 kWh = %v, want 2", got)
	}
}

func TestEnergyOver(t *testing.T) {
	if got := Energy(35).Over(100); got.Float() != 0.35 {
		t.Fatalf("35/100 = %v, want 0.35", got)
	}
	if got := Energy(35).Over(0); got != 0 {
		t.Fatalf("35/0 = %v, want 0", got)
	}
}

func TestPowerFor(t *testing.T) {
	// 2 kW for 90 minutes is 3 kWh.
	got := Power(2).For(90 * time.Minute)
	if !NearlyEqual(got.KWhs(), 3, 1e-12) {
		t.Fatalf("2kW for 90m = %v, want 3 kWh", got)
	}
}

func TestFracValidation(t *testing.T) {
	tests := []struct {
		name    string
		give    float64
		wantErr error
	}{
		{name: "zero", give: 0},
		{name: "one", give: 1},
		{name: "mid", give: 0.4},
		{name: "below", give: -0.01, wantErr: ErrFractionRange},
		{name: "above", give: 1.01, wantErr: ErrFractionRange},
		{name: "nan", give: math.NaN(), wantErr: ErrNotFinite},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Frac(tt.give); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Frac(%v) error = %v, want %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestRatioAllowsAboveOne(t *testing.T) {
	r, err := Ratio(1.35)
	if err != nil {
		t.Fatalf("Ratio(1.35) error = %v", err)
	}
	if r.Float() != 1.35 {
		t.Fatalf("Ratio = %v, want 1.35", r)
	}
	if _, err := Ratio(-0.2); err == nil {
		t.Fatal("Ratio(-0.2) should fail")
	}
}

func TestFractionComplementAndClamp(t *testing.T) {
	if got := Fraction(0.4).Complement(); !NearlyEqual(got.Float(), 0.6, 1e-12) {
		t.Fatalf("1-0.4 = %v, want 0.6", got)
	}
	if got := Fraction(1.5).Complement(); got != 0 {
		t.Fatalf("complement above 1 = %v, want 0", got)
	}
	if got := Fraction(1.5).Clamp01(); got != 1 {
		t.Fatalf("clamp(1.5) = %v, want 1", got)
	}
	if got := Fraction(-0.5).Clamp01(); got != 0 {
		t.Fatalf("clamp(-0.5) = %v, want 0", got)
	}
}

func TestNewIntervalRejectsInverted(t *testing.T) {
	now := time.Date(1998, 5, 26, 17, 0, 0, 0, time.UTC)
	if _, err := NewInterval(now, now); !errors.Is(err, ErrIntervalInverted) {
		t.Fatalf("empty interval error = %v, want ErrIntervalInverted", err)
	}
	if _, err := NewInterval(now.Add(time.Hour), now); !errors.Is(err, ErrIntervalInverted) {
		t.Fatalf("inverted interval error = %v, want ErrIntervalInverted", err)
	}
	iv, err := NewInterval(now, now.Add(2*time.Hour))
	if err != nil {
		t.Fatalf("NewInterval error = %v", err)
	}
	if iv.Duration() != 2*time.Hour {
		t.Fatalf("Duration = %v, want 2h", iv.Duration())
	}
}

func TestIntervalContains(t *testing.T) {
	start := time.Date(1998, 5, 26, 17, 0, 0, 0, time.UTC)
	iv := Interval{Start: start, End: start.Add(time.Hour)}
	tests := []struct {
		name string
		give time.Time
		want bool
	}{
		{name: "start inclusive", give: start, want: true},
		{name: "mid", give: start.Add(30 * time.Minute), want: true},
		{name: "end exclusive", give: start.Add(time.Hour), want: false},
		{name: "before", give: start.Add(-time.Second), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := iv.Contains(tt.give); got != tt.want {
				t.Fatalf("Contains(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestIntervalOverlaps(t *testing.T) {
	start := time.Date(1998, 5, 26, 17, 0, 0, 0, time.UTC)
	a := Interval{Start: start, End: start.Add(time.Hour)}
	b := Interval{Start: start.Add(30 * time.Minute), End: start.Add(90 * time.Minute)}
	c := Interval{Start: start.Add(time.Hour), End: start.Add(2 * time.Hour)}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("adjacent half-open intervals must not overlap")
	}
}

func TestIntervalSplit(t *testing.T) {
	start := time.Date(1998, 5, 26, 0, 0, 0, 0, time.UTC)
	iv := Interval{Start: start, End: start.Add(24 * time.Hour)}
	parts, err := iv.Split(96)
	if err != nil {
		t.Fatalf("Split error = %v", err)
	}
	if len(parts) != 96 {
		t.Fatalf("len(parts) = %d, want 96", len(parts))
	}
	if !parts[0].Start.Equal(iv.Start) || !parts[95].End.Equal(iv.End) {
		t.Fatal("split must cover the whole interval")
	}
	for i := 1; i < len(parts); i++ {
		if !parts[i].Start.Equal(parts[i-1].End) {
			t.Fatalf("gap between parts %d and %d", i-1, i)
		}
	}
	if _, err := iv.Split(0); err == nil {
		t.Fatal("Split(0) should fail")
	}
}

func TestStandardCutDowns(t *testing.T) {
	cds := StandardCutDowns()
	if len(cds) != 10 {
		t.Fatalf("len = %d, want 10", len(cds))
	}
	for i, cd := range cds {
		if !NearlyEqual(cd.Float(), float64(i)/10, 1e-12) {
			t.Fatalf("cds[%d] = %v, want %v", i, cd, float64(i)/10)
		}
	}
}

// Property: Sub never yields negative energy and Add/Sub round-trips when the
// subtrahend is not larger.
func TestEnergyArithmeticProperties(t *testing.T) {
	f := func(a, b float64) bool {
		ea := Energy(math.Abs(math.Mod(a, 1e6)))
		eb := Energy(math.Abs(math.Mod(b, 1e6)))
		if ea.Sub(eb) < 0 {
			return false
		}
		return ea.Add(eb).Sub(eb) >= ea-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp01 is idempotent and always yields a valid Frac.
func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		c := Fraction(v).Clamp01()
		if c != c.Clamp01() {
			return false
		}
		_, err := Frac(c.Float())
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Complement is an involution on [0,1] up to float error.
func TestComplementProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		c := Fraction(v).Clamp01()
		return NearlyEqual(c.Complement().Complement().Float(), c.Float(), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if got := Energy(1.5).String(); got != "1.500 kWh" {
		t.Fatalf("Energy.String = %q", got)
	}
	if got := Power(2).String(); got != "2.000 kW" {
		t.Fatalf("Power.String = %q", got)
	}
	if got := Money(24.8).String(); got != "24.80" {
		t.Fatalf("Money.String = %q", got)
	}
	if got := Fraction(0.4).String(); got != "0.400" {
		t.Fatalf("Fraction.String = %q", got)
	}
}
