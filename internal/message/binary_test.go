package message

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// binEnv builds a validated envelope for codec tests.
func binEnv(t *testing.T, p Payload) Envelope {
	t.Helper()
	e, err := NewEnvelope("ua", "c1", "s1", p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// binWindow is a valid test window.
func binWindow() Window {
	start := time.Date(2026, 7, 29, 18, 0, 0, 0, time.UTC)
	return Window{Start: start, End: start.Add(2 * time.Hour)}
}

func TestBinaryRoundTripAllKinds(t *testing.T) {
	payloads := []Payload{
		OfferTerms{Window: binWindow(), XMax: 0.8, AllowanceKWh: 13.5, LowPrice: 1, NormalPrice: 2, HighPrice: 3},
		BidRequest{Window: binWindow(), Round: 1, LowPrice: 1, NormalPrice: 2, HighPrice: 3},
		RewardTable{Window: binWindow(), Round: 2, Entries: []RewardEntry{{0, 0}, {0.1, 4.25}, {0.2, 8.5}}},
		CutDownBid{Round: 2, CutDown: 0.2},
		Award{Round: 3, CutDown: 0.2, Reward: 8.5},
		SessionEnd{Round: 3, Reason: "converged"},
	}
	for _, p := range payloads {
		e := binEnv(t, p)
		data, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != e.BinarySize() {
			t.Fatalf("%s: encoded %d bytes, BinarySize says %d", p.Kind(), len(data), e.BinarySize())
		}
		got, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatalf("%s: %v", p.Kind(), err)
		}
		if got.From != e.From || got.To != e.To || got.Session != e.Session || got.Kind != e.Kind {
			t.Fatalf("%s: metadata mismatch: %+v vs %+v", p.Kind(), got, e)
		}
		if !bytes.Equal(got.Body, e.Body) {
			t.Fatalf("%s: body mismatch", p.Kind())
		}
		if _, err := got.Decode(); err != nil {
			t.Fatalf("%s: decode after round trip: %v", p.Kind(), err)
		}
	}
}

func TestBinaryRoundTripEmptyFields(t *testing.T) {
	// Broadcast envelopes carry an empty To; the codec must preserve it.
	e, err := NewEnvelope("ua", "", "s1", SessionEnd{Round: 1, Reason: "done"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.To != "" {
		t.Fatalf("To = %q, want empty", got.To)
	}
}

func TestBinaryTruncation(t *testing.T) {
	e := binEnv(t, CutDownBid{Round: 1, CutDown: 0.2})
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := UnmarshalBinary(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: error = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestBinaryTrailingBytes(t *testing.T) {
	e := binEnv(t, CutDownBid{Round: 1, CutDown: 0.2})
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBinary(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestBinaryAppendUsesPrefix(t *testing.T) {
	e := binEnv(t, CutDownBid{Round: 1, CutDown: 0.2})
	prefix := []byte("hdr")
	out := e.AppendBinary(prefix)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendBinary must extend the given slice")
	}
	got, err := UnmarshalBinary(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != "s1" {
		t.Fatalf("session = %q", got.Session)
	}
}
