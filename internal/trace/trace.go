// Package trace is the observability spine of the reproduction: a
// low-overhead distributed-tracing recorder plus log-linear latency
// histograms, both rendered over HTTP by gridd.
//
// Spans cover a negotiation session end-to-end — session open, table
// announcements, bid rounds, award commit, journal appends, renegotiation
// decisions and replication apply — and cross process boundaries by riding
// a (trace id, span id) pair in message.Envelope. Each process keeps its
// completed spans in a fixed-size ring buffer; /trace serves the ring as
// JSON and the reader stitches the per-process rings into one tree per
// session by trace id.
//
// The package is built so that the disabled state (the default) costs a
// single atomic load on every instrumentation point: Root/Child return a
// zero Span whose End is a no-op, and no clock is read. Enabling tracing
// costs two clock reads and one ring write per span — no allocations on
// the span path.
package trace

import (
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Context is the propagated trace state: the trace a span belongs to and
// the span that caused the current work. It is stamped into
// message.Envelope and re-parented on receipt.
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Record is one completed span as stored in the ring and served on
// /trace. IDs are hex strings in JSON: uint64 values above 2^53 are not
// representable as JSON numbers.
type Record struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Proc    string `json:"proc"`
	Agent   string `json:"agent,omitempty"`
	Session string `json:"session,omitempty"`
	Shard   string `json:"shard,omitempty"`
	StartUs int64  `json:"startUs"` // wall clock, microseconds since epoch
	DurUs   int64  `json:"durUs"`   // duration, microseconds
}

// Span is a live measurement. The zero Span (tracing disabled) is a valid
// no-op: Context returns an invalid context and End does nothing.
type Span struct {
	tr      *Tracer
	ctx     Context
	parent  uint64
	name    string
	agent   string
	session string
	shard   string
	start   time.Time
}

// Context returns the span's propagation context (invalid for no-ops).
func (s *Span) Context() Context { return s.ctx }

// SetAgent labels the span with the bus name of the agent doing the work.
func (s *Span) SetAgent(name string) {
	if s.tr != nil {
		s.agent = name
	}
}

// SetSession labels the span with a negotiation session id.
func (s *Span) SetSession(session string) {
	if s.tr != nil {
		s.session = session
	}
}

// SetShard labels the span with a shard/concentrator name for /trace
// filtering.
func (s *Span) SetShard(shard string) {
	if s.tr != nil {
		s.shard = shard
	}
}

// End completes the span and writes it into the tracer's ring.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(s)
	s.tr = nil // double End stays a no-op
}

// ringRec is the in-ring representation of a completed span: ids stay
// numeric so recording never allocates; hex rendering happens at serve
// time in Records.
type ringRec struct {
	trace, span, parent uint64
	name                string
	agent               string
	session             string
	shard               string
	startUs             int64
	durUs               int64
}

// Tracer owns one process's span ring. All methods are safe for
// concurrent use.
type Tracer struct {
	proc string
	seed uint64
	ids  atomic.Uint64

	mu      sync.Mutex
	ring    []ringRec
	next    int    // ring write cursor
	total   uint64 // spans ever recorded
	dropped uint64 // spans overwritten by ring wrap
}

// NewTracer builds a tracer with a fixed ring of ringSize completed spans
// (minimum 16). proc labels every record with the owning process.
func NewTracer(proc string, ringSize int) *Tracer {
	if ringSize < 16 {
		ringSize = 16
	}
	return &Tracer{
		proc: proc,
		seed: uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32,
		ring: make([]ringRec, 0, ringSize),
	}
}

// Proc returns the tracer's process label.
func (t *Tracer) Proc() string { return t.proc }

// newID derives a fresh 64-bit id from the per-process seed and a counter
// (splitmix64 finalizer), so ids are unique within a process and collide
// across processes only with negligible probability.
func (t *Tracer) newID() uint64 {
	x := t.seed + t.ids.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Root opens a span that starts a new trace.
func (t *Tracer) Root(name string) Span {
	if t == nil {
		return Span{}
	}
	id := t.newID()
	return Span{
		tr:    t,
		ctx:   Context{Trace: t.newID(), Span: id},
		name:  name,
		start: time.Now(),
	}
}

// Child opens a span under parent. An invalid parent starts a new trace,
// so instrumentation points never have to special-case "first hop".
func (t *Tracer) Child(parent Context, name string) Span {
	if t == nil {
		return Span{}
	}
	if !parent.Valid() {
		return t.Root(name)
	}
	return Span{
		tr:     t,
		ctx:    Context{Trace: parent.Trace, Span: t.newID()},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
	}
}

// record copies a finished span into the ring without allocating.
func (t *Tracer) record(s *Span) {
	rec := ringRec{
		trace:   s.ctx.Trace,
		span:    s.ctx.Span,
		parent:  s.parent,
		name:    s.name,
		agent:   s.agent,
		session: s.session,
		shard:   s.shard,
		startUs: s.start.UnixMicro(),
		durUs:   time.Since(s.start).Microseconds(),
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.dropped++
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Filter selects spans from the ring. Zero fields match everything.
type Filter struct {
	Session string
	Shard   string // matches the Shard label, or the Agent label containing it
	Trace   string // hex trace id
	Limit   int    // keep only the newest N matches (0 = all)
}

func (f Filter) match(r *ringRec, traceID uint64, traceOK bool) bool {
	if f.Session != "" && r.session != f.Session {
		return false
	}
	if f.Trace != "" && (!traceOK || r.trace != traceID) {
		return false
	}
	if f.Shard != "" && r.shard != f.Shard && !containsToken(r.agent, f.Shard) {
		return false
	}
	return true
}

// Records returns matching spans oldest-first, rendering ids to hex.
func (t *Tracer) Records(f Filter) []Record {
	traceID, traceOK := ParseID(f.Trace)
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.ring))
	n := len(t.ring)
	start := 0
	if n == cap(t.ring) {
		start = t.next // ring has wrapped; t.next is the oldest entry
	}
	for i := 0; i < n; i++ {
		r := &t.ring[(start+i)%n]
		if !f.match(r, traceID, traceOK) {
			continue
		}
		rec := Record{
			Trace:   hexID(r.trace),
			Span:    hexID(r.span),
			Name:    r.name,
			Proc:    t.proc,
			Agent:   r.agent,
			Session: r.session,
			Shard:   r.shard,
			StartUs: r.startUs,
			DurUs:   r.durUs,
		}
		if r.parent != 0 {
			rec.Parent = hexID(r.parent)
		}
		out = append(out, rec)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Stats reports ring occupancy: spans recorded and spans lost to wrap.
func (t *Tracer) Stats() (total, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.dropped
}

// DrainSince returns every span recorded after the cursor (a total-count
// position from a previous drain; 0 drains from the beginning), oldest
// first, plus the new cursor and the count of spans that wrapped out of the
// ring before this drain could reach them. It is the streaming export path:
// an obsplane emitter keeps the cursor between flushes and ships exactly
// the new spans, with losses accounted rather than silent.
func (t *Tracer) DrainSince(cursor uint64) (recs []Record, newCursor, missed uint64) {
	t.mu.Lock()
	newCursor = t.total
	if cursor >= t.total {
		t.mu.Unlock()
		return nil, newCursor, 0
	}
	pending := t.total - cursor
	if max := uint64(len(t.ring)); pending > max {
		missed = pending - max
		pending = max
	}
	n := len(t.ring)
	start := 0
	if n == cap(t.ring) {
		start = t.next // ring has wrapped; t.next is the oldest entry
	}
	// The newest entry sits just before the write position; the pending
	// run is the last `pending` entries in ring order. Only the raw entry
	// copy happens under the lock: hex rendering allocates per record, and
	// a full-ring drain must not stall Span.End on the hot path. Entries
	// are value types whose strings are never mutated in place, so shallow
	// copies stay valid after unlock.
	first := uint64(n) - pending
	raw := make([]ringRec, 0, pending)
	for i := first; i < uint64(n); i++ {
		raw = append(raw, t.ring[(start+int(i))%n])
	}
	t.mu.Unlock()

	recs = make([]Record, 0, len(raw))
	for i := range raw {
		r := &raw[i]
		rec := Record{
			Trace:   hexID(r.trace),
			Span:    hexID(r.span),
			Name:    r.name,
			Proc:    t.proc,
			Agent:   r.agent,
			Session: r.session,
			Shard:   r.shard,
			StartUs: r.startUs,
			DurUs:   r.durUs,
		}
		if r.parent != 0 {
			rec.Parent = hexID(r.parent)
		}
		recs = append(recs, rec)
	}
	return recs, newCursor, missed
}

// containsToken reports whether s contains sub (plain substring; agent
// names embed shard tokens like "conc-s3-up").
func containsToken(s, sub string) bool {
	if len(sub) == 0 || len(sub) > len(s) {
		return false
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

const hexDigits = "0123456789abcdef"

// hexID renders an id as fixed-width lowercase hex without fmt.
func hexID(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	// Fixed 16-digit width: lexicographic order equals numeric order, and
	// every id keys a map cell of the same size.
	return string(b[:])
}

// ParseID parses a hex id produced by hexID (used by tests and the
// /trace filter).
func ParseID(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if bits.LeadingZeros64(v) < 4 {
			return 0, false // overflow
		}
		v = v<<4 | d
	}
	return v, true
}

// ----- package-level default tracer -----

var (
	enabled atomic.Bool
	active  atomic.Pointer[Tracer]
)

// Enable installs a process-wide tracer and returns it. Safe to call
// again (replaces the ring).
func Enable(proc string, ringSize int) *Tracer {
	t := NewTracer(proc, ringSize)
	active.Store(t)
	enabled.Store(true)
	return t
}

// Disable turns package-level tracing off. Outstanding spans still End
// into the old ring harmlessly.
func Disable() {
	enabled.Store(false)
	active.Store(nil)
}

// Enabled reports whether package-level tracing is on. This is the single
// atomic load paid by every instrumentation point when tracing is off.
func Enabled() bool { return enabled.Load() }

// Active returns the installed tracer, or nil when disabled.
func Active() *Tracer {
	if !enabled.Load() {
		return nil
	}
	return active.Load()
}

// Root opens a root span on the active tracer (no-op Span when disabled).
func Root(name string) Span {
	t := Active()
	if t == nil {
		return Span{}
	}
	return t.Root(name)
}

// Child opens a child span on the active tracer (no-op when disabled).
func Child(parent Context, name string) Span {
	t := Active()
	if t == nil {
		return Span{}
	}
	return t.Child(parent, name)
}
