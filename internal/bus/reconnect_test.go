package bus

import (
	"testing"
	"time"

	"loadbalance/internal/message"
)

// ping builds a small valid envelope.
func ping(from, to string, round int) message.Envelope {
	env, err := message.NewEnvelope(from, to, "s", message.CutDownBid{Round: round, CutDown: 0.2})
	if err != nil {
		panic(err)
	}
	return env
}

// TestDialListFallsThrough: the first dead address is skipped, the live one
// answers.
func TestDialListFallsThrough(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialList([]string{"127.0.0.1:1", srv.Addr()}, "c1")
	if err != nil {
		t.Fatalf("DialList: %v", err)
	}
	defer cli.Close()
	if got := cli.RemoteAddr(); got != srv.Addr() {
		t.Fatalf("connected to %s, want %s", got, srv.Addr())
	}

	if _, err := DialList([]string{"127.0.0.1:1"}, "c2"); err == nil {
		t.Fatal("DialList over only dead addresses must fail")
	}
}

// TestReconnectFailoverResumesSession is the client side of grid-head
// failover: two servers bridge the same bus (the stand-in for a primary and
// its promoted standby serving the same fleet); the client's first server
// dies mid-session, the Reconn client re-dials the list, re-registers under
// its own name, and envelopes keep flowing both ways on the same Inbox.
func TestReconnectFailoverResumesSession(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srvA, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	// A local peer on the bridged bus plays the Utility Agent.
	uaInbox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}

	cli, err := DialReconnecting([]string{srvA.Addr(), srvB.Addr()}, "c1", ReconnConfig{
		Redial: 20 * time.Millisecond,
		GiveUp: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	exchange := func(round int) {
		t.Helper()
		if err := cli.Send(ping("c1", "ua", round)); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		select {
		case env := <-uaInbox:
			if env.From != "c1" {
				t.Fatalf("round %d: ua saw sender %q", round, env.From)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d never reached the ua", round)
		}
		if err := inner.Send(ping("ua", "c1", round)); err != nil {
			t.Fatalf("round %d reply: %v", round, err)
		}
		select {
		case env := <-cli.Inbox():
			if env.From != "ua" {
				t.Fatalf("round %d: client saw sender %q", round, env.From)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d reply never reached the client", round)
		}
	}

	exchange(1)
	if cli.Addr() != srvA.Addr() {
		t.Fatalf("client on %s, want the primary %s", cli.Addr(), srvA.Addr())
	}

	// The primary dies. The client must resume on the standby under the
	// same name and finish the session.
	srvA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for cli.Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Re-registration on the shared bus can race the old connection's
	// unregister; the Reconn client keeps retrying through the list, so the
	// session continues as soon as the name frees up.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		if err := cli.Send(ping("c1", "ua", 2)); err == nil {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("client never resumed sending after failover")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-uaInbox:
	case <-time.After(5 * time.Second):
		t.Fatal("post-failover envelope never reached the ua")
	}
	exchange(3)
	if cli.Addr() != srvB.Addr() {
		t.Fatalf("client on %s after failover, want the standby %s", cli.Addr(), srvB.Addr())
	}
	if cli.Stats().Reconnects < 1 {
		t.Fatalf("stats = %+v, want at least one reconnect", cli.Stats())
	}
}

// TestReconnGivesUpWhenNobodyAnswers: a dead list ends the session instead
// of spinning forever — the Inbox closes.
func TestReconnGivesUpWhenNobodyAnswers(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialReconnecting([]string{srv.Addr()}, "c1", ReconnConfig{
		Redial: 10 * time.Millisecond,
		GiveUp: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	inner.Close()
	select {
	case _, ok := <-waitClosed(cli.Inbox()):
		if ok {
			t.Fatal("inbox delivered instead of closing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inbox never closed after give-up")
	}
}

// waitClosed drains a channel until it closes, forwarding the closed state.
func waitClosed(in <-chan message.Envelope) <-chan message.Envelope {
	out := make(chan message.Envelope)
	go func() {
		for range in {
		}
		close(out)
	}()
	return out
}

// TestSplitAddrList covers the flag-level dial list parser.
func TestSplitAddrList(t *testing.T) {
	got := SplitAddrList(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("SplitAddrList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitAddrList = %v, want %v", got, want)
		}
	}
	if SplitAddrList("") != nil {
		t.Fatal("empty list must parse to nil")
	}
}
