package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/replica"
	"loadbalance/internal/store"
	"loadbalance/internal/telemetry"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

// initHealthLogging installs the process-wide structured logger from the
// -log-level/-log-file flags. With a data dir and no explicit -log-file
// the durable sink defaults to <data-dir>/gridd.log.
func initHealthLogging(proc, level, file, dataDir string) (*health.Logger, error) {
	lvl, err := health.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	if file == "" && dataDir != "" {
		file = filepath.Join(dataDir, "gridd.log")
	}
	if file != "" {
		if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
			return nil, err
		}
	}
	return health.Init(health.Config{
		Proc:        proc,
		MinLevel:    lvl,
		RingSize:    4096,
		FilePath:    file,
		StderrLevel: health.Warn,
	})
}

// defaultAlertRules is the rule set a live daemon runs when -alerts is not
// given: the overload floor on the composite score, the latency ceiling on
// negotiation sessions, the two staleness signals (standby lag, journal
// append age), and the fleet silence detector. worker_silent references the
// obs hub's fleet_last_batch_age_seconds gauge; on daemons that host no hub
// the gauge is unregistered and the engine treats the rule as non-breaching.
func defaultAlertRules() []health.RuleConfig {
	return []health.RuleConfig{
		{Name: "overload", Metric: "feedback_score", Op: "<", Threshold: 40, For: 2},
		{Name: "slow_sessions", Metric: "negotiation_session_seconds_p99", Op: ">", Threshold: 2, For: 2},
		{Name: "standby_lag", Metric: "replica_lag_records", Op: ">", Threshold: 2048, For: 3},
		{Name: "journal_stall", Metric: "journal_append_age_seconds", Op: ">", Threshold: 30, For: 3},
		{Name: "worker_silent", Metric: "fleet_last_batch_age_seconds", Op: ">", Threshold: 10, For: 2},
	}
}

// resolveAlertRules maps the -alerts flag value to a rule set: empty means
// the defaults, "none" disables alerting, anything else is parsed.
func resolveAlertRules(flagVal string) ([]health.RuleConfig, error) {
	switch flagVal {
	case "":
		return defaultAlertRules(), nil
	case "none":
		return nil, nil
	default:
		return health.ParseRules(flagVal)
	}
}

// liveHealth bundles the live daemon's health layer: the score, the alert
// engine, the optional feedback responder and the optional flight
// recorder. One instance serves both roles — a standby evaluates it from
// a side ticker, a primary from the tick loop.
type liveHealth struct {
	logger    *health.Logger
	scorer    *health.Scorer
	alerts    *health.Engine
	recorder  *health.Recorder // nil without a data dir
	responder *health.Responder
	history   *tsdb.Store   // nil when -tsdb-interval is 0
	scraper   *tsdb.Scraper // fills history from the live metrics page
}

// newLiveHealth wires the health layer over the live state holder. It
// registers the gauges the alert rules reference, starts the feedback
// responder when -feedback-addr is set, and arms the flight recorder when
// a data dir exists.
func newLiveHealth(ctx context.Context, opts liveOptions, state *gridState) (*liveHealth, error) {
	h := &liveHealth{logger: health.Default()}

	h.scorer = health.NewScorer(health.Sources{
		Utilization: func() float64 {
			_, snap, _, _, _ := state.view()
			if snap.TargetKWh <= 0 {
				return 0
			}
			return snap.FleetKWh / snap.TargetKWh
		},
		ReplicationLag: func() float64 { return worstStandbyLag(state) },
	}, health.DefaultBudgets(), health.DefaultWeights())

	health.RegisterGauge("replica_lag_records", func() float64 { return worstStandbyLag(state) })
	health.RegisterGauge("journal_append_age_seconds", func() float64 { return journalAppendAge(state) })

	rules, err := resolveAlertRules(opts.alerts)
	if err != nil {
		return nil, err
	}
	h.alerts = health.NewEngine(rules, h.logger)

	// Metrics history: scrape the live metrics page into the embedded
	// store each interval; windowed and burn-rate alert rules evaluate
	// against it, and /query serves it.
	if h.history = newHistoryStore(opts.history); h.history != nil {
		h.alerts.History = h.history
		h.scraper = startHistoryScraper(opts.history, h.history, func(w io.Writer) { writeLiveMetrics(w, state, h) })
	}

	if opts.dataDir != "" {
		h.recorder = health.NewRecorder(filepath.Join(opts.dataDir, "flightrec"), opts.flightrecKeep, h.logger)
		h.recorder.Bind(h.scorer, h.alerts)
		h.recorder.MetricsFn = func(w io.Writer) { writeLiveMetrics(w, state, h) }
		if opts.profileOnAlert {
			h.recorder.ProfileDur = 2 * time.Second
		}
		health.SetRecorder(h.recorder)
		h.alerts.OnFire = func(a health.AlertStatus) {
			if _, err := h.recorder.Dump("alert", a.Rule.Name); err != nil {
				h.logger.Logf(health.Error, "flightrec", "alert dump failed: %v", err)
			}
		}
	}

	if opts.feedbackAddr != "" {
		resp, err := health.NewResponder(opts.feedbackAddr, h.scorer)
		if err != nil {
			h.close()
			return nil, err
		}
		h.responder = resp
		go resp.Serve(ctx)
		if opts.dataDir != "" {
			if err := atomicWriteFile(opts.dataDir, "feedback-addr", []byte(resp.Addr())); err != nil {
				h.close()
				return nil, err
			}
		}
		fmt.Printf("gridd: feedback responder on %s\n", resp.Addr())
	}
	return h, nil
}

// evalTick recomputes the score and evaluates the alert rules — once per
// engine tick on a primary, once per ticker interval on a standby.
func (h *liveHealth) evalTick() {
	if h == nil {
		return
	}
	h.scorer.Compute()
	h.alerts.Eval()
}

// startStandbyEval evaluates the health layer on a side ticker while the
// daemon is a standby (the tick loop isn't running yet). The returned stop
// function halts it — call it before promotion hands evaluation to the
// tick loop.
func (h *liveHealth) startStandbyEval(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.evalTick()
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}

// close releases listeners and unregisters the state-bound gauges so a
// later in-process run (tests) starts from a clean namespace.
func (h *liveHealth) close() {
	if h == nil {
		return
	}
	closeScraper(h.scraper)
	if h.responder != nil {
		_ = h.responder.Close()
	}
	if h.recorder != nil {
		health.SetRecorder(nil)
		h.recorder.WaitProfiles()
	}
	health.UnregisterGauge("feedback_score")
	health.UnregisterGauge("replica_lag_records")
	health.UnregisterGauge("journal_append_age_seconds")
}

// worstStandbyLag reads the largest standby lag in records: a primary
// reports over its sender's followers, a standby reports its own apply
// lag (unknowable against a dead primary, so it reports 0 and the
// receiver's own staleness signals take over).
func worstStandbyLag(state *gridState) float64 {
	_, _, _, _, sender := state.view()
	if sender == nil {
		return 0
	}
	var worst uint64
	for _, s := range sender.Status().Standbys {
		if s.LagRecords > worst {
			worst = s.LagRecords
		}
	}
	return float64(worst)
}

// journalAppendAge reads seconds since the last journal append (0 when
// the process journals nothing).
func journalAppendAge(state *gridState) float64 {
	var stats store.Stats
	state.mu.Lock()
	stby, st := state.stby, state.st
	state.mu.Unlock()
	switch {
	case stby != nil:
		stats = stby.Eng.StoreStats()
	case st != nil:
		stats = st.Stats()
	default:
		return 0
	}
	if stats.LastAppend.IsZero() {
		return 0
	}
	return time.Since(stats.LastAppend).Seconds()
}

// writeLiveMetrics renders the live daemon's full metrics page — the
// /metrics body and the flight recorder's metrics.prom are the same
// document.
func writeLiveMetrics(w io.Writer, state *gridState, h *liveHealth) {
	_, snap, _, stby, sender := state.view()
	writeMetrics(w, snap)
	switch {
	case stby != nil:
		store.WriteMetrics(w, stby.Eng.StoreStats())
		replica.WriteReceiverMetrics(w, stby.Receiver().Status())
	default:
		state.mu.Lock()
		st := state.st
		state.mu.Unlock()
		if st != nil {
			store.WriteMetrics(w, st.Stats())
		}
		if sender != nil {
			replica.WriteSenderMetrics(w, sender.Status())
		}
	}
	if h != nil {
		health.WriteScoreMetrics(w, h.scorer)
		health.WriteAlertMetrics(w, h.alerts)
		health.WriteLogMetrics(w, h.logger)
		if h.history != nil {
			h.history.WriteMetrics(w)
		}
	}
	state.mu.Lock()
	hub := state.obs
	state.mu.Unlock()
	if hub != nil {
		hub.WriteSummaryMetrics(w)
		telemetry.WriteWireMetrics(w, map[string]bus.WireStats{"obs": hub.WireStats()})
	}
	trace.WriteMetrics(w)
}

// logRenegotiation emits the structured event for a tick that re-awarded
// part of the fleet.
func logRenegotiation(rep telemetry.TickReport) {
	if rep.Renegotiated == nil || !health.Enabled(health.Info) {
		return
	}
	fields := []health.Field{
		health.Str("role", "primary"),
		health.Int("tick", int64(rep.Tick)),
		health.Str("session", rep.Renegotiated.SessionID),
		health.Str("outcome", rep.Renegotiated.Outcome),
		health.Int("members", int64(rep.Renegotiated.Members)),
	}
	for _, s := range rep.Renegotiated.Shards {
		fields = append(fields, health.Int("shard", int64(s)))
	}
	health.Log(health.Info, "grid", "shards re-negotiated", fields...)
}
