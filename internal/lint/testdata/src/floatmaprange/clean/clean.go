// Fixture: order-independent map-range shapes floatmaprange must NOT flag.
package clean

import "sort"

// The canonical fix: collect keys, sort, range the sorted slice.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Integer counters are exact: order-independent.
func count(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// A loop-local accumulator resets every iteration; only the per-key
// result escapes, keyed by the map key.
func perEntry(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// A compare-and-replace max is order-independent (no arithmetic).
func maxValue(m map[string]float64) float64 {
	hi := 0.0
	for _, v := range m {
		if v > hi {
			hi = v
		}
	}
	return hi
}

// Pure map-to-map rewrites don't accumulate.
func rescale(m map[string]float64, f float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * f
	}
	return out
}

// The escape hatch: a reviewed, annotated site stays silent.
func annotated(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //gridlint:allow floatmaprange(fixture: pretend this was proven order-independent)
	}
	return total
}
