package telemetry

// Standby replay mode: a hot standby holds a LiveEngine that never meters and
// never negotiates — it is fed journal records replicated from a primary and
// replays each one through the same code paths crash recovery uses, so its
// in-memory grid state tracks the primary at most one batch behind. Promotion
// turns it into the primary: the divergence point is sealed into the local
// journal, the meter RNGs fast-forward past the replicated ticks, and the
// telemetry stream opens — from there the engine ticks exactly as an
// uninterrupted run would have.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"loadbalance/internal/store"
)

// ErrSealedStream reports a promotion attempt over a stream that ended with
// the primary's clean-shutdown seal: there is no failure to fail over from.
var ErrSealedStream = errors.New("telemetry: replicated stream is sealed")

// StandbyEngine is a live engine in replay-only mode. Its methods are safe
// for concurrent use (the replication receiver applies records while HTTP
// handlers read the replica state).
type StandbyEngine struct {
	mu         sync.Mutex
	e          *LiveEngine
	st         *store.Store
	negotiated bool
	sealed     bool
	promoted   bool
	applied    uint64 // records applied by this process (not counting recovery)

	// Promotion freezes the replica view: after Promote, the LiveEngine
	// belongs to its tick loop and is mutated without this mutex, so reads
	// through the StandbyEngine answer from these promotion-moment copies
	// instead of touching the engine.
	finalProfile GridProfile
	finalSnap    Snapshot
}

// OpenStandby builds a standby engine over a local data directory: prior
// local state (a standby restarting) is recovered exactly like OpenDurable
// does, but the engine neither negotiates nor opens telemetry — it waits for
// replicated records. The configuration must match the primary's: replay
// validates it against the replicated scenario registration.
func OpenStandby(cfg LiveConfig, dcfg DurableConfig) (*StandbyEngine, *RecoveryInfo, error) {
	start := time.Now() //gridlint:allow walltime(standby replay latency measurement for RecoveryInfo.Elapsed; replayed state comes from the journal)
	if dcfg.SnapshotEvery == 0 {
		dcfg.SnapshotEvery = 32
	}
	if dcfg.SnapshotEvery < 0 {
		return nil, nil, fmt.Errorf("%w: snapshot every %d ticks", ErrBadConfig, dcfg.SnapshotEvery)
	}
	st, rec, err := store.Open(dcfg.Dir, dcfg.Store)
	if err != nil {
		return nil, nil, err
	}
	e, err := NewLiveEngine(cfg)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	e.st = st
	e.snapshotEvery = dcfg.SnapshotEvery

	s := &StandbyEngine{e: e, st: st}
	info := &RecoveryInfo{
		Recovered:   !rec.Empty(),
		CleanStart:  rec.Sealed,
		SnapshotSeq: rec.SnapshotSeq,
		Replayed:    len(rec.Records),
	}
	if info.Recovered {
		// Replay the local prefix, but leave the meter fast-forward to
		// promotion: SkipTicks is relative, and more ticks are coming.
		if len(rec.Snapshot) > 0 {
			s.negotiated, err = e.applySnapshotState(rec.Snapshot)
			if err != nil {
				st.Close()
				return nil, nil, err
			}
		}
		for _, r := range rec.Records {
			n, err := e.applyJournalRecord(r)
			if err != nil {
				st.Close()
				return nil, nil, err
			}
			s.negotiated = s.negotiated || n
		}
		s.sealed = rec.Sealed
	}
	info.ResumeTick = e.tick
	info.Elapsed = time.Since(start) //gridlint:allow walltime(standby replay latency measurement for RecoveryInfo.Elapsed; replayed state comes from the journal)
	return s, info, nil
}

// LastSeq returns the standby journal's newest sequence number — the position
// a (re)subscription resumes from.
func (s *StandbyEngine) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats().LastSeq
}

// Tick returns the next tick the replica state expects.
func (s *StandbyEngine) Tick() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.tick
}

// Sealed reports whether the replicated stream ended with the primary's
// clean-shutdown seal.
func (s *StandbyEngine) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// Applied returns the number of records this process has applied from the
// stream (recovery of a prior local prefix not included).
func (s *StandbyEngine) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// ApplySnapshot bootstraps an empty standby from the primary's shipped
// snapshot: the blob is installed in the local journal at the primary's
// position and restored into the engine.
func (s *StandbyEngine) ApplySnapshot(seq uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("%w: apply on a promoted standby", ErrBadConfig)
	}
	if err := s.st.InstallSnapshot(seq, blob); err != nil {
		return err
	}
	negotiated, err := s.e.applySnapshotState(blob)
	if err != nil {
		return err
	}
	s.negotiated = s.negotiated || negotiated
	return nil
}

// ApplyFrames persists one replicated frame run into the local journal
// (checksums verified, bytes unchanged) and replays each record into the
// replica state. It returns the number of records applied and whether the
// run carried the primary's clean-shutdown seal. An error after a non-zero
// count means the journal holds records the engine could not replay — the
// replica is broken and must not continue following.
func (s *StandbyEngine) ApplyFrames(firstSeq uint64, frames []byte) (n int, sealed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return 0, false, fmt.Errorf("%w: apply on a promoted standby", ErrBadConfig)
	}
	// Persist first: the journal is the source of truth, and a record the
	// engine has seen but the journal has not would be lost to a standby
	// restart. The one decode pass inside AppendFrames serves replay too.
	recs, sealed, err := s.st.AppendFrames(firstSeq, frames)
	n = len(recs)
	if err != nil {
		return n, sealed, err
	}
	for _, r := range recs {
		negotiated, err := s.e.applyJournalRecord(r)
		if err != nil {
			return n, sealed, err
		}
		s.negotiated = s.negotiated || negotiated
	}
	s.applied += uint64(n)
	s.sealed = s.sealed || sealed
	return n, sealed, nil
}

// PromotionInfo reports a completed promotion.
type PromotionInfo struct {
	// FromSeq is the last replicated journal position — the divergence point.
	FromSeq uint64
	// ResumeTick is the tick the promoted engine continues from.
	ResumeTick int
	// Elapsed is the promotion latency (seal + fast-forward + telemetry open).
	Elapsed time.Duration
}

// Promote turns the standby into the primary: the divergence point is sealed
// into the local journal with a promote record, the meter jitter streams
// fast-forward past every replicated tick, the standing bids actuate, and the
// telemetry stream opens. A standby promoted before any negotiated outcome
// was replicated (the primary died during or before its initial negotiation)
// starts the run fresh — negotiation is deterministic, so it commits the
// exact outcome the primary would have journaled. The returned LiveEngine
// owns the journal and the run from here; the StandbyEngine must not be used
// again (further applies fail). Promoting a standby whose stream ended with
// the primary's seal is refused — a cleanly shut-down grid has nothing to
// fail over from.
func (s *StandbyEngine) Promote(replica, reason string) (*LiveEngine, *PromotionInfo, error) {
	start := time.Now() //gridlint:allow walltime(promotion latency measurement for PromotionInfo.Elapsed; replayed state comes from the journal)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil, nil, fmt.Errorf("%w: standby already promoted", ErrBadConfig)
	}
	if s.sealed {
		return nil, nil, fmt.Errorf("%w: primary shut down cleanly; nothing to promote over", ErrSealedStream)
	}
	fromSeq := s.st.Stats().LastSeq
	if !s.negotiated && fromSeq == 0 {
		// Nothing replicated at all: this journal opens like a fresh
		// primary's, registering the run before the promote record.
		if err := s.e.journalRegistration(); err != nil {
			return nil, nil, err
		}
	}
	rec, err := store.NewPromoteRecord(store.PromoteInfo{Replica: replica, FromSeq: fromSeq, Reason: reason})
	if err != nil {
		return nil, nil, err
	}
	if err := s.st.Append(rec); err != nil {
		return nil, nil, err
	}
	if err := s.st.Sync(); err != nil {
		return nil, nil, err
	}
	if s.negotiated {
		s.e.finishReplay()
		if err := s.e.openTelemetry(); err != nil {
			return nil, nil, err
		}
	} else if err := s.e.Start(); err != nil {
		// The primary never committed an outcome; negotiate it ourselves
		// (Start journals the session and opens telemetry).
		return nil, nil, err
	}
	// Freeze the replica view before the tick loop takes the engine over:
	// a handler that raced the role swap still gets a coherent
	// promotion-moment answer.
	s.finalProfile = s.e.Profile()
	s.finalSnap = s.e.Snapshot()
	s.promoted = true
	return s.e, &PromotionInfo{
		FromSeq:    fromSeq,
		ResumeTick: s.e.tick,
		Elapsed:    time.Since(start), //gridlint:allow walltime(promotion latency measurement for PromotionInfo.Elapsed; replayed state comes from the journal)
	}, nil
}

// Profile captures the replica's canonical observable outcome — what a read
// replica serves at /awards. After promotion it answers with the frozen
// promotion-moment profile (the live engine now belongs to its tick loop).
func (s *StandbyEngine) Profile() GridProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return s.finalProfile
	}
	return s.e.Profile()
}

// ReplicaSnapshot captures the replica's observable state for health
// endpoints; after promotion, the frozen promotion-moment snapshot.
func (s *StandbyEngine) ReplicaSnapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return s.finalSnap
	}
	return s.e.Snapshot()
}

// StoreStats exposes the standby journal's counters.
func (s *StandbyEngine) StoreStats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats()
}

// Close releases the standby without promoting: the journal is flushed and
// closed exactly as replicated (indistinguishable from a standby crash). A
// promoted standby's resources belong to the returned LiveEngine; Close is a
// no-op then.
func (s *StandbyEngine) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil
	}
	err := s.st.Close()
	s.e.Stop()
	return err
}
