package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// liveTestEngine builds a 16-shard, 48-customer live grid with the given
// shard events.
func liveTestEngine(t *testing.T, events map[int][]Event) *LiveEngine {
	t.Helper()
	s, err := ElasticFleetScenario(48, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLiveEngine(LiveConfig{
		Scenario:       s,
		Shards:         16,
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           11,
		ShardEvents:    events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	return eng
}

// TestLiveSpikeRenegotiatesOnlyBreachingShards is the seeded live-run
// acceptance check: a sustained demand spike hits 2 of 16 shards; only those
// shards re-negotiate, the fleet's measured load returns under the
// allowed-overuse target within a bounded number of ticks, and the untouched
// shards' awards are byte-identical before and after.
func TestLiveSpikeRenegotiatesOnlyBreachingShards(t *testing.T) {
	spiked := []int{2, 9}
	events := map[int][]Event{
		2: {{StartTick: 3, EndTick: 99, Factor: 2.5}},
		9: {{StartTick: 3, EndTick: 99, Factor: 2.5}},
	}
	eng := liveTestEngine(t, events)

	// The initial negotiation must leave the fleet operating: customers
	// committed to cut-downs and meters actuated.
	initialAwards := make(map[int][]byte)
	for i := 0; i < 16; i++ {
		data, err := json.Marshal(eng.ShardAwards(i))
		if err != nil {
			t.Fatal(err)
		}
		initialAwards[i] = data
	}

	reports, err := eng.Run(12)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one re-negotiation event, covering exactly the spiked shards.
	events2 := eng.Events()
	if len(events2) != 1 {
		t.Fatalf("renegotiation events = %d, want exactly 1: %+v", len(events2), events2)
	}
	ev := events2[0]
	if len(ev.Shards) != 2 || ev.Shards[0] != spiked[0] || ev.Shards[1] != spiked[1] {
		t.Fatalf("renegotiated shards = %v, want %v", ev.Shards, spiked)
	}
	if ev.Members != 6 {
		t.Fatalf("re-bidding members = %d, want 6 (2 shards × 3 customers)", ev.Members)
	}
	// The demand-factor estimate recovers the injected 2.5x spike.
	for _, i := range spiked {
		if f := ev.Factors[i]; f < 2.3 || f > 2.7 {
			t.Fatalf("shard %d estimated factor = %v, want ≈2.5", i, f)
		}
	}

	// The per-shard counter stays pinned to the breaching shards.
	snap := eng.Snapshot()
	for i := 0; i < 16; i++ {
		want := 0
		if i == spiked[0] || i == spiked[1] {
			want = 1
		}
		if snap.ShardRenegotiations[i] != want {
			t.Fatalf("shard %d renegotiations = %d, want %d", i, snap.ShardRenegotiations[i], want)
		}
	}
	if snap.Renegotiations != 1 {
		t.Fatalf("total renegotiations = %d, want 1", snap.Renegotiations)
	}

	// Untouched shards' awards are byte-identical before/after the event;
	// the spiked shards' members conceded strictly deeper.
	for i := 0; i < 16; i++ {
		data, err := json.Marshal(eng.ShardAwards(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == spiked[0] || i == spiked[1] {
			if bytes.Equal(initialAwards[i], data) {
				t.Fatalf("spiked shard %d awards unchanged", i)
			}
			for name, a := range eng.ShardAwards(i) {
				var before map[string]Award
				if err := json.Unmarshal(initialAwards[i], &before); err != nil {
					t.Fatal(err)
				}
				if a.CutDown <= before[name].CutDown {
					t.Fatalf("spiked member %s cut-down %v did not deepen from %v", name, a.CutDown, before[name].CutDown)
				}
			}
			continue
		}
		if !bytes.Equal(initialAwards[i], data) {
			t.Fatalf("untouched shard %d awards changed:\nbefore %s\nafter  %s", i, initialAwards[i], data)
		}
	}

	// The spike is visible before the re-negotiation and the fleet returns
	// under the allowed-overuse target within a bounded number of ticks.
	if ev.Tick != 4 {
		t.Fatalf("breach fired at tick %d, want 4 (spike at 3, hysteresis 2)", ev.Tick)
	}
	spikeTick := reports[3]
	if spikeTick.ShardMeasured[2] < 2*spikeTick.ShardExpected[2] {
		t.Fatalf("tick 3 shard 2: measured %v vs expected %v, spike not visible",
			spikeTick.ShardMeasured[2], spikeTick.ShardExpected[2])
	}
	target := reports[0].TargetKWh
	for _, rep := range reports[7:] {
		if rep.FleetKWh > target*1.03 {
			t.Fatalf("tick %d: fleet %v kWh above target %v after recovery window",
				rep.Tick, rep.FleetKWh, target)
		}
	}
	// And the loop is quiet again: no latched breaches at the end.
	for i, breached := range snap.ShardBreached {
		if breached {
			t.Fatalf("shard %d still breached at end of run", i)
		}
	}
}

// TestLiveSteadyStateNeverRenegotiates pins the false-positive rate: with
// jitter only, no shard ever breaches.
func TestLiveSteadyStateNeverRenegotiates(t *testing.T) {
	eng := liveTestEngine(t, nil)
	reports, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Renegotiations(); n != 0 {
		t.Fatalf("steady state renegotiated %d times: %+v", n, eng.Events())
	}
	target := reports[0].TargetKWh
	for _, rep := range reports {
		if rep.FleetKWh > target*1.03 {
			t.Fatalf("tick %d: steady fleet %v kWh above target %v", rep.Tick, rep.FleetKWh, target)
		}
	}
}

// TestLiveOutageFreesCapacity drives the opposite excursion: a whole shard
// goes dark, the deviation fires, and the re-negotiation re-models the shard
// at (near) zero demand without disturbing anyone else.
func TestLiveOutageFreesCapacity(t *testing.T) {
	eng := liveTestEngine(t, map[int][]Event{
		5: {{StartTick: 2, EndTick: 99, Factor: 0}},
	})
	if _, err := eng.Run(8); err != nil {
		t.Fatal(err)
	}
	events := eng.Events()
	if len(events) != 1 || len(events[0].Shards) != 1 || events[0].Shards[0] != 5 {
		t.Fatalf("outage events = %+v, want one event on shard 5", events)
	}
	if f := events[0].Factors[5]; f > 0.05 {
		t.Fatalf("outage factor estimate = %v, want ≈0", f)
	}
	snap := eng.Snapshot()
	if snap.ShardMeasured[5] != 0 {
		t.Fatalf("dark shard still measures %v kWh", snap.ShardMeasured[5])
	}
	if snap.ShardBreached[5] {
		t.Fatal("dark shard still flagged after re-negotiation reset")
	}
}

// TestLiveManyShardsStillDetects pins the default absolute deviation floor
// at high shard counts: it must scale with a shard's load, not the fleet's,
// or a single-customer shard's outage becomes invisible.
func TestLiveManyShardsStillDetects(t *testing.T) {
	s, err := ElasticFleetScenario(48, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLiveEngine(LiveConfig{
		Scenario:       s,
		Shards:         48, // one customer per shard
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           11,
		ShardEvents:    map[int][]Event{7: {{StartTick: 1, EndTick: 99, Factor: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if _, err := eng.Run(6); err != nil {
		t.Fatal(err)
	}
	events := eng.Events()
	if len(events) != 1 || len(events[0].Shards) != 1 || events[0].Shards[0] != 7 {
		t.Fatalf("events = %+v, want one outage breach on shard 7", events)
	}
}

// TestLiveEngineLifecycleErrors covers the guard rails.
func TestLiveEngineLifecycleErrors(t *testing.T) {
	s, err := ElasticFleetScenario(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLiveEngine(LiveConfig{Scenario: s, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Tick(); err == nil {
		t.Fatal("Tick before Start must fail")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Start(); err == nil {
		t.Fatal("double Start must fail")
	}
	if _, err := eng.Tick(); err != nil {
		t.Fatal(err)
	}
}
