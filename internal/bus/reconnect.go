package bus

// Multi-address dialing and reconnect-and-resume: the client side of the
// grid head's high-availability story. A fleet is configured with a dial
// list — the primary's address first, then the standbys' — and a
// Reconn-wrapped connection survives the primary's death: when its
// connection drops it re-dials through the list (the promoted standby
// answers at its own address), re-registers under the same agent name, and
// keeps the same Inbox channel, so agent code above it never learns the
// transport moved.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loadbalance/internal/message"
)

// SplitAddrList parses a comma-separated dial list ("host:1234,host2:1234")
// into its addresses, trimming whitespace and dropping empties.
func SplitAddrList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if a := strings.TrimSpace(part); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// DialList tries each address in order until one answers, with default
// tuning. It is the one-shot form; Reconn adds resume.
func DialList(addrs []string, name string) (*Client, error) {
	return DialListConfig(addrs, name, ClientConfig{})
}

// DialListConfig tries each address in order with explicit tuning.
func DialListConfig(addrs []string, name string, cfg ClientConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: empty dial list", ErrUnknownAgent)
	}
	var firstErr error
	for _, addr := range addrs {
		cli, err := DialConfig(addr, name, cfg)
		if err == nil {
			return cli, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("bus: no address in %v answered: %w", addrs, firstErr)
}

// ReconnConfig tunes a reconnecting client.
type ReconnConfig struct {
	// Client tunes each underlying connection.
	Client ClientConfig
	// Redial is the pause between failed dial rounds (default 200ms).
	Redial time.Duration
	// GiveUp abandons the session after this long without a connection
	// (default 15s): a fleet must not wait forever on a grid head that is
	// never coming back.
	GiveUp time.Duration
}

// withDefaults fills unset fields.
func (c ReconnConfig) withDefaults() ReconnConfig {
	if c.Redial <= 0 {
		c.Redial = 200 * time.Millisecond
	}
	if c.GiveUp <= 0 {
		c.GiveUp = 15 * time.Second
	}
	return c
}

// ReconnStats counts a reconnecting client's transport life.
type ReconnStats struct {
	Reconnects uint64 // successful re-dials after a connection loss
	Dropped    uint64 // sends refused while disconnected
}

// Reconn is a Client with a dial list and automatic reconnect-and-resume.
// Its Inbox is stable across reconnects; envelopes that were in flight when
// a connection died are lost (the protocol's round timeouts and re-announce
// paths absorb that, exactly as they absorb a lossy bus).
type Reconn struct {
	name  string
	addrs []string
	cfg   ReconnConfig

	inbox chan message.Envelope
	done  chan struct{}

	mu     sync.Mutex
	cur    *Client
	closed bool

	reconnects, dropped atomic.Uint64
}

// DialReconnecting connects to the first answering address of the list and
// keeps the session alive across server failures. The initial dial must
// succeed (a misconfigured list fails fast).
func DialReconnecting(addrs []string, name string, cfg ReconnConfig) (*Reconn, error) {
	cfg = cfg.withDefaults()
	cli, err := DialListConfig(addrs, name, cfg.Client)
	if err != nil {
		return nil, err
	}
	r := &Reconn{
		name:  name,
		addrs: append([]string(nil), addrs...),
		cfg:   cfg,
		inbox: make(chan message.Envelope, max(cfg.Client.InboxSize, 64)),
		done:  make(chan struct{}),
	}
	r.cur = cli
	go r.pump(cli)
	return r, nil
}

// pump forwards one connection's inbox into the stable inbox, then
// reconnects when it dies.
func (r *Reconn) pump(cli *Client) {
	defer close(r.done)
	for {
		for env := range cli.Inbox() {
			select {
			case r.inbox <- env:
			default:
				// Stable-inbox overflow mirrors Client's shedding semantics.
				r.dropped.Add(1)
			}
		}
		// Connection died (or Close cut it). Re-dial unless closing.
		next := r.redial()
		if next == nil {
			close(r.inbox)
			return
		}
		cli = next
	}
}

// redial loops over the address list until a connection answers, the give-up
// deadline passes, or the client is closed. It returns nil when the session
// is over.
func (r *Reconn) redial() *Client {
	deadline := time.Now().Add(r.cfg.GiveUp)
	for {
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed || time.Now().After(deadline) {
			return nil
		}
		cli, err := DialListConfig(r.addrs, r.name, r.cfg.Client)
		if err == nil {
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				go cli.Close()
				return nil
			}
			r.cur = cli
			r.mu.Unlock()
			r.reconnects.Add(1)
			return cli
		}
		time.Sleep(r.cfg.Redial)
	}
}

// Inbox returns the stable inbound channel. It closes when the session ends
// for good (Close, or reconnection given up).
func (r *Reconn) Inbox() <-chan message.Envelope { return r.inbox }

// Send transmits over the current connection. While disconnected it fails
// fast (the message-loss semantics agents already handle) rather than
// blocking a negotiation round.
func (r *Reconn) Send(env message.Envelope) error {
	r.mu.Lock()
	cli := r.cur
	closed := r.closed
	r.mu.Unlock()
	if closed || cli == nil {
		r.dropped.Add(1)
		return ErrClosed
	}
	if err := cli.Send(env); err != nil {
		r.dropped.Add(1)
		return err
	}
	return nil
}

// Stats snapshots the reconnect counters.
func (r *Reconn) Stats() ReconnStats {
	return ReconnStats{Reconnects: r.reconnects.Load(), Dropped: r.dropped.Load()}
}

// Addr returns the currently connected server address ("" when between
// connections).
func (r *Reconn) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		return r.cur.RemoteAddr()
	}
	return ""
}

// Close ends the session and waits for the pump to exit.
func (r *Reconn) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	cli := r.cur
	r.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
	<-r.done
}
