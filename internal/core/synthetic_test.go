package core

import (
	"testing"

	"loadbalance/internal/units"
)

func TestSyntheticScenarioShape(t *testing.T) {
	s, err := SyntheticScenario(SyntheticConfig{N: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Customers) != 50 {
		t.Fatalf("customers = %d", len(s.Customers))
	}
	var total units.Energy
	for _, c := range s.Customers {
		total = total.Add(c.Predicted)
	}
	ratio := total.KWhs()/s.NormalUse.KWhs() - 1
	if ratio < 0.34 || ratio > 0.36 {
		t.Fatalf("initial overuse ratio = %v, want ≈0.35", ratio)
	}
	// Determinism: the same seed yields the same fleet.
	s2, err := SyntheticScenario(SyntheticConfig{N: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Customers {
		if s.Customers[i].Prefs.RequiredFor(0.4) != s2.Customers[i].Prefs.RequiredFor(0.4) {
			t.Fatalf("customer %d differs across identical seeds", i)
		}
	}
	if _, err := SyntheticScenario(SyntheticConfig{}); err == nil {
		t.Fatal("zero population should fail")
	}
	if _, err := SyntheticScenario(SyntheticConfig{N: 5, TargetOveruse: -1}); err == nil {
		t.Fatal("negative target overuse should fail")
	}
}

func TestSyntheticScenarioNegotiates(t *testing.T) {
	s, err := SyntheticScenario(SyntheticConfig{N: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatalf("no negotiation ran: %+v", res.Result)
	}
	if res.FinalOveruseKWh >= res.InitialOveruseKWh {
		t.Fatalf("overuse did not fall: %v → %v", res.InitialOveruseKWh, res.FinalOveruseKWh)
	}
}
