// Command gridd runs the negotiation as separate OS processes over TCP: the
// Utility Agent as a daemon and each Customer Agent as a client, which is
// the "large open distributed industrial systems" deployment the paper's
// Discussion aims at.
//
// Server (waits for -customers clients, then negotiates):
//
//	gridd -serve :9340 -customers 10
//
// Sharded server (4 Concentrator Agents front the fleet, so the Utility
// Agent sees 4 aggregated bidders instead of 100):
//
//	gridd -serve :9340 -customers 100 -shards 4
//
// Live server (a continuously operating grid: an in-process fleet is
// negotiated once, then metered every -tick; drifting shards re-negotiate
// incrementally while -serve's address answers HTTP /healthz, /metrics and
// /awards):
//
//	gridd -serve :8080 -live -customers 64 -shards 16 -tick 1s
//
// Durable live server (negotiated state, telemetry series and demand factors
// survive restarts: every decision is journaled under -data-dir and a
// restart recovers the run mid-flight, resuming at the next tick with awards
// byte-identical to an uninterrupted run):
//
//	gridd -serve :8080 -live -customers 64 -shards 16 -data-dir /var/lib/gridd
//
// Replicated live server (the journal streams to hot standbys on -repl-addr;
// the bound address is published as <data-dir>/repl-addr):
//
//	gridd -serve :8080 -live -customers 64 -shards 16 -data-dir /var/lib/gridd \
//	      -repl-addr :9400
//
// Hot standby (replays the primary's WAL stream into live in-memory state,
// serves /healthz, /metrics, /replication and /awards read-only, and — if it
// holds the lowest id among -peers — promotes itself to primary when the
// stream goes silent past -failover-timeout):
//
//	gridd -serve :8081 -live -customers 64 -shards 16 -data-dir /var/lib/gridd-s1 \
//	      -replica-of host:9400 -replica-id r1 -peers r1,r2 -repl-addr :9401
//
// Distributed sharded server (the concentrators run as separate OS
// processes; the root tier listens on -root-addr and waits for them):
//
//	gridd -serve :9340 -root-addr :9341 -customers 100 -shards 4
//
// Concentrator worker (one per shard; derives its member list from the
// c01..cNN naming convention shared with the root):
//
//	gridd -role concentrator -up localhost:9341 -down localhost:9340 \
//	      -shard 0 -shards 4 -customers 100
//
// Clients (one per customer; names must be c01..cNN):
//
//	gridd -connect localhost:9340 -name c01 -seed 1
//
// With -metrics ADDR the server also answers HTTP /healthz and /metrics,
// exposing the wire transport's frame/drop/reject counters.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: serve loops unwind, the
// HTTP listener drains, in-flight live ticks finish and the journal is
// sealed. A serve-mode daemon interrupted mid-negotiation drains the fleet
// with an aborting session end (and journals the session as aborted when
// -data-dir is set) so no client hangs and recovery never replays a
// half-committed session.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/obsplane"
	"loadbalance/internal/protocol"
	"loadbalance/internal/replica"
	"loadbalance/internal/sim"
	"loadbalance/internal/store"
	"loadbalance/internal/telemetry"
	"loadbalance/internal/trace"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

// parseShardList parses a comma-separated list of shard indices.
func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("shard index %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Unclean exits leave a flight-recorder bundle behind (when a recorder
	// is armed): a panic dumps before re-raising, an error exit dumps
	// before reporting.
	defer func() {
		if r := recover(); r != nil {
			health.CrashDump("panic", fmt.Sprint(r))
			panic(r)
		}
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		health.CrashDump("error-exit", err.Error())
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	var (
		serveAddr = fs.String("serve", "", "listen address for the Utility Agent daemon")
		customers = fs.Int("customers", 10, "customer count (daemon waits for this many; live mode synthesises them)")
		shards    = fs.Int("shards", 1, "concentrator agents fronting the fleet (server mode; 1 = flat)")
		rootAddr  = fs.String("root-addr", "", "listen address for the root tier: concentrators run as separate worker processes that dial in (requires -shards > 1)")
		metrics   = fs.String("metrics", "", "optional HTTP listen address answering /healthz and /metrics with wire transport counters (server mode)")
		live      = fs.Bool("live", false, "run the live grid: negotiate once, then meter, detect drift and re-negotiate incrementally; -serve's address answers HTTP /healthz, /metrics, /replication and /awards")
		replAddr  = fs.String("repl-addr", "", "replication listen address: stream the journal to hot standbys (live and serve modes; requires -data-dir); the bound address is written to <data-dir>/repl-addr")
		replicaOf = fs.String("replica-of", "", "run as a hot standby replicating from this comma-separated dial list of replication addresses (live mode; requires -data-dir)")
		replicaID = fs.String("replica-id", "r0", "this standby's replica id — the lowest id among -peers promotes on primary loss")
		peers     = fs.String("peers", "", "comma-separated standby ids in the replica set (promotion rule input; empty = this standby always promotes)")
		failover  = fs.Duration("failover-timeout", 3*time.Second, "how long the primary may be silent before a standby promotes")
		tick      = fs.Duration("tick", time.Second, "live metering interval")
		liveTicks = fs.Int("live-ticks", 0, "stop once the grid's tick counter reaches this (0 = run until SIGINT/SIGTERM); a recovered run counts the ticks already journaled")
		dataDir   = fs.String("data-dir", "", "journal negotiated state and telemetry under this directory; a restart recovers the run mid-flight (live and serve modes)")
		snapEvery = fs.Int("snapshot-every", 0, "ticks between snapshots in the data dir (0 = the engine default)")
		spikeSh   = fs.String("spike-shards", "", "comma-separated shard indices to hit with a demand spike (live mode; for demos and recovery drills)")
		spikeTick = fs.Int("spike-tick", -1, "tick the demand spike starts on (-1 = no spike)")
		spikeFac  = fs.Float64("spike-factor", 2.5, "demand multiplier of the injected spike")
		connect   = fs.String("connect", "", "daemon address (or comma-separated failover dial list) to join as a Customer Agent")
		name      = fs.String("name", "", "customer name (client mode)")
		seed      = fs.Int64("seed", 1, "preference randomisation seed (client and live modes)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "overall negotiation timeout")
		role      = fs.String("role", "", "process role: empty (server/client) or \"concentrator\" (worker process)")
		upAddr    = fs.String("up", "", "root-tier server address (concentrator role)")
		downAddr  = fs.String("down", "", "member-tier server address (concentrator role)")
		shard     = fs.Int("shard", 0, "shard index this worker fronts (concentrator role)")
		session   = fs.String("session", "gridd", "negotiation session id (concentrator role)")
		spikeEnd  = fs.Int("spike-end", 0, "tick the injected demand spike ends on (0 = never)")
		logLevel  = fs.String("log-level", "info", "structured log level: debug, info, warn, error or off; the ring serves /logs on the HTTP endpoint")
		logFile   = fs.String("log-file", "", "append structured log events as JSON lines to this file (default: <data-dir>/gridd.log when -data-dir is set)")
		fbAddr    = fs.String("feedback-addr", "", "TCP listen address answering every connection with the feedback score as \"NN%\\n\" — the lbfeedback/agent-check contract HAProxy-style balancers consume (live mode); the bound address is written to <data-dir>/feedback-addr")
		alerts    = fs.String("alerts", "", "comma-separated alert rules name:metric<threshold[:for=N] evaluated each tick and served on /alerts (live mode; empty = built-in rule set, \"none\" disables)")
		frKeep    = fs.Int("flightrec-keep", 8, "flight-recorder bundles to keep under <data-dir>/flightrec/ (oldest pruned)")
		traceOn   = fs.Bool("trace", false, "record negotiation spans in an in-process ring, served as JSON on /trace (?session=&shard=&trace=&limit=)")
		traceRing = fs.Int("trace-ring", 4096, "trace ring capacity in spans; the oldest spans are dropped when it wraps")
		traceDump = fs.String("trace-dump", "", "write the trace ring as JSON to this file on exit (implies -trace; the span-export path for processes without an HTTP endpoint)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ on the HTTP endpoint")
		obsAddr   = fs.String("obs-addr", "", "fleet observability hub listen address: worker, standby and serve processes stream metrics, logs and spans here and the root serves /fleet/metrics, /fleet/logs, /fleet/trace and /fleet/status (server modes; the bound address is written to <data-dir>/obs-addr)")
		obsTarget = fs.String("obs", "", "stream this process's observability state (metric samples, log events, trace spans) to the fleet hub at this address (any role)")
		tsdbInt   = fs.Duration("tsdb-interval", time.Second, "metrics-history scrape interval: each tick the process samples its own metrics page into the embedded time-series store behind /query and windowed alert rules (0 disables history)")
		tsdbRet   = fs.Duration("tsdb-retention", 15*time.Minute, "metrics-history raw retention: the per-series raw ring spans this much history at -tsdb-interval; older points survive downsampled")
		profAlert = fs.Bool("profile-on-alert", false, "capture runtime profiles into each alert-triggered flight-recorder bundle: heap.pprof inline plus a 2s cpu.pprof in the background (live mode with -data-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proc := traceProc(*role, *shard, *serveAddr, *connect, *name, *replicaOf, *replicaID, *live)
	logger, err := initHealthLogging(proc, *logLevel, *logFile, *dataDir)
	if err != nil {
		return err
	}
	defer logger.Close()
	// One identity event per process at startup: the line every process
	// contributes to the merged fleet log, tying its proc label to its role.
	logger.Log(health.Info, "gridd", "process started",
		health.Str("proc", proc),
		health.Str("role", obsRole(*role, *serveAddr, *connect, *live, *replicaOf)))
	if *traceOn || *traceDump != "" {
		trace.Enable(proc, *traceRing)
		if *traceDump != "" {
			defer dumpTraceFile(*traceDump)
		}
	}
	// SIGQUIT is the on-demand flight-recorder trigger on every role: dump a
	// bundle (when a recorder is armed) and keep running. Subscribing also
	// replaces the Go runtime's stack-dump-and-exit default.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)
	go func() {
		for range quitCh {
			health.Log(health.Warn, "flightrec", "SIGQUIT received, dumping bundle")
			health.CrashDump("sigquit", "operator-requested bundle")
		}
	}()
	// Roles that run no health layer of their own (serve daemons, workers,
	// clients) still get a flight recorder when a data dir exists, so SIGQUIT
	// and crash dumps work on every role. Live mode arms its richer
	// score-and-alert-bound recorder inside newLiveHealth.
	if *dataDir != "" && !*live {
		rec := health.NewRecorder(filepath.Join(*dataDir, "flightrec"), *frKeep, logger)
		rec.MetricsFn = writeObsMetrics
		health.SetRecorder(rec)
		defer health.SetRecorder(nil)
	}
	// The observability stream runs on any role: it drains the process-wide
	// log ring and trace ring, and renders the registered gauges, so the
	// wiring needs nothing mode-specific.
	if *obsTarget != "" {
		lvl, _ := health.ParseLevel(*logLevel) // validated by initHealthLogging above
		em := obsplane.StartEmitter(obsplane.EmitterConfig{
			Hub:       *obsTarget,
			Proc:      proc,
			Role:      obsRole(*role, *serveAddr, *connect, *live, *replicaOf),
			Addr:      *serveAddr,
			MinLevel:  lvl,
			MetricsFn: writeObsMetrics,
		})
		defer em.Close()
	}
	switch {
	case *role == "concentrator":
		if *upAddr == "" || *downAddr == "" {
			return fmt.Errorf("-role concentrator requires -up and -down")
		}
		if *shard < 0 || *shard >= *shards {
			return fmt.Errorf("-shard %d out of range for %d shards", *shard, *shards)
		}
		return runConcentrator(ctx, concOptions{
			up:          *upAddr,
			down:        *downAddr,
			shard:       *shard,
			shards:      *shards,
			customers:   *customers,
			session:     *session,
			metricsAddr: *metrics,
			pprof:       *pprofOn,
			history:     historyOptions{interval: *tsdbInt, retention: *tsdbRet},
		}, nil)
	case *role != "":
		return fmt.Errorf("unknown -role %q (want \"concentrator\")", *role)
	case *serveAddr != "" && *connect != "":
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	case *serveAddr != "":
		if *shards < 1 {
			return fmt.Errorf("-shards must be at least 1")
		}
		if *rootAddr != "" && *shards < 2 {
			return fmt.Errorf("-root-addr requires -shards > 1")
		}
		if *live {
			if *rootAddr != "" || *metrics != "" {
				return fmt.Errorf("-live runs in-process and serves its own /healthz and /metrics on -serve; it cannot combine with -root-addr or -metrics")
			}
			if *replAddr != "" && *dataDir == "" {
				return fmt.Errorf("-repl-addr streams the journal and requires -data-dir")
			}
			if *replicaOf != "" && *dataDir == "" {
				return fmt.Errorf("-replica-of persists the replicated journal and requires -data-dir")
			}
			spikeShards, err := parseShardList(*spikeSh)
			if err != nil {
				return fmt.Errorf("-spike-shards: %w", err)
			}
			return runLive(ctx, liveOptions{
				addr:            *serveAddr,
				obsAddr:         *obsAddr,
				customers:       *customers,
				shards:          *shards,
				tick:            *tick,
				maxTicks:        *liveTicks,
				seed:            *seed,
				dataDir:         *dataDir,
				snapshotEvery:   *snapEvery,
				spikeShards:     spikeShards,
				spikeTick:       *spikeTick,
				spikeFactor:     *spikeFac,
				spikeEndTick:    *spikeEnd,
				feedbackAddr:    *fbAddr,
				alerts:          *alerts,
				flightrecKeep:   *frKeep,
				replAddr:        *replAddr,
				replicaOf:       bus.SplitAddrList(*replicaOf),
				replicaID:       *replicaID,
				peers:           bus.SplitAddrList(*peers),
				failoverTimeout: *failover,
				pprof:           *pprofOn,
				history:         historyOptions{interval: *tsdbInt, retention: *tsdbRet},
				profileOnAlert:  *profAlert,
			}, nil)
		}
		if *replicaOf != "" {
			return fmt.Errorf("-replica-of requires -live")
		}
		if *replAddr != "" && *dataDir == "" {
			return fmt.Errorf("-repl-addr streams the journal and requires -data-dir")
		}
		if *obsAddr != "" && *metrics == "" {
			return fmt.Errorf("-obs-addr serves the /fleet endpoints on -metrics; set both")
		}
		return serve(ctx, serveConfig{
			addr:        *serveAddr,
			rootAddr:    *rootAddr,
			metricsAddr: *metrics,
			obsAddr:     *obsAddr,
			customers:   *customers,
			shards:      *shards,
			timeout:     *timeout,
			dataDir:     *dataDir,
			replAddr:    *replAddr,
			pprof:       *pprofOn,
			history:     historyOptions{interval: *tsdbInt, retention: *tsdbRet},
		}, nil)
	case *connect != "":
		if *name == "" {
			return fmt.Errorf("-connect requires -name")
		}
		return runClient(ctx, *connect, *name, *seed)
	default:
		return fmt.Errorf("pass -serve ADDR or -connect ADDR")
	}
}

// traceProc derives the per-process label stamped on every span this process
// records — what stitches a multi-process trace back together on inspection.
func traceProc(role string, shard int, serveAddr, connect, name, replicaOf, replicaID string, live bool) string {
	switch {
	case role == "concentrator":
		return fmt.Sprintf("gridd-cc-%03d", shard)
	case serveAddr != "" && live && replicaOf != "":
		// Standbys carry their replica id so a primary and its standbys
		// streaming to one fleet hub never collide on the proc label (the
		// name survives promotion, keeping the process's history in one
		// lane).
		return "gridd-live-" + replicaID
	case serveAddr != "" && live:
		return "gridd-live"
	case serveAddr != "":
		return "gridd-serve"
	case connect != "":
		return "gridd-" + name
	}
	return "gridd"
}

// dumpTraceFile writes the trace ring as JSON — the export path for worker
// and client processes that have no HTTP endpoint to serve /trace from.
func dumpTraceFile(path string) {
	var buf bytes.Buffer
	trace.WriteDump(&buf, trace.Filter{})
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		health.Logf(health.Error, "trace", "trace dump to %s failed: %v", path, err)
	}
}

// mountObservability adds the trace endpoint (always; it reports disabled
// until -trace) and, behind -pprof, the net/http/pprof handlers.
func mountObservability(mux *http.ServeMux, pprofOn bool) {
	mux.Handle("/trace", trace.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
}

// customerAgents filters a bridged bus's agent list down to customers,
// dropping worker concentrators (cluster.Topology names them cc-NNN), which
// share the member-tier bus with the fleet they front.
func customerAgents(agents []string) []string {
	out := agents[:0:0]
	for _, n := range agents {
		if !strings.HasPrefix(n, "cc-") {
			out = append(out, n)
		}
	}
	return out
}

// fleetNames returns the daemon's conventional customer names c01..cNN —
// the contract that lets worker processes derive their shard membership
// without any exchange with the root.
func fleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i+1)
	}
	return names
}

// fleetLoads returns the daemon's uniform load model over the fleet.
func fleetLoads(names []string) map[string]protocol.CustomerLoad {
	loads := make(map[string]protocol.CustomerLoad, len(names))
	for _, n := range names {
		loads[n] = protocol.CustomerLoad{Predicted: 13.5, Allowed: 13.5}
	}
	return loads
}

// obsRole names what kind of process this is for the fleet registry.
func obsRole(role, serveAddr, connect string, live bool, replicaOf string) string {
	switch {
	case role == "concentrator":
		return "worker"
	case serveAddr != "" && live && replicaOf != "":
		return "standby"
	case serveAddr != "" && live:
		return "live"
	case serveAddr != "":
		return "serve"
	case connect != "":
		return "client"
	}
	return "gridd"
}

// writeObsMetrics renders the process-wide observability registries — the
// registered health gauges, the log counters, the trace histograms — as one
// exposition page. It is the generic metrics source every role streams to
// the fleet hub; role-specific series (feedback score, replication lag,
// tick latency) arrive through the same registries because that is where
// each mode already publishes them.
func writeObsMetrics(w io.Writer) {
	for _, n := range health.GaugeNames() {
		if v, ok := health.LookupMetric(n); ok {
			fmt.Fprintf(w, "%s %g\n", n, v)
		}
	}
	health.WriteLogMetrics(w, health.Default())
	trace.WriteMetrics(w)
}

// concOptions parameterises one concentrator worker process.
type concOptions struct {
	up, down    string
	shard       int
	shards      int
	customers   int
	session     string
	metricsAddr string // non-empty: HTTP /healthz, /metrics, /logs, /trace, /query
	pprof       bool
	history     historyOptions
}

// runConcentrator is the worker process: it fronts one shard of the fleet,
// dialing the root tier upward and the member tier downward. Membership is
// derived from the shared c01..cNN convention, so the worker and the root
// compute identical topologies independently. With a metrics address the
// worker serves the same endpoint contract as the server roles (/healthz,
// /metrics, /logs, /trace); the optional ready channel receives the bound
// address (tests binding to ":0").
func runConcentrator(ctx context.Context, opts concOptions, ready chan<- string) error {
	topo, err := cluster.NewTopology(fleetLoads(fleetNames(opts.customers)), opts.shards)
	if err != nil {
		return err
	}
	name := topo.ConcentratorName(opts.shard)

	if opts.metricsAddr != "" {
		ln, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"status":    "ok",
				"role":      "worker",
				"shard":     opts.shard,
				"customers": len(topo.Members(opts.shard)),
			})
		})
		history := newHistoryStore(opts.history)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeObsMetrics(w)
			if history != nil {
				history.WriteMetrics(w)
			}
		})
		mux.HandleFunc("/logs", health.LogHandler(health.Default()))
		mountQuery(mux, history)
		defer closeScraper(startHistoryScraper(opts.history, history, writeObsMetrics))
		mountObservability(mux, opts.pprof)
		httpSrv := &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutdownCtx)
		}()
		if ready != nil {
			ready <- ln.Addr().String()
		}
	}

	fmt.Printf("gridd: concentrator %s fronting %d customers, up %s, down %s\n",
		name, len(topo.Members(opts.shard)), opts.up, opts.down)
	err = cluster.RunWorker(ctx, cluster.WorkerConfig{
		UpAddr:   opts.up,
		DownAddr: opts.down,
		Concentrator: cluster.ConcentratorConfig{
			Name:         name,
			SessionID:    opts.session,
			Members:      topo.MemberLoads(opts.shard),
			RoundTimeout: serveRoundTimeout / 2,
		},
	})
	if err != nil && ctx.Err() != nil {
		fmt.Printf("gridd: %s interrupted\n", name)
		return nil
	}
	if err == nil {
		fmt.Printf("gridd: %s relayed session end, shutting down\n", name)
	}
	return err
}

// serveRoundTimeout is the UA's round timeout; concentrators must answer
// upward well inside it, so their own shard timeout is half of it. Worker
// processes share the constant through runConcentrator.
const serveRoundTimeout = 5 * time.Second

// serveConfig parameterises one negotiation daemon.
type serveConfig struct {
	addr        string // member-tier listen address
	rootAddr    string // non-empty: concentrators are separate worker processes dialing in here
	metricsAddr string // non-empty: HTTP /healthz and /metrics
	obsAddr     string // non-empty: fleet observability hub; /fleet/* served on metricsAddr
	customers   int
	shards      int
	timeout     time.Duration
	dataDir     string // non-empty: journal the session outcome (or its abort)
	replAddr    string // non-empty: stream the journal to hot standbys (requires dataDir)
	pprof       bool   // mount /debug/pprof/ on the metrics endpoint
	history     historyOptions

	// linger, when non-nil, keeps the HTTP and obs endpoints up after the
	// session completes until the channel closes (or ctx is cancelled) —
	// how tests and drills scrape the merged fleet view of a one-shot
	// negotiation after every process has flushed its final spans.
	linger <-chan struct{}
}

// serveAddrs reports the daemon's bound addresses to tests using ":0".
type serveAddrs struct {
	member  string
	root    string
	metrics string
	obs     string
}

// serve hosts the UA, bridges remote customers onto a local bus and
// negotiates once. The optional ready channel receives the bound addresses
// (used by tests binding to :0). With shards > 1 it interposes that many
// Concentrator Agents between the Utility Agent and the TCP-bridged fleet:
// the UA negotiates with the concentrators on a private root bus, while each
// concentrator fans out to its shard of remote customers over the shared
// bridged bus by targeted send. With rootAddr set the root bus is itself a
// TCP server and the concentrators are separate gridd worker processes that
// dial in before the negotiation starts. Cancelling ctx aborts cleanly at
// any phase.
func serve(ctx context.Context, cfg serveConfig, ready chan<- serveAddrs) error {
	var journal *store.Store
	if cfg.dataDir != "" {
		var err error
		journal, _, err = store.Open(cfg.dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	// One-shot daemons stream their journal too: a standby tailing the
	// session outcome is what lets a replica answer /awards after this
	// process is gone.
	var sender *replica.Sender
	if cfg.replAddr != "" {
		if journal == nil {
			return fmt.Errorf("replAddr streams the journal and requires dataDir")
		}
		var err error
		sender, err = replica.StartSender(replica.SenderConfig{Dir: cfg.dataDir, Addr: cfg.replAddr})
		if err != nil {
			return err
		}
		defer func() {
			// Let connected standbys receive the outcome (and the seal, so
			// they shut down cleanly) before the stream drops.
			_ = sender.WaitDrain(journal.Stats().LastSeq, 5*time.Second)
			sender.Close()
		}()
		if err := writeReplAddrFile(cfg.dataDir, sender.Addr()); err != nil {
			return err
		}
		fmt.Printf("gridd: replicating the journal to standbys on %s\n", sender.Addr())
	}
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return err
	}
	defer inner.Close()
	srv, err := bus.ListenAndServe(cfg.addr, inner)
	if err != nil {
		return err
	}
	defer srv.Close()

	var addrs serveAddrs
	addrs.member = srv.Addr()

	// Distributed root tier: a second TCP server the worker concentrators
	// dial into.
	var rootInner *bus.InProc
	var rootSrv *bus.Server
	if cfg.rootAddr != "" {
		rootInner, err = bus.NewInProc(bus.Config{})
		if err != nil {
			return err
		}
		defer rootInner.Close()
		rootSrv, err = bus.ListenAndServe(cfg.rootAddr, rootInner)
		if err != nil {
			return err
		}
		defer rootSrv.Close()
		addrs.root = rootSrv.Addr()
	}

	// Fleet observability hub: workers (and any standby tailing this
	// daemon's journal) stream their metric/log/span state here; the
	// metrics mux below serves the merged /fleet view.
	var hub *obsplane.Hub
	if cfg.obsAddr != "" {
		hub, err = obsplane.StartHub(obsplane.HubConfig{Addr: cfg.obsAddr, History: newHistoryStore(cfg.history)})
		if err != nil {
			return err
		}
		defer hub.Close()
		addrs.obs = hub.Addr()
		if cfg.dataDir != "" {
			if err := writeObsAddrFile(cfg.dataDir, hub.Addr()); err != nil {
				return err
			}
		}
		fmt.Printf("gridd: fleet observability hub on %s\n", hub.Addr())
	}

	// Transport observability: /healthz and /metrics with the wire counters
	// of every server this daemon runs.
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return err
		}
		addrs.metrics = ln.Addr().String()
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			doc := map[string]any{"status": "ok", "role": "primary", "customers": len(customerAgents(inner.Agents()))}
			if journal != nil {
				stats := journal.Stats()
				doc["lastAppliedSeq"] = stats.LastSeq
				doc["lastAppliedAge"] = appliedAge(stats.LastAppend)
			}
			_ = json.NewEncoder(w).Encode(doc)
		})
		history := newHistoryStore(cfg.history)
		writeServeMetrics := func(w io.Writer) {
			transports := map[string]bus.WireStats{"member": srv.WireStats()}
			if rootSrv != nil {
				transports["root"] = rootSrv.WireStats()
			}
			if hub != nil {
				transports["obs"] = hub.WireStats()
			}
			telemetry.WriteWireMetrics(w, transports)
			if sender != nil {
				replica.WriteSenderMetrics(w, sender.Status())
			}
			health.WriteLogMetrics(w, health.Default())
			trace.WriteMetrics(w)
			if history != nil {
				history.WriteMetrics(w)
			}
		}
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeServeMetrics(w)
		})
		mux.HandleFunc("/logs", health.LogHandler(health.Default()))
		if hub != nil {
			hub.Mount(mux)
		}
		mountQuery(mux, history)
		defer closeScraper(startHistoryScraper(cfg.history, history, writeServeMetrics))
		mountObservability(mux, cfg.pprof)
		httpSrv := &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutdownCtx)
		}()
	}

	if ready != nil {
		ready <- addrs
	}
	const session = "gridd"
	fmt.Printf("gridd: listening on %s, waiting for %d customers\n", srv.Addr(), cfg.customers)

	// Wait for the fleet to dial in. Worker concentrators register their
	// cc-NNN names on this same bridged bus (their downward connection), so
	// only non-concentrator names count toward — and model — the fleet.
	deadline := time.Now().Add(cfg.timeout)
	for len(customerAgents(inner.Agents())) < cfg.customers {
		if err := ctx.Err(); err != nil {
			fmt.Println("gridd: interrupted while waiting for customers")
			return abortServe(journal, session, "interrupted before negotiation", inner)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d customers connected", len(customerAgents(inner.Agents())), cfg.customers)
		}
		time.Sleep(50 * time.Millisecond)
	}
	names := customerAgents(inner.Agents())
	fmt.Printf("gridd: customers connected: %v\n", names)
	if cfg.rootAddr != "" {
		// Workers derive their shard membership from the c01..cNN naming
		// convention; a fleet dialed in under other names would negotiate
		// against nonexistent members. Fail fast instead of timing out.
		expected := fleetNames(cfg.customers)
		for i, n := range names {
			if i >= len(expected) || n != expected[i] {
				return fmt.Errorf("distributed mode requires customers named c01..c%02d (the workers' membership convention); got %v", cfg.customers, names)
			}
		}
	}

	loads := fleetLoads(names)
	totalPredicted := units.Energy(13.5 * float64(len(names)))

	params := core.PaperParams()
	uaBus := bus.Bus(inner)
	uaLoads := loads
	var parent *bus.InProc
	switch {
	case rootInner != nil:
		// Worker concentrators: wait until every shard's worker has dialed
		// the root tier, then negotiate with them over TCP.
		topo, err := cluster.NewTopology(loads, cfg.shards)
		if err != nil {
			return err
		}
		fmt.Printf("gridd: root tier on %s, waiting for %d concentrator workers\n", rootSrv.Addr(), cfg.shards)
		for len(rootInner.Agents()) < cfg.shards {
			if err := ctx.Err(); err != nil {
				fmt.Println("gridd: interrupted while waiting for concentrators")
				return abortServe(journal, session, "interrupted before negotiation", inner, rootInner)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("only %d of %d concentrators connected", len(rootInner.Agents()), cfg.shards)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("gridd: concentrators connected: %v\n", rootInner.Agents())
		params = cluster.RootParams(params)
		uaBus = rootInner
		uaLoads = topo.AggregateLoads()
	case cfg.shards > 1:
		// In-process tier: the UA talks to concentrators on a private bus;
		// the concentrators reach their remote shards over the bridged bus.
		var err error
		parent, err = bus.NewInProc(bus.Config{})
		if err != nil {
			return err
		}
		defer parent.Close()
		topo, err := cluster.NewTopology(loads, cfg.shards)
		if err != nil {
			return err
		}
		tier, err := cluster.StartTier(parent, func(int) bus.Bus { return inner }, topo, cluster.TierConfig{
			SessionID:    session,
			RoundTimeout: serveRoundTimeout / 2,
			InboxSize:    4 * cfg.customers,
		})
		if err != nil {
			return err
		}
		defer tier.Stop()
		params = cluster.RootParams(params)
		uaBus = parent
		uaLoads = topo.AggregateLoads()
		fmt.Printf("gridd: fronting the fleet with %d concentrators\n", topo.Shards())
	}

	ua, err := utilityagent.New(utilityagent.Config{
		SessionID: session,
		Window:    windowNow(),
		// Capacity set for the paper's 35% initial overuse.
		NormalUse:    totalPredicted.Scale(1 / 1.35),
		Loads:        uaLoads,
		Method:       utilityagent.MethodRewardTable,
		Params:       params,
		InitialSlope: 42.5,
		RoundTimeout: serveRoundTimeout,
	})
	if err != nil {
		return err
	}
	rt, err := agentrt.Start("ua", uaBus, ua, 4*cfg.customers)
	if err != nil {
		return err
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		// Give the per-connection writers a moment to flush the awards and
		// the session-end broadcast before the deferred teardown cuts the
		// TCP connections.
		time.Sleep(300 * time.Millisecond)
		stats := inner.Stats()
		if parent != nil || rootInner != nil {
			// Count both tiers, so flat and sharded runs compare fairly.
			var p bus.Stats
			if parent != nil {
				p = parent.Stats()
			} else {
				p = rootInner.Stats()
			}
			stats.Sent += p.Sent
			stats.Delivered += p.Delivered
			stats.Dropped += p.Dropped
			stats.Rejected += p.Rejected
			fmt.Printf("note: awards below are per-concentrator aggregates; each customer's own award was delivered to its process\n")
		}
		full := &core.Result{Result: res, Bus: stats}
		fmt.Print(sim.RenderResult(full))
		ws := srv.WireStats()
		fmt.Printf("wire: member tier %d frames in / %d out, %d dropped, %d rejected\n",
			ws.FramesIn, ws.FramesOut, ws.Dropped, ws.Rejected)
		if rootSrv != nil {
			rs := rootSrv.WireStats()
			fmt.Printf("wire: root tier %d frames in / %d out, %d dropped, %d rejected\n",
				rs.FramesIn, rs.FramesOut, rs.Dropped, rs.Rejected)
		}
		if journal != nil {
			if err := journalServeOutcome(journal, session, res); err != nil {
				return err
			}
		}
		if cfg.linger != nil {
			select {
			case <-cfg.linger:
			case <-ctx.Done():
			}
		}
		return nil
	case <-ctx.Done():
		// Drain before teardown: the fleet (and any worker concentrators)
		// get an aborting session end so no client hangs on a dead TCP
		// connection, and the journal records the session as aborted so
		// recovery never replays it as half-committed.
		fmt.Println("gridd: interrupted, draining in-flight session")
		drained := []bus.Bus{inner}
		if rootInner != nil {
			drained = append(drained, rootInner)
		}
		return abortServe(journal, session, "interrupted", drained...)
	case <-time.After(cfg.timeout):
		return fmt.Errorf("negotiation timed out after %v", cfg.timeout)
	}
}

// abortServe broadcasts an aborting session end on each bus, waits for the
// per-connection writers to flush it, and journals the abort.
func abortServe(journal *store.Store, session, reason string, buses ...bus.Bus) error {
	for _, b := range buses {
		env, err := message.NewEnvelope("ua", "", session, message.SessionEnd{Round: 0, Reason: "aborted: " + reason})
		if err == nil {
			_ = b.Send(env)
		}
	}
	// Give the per-connection writers a moment to flush the broadcast
	// before the deferred teardown cuts the TCP connections.
	time.Sleep(300 * time.Millisecond)
	if journal == nil {
		return nil
	}
	rec, err := store.NewAbortRecord(store.AbortInfo{SessionID: session, Reason: reason})
	if err != nil {
		return err
	}
	if err := journal.Append(rec); err != nil {
		return err
	}
	return journal.Sync()
}

// journalServeOutcome records the daemon's one-shot negotiation outcome and
// seals the journal (the daemon exits after one session).
func journalServeOutcome(journal *store.Store, session string, res utilityagent.Result) error {
	out := store.SessionOutcome{
		SessionID: session,
		Outcome:   res.Outcome,
		Rounds:    res.Rounds,
		Bids:      make(map[string]float64, len(res.Awards)),
		Awards:    make(map[string]store.AwardEntry, len(res.Awards)),
	}
	for _, a := range res.Awards {
		out.Bids[a.Customer] = a.Award.CutDown
		out.Awards[a.Customer] = store.AwardEntry{CutDown: a.Award.CutDown, Reward: a.Award.Reward}
	}
	rec, err := store.NewSessionRecord(out)
	if err != nil {
		return err
	}
	if err := journal.Append(rec); err != nil {
		return err
	}
	return journal.Seal()
}

// liveOptions parameterises one live grid daemon.
type liveOptions struct {
	addr          string
	customers     int
	shards        int
	tick          time.Duration
	maxTicks      int // stop once the grid's tick counter reaches this; 0 = run until cancelled
	seed          int64
	dataDir       string // non-empty: durable operation with crash recovery
	snapshotEvery int
	spikeShards   []int
	spikeTick     int // -1 = no spike
	spikeFactor   float64
	spikeEndTick  int // 0 = the spike never ends

	// Health layer.
	feedbackAddr   string // non-empty: TCP feedback responder (lbfeedback contract)
	alerts         string // -alerts flag value ("" = defaults, "none" = off)
	flightrecKeep  int
	profileOnAlert bool // add heap + 2s CPU profiles to alert bundles

	// Metrics history: the embedded tsdb behind /query and windowed rules.
	history historyOptions

	// Replication (requires dataDir).
	replAddr        string   // non-empty: stream the journal to standbys here
	replicaOf       []string // non-empty: run as a hot standby following this dial list
	replicaID       string
	peers           []string
	failoverTimeout time.Duration

	// Fleet observability (the tentpole): host the obs hub here and serve
	// the /fleet endpoints on the live HTTP address.
	obsAddr string        // non-empty: accept obs streams from the fleet on this address
	obsHub  *obsplane.Hub // set internally once the hub is up

	pprof bool // mount /debug/pprof/ on the live endpoint
}

// liveConfig derives the engine configuration. It must be identical on
// every start against the same data dir — recovery validates it against the
// journal's scenario registration.
func (o liveOptions) liveConfig() (telemetry.LiveConfig, error) {
	s, err := telemetry.ElasticFleetScenario(o.customers, o.seed)
	if err != nil {
		return telemetry.LiveConfig{}, err
	}
	cfg := telemetry.LiveConfig{
		Scenario: s,
		Shards:   o.shards,
		Jitter:   0.02,
		Seed:     o.seed,
	}
	if o.spikeTick >= 0 && len(o.spikeShards) > 0 {
		end := 1 << 30
		if o.spikeEndTick > 0 {
			end = o.spikeEndTick
		}
		cfg.ShardEvents = make(map[int][]telemetry.Event, len(o.spikeShards))
		for _, i := range o.spikeShards {
			cfg.ShardEvents[i] = []telemetry.Event{{StartTick: o.spikeTick, EndTick: end, Factor: o.spikeFactor}}
		}
	}
	return cfg, nil
}

// gridState is what the live HTTP endpoints serve, shared between the tick
// loop (or the replication receiver) and the handlers, and swapped in place
// when a standby promotes — the HTTP server itself survives the role change.
type gridState struct {
	mu       sync.Mutex
	role     string // "primary" | "standby"
	start    time.Time
	snap     telemetry.Snapshot
	profile  []byte
	recovery *telemetry.RecoveryInfo
	st       *store.Store     // primary journal (nil when volatile)
	sender   *replica.Sender  // non-nil when streaming to standbys
	stby     *replica.Standby // non-nil while role == standby
	health   *liveHealth      // set once before the HTTP server starts
	obs      *obsplane.Hub    // non-nil when this daemon hosts the fleet obs hub
}

// view reads the endpoint-visible state in one consistent snapshot. A
// standby's snapshot and profile come from the replica engine on demand (the
// receiver applies records between HTTP requests, not between ticks).
func (g *gridState) view() (role string, snap telemetry.Snapshot, profile []byte, stby *replica.Standby, sender *replica.Sender) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stby != nil {
		return g.role, g.stby.Eng.ReplicaSnapshot(), nil, g.stby, g.sender
	}
	return g.role, g.snap, g.profile, nil, g.sender
}

// publish stores a tick's outcome for the handlers.
func (g *gridState) publish(snap telemetry.Snapshot, profile []byte) {
	g.mu.Lock()
	g.snap, g.profile = snap, profile
	g.mu.Unlock()
}

// promote swaps the state holder from standby to serving primary.
func (g *gridState) promote(st *store.Store, sender *replica.Sender, snap telemetry.Snapshot, profile []byte) {
	g.mu.Lock()
	g.role, g.stby = "primary", nil
	g.st, g.sender = st, sender
	g.snap, g.profile = snap, profile
	g.mu.Unlock()
}

// healthDoc renders the /healthz body: role, recovery state, replication
// state and the last applied/committed journal position — the operator
// contract an external health checker (or a failover drill) consumes.
func (g *gridState) healthDoc() map[string]any {
	role, snap, _, stby, sender := g.view()
	g.mu.Lock()
	rec := g.recovery
	st := g.st
	start := g.start
	g.mu.Unlock()
	doc := map[string]any{
		"status":         "ok",
		"role":           role,
		"tick":           snap.Tick,
		"uptimeSeconds":  time.Since(start).Seconds(),
		"renegotiations": snap.Renegotiations,
	}
	if h := g.health; h != nil {
		sc := h.scorer.Latest()
		doc["feedbackScore"] = sc.Value
		doc["feedbackComponents"] = sc.Components
		doc["alertsFiring"] = h.alerts.FiringCount()
	}
	if rec != nil {
		doc["recovery"] = map[string]any{
			"recovered":  rec.Recovered,
			"cleanStart": rec.CleanStart,
			"resumeTick": rec.ResumeTick,
			"replayed":   rec.Replayed,
		}
	}
	switch {
	case stby != nil:
		rst := stby.Receiver().Status()
		doc["lastAppliedSeq"] = stby.Eng.LastSeq()
		doc["lastAppliedAge"] = appliedAge(rst.LastApplied)
		doc["replication"] = map[string]any{
			"id":         rst.ID,
			"sourceUp":   rst.Connected,
			"sourceAddr": rst.Addr,
			"appliedSeq": rst.AppliedSeq,
			"promotable": stby.Promotable(),
			"peers":      stby.PeerList(),
		}
	case st != nil:
		stats := st.Stats()
		doc["lastAppliedSeq"] = stats.LastSeq
		doc["lastAppliedAge"] = appliedAge(stats.LastAppend)
		if sender != nil {
			sst := sender.Status()
			doc["replication"] = map[string]any{
				"addr":     sst.Addr,
				"standbys": len(sst.Standbys),
			}
		}
	}
	return doc
}

// appliedAge renders a last-applied wall time as seconds of staleness for
// /healthz; -1 means nothing has been applied (or committed) yet.
func appliedAge(t time.Time) float64 {
	if t.IsZero() {
		return -1
	}
	return time.Since(t).Seconds()
}

// liveMux builds the live daemon's HTTP surface over the state holder.
func liveMux(state *gridState, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(state.healthDoc())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeLiveMetrics(w, state, state.health)
	})
	mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		role, _, _, stby, sender := state.view()
		doc := map[string]any{"role": role}
		if stby != nil {
			doc["receiver"] = stby.Receiver().Status()
			doc["promotable"] = stby.Promotable()
			doc["peers"] = stby.PeerList()
		}
		if sender != nil {
			doc["sender"] = sender.Status()
		}
		_ = json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("/awards", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _, profile, stby, _ := state.view()
		if stby != nil {
			// Read replica: the profile is computed from the replica state
			// at request time.
			p, err := json.Marshal(stby.Eng.Profile())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(p)
			return
		}
		_, _ = w.Write(profile)
	})
	if h := state.health; h != nil {
		mux.HandleFunc("/logs", health.LogHandler(h.logger))
		mux.HandleFunc("/alerts", health.AlertsHandler(h.alerts))
		mux.HandleFunc("/feedback", health.FeedbackHandler(h.scorer))
		mountQuery(mux, h.history)
	}
	if state.obs != nil {
		state.obs.Mount(mux)
	}
	mountObservability(mux, pprofOn)
	return mux
}

// startLiveHTTP binds the live daemon's endpoint address.
func startLiveHTTP(addr string, state *gridState, pprofOn bool) (net.Listener, *http.Server, chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	httpSrv := &http.Server{Handler: liveMux(state, pprofOn)}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	return ln, httpSrv, httpErr, nil
}

// runLive operates the grid continuously: an in-process elastic fleet is
// negotiated once through the concentrator tier, then metered every tick
// with incremental re-negotiation on drift. addr answers HTTP /healthz,
// /metrics, /replication and /awards (lbfeedback-style: the live
// load/deviation state a balancer or scraper consumes). maxTicks 0 runs
// until ctx is cancelled.
//
// With a data dir the run is durable: every decision is journaled, restarts
// recover mid-flight (the tick counter continues where the journal ends),
// graceful exits seal the journal, and the canonical grid profile lands in
// <data-dir>/awards.json on exit.
//
// With -repl-addr the journal streams to hot standbys; with -replica-of the
// daemon IS a hot standby: it serves its replica state read-only and
// promotes itself into this same live loop when the primary goes silent (if
// it holds the lowest id among -peers).
func runLive(ctx context.Context, opts liveOptions, ready chan<- string) error {
	if opts.tick <= 0 {
		return fmt.Errorf("-tick must be positive")
	}
	cfg, err := opts.liveConfig()
	if err != nil {
		return err
	}
	if opts.obsAddr != "" {
		hub, err := obsplane.StartHub(obsplane.HubConfig{Addr: opts.obsAddr, History: newHistoryStore(opts.history)})
		if err != nil {
			return err
		}
		defer hub.Close()
		opts.obsHub = hub
		if opts.dataDir != "" {
			if err := writeObsAddrFile(opts.dataDir, hub.Addr()); err != nil {
				return err
			}
		}
		fmt.Printf("gridd: fleet observability hub on %s\n", hub.Addr())
	}
	if len(opts.replicaOf) > 0 {
		return runStandby(ctx, opts, cfg, ready)
	}

	state := &gridState{role: "primary", start: time.Now(), obs: opts.obsHub}
	var eng *telemetry.LiveEngine
	if opts.dataDir != "" {
		var info *telemetry.RecoveryInfo
		eng, info, err = telemetry.OpenDurable(cfg, telemetry.DurableConfig{
			Dir:           opts.dataDir,
			SnapshotEvery: opts.snapshotEvery,
		})
		if err != nil {
			return err
		}
		state.recovery = info
		if info.Recovered {
			how := "crash"
			if info.CleanStart {
				how = "sealed journal"
			}
			fmt.Printf("gridd: recovered from %s in %v (snapshot seq %d + %d records), resuming at tick %d\n",
				how, info.Elapsed.Round(time.Millisecond), info.SnapshotSeq, info.Replayed, info.ResumeTick)
		}
	} else {
		eng, err = telemetry.NewLiveEngine(cfg)
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
	}
	state.st = eng.Store() // stable handle for the handlers; nil when volatile

	h, err := newLiveHealth(ctx, opts, state)
	if err != nil {
		_ = eng.Shutdown()
		return err
	}
	defer h.close()
	state.health = h

	if opts.replAddr != "" {
		sender, err := replica.StartSender(replica.SenderConfig{Dir: opts.dataDir, Addr: opts.replAddr})
		if err != nil {
			_ = eng.Shutdown()
			return err
		}
		state.sender = sender
		if err := writeReplAddrFile(opts.dataDir, sender.Addr()); err != nil {
			sender.Close()
			_ = eng.Shutdown()
			return err
		}
		fmt.Printf("gridd: replicating the journal to standbys on %s\n", sender.Addr())
	}

	profile, err := json.Marshal(eng.Profile())
	if err != nil {
		_ = eng.Shutdown()
		return err
	}
	state.publish(eng.Snapshot(), profile)

	ln, httpSrv, httpErr, err := startLiveHTTP(opts.addr, state, opts.pprof)
	if err != nil {
		if state.sender != nil {
			state.sender.Close()
		}
		_ = eng.Shutdown()
		return err
	}
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Printf("gridd: live grid of %d customers in %d shards; /healthz, /metrics, /replication and /awards on %s\n",
		opts.customers, opts.shards, ln.Addr())
	return tickLoop(ctx, eng, opts, state, httpErr)
}

// tickLoop is the serving primary's main loop — entered at start by a
// primary daemon and after promotion by a standby.
func tickLoop(ctx context.Context, eng *telemetry.LiveEngine, opts liveOptions, state *gridState, httpErr <-chan error) error {
	st := eng.Store()
	shutdown := func() error {
		err := eng.Shutdown()
		if state.sender != nil {
			// The seal is in the journal; give the standbys a moment to
			// apply it so they follow the primary down instead of promoting
			// over a clean exit.
			if st != nil {
				state.sender.WaitDrain(st.Stats().LastSeq, 2*time.Second)
			}
			state.sender.Close()
		}
		if opts.dataDir == "" {
			return err
		}
		if werr := writeAwardsFile(opts.dataDir, eng); werr != nil && err == nil {
			err = werr
		}
		return err
	}

	// A recovered (or just-promoted) run may already be at the tick target.
	if done, ok := liveDone(eng.Snapshot().Tick, opts.maxTicks); ok {
		fmt.Println(done)
		return shutdown()
	}
	ticker := time.NewTicker(opts.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// The select only fires between ticks, so any in-flight tick —
			// including its incremental re-negotiation — has fully
			// committed; sealing the journal is all that remains.
			fmt.Println("gridd: interrupted, live grid sealing journal and shutting down")
			return shutdown()
		case err := <-httpErr:
			_ = shutdown()
			if err != nil && err != http.ErrServerClosed {
				return err
			}
			return nil
		case <-ticker.C:
			rep, err := eng.Tick()
			if err != nil {
				health.CrashDump("tick-error", err.Error())
				_ = shutdown()
				return err
			}
			if rep.Renegotiated != nil {
				fmt.Printf("gridd: tick %d: shards %v re-negotiated (%s, %d members)\n",
					rep.Tick, rep.Renegotiated.Shards, rep.Renegotiated.Outcome, rep.Renegotiated.Members)
				logRenegotiation(rep)
			}
			p, err := json.Marshal(eng.Profile())
			if err != nil {
				_ = shutdown()
				return err
			}
			state.publish(eng.Snapshot(), p)
			state.health.evalTick()
			if done, ok := liveDone(rep.Tick+1, opts.maxTicks); ok {
				fmt.Println(done)
				return shutdown()
			}
		}
	}
}

// runStandby runs the daemon as a hot standby: the replica state is served
// read-only on the HTTP endpoints while the receiver applies the primary's
// stream; on primary silence the lowest-id standby promotes in place and
// continues the run as the serving primary.
func runStandby(ctx context.Context, opts liveOptions, cfg telemetry.LiveConfig, ready chan<- string) error {
	state := &gridState{role: "standby", start: time.Now(), obs: opts.obsHub}
	stby, info, err := replica.StartStandby(replica.StandbyConfig{
		ID:              opts.replicaID,
		Peers:           opts.peers,
		PrimaryAddrs:    opts.replicaOf,
		Live:            cfg,
		Durable:         telemetry.DurableConfig{Dir: opts.dataDir, SnapshotEvery: opts.snapshotEvery},
		FailoverTimeout: opts.failoverTimeout,
	})
	if err != nil {
		return err
	}
	state.stby = stby
	state.recovery = info
	if info.Recovered {
		fmt.Printf("gridd: standby %s resuming replication from local seq %d (tick %d)\n",
			opts.replicaID, stby.Eng.LastSeq(), info.ResumeTick)
	}

	h, err := newLiveHealth(ctx, opts, state)
	if err != nil {
		_ = stby.Close()
		return err
	}
	defer h.close()
	state.health = h
	stopEval := h.startStandbyEval(opts.tick)
	defer stopEval()

	ln, httpSrv, httpErr, err := startLiveHTTP(opts.addr, state, opts.pprof)
	if err != nil {
		_ = stby.Close()
		return err
	}
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Printf("gridd: hot standby %s following %v; read-only /healthz, /metrics, /replication and /awards on %s\n",
		opts.replicaID, opts.replicaOf, ln.Addr())

	type result struct {
		outcome replica.Outcome
		err     error
	}
	resCh := make(chan result, 1)
	go func() {
		o, err := stby.Run(ctx)
		resCh <- result{o, err}
	}()
	var res result
	select {
	case res = <-resCh:
	case err := <-httpErr:
		_ = stby.Close()
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	switch {
	case res.err != nil:
		_ = stby.Close()
		if ctx.Err() != nil {
			fmt.Printf("gridd: standby %s interrupted\n", opts.replicaID)
			return nil
		}
		health.CrashDump("standby-error", res.err.Error())
		return res.err
	case res.outcome.CleanShutdown:
		fmt.Printf("gridd: primary sealed its journal; standby %s shutting down cleanly\n", opts.replicaID)
		return stby.Close()
	}

	// Promoted: continue the run as the serving primary on the same HTTP
	// address. The availability gap is detect + promote; the tick loop takes
	// over health evaluation from the standby ticker.
	stopEval()
	eng := res.outcome.Engine
	pinfo := res.outcome.Promotion
	fmt.Printf("gridd: standby %s promoted to primary at journal seq %d (detect %v + promote %v), resuming at tick %d\n",
		opts.replicaID, pinfo.FromSeq,
		res.outcome.DetectLatency.Round(time.Millisecond), pinfo.Elapsed.Round(time.Millisecond),
		pinfo.ResumeTick)
	health.Log(health.Warn, "replica", "standby promoted to primary",
		health.Str("id", opts.replicaID),
		health.Int("fromSeq", int64(pinfo.FromSeq)),
		health.Int("resumeTick", int64(pinfo.ResumeTick)))
	var sender *replica.Sender
	if opts.replAddr != "" {
		sender, err = replica.StartSender(replica.SenderConfig{Dir: opts.dataDir, Addr: opts.replAddr})
		if err != nil {
			_ = eng.Shutdown()
			return err
		}
		if err := writeReplAddrFile(opts.dataDir, sender.Addr()); err != nil {
			sender.Close()
			_ = eng.Shutdown()
			return err
		}
		fmt.Printf("gridd: promoted primary replicating to standbys on %s\n", sender.Addr())
	}
	profile, err := json.Marshal(eng.Profile())
	if err != nil {
		_ = eng.Shutdown()
		return err
	}
	state.promote(eng.Store(), sender, eng.Snapshot(), profile)
	return tickLoop(ctx, eng, opts, state, httpErr)
}

// writeReplAddrFile publishes the replication listener's bound address as
// <dir>/repl-addr (atomically), so operators and tests using ":0" can find
// it.
func writeReplAddrFile(dir, addr string) error {
	return atomicWriteFile(dir, "repl-addr", []byte(addr))
}

// writeObsAddrFile publishes the fleet obs hub's bound address as
// <dir>/obs-addr, the same contract as repl-addr: workers started with ":0"
// hubs read it to find their -obs target.
func writeObsAddrFile(dir, addr string) error {
	return atomicWriteFile(dir, "obs-addr", []byte(addr))
}

// atomicWriteFile publishes <dir>/<name> via temp file + rename, so a
// reader can never observe a partial write.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, filepath.Join(dir, name))
}

// liveDone reports whether the grid reached its tick target.
func liveDone(tick, maxTicks int) (string, bool) {
	if maxTicks > 0 && tick >= maxTicks {
		return fmt.Sprintf("gridd: live grid reached tick %d", tick), true
	}
	return "", false
}

// writeAwardsFile atomically publishes the engine's canonical profile as
// <dir>/awards.json. Call it after the engine has stopped ticking.
func writeAwardsFile(dir string, eng *telemetry.LiveEngine) error {
	data, err := json.Marshal(eng.Profile())
	if err != nil {
		return err
	}
	return atomicWriteFile(dir, "awards.json", data)
}

// writeMetrics renders a snapshot in Prometheus text exposition format. Every
// family carries its # TYPE line, the per-shard series included, so a strict
// exposition parser ingests the whole page.
func writeMetrics(w io.Writer, snap telemetry.Snapshot) {
	fmt.Fprintf(w, "# TYPE grid_tick counter\ngrid_tick %d\n", snap.Tick)
	fmt.Fprintf(w, "# TYPE grid_readings_total counter\ngrid_readings_total %d\n", snap.Readings)
	fmt.Fprintf(w, "# TYPE grid_renegotiations_total counter\ngrid_renegotiations_total %d\n", snap.Renegotiations)
	fmt.Fprintf(w, "# TYPE grid_fleet_load_kwh gauge\ngrid_fleet_load_kwh %g\n", snap.FleetKWh)
	fmt.Fprintf(w, "# TYPE grid_fleet_target_kwh gauge\ngrid_fleet_target_kwh %g\n", snap.TargetKWh)
	fmt.Fprintf(w, "# TYPE grid_shard_load_kwh gauge\n")
	for i := range snap.ShardMeasured {
		fmt.Fprintf(w, "grid_shard_load_kwh{shard=\"%d\"} %g\n", i, snap.ShardMeasured[i])
	}
	fmt.Fprintf(w, "# TYPE grid_shard_expected_kwh gauge\n")
	for i := range snap.ShardMeasured {
		fmt.Fprintf(w, "grid_shard_expected_kwh{shard=\"%d\"} %g\n", i, snap.ShardExpected[i])
	}
	fmt.Fprintf(w, "# TYPE grid_shard_breached gauge\n")
	for i := range snap.ShardMeasured {
		breached := 0
		if snap.ShardBreached[i] {
			breached = 1
		}
		fmt.Fprintf(w, "grid_shard_breached{shard=\"%d\"} %d\n", i, breached)
	}
	fmt.Fprintf(w, "# TYPE grid_shard_renegotiations_total counter\n")
	for i := range snap.ShardMeasured {
		fmt.Fprintf(w, "grid_shard_renegotiations_total{shard=\"%d\"} %d\n", i, snap.ShardRenegotiations[i])
	}
}

// runClient joins as one Customer Agent and reacts until the session ends
// or ctx is cancelled. addr may be a comma-separated dial list (the primary
// grid head first, standbys after it); the connection re-dials through the
// list and resumes if the serving head dies mid-session.
func runClient(ctx context.Context, addr, name string, seed int64) error {
	cli, err := bus.DialReconnecting(bus.SplitAddrList(addr), name, bus.ReconnConfig{})
	if err != nil {
		return err
	}
	defer cli.Close()

	// A cancelled context closes the connection, which unblocks the inbox
	// loop below; done stops this watcher on normal return.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			cli.Close()
		case <-done:
		}
	}()

	prefs, err := clientPreferences(seed)
	if err != nil {
		return err
	}
	ca, err := customeragent.New(name, prefs, customeragent.StrategyGreedy)
	if err != nil {
		return err
	}
	fmt.Printf("gridd: %s connected to %s\n", name, addr)

	for env := range cli.Inbox() {
		reply, ok, err := ca.React(env)
		if err != nil {
			// The Warn-level stderr mirror keeps this visible on a client's
			// console while the ring records it with identity fields.
			health.Log(health.Warn, "client", "react failed",
				health.Str("agent", name), health.Str("session", env.Session),
				health.Str("err", err.Error()))
			continue
		}
		if ok {
			out, err := message.NewEnvelope(name, env.From, env.Session, reply)
			if err != nil {
				return err
			}
			if err := cli.Send(out); err != nil {
				return err
			}
		}
		if env.Kind == message.KindSessionEnd {
			if award, got := ca.AwardFor(env.Session); got {
				fmt.Printf("gridd: %s awarded cut-down %.1f for reward %.2f\n",
					name, award.CutDown, award.Reward)
			} else {
				fmt.Printf("gridd: %s: session ended without award\n", name)
			}
			return nil
		}
	}
	if ctx.Err() != nil {
		fmt.Printf("gridd: %s interrupted\n", name)
		return nil
	}
	return fmt.Errorf("connection closed before session end")
}

// clientPreferences derives a deterministic preference table from the seed:
// the paper customer's table scaled by a seed-dependent factor in [0.8, 1.6].
func clientPreferences(seed int64) (customeragent.Preferences, error) {
	return core.ScaledPaperPreferences(0.8 + float64(seed%9)/10)
}

// windowNow returns a 2-hour negotiation window starting one hour from now.
func windowNow() units.Interval {
	start := time.Now().Add(time.Hour).Truncate(time.Minute)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}
