// Package kb implements the knowledge representation layer of the DESIRE
// reproduction: order-sorted constants, predicates over those sorts, ground
// facts with explicit truth values, and rules evaluated by forward chaining.
//
// DESIRE (Section 4.2 of the paper) models knowledge as "information types"
// (an ontology: sorts, objects, relations) plus "knowledge bases" (rules in
// order-sorted predicate logic, normalised into if-then form). This package
// provides an executable semantics for exactly that fragment:
//
//   - an Ontology declares sorts (with sub-sort relations), typed constants
//     and predicates;
//   - a Store holds ground facts under a three-valued reading (true, false,
//     unknown = absent);
//   - Rules have a conjunctive antecedent of literals (with variables and
//     numeric guards) and a consequent of literals;
//   - Engine.Infer runs the rules to a fixpoint.
package kb

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the kinds of terms that may appear in atoms.
type TermKind int

// Term kinds. Variables may only appear inside rules, never in stored facts.
const (
	KindConst TermKind = iota + 1
	KindNumber
	KindString
	KindVar
)

// Term is a single argument of an atom: a sorted constant, a number, a
// string, or (in rules only) a variable.
type Term struct {
	Kind TermKind
	// Name holds the constant name or variable name.
	Name string
	// Num holds the value for KindNumber terms.
	Num float64
	// Str holds the value for KindString terms.
	Str string
}

// C returns a constant term. Constants are interpreted against an Ontology,
// which assigns them sorts.
func C(name string) Term { return Term{Kind: KindConst, Name: name} }

// N returns a numeric term.
func N(v float64) Term { return Term{Kind: KindNumber, Num: v} }

// S returns a string term.
func S(v string) Term { return Term{Kind: KindString, Str: v} }

// V returns a variable term; by convention variable names start with an
// upper-case letter, but this is not enforced.
func V(name string) Term { return Term{Kind: KindVar, Name: name} }

// IsGround reports whether the term contains no variable.
func (t Term) IsGround() bool { return t.Kind != KindVar }

// Equal reports structural equality of two terms.
func (t Term) Equal(o Term) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindConst, KindVar:
		return t.Name == o.Name
	case KindNumber:
		return t.Num == o.Num
	case KindString:
		return t.Str == o.Str
	default:
		return false
	}
}

// String renders the term in a readable logic syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindConst:
		return t.Name
	case KindVar:
		return "?" + t.Name
	case KindNumber:
		return strconv.FormatFloat(t.Num, 'g', -1, 64)
	case KindString:
		return strconv.Quote(t.Str)
	default:
		return "<invalid>"
	}
}

// Atom is a predicate applied to terms, e.g.
// acceptable_cutdown(customer1, 0.4).
type Atom struct {
	Pred string
	Args []Term
}

// A constructs an atom.
func A(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// IsGround reports whether every argument is ground.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(o Atom) bool {
	if a.Pred != o.Pred || len(a.Args) != len(o.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// key returns a canonical map key for a ground atom.
func (a Atom) key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		switch t.Kind {
		case KindConst:
			b.WriteString("c:")
			b.WriteString(t.Name)
		case KindNumber:
			b.WriteString("n:")
			b.WriteString(strconv.FormatFloat(t.Num, 'g', -1, 64))
		case KindString:
			b.WriteString("s:")
			b.WriteString(t.Str)
		case KindVar:
			// Callers must not key non-ground atoms; keep deterministic anyway.
			b.WriteString("v:")
			b.WriteString(t.Name)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ", "))
}

// Truth is the three-valued truth assignment DESIRE uses for information
// states: facts are explicitly true, explicitly false, or unknown (absent).
type Truth int

// Truth values. Unknown is the zero value so that map misses read naturally.
const (
	Unknown Truth = iota
	True
	False
)

// String renders the truth value.
func (tv Truth) String() string {
	switch tv {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Fact is a ground atom with an explicit truth value.
type Fact struct {
	Atom  Atom
	Truth Truth
}

// String renders the fact.
func (f Fact) String() string { return fmt.Sprintf("%s = %s", f.Atom, f.Truth) }
