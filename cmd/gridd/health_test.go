package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"loadbalance/internal/trace"
)

// startDrillGrid runs an in-process live grid with the given options and
// returns its HTTP address. The grid is cancelled (and its clean shutdown
// asserted) on test cleanup.
func startDrillGrid(t *testing.T, opts liveOptions) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	liveErr := make(chan error, 1)
	go func() { liveErr <- runLive(ctx, opts, ready) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-liveErr:
			if err != nil {
				t.Errorf("live grid returned %v, want nil on cancellation", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("live grid did not shut down on cancellation")
		}
	})
	select {
	case addr := <-ready:
		return addr
	case <-time.After(10 * time.Second):
		t.Fatal("live grid never became ready")
		return ""
	}
}

// TestEndpointContentTypes audits every HTTP endpoint's Content-Type:
// Prometheus exposition text on /metrics, JSON documents everywhere else,
// plain text on the feedback responder's HTTP mirror.
func TestEndpointContentTypes(t *testing.T) {
	addr := startDrillGrid(t, liveOptions{
		addr: "127.0.0.1:0", customers: 16, shards: 4,
		tick: 20 * time.Millisecond, seed: 1, spikeTick: -1,
		history: historyOptions{interval: 50 * time.Millisecond, retention: time.Minute},
	})

	tests := []struct {
		path string
		want string
	}{
		{"/healthz", "application/json"},
		{"/metrics", "text/plain; version=0.0.4"},
		{"/replication", "application/json"},
		{"/awards", "application/json"},
		{"/trace", "application/json"},
		{"/logs", "application/json"},
		{"/alerts", "application/json"},
		{"/feedback", "text/plain; charset=utf-8"},
		{"/query?series=feedback_score", "application/json"},
	}
	for _, tt := range tests {
		resp, err := http.Get("http://" + addr + tt.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tt.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tt.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tt.want {
			t.Errorf("GET %s: Content-Type %q, want %q", tt.path, got, tt.want)
		}
	}
}

// drillAlert mirrors one /alerts entry (the hand-rolled JSON document).
type drillAlert struct {
	Name      string  `json:"name"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	FireCount int     `json:"fireCount"`
}

// drillHealthz mirrors the /healthz fields the drill samples.
type drillHealthz struct {
	Score      float64 `json:"feedbackScore"`
	Components []struct {
		Name   string  `json:"name"`
		Raw    float64 `json:"raw"`
		Health float64 `json:"health"`
	} `json:"feedbackComponents"`
	AlertsFiring int `json:"alertsFiring"`
}

// TestOverloadDrill is the operational acceptance drill: a demand spike
// degrades the composite feedback score, the overload alert fires after its
// sustain window and writes a flight-recorder bundle, and once the spike
// ends and the grid re-negotiates, the score recovers and the alert
// resolves. Along the way the drill checks the score's utilization
// component maps load to health monotonically and that the feedback
// responder speaks the agent-check line protocol.
func TestOverloadDrill(t *testing.T) {
	trace.Disable()
	t.Cleanup(trace.Disable)
	trace.Enable("gridd-drill", 8192)

	// CI points GRIDD_DRILL_DIR at a directory it uploads as an artifact on
	// failure, so a red drill ships its flight-recorder bundles and log dump
	// with the run. Without it the drill uses a scratch dir.
	dataDir := os.Getenv("GRIDD_DRILL_DIR")
	if dataDir == "" {
		dataDir = t.TempDir()
	} else if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatalf("GRIDD_DRILL_DIR: %v", err)
	}
	addr := startDrillGrid(t, liveOptions{
		addr: "127.0.0.1:0", customers: 16, shards: 4,
		tick: 20 * time.Millisecond, seed: 3,
		dataDir:      dataDir,
		spikeShards:  []int{1, 2},
		spikeTick:    3,
		spikeEndTick: 10,
		spikeFactor:  3.0,
		feedbackAddr: "127.0.0.1:0",
		// The drill threshold sits between the healthy score (~100) and the
		// spike-degraded score (utilization health 0 caps it near 57 under
		// the default weights), so it must fire during the spike and
		// resolve after it.
		alerts:        "overload:feedback_score<80:for=2",
		flightrecKeep: 4,
	})

	// On failure, capture the daemon's /logs next to the flightrec bundles
	// while the grid is still serving (cleanups run LIFO, so this precedes
	// the shutdown registered by startDrillGrid).
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		resp, err := http.Get("http://" + addr + "/logs")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		_ = os.WriteFile(filepath.Join(dataDir, "logs-dump.json"), body, 0o644)
	})

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	overload := func() drillAlert {
		t.Helper()
		var doc struct {
			Alerts []drillAlert `json:"alerts"`
		}
		getJSON("/alerts", &doc)
		for _, a := range doc.Alerts {
			if a.Name == "overload" {
				return a
			}
		}
		t.Fatal("/alerts does not list the overload rule")
		return drillAlert{}
	}

	// Sample /healthz and /alerts until the alert has fired AND resolved.
	// Each sample contributes a (raw, health) utilization pair for the
	// monotonicity check.
	type sample struct{ raw, health float64 }
	var samples []sample
	minScore := 101.0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("drill timed out: overload=%+v minScore=%g", overload(), minScore)
		}
		var hz drillHealthz
		getJSON("/healthz", &hz)
		// Skip the window before the first score computation (no
		// components yet, score still zero-valued).
		if len(hz.Components) > 0 {
			if hz.Score < minScore {
				minScore = hz.Score
			}
			for _, c := range hz.Components {
				if c.Name == "utilization" {
					samples = append(samples, sample{c.Raw, c.Health})
				}
			}
		}
		// FireCount, not the transient state: at fast ticks the alert can
		// fire and resolve between two polls.
		if a := overload(); a.FireCount >= 1 && a.State == "ok" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	if minScore >= 80 {
		t.Fatalf("score never degraded below the alert threshold: min %g", minScore)
	}

	// The utilization component's health mapping is pure, so sorted by
	// offered load the health values must be non-increasing: more load
	// never reads as healthier.
	sort.Slice(samples, func(i, j int) bool { return samples[i].raw < samples[j].raw })
	for i := 1; i < len(samples); i++ {
		if samples[i].health > samples[i-1].health+1e-9 {
			t.Fatalf("health not monotone in load: %+v then %+v", samples[i-1], samples[i])
		}
	}

	// The firing transition must have produced a flight-recorder bundle
	// holding the slowest session's spans and the alert-firing log event.
	frDir := filepath.Join(dataDir, "flightrec")
	entries, err := os.ReadDir(frDir)
	if err != nil {
		t.Fatalf("flightrec dir: %v", err)
	}
	var bundle string
	for _, e := range entries {
		if e.IsDir() && strings.Contains(e.Name(), "-alert-") {
			bundle = filepath.Join(frDir, e.Name())
		}
	}
	if bundle == "" {
		t.Fatalf("no alert bundle under %s (entries %v)", frDir, entries)
	}
	traceData, err := os.ReadFile(filepath.Join(bundle, "trace.json"))
	if err != nil {
		t.Fatalf("bundle trace.json: %v", err)
	}
	if !strings.Contains(string(traceData), `"session.open"`) {
		t.Fatalf("bundle trace.json has no session spans:\n%.2000s", traceData)
	}
	logsData, err := os.ReadFile(filepath.Join(bundle, "logs.json"))
	if err != nil {
		t.Fatalf("bundle logs.json: %v", err)
	}
	if !strings.Contains(string(logsData), "alert firing") {
		t.Fatalf("bundle logs.json missing the alert-firing event:\n%.2000s", logsData)
	}
	var meta struct {
		Reason  string `json:"reason"`
		Slowest string `json:"slowestSession"`
	}
	metaData, _ := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err := json.Unmarshal(metaData, &meta); err != nil {
		t.Fatalf("bundle meta.json: %v", err)
	}
	if meta.Reason != "alert" || meta.Slowest == "" {
		t.Fatalf("bundle meta = %+v, want reason=alert and a slowest session", meta)
	}

	// The feedback responder published its bound address and answers the
	// agent-check line protocol: one "NN%" line, then close.
	fbAddr, err := os.ReadFile(filepath.Join(dataDir, "feedback-addr"))
	if err != nil {
		t.Fatalf("feedback-addr file: %v", err)
	}
	conn, err := net.DialTimeout("tcp", string(fbAddr), 2*time.Second)
	if err != nil {
		t.Fatalf("dial feedback responder: %v", err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read feedback line: %v", err)
	}
	if !regexp.MustCompile(`^\d{1,3}%\n$`).Match(line) {
		t.Fatalf("feedback line = %q, want NN%%\\n", line)
	}
}
