package store

// The tailing API turns a data directory into a replication log: a Tailer is
// a cursor over the journal's record frames, reading the raw on-disk bytes
// (CRC trailers included) so a replication sender can ship byte-exact frames
// without re-encoding, and a standby can verify them end to end. Tailing is
// poll-driven and read-only — the primary's writer never knows its journal is
// being followed — and sees exactly what the writer has flushed: a frame
// becomes visible at the primary's commit point, never earlier.
//
// A cursor positioned before the oldest surviving segment (its records were
// pruned away under a snapshot) gets ErrGap, the signal that the follower
// must bootstrap from a snapshot instead of replaying the log.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrGap reports a tail cursor positioned at records the journal no longer
// holds (their segments were pruned under a snapshot). The follower must
// restart from a snapshot at or beyond the gap.
var ErrGap = errors.New("store: journal gap: records pruned under a snapshot")

// TailBatch is one contiguous run of journal frames read by a Tailer.
type TailBatch struct {
	// FirstSeq is the sequence number of the first record in Frames.
	FirstSeq uint64
	// Count is the number of whole record frames in Frames.
	Count int
	// Frames holds the records' raw on-disk frames (kind byte, length-prefixed
	// body, CRC32C trailer), back to back — exactly the bytes AppendFrames on
	// a replica journal accepts.
	Frames []byte
}

// LastSeq returns the sequence number of the batch's final record.
func (b TailBatch) LastSeq() uint64 { return b.FirstSeq + uint64(b.Count) - 1 }

// Tailer is a read-only cursor over a journal directory's record frames.
// It is not safe for concurrent use.
type Tailer struct {
	dir     string
	nextSeq uint64 // sequence number of the next record to deliver
	f       *os.File
	segPath string // path of the open segment
	segSeq  uint64 // first sequence number of the open segment
	off     int64  // read offset into the open segment
	buf     []byte
}

// OpenTail positions a cursor after afterSeq: the first record a Next call
// returns is afterSeq+1. afterSeq 0 starts at the journal's beginning. If the
// position's segment has been pruned away, OpenTail fails with ErrGap (wrapped
// with the oldest surviving sequence number, when any segment survives).
func OpenTail(dir string, afterSeq uint64) (*Tailer, error) {
	t := &Tailer{dir: dir, nextSeq: afterSeq + 1}
	if err := t.seek(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// seek opens the segment holding nextSeq and advances the offset to it.
func (t *Tailer) seek() error {
	segs := segmentGlob(t.dir)
	if len(segs) == 0 {
		// An empty directory is a journal that has not started yet; the
		// cursor is valid only at the very beginning.
		if t.nextSeq == 1 {
			return nil
		}
		return fmt.Errorf("%w (no segments, cursor at %d)", ErrGap, t.nextSeq)
	}
	// Find the last segment whose first sequence number is <= nextSeq; its
	// frames cover the cursor unless the cursor runs past its end.
	target := -1
	for i, path := range segs {
		first, ok := segmentFirstSeq(path)
		if !ok {
			continue
		}
		if first <= t.nextSeq {
			target = i
		}
	}
	if target < 0 {
		oldest, _ := segmentFirstSeq(segs[0])
		return fmt.Errorf("%w (cursor at %d, oldest surviving record %d)", ErrGap, t.nextSeq, oldest)
	}
	first, _ := segmentFirstSeq(segs[target])
	f, err := os.Open(segs[target])
	if err != nil {
		return fmt.Errorf("store: open segment for tail: %w", err)
	}
	t.f, t.segPath, t.segSeq, t.off = f, segs[target], first, int64(headerSize)
	// Skip records below the cursor within the segment.
	seq := first - 1
	for seq+1 < t.nextSeq {
		_, size, err := t.readFrameAt(t.off)
		if err != nil {
			// The cursor points past what the journal holds. A follower only
			// ever holds a prefix of the log it follows, so this is
			// divergence (or the wrong directory), not a position to guess
			// around.
			return fmt.Errorf("%w (cursor at %d, journal ends at %d)", ErrGap, t.nextSeq, seq)
		}
		t.off += int64(size)
		seq++
	}
	return nil
}

// readFrameAt decodes one whole frame at the given offset, returning its kind
// and encoded size. io.EOF means no whole frame is flushed there yet.
func (t *Tailer) readFrameAt(off int64) (Kind, int, error) {
	// Read a bounded window: enough for any frame the journal writes in one
	// piece (bodies are bounded by the segment size in practice; grow the
	// window until the frame is whole or the file ends).
	const window = 64 << 10
	size := window
	for {
		if cap(t.buf) < size {
			t.buf = make([]byte, size)
		}
		n, err := t.f.ReadAt(t.buf[:size], off)
		if n == 0 {
			return 0, 0, io.EOF
		}
		r, used, derr := decodeFrame(t.buf[:n])
		if derr == nil {
			return r.Kind, used, nil
		}
		if errors.Is(derr, ErrTruncated) {
			if err == nil && n == size {
				// The window may simply be smaller than the frame; widen it.
				size *= 2
				continue
			}
			// The file really ends mid-frame: either the writer's flush is in
			// flight or this is a crash-torn tail. Both mean "nothing more to
			// deliver yet".
			return 0, 0, io.EOF
		}
		return 0, 0, derr
	}
}

// Next reads the next contiguous run of whole frames, up to maxBytes of frame
// data (0 means a 256 KiB default). A batch with Count 0 and a nil error
// means the cursor is caught up with the flushed journal; poll again later.
// ErrGap reports that the cursor's next record has been pruned away (the
// journal snapshotted and rotated past a slow follower); other errors report
// unreadable or corrupt segment data.
//
// The read path is batched: one window-sized ReadAt per call, frames sliced
// out of the buffer — the per-record cost is a decode, not a syscall, which
// is what lets the replication sender sustain hundreds of thousands of
// records per second off a live journal.
func (t *Tailer) Next(maxBytes int) (TailBatch, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	if t.f == nil {
		// The journal had no segments at open time; look again.
		if err := t.seek(); err != nil {
			return TailBatch{}, err
		}
		if t.f == nil {
			return TailBatch{}, nil
		}
	}
	// A pruned-away segment stays readable through the open handle, but its
	// successors are gone with it: a cursor on one must report the gap, not
	// stream into a dead end.
	if _, err := os.Stat(t.segPath); err != nil {
		return TailBatch{}, fmt.Errorf("%w (segment %s pruned under cursor at %d)", ErrGap, filepath.Base(t.segPath), t.nextSeq)
	}
	window := maxBytes
	for {
		if cap(t.buf) < window {
			t.buf = make([]byte, window)
		}
		n, rerr := t.f.ReadAt(t.buf[:window], t.off)
		if n == 0 {
			// End of this segment's flushed data. If the next segment
			// exists, the writer rotated: this segment is complete, move on.
			// (A mid-flush torn frame cannot be confused with rotation — the
			// writer syncs whole frames before opening the next segment.)
			if !t.advanceSegment() {
				return TailBatch{}, nil // caught up; poll again later
			}
			continue
		}
		data := t.buf[:n]
		consumed, count := 0, 0
		var derr error
		for consumed < n && consumed < maxBytes {
			_, size, err := decodeFrame(data[consumed:])
			if err != nil {
				derr = err
				break
			}
			consumed += size
			count++
		}
		if count == 0 {
			if errors.Is(derr, ErrTruncated) {
				if rerr == nil && n == window {
					// A single frame larger than the window: widen and retry.
					window *= 2
					continue
				}
				// The file ends mid-frame: the writer's flush is in flight
				// (or this is a crash-torn tail) — nothing whole to deliver
				// yet.
				return TailBatch{}, nil
			}
			return TailBatch{}, fmt.Errorf("tailing segment at seq %d: %w", t.nextSeq, derr)
		}
		// Frames must not alias the reused read buffer.
		batch := TailBatch{
			FirstSeq: t.nextSeq,
			Count:    count,
			Frames:   append([]byte(nil), data[:consumed]...),
		}
		t.off += int64(consumed)
		t.nextSeq += uint64(count)
		return batch, nil
	}
}

// advanceSegment moves the cursor to the segment starting at nextSeq, if the
// writer has opened one. It reports whether it advanced.
func (t *Tailer) advanceSegment() bool {
	for _, path := range segmentGlob(t.dir) {
		first, ok := segmentFirstSeq(path)
		if !ok || first != t.nextSeq {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return false
		}
		t.f.Close()
		t.f, t.segPath, t.segSeq, t.off = f, path, first, int64(headerSize)
		return true
	}
	return false
}

// Pos returns the sequence number of the next record the cursor will deliver.
func (t *Tailer) Pos() uint64 { return t.nextSeq }

// Close releases the cursor's file handle.
func (t *Tailer) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// DecodeFrames splits a TailBatch's raw frame bytes back into records,
// verifying each frame's checksum. The record bodies alias frames.
func DecodeFrames(frames []byte) ([]Record, error) {
	var out []Record
	for len(frames) > 0 {
		r, n, err := decodeFrame(frames)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		frames = frames[n:]
	}
	return out, nil
}

// EncodeFrame appends one record's on-disk frame (kind, length-prefixed body,
// CRC32C trailer) to dst — the inverse of DecodeFrames, exported so tests and
// tools can synthesise streams.
func EncodeFrame(dst []byte, r Record) []byte { return appendFrame(dst, r) }

// LatestSnapshotData returns the newest snapshot that validates in a data
// directory — the blob a replication sender ships to bootstrap a follower
// that hit ErrGap.
func LatestSnapshotData(dir string) (seq uint64, blob []byte, ok bool) {
	return latestSnapshot(dir)
}
