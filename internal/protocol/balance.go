// Package protocol implements the negotiation machinery of the paper: the
// balance-prediction formulae of Section 6, the reward-table update rule
// (monotonic concession, Section 3.1/3.2.3), and session state machines for
// all three announcement methods the Utility Agent can employ (offer,
// request for bids, announce reward tables).
//
// The package is transport-agnostic: sessions are pure state machines that
// the core engine drives with decoded messages, which keeps every protocol
// rule unit-testable without goroutines.
package protocol

import (
	"errors"
	"fmt"
	"sort"

	"loadbalance/internal/units"
)

// Errors reported by protocol operations.
var (
	ErrSessionClosed   = errors.New("protocol: session is closed")
	ErrUnknownCustomer = errors.New("protocol: unknown customer")
	ErrWrongRound      = errors.New("protocol: bid for wrong round")
	ErrNonMonotonicBid = errors.New("protocol: bid regresses (monotonic concession violated)")
	ErrBadParams       = errors.New("protocol: invalid parameters")
	ErrBadTable        = errors.New("protocol: invalid reward table")
)

// CustomerLoad is the Utility Agent's model of one customer inside a
// negotiation window: the predicted use, the contractual allowed use, and
// the cut-down the customer has currently bid (0 before any bid).
type CustomerLoad struct {
	Predicted units.Energy
	Allowed   units.Energy
	CutDown   float64
	Responded bool
}

// UseWithCutDown evaluates the paper's predicted_use_with_cutdown(c):
//
//	predicted_use(c)                 if (1-cutdown(c))·allowed_use(c) >= predicted_use(c)
//	(1-cutdown(c))·allowed_use(c)    otherwise
//
// i.e. the cut-down caps usage at a fraction of the allowance, and a cap
// above the prediction does not bind.
func UseWithCutDown(c CustomerLoad) units.Energy {
	cap := c.Allowed.Scale(1 - c.CutDown)
	if cap >= c.Predicted {
		return c.Predicted
	}
	return cap
}

// PredictedOveruse evaluates predicted_overuse = Σ_c use_with_cutdown(c) −
// normal_use, in kWh. The value is negative when predicted demand sits below
// normal capacity. The sum runs in sorted-name order: float addition is not
// associative, so summing in map-iteration order makes two runs of the same
// seeded scenario disagree in the last ulp — and every reward table derived
// from the overuse with them.
func PredictedOveruse(loads map[string]CustomerLoad, normalUse units.Energy) float64 {
	total := 0.0
	for _, n := range sortedLoadNames(loads) {
		total += UseWithCutDown(loads[n]).KWhs()
	}
	return total - normalUse.KWhs()
}

// sortedLoadNames returns the fleet's customer names in sorted order: every
// float accumulation over a load map iterates these, never the map itself,
// so repeated runs of the same scenario stay bitwise identical (enforced by
// gridlint's floatmaprange analyzer).
func sortedLoadNames(loads map[string]CustomerLoad) []string {
	names := make([]string, 0, len(loads))
	for n := range loads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OveruseRatio evaluates overuse = predicted_overuse / normal_use. A zero
// normal use yields zero.
func OveruseRatio(loads map[string]CustomerLoad, normalUse units.Energy) float64 {
	if normalUse == 0 {
		return 0
	}
	return PredictedOveruse(loads, normalUse) / normalUse.KWhs()
}

// Params holds the Utility Agent's negotiation parameters for the reward
// table method.
type Params struct {
	// Beta determines "how steeply the reward values increase" (Section 6).
	Beta float64
	// MaxRewardSlope defines max_reward per cut-down level as
	// MaxRewardSlope × cutdown: the most the UA will ever pay for a given
	// saving. The paper's max_reward is "determined in advance".
	MaxRewardSlope float64
	// Epsilon ends the negotiation when the largest reward increase in a
	// round is ≤ Epsilon; the paper uses 1.
	Epsilon float64
	// AllowedOveruseRatio is the acceptable residual overuse (fraction of
	// normal use); the peak is "satisfactorily low" at or below it.
	AllowedOveruseRatio float64
	// MaxRounds bounds the negotiation as a safety net; 0 means the default.
	MaxRounds int
	// MinResponses is the "acceptable number of bids" before the UA closes a
	// round even if some customers stayed silent; 0 means all customers.
	MinResponses int
	// AdaptiveBeta enables the Section 7 extension ("the effects of
	// dynamically varying the value of beta on the basis of experience"):
	// when a round reduces the overuse by less than AdaptThreshold
	// (relative), the session scales beta up by AdaptFactor for subsequent
	// updates, accelerating concession when customers stall.
	AdaptiveBeta bool
	// AdaptThreshold is the minimum relative overuse reduction per round
	// considered progress (default 0.1).
	AdaptThreshold float64
	// AdaptFactor multiplies beta after a stalled round (default 1.5,
	// compounded, capped at 8× the base beta).
	AdaptFactor float64
	// ContinuousBids accepts cut-down bids at any fraction in [0,1] rather
	// than only at the announced table's levels, with rewards linearly
	// interpolated between rows. Concentrator Agents in a hierarchical
	// (sharded) negotiation bid the effective cut-down of a whole shard,
	// which is a capacity-weighted aggregate and rarely lands on a grid
	// level; direct customers keep bidding grid levels.
	ContinuousBids bool
}

const defaultMaxRounds = 64

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Beta <= 0:
		return fmt.Errorf("%w: beta %v must be positive", ErrBadParams, p.Beta)
	case p.MaxRewardSlope <= 0:
		return fmt.Errorf("%w: max reward slope %v must be positive", ErrBadParams, p.MaxRewardSlope)
	case p.Epsilon < 0:
		return fmt.Errorf("%w: epsilon %v must be non-negative", ErrBadParams, p.Epsilon)
	case p.AllowedOveruseRatio < 0:
		return fmt.Errorf("%w: allowed overuse %v must be non-negative", ErrBadParams, p.AllowedOveruseRatio)
	case p.MaxRounds < 0:
		return fmt.Errorf("%w: max rounds %d must be non-negative", ErrBadParams, p.MaxRounds)
	case p.MinResponses < 0:
		return fmt.Errorf("%w: min responses %d must be non-negative", ErrBadParams, p.MinResponses)
	case p.AdaptThreshold < 0:
		return fmt.Errorf("%w: adapt threshold %v must be non-negative", ErrBadParams, p.AdaptThreshold)
	case p.AdaptFactor < 0:
		return fmt.Errorf("%w: adapt factor %v must be non-negative", ErrBadParams, p.AdaptFactor)
	}
	return nil
}

// adaptThreshold returns the effective stall threshold.
func (p Params) adaptThreshold() float64 {
	if p.AdaptThreshold == 0 {
		return 0.1
	}
	return p.AdaptThreshold
}

// adaptFactor returns the effective beta multiplier.
func (p Params) adaptFactor() float64 {
	if p.AdaptFactor == 0 {
		return 1.5
	}
	return p.AdaptFactor
}

// maxBetaScale caps compounded adaptive scaling.
const maxBetaScale = 8.0

// MaxRewardAt returns the reward ceiling for one cut-down level.
func (p Params) MaxRewardAt(cutDown float64) float64 {
	return p.MaxRewardSlope * cutDown
}

// maxRounds returns the effective round bound.
func (p Params) maxRounds() int {
	if p.MaxRounds <= 0 {
		return defaultMaxRounds
	}
	return p.MaxRounds
}
