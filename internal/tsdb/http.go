package tsdb

import (
	"net/http"
	"strconv"
)

// maxQueryPoints caps one response; step is the client's tool to stay
// under it on wide ranges.
const maxQueryPoints = 10000

// Handler serves range queries against st as JSON:
//
//	GET /query?series=rate(x_count[30s])&from=-60s&to=0s&step=1s
//
// from/to accept absolute unix microseconds or now-relative durations
// (default: the last minute); step defaults to 1s. The response carries
// the resolved bounds plus the evaluated points.
func Handler(st *Store, nowUs func() int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		expr, err := ParseExpr(q.Get("series"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		now := nowUs()
		from, err := ParseTimeParam(q.Get("from"), now-60_000_000, now)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		to, err := ParseTimeParam(q.Get("to"), now, now)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		step, err := ParseStepParam(q.Get("step"), 1_000_000)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		limit, err := ParseLimitParam(q.Get("limit"), maxQueryPoints)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if to < from {
			http.Error(w, "bad range: to precedes from", http.StatusBadRequest)
			return
		}
		if limit > maxQueryPoints {
			limit = maxQueryPoints
		}
		if steps := (to-from)/step + 1; steps > int64(limit) {
			http.Error(w, "range/step yields too many points; raise step or narrow the range", http.StatusBadRequest)
			return
		}
		pts := st.Query(expr, from, to, step)
		w.Header().Set("Content-Type", "application/json")
		writeQueryJSON(w, expr, from, to, step, pts)
	}
}

// writeQueryJSON renders the query response without encoding/json,
// matching the repo's other hot-path JSON surfaces.
func writeQueryJSON(w http.ResponseWriter, e Expr, fromUs, toUs, stepUs int64, pts []Point) {
	b := make([]byte, 0, 128+32*len(pts))
	b = append(b, `{"series":`...)
	b = strconv.AppendQuote(b, e.String())
	b = append(b, `,"fromUs":`...)
	b = strconv.AppendInt(b, fromUs, 10)
	b = append(b, `,"toUs":`...)
	b = strconv.AppendInt(b, toUs, 10)
	b = append(b, `,"stepUs":`...)
	b = strconv.AppendInt(b, stepUs, 10)
	b = append(b, `,"points":[`...)
	for i, p := range pts {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"tsUs":`...)
		b = strconv.AppendInt(b, p.TsUs, 10)
		b = append(b, `,"value":`...)
		b = strconv.AppendFloat(b, p.Value, 'g', -1, 64)
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	_, _ = w.Write(b)
}
