// Package core is the paper's prototype system: it wires one Utility Agent,
// a set of Customer Agents (each backed by its preferences/RCA reports) and
// a message bus into a running negotiation, and exposes the canonical
// scenarios the experiments replay.
//
// The PaperScenario reproduces the exact situation of Figures 6-9: normal
// capacity 100, predicted usage 135 (ten customers at 13.5 kWh), a linear
// round-1 reward table with slope 42.5 (reward 17 at cut-down 0.4), and a
// customer population calibrated so the negotiation runs three rounds with
// the round-3 reward at cut-down 0.4 reaching 24.8 and predicted overuse
// falling from 35 to ≈12-13, matching the prototype screenshots.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/resource"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
	"loadbalance/internal/world"
)

// Errors reported by the package.
var (
	ErrBadScenario = errors.New("core: invalid scenario")
	ErrTimeout     = errors.New("core: negotiation timed out")
)

// CustomerSpec declares one Customer Agent in a scenario.
type CustomerSpec struct {
	Name      string
	Predicted units.Energy
	Allowed   units.Energy
	Prefs     customeragent.Preferences
	Strategy  customeragent.Strategy
	// Silent customers register on the bus but never answer (E9).
	Silent bool
}

// Scenario is a complete negotiation setup.
type Scenario struct {
	SessionID string
	Window    units.Interval
	NormalUse units.Energy
	Method    utilityagent.Method
	LeadTime  time.Duration

	Params       protocol.Params
	InitialSlope float64
	RFB          protocol.RFBParams
	Offer        message.OfferTerms

	Customers []CustomerSpec

	// RoundTimeout lets rounds close without full quorum; required when
	// DropRate > 0 or any customer is silent.
	RoundTimeout time.Duration
	// DropRate injects message loss on the bus.
	DropRate float64
	// Seed drives the loss randomness.
	Seed int64
	// Timeout bounds the whole run (default 30s).
	Timeout time.Duration
}

// Validate checks the scenario is runnable.
func (s Scenario) Validate() error {
	if s.SessionID == "" {
		return fmt.Errorf("%w: empty session id", ErrBadScenario)
	}
	if len(s.Customers) == 0 {
		return fmt.Errorf("%w: no customers", ErrBadScenario)
	}
	if s.NormalUse <= 0 {
		return fmt.Errorf("%w: normal use must be positive", ErrBadScenario)
	}
	seen := make(map[string]bool, len(s.Customers))
	anySilent := false
	for _, c := range s.Customers {
		if c.Name == "" {
			return fmt.Errorf("%w: unnamed customer", ErrBadScenario)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate customer %q", ErrBadScenario, c.Name)
		}
		seen[c.Name] = true
		if c.Silent {
			anySilent = true
		}
	}
	if (s.DropRate > 0 || anySilent) && s.RoundTimeout <= 0 {
		return fmt.Errorf("%w: lossy or silent scenarios need RoundTimeout", ErrBadScenario)
	}
	return nil
}

// Loads derives the Utility Agent's customer models from the specs.
func (s Scenario) Loads() map[string]protocol.CustomerLoad {
	loads := make(map[string]protocol.CustomerLoad, len(s.Customers))
	for _, c := range s.Customers {
		loads[c.Name] = protocol.CustomerLoad{Predicted: c.Predicted, Allowed: c.Allowed}
	}
	return loads
}

// paperWindow is the canonical evening peak window.
func paperWindow() units.Interval {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}

// PaperParams returns the calibrated negotiation parameters: beta 1.85 is
// the constant that makes the reward at cut-down 0.4 reach 24.8 in round 3
// (Figure 7) starting from 17 in round 1 (Figure 6) under the calibrated
// population's bid trajectory; max_reward(0.4) = 50.
func PaperParams() protocol.Params {
	return protocol.Params{
		Beta:                1.85,
		MaxRewardSlope:      125,
		Epsilon:             1,
		AllowedOveruseRatio: 0.13,
	}
}

// paperLevels is the prototype's cut-down grid 0.0 … 0.9.
func paperLevels() []float64 {
	cds := units.StandardCutDowns()
	out := make([]float64, len(cds))
	for i, cd := range cds {
		out[i] = cd.Float()
	}
	return out
}

// paperCustomerSpec builds one 13.5 kWh customer with the given finite
// requirement rows.
func paperCustomerSpec(name string, required map[float64]float64) (CustomerSpec, error) {
	req := map[float64]float64{0: 0}
	for l, r := range required {
		req[l] = r
	}
	prefs, err := customeragent.NewPreferences(paperLevels(), req)
	if err != nil {
		return CustomerSpec{}, err
	}
	return CustomerSpec{
		Name:      name,
		Predicted: 13.5,
		Allowed:   13.5,
		Prefs:     prefs.WithExpectedUse(13.5),
		Strategy:  customeragent.StrategyGreedy,
	}, nil
}

// PaperScenario builds the canonical Figures 6-9 reproduction.
//
// Customer c01 is the Figures 8-9 customer: it bids 0.2 in round 1 and 0.4
// from round 2 on. Its requirement at 0.3 is 13 rather than the screenshot's
// 10: under the linear round-1 table of Figure 6 (12.75 at 0.3) a
// requirement of 10 would make 0.3 acceptable immediately, contradicting the
// text's "chooses ... a cut-down of 0.2" — the screenshots evidently used a
// non-linear initial table. The requirement at 0.4 is the screenshot's 21.
// The other nine customers are calibrated so the fleet's bids total 1.0,
// 1.5 and 1.7 cut-down across the three rounds, which yields the published
// overuse trajectory 35 → ≈14.8 → ≈12 and the round-3 reward 24.8.
func PaperScenario() (Scenario, error) {
	specs := []struct {
		name string
		req  map[float64]float64
	}{
		{"c01", map[float64]float64{0.1: 4, 0.2: 8, 0.3: 13, 0.4: 21}},
		{"c02", map[float64]float64{0.1: 4, 0.2: 8, 0.3: 15, 0.4: 30}},
		{"c03", map[float64]float64{0.1: 4, 0.2: 8, 0.3: 15, 0.4: 30}},
		{"c04", map[float64]float64{0.1: 4, 0.2: 8, 0.3: 19}},
		{"c05", map[float64]float64{0.1: 4, 0.2: 8, 0.3: 19}},
		{"c06", map[float64]float64{0.1: 5, 0.2: 13}},
		{"c07", map[float64]float64{0.1: 6, 0.2: 14}},
		{"c08", map[float64]float64{0.1: 6, 0.2: 14}},
		{"c09", map[float64]float64{0.1: 7, 0.2: 15}},
		{"c10", map[float64]float64{0.1: 7, 0.2: 15}},
	}
	s := Scenario{
		SessionID:    "paper-fig6",
		Window:       paperWindow(),
		NormalUse:    100,
		Method:       utilityagent.MethodRewardTable,
		Params:       PaperParams(),
		InitialSlope: 42.5,
	}
	for _, spec := range specs {
		cs, err := paperCustomerSpec(spec.name, spec.req)
		if err != nil {
			return Scenario{}, err
		}
		s.Customers = append(s.Customers, cs)
	}
	return s, nil
}

// PopulationConfig parameterises a synthetic-population scenario.
type PopulationConfig struct {
	// N is the number of customers.
	N int
	// Seed drives household synthesis and weather.
	Seed int64
	// TargetOveruse sets normal capacity so the fleet's predicted demand
	// exceeds it by this ratio (default 0.35, the paper's situation).
	TargetOveruse float64
	// Margin is the customers' profit margin on comfort costs.
	Margin float64
	// Strategy applies to every customer (default greedy).
	Strategy customeragent.Strategy
	// Method picks the announcement method.
	Method utilityagent.Method
	// Window defaults to the paper's evening peak.
	Window units.Interval
}

// PopulationScenario synthesises a scenario from the world simulator: each
// household's devices determine both its predicted load and its preference
// table (via its Resource Consumer Agents). This is the workload generator
// for experiments E5-E7 and E9.
func PopulationScenario(cfg PopulationConfig) (Scenario, error) {
	if cfg.N <= 0 {
		return Scenario{}, fmt.Errorf("%w: population size %d", ErrBadScenario, cfg.N)
	}
	if cfg.TargetOveruse == 0 {
		cfg.TargetOveruse = 0.35
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = customeragent.StrategyGreedy
	}
	window := cfg.Window
	if window.Start.IsZero() {
		window = paperWindow()
	}
	pop, err := world.NewPopulation(world.PopulationConfig{
		N:       cfg.N,
		Seed:    cfg.Seed,
		EVShare: 0.2,
	})
	if err != nil {
		return Scenario{}, err
	}
	samples := resource.DefaultSampleCount(window)
	levels := paperLevels()

	s := Scenario{
		SessionID:    fmt.Sprintf("pop-%d-%d", cfg.N, cfg.Seed),
		Window:       window,
		Method:       cfg.Method,
		Params:       PaperParams(),
		InitialSlope: 42.5,
	}
	var totalPredicted units.Energy
	var req04 []float64
	for _, h := range pop.Households {
		rep, err := resource.BuildReport(h, window, pop.Weather, samples)
		if err != nil {
			return Scenario{}, err
		}
		prefs, err := customeragent.FromReport(rep, levels, cfg.Margin)
		if err != nil {
			return Scenario{}, err
		}
		s.Customers = append(s.Customers, CustomerSpec{
			Name:      h.ID,
			Predicted: rep.TotalUse,
			Allowed:   rep.TotalUse,
			Prefs:     prefs,
			Strategy:  cfg.Strategy,
		})
		totalPredicted = totalPredicted.Add(rep.TotalUse)
		if r := prefs.RequiredFor(0.4); !math.IsInf(r, 1) {
			req04 = append(req04, r)
		}
	}
	s.NormalUse = totalPredicted.Scale(1 / (1 + cfg.TargetOveruse))

	// Calibrate the reward scale to the fleet: the round-1 table covers
	// about half the median requirement at cut-down 0.4, so negotiations
	// concede over several rounds (as in the prototype) instead of clearing
	// instantly; the ceiling sits at 3× the median so convergence stays
	// reachable.
	if len(req04) > 0 {
		sort.Float64s(req04)
		median := req04[len(req04)/2]
		if median > 0 {
			s.InitialSlope = 0.5 * median / 0.4
			s.Params.MaxRewardSlope = 3 * median / 0.4
			s.Params.Epsilon = 0.02 * median // keep the step rule proportionate
		}
	}
	return s, nil
}
