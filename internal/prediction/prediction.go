// Package prediction implements the statistical models the Utility Agent
// uses to predict the balance between consumption and production: "available
// information is analysed and predictions are calculated on the basis of
// statistical models" (Section 5.1.2).
//
// Three classical estimators are provided — moving average, exponential
// smoothing and seasonal-naive — plus a one-feature ordinary least squares
// regression for weather-driven demand (heating degree → load), and the
// accuracy metrics used to choose between them.
package prediction

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by predictors.
var (
	ErrNoData      = errors.New("prediction: no data")
	ErrBadWindow   = errors.New("prediction: window must be positive")
	ErrBadAlpha    = errors.New("prediction: alpha must lie in (0,1]")
	ErrBadPeriod   = errors.New("prediction: period must be positive")
	ErrShortSeries = errors.New("prediction: series shorter than required")
	ErrSingular    = errors.New("prediction: regression is singular")
)

// Predictor forecasts the next value of a scalar series.
type Predictor interface {
	// Predict returns the one-step-ahead forecast for the series.
	Predict(series []float64) (float64, error)
	// Name identifies the estimator in experiment reports.
	Name() string
}

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	Window int
}

// Name implements Predictor.
func (m MovingAverage) Name() string { return fmt.Sprintf("ma(%d)", m.Window) }

// Predict implements Predictor.
func (m MovingAverage) Predict(series []float64) (float64, error) {
	if m.Window <= 0 {
		return 0, ErrBadWindow
	}
	if len(series) == 0 {
		return 0, ErrNoData
	}
	n := m.Window
	if n > len(series) {
		n = len(series)
	}
	sum := 0.0
	for _, v := range series[len(series)-n:] {
		sum += v
	}
	return sum / float64(n), nil
}

// ExpSmoothing is simple exponential smoothing with factor Alpha.
type ExpSmoothing struct {
	Alpha float64
}

// Name implements Predictor.
func (e ExpSmoothing) Name() string { return fmt.Sprintf("ses(%.2f)", e.Alpha) }

// Predict implements Predictor.
func (e ExpSmoothing) Predict(series []float64) (float64, error) {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return 0, ErrBadAlpha
	}
	if len(series) == 0 {
		return 0, ErrNoData
	}
	level := series[0]
	for _, v := range series[1:] {
		level = e.Alpha*v + (1-e.Alpha)*level
	}
	return level, nil
}

// SeasonalNaive predicts the value observed Period steps ago — the natural
// estimator for daily load patterns ("same slot yesterday").
type SeasonalNaive struct {
	Period int
}

// Name implements Predictor.
func (s SeasonalNaive) Name() string { return fmt.Sprintf("snaive(%d)", s.Period) }

// Predict implements Predictor.
func (s SeasonalNaive) Predict(series []float64) (float64, error) {
	if s.Period <= 0 {
		return 0, ErrBadPeriod
	}
	if len(series) < s.Period {
		return 0, fmt.Errorf("%w: have %d, need %d", ErrShortSeries, len(series), s.Period)
	}
	return series[len(series)-s.Period], nil
}

// OLS is a one-feature least-squares regression y = Intercept + Slope·x,
// used to regress demand on weather drivers (heating degree).
type OLS struct {
	Intercept float64
	Slope     float64
	n         int
}

// FitOLS estimates the regression from paired observations.
func FitOLS(xs, ys []float64) (*OLS, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("prediction: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, ErrShortSeries
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return nil, ErrSingular
	}
	slope := (n*sxy - sx*sy) / den
	return &OLS{
		Intercept: (sy - slope*sx) / n,
		Slope:     slope,
		n:         len(xs),
	}, nil
}

// At evaluates the fitted regression at x.
func (o *OLS) At(x float64) float64 { return o.Intercept + o.Slope*x }

// N returns the number of fitted observations.
func (o *OLS) N() int { return o.n }

// RMSE is the root-mean-square error between forecasts and actuals.
func RMSE(forecast, actual []float64) (float64, error) {
	if len(forecast) != len(actual) {
		return 0, fmt.Errorf("prediction: len mismatch %d vs %d", len(forecast), len(actual))
	}
	if len(forecast) == 0 {
		return 0, ErrNoData
	}
	sum := 0.0
	for i := range forecast {
		d := forecast[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(forecast))), nil
}

// MAPE is the mean absolute percentage error; zero actuals are skipped, and
// all-zero actuals are an error.
func MAPE(forecast, actual []float64) (float64, error) {
	if len(forecast) != len(actual) {
		return 0, fmt.Errorf("prediction: len mismatch %d vs %d", len(forecast), len(actual))
	}
	sum, n := 0.0, 0
	for i := range forecast {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((forecast[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrNoData
	}
	return sum / float64(n), nil
}

// Backtest runs a predictor over a series one step at a time (expanding
// window, starting after warmup observations) and returns forecasts aligned
// with actual[warmup:].
func Backtest(p Predictor, series []float64, warmup int) (forecast, actual []float64, err error) {
	if warmup < 1 || warmup >= len(series) {
		return nil, nil, fmt.Errorf("%w: warmup %d of %d", ErrShortSeries, warmup, len(series))
	}
	for i := warmup; i < len(series); i++ {
		f, err := p.Predict(series[:i])
		if err != nil {
			return nil, nil, err
		}
		forecast = append(forecast, f)
		actual = append(actual, series[i])
	}
	return forecast, actual, nil
}

// Best backtests several predictors and returns the one with the lowest
// RMSE, with its score. The UA's "determine general negotiation strategy"
// task uses this to pick its prediction model.
func Best(ps []Predictor, series []float64, warmup int) (Predictor, float64, error) {
	if len(ps) == 0 {
		return nil, 0, ErrNoData
	}
	var (
		best      Predictor
		bestScore = math.Inf(1)
	)
	for _, p := range ps {
		f, a, err := Backtest(p, series, warmup)
		if err != nil {
			continue // a predictor needing more data than available just loses
		}
		score, err := RMSE(f, a)
		if err != nil {
			continue
		}
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("%w: no predictor could run", ErrShortSeries)
	}
	return best, bestScore, nil
}
