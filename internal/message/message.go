// Package message defines the wire-level vocabulary of the negotiation: the
// announcements a Utility Agent sends, the bids Customer Agents return, the
// awards closing a negotiation, and the information exchanges with Producer
// Agents. Messages marshal to JSON so the same types serve the in-process
// bus and the TCP transport.
//
// The three announcement payloads correspond one-to-one to the paper's three
// methods (Section 3.2): OfferTerms, BidRequest and RewardTable.
package message

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"loadbalance/internal/units"
)

// Kind tags the payload type carried by an Envelope.
type Kind string

// Message kinds.
const (
	KindOffer       Kind = "offer"        // take-it-or-leave-it offer (3.2.1)
	KindBidRequest  Kind = "bid_request"  // request for bids (3.2.2)
	KindRewardTable Kind = "reward_table" // announce reward tables (3.2.3)
	KindOfferReply  Kind = "offer_reply"  // yes/no answer to an offer
	KindEnergyBid   Kind = "energy_bid"   // ymin bid in the RFB method
	KindCutDownBid  Kind = "cutdown_bid"  // chosen cut-down in the RT method
	KindAward       Kind = "award"        // UA accepts bids / ends session
	KindInfoRequest Kind = "info_request" // UA asks producer/world for info
	KindInfoReply   Kind = "info_reply"   // answer to an info request
	KindSessionEnd  Kind = "session_end"  // UA terminates a negotiation
	KindMeterBatch  Kind = "meter_batch"  // batched live consumption readings

	// Replication kinds: the WAL-streaming conversation between a primary
	// grid head and its hot standbys (internal/replica).
	KindReplSubscribe Kind = "repl_subscribe" // standby → primary: follow the journal
	KindReplBatch     Kind = "repl_batch"     // primary → standby: raw journal frames
	KindReplAck       Kind = "repl_ack"       // standby → primary: applied position
	KindReplSnapshot  Kind = "repl_snapshot"  // primary → standby: snapshot bootstrap
	KindReplHeartbeat Kind = "repl_heartbeat" // primary → standby: liveness + head position

	// Observability-plane kinds: workers, standbys and serve replicas
	// streaming their metric/log/span state to the fleet root
	// (internal/obsplane).
	KindObsSubscribe Kind = "obs_subscribe" // process → root: identity + subscribed log level
	KindObsBatch     Kind = "obs_batch"     // process → root: metric samples, log events, spans
	KindObsAck       Kind = "obs_ack"       // root → process: highest batch applied
)

// Validation errors.
var (
	ErrEmptyField  = errors.New("message: required field is empty")
	ErrBadFraction = errors.New("message: fraction out of range")
	ErrBadValue    = errors.New("message: value must be finite and non-negative")
	ErrBadInterval = errors.New("message: interval end must be after start")
	ErrUnknownKind = errors.New("message: unknown kind")
	ErrEmptyTable  = errors.New("message: reward table has no entries")
	ErrTableOrder  = errors.New("message: reward table cut-downs must be strictly increasing")
)

// Payload is implemented by every message body.
type Payload interface {
	Kind() Kind
	Validate() error
}

// Window is the JSON-friendly form of a units.Interval.
type Window struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// FromInterval converts a units.Interval.
func FromInterval(iv units.Interval) Window {
	return Window{Start: iv.Start, End: iv.End}
}

// Interval converts back to a units.Interval.
func (w Window) Interval() (units.Interval, error) {
	return units.NewInterval(w.Start, w.End)
}

// validateWindow reports whether the window is well-formed.
func (w Window) validate() error {
	if !w.End.After(w.Start) {
		return ErrBadInterval
	}
	return nil
}

// OfferTerms is the one-shot offer of Section 3.2.1: stay below
// XMax × Allowance during the window and pay LowPrice for that energy;
// exceed it and pay HighPrice for the excess. Declining means NormalPrice.
type OfferTerms struct {
	Window       Window  `json:"window"`
	XMax         float64 `json:"xMax"` // fraction of allowance, in (0,1]
	AllowanceKWh float64 `json:"allowanceKWh"`
	LowPrice     float64 `json:"lowPrice"`
	NormalPrice  float64 `json:"normalPrice"`
	HighPrice    float64 `json:"highPrice"`
}

// Kind implements Payload.
func (OfferTerms) Kind() Kind { return KindOffer }

// Validate implements Payload.
func (o OfferTerms) Validate() error {
	if err := o.Window.validate(); err != nil {
		return err
	}
	if o.XMax <= 0 || o.XMax > 1 {
		return fmt.Errorf("%w: xMax %v", ErrBadFraction, o.XMax)
	}
	for _, v := range []float64{o.AllowanceKWh, o.LowPrice, o.NormalPrice, o.HighPrice} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %v", ErrBadValue, v)
		}
	}
	if !(o.LowPrice <= o.NormalPrice && o.NormalPrice <= o.HighPrice) {
		return fmt.Errorf("%w: prices must satisfy low <= normal <= high", ErrBadValue)
	}
	return nil
}

// BidRequest asks every Customer Agent how much energy it really needs
// (Section 3.2.2). Round counts from 1; later rounds ask customers to stand
// still or step forward.
type BidRequest struct {
	Window Window `json:"window"`
	Round  int    `json:"round"`
	// LowPrice/HighPrice communicate the price regime for awarded bids.
	LowPrice    float64 `json:"lowPrice"`
	NormalPrice float64 `json:"normalPrice"`
	HighPrice   float64 `json:"highPrice"`
}

// Kind implements Payload.
func (BidRequest) Kind() Kind { return KindBidRequest }

// Validate implements Payload.
func (r BidRequest) Validate() error {
	if err := r.Window.validate(); err != nil {
		return err
	}
	if r.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, r.Round)
	}
	if !(r.LowPrice <= r.NormalPrice && r.NormalPrice <= r.HighPrice) {
		return fmt.Errorf("%w: prices must satisfy low <= normal <= high", ErrBadValue)
	}
	return nil
}

// RewardEntry is one row of a reward table: save CutDown × allowed use
// during the window and receive Reward.
type RewardEntry struct {
	CutDown float64 `json:"cutDown"`
	Reward  float64 `json:"reward"`
}

// RewardTable is the announcement of Section 3.2.3.
type RewardTable struct {
	Window  Window        `json:"window"`
	Round   int           `json:"round"`
	Entries []RewardEntry `json:"entries"`
}

// Kind implements Payload.
func (RewardTable) Kind() Kind { return KindRewardTable }

// Validate implements Payload.
func (t RewardTable) Validate() error {
	if err := t.Window.validate(); err != nil {
		return err
	}
	if t.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, t.Round)
	}
	if len(t.Entries) == 0 {
		return ErrEmptyTable
	}
	prev := -1.0
	for _, e := range t.Entries {
		if e.CutDown < 0 || e.CutDown > 1 || math.IsNaN(e.CutDown) {
			return fmt.Errorf("%w: cutDown %v", ErrBadFraction, e.CutDown)
		}
		if e.Reward < 0 || math.IsNaN(e.Reward) || math.IsInf(e.Reward, 0) {
			return fmt.Errorf("%w: reward %v", ErrBadValue, e.Reward)
		}
		if e.CutDown <= prev {
			return ErrTableOrder
		}
		prev = e.CutDown
	}
	return nil
}

// RewardFor returns the reward offered at exactly the given cut-down level.
func (t RewardTable) RewardFor(cutDown float64) (float64, bool) {
	for _, e := range t.Entries {
		if e.CutDown == cutDown {
			return e.Reward, true
		}
	}
	return 0, false
}

// OfferReply answers an Offer announcement: yes or no (Section 3.2.1:
// "Customer Agents may only answer 'yes' or 'no'").
type OfferReply struct {
	Round  int  `json:"round"`
	Accept bool `json:"accept"`
}

// Kind implements Payload.
func (OfferReply) Kind() Kind { return KindOfferReply }

// Validate implements Payload.
func (r OfferReply) Validate() error {
	if r.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, r.Round)
	}
	return nil
}

// EnergyBid states how much energy the customer really needs when a reward
// is promised (ymin, Section 3.2.2).
type EnergyBid struct {
	Round   int     `json:"round"`
	YMinKWh float64 `json:"yMinKWh"`
}

// Kind implements Payload.
func (EnergyBid) Kind() Kind { return KindEnergyBid }

// Validate implements Payload.
func (b EnergyBid) Validate() error {
	if b.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, b.Round)
	}
	if b.YMinKWh < 0 || math.IsNaN(b.YMinKWh) || math.IsInf(b.YMinKWh, 0) {
		return fmt.Errorf("%w: yMin %v", ErrBadValue, b.YMinKWh)
	}
	return nil
}

// CutDownBid is the customer's answer to a reward table: "prepared to make a
// cut-down x during interval I" (Section 3.2.3). CutDown 0 means no saving.
type CutDownBid struct {
	Round   int     `json:"round"`
	CutDown float64 `json:"cutDown"`
}

// Kind implements Payload.
func (CutDownBid) Kind() Kind { return KindCutDownBid }

// Validate implements Payload.
func (b CutDownBid) Validate() error {
	if b.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, b.Round)
	}
	if b.CutDown < 0 || b.CutDown > 1 || math.IsNaN(b.CutDown) {
		return fmt.Errorf("%w: cutDown %v", ErrBadFraction, b.CutDown)
	}
	return nil
}

// Award confirms to a customer that its bid has been accepted, carrying the
// agreed cut-down and reward.
type Award struct {
	Round   int     `json:"round"`
	CutDown float64 `json:"cutDown"`
	Reward  float64 `json:"reward"`
}

// Kind implements Payload.
func (Award) Kind() Kind { return KindAward }

// Validate implements Payload.
func (a Award) Validate() error {
	if a.Round < 1 {
		return fmt.Errorf("%w: round %d", ErrBadValue, a.Round)
	}
	if a.CutDown < 0 || a.CutDown > 1 || math.IsNaN(a.CutDown) {
		return fmt.Errorf("%w: cutDown %v", ErrBadFraction, a.CutDown)
	}
	if a.Reward < 0 || math.IsNaN(a.Reward) || math.IsInf(a.Reward, 0) {
		return fmt.Errorf("%w: reward %v", ErrBadValue, a.Reward)
	}
	return nil
}

// InfoRequest asks an information-providing agent (Producer Agent, External
// World) a named question about a window.
type InfoRequest struct {
	Topic  string `json:"topic"`
	Window Window `json:"window"`
}

// Kind implements Payload.
func (InfoRequest) Kind() Kind { return KindInfoRequest }

// Validate implements Payload.
func (r InfoRequest) Validate() error {
	if r.Topic == "" {
		return fmt.Errorf("%w: topic", ErrEmptyField)
	}
	return r.Window.validate()
}

// InfoReply answers an InfoRequest with named numeric values.
type InfoReply struct {
	Topic  string             `json:"topic"`
	Values map[string]float64 `json:"values"`
}

// Kind implements Payload.
func (InfoReply) Kind() Kind { return KindInfoReply }

// Validate implements Payload.
func (r InfoReply) Validate() error {
	if r.Topic == "" {
		return fmt.Errorf("%w: topic", ErrEmptyField)
	}
	for k, v := range r.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s=%v", ErrBadValue, k, v)
		}
	}
	return nil
}

// SessionEnd tells customers the negotiation is over. Reason is free text
// ("converged", "max reward reached", "aborted").
type SessionEnd struct {
	Round  int    `json:"round"`
	Reason string `json:"reason"`
}

// Kind implements Payload.
func (SessionEnd) Kind() Kind { return KindSessionEnd }

// Validate implements Payload.
func (e SessionEnd) Validate() error {
	if e.Round < 0 {
		return fmt.Errorf("%w: round %d", ErrBadValue, e.Round)
	}
	if e.Reason == "" {
		return fmt.Errorf("%w: reason", ErrEmptyField)
	}
	return nil
}

// MeterReading is one customer's measured consumption during one live tick.
// Ticks count from 0 inside the operating window; KWh is the energy actually
// consumed during the tick.
type MeterReading struct {
	Customer string  `json:"customer"`
	Tick     int     `json:"tick"`
	KWh      float64 `json:"kWh"`
}

// validate checks a single reading.
func (r MeterReading) validate() error {
	if r.Customer == "" {
		return fmt.Errorf("%w: customer", ErrEmptyField)
	}
	if r.Tick < 0 {
		return fmt.Errorf("%w: tick %d", ErrBadValue, r.Tick)
	}
	if r.KWh < 0 || math.IsNaN(r.KWh) || math.IsInf(r.KWh, 0) {
		return fmt.Errorf("%w: kWh %v", ErrBadValue, r.KWh)
	}
	return nil
}

// MeterBatch carries a compact batch of live meter readings to a telemetry
// collector. Batching keeps the reading rate the bus must sustain decoupled
// from the envelope rate (one envelope per fleet chunk, not per customer).
type MeterBatch struct {
	Tick     int            `json:"tick"`
	Readings []MeterReading `json:"readings"`
}

// Kind implements Payload.
func (MeterBatch) Kind() Kind { return KindMeterBatch }

// Validate implements Payload.
func (b MeterBatch) Validate() error {
	if b.Tick < 0 {
		return fmt.Errorf("%w: tick %d", ErrBadValue, b.Tick)
	}
	if len(b.Readings) == 0 {
		return fmt.Errorf("%w: readings", ErrEmptyField)
	}
	for _, r := range b.Readings {
		if err := r.validate(); err != nil {
			return err
		}
	}
	return nil
}

// ReplSubscribe asks a primary to stream its journal to the sending standby,
// starting after FromSeq (0 = from the journal's beginning). A primary whose
// journal no longer reaches back to FromSeq answers with a ReplSnapshot
// bootstrap instead of a record batch.
type ReplSubscribe struct {
	// Replica is the subscribing standby's id — also the promotion tiebreak
	// key (lowest id wins).
	Replica string `json:"replica"`
	// FromSeq is the standby's last applied journal sequence number.
	FromSeq uint64 `json:"fromSeq"`
}

// Kind implements Payload.
func (ReplSubscribe) Kind() Kind { return KindReplSubscribe }

// Validate implements Payload.
func (s ReplSubscribe) Validate() error {
	if s.Replica == "" {
		return fmt.Errorf("%w: replica", ErrEmptyField)
	}
	return nil
}

// ReplBatch carries a contiguous run of raw journal record frames (kind byte,
// length-prefixed body, CRC32C trailer — the store's on-disk framing,
// verbatim). The checksums travel with the frames, so a standby verifies the
// primary's bytes end to end before persisting them unchanged.
type ReplBatch struct {
	// FirstSeq is the journal sequence number of the first frame.
	FirstSeq uint64 `json:"firstSeq"`
	// Count is the number of whole frames in Frames.
	Count int `json:"count"`
	// Frames holds the raw frames back to back.
	Frames []byte `json:"frames"`
}

// Kind implements Payload.
func (ReplBatch) Kind() Kind { return KindReplBatch }

// Validate implements Payload.
func (b ReplBatch) Validate() error {
	if b.FirstSeq == 0 {
		return fmt.Errorf("%w: firstSeq 0 (journal sequences count from 1)", ErrBadValue)
	}
	if b.Count < 1 {
		return fmt.Errorf("%w: batch of %d frames", ErrBadValue, b.Count)
	}
	if len(b.Frames) == 0 {
		return fmt.Errorf("%w: frames", ErrEmptyField)
	}
	return nil
}

// ReplAck reports how far a standby has applied the stream. The primary uses
// it for lag accounting and flow control, never for correctness: the journal
// itself is the source of truth.
type ReplAck struct {
	Replica    string `json:"replica"`
	AppliedSeq uint64 `json:"appliedSeq"`
}

// Kind implements Payload.
func (ReplAck) Kind() Kind { return KindReplAck }

// Validate implements Payload.
func (a ReplAck) Validate() error {
	if a.Replica == "" {
		return fmt.Errorf("%w: replica", ErrEmptyField)
	}
	return nil
}

// ReplSnapshot bootstraps a standby that subscribed below the primary's
// pruned journal head: the full application state at journal position Seq.
// The stream continues with frames from Seq+1.
type ReplSnapshot struct {
	Seq  uint64 `json:"seq"`
	Blob []byte `json:"blob"`
}

// Kind implements Payload.
func (ReplSnapshot) Kind() Kind { return KindReplSnapshot }

// Validate implements Payload.
func (s ReplSnapshot) Validate() error {
	if s.Seq == 0 {
		return fmt.Errorf("%w: snapshot at position 0", ErrBadValue)
	}
	if len(s.Blob) == 0 {
		return fmt.Errorf("%w: blob", ErrEmptyField)
	}
	return nil
}

// ReplHeartbeat keeps the stream's liveness observable while the journal is
// idle: the primary's head position, sent on a fixed cadence. A standby that
// misses heartbeats past its failover timeout declares the primary dead.
type ReplHeartbeat struct {
	LastSeq uint64 `json:"lastSeq"`
}

// Kind implements Payload.
func (ReplHeartbeat) Kind() Kind { return KindReplHeartbeat }

// Validate implements Payload.
func (ReplHeartbeat) Validate() error { return nil }

// ObsSubscribe announces a process to the fleet root's observability hub:
// its identity (stamped on every merged record the root serves) and the
// minimum log level it will stream. Re-subscribing after a reconnect is
// idempotent — the root replaces the identity and acks its last applied
// batch so the emitter can trim its resend buffer.
type ObsSubscribe struct {
	Proc string `json:"proc"` // process label, e.g. "gridd-cc-003"
	Role string `json:"role"` // "worker" | "standby" | "serve" | "live" | ...
	Addr string `json:"addr,omitempty"`
	// MinLevel is the health log level name the emitter streams from
	// ("debug".."error"); informational — filtering happens sender-side.
	MinLevel string `json:"minLevel,omitempty"`
}

// Kind implements Payload.
func (ObsSubscribe) Kind() Kind { return KindObsSubscribe }

// Validate implements Payload.
func (s ObsSubscribe) Validate() error {
	if s.Proc == "" {
		return fmt.Errorf("%w: proc", ErrEmptyField)
	}
	if s.Role == "" {
		return fmt.Errorf("%w: role", ErrEmptyField)
	}
	return nil
}

// ObsMetricSample is one rendered metric series: the Prometheus exposition
// name with its labels, e.g. `grid_shard_load_kwh{shard="2"}`, and the
// latest value. The root re-labels each sample with the sending process.
type ObsMetricSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// ObsLogEvent is one structured health log event in transit: the logger's
// ring entry with its fields pre-rendered to a JSON object.
type ObsLogEvent struct {
	TsUs      int64           `json:"tsUs"`
	Level     string          `json:"level"`
	Component string          `json:"component"`
	Msg       string          `json:"msg"`
	Fields    json.RawMessage `json:"fields,omitempty"`
}

// ObsSpan is one completed trace span in transit — the trace ring's
// rendered record shape (hex ids), so the root can stitch cross-process
// trees without re-deriving anything. The root stamps the sender's proc
// label on each span it merges.
type ObsSpan struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Agent   string `json:"agent,omitempty"`
	Session string `json:"session,omitempty"`
	Shard   string `json:"shard,omitempty"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
}

// ObsBatch carries one flush of a process's observability state. Batches are
// sequenced per connection-lifetime and resent until acked, so a root
// restart loses at most what the emitter's bounded resend buffer had to
// shed (the Missed counters account for that shedding explicitly).
type ObsBatch struct {
	Seq     uint64 `json:"seq"`
	Closing bool   `json:"closing,omitempty"` // final flush before a clean exit

	Metrics []ObsMetricSample `json:"metrics,omitempty"`
	Logs    []ObsLogEvent     `json:"logs,omitempty"`
	Spans   []ObsSpan         `json:"spans,omitempty"`

	// MissedLogs/MissedSpans count ring entries that wrapped (or were shed
	// under backpressure) before this flush could drain them.
	MissedLogs  uint64 `json:"missedLogs,omitempty"`
	MissedSpans uint64 `json:"missedSpans,omitempty"`
}

// Kind implements Payload.
func (ObsBatch) Kind() Kind { return KindObsBatch }

// Validate implements Payload. An otherwise-empty batch is a keepalive —
// it still advances the root's silence gauge.
func (b ObsBatch) Validate() error {
	if b.Seq == 0 {
		return fmt.Errorf("%w: seq 0 (batch sequences count from 1)", ErrBadValue)
	}
	return nil
}

// ObsAck reports the highest batch the root has merged. The emitter drops
// acked batches from its resend buffer; correctness never depends on it —
// every surface the root serves is explicitly lossy-but-accounted.
type ObsAck struct {
	Seq uint64 `json:"seq"`
}

// Kind implements Payload.
func (ObsAck) Kind() Kind { return KindObsAck }

// Validate implements Payload.
func (a ObsAck) Validate() error {
	if a.Seq == 0 {
		return fmt.Errorf("%w: ack of seq 0", ErrBadValue)
	}
	return nil
}

// Envelope wraps a payload with routing metadata.
type Envelope struct {
	From    string          `json:"from"`
	To      string          `json:"to"` // "" means broadcast
	Session string          `json:"session"`
	Kind    Kind            `json:"kind"`
	Body    json.RawMessage `json:"body"`

	// TraceID/SpanID carry the distributed-tracing context across process
	// boundaries (internal/trace). Zero means untraced; the fields are
	// omitted from both codecs so untraced envelopes stay byte-identical
	// to the pre-tracing wire format and v1 JSON peers never see them.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// Traced reports whether the envelope carries a trace context.
func (e Envelope) Traced() bool { return e.TraceID != 0 }

// NewEnvelope validates the payload and wraps it.
func NewEnvelope(from, to, session string, p Payload) (Envelope, error) {
	if from == "" {
		return Envelope{}, fmt.Errorf("%w: from", ErrEmptyField)
	}
	if session == "" {
		return Envelope{}, fmt.Errorf("%w: session", ErrEmptyField)
	}
	if err := p.Validate(); err != nil {
		return Envelope{}, err
	}
	body, err := json.Marshal(p)
	if err != nil {
		return Envelope{}, fmt.Errorf("message: marshal body: %w", err)
	}
	return Envelope{From: from, To: to, Session: session, Kind: p.Kind(), Body: body}, nil
}

// Decode unmarshals and validates the payload according to the envelope's
// kind tag.
func (e Envelope) Decode() (Payload, error) {
	var p Payload
	switch e.Kind {
	case KindOffer:
		p = &OfferTerms{}
	case KindBidRequest:
		p = &BidRequest{}
	case KindRewardTable:
		p = &RewardTable{}
	case KindOfferReply:
		p = &OfferReply{}
	case KindEnergyBid:
		p = &EnergyBid{}
	case KindCutDownBid:
		p = &CutDownBid{}
	case KindAward:
		p = &Award{}
	case KindInfoRequest:
		p = &InfoRequest{}
	case KindInfoReply:
		p = &InfoReply{}
	case KindSessionEnd:
		p = &SessionEnd{}
	case KindMeterBatch:
		p = &MeterBatch{}
	case KindReplSubscribe:
		p = &ReplSubscribe{}
	case KindReplBatch:
		p = &ReplBatch{}
	case KindReplAck:
		p = &ReplAck{}
	case KindReplSnapshot:
		p = &ReplSnapshot{}
	case KindReplHeartbeat:
		p = &ReplHeartbeat{}
	case KindObsSubscribe:
		p = &ObsSubscribe{}
	case KindObsBatch:
		p = &ObsBatch{}
	case KindObsAck:
		p = &ObsAck{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, e.Kind)
	}
	if err := json.Unmarshal(e.Body, p); err != nil {
		return nil, fmt.Errorf("message: decode %s: %w", e.Kind, err)
	}
	val := deref(p)
	if err := val.Validate(); err != nil {
		return nil, err
	}
	return val, nil
}

// deref converts the pointer targets used for unmarshalling back to the
// value types the rest of the system passes around.
func deref(p Payload) Payload {
	switch v := p.(type) {
	case *OfferTerms:
		return *v
	case *BidRequest:
		return *v
	case *RewardTable:
		return *v
	case *OfferReply:
		return *v
	case *EnergyBid:
		return *v
	case *CutDownBid:
		return *v
	case *Award:
		return *v
	case *InfoRequest:
		return *v
	case *InfoReply:
		return *v
	case *SessionEnd:
		return *v
	case *MeterBatch:
		return *v
	case *ReplSubscribe:
		return *v
	case *ReplBatch:
		return *v
	case *ReplAck:
		return *v
	case *ReplSnapshot:
		return *v
	case *ReplHeartbeat:
		return *v
	case *ObsSubscribe:
		return *v
	case *ObsBatch:
		return *v
	case *ObsAck:
		return *v
	default:
		return p
	}
}

// Marshal renders the envelope as a single JSON document.
func (e Envelope) Marshal() ([]byte, error) {
	return json.Marshal(e)
}

// Unmarshal parses an envelope from JSON and checks the kind tag is known
// and the body decodes.
func Unmarshal(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("message: unmarshal envelope: %w", err)
	}
	if _, err := e.Decode(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}
