// Package loadbalance is a multi-agent system for load balancing of
// electricity use, reproducing Brazier, Cornelissen, Gustavsson, Jonker,
// Lindeberg, Polak & Treur, "Agents Negotiating for Load Balancing of
// Electricity Use" (ICDCS 1998).
//
// A Utility Agent predicts a consumption peak and negotiates cut-downs with
// a fleet of Customer Agents under the monotonic concession protocol, using
// any of the paper's three announcement methods: a one-shot offer, iterated
// requests for bids, or (the prototype's method) announced reward tables
// that grow by
//
//	new_reward = reward + beta · overuse · (1 − reward/max_reward) · reward
//
// until the peak is acceptable or the rewards saturate.
//
// Quickstart:
//
//	s, _ := loadbalance.PaperScenario()     // the paper's Figures 6-9 setup
//	res, _ := loadbalance.Run(s)            // goroutine-per-agent negotiation
//	fmt.Println(loadbalance.Render(res))    // per-round tables, bids, awards
//
// Synthetic fleets come from the household simulator:
//
//	s, _ := loadbalance.PopulationScenario(loadbalance.PopulationConfig{
//	        N: 200, Seed: 1, Margin: 0.2,
//	})
//	res, _ := loadbalance.Run(s)
//
// Large fleets negotiate hierarchically: Concentrator Agents each front a
// shard of customers and bid their shard's aggregated cut-down upward, so
// the Utility Agent sees K concentrators instead of N customers:
//
//	s, _ := loadbalance.SyntheticScenario(loadbalance.SyntheticConfig{N: 100000, Seed: 1})
//	res, _ := loadbalance.RunSharded(loadbalance.ClusterConfig{Scenario: s, Shards: 64})
//
// Every negotiation trace can be verified against the protocol's formal
// properties (monotonicity, termination, ceilings) with VerifyTrace.
package loadbalance

import (
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/protocol"
	"loadbalance/internal/sim"
	"loadbalance/internal/utilityagent"
	"loadbalance/internal/verify"
)

// Scenario describes one negotiation: the window, capacity, parameters and
// customer fleet.
type Scenario = core.Scenario

// CustomerSpec declares one Customer Agent of a Scenario.
type CustomerSpec = core.CustomerSpec

// PopulationConfig parameterises synthetic-fleet generation.
type PopulationConfig = core.PopulationConfig

// Result is a finished negotiation: outcome, per-round history, awards and
// transport statistics.
type Result = core.Result

// Params are the Utility Agent's reward-table negotiation parameters
// (beta, max_reward, epsilon, allowed overuse).
type Params = protocol.Params

// Method selects the announcement method (offer, request for bids, reward
// tables, or automatic selection).
type Method = utilityagent.Method

// Announcement methods.
const (
	MethodAuto           = utilityagent.MethodAuto
	MethodOffer          = utilityagent.MethodOffer
	MethodRequestForBids = utilityagent.MethodRequestForBids
	MethodRewardTable    = utilityagent.MethodRewardTable
)

// Preferences is a customer's private cut-down-reward table.
type Preferences = customeragent.Preferences

// Strategy is a customer's bidding strategy.
type Strategy = customeragent.Strategy

// Bidding strategies.
const (
	StrategyGreedy      = customeragent.StrategyGreedy
	StrategyIncremental = customeragent.StrategyIncremental
	StrategyHoldout     = customeragent.StrategyHoldout
)

// VerifyReport is the outcome of checking a trace against the protocol
// properties.
type VerifyReport = verify.Report

// PaperScenario returns the calibrated reproduction of the paper's
// prototype run (Figures 6-9): capacity 100, predicted usage 135, reward 17
// at cut-down 0.4 in round 1 growing to ≈24.8 in round 3.
func PaperScenario() (Scenario, error) { return core.PaperScenario() }

// PaperParams returns the calibrated negotiation parameters (beta 1.85,
// max_reward slope 125, epsilon 1, allowed overuse 0.13).
func PaperParams() Params { return core.PaperParams() }

// PopulationScenario synthesises a fleet of households whose devices
// determine both predicted load and preference tables.
func PopulationScenario(cfg PopulationConfig) (Scenario, error) {
	return core.PopulationScenario(cfg)
}

// Run executes a scenario: one goroutine per agent, message passing on an
// in-process bus, and a full trace in the result.
func Run(s Scenario) (*Result, error) { return core.Run(s) }

// ClusterConfig parameterises a hierarchical (sharded) negotiation: the flat
// scenario plus the number of Concentrator Agents fronting it.
type ClusterConfig = cluster.Config

// ClusterResult is a finished hierarchical negotiation, including per-tier
// transport statistics.
type ClusterResult = cluster.Result

// SyntheticConfig parameterises the O(N) scale-test fleet generator.
type SyntheticConfig = core.SyntheticConfig

// RunSharded executes a scenario through a 2-level concentrator tree: the
// Utility Agent negotiates with K Concentrator Agents, each fronting a shard
// of Customer Agents on its own bus. A seeded scenario reaches the same
// terminal outcome as Run, with per-round root work dropping from O(N) to
// O(K) and shards running in parallel.
func RunSharded(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// BusStats holds one transport's cumulative message counters.
type BusStats = bus.Stats

// DistributedConfig parameterises a negotiation whose concentrator tier runs
// behind TCP connections — the multi-process deployment.
type DistributedConfig = cluster.DistributedConfig

// DistributedResult extends ClusterResult with the transport's frame
// counters and the awards exactly as delivered over the tree.
type DistributedResult = cluster.DistributedResult

// RunDistributed executes a scenario through a concentrator tree whose tiers
// are joined by TCP on the binary wire protocol: root bus ⇄ root server ⇄ K
// concentrator connections ⇄ member server ⇄ the customers. A seeded
// scenario produces awards byte-identical to Run's.
func RunDistributed(cfg DistributedConfig) (*DistributedResult, error) {
	return cluster.RunDistributed(cfg)
}

// SyntheticScenario builds an N-customer scale-test fleet (seeded variations
// of the paper's customer) without the cost of the household simulator.
func SyntheticScenario(cfg SyntheticConfig) (Scenario, error) {
	return core.SyntheticScenario(cfg)
}

// NewPreferences builds a customer preference table from explicit minimum
// rewards per cut-down level (missing levels are infeasible).
func NewPreferences(levels []float64, required map[float64]float64) (Preferences, error) {
	return customeragent.NewPreferences(levels, required)
}

// VerifyTrace checks a reward-table negotiation history against the
// monotonic concession properties: table monotonicity, bid monotonicity,
// termination, contiguous rounds, reward ceilings and overuse consistency.
func VerifyTrace(res *Result, p Params) VerifyReport {
	return verify.CheckRewardTableTrace(res.History, p)
}

// Render formats a result as the textual counterpart of the prototype's
// GUI screens.
func Render(res *Result) string { return sim.RenderResult(res) }
