// Package market implements the computational-market approach to power load
// management of Ygge & Akkermans (ICMAS'96, [12] in the paper's reference
// list; the HOMEBOTS system of [1]). The paper's Discussion names it as the
// alternative negotiation strategy "currently being explored"; implementing
// it gives the reproduction its comparison baseline (experiment E12).
//
// Model: each customer agent submits a demand function — how much energy it
// wants to consume at a given price — derived from the same device comfort
// costs that drive the reward-table preferences. The utility's supply is the
// merit-order production stack. A Walrasian auctioneer finds the
// market-clearing price by bisection; customers consume their demand at that
// price, which sheds exactly the load whose marginal comfort value is below
// the clearing price.
//
// Where the reward-table protocol iterates announcements over rounds, the
// market clears in one price-discovery pass; the comparison axes are the
// same as E5's: reduction achieved, information exchanged and the transfer
// paid.
package market

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"loadbalance/internal/units"
)

// Errors reported by the package.
var (
	ErrBadDemand   = errors.New("market: invalid demand function")
	ErrNoAgents    = errors.New("market: no demand agents")
	ErrNoClearing  = errors.New("market: bisection failed to bracket a clearing price")
	ErrBadCapacity = errors.New("market: capacity must be positive")
)

// DemandSegment is one step of a customer's demand function: Energy that the
// customer values at Value per kWh. The customer consumes the segment iff
// the price is at most its value.
type DemandSegment struct {
	Energy units.Energy
	Value  float64 // willingness to pay per kWh
}

// Demand is a customer's full demand function: segments sorted by
// descending value (essential load first).
type Demand struct {
	Customer string
	Segments []DemandSegment
}

// NewDemand validates and normalises a demand function.
func NewDemand(customer string, segments []DemandSegment) (Demand, error) {
	if customer == "" {
		return Demand{}, fmt.Errorf("%w: empty customer", ErrBadDemand)
	}
	if len(segments) == 0 {
		return Demand{}, fmt.Errorf("%w: no segments", ErrBadDemand)
	}
	segs := append([]DemandSegment(nil), segments...)
	for _, s := range segs {
		if s.Energy <= 0 {
			return Demand{}, fmt.Errorf("%w: non-positive segment energy", ErrBadDemand)
		}
		if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return Demand{}, fmt.Errorf("%w: segment value %v", ErrBadDemand, s.Value)
		}
	}
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Value > segs[j].Value })
	return Demand{Customer: customer, Segments: segs}, nil
}

// At returns the energy the customer demands at a price.
func (d Demand) At(price float64) units.Energy {
	var total units.Energy
	for _, s := range d.Segments {
		if s.Value >= price {
			total = total.Add(s.Energy)
		}
	}
	return total
}

// Total returns the customer's demand at price zero (everything).
func (d Demand) Total() units.Energy {
	var total units.Energy
	for _, s := range d.Segments {
		total = total.Add(s.Energy)
	}
	return total
}

// FromComfortCosts derives a demand function from the reward-table world's
// inputs: the customer's total expected use, the sheddable tranches with
// their comfort costs, and the base retail price. The inflexible remainder
// is valued at essentialValue (effectively price-insensitive); each
// sheddable tranche is valued at base price + its comfort cost per kWh —
// the price above which shedding beats consuming.
func FromComfortCosts(customer string, totalUse units.Energy, sheddable []DemandSegment, basePrice, essentialValue float64) (Demand, error) {
	var flexible units.Energy
	segs := make([]DemandSegment, 0, len(sheddable)+1)
	for _, s := range sheddable {
		flexible = flexible.Add(s.Energy)
		segs = append(segs, DemandSegment{Energy: s.Energy, Value: basePrice + s.Value})
	}
	if flexible.KWhs() > totalUse.KWhs()+1e-9 {
		return Demand{}, fmt.Errorf("%w: sheddable %v exceeds total %v", ErrBadDemand, flexible, totalUse)
	}
	if essential := totalUse.Sub(flexible); essential > 0 {
		segs = append(segs, DemandSegment{Energy: essential, Value: essentialValue})
	}
	return NewDemand(customer, segs)
}

// Clearing is the auction result.
type Clearing struct {
	Price       float64
	TotalDemand units.Energy
	Capacity    units.Energy
	// Allocations maps each customer to its consumption at the price.
	Allocations map[string]units.Energy
	// Shed is the total energy priced out of the market.
	Shed units.Energy
	// Iterations is the number of bisection steps used.
	Iterations int
}

// Auctioneer clears a single-interval electricity market.
type Auctioneer struct {
	// MaxIterations bounds the bracketing and bisection loops (default 64
	// each; 64 bisections give ~1e-19 relative price precision).
	MaxIterations int
}

// Clear finds the lowest price at which aggregate demand fits within
// capacity. When even the highest segment value cannot push demand below
// capacity (all load essential), the clearing price settles above every
// value and customers keep only what fits — the auctioneer reports the
// overflow in TotalDemand vs Capacity.
func (a Auctioneer) Clear(demands []Demand, capacity units.Energy) (Clearing, error) {
	if len(demands) == 0 {
		return Clearing{}, ErrNoAgents
	}
	if capacity <= 0 {
		return Clearing{}, ErrBadCapacity
	}
	maxIter := a.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}

	aggregate := func(price float64) units.Energy {
		var total units.Energy
		for _, d := range demands {
			total = total.Add(d.At(price))
		}
		return total
	}

	// At price 0 everyone demands everything.
	lo, hi := 0.0, 1.0
	if aggregate(lo) <= capacity {
		return a.result(demands, capacity, lo, 0), nil // no scarcity at all
	}
	// Find an upper bracket: a price high enough to clear.
	iter := 0
	for aggregate(hi) > capacity {
		hi *= 2
		iter++
		if iter > maxIter {
			// Demand is perfectly inelastic above capacity.
			return Clearing{}, fmt.Errorf("%w: demand %v never fits capacity %v",
				ErrNoClearing, aggregate(hi), capacity)
		}
	}
	// Bisect to the lowest clearing price. The invariant is that hi always
	// clears (demand at hi fits capacity) while lo does not.
	for i := 0; i < maxIter && hi-lo > 1e-9; i++ {
		iter++
		mid := (lo + hi) / 2
		if aggregate(mid) > capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return a.result(demands, capacity, hi, iter), nil
}

// result assembles the clearing at a given price.
func (a Auctioneer) result(demands []Demand, capacity units.Energy, price float64, iterations int) Clearing {
	c := Clearing{
		Price:       price,
		Capacity:    capacity,
		Allocations: make(map[string]units.Energy, len(demands)),
		Iterations:  iterations,
	}
	var total, shed units.Energy
	for _, d := range demands {
		take := d.At(price)
		c.Allocations[d.Customer] = take
		total = total.Add(take)
		shed = shed.Add(d.Total().Sub(take))
	}
	c.TotalDemand = total
	c.Shed = shed
	return c
}

// ConsumerSurplus returns the aggregate surplus at the clearing: the value
// consumers place on their allocation minus what they pay.
func (c Clearing) ConsumerSurplus(demands []Demand) float64 {
	surplus := 0.0
	for _, d := range demands {
		for _, s := range d.Segments {
			if s.Value >= c.Price {
				surplus += (s.Value - c.Price) * s.Energy.KWhs()
			}
		}
	}
	return surplus
}

// OveruseRatio reports the residual overuse after clearing, relative to
// capacity — directly comparable to the protocol sessions' ratio.
func (c Clearing) OveruseRatio() float64 {
	if c.Capacity == 0 {
		return 0
	}
	return (c.TotalDemand.KWhs() - c.Capacity.KWhs()) / c.Capacity.KWhs()
}
