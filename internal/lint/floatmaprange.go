package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatMapRange returns the floatmaprange analyzer.
//
// Invariant guarded: float accumulation must run in deterministic order.
// Go map iteration order is deliberately randomized, and float addition is
// not associative, so `for _, v := range m { total += f(v) }` makes two
// runs of the same seeded scenario disagree in the last ulp — and every
// reward table derived from the total with them. PR 3 burned a full
// debugging cycle on exactly this class before protocol.PredictedOveruse
// switched to sorted-key summation.
//
// The analyzer flags any `for … range` statement over a map whose body
// accumulates into a float-typed variable: `x += …`, `x -= …`, `x *= …`,
// `x /= …`, `x = x + …` / `x = f(x, …)` (min/max/method-chain
// accumulators), or append to a float slice (the append-then-sum pattern).
// The fix is to collect the keys, sort them, and range over the sorted
// slice; a provably order-independent accumulation can carry
// //gridlint:allow floatmaprange(why it is order-independent).
func FloatMapRange() *Analyzer {
	return &Analyzer{
		Name: "floatmaprange",
		Doc:  "flags order-sensitive float accumulation inside map-range loops",
		Run:  runFloatMapRange,
	}
}

func runFloatMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested range gets its own visit from runFloatMapRange;
			// accumulations inside it are attributed to the inner loop
			// (sorting the outer keys would not fix them anyway, and
			// attributing them twice would demand duplicate annotations).
			if s != rng {
				return false
			}
		case *ast.FuncLit:
			// A closure's body does not necessarily execute per iteration.
			return false
		case *ast.AssignStmt:
			checkAccumAssign(pass, rng, s)
		case *ast.CallExpr:
			checkAccumAppend(pass, rng, s)
		}
		return true
	})
}

func checkAccumAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if t, ok := info.Types[lhs]; ok && isFloat(t.Type) && declaredOutside(pass, rng, lhs) {
				pass.Reportf(as.Pos(),
					"float accumulation (%s) inside range over map %s: map order is random and float %s is order-sensitive; iterate sorted keys",
					as.Tok, types.ExprString(rng.X), as.Tok)
				return
			}
		}
	case token.ASSIGN:
		// x = x + v, x = math.Min(x, v), acc = acc.Add(v): a float-typed
		// LHS that also appears in the RHS is an accumulator.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			t, ok := info.Types[lhs]
			if !ok || !isFloat(t.Type) || !declaredOutside(pass, rng, lhs) {
				continue
			}
			lhsObj := lhsObject(info, lhs)
			if lhsObj == nil {
				continue
			}
			if mentions(info, as.Rhs[i], map[types.Object]bool{lhsObj: true}) {
				pass.Reportf(as.Pos(),
					"float accumulator %s updated from itself inside range over map %s: map order is random; iterate sorted keys",
					types.ExprString(lhs), types.ExprString(rng.X))
				return
			}
		}
	}
}

// checkAccumAppend flags append(s, v…) where s has float elements: the
// appended slice is almost always summed or diffed later, and its order is
// the map's random iteration order.
func checkAccumAppend(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return
	}
	if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() != types.Universe {
		return
	}
	t, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	slice, ok := t.Type.Underlying().(*types.Slice)
	if !ok || !isFloat(slice.Elem()) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to float slice %s inside range over map %s collects values in random map order; iterate sorted keys",
		types.ExprString(call.Args[0]), types.ExprString(rng.X))
}

// declaredOutside reports whether the variable behind expr is declared
// outside the range statement: accumulating into a loop-local resets each
// iteration and is order-independent.
func declaredOutside(pass *Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	obj := lhsObject(pass.TypesInfo, expr)
	if obj == nil {
		// Field or index accumulators (out.Total += v, sums[k] += v): the
		// container outlives the loop; treat as outside.
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// lhsObject resolves the root object an assignable expression writes
// through: the object of `x`, `x.f`, `x[i]`.
func lhsObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
