package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"loadbalance/internal/message"
)

// Wire protocol v2: length-prefixed binary frames. A connection opens with a
// two-byte preamble (magic, version), then exchanges frames:
//
//	uvarint(1+len(payload))  kind byte  payload bytes
//
// Frame kinds are hello (client → server: agent name), hello-ack (server →
// client: negotiated version), envelope (either direction: a binary
// message.Envelope) and error (server → client: terminal error text, the
// connection closes after it). Envelope payloads use the single-pass binary
// codec in internal/message, so nothing on the wire is JSON-in-JSON.
//
// v1 connections (newline-delimited JSON, first byte '{') are still accepted
// by the server; the sniff is unambiguous because v2's magic byte can never
// begin a JSON document.

// Protocol constants.
const (
	// WireVersion is the highest protocol version this build speaks.
	WireVersion = 2
	// wireMagic opens every v2 connection. 0xB5 ("bus") is not valid UTF-8
	// JSON start, so the server can sniff v1 clients from the first byte.
	wireMagic byte = 0xB5
	// DefaultMaxFrame bounds a single frame (kind + payload). Reward tables
	// are a few kB; a megabyte frame is a protocol error, not a message.
	DefaultMaxFrame = 1 << 20
)

// Frame kinds.
const (
	frameHello    byte = 1
	frameHelloAck byte = 2
	frameEnvelope byte = 3
	frameError    byte = 4
)

// Wire protocol errors.
var (
	ErrFrameTooLarge = errors.New("bus: frame exceeds size limit")
	ErrBadHandshake  = errors.New("bus: bad wire handshake")
	ErrRemote        = errors.New("bus: remote error")
)

// appendUvarint appends the varint encoding of v to dst.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// appendFrame appends one wire frame to dst.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = appendUvarint(dst, uint64(1+len(payload)))
	dst = append(dst, kind)
	return append(dst, payload...)
}

// EncodeEnvelopeFrame appends env as one v2 envelope frame to dst: varint
// length, kind byte, then the envelope's binary encoding, written in a
// single pass.
func EncodeEnvelopeFrame(dst []byte, env message.Envelope) []byte {
	size := env.BinarySize()
	dst = appendUvarint(dst, uint64(1+size))
	dst = append(dst, frameEnvelope)
	return env.AppendBinary(dst)
}

// DecodeEnvelopeFrame parses one v2 envelope frame produced by
// EncodeEnvelopeFrame and returns the number of bytes consumed.
func DecodeEnvelopeFrame(data []byte) (message.Envelope, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n == 0 {
		return message.Envelope{}, 0, fmt.Errorf("%w: bad frame length", ErrBadHandshake)
	}
	// Compare in uint64 before converting: a crafted 2^63-scale length must
	// error out, not overflow int and slip past the bounds check.
	if n > uint64(len(data)-used) {
		return message.Envelope{}, 0, io.ErrUnexpectedEOF
	}
	end := used + int(n)
	if data[used] != frameEnvelope {
		return message.Envelope{}, 0, fmt.Errorf("%w: frame kind %d, want envelope", ErrBadHandshake, data[used])
	}
	env, err := message.UnmarshalBinary(data[used+1 : end])
	if err != nil {
		return message.Envelope{}, 0, err
	}
	return env, end, nil
}

// readFrame reads one frame from r, rejecting frames above max bytes.
func readFrame(r *bufio.Reader, max int) (kind byte, payload []byte, n int, err error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, 0, err
	}
	if length == 0 {
		return 0, nil, 0, fmt.Errorf("%w: empty frame", ErrBadHandshake)
	}
	if length > uint64(max) {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, length, max)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	return buf[0], buf[1:], uvarintLen(length) + int(length), nil
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

// WireStats is a snapshot of one transport endpoint's frame counters. All
// counters are cumulative; Dropped counts envelopes discarded because a
// peer's bounded outbound queue was full (overload shedding, mirroring the
// in-process bus's rejected-delivery semantics).
type WireStats struct {
	FramesIn   uint64
	FramesOut  uint64
	BytesIn    uint64
	BytesOut   uint64
	Dropped    uint64 // outbound envelopes shed at a full per-connection queue
	Hellos     uint64 // accepted v2 handshakes
	LegacyConn uint64 // accepted v1 (newline-JSON) connections
	Rejected   uint64 // hello rejections (duplicate or invalid names)
	Malformed  uint64 // frames skipped as undecodable
	ProtoErrs  uint64 // sessions terminated on protocol errors (oversized frame, bad stream)
}

// wireCounters is the atomic backing store for WireStats.
type wireCounters struct {
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	dropped             atomic.Uint64
	hellos              atomic.Uint64
	legacyConn          atomic.Uint64
	rejected            atomic.Uint64
	malformed           atomic.Uint64
	protoErrs           atomic.Uint64
}

// snapshot copies the counters.
func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		FramesIn:   c.framesIn.Load(),
		FramesOut:  c.framesOut.Load(),
		BytesIn:    c.bytesIn.Load(),
		BytesOut:   c.bytesOut.Load(),
		Dropped:    c.dropped.Load(),
		Hellos:     c.hellos.Load(),
		LegacyConn: c.legacyConn.Load(),
		Rejected:   c.rejected.Load(),
		Malformed:  c.malformed.Load(),
		ProtoErrs:  c.protoErrs.Load(),
	}
}
