package sim

import (
	"fmt"
	"strings"

	"loadbalance/internal/telemetry"
)

// E14LiveGrid demonstrates continuous operation on top of the negotiated
// grid: an elastic fleet is negotiated once through the cluster tier, then
// live meters stream measured consumption tick by tick while a demand spike
// is injected into two shards. The deviation detector fires after its
// hysteresis window and only the breaching shards re-negotiate — the table
// shows the fleet's measured load exceeding the allowed-overuse target
// during the excursion and returning under it right after the incremental
// re-negotiation, with the re-negotiation counter pinned to the two spiked
// shards.
func E14LiveGrid(n, shards, ticks int, seed int64) (*Table, error) {
	if n < shards {
		n = shards
	}
	if ticks < 6 {
		ticks = 6
	}
	s, err := telemetry.ElasticFleetScenario(n, seed)
	if err != nil {
		return nil, err
	}
	spikeAt := ticks / 3
	spiked := []int{0, shards / 2}
	events := make(map[int][]telemetry.Event, len(spiked))
	for _, i := range spiked {
		events[i] = []telemetry.Event{{StartTick: spikeAt, EndTick: ticks + 1, Factor: 2.5}}
	}
	eng, err := telemetry.NewLiveEngine(telemetry.LiveConfig{
		Scenario:       s,
		Shards:         shards,
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           seed,
		ShardEvents:    events,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	defer eng.Stop()

	t := &Table{
		Name:    fmt.Sprintf("E14LiveGrid: %d customers, %d shards, 2.5x spike on shards %v from tick %d", n, shards, spiked, spikeAt),
		Columns: []string{"tick", "fleet_kwh", "target_kwh", "over_target", "max_shard_dev", "breached", "renegotiated", "reneg_total"},
		Notes:   "live metering with incremental re-negotiation: only breaching shards re-bid, the rest keep their awards",
	}
	for i := 0; i < ticks; i++ {
		rep, err := eng.Tick()
		if err != nil {
			return nil, err
		}
		maxDev := 0.0
		for j := range rep.ShardMeasured {
			if exp := rep.ShardExpected[j]; exp > 0 {
				if dev := rep.ShardMeasured[j]/exp - 1; dev > maxDev {
					maxDev = dev
				}
			}
		}
		over := "no"
		if rep.FleetKWh > rep.TargetKWh {
			over = "YES"
		}
		reneg := "-"
		if rep.Renegotiated != nil {
			reneg = fmt.Sprintf("shards %s (%s)", intsToString(rep.Renegotiated.Shards), rep.Renegotiated.Outcome)
		}
		t.AddRowF(rep.Tick, rep.FleetKWh, rep.TargetKWh, over, maxDev, intsToString(rep.Breached), reneg, eng.Renegotiations())
	}
	return t, nil
}

// intsToString renders an index list compactly ("-" when empty).
func intsToString(v []int) string {
	if len(v) == 0 {
		return "-"
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, "+")
}
