// Fixture: main packages print to the terminal as their job; structuredlog
// must stay silent.
package main

import (
	"fmt"
	"log"
)

func main() {
	fmt.Println("usage: fixture")
	log.Printf("fatal: %v", run())
}

func run() error { return nil }
