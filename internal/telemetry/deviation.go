package telemetry

import (
	"fmt"
	"math"
)

// DeviationConfig parameterises breach detection.
type DeviationConfig struct {
	// AbsKWh is the minimum absolute per-tick deviation (|measured −
	// expected|) considered significant; guards against relative triggers on
	// near-zero expectations.
	AbsKWh float64
	// Rel is the minimum relative deviation (fraction of the expected load)
	// considered significant.
	Rel float64
	// BreachTicks is the hysteresis going up: the deviation must persist
	// this many consecutive ticks before a breach fires (default 2), so a
	// single jittery sample never triggers a re-negotiation.
	BreachTicks int
	// ClearTicks is the hysteresis going down: a fired shard re-arms after
	// this many consecutive in-threshold ticks even without a re-negotiation
	// reset (default 2).
	ClearTicks int
}

// withDefaults fills the hysteresis defaults.
func (c DeviationConfig) withDefaults() DeviationConfig {
	if c.BreachTicks <= 0 {
		c.BreachTicks = 2
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 2
	}
	return c
}

// validate checks the thresholds.
func (c DeviationConfig) validate() error {
	if c.AbsKWh < 0 || math.IsNaN(c.AbsKWh) {
		return fmt.Errorf("%w: abs threshold %v", ErrBadConfig, c.AbsKWh)
	}
	if c.Rel < 0 || math.IsNaN(c.Rel) {
		return fmt.Errorf("%w: rel threshold %v", ErrBadConfig, c.Rel)
	}
	if c.AbsKWh == 0 && c.Rel == 0 {
		return fmt.Errorf("%w: both deviation thresholds zero", ErrBadConfig)
	}
	return nil
}

// DeviationDetector watches each shard's measured load against its
// negotiated expectation and fires when a significant deviation persists.
// Hysteresis in both directions keeps the live loop stable: short noise
// never re-negotiates, and a shard that just re-negotiated starts from a
// clean slate via Reset.
type DeviationDetector struct {
	cfg      DeviationConfig
	over     []int  // consecutive out-of-threshold ticks per shard
	under    []int  // consecutive in-threshold ticks per breached shard
	breached []bool // latched breach state per shard
}

// NewDeviationDetector constructs a detector over the given shard count.
func NewDeviationDetector(shards int, cfg DeviationConfig) (*DeviationDetector, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadConfig, shards)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &DeviationDetector{
		cfg:      cfg,
		over:     make([]int, shards),
		under:    make([]int, shards),
		breached: make([]bool, shards),
	}, nil
}

// Significant reports whether a measured/expected pair deviates beyond both
// thresholds.
func (d *DeviationDetector) Significant(measured, expected float64) bool {
	dev := math.Abs(measured - expected)
	if dev <= d.cfg.AbsKWh {
		return false
	}
	if expected > 0 && dev <= d.cfg.Rel*expected {
		return false
	}
	return true
}

// Observe records one shard-tick observation and reports whether a breach
// fires on it (the transition into the latched state, exactly once per
// excursion).
func (d *DeviationDetector) Observe(shard int, measured, expected float64) bool {
	if d.Significant(measured, expected) {
		d.over[shard]++
		d.under[shard] = 0
		if !d.breached[shard] && d.over[shard] >= d.cfg.BreachTicks {
			d.breached[shard] = true
			return true
		}
		return false
	}
	d.over[shard] = 0
	if d.breached[shard] {
		d.under[shard]++
		if d.under[shard] >= d.cfg.ClearTicks {
			d.breached[shard] = false
			d.under[shard] = 0
		}
	}
	return false
}

// Breached reports a shard's latched breach state.
func (d *DeviationDetector) Breached(shard int) bool { return d.breached[shard] }

// DetectorState is the detector's full hysteresis state, exported for
// durability snapshots.
type DetectorState struct {
	Over     []int  `json:"over"`
	Under    []int  `json:"under"`
	Breached []bool `json:"breached"`
}

// State copies the detector's hysteresis state.
func (d *DeviationDetector) State() DetectorState {
	return DetectorState{
		Over:     append([]int(nil), d.over...),
		Under:    append([]int(nil), d.under...),
		Breached: append([]bool(nil), d.breached...),
	}
}

// Restore replaces the detector's hysteresis state with a snapshot's.
func (d *DeviationDetector) Restore(st DetectorState) error {
	if len(st.Over) != len(d.over) || len(st.Under) != len(d.under) || len(st.Breached) != len(d.breached) {
		return fmt.Errorf("%w: restoring detector state over %d shards into %d", ErrBadConfig, len(st.Over), len(d.over))
	}
	copy(d.over, st.Over)
	copy(d.under, st.Under)
	copy(d.breached, st.Breached)
	return nil
}

// Reset clears a shard's state after a re-negotiation: the new agreement is
// the new baseline, so detection starts over.
func (d *DeviationDetector) Reset(shard int) {
	d.over[shard] = 0
	d.under[shard] = 0
	d.breached[shard] = false
}
