package protocol

import (
	"errors"
	"testing"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// tenCustomers builds the Figure 6 population: ten identical customers with
// predicted and allowed use 13.5 against a normal capacity of 100.
func tenCustomers() map[string]CustomerLoad {
	loads := make(map[string]CustomerLoad, 10)
	for i := 0; i < 10; i++ {
		loads[string(rune('a'+i))] = CustomerLoad{Predicted: 13.5, Allowed: 13.5}
	}
	return loads
}

func newSession(t *testing.T, p Params) *RTSession {
	t.Helper()
	tab, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRTSession("s1", testWindow(), p, tab, tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRTSessionValidation(t *testing.T) {
	tab, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRTSession("", testWindow(), paperParams(), tab, tenCustomers(), 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("empty id should fail")
	}
	if _, err := NewRTSession("s", testWindow(), Params{}, tab, tenCustomers(), 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("invalid params should fail")
	}
	if _, err := NewRTSession("s", testWindow(), paperParams(), Table{}, tenCustomers(), 100); !errors.Is(err, ErrBadTable) {
		t.Fatal("empty table should fail")
	}
	if _, err := NewRTSession("s", testWindow(), paperParams(), tab, nil, 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("no customers should fail")
	}
}

func TestAnnounceCarriesRoundAndTable(t *testing.T) {
	s := newSession(t, paperParams())
	msg, err := s.Announce()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Round != 1 {
		t.Fatalf("round = %d, want 1", msg.Round)
	}
	if r, ok := msg.RewardFor(0.4); !ok || !units.NearlyEqual(r, 17, 1e-9) {
		t.Fatalf("announced reward(0.4) = %v, want 17", r)
	}
	if err := msg.Validate(); err != nil {
		t.Fatalf("announcement invalid: %v", err)
	}
}

func TestRecordBidValidation(t *testing.T) {
	s := newSession(t, paperParams())
	tests := []struct {
		name     string
		customer string
		bid      message.CutDownBid
		wantErr  error
	}{
		{name: "ok", customer: "a", bid: message.CutDownBid{Round: 1, CutDown: 0.2}},
		{name: "unknown customer", customer: "zz", bid: message.CutDownBid{Round: 1, CutDown: 0.2}, wantErr: ErrUnknownCustomer},
		{name: "wrong round", customer: "b", bid: message.CutDownBid{Round: 2, CutDown: 0.2}, wantErr: ErrWrongRound},
		{name: "level not announced", customer: "b", bid: message.CutDownBid{Round: 1, CutDown: 0.25}, wantErr: ErrBadTable},
		{name: "invalid payload", customer: "b", bid: message.CutDownBid{Round: 1, CutDown: 1.5}, wantErr: message.ErrBadFraction},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.RecordBid(tt.customer, tt.bid); !errors.Is(err, tt.wantErr) {
				t.Fatalf("RecordBid = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestMonotonicConcessionEnforced(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0.0001 // keep negotiating
	s := newSession(t, p)
	if err := s.RecordBid("a", message.CutDownBid{Round: 1, CutDown: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	// Round 2: lowering the bid to 0.2 violates monotonic concession.
	if err := s.RecordBid("a", message.CutDownBid{Round: 2, CutDown: 0.2}); !errors.Is(err, ErrNonMonotonicBid) {
		t.Fatalf("regressing bid error = %v, want ErrNonMonotonicBid", err)
	}
	// Standing still and stepping forward are both legal.
	if err := s.RecordBid("a", message.CutDownBid{Round: 2, CutDown: 0.3}); err != nil {
		t.Fatalf("stand still rejected: %v", err)
	}
	if err := s.RecordBid("a", message.CutDownBid{Round: 2, CutDown: 0.4}); err != nil {
		t.Fatalf("step forward rejected: %v", err)
	}
}

func TestCloseRoundComputesOveruse(t *testing.T) {
	s := newSession(t, paperParams())
	// Five customers bid 0.2: usage 5×10.8 + 5×13.5 = 121.5, overuse 21.5.
	for _, c := range []string{"a", "b", "c", "d", "e"} {
		if err := s.RecordBid(c, message.CutDownBid{Round: 1, CutDown: 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(rec.OveruseKWh, 21.5, 1e-9) {
		t.Fatalf("overuse = %v, want 21.5", rec.OveruseKWh)
	}
	if !units.NearlyEqual(rec.OveruseRatio, 0.215, 1e-12) {
		t.Fatalf("ratio = %v, want 0.215", rec.OveruseRatio)
	}
	if rec.Outcome != OutcomeContinue {
		t.Fatalf("outcome = %v, want continue", rec.Outcome)
	}
	if s.Round() != 2 {
		t.Fatalf("round = %d, want 2", s.Round())
	}
	// The next announcement must dominate the first (monotonic concession).
	if !s.Table().DominatesOrEqual(rec.Table) {
		t.Fatal("round-2 table must dominate round-1 table")
	}
}

func TestConvergenceOnAllowedOveruse(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0.15
	s := newSession(t, p)
	// All ten bid 0.3: usage 10×9.45 = 94.5, overuse −5.5 → converged.
	for c := range tenCustomers() {
		if err := s.RecordBid(c, message.CutDownBid{Round: 1, CutDown: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeConverged {
		t.Fatalf("outcome = %v, want converged", rec.Outcome)
	}
	if !s.Closed() || s.FinalOutcome() != OutcomeConverged {
		t.Fatal("session should be closed as converged")
	}
	if _, err := s.Announce(); !errors.Is(err, ErrSessionClosed) {
		t.Fatal("announce after close should fail")
	}
	if _, err := s.CloseRound(); !errors.Is(err, ErrSessionClosed) {
		t.Fatal("close after close should fail")
	}
}

func TestCeilingTermination(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0 // unreachable: demand always above capacity
	p.MaxRounds = 50
	s := newSession(t, p)
	// Nobody ever bids: overuse stays 0.35 and the table must eventually
	// saturate, ending the session by the epsilon/ceiling rule.
	rounds := 0
	for !s.Closed() {
		if _, err := s.CloseRound(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 60 {
			t.Fatal("session never terminated")
		}
	}
	if got := s.FinalOutcome(); got != OutcomeCeiling {
		t.Fatalf("outcome = %v, want ceiling", got)
	}
}

func TestMaxRoundsSafetyNet(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0
	p.Epsilon = 0 // never triggers the delta rule
	p.MaxRounds = 3
	s := newSession(t, p)
	for !s.Closed() {
		if _, err := s.CloseRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Epsilon 0 means the ceiling rule can only fire exactly at the cap;
	// the round bound must end the session first.
	if got := s.FinalOutcome(); got != OutcomeMaxRounds {
		t.Fatalf("outcome = %v, want max rounds", got)
	}
	if got := len(s.History()); got != 3 {
		t.Fatalf("history length = %d, want 3", got)
	}
}

func TestQuorum(t *testing.T) {
	p := paperParams()
	p.MinResponses = 3
	s := newSession(t, p)
	if s.QuorumReached() {
		t.Fatal("no bids yet")
	}
	for i, c := range []string{"a", "b", "c"} {
		if err := s.RecordBid(c, message.CutDownBid{Round: 1, CutDown: 0.1}); err != nil {
			t.Fatal(err)
		}
		if got, want := s.QuorumReached(), i == 2; got != want {
			t.Fatalf("quorum after %d bids = %v", i+1, got)
		}
	}
	// MinResponses 0 means everyone.
	s2 := newSession(t, paperParams())
	if err := s2.RecordBid("a", message.CutDownBid{Round: 1, CutDown: 0.1}); err != nil {
		t.Fatal(err)
	}
	if s2.QuorumReached() {
		t.Fatal("quorum should require all 10 customers")
	}
}

func TestAwards(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0.15
	s := newSession(t, p)
	for c := range tenCustomers() {
		cd := 0.2
		if c == "a" {
			cd = 0.4
		}
		if err := s.RecordBid(c, message.CutDownBid{Round: 1, CutDown: cd}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Awards(); err == nil {
		t.Fatal("awards before close should fail")
	}
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	awards, err := s.Awards()
	if err != nil {
		t.Fatal(err)
	}
	if len(awards) != 10 {
		t.Fatalf("awards = %d, want 10", len(awards))
	}
	if awards[0].Customer != "a" || !units.NearlyEqual(awards[0].Award.CutDown, 0.4, 1e-12) {
		t.Fatalf("award[0] = %+v", awards[0])
	}
	if !units.NearlyEqual(awards[0].Award.Reward, 17, 1e-9) {
		t.Fatalf("award reward = %v, want 17", awards[0].Award.Reward)
	}
	// 1×17 + 9×8.5 = 93.5.
	if got := TotalRewardPaid(awards); !units.NearlyEqual(got, 93.5, 1e-9) {
		t.Fatalf("total reward = %v, want 93.5", got)
	}
	if _, err := s.AwardFor("ghost"); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatal("award for unknown customer should fail")
	}
}

func TestLoadOfAndCustomers(t *testing.T) {
	s := newSession(t, paperParams())
	if got := s.Customers(); len(got) != 10 || got[0] != "a" {
		t.Fatalf("Customers = %v", got)
	}
	l, ok := s.LoadOf("a")
	if !ok || l.Predicted != 13.5 {
		t.Fatalf("LoadOf(a) = %+v, %v", l, ok)
	}
	if _, ok := s.LoadOf("ghost"); ok {
		t.Fatal("LoadOf(ghost) should miss")
	}
}

// TestSilentCustomersKeepPrediction verifies the robustness rule: customers
// that never bid are modelled at full predicted use, so the UA concedes more
// (experiment E9's liveness base case).
func TestSilentCustomersKeepPrediction(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0.0001
	s := newSession(t, p)
	for _, c := range []string{"a", "b"} {
		if err := s.RecordBid(c, message.CutDownBid{Round: 1, CutDown: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	// 2×8.1 + 8×13.5 = 124.2 → overuse 24.2.
	if !units.NearlyEqual(rec.OveruseKWh, 24.2, 1e-9) {
		t.Fatalf("overuse = %v, want 24.2", rec.OveruseKWh)
	}
}

// TestAdaptiveBetaAcceleratesStalledNegotiation exercises the Section 7
// extension: with nobody conceding, the adaptive session escalates beta and
// reaches the reward ceiling in fewer rounds than the constant-beta session.
func TestAdaptiveBetaAcceleratesStalledNegotiation(t *testing.T) {
	run := func(adaptive bool) int {
		p := paperParams()
		p.Beta = 0.3 // slow base concession
		p.AllowedOveruseRatio = 0
		p.MaxRounds = 200
		p.AdaptiveBeta = adaptive
		s := newSession(t, p)
		rounds := 0
		for !s.Closed() {
			if _, err := s.CloseRound(); err != nil {
				t.Fatal(err)
			}
			rounds++
		}
		return rounds
	}
	constant := run(false)
	adaptive := run(true)
	if adaptive >= constant {
		t.Fatalf("adaptive (%d rounds) should beat constant (%d rounds)", adaptive, constant)
	}
}

// TestAdaptiveBetaRecordsEscalation checks BetaUsed grows when stalled.
func TestAdaptiveBetaRecordsEscalation(t *testing.T) {
	p := paperParams()
	p.AllowedOveruseRatio = 0
	p.AdaptiveBeta = true
	p.MaxRounds = 10
	p.Epsilon = 0.0001
	s := newSession(t, p)
	if _, err := s.CloseRound(); err != nil { // round 1: no baseline yet
		t.Fatal(err)
	}
	rec2, err := s.CloseRound() // still no progress: escalate after this
	if err != nil {
		t.Fatal(err)
	}
	if rec2.BetaUsed != p.Beta {
		t.Fatalf("round-2 beta = %v, want base %v", rec2.BetaUsed, p.Beta)
	}
	rec3, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec3.BetaUsed <= rec2.BetaUsed {
		t.Fatalf("round-3 beta = %v, want escalated above %v", rec3.BetaUsed, rec2.BetaUsed)
	}
}

func TestParamsAdaptValidation(t *testing.T) {
	p := paperParams()
	p.AdaptThreshold = -1
	if err := p.Validate(); !errors.Is(err, ErrBadParams) {
		t.Fatal("negative adapt threshold should fail")
	}
	p = paperParams()
	p.AdaptFactor = -1
	if err := p.Validate(); !errors.Is(err, ErrBadParams) {
		t.Fatal("negative adapt factor should fail")
	}
}
