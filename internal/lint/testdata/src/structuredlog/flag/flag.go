// Fixture: ad-hoc printing from a library (non-main) package structuredlog
// must flag.
package flag

import (
	"fmt"
	"log"
	"os"
)

func adHoc(err error) {
	log.Printf("bad: %v", err)      // want `log\.Printf`
	log.Println("bad")              // want `log\.Println`
	log.Print("bad")                // want `log\.Print`
	fmt.Println("bad")              // want `fmt\.Println writes to stdout`
	fmt.Printf("bad %v\n", err)     // want `fmt\.Printf writes to stdout`
	fmt.Fprintf(os.Stderr, "bad\n") // want `fmt\.Fprintf to os\.Stderr`
	fmt.Fprintln(os.Stdout, "bad")  // want `fmt\.Fprintln to os\.Stdout`
	println("bad")                  // want `builtin println`
}

func fatal(err error) {
	log.Fatalf("bad: %v", err) // want `log\.Fatalf`
}

// The escape hatch: the structured logger's own stderr mirror pattern.
func mirror(line string) {
	fmt.Fprintf(os.Stderr, "%s\n", line) //gridlint:allow structuredlog(fixture: the logger's own mirror)
}
