// Package agent provides the generic agent machinery shared by the Utility
// Agent and the Customer Agents: a goroutine runtime that owns an agent's
// mailbox and lifecycle, and the information-maintenance model of the
// generic agent tasks.
//
// The paper's generic agent model (Section 5, after [4]) decomposes an agent
// into: own process control, agent specific tasks, cooperation management,
// agent interaction management, world interaction management, maintenance of
// agent information and maintenance of world information. In this
// reproduction:
//
//   - agent interaction management is the Runtime (mailbox, send/broadcast);
//   - maintenance of agent/world information is the Model (two kb stores
//     with domain helpers);
//   - the remaining tasks are methods on the concrete agents
//     (internal/utilityagent, internal/customeragent), named after the tasks
//     they implement.
package agent

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
)

// Errors reported by the runtime.
var (
	ErrStopped    = errors.New("agent: runtime stopped")
	ErrNilHandler = errors.New("agent: handler must not be nil")
)

// Handler reacts to the agent's inbox. Implementations run on the agent's
// own goroutine, so they may freely mutate agent state without locks.
type Handler interface {
	// OnStart runs once before the first message — the hook for
	// pro-active behaviour (the UA starting a negotiation).
	OnStart(rt *Runtime) error
	// OnMessage handles one inbound envelope.
	OnMessage(rt *Runtime, env message.Envelope) error
}

// Runtime owns one agent goroutine: its registration on the bus, its inbox
// loop and its shutdown. Every agent in the system is hosted by a Runtime.
type Runtime struct {
	name    string
	bus     bus.Bus
	inbox   <-chan message.Envelope
	handler Handler

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// curTrace/curSpan hold the trace context of the work this agent is
	// doing right now — the handling span of the envelope currently in
	// OnMessage, or whatever the handler installed with SetTraceCtx.
	// Send reads them to stamp outgoing envelopes. They are atomics, not
	// plain fields, because timeout callbacks (time.AfterFunc) call Send
	// from outside the agent goroutine; a racing reader then sees some
	// recent context of the same agent, which is exactly the right
	// attribution for a timeout-driven send.
	curTrace atomic.Uint64
	curSpan  atomic.Uint64

	mu   sync.Mutex
	errs []error
}

// Start registers the agent on the bus and launches its goroutine.
func Start(name string, b bus.Bus, h Handler, inboxSize int) (*Runtime, error) {
	if h == nil {
		return nil, ErrNilHandler
	}
	inbox, err := b.Register(name, inboxSize)
	if err != nil {
		return nil, fmt.Errorf("agent %q: %w", name, err)
	}
	rt := &Runtime{
		name:    name,
		bus:     b,
		inbox:   inbox,
		handler: h,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go rt.loop()
	return rt, nil
}

// Name returns the agent's name.
func (rt *Runtime) Name() string { return rt.name }

// loop is the agent goroutine: start hook, then the mailbox loop.
func (rt *Runtime) loop() {
	defer close(rt.done)
	if err := rt.handler.OnStart(rt); err != nil {
		rt.recordErr(fmt.Errorf("agent %q: start: %w", rt.name, err))
		return
	}
	for {
		select {
		case <-rt.stop:
			return
		case env, ok := <-rt.inbox:
			if !ok {
				return
			}
			if err := rt.dispatch(env); err != nil {
				rt.recordErr(fmt.Errorf("agent %q: handle %s from %q: %w", rt.name, env.Kind, env.From, err))
			}
		}
	}
}

// dispatch runs one envelope through the handler. A traced envelope is
// wrapped in a handling span that becomes the parent of everything the
// handler sends in response, which is how a negotiation's span tree
// chains through every agent it crosses.
func (rt *Runtime) dispatch(env message.Envelope) error {
	if !env.Traced() || !trace.Enabled() {
		return rt.handler.OnMessage(rt, env)
	}
	sp := trace.Child(trace.Context{Trace: env.TraceID, Span: env.SpanID}, "handle."+string(env.Kind))
	sp.SetAgent(rt.name)
	sp.SetSession(env.Session)
	rt.SetTraceCtx(sp.Context())
	err := rt.handler.OnMessage(rt, env)
	sp.End()
	return err
}

// TraceCtx returns the agent's current trace context (invalid when the
// agent is not doing traced work).
func (rt *Runtime) TraceCtx() trace.Context {
	return trace.Context{Trace: rt.curTrace.Load(), Span: rt.curSpan.Load()}
}

// SetTraceCtx installs the context stamped onto subsequent Sends — used
// by handlers that open their own root span (the UA starting a session).
func (rt *Runtime) SetTraceCtx(tc trace.Context) {
	rt.curTrace.Store(tc.Trace)
	rt.curSpan.Store(tc.Span)
}

// Send wraps a payload in an envelope from this agent and delivers it,
// stamped with the agent's current trace context.
func (rt *Runtime) Send(to, session string, p message.Payload) error {
	return rt.SendCtx(rt.TraceCtx(), to, session, p)
}

// SendCtx sends with an explicit trace context — for handlers that relay
// between runtimes (the concentrator receives on one side and forwards on
// the other, so the receiving runtime's context must travel with the
// payload).
func (rt *Runtime) SendCtx(tc trace.Context, to, session string, p message.Payload) error {
	env, err := message.NewEnvelope(rt.name, to, session, p)
	if err != nil {
		return err
	}
	if tc.Valid() && trace.Enabled() {
		env.TraceID, env.SpanID = tc.Trace, tc.Span
	}
	return rt.bus.Send(env)
}

// Broadcast sends a payload to every other agent on the bus.
func (rt *Runtime) Broadcast(session string, p message.Payload) error {
	return rt.Send("", session, p)
}

// Stop signals the goroutine, unregisters from the bus and waits for exit.
// It is idempotent.
func (rt *Runtime) Stop() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		rt.bus.Unregister(rt.name)
	})
	<-rt.done
}

// Wait blocks until the agent goroutine exits (without requesting a stop) —
// used when the handler terminates itself by returning after a session ends.
func (rt *Runtime) Wait() { <-rt.done }

// Errors returns the handler errors recorded so far.
func (rt *Runtime) Errors() []error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]error(nil), rt.errs...)
}

// recordErr stores a handler error for later inspection.
func (rt *Runtime) recordErr(err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.errs = append(rt.errs, err)
}

// HandlerFuncs adapts plain functions to the Handler interface.
type HandlerFuncs struct {
	Start   func(rt *Runtime) error
	Message func(rt *Runtime, env message.Envelope) error
}

// OnStart implements Handler.
func (h HandlerFuncs) OnStart(rt *Runtime) error {
	if h.Start == nil {
		return nil
	}
	return h.Start(rt)
}

// OnMessage implements Handler.
func (h HandlerFuncs) OnMessage(rt *Runtime, env message.Envelope) error {
	if h.Message == nil {
		return nil
	}
	return h.Message(rt, env)
}

var _ Handler = HandlerFuncs{}
