package prediction

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"loadbalance/internal/units"
)

func TestMovingAverage(t *testing.T) {
	tests := []struct {
		name    string
		window  int
		series  []float64
		want    float64
		wantErr error
	}{
		{name: "full window", window: 3, series: []float64{1, 2, 3, 4, 5}, want: 4},
		{name: "window larger than series", window: 10, series: []float64{2, 4}, want: 3},
		{name: "single", window: 1, series: []float64{7, 9}, want: 9},
		{name: "empty", window: 3, series: nil, wantErr: ErrNoData},
		{name: "bad window", window: 0, series: []float64{1}, wantErr: ErrBadWindow},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MovingAverage{Window: tt.window}.Predict(tt.series)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if err == nil && !units.NearlyEqual(got, tt.want, 1e-12) {
				t.Fatalf("Predict = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExpSmoothing(t *testing.T) {
	// Alpha 1 reduces to the last observation.
	got, err := ExpSmoothing{Alpha: 1}.Predict([]float64{1, 2, 9})
	if err != nil || got != 9 {
		t.Fatalf("alpha=1 Predict = %v, %v", got, err)
	}
	// Constant series predicts the constant for any alpha.
	got, err = ExpSmoothing{Alpha: 0.3}.Predict([]float64{5, 5, 5, 5})
	if err != nil || !units.NearlyEqual(got, 5, 1e-12) {
		t.Fatalf("constant series Predict = %v, %v", got, err)
	}
	if _, err := (ExpSmoothing{Alpha: 0}).Predict([]float64{1}); !errors.Is(err, ErrBadAlpha) {
		t.Fatal("alpha 0 should fail")
	}
	if _, err := (ExpSmoothing{Alpha: 1.2}).Predict([]float64{1}); !errors.Is(err, ErrBadAlpha) {
		t.Fatal("alpha > 1 should fail")
	}
	if _, err := (ExpSmoothing{Alpha: 0.5}).Predict(nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty series should fail")
	}
}

func TestSeasonalNaive(t *testing.T) {
	// Period 3 on [1 2 3 4 5] predicts series[len-3] = 3.
	got, err := SeasonalNaive{Period: 3}.Predict([]float64{1, 2, 3, 4, 5})
	if err != nil || got != 3 {
		t.Fatalf("Predict = %v, %v", got, err)
	}
	if _, err := (SeasonalNaive{Period: 9}).Predict([]float64{1, 2}); !errors.Is(err, ErrShortSeries) {
		t.Fatal("short series should fail")
	}
	if _, err := (SeasonalNaive{Period: 0}).Predict([]float64{1}); !errors.Is(err, ErrBadPeriod) {
		t.Fatal("period 0 should fail")
	}
}

func TestFitOLSRecoversLine(t *testing.T) {
	// y = 2 + 3x exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x
	}
	m, err := FitOLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(m.Intercept, 2, 1e-9) || !units.NearlyEqual(m.Slope, 3, 1e-9) {
		t.Fatalf("fit = %+v", m)
	}
	if !units.NearlyEqual(m.At(10), 32, 1e-9) {
		t.Fatalf("At(10) = %v", m.At(10))
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := FitOLS([]float64{1}, []float64{1}); !errors.Is(err, ErrShortSeries) {
		t.Fatal("single point should fail")
	}
	if _, err := FitOLS([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatal("constant x should be singular")
	}
}

func TestMetrics(t *testing.T) {
	rmse, err := RMSE([]float64{1, 2}, []float64{1, 4})
	if err != nil || !units.NearlyEqual(rmse, math.Sqrt(2), 1e-12) {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := RMSE([]float64{1}, []float64{}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty should fail")
	}
	mape, err := MAPE([]float64{110}, []float64{100})
	if err != nil || !units.NearlyEqual(mape, 0.1, 1e-12) {
		t.Fatalf("MAPE = %v, %v", mape, err)
	}
	// Zero actuals are skipped.
	mape, err = MAPE([]float64{5, 110}, []float64{0, 100})
	if err != nil || !units.NearlyEqual(mape, 0.1, 1e-12) {
		t.Fatalf("MAPE with zero actual = %v, %v", mape, err)
	}
	if _, err := MAPE([]float64{5}, []float64{0}); !errors.Is(err, ErrNoData) {
		t.Fatal("all-zero actuals should fail")
	}
}

func TestBacktest(t *testing.T) {
	series := []float64{10, 10, 10, 10, 10}
	f, a, err := Backtest(MovingAverage{Window: 2}, series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 3 || len(a) != 3 {
		t.Fatalf("lens = %d, %d", len(f), len(a))
	}
	for i := range f {
		if f[i] != 10 || a[i] != 10 {
			t.Fatalf("backtest[%d] = %v, %v", i, f[i], a[i])
		}
	}
	if _, _, err := Backtest(MovingAverage{Window: 2}, series, 0); !errors.Is(err, ErrShortSeries) {
		t.Fatal("warmup 0 should fail")
	}
	if _, _, err := Backtest(MovingAverage{Window: 2}, series, 5); !errors.Is(err, ErrShortSeries) {
		t.Fatal("warmup = len should fail")
	}
}

func TestBestPrefersSeasonalOnPeriodicSeries(t *testing.T) {
	// Period-4 sawtooth: seasonal naive is exact, others are not.
	var series []float64
	for i := 0; i < 40; i++ {
		series = append(series, float64(i%4))
	}
	ps := []Predictor{
		MovingAverage{Window: 4},
		ExpSmoothing{Alpha: 0.5},
		SeasonalNaive{Period: 4},
	}
	best, score, err := Best(ps, series, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name() != "snaive(4)" {
		t.Fatalf("best = %s (score %v), want snaive(4)", best.Name(), score)
	}
	if score != 0 {
		t.Fatalf("seasonal naive score = %v, want 0", score)
	}
}

func TestBestSkipsFailingPredictors(t *testing.T) {
	series := []float64{1, 2, 3, 4}
	ps := []Predictor{
		SeasonalNaive{Period: 100}, // cannot run on 4 points
		MovingAverage{Window: 2},
	}
	best, _, err := Best(ps, series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name() != "ma(2)" {
		t.Fatalf("best = %s", best.Name())
	}
	if _, _, err := Best(nil, series, 2); !errors.Is(err, ErrNoData) {
		t.Fatal("no predictors should fail")
	}
	if _, _, err := Best([]Predictor{SeasonalNaive{Period: 100}}, series, 2); !errors.Is(err, ErrShortSeries) {
		t.Fatal("all-failing predictors should fail")
	}
}

// TestPredictorEdgeCases pins the remaining error-path boundaries: hostile
// inputs must come back as errors, never as panics or silent zeros. The live
// telemetry collector feeds these estimators whatever its rings hold —
// including empty and one-sample series right after start-up — so every
// boundary here is reachable in production.
func TestPredictorEdgeCases(t *testing.T) {
	// Moving average: negative window, and a window of 1 on an empty series.
	if _, err := (MovingAverage{Window: -3}).Predict([]float64{1, 2}); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("negative window err = %v", err)
	}
	if _, err := (MovingAverage{Window: 1}).Predict([]float64{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty series err = %v", err)
	}
	// A single-sample series (the collector's first closed tick) predicts
	// itself for any window.
	if got, err := (MovingAverage{Window: 8}).Predict([]float64{4.2}); err != nil || got != 4.2 {
		t.Fatalf("single sample = %v, %v", got, err)
	}

	// Seasonal naive: the period-equals-length boundary is the oldest
	// sample, not an error; one short of that fails; empty fails.
	if got, err := (SeasonalNaive{Period: 3}).Predict([]float64{7, 8, 9}); err != nil || got != 7 {
		t.Fatalf("period==len = %v, %v", got, err)
	}
	if _, err := (SeasonalNaive{Period: 3}).Predict([]float64{8, 9}); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("period>len err = %v", err)
	}
	if _, err := (SeasonalNaive{Period: 1}).Predict(nil); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("empty seasonal err = %v", err)
	}
	if _, err := (SeasonalNaive{Period: -1}).Predict([]float64{1}); !errors.Is(err, ErrBadPeriod) {
		t.Fatalf("negative period err = %v", err)
	}

	// RMSE/MAPE: mismatched lengths in both directions, with data on each
	// side, are errors — not truncation.
	if _, err := RMSE([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("RMSE longer forecast must fail")
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("RMSE longer actual must fail")
	}
	if _, err := MAPE([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("MAPE length mismatch must fail")
	}

	// Backtest: a negative warmup is rejected like warmup 0.
	if _, _, err := Backtest(MovingAverage{Window: 2}, []float64{1, 2, 3}, -1); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("negative warmup err = %v", err)
	}
	// Best over an empty series: every predictor fails, so Best reports it.
	if _, _, err := Best([]Predictor{MovingAverage{Window: 2}, ExpSmoothing{Alpha: 0.5}}, nil, 1); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("Best on empty series err = %v", err)
	}
}

// Property: the moving-average forecast always lies within [min, max] of the
// observed window.
func TestMovingAverageBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		series := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			series[i] = float64(v)
		}
		w := 3
		start := len(series) - w
		if start < 0 {
			start = 0
		}
		for _, v := range series[start:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		got, err := MovingAverage{Window: w}.Predict(series)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: OLS residual mean is ~0 (normal equations) for noisy lines.
func TestOLSResidualProperty(t *testing.T) {
	f := func(seed uint8) bool {
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = float64(i)
			noise := float64((int(seed)+i*37)%11) - 5
			ys[i] = 1 + 2*xs[i] + noise
		}
		m, err := FitOLS(xs, ys)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range xs {
			sum += ys[i] - m.At(xs[i])
		}
		return math.Abs(sum/float64(len(xs))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	if (MovingAverage{Window: 3}).Name() != "ma(3)" {
		t.Fatal("ma name")
	}
	if (ExpSmoothing{Alpha: 0.25}).Name() != "ses(0.25)" {
		t.Fatal("ses name")
	}
	if (SeasonalNaive{Period: 96}).Name() != "snaive(96)" {
		t.Fatal("snaive name")
	}
}
