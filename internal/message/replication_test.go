package message

import (
	"bytes"
	"errors"
	"testing"
)

// TestReplicationPayloadValidation covers the replication vocabulary's
// validation rules.
func TestReplicationPayloadValidation(t *testing.T) {
	tests := []struct {
		name    string
		p       Payload
		wantErr error
	}{
		{name: "subscribe valid", p: ReplSubscribe{Replica: "r0", FromSeq: 0}},
		{name: "subscribe empty replica", p: ReplSubscribe{}, wantErr: ErrEmptyField},
		{name: "batch valid", p: ReplBatch{FirstSeq: 1, Count: 2, Frames: []byte{1, 2, 3}}},
		{name: "batch seq zero", p: ReplBatch{FirstSeq: 0, Count: 1, Frames: []byte{1}}, wantErr: ErrBadValue},
		{name: "batch empty count", p: ReplBatch{FirstSeq: 1, Count: 0, Frames: []byte{1}}, wantErr: ErrBadValue},
		{name: "batch no frames", p: ReplBatch{FirstSeq: 1, Count: 1}, wantErr: ErrEmptyField},
		{name: "ack valid", p: ReplAck{Replica: "r1", AppliedSeq: 9}},
		{name: "ack empty replica", p: ReplAck{AppliedSeq: 9}, wantErr: ErrEmptyField},
		{name: "snapshot valid", p: ReplSnapshot{Seq: 7, Blob: []byte("state")}},
		{name: "snapshot seq zero", p: ReplSnapshot{Blob: []byte("state")}, wantErr: ErrBadValue},
		{name: "snapshot empty blob", p: ReplSnapshot{Seq: 7}, wantErr: ErrEmptyField},
		{name: "heartbeat valid", p: ReplHeartbeat{LastSeq: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.wantErr == nil && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

// TestReplicationEnvelopeRoundTrip runs every replication kind through the
// envelope's JSON and binary codecs: the payload must survive byte-exactly
// (frames are raw journal bytes — any mangling corrupts the replica journal).
func TestReplicationEnvelopeRoundTrip(t *testing.T) {
	frames := []byte{0x04, 0x03, 0xAA, 0xBB, 0xCC, 0x01, 0x02, 0x03, 0x04}
	payloads := []Payload{
		ReplSubscribe{Replica: "r0", FromSeq: 42},
		ReplBatch{FirstSeq: 43, Count: 1, Frames: frames},
		ReplAck{Replica: "r0", AppliedSeq: 43},
		ReplSnapshot{Seq: 40, Blob: []byte{0x00, 0xFF, 0x7F}},
		ReplHeartbeat{LastSeq: 43},
	}
	for _, p := range payloads {
		t.Run(string(p.Kind()), func(t *testing.T) {
			env, err := NewEnvelope("replica-r0", "repl", "grid", p)
			if err != nil {
				t.Fatal(err)
			}
			for _, codec := range []string{"json", "binary"} {
				var got Envelope
				switch codec {
				case "json":
					data, err := env.Marshal()
					if err != nil {
						t.Fatal(err)
					}
					got, err = Unmarshal(data)
					if err != nil {
						t.Fatal(err)
					}
				case "binary":
					data, err := env.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					got, err = UnmarshalBinary(data)
					if err != nil {
						t.Fatal(err)
					}
				}
				dp, err := got.Decode()
				if err != nil {
					t.Fatalf("%s decode: %v", codec, err)
				}
				switch want := p.(type) {
				case ReplBatch:
					gb, ok := dp.(ReplBatch)
					if !ok || gb.FirstSeq != want.FirstSeq || gb.Count != want.Count || !bytes.Equal(gb.Frames, want.Frames) {
						t.Fatalf("%s round trip = %+v, want %+v", codec, dp, want)
					}
				case ReplSnapshot:
					gs, ok := dp.(ReplSnapshot)
					if !ok || gs.Seq != want.Seq || !bytes.Equal(gs.Blob, want.Blob) {
						t.Fatalf("%s round trip = %+v, want %+v", codec, dp, want)
					}
				case ReplSubscribe:
					if dp != want {
						t.Fatalf("%s round trip = %+v, want %+v", codec, dp, want)
					}
				case ReplAck:
					if dp != want {
						t.Fatalf("%s round trip = %+v, want %+v", codec, dp, want)
					}
				case ReplHeartbeat:
					if dp != want {
						t.Fatalf("%s round trip = %+v, want %+v", codec, dp, want)
					}
				}
			}
		})
	}
}
