package health

import (
	"testing"
	"time"

	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

func TestParseWindowedRule(t *testing.T) {
	rc, err := ParseRule("busy:rate(negotiation_session_seconds_count)[5s]>100:for=2")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if rc.Fn != "rate" || rc.Series != "negotiation_session_seconds_count" ||
		rc.WindowUs != 5_000_000 || rc.Threshold != 100 || rc.For != 2 {
		t.Fatalf("parsed rule = %+v", rc)
	}
	// The window also parses inside the parens, and the other derived
	// forms are accepted.
	for _, s := range []string{
		"busy:rate(x_count[5s])>1",
		"avg:avg_over_time(feedback_score[1m])<40",
		"peak:max_over_time(replica_lag_records[30s])>1000:for=3",
		"inc:increase(journal_records_total[10s])>500",
	} {
		if _, err := ParseRule(s); err != nil {
			t.Errorf("ParseRule(%q): %v", s, err)
		}
	}
	for _, bad := range []string{
		"w:rate(x_count)>1",         // windowed form without a window
		"w:rate(x_count[0s])>1",     // zero window
		"w:quantile(x_count[5s])>1", // unknown function
		"w:rate(x_count[5s])[5s]>1", // duplicate window
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}

func TestParseBurnRule(t *testing.T) {
	rc, err := ParseRule("slo:burn(negotiation_session_seconds,le=0.01,slo=0.95)[1m,10s]>2:for=2")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if rc.Fn != "burn" || rc.Series != "negotiation_session_seconds" ||
		rc.BurnLe != 0.01 || rc.BurnSLO != 0.95 ||
		rc.WindowUs != 60_000_000 || rc.ShortWindowUs != 10_000_000 ||
		rc.Threshold != 2 || rc.For != 2 {
		t.Fatalf("parsed burn rule = %+v", rc)
	}
	for _, bad := range []string{
		"b:burn(f,le=0.01,slo=0.95)>2",         // missing windows
		"b:burn(f,le=0.01,slo=0.95)[10s]>2",    // one window
		"b:burn(f,le=0.01,slo=0.95)[10s,1m]>2", // short > long
		"b:burn(f,le=0.01,slo=1.5)[1m,10s]>2",  // slo not a fraction
		"b:burn(f,le=-1,slo=0.95)[1m,10s]>2",   // non-positive le
		"b:burn(f,slo=0.95)[1m,10s]>2",         // le missing
		"b:burn(,le=0.01,slo=0.95)[1m,10s]>2",  // empty family
		"b:burn(f,le=0.01,budget=2)[1m,10s]>2", // unknown argument
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}

func TestParseRulesBracketAwareSplit(t *testing.T) {
	// The burn argument list and window pair both contain commas; the rule
	// list split must not cut through them.
	rules, err := ParseRules(
		"slo:burn(x_seconds,le=0.01,slo=0.95)[1m,10s]>2:for=2," +
			"busy:rate(x_count[5s])>100," +
			"overload:feedback_score<40")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 3 || rules[0].Fn != "burn" || rules[1].Fn != "rate" || rules[2].Fn != "" {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestWindowedRuleWithoutHistoryNeverFires(t *testing.T) {
	rules, err := ParseRules("busy:rate(x_count[1s])>0")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules, newTestLogger(t, Config{MinLevel: Info}))
	for i := 0; i < 5; i++ {
		if st := e.Eval()[0]; st.State != StateOK {
			t.Fatalf("history-less windowed rule state = %s", st.State)
		}
	}
}

// TestBurnRateDrill drives a demand spike through a histogram scraped
// into the history store and proves the two-window SLO burn rule fires on
// the sustained spike but ignores a transient blip — while the equivalent
// instantaneous rule (lifetime p95 over the same SLO bound) stays quiet
// throughout, because the lifetime distribution dilutes the spike. The
// whole drill runs on a fake clock: the histogram is observed, scraped and
// evaluated at injected timestamps, so it is deterministic and race-clean.
func TestBurnRateDrill(t *testing.T) {
	const (
		family  = "drill_session_seconds"
		tickUs  = 250_000 // scrape/eval cadence: 4 per simulated second
		fastObs = time.Millisecond
		slowObs = 20 * time.Millisecond
	)
	hist := trace.GetHistogram(family) // default registry: the inst rule's namespace
	st := tsdb.New(tsdb.Config{})
	sc := tsdb.NewScraper(tsdb.ScrapeConfig{Store: st, Registry: trace.DefaultRegistry()})

	rules, err := ParseRules(
		"slo_burn:burn(" + family + ",le=0.01,slo=0.95)[4s,1s]>2:for=2," +
			"inst:" + family + "_p95>0.01:for=2")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(rules, newTestLogger(t, Config{MinLevel: Info}))
	eng.History = st
	var nowUs int64
	eng.NowUs = func() int64 { return nowUs }

	statusByName := func(name string) AlertStatus {
		for _, a := range eng.Status() {
			if a.Rule.Name == name {
				return a
			}
		}
		t.Fatalf("rule %s missing", name)
		return AlertStatus{}
	}

	const (
		phaseATicks = 64 // 16s of healthy traffic
		blipTick    = 16 // one transient burst of slow sessions mid-phase
		phaseBTicks = 8  // 2s sustained spike
	)
	tick := func(fast, slow int) {
		for i := 0; i < fast; i++ {
			hist.Observe(fastObs)
		}
		for i := 0; i < slow; i++ {
			hist.Observe(slowObs)
		}
		nowUs += tickUs
		sc.ScrapeAt(nowUs)
		eng.Eval()
	}

	// Phase A: healthy traffic with one transient blip. Neither rule may
	// fire: the blip is far below both windows' burn threshold, and the
	// for=2 sustain absorbs any single-eval wobble.
	for k := 0; k < phaseATicks; k++ {
		slow := 0
		if k == blipTick {
			slow = 5
		}
		tick(100, slow)
		if a := statusByName("slo_burn"); a.State == StateFiring {
			t.Fatalf("burn rule fired on transient blip at tick %d (value %g)", k, a.Value)
		}
		if a := statusByName("inst"); a.State == StateFiring {
			t.Fatalf("instantaneous rule fired in phase A at tick %d (value %g)", k, a.Value)
		}
	}

	// Phase B: a sustained spike — 30% of sessions breach the SLO bound,
	// 6x the 5% error budget. Both burn windows see it; the burn rule must
	// fire. The lifetime slow fraction stays under 5%, so the lifetime p95
	// still sits in the fast bucket and the instantaneous rule stays ok —
	// the exact blind spot burn-rate alerting exists to cover.
	for k := 0; k < phaseBTicks; k++ {
		tick(70, 30)
		if a := statusByName("inst"); a.State == StateFiring {
			t.Fatalf("instantaneous rule fired during spike at tick %d (value %g)", k, a.Value)
		}
	}
	if a := statusByName("slo_burn"); a.FireCount < 1 {
		t.Fatalf("burn rule never fired on sustained spike: %+v", a)
	}
	if a := statusByName("inst"); a.FireCount != 0 {
		t.Fatalf("instantaneous rule fired %d times; lifetime p95 = %g", a.FireCount, a.Value)
	}

	// The spike ending resolves the burn alert once both windows drain.
	for k := 0; k < 24; k++ {
		tick(100, 0)
	}
	if a := statusByName("slo_burn"); a.State != StateOK {
		t.Fatalf("burn rule did not resolve after spike: %+v", a)
	}
}
