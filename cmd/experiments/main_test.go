package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loadbalance/internal/trace"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e2", "-out", dir}); err != nil {
		t.Fatalf("e2: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	if !strings.HasPrefix(csv, "cut_down,reward\n") {
		t.Fatalf("csv header = %q", csv[:40])
	}
	if !strings.Contains(csv, "0.4,17") {
		t.Fatalf("csv missing the Figure 6 row:\n%s", csv)
	}
}

// TestRunRecordsExperimentHistogram: each experiment's wall time lands in
// the experiment_duration_seconds histogram under its id, served on -metrics.
func TestRunRecordsExperimentHistogram(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e3", "-out", dir}); err != nil {
		t.Fatalf("e3: %v", err)
	}
	var buf strings.Builder
	trace.WriteMetrics(&buf)
	metrics := buf.String()
	for _, want := range []string{
		"# TYPE experiment_duration_seconds histogram",
		`experiment_duration_seconds_count{exp="e3"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestRunE1WritesCurve(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e1", "-n", "20", "-out", dir}); err != nil {
		t.Fatalf("e1: %v", err)
	}
	for _, f := range []string{"e1.csv", "e1_demand_curve.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}

func TestRunSmallSweeps(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-out", dir, "-n", "8", "-runs", "2",
		"-sizes", "5,10", "-betas", "1,3"}
	for _, exp := range []string{"e5", "e6", "e7", "e8", "e12", "e14"} {
		if err := run(append([]string{"-exp", exp}, args...)); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if _, err := os.Stat(filepath.Join(dir, exp+".csv")); err != nil {
			t.Fatalf("%s csv missing: %v", exp, err)
		}
	}
}

func TestRunClusterScale(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "e11c", "-out", dir, "-cluster-sizes", "30", "-shards", "3"}
	if err := run(args); err != nil {
		t.Fatalf("e11c: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e11c.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	if !strings.HasPrefix(csv, "customers,shards,") {
		t.Fatalf("csv header = %q", csv)
	}
	if !strings.Contains(csv, "30,flat,") || !strings.Contains(csv, "30,3,") {
		t.Fatalf("csv missing flat/sharded rows:\n%s", csv)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e99", "-out", dir}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-sizes", "ten", "-out", dir}); err == nil {
		t.Fatal("bad sizes should fail")
	}
	if err := run([]string{"-betas", "x", "-out", dir}); err == nil {
		t.Fatal("bad betas should fail")
	}
	if err := run([]string{"-cluster-sizes", "many", "-out", dir}); err == nil {
		t.Fatal("bad cluster sizes should fail")
	}
	if err := run([]string{"-shards", "x", "-out", dir}); err == nil {
		t.Fatal("bad shards should fail")
	}
}

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("1, 2,3")
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	floats, err := parseFloats("0.5,1.85")
	if err != nil || len(floats) != 2 || floats[1] != 1.85 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
}

// TestRunE16WritesRecoveryJSON runs the crash-recovery experiment and
// checks both artifacts: the CSV table and the result JSON carrying the
// recovery latency and verdict.
func TestRunE16WritesRecoveryJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "e16", "-out", dir, "-n", "16", "-ticks", "10"}); err != nil {
		t.Fatalf("e16: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e16_recovery.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		RecoveryLatencyNS int64 `json:"recoveryLatencyNs"`
		AwardsMatch       bool  `json:"awardsMatch"`
		ReplayedRecords   int   `json:"replayedRecords"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.AwardsMatch || rep.RecoveryLatencyNS <= 0 {
		t.Fatalf("recovery report = %+v", rep)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "e16.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "recovered") {
		t.Fatalf("e16 csv missing the recovered row:\n%s", csv)
	}
}

// TestRunDataDirSkipsCompleted covers the resumable runner: the second
// invocation of the same experiment against the same data dir skips it.
func TestRunDataDirSkipsCompleted(t *testing.T) {
	out := t.TempDir()
	dataDir := t.TempDir()
	args := []string{"-exp", "e2", "-out", out, "-data-dir", dataDir}
	if err := run(args); err != nil {
		t.Fatalf("first run: %v", err)
	}
	csvPath := filepath.Join(out, "e2.csv")
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatal(err)
	}
	// Tamper with the CSV: a true skip must not rewrite it.
	if err := os.WriteFile(csvPath, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args); err != nil {
		t.Fatalf("second run: %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil || string(data) != "tampered" {
		t.Fatalf("skipped experiment rewrote its CSV (err %v): %q", err, data)
	}
}

// TestRunDataDirReRunsOnChangedParameters: a completed id only skips when
// the parameter fingerprint matches; changing -seed re-runs it.
func TestRunDataDirReRunsOnChangedParameters(t *testing.T) {
	out := t.TempDir()
	dataDir := t.TempDir()
	if err := run([]string{"-exp", "e2", "-out", out, "-data-dir", dataDir, "-seed", "1"}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	csvPath := filepath.Join(out, "e2.csv")
	if err := os.WriteFile(csvPath, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "e2", "-out", out, "-data-dir", dataDir, "-seed", "2"}); err != nil {
		t.Fatalf("re-run with new seed: %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil || string(data) == "tampered" {
		t.Fatalf("changed parameters did not re-run the experiment (err %v)", err)
	}
}
