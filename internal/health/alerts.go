package health

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loadbalance/internal/tsdb"
)

// The alert engine evaluates threshold rules over the metric namespace
// (registered gauges + histogram percentiles) once per tick. A rule fires
// only after its condition holds for `for=N` consecutive evaluations —
// sustain is counted in evaluations, not wall time, so drills running at
// fast ticks stay deterministic — and resolves the first evaluation the
// condition clears. Transitions emit structured events and, on firing,
// invoke the OnFire hook (the flight recorder).
//
// Beyond the point-in-time rules, an engine wired to a tsdb store also
// evaluates windowed rules (rate/increase/avg_over_time/max_over_time
// over a trailing window of history) and two-window SLO burn-rate rules
// over a histogram's _count/_bucket series.

// RuleConfig is one parsed alert rule. Metric carries the left-hand
// expression verbatim; for windowed and burn rules the parsed pieces
// live in Fn/Series/window fields.
type RuleConfig struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Op        string  `json:"op"` // "<" or ">"
	Threshold float64 `json:"threshold"`
	For       int     `json:"for"` // consecutive breaching evals before firing (>=1)

	// Fn is "" for point-in-time rules, a tsdb derived form for windowed
	// rules, or "burn" for two-window SLO burn-rate rules.
	Fn            string  `json:"fn,omitempty"`
	Series        string  `json:"series,omitempty"`        // underlying series (burn: histogram family)
	WindowUs      int64   `json:"windowUs,omitempty"`      // evaluation window (burn: long window)
	ShortWindowUs int64   `json:"shortWindowUs,omitempty"` // burn: short window
	BurnLe        float64 `json:"burnLe,omitempty"`        // burn: SLO latency bound in seconds
	BurnSLO       float64 `json:"burnSlo,omitempty"`       // burn: SLO target fraction, e.g. 0.95
}

// ParseRule parses the rule grammar used by the -alerts flag:
//
//	name:metric<threshold[:for=N]                     point-in-time
//	name:rate(metric)[5s]>threshold[:for=N]           windowed (also
//	    increase/avg_over_time/max_over_time)
//	name:burn(family,le=0.01,slo=0.95)[1m,10s]>2      two-window SLO burn
//
// e.g. "overload:feedback_score<40:for=2" or
// "slow_sessions:negotiation_session_seconds_p99>1.5". A burn rule reads
// the family's _count and _bucket history: its value is the error-budget
// burn rate min'd across the long and short windows, so it breaches only
// when both windows burn — the standard guard against a transient blip
// paging on a long window's memory.
func ParseRule(s string) (RuleConfig, error) {
	var rc RuleConfig
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return rc, fmt.Errorf("health: rule %q: want name:metric<threshold[:for=N]", s)
	}
	rc.Name = name
	cond := rest
	if body, forPart, ok := strings.Cut(rest, ":"); ok {
		cond = body
		k, v, ok := strings.Cut(forPart, "=")
		if !ok || k != "for" {
			return rc, fmt.Errorf("health: rule %q: trailing clause %q (want for=N)", s, forPart)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return rc, fmt.Errorf("health: rule %q: bad for=%q", s, v)
		}
		rc.For = n
	} else {
		rc.For = 1
	}
	opIdx := strings.IndexAny(cond, "<>")
	if opIdx <= 0 || opIdx == len(cond)-1 {
		return rc, fmt.Errorf("health: rule %q: want metric<threshold or metric>threshold", s)
	}
	rc.Metric = cond[:opIdx]
	rc.Op = string(cond[opIdx])
	thr, err := strconv.ParseFloat(cond[opIdx+1:], 64)
	if err != nil {
		return rc, fmt.Errorf("health: rule %q: bad threshold %q", s, cond[opIdx+1:])
	}
	rc.Threshold = thr
	if err := parseRuleExpr(&rc); err != nil {
		return rc, fmt.Errorf("health: rule %q: %w", s, err)
	}
	return rc, nil
}

// parseRuleExpr classifies rc.Metric: plain metric name, windowed tsdb
// expression, or burn(...) form.
func parseRuleExpr(rc *RuleConfig) error {
	expr := rc.Metric
	if !strings.Contains(expr, "(") {
		return nil // point-in-time rule
	}
	if strings.HasPrefix(expr, "burn(") {
		return parseBurnExpr(rc, expr)
	}
	e, err := tsdb.ParseExpr(expr)
	if err != nil {
		return err
	}
	if e.WindowUs <= 0 {
		return fmt.Errorf("windowed rule %s needs a [window]", expr)
	}
	rc.Fn, rc.Series, rc.WindowUs = e.Fn, e.Series, e.WindowUs
	return nil
}

// parseBurnExpr parses burn(family,le=SECONDS,slo=FRACTION)[long,short].
func parseBurnExpr(rc *RuleConfig, expr string) error {
	close := strings.LastIndex(expr, ")")
	if close < 0 {
		return fmt.Errorf("burn rule %s: missing )", expr)
	}
	suffix := strings.TrimSpace(expr[close+1:])
	if !strings.HasPrefix(suffix, "[") || !strings.HasSuffix(suffix, "]") {
		return fmt.Errorf("burn rule %s: want [long,short] windows after )", expr)
	}
	long, short, ok := strings.Cut(suffix[1:len(suffix)-1], ",")
	if !ok {
		return fmt.Errorf("burn rule %s: want two windows [long,short]", expr)
	}
	dl, errL := time.ParseDuration(strings.TrimSpace(long))
	ds, errS := time.ParseDuration(strings.TrimSpace(short))
	if errL != nil || errS != nil || dl <= 0 || ds <= 0 || ds > dl {
		return fmt.Errorf("burn rule %s: bad windows [%s,%s] (want long >= short > 0)", expr, long, short)
	}
	rc.WindowUs, rc.ShortWindowUs = dl.Microseconds(), ds.Microseconds()
	for i, arg := range strings.Split(expr[len("burn("):close], ",") {
		arg = strings.TrimSpace(arg)
		if i == 0 {
			rc.Series = arg
			continue
		}
		k, v, _ := strings.Cut(arg, "=")
		f, err := strconv.ParseFloat(v, 64)
		switch {
		case k == "le" && err == nil && f > 0:
			rc.BurnLe = f
		case k == "slo" && err == nil && f > 0 && f < 1:
			rc.BurnSLO = f
		default:
			return fmt.Errorf("burn rule %s: bad argument %q (want le=seconds, slo=fraction)", expr, arg)
		}
	}
	if rc.Series == "" || rc.BurnLe == 0 || rc.BurnSLO == 0 {
		return fmt.Errorf("burn rule %s: want burn(family,le=seconds,slo=fraction)", expr)
	}
	rc.Fn = "burn"
	return nil
}

// ParseRules parses a comma-separated rule list (the -alerts flag value).
// The split is bracket-aware so burn windows ([1m,10s]) and burn argument
// lists survive intact.
func ParseRules(s string) ([]RuleConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []RuleConfig
	for _, part := range splitRules(s) {
		rc, err := ParseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, rc)
	}
	return out, nil
}

// splitRules splits on commas outside any ( ) or [ ] nesting.
func splitRules(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// Alert states.
const (
	StateOK      = "ok"
	StatePending = "pending" // breaching, sustain not yet met
	StateFiring  = "firing"
)

// AlertStatus is one rule's current state as served on /alerts.
type AlertStatus struct {
	Rule       RuleConfig `json:"rule"`
	State      string     `json:"state"`
	Value      float64    `json:"value"`   // metric value at last eval
	Breach     int        `json:"breach"`  // consecutive breaching evals
	FiredUs    int64      `json:"firedUs"` // last transition to firing (0 = never)
	ResolvedUs int64      `json:"resolvedUs"`
	FireCount  int        `json:"fireCount"`
}

// Engine evaluates alert rules. Eval is called from the owning loop (one
// goroutine); readers come from HTTP handlers, hence the lock.
type Engine struct {
	logger *Logger
	// OnFire runs on each ok/pending→firing transition (the flight
	// recorder hook). Called without the engine lock held.
	OnFire func(a AlertStatus)
	// History backs windowed and burn rules. When nil those rules are
	// no-data (never breaching); point-in-time rules are unaffected.
	History *tsdb.Store
	// NowUs stamps transitions and anchors windowed evaluation. Nil means
	// wall clock; drills inject a fake clock for determinism.
	NowUs func() int64

	mu    sync.Mutex
	rules []*ruleState
}

type ruleState struct {
	cfg        RuleConfig
	state      string
	value      float64
	breach     int
	firedUs    int64
	resolvedUs int64
	fireCount  int
}

// NewEngine builds an engine over rules, logging transitions to logger
// (nil = process default).
func NewEngine(rules []RuleConfig, logger *Logger) *Engine {
	e := &Engine{logger: logger}
	for _, rc := range rules {
		if rc.For < 1 {
			rc.For = 1
		}
		e.rules = append(e.rules, &ruleState{cfg: rc, state: StateOK})
	}
	return e
}

func (e *Engine) log() *Logger {
	if e.logger != nil {
		return e.logger
	}
	return Default()
}

func (e *Engine) nowUs() int64 {
	if e.NowUs != nil {
		return e.NowUs()
	}
	return time.Now().UnixMicro()
}

// ruleValue evaluates one rule's left-hand side at nowUs. ok=false means
// no data (missing metric, empty window, engine without history) and
// never breaches.
func (e *Engine) ruleValue(rc RuleConfig, nowUs int64) (float64, bool) {
	switch rc.Fn {
	case "":
		return LookupMetric(rc.Metric)
	case "burn":
		return e.burnValue(rc, nowUs)
	default:
		if e.History == nil {
			return 0, false
		}
		return e.History.Instant(tsdb.Expr{Fn: rc.Fn, Series: rc.Series, WindowUs: rc.WindowUs}, nowUs)
	}
}

// burnValue computes a burn rule's value: the SLO error-budget burn rate
// over the long and short windows, min'd so the rule breaches only when
// both windows burn. Burn rate 1.0 means errors arrive exactly at the
// budgeted rate (1-slo); thresholds are expressed in budget multiples.
func (e *Engine) burnValue(rc RuleConfig, nowUs int64) (float64, bool) {
	if e.History == nil {
		return 0, false
	}
	bucket := resolveBucket(e.History, rc.Series, rc.BurnLe)
	long, okL := burnOver(e.History, rc, bucket, rc.WindowUs, nowUs)
	short, okS := burnOver(e.History, rc, bucket, rc.ShortWindowUs, nowUs)
	if !okL || !okS {
		return 0, false
	}
	if short < long {
		return short, true
	}
	return long, true
}

// burnOver computes the burn rate for one window: the fraction of new
// observations slower than the SLO bound, divided by the error budget.
func burnOver(st *tsdb.Store, rc RuleConfig, bucket string, windowUs, nowUs int64) (float64, bool) {
	total, ok := st.Instant(tsdb.Expr{Fn: "increase", Series: rc.Series + "_count", WindowUs: windowUs}, nowUs)
	if !ok {
		return 0, false
	}
	if total <= 0 {
		return 0, true // no traffic, no burn
	}
	good := 0.0
	if bucket != "" {
		// A short bucket history (series appeared mid-window) reads as
		// zero good observations; the for=N sustain absorbs the transient.
		good, _ = st.Instant(tsdb.Expr{Fn: "increase", Series: bucket, WindowUs: windowUs}, nowUs)
	}
	errFrac := (total - good) / total
	if errFrac < 0 {
		errFrac = 0
	}
	if errFrac > 1 {
		errFrac = 1
	}
	return errFrac / (1 - rc.BurnSLO), true
}

// resolveBucket maps the SLO bound onto the family's rendered bucket
// grid: the largest stored _bucket bound <= le. Because the exposition
// renders only occupied buckets and values are cumulative, that bound's
// series carries exactly the count of observations <= le (any bucket
// between it and le is empty, or it would be rendered). Returns "" when
// no bucket at or below le has ever been occupied — every observation
// was slower, so the good count is zero.
func resolveBucket(st *tsdb.Store, family string, le float64) string {
	prefix := family + `_bucket{le="`
	best, bestBound := "", 0.0
	for _, name := range st.SeriesNames() {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, `"}`) {
			continue
		}
		bound, err := strconv.ParseFloat(name[len(prefix):len(name)-2], 64)
		if err != nil || bound > le {
			continue
		}
		if best == "" || bound > bestBound {
			best, bestBound = name, bound
		}
	}
	return best
}

// Eval evaluates every rule against the live metric namespace (and, for
// windowed/burn rules, the history store). Returns the statuses after
// this evaluation (also readable via Status).
func (e *Engine) Eval() []AlertStatus {
	var fired []AlertStatus
	var resolved []AlertStatus
	now := e.nowUs()

	e.mu.Lock()
	for _, r := range e.rules {
		v, ok := e.ruleValue(r.cfg, now)
		r.value = v
		breaching := false
		if ok {
			if r.cfg.Op == "<" {
				breaching = v < r.cfg.Threshold
			} else {
				breaching = v > r.cfg.Threshold
			}
		}
		if breaching {
			r.breach++
			if r.state != StateFiring {
				if r.breach >= r.cfg.For {
					r.state = StateFiring
					r.firedUs = now
					r.fireCount++
					fired = append(fired, statusOf(r))
				} else {
					r.state = StatePending
				}
			}
		} else {
			if r.state == StateFiring {
				r.resolvedUs = now
				resolved = append(resolved, statusOf(r))
			}
			r.breach = 0
			r.state = StateOK
		}
	}
	out := make([]AlertStatus, len(e.rules))
	for i, r := range e.rules {
		out[i] = statusOf(r)
	}
	e.mu.Unlock()

	for _, a := range fired {
		e.log().Log(Warn, "alerts", "alert firing",
			Str("alert", a.Rule.Name),
			Str("metric", a.Rule.Metric),
			Str("op", a.Rule.Op),
			Str("threshold", strconv.FormatFloat(a.Rule.Threshold, 'g', -1, 64)),
			Str("value", strconv.FormatFloat(a.Value, 'g', -1, 64)),
			Int("for", int64(a.Rule.For)))
		if e.OnFire != nil {
			e.OnFire(a)
		}
	}
	for _, a := range resolved {
		e.log().Log(Info, "alerts", "alert resolved",
			Str("alert", a.Rule.Name),
			Str("metric", a.Rule.Metric),
			Str("value", strconv.FormatFloat(a.Value, 'g', -1, 64)))
	}
	return out
}

func statusOf(r *ruleState) AlertStatus {
	return AlertStatus{
		Rule:       r.cfg,
		State:      r.state,
		Value:      r.value,
		Breach:     r.breach,
		FiredUs:    r.firedUs,
		ResolvedUs: r.resolvedUs,
		FireCount:  r.fireCount,
	}
}

// Status returns every rule's current state, sorted by rule name.
func (e *Engine) Status() []AlertStatus {
	e.mu.Lock()
	out := make([]AlertStatus, len(e.rules))
	for i, r := range e.rules {
		out[i] = statusOf(r)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// FiringCount returns how many rules are currently firing.
func (e *Engine) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.rules {
		if r.state == StateFiring {
			n++
		}
	}
	return n
}

// AlertsHandler serves /alerts as JSON.
func AlertsHandler(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeAlertsJSON(w, e.Status())
	}
}

// writeAlertsJSON renders alert statuses without encoding/json (shared
// with the flight recorder, which runs in failure paths and should not
// depend on reflection succeeding).
func writeAlertsJSON(w io.Writer, alerts []AlertStatus) {
	b := make([]byte, 0, 256+192*len(alerts))
	b = append(b, `{"alerts":[`...)
	for i := range alerts {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendAlertJSON(b, &alerts[i])
	}
	b = append(b, "]}\n"...)
	_, _ = w.Write(b)
}

func appendAlertJSON(b []byte, a *AlertStatus) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, a.Rule.Name)
	b = append(b, `,"metric":`...)
	b = strconv.AppendQuote(b, a.Rule.Metric)
	b = append(b, `,"op":`...)
	b = strconv.AppendQuote(b, a.Rule.Op)
	b = append(b, `,"threshold":`...)
	b = strconv.AppendFloat(b, a.Rule.Threshold, 'g', -1, 64)
	b = append(b, `,"for":`...)
	b = strconv.AppendInt(b, int64(a.Rule.For), 10)
	b = append(b, `,"state":`...)
	b = strconv.AppendQuote(b, a.State)
	b = append(b, `,"value":`...)
	b = strconv.AppendFloat(b, a.Value, 'g', -1, 64)
	b = append(b, `,"breach":`...)
	b = strconv.AppendInt(b, int64(a.Breach), 10)
	b = append(b, `,"firedUs":`...)
	b = strconv.AppendInt(b, a.FiredUs, 10)
	b = append(b, `,"resolvedUs":`...)
	b = strconv.AppendInt(b, a.ResolvedUs, 10)
	b = append(b, `,"fireCount":`...)
	b = strconv.AppendInt(b, int64(a.FireCount), 10)
	b = append(b, '}')
	return b
}

// WriteAlertMetrics renders alert states as gauges (1 = firing).
func WriteAlertMetrics(w io.Writer, e *Engine) {
	alerts := e.Status()
	if len(alerts) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE health_alert_firing gauge\n")
	for _, a := range alerts {
		v := 0
		if a.State == StateFiring {
			v = 1
		}
		fmt.Fprintf(w, "health_alert_firing{alert=%q} %d\n", a.Rule.Name, v)
	}
	fmt.Fprintf(w, "# TYPE health_alert_fired_total counter\n")
	for _, a := range alerts {
		fmt.Fprintf(w, "health_alert_fired_total{alert=%q} %d\n", a.Rule.Name, a.FireCount)
	}
}
