package health

import (
	"strings"
	"testing"
)

// quietScorer builds a scorer with deterministic runtime stats so tests
// exercise only the source under test.
func quietScorer(src Sources, w Weights) *Scorer {
	s := NewScorer(src, DefaultBudgets(), w)
	s.gcStats = func() (float64, float64) { return 0, 0 }
	return s
}

func TestClampHealth(t *testing.T) {
	cases := []struct {
		raw, good, bad, want float64
	}{
		{0, 1, 2, 1},
		{1, 1, 2, 1},
		{1.5, 1, 2, 0.5},
		{2, 1, 2, 0},
		{99, 1, 2, 0},
		{5, 3, 3, 0}, // degenerate budgets: step function
		{2, 3, 3, 1},
	}
	for _, c := range cases {
		if got := clampHealth(c.raw, c.good, c.bad); got != c.want {
			t.Errorf("clampHealth(%g,%g,%g) = %g, want %g", c.raw, c.good, c.bad, got, c.want)
		}
	}
}

func TestScoreMonotoneInOfferedLoad(t *testing.T) {
	util := 0.5
	s := quietScorer(Sources{Utilization: func() float64 { return util }}, DefaultWeights())
	defer UnregisterGauge("feedback_score")
	prev := 101.0
	for _, u := range []float64{0.5, 0.9, 1.0, 1.1, 1.2, 1.35, 1.5, 1.8, 2.5} {
		util = u
		sc := s.Compute()
		if sc.Value > prev {
			t.Fatalf("score rose from %g to %g when utilization rose to %g", prev, sc.Value, u)
		}
		if sc.Value < 0 || sc.Value > 100 {
			t.Fatalf("score %g out of [0,100]", sc.Value)
		}
		prev = sc.Value
	}
	// Past the Bad budget the utilization component is fully unhealthy:
	// with weights Runtime=1 (healthy) Latency=2 (0 latency => healthy)
	// Utilization=3, the floor is 100*(1+2)/(1+2+3) = 50.
	if prev != 50 {
		t.Fatalf("saturated score = %g, want 50", prev)
	}
}

func TestScoreDropsAbsentSources(t *testing.T) {
	// No utilization or replication sources: their weights drop out and a
	// quiet process scores 100.
	s := quietScorer(Sources{}, DefaultWeights())
	defer UnregisterGauge("feedback_score")
	sc := s.Compute()
	if sc.Value != 100 {
		t.Fatalf("quiet process scored %g, want 100", sc.Value)
	}
	for _, c := range sc.Components {
		if c.Name == "utilization" || c.Name == "replication_lag_records" {
			t.Fatalf("absent source %q still contributed: %+v", c.Name, c)
		}
	}
}

func TestScoreGaugeRegistered(t *testing.T) {
	util := 2.0
	s := quietScorer(Sources{Utilization: func() float64 { return util }}, Weights{Utilization: 1})
	defer UnregisterGauge("feedback_score")
	s.Compute()
	v, ok := LookupMetric("feedback_score")
	if !ok || v != 0 {
		t.Fatalf("feedback_score gauge = %g, %v; want 0 (fully overloaded, only source)", v, ok)
	}
	if s.Value() != 0 {
		t.Fatalf("Value() = %g, want 0", s.Value())
	}
}

func TestLookupMetricPercentiles(t *testing.T) {
	if _, ok := LookupMetric("no_such_gauge"); ok {
		t.Fatal("unknown name resolved")
	}
	// A histogram-percentile name resolves (to 0 when never observed)
	// without creating the family.
	v, ok := LookupMetric("some_unobserved_seconds_p99")
	if !ok || v != 0 {
		t.Fatalf("percentile lookup = %g, %v; want 0, true", v, ok)
	}
}

func TestWriteScoreMetrics(t *testing.T) {
	util := 1.25
	s := quietScorer(Sources{Utilization: func() float64 { return util }}, DefaultWeights())
	defer UnregisterGauge("feedback_score")
	s.Compute()
	var sb strings.Builder
	WriteScoreMetrics(&sb, s)
	out := sb.String()
	for _, want := range []string{
		"# TYPE feedback_score gauge",
		"feedback_score ",
		`feedback_component_health{component="utilization"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("score metrics missing %q:\n%s", want, out)
		}
	}
}
