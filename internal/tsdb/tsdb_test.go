package tsdb

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loadbalance/internal/trace"
)

const secUs = int64(time.Second / time.Microsecond)

// fill appends n points of series name at 1s spacing starting at t=1s,
// with values from vals cycled (or the index when vals is empty).
func fill(st *Store, name string, n int, vals ...float64) {
	for i := 0; i < n; i++ {
		v := float64(i)
		if len(vals) > 0 {
			v = vals[i%len(vals)]
		}
		st.Append(name, int64(i+1)*secUs, v)
	}
}

func TestStoreRetainsAllPointsUntilEviction(t *testing.T) {
	st := New(Config{RawCapacity: 8})
	fill(st, "g", 8)
	pts := st.window("g", 0, 100*secUs)
	if len(pts) != 8 {
		t.Fatalf("window returned %d points, want 8", len(pts))
	}
	for i, p := range pts {
		if p.tsUs != int64(i+1)*secUs || p.last != float64(i) {
			t.Fatalf("point %d = {%d %g}, want {%d %d}", i, p.tsUs, p.last, int64(i+1)*secUs, i)
		}
	}
	if s := st.Stats(); s.Series != 1 || s.Points != 8 || s.Evictions != 0 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDownsamplingFoldsEvictedPoints(t *testing.T) {
	// Raw ring of 4, folding every 2 evictions: 12 appends evict 8 raw
	// points into 4 tier-2 aggregates, so nothing is lost — the window
	// still spans the full history, just coarser at the old end.
	st := New(Config{RawCapacity: 4, DownsampleFactor: 2, DownsampleCapacity: 8})
	fill(st, "g", 12)
	if s := st.Stats(); s.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", s.Evictions)
	}
	pts := st.window("g", 0, 100*secUs)
	if len(pts) != 8 { // 4 aggregates + 4 raw
		t.Fatalf("window returned %d points, want 8", len(pts))
	}
	// First aggregate folds raw points at t=1s,2s (values 0,1): stamped at
	// its window end with the gauge surface intact.
	a := pts[0]
	if a.tsUs != 2*secUs || a.last != 1 || a.min != 0 || a.max != 1 || a.sumV != 1 || a.count != 2 {
		t.Fatalf("first aggregate = %+v", a)
	}
	// The raw tail is still dense.
	tail := pts[4:]
	for i, p := range tail {
		if p.tsUs != int64(i+9)*secUs || p.count != 1 {
			t.Fatalf("raw tail %d = %+v", i, p)
		}
	}
}

func TestAggregatesSurviveThroughAvgAndMax(t *testing.T) {
	st := New(Config{RawCapacity: 4, DownsampleFactor: 2, DownsampleCapacity: 8})
	fill(st, "g", 12)
	// avg over the full range must weight every original point equally:
	// mean of 0..11 = 5.5, even though 8 of them live in aggregates.
	if v, ok := st.Instant(Expr{Fn: "avg_over_time", Series: "g", WindowUs: 100 * secUs}, 100*secUs); !ok || v != 5.5 {
		t.Fatalf("avg_over_time = %g ok=%v, want 5.5 true", v, ok)
	}
	if v, ok := st.Instant(Expr{Fn: "max_over_time", Series: "g", WindowUs: 100 * secUs}, 100*secUs); !ok || v != 11 {
		t.Fatalf("max_over_time = %g ok=%v, want 11 true", v, ok)
	}
}

func TestOutOfOrderAndDuplicateAppendsDropped(t *testing.T) {
	st := New(Config{})
	st.Append("g", 10*secUs, 1)
	st.Append("g", 5*secUs, 2)  // stale
	st.Append("g", 10*secUs, 3) // duplicate
	st.Append("g", 11*secUs, 4)
	if s := st.Stats(); s.Dropped != 2 || s.Points != 2 {
		t.Fatalf("stats = %+v, want 2 dropped 2 points", s)
	}
	pts := st.window("g", 0, 100*secUs)
	if len(pts) != 2 || pts[0].last != 1 || pts[1].last != 4 {
		t.Fatalf("window = %+v", pts)
	}
}

func TestMaxSeriesCapDropsAndCounts(t *testing.T) {
	st := New(Config{MaxSeries: 2})
	st.Append("a", secUs, 1)
	st.Append("b", secUs, 1)
	st.Append("c", secUs, 1)
	if s := st.Stats(); s.Series != 2 || s.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 series 1 dropped", s)
	}
	if names := st.SeriesNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounterResetNeverYieldsNegativeRate(t *testing.T) {
	st := New(Config{})
	// A counter climbing to 20, restarting (process restart), climbing
	// again: 0 → 10 → 20 → 5 → 15.
	fill(st, "c_count", 5, 0, 10, 20, 5, 15)
	// increase = 10 + 10 + 5 (reset: post-restart value) + 10 = 35.
	v, ok := st.Instant(Expr{Fn: "increase", Series: "c_count", WindowUs: 10 * secUs}, 5*secUs)
	if !ok || v != 35 {
		t.Fatalf("increase = %g ok=%v, want 35 true", v, ok)
	}
	v, ok = st.Instant(Expr{Fn: "rate", Series: "c_count", WindowUs: 10 * secUs}, 5*secUs)
	if !ok || v != 3.5 {
		t.Fatalf("rate = %g ok=%v, want 3.5 true", v, ok)
	}
	// Every step of a range query stays non-negative through the reset.
	for _, p := range st.Query(Expr{Fn: "rate", Series: "c_count", WindowUs: 2 * secUs}, secUs, 5*secUs, secUs) {
		if p.Value < 0 {
			t.Fatalf("negative rate %g at %d", p.Value, p.TsUs)
		}
	}
}

func TestInstantSemantics(t *testing.T) {
	st := New(Config{})
	if _, ok := st.Instant(Expr{Series: "missing"}, secUs); ok {
		t.Fatal("missing series reported ok")
	}
	fill(st, "g", 3, 7, 8, 9)
	// Bare series with no window: latest point at or before atUs.
	if v, ok := st.Instant(Expr{Series: "g"}, 2*secUs); !ok || v != 8 {
		t.Fatalf("instant at 2s = %g ok=%v, want 8 true", v, ok)
	}
	if v, ok := st.Instant(Expr{Series: "g"}, 100*secUs); !ok || v != 9 {
		t.Fatalf("instant at 100s = %g ok=%v, want 9 true", v, ok)
	}
	// Derived form without a window is a caller bug, not a zero.
	if _, ok := st.Instant(Expr{Fn: "rate", Series: "g"}, 3*secUs); ok {
		t.Fatal("rate without window reported ok")
	}
	// One point cannot make a rate.
	if _, ok := st.Instant(Expr{Fn: "rate", Series: "g", WindowUs: secUs / 2}, secUs); ok {
		t.Fatal("single-point rate reported ok")
	}
}

func TestBareQueryThinsToStep(t *testing.T) {
	st := New(Config{})
	fill(st, "g", 10)
	// 2s step keeps the last sample per bucket.
	pts := st.Query(Expr{Series: "g"}, secUs, 10*secUs, 2*secUs)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5: %+v", len(pts), pts)
	}
	for i, p := range pts {
		wantTs := (2*int64(i) + 1) * secUs
		wantV := float64(2*i + 1)
		if p.TsUs != wantTs || p.Value != wantV {
			t.Fatalf("point %d = %+v, want {%d %g}", i, p, wantTs, wantV)
		}
	}
}

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
		bad  bool
	}{
		{in: "feedback_score", want: Expr{Series: "feedback_score"}},
		{in: `x_count{proc="w"}`, want: Expr{Series: `x_count{proc="w"}`}},
		{in: "rate(x_count[30s])", want: Expr{Fn: "rate", Series: "x_count", WindowUs: 30 * secUs}},
		{in: "rate(x_count)[30s]", want: Expr{Fn: "rate", Series: "x_count", WindowUs: 30 * secUs}},
		{in: "increase(x_count[1m])", want: Expr{Fn: "increase", Series: "x_count", WindowUs: 60 * secUs}},
		{in: "avg_over_time(feedback_score[5s])", want: Expr{Fn: "avg_over_time", Series: "feedback_score", WindowUs: 5 * secUs}},
		{in: "max_over_time(g)", want: Expr{Fn: "max_over_time", Series: "g"}},
		{in: `rate(x_bucket{le="0.01"}[10s])`, want: Expr{Fn: "rate", Series: `x_bucket{le="0.01"}`, WindowUs: 10 * secUs}},
		{in: "", bad: true},
		{in: "histogram_quantile(x)", bad: true},
		{in: "x_count[30s]", bad: true}, // window needs a function
		{in: "rate(x_count[5s])[5s]", bad: true},
		{in: "rate(x_count[banana])", bad: true},
		{in: "rate(x_count[-5s])", bad: true},
		{in: "rate([5s])", bad: true},
		{in: "rate(x_count", bad: true},
	}
	for _, c := range cases {
		got, err := ParseExpr(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseExpr(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseExpr(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParamHelpers(t *testing.T) {
	const now = 1_000 * secUs
	if n, err := ParseLimitParam("", 7); err != nil || n != 7 {
		t.Fatalf("empty limit = %d, %v", n, err)
	}
	if n, err := ParseLimitParam("50", 7); err != nil || n != 50 {
		t.Fatalf("limit 50 = %d, %v", n, err)
	}
	for _, bad := range []string{"0", "-3", "x", "1.5"} {
		if _, err := ParseLimitParam(bad, 7); err == nil {
			t.Errorf("limit %q parsed", bad)
		}
	}
	if us, err := ParseTimeParam("", 42, now); err != nil || us != 42 {
		t.Fatalf("empty time = %d, %v", us, err)
	}
	if us, err := ParseTimeParam("123456", 0, now); err != nil || us != 123456 {
		t.Fatalf("absolute time = %d, %v", us, err)
	}
	if us, err := ParseTimeParam("-30s", 0, now); err != nil || us != now-30*secUs {
		t.Fatalf("relative time = %d, %v", us, err)
	}
	for _, bad := range []string{"yesterday", "30", "-"} {
		if bad == "30" {
			continue // bare integers are absolute timestamps, valid
		}
		if _, err := ParseTimeParam(bad, 0, now); err == nil {
			t.Errorf("time %q parsed", bad)
		}
	}
	if us, err := ParseStepParam("", 99); err != nil || us != 99 {
		t.Fatalf("empty step = %d, %v", us, err)
	}
	if us, err := ParseStepParam("2s", 0); err != nil || us != 2*secUs {
		t.Fatalf("step 2s = %d, %v", us, err)
	}
	for _, bad := range []string{"0s", "-1s", "fast"} {
		if _, err := ParseStepParam(bad, 0); err == nil {
			t.Errorf("step %q parsed", bad)
		}
	}
}

// queryDoc mirrors the handler's JSON response.
type queryDoc struct {
	Series string  `json:"series"`
	FromUs int64   `json:"fromUs"`
	ToUs   int64   `json:"toUs"`
	StepUs int64   `json:"stepUs"`
	Points []Point `json:"points"`
}

func TestHandlerServesRangeQuery(t *testing.T) {
	st := New(Config{})
	for i := 0; i < 60; i++ {
		st.Append("x_count", int64(i+1)*secUs, float64(i*3))
	}
	now := 60 * secUs
	h := Handler(st, func() int64 { return now })

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/query?series=rate(x_count[10s])&from=-30s&to=0s&step=5s", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var doc queryDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Series != "rate(x_count[10s])" || doc.FromUs != now-30*secUs || doc.ToUs != now || doc.StepUs != 5*secUs {
		t.Fatalf("doc header = %+v", doc)
	}
	if len(doc.Points) != 7 {
		t.Fatalf("got %d points, want 7: %+v", len(doc.Points), doc.Points)
	}
	// The counter climbs 3/s sampled at 1s; a 10s window holds 10 samples
	// = 9 deltas, so every full window rates 27/10s = 2.7.
	for _, p := range doc.Points {
		if p.Value != 2.7 {
			t.Fatalf("rate = %g at %d, want 2.7", p.Value, p.TsUs)
		}
	}
}

// TestHandlerBadRequests is the shared-400 table: every malformed
// from/to/step/limit/series shape must come back 400 with a reasoned body,
// never a silent default or a 500.
func TestHandlerBadRequests(t *testing.T) {
	st := New(Config{})
	st.Append("g", secUs, 1)
	h := Handler(st, func() int64 { return 60 * secUs })
	cases := []struct {
		name, query string
	}{
		{"missing series", ""},
		{"bad expr", "series=rate(g"},
		{"unknown fn", "series=foo(g[5s])"},
		{"bad from", "series=g&from=yesterday"},
		{"bad to", "series=g&to=later"},
		{"bad step", "series=g&step=0s"},
		{"negative step", "series=g&step=-5s"},
		{"bad limit", "series=g&limit=-1"},
		{"limit not a number", "series=g&limit=ten"},
		{"inverted range", "series=g&from=0s&to=-30s"},
		{"too many points", "series=g&from=-3000s&step=1ms"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/query?"+c.query, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400 (body %q)", c.name, rec.Code, rec.Body.String())
		}
		if strings.TrimSpace(rec.Body.String()) == "" {
			t.Errorf("%s: empty 400 body", c.name)
		}
	}
}

func TestScrapeAtFillsStoreDeterministically(t *testing.T) {
	st := New(Config{})
	reg := trace.NewRegistry()
	hist := reg.Histogram("x_seconds")
	for i := 0; i < 3; i++ {
		hist.Observe(time.Millisecond)
	}
	gathered := "gauge_a 4.5\n# TYPE x comment\nx_seconds_count 999\nmalformed line without number x\n"
	sc := NewScraper(ScrapeConfig{
		Store:    st,
		Gather:   func(w io.Writer) { w.Write([]byte(gathered)) },
		Registry: reg,
	})
	sc.ScrapeAt(10 * secUs)

	if v, ok := st.Instant(Expr{Series: "gauge_a"}, 10*secUs); !ok || v != 4.5 {
		t.Fatalf("gauge_a = %g ok=%v", v, ok)
	}
	// The registry snapshot wins over the gathered page on collisions.
	if v, ok := st.Instant(Expr{Series: "x_seconds_count"}, 10*secUs); !ok || v != 3 {
		t.Fatalf("x_seconds_count = %g ok=%v, want 3 (registry over page)", v, ok)
	}
	// Bucket, sum and quantile series materialize from the snapshot.
	names := st.SeriesNames()
	var hasBucket, hasP95 bool
	for _, n := range names {
		if strings.HasPrefix(n, `x_seconds_bucket{le="`) {
			hasBucket = true
		}
		if n == "x_seconds_p95" {
			hasP95 = true
		}
	}
	if !hasBucket || !hasP95 {
		t.Fatalf("snapshot series missing from %v", names)
	}
	// The store's own accounting self-samples.
	if _, ok := st.Instant(Expr{Series: "tsdb_series"}, 10*secUs); !ok {
		t.Fatal("tsdb_series not self-sampled")
	}

	// A second scrape at a later stamp appends; same-stamp replays drop.
	sc.ScrapeAt(11 * secUs)
	sc.ScrapeAt(11 * secUs)
	if s := st.Stats(); s.Dropped == 0 {
		t.Fatalf("duplicate-stamp scrape not dropped: %+v", s)
	}
}
