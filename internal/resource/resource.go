// Package resource implements the Resource Consumer Agents (RCAs) of the
// paper: device-level agents that tell their Customer Agent how much
// electricity can be saved in a given time interval and at what comfort
// cost. Section 3.2.3: "Based on information received from its Resource
// Consumer Agents on the amount of electricity that can be saved in a given
// time interval, a Customer Agent examines and evaluates the rewards for the
// different cut-down values."
//
// The paper leaves CA↔RCA negotiation out of scope; here RCAs answer
// savable-load queries and the Customer Agent aggregates their answers into
// its private cut-down-reward table: for each cut-down level, the cheapest
// combination of device curtailments that achieves the saving determines the
// reward the customer requires.
package resource

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"loadbalance/internal/units"
	"loadbalance/internal/world"
)

// Errors reported by the package.
var (
	ErrNoDevices  = errors.New("resource: household has no devices")
	ErrBadLevels  = errors.New("resource: cut-down levels must be increasing fractions")
	ErrBadSamples = errors.New("resource: sample count must be positive")
)

// Infeasible marks cut-down levels the household physically cannot honour
// (not enough flexible load). Required rewards at such levels are +Inf.
var Infeasible = math.Inf(1)

// Savable is one RCA's answer: how much energy its device can shed during
// the interval and the comfort cost per shed kWh.
type Savable struct {
	Device     world.DeviceKind
	Energy     units.Energy
	CostPerKWh float64
}

// ConsumerAgent is one RCA: it owns a single device of a household.
type ConsumerAgent struct {
	household *world.Household
	device    world.Device
}

// AgentsFor builds one RCA per device of the household.
func AgentsFor(h *world.Household) ([]*ConsumerAgent, error) {
	if len(h.Devices) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoDevices, h.ID)
	}
	out := make([]*ConsumerAgent, 0, len(h.Devices))
	for _, d := range h.Devices {
		out = append(out, &ConsumerAgent{household: h, device: d})
	}
	return out, nil
}

// Device returns the device this agent manages.
func (a *ConsumerAgent) Device() world.Device { return a.device }

// ReportSavable estimates the device's sheddable energy over the interval by
// sampling its expected draw at n points and applying the device's
// flexibility factor. It answers the CA's "determine needs of resource
// consumers" query (Figure 5).
func (a *ConsumerAgent) ReportSavable(iv units.Interval, wm *world.WeatherModel, n int) (Savable, error) {
	if n <= 0 {
		return Savable{}, ErrBadSamples
	}
	slots, err := iv.Split(n)
	if err != nil {
		return Savable{}, err
	}
	var total units.Energy
	for _, slot := range slots {
		mid := slot.Start.Add(slot.Duration() / 2)
		byDev := a.household.DemandByDevice(mid, wm.At(mid))
		total = total.Add(byDev[a.device.Kind].For(slot.Duration()))
	}
	return Savable{
		Device:     a.device.Kind,
		Energy:     total.Scale(a.device.Flexible),
		CostPerKWh: a.device.ComfortCost,
	}, nil
}

// Report aggregates every RCA answer for a household over an interval,
// sorted by ascending comfort cost, together with the household's total
// expected energy in the interval.
type Report struct {
	Savables []Savable
	TotalUse units.Energy
}

// BuildReport queries every RCA of the household. Sampling uses n points
// per device across the interval; the household total uses the same grid so
// shares are consistent.
func BuildReport(h *world.Household, iv units.Interval, wm *world.WeatherModel, n int) (Report, error) {
	agents, err := AgentsFor(h)
	if err != nil {
		return Report{}, err
	}
	if n <= 0 {
		return Report{}, ErrBadSamples
	}
	slots, err := iv.Split(n)
	if err != nil {
		return Report{}, err
	}

	// One pass over the grid collects both totals and per-device energy, so
	// every device sees the same stochastic draw.
	perKind := make(map[world.DeviceKind]units.Energy, len(h.Devices))
	var total units.Energy
	for _, slot := range slots {
		mid := slot.Start.Add(slot.Duration() / 2)
		byDev := h.DemandByDevice(mid, wm.At(mid))
		// Sorted-kind summation: accumulating total in map-iteration order
		// would make repeated runs disagree in the last ulp (float addition
		// is order-sensitive).
		kinds := make([]world.DeviceKind, 0, len(byDev))
		for kind := range byDev {
			kinds = append(kinds, kind)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, kind := range kinds {
			e := byDev[kind].For(slot.Duration())
			perKind[kind] = perKind[kind].Add(e)
			total = total.Add(e)
		}
	}

	rep := Report{TotalUse: total, Savables: make([]Savable, 0, len(agents))}
	for _, a := range agents {
		rep.Savables = append(rep.Savables, Savable{
			Device:     a.device.Kind,
			Energy:     perKind[a.device.Kind].Scale(a.device.Flexible),
			CostPerKWh: a.device.ComfortCost,
		})
	}
	sort.Slice(rep.Savables, func(i, j int) bool {
		if rep.Savables[i].CostPerKWh != rep.Savables[j].CostPerKWh {
			return rep.Savables[i].CostPerKWh < rep.Savables[j].CostPerKWh
		}
		return rep.Savables[i].Device < rep.Savables[j].Device
	})
	return rep, nil
}

// MaxCutDown returns the largest feasible cut-down fraction: total savable
// energy over total use.
func (r Report) MaxCutDown() float64 {
	if r.TotalUse == 0 {
		return 0
	}
	var savable units.Energy
	for _, s := range r.Savables {
		savable = savable.Add(s.Energy)
	}
	f := savable.KWhs() / r.TotalUse.KWhs()
	if f > 1 {
		f = 1
	}
	return f
}

// RequiredRewards computes the customer's private cut-down-reward table: for
// each requested cut-down level, the minimum reward the customer requires to
// shed that fraction of its total use. The requirement is the greedy
// cheapest-first sum of comfort costs over the shed energy, scaled by
// (1 + margin) — the customer wants to come out ahead, not break even.
// Infeasible levels map to +Inf.
//
// The resulting table is the knowledge shown in Figures 8-9 ("this specific
// customer requires a reward of at least 10 for a cut-down of 0.3, at least
// 21 for a cut-down of 0.4, and so on").
func (r Report) RequiredRewards(levels []float64, margin float64) (map[float64]float64, error) {
	if err := validateLevels(levels); err != nil {
		return nil, err
	}
	if margin < 0 {
		return nil, fmt.Errorf("resource: margin %v must be non-negative", margin)
	}
	out := make(map[float64]float64, len(levels))
	for _, level := range levels {
		if level == 0 {
			out[0] = 0
			continue
		}
		need := r.TotalUse.KWhs() * level
		cost := 0.0
		remaining := need
		for _, s := range r.Savables {
			if remaining <= 0 {
				break
			}
			take := s.Energy.KWhs()
			if take > remaining {
				take = remaining
			}
			cost += take * s.CostPerKWh
			remaining -= take
		}
		if remaining > 1e-9 {
			out[level] = Infeasible
			continue
		}
		out[level] = cost * (1 + margin)
	}
	return out, nil
}

// validateLevels checks a strictly increasing fraction grid.
func validateLevels(levels []float64) error {
	if len(levels) == 0 {
		return ErrBadLevels
	}
	prev := -1.0
	for _, l := range levels {
		if l < 0 || l > 1 || math.IsNaN(l) || l <= prev {
			return fmt.Errorf("%w: %v", ErrBadLevels, levels)
		}
		prev = l
	}
	return nil
}

// DefaultSampleCount is the per-device sampling grid used by callers that
// do not need custom resolution: one sample per 15 minutes, minimum 4.
func DefaultSampleCount(iv units.Interval) int {
	n := int(iv.Duration() / (15 * time.Minute))
	if n < 4 {
		n = 4
	}
	return n
}
