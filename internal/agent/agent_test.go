package agent

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

func newBus(t *testing.T) *bus.InProc {
	t.Helper()
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestStartValidation(t *testing.T) {
	b := newBus(t)
	if _, err := Start("a", b, nil, 4); !errors.Is(err, ErrNilHandler) {
		t.Fatalf("nil handler error = %v", err)
	}
	rt, err := Start("a", b, HandlerFuncs{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := Start("a", b, HandlerFuncs{}, 4); !errors.Is(err, bus.ErrDuplicateAgent) {
		t.Fatalf("duplicate registration error = %v", err)
	}
	if rt.Name() != "a" {
		t.Fatalf("name = %q", rt.Name())
	}
}

func TestOnStartRunsBeforeMessages(t *testing.T) {
	b := newBus(t)
	started := make(chan struct{})
	echo, err := Start("echo", b, HandlerFuncs{
		Start: func(rt *Runtime) error {
			close(started)
			return nil
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Stop()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("OnStart never ran")
	}
}

func TestMessageRoundTripBetweenAgents(t *testing.T) {
	b := newBus(t)
	got := make(chan message.Envelope, 1)

	// Responder echoes any cut-down bid back as an award.
	responder, err := Start("ua", b, HandlerFuncs{
		Message: func(rt *Runtime, env message.Envelope) error {
			p, err := env.Decode()
			if err != nil {
				return err
			}
			bid, ok := p.(message.CutDownBid)
			if !ok {
				return nil
			}
			return rt.Send(env.From, env.Session, message.Award{
				Round: bid.Round, CutDown: bid.CutDown, Reward: 17,
			})
		},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer responder.Stop()

	sender, err := Start("c1", b, HandlerFuncs{
		Start: func(rt *Runtime) error {
			return rt.Send("ua", "s1", message.CutDownBid{Round: 1, CutDown: 0.4})
		},
		Message: func(rt *Runtime, env message.Envelope) error {
			got <- env
			return nil
		},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()

	select {
	case env := <-got:
		if env.Kind != message.KindAward {
			t.Fatalf("kind = %v", env.Kind)
		}
		p, err := env.Decode()
		if err != nil {
			t.Fatal(err)
		}
		award := p.(message.Award)
		if !units.NearlyEqual(award.CutDown, 0.4, 1e-12) || award.Reward != 17 {
			t.Fatalf("award = %+v", award)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no award received")
	}
}

func TestBroadcastFromAgent(t *testing.T) {
	b := newBus(t)
	var count atomic.Int32
	for _, name := range []string{"c1", "c2", "c3"} {
		rt, err := Start(name, b, HandlerFuncs{
			Message: func(rt *Runtime, env message.Envelope) error {
				count.Add(1)
				return nil
			},
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Stop()
	}
	ua, err := Start("ua", b, HandlerFuncs{
		Start: func(rt *Runtime) error {
			return rt.Broadcast("s1", message.SessionEnd{Round: 1, Reason: "test"})
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Stop()

	deadline := time.After(2 * time.Second)
	for count.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("broadcast reached %d of 3", count.Load())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestHandlerErrorsAreRecorded(t *testing.T) {
	b := newBus(t)
	boom := errors.New("boom")
	rt, err := Start("ua", b, HandlerFuncs{
		Message: func(rt *Runtime, env message.Envelope) error { return boom },
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := b.Register("x", 1); err != nil {
		t.Fatal(err)
	}
	env, err := message.NewEnvelope("x", "ua", "s1", message.OfferReply{Round: 1, Accept: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for len(rt.Errors()) == 0 {
		select {
		case <-deadline:
			t.Fatal("handler error never recorded")
		case <-time.After(time.Millisecond):
		}
	}
	if !errors.Is(rt.Errors()[0], boom) {
		t.Fatalf("recorded = %v", rt.Errors()[0])
	}
}

func TestStartErrorStopsLoop(t *testing.T) {
	b := newBus(t)
	rt, err := Start("ua", b, HandlerFuncs{
		Start: func(rt *Runtime) error { return errors.New("no start") },
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt.Wait() // loop must exit on its own
	if len(rt.Errors()) != 1 {
		t.Fatalf("errors = %v", rt.Errors())
	}
	rt.Stop() // still safe
}

func TestStopIsIdempotentAndUnregisters(t *testing.T) {
	b := newBus(t)
	rt, err := Start("ua", b, HandlerFuncs{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	rt.Stop()
	if got := b.Agents(); len(got) != 0 {
		t.Fatalf("agents after stop = %v", got)
	}
}

func TestModelResponseTracking(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ResponseRate("c1"); ok {
		t.Fatal("fresh model should have no rate")
	}
	steps := []struct {
		peer     string
		positive bool
	}{
		{"c1", true}, {"c1", true}, {"c1", false},
		{"c2", true},
	}
	for _, s := range steps {
		if err := m.RecordResponse(s.peer, s.positive); err != nil {
			t.Fatal(err)
		}
	}
	rate, ok := m.ResponseRate("c1")
	if !ok || !units.NearlyEqual(rate, 2.0/3, 1e-12) {
		t.Fatalf("c1 rate = %v, %v", rate, ok)
	}
	rate, ok = m.ResponseRate("c2")
	if !ok || rate != 1 {
		t.Fatalf("c2 rate = %v, %v", rate, ok)
	}
	overall, ok := m.OverallResponseRate()
	if !ok || !units.NearlyEqual(overall, 3.0/4, 1e-12) {
		t.Fatalf("overall = %v, %v", overall, ok)
	}
}

func TestModelWorldValues(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.WorldValue("temperature_c"); ok {
		t.Fatal("fresh model should have no world values")
	}
	if err := m.SetWorldValue("temperature_c", -5); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.WorldValue("temperature_c"); !ok || v != -5 {
		t.Fatalf("value = %v, %v", v, ok)
	}
	// Overwrite replaces rather than accumulates.
	if err := m.SetWorldValue("temperature_c", 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.WorldValue("temperature_c"); v != 3 {
		t.Fatalf("value after overwrite = %v", v)
	}
	if m.WorldInfo.Len() != 1 {
		t.Fatalf("store len = %d, want 1", m.WorldInfo.Len())
	}
}
