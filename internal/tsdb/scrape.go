package tsdb

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"loadbalance/internal/trace"
)

// ScrapeConfig wires a Scraper to its sources.
type ScrapeConfig struct {
	Store *Store
	// Interval between scrapes (default 1s). Start is a no-op when <= 0.
	Interval time.Duration
	// Gather renders the process's metric page; the scraper parses the
	// exposition text into samples. Optional.
	Gather func(w io.Writer)
	// Registry supplies histogram snapshots via the trace iteration hook;
	// its samples win over Gather's on name collisions (they are a
	// coherent snapshot, the page render is not). Optional.
	Registry *trace.Registry
	// NowUs stamps each scrape (default wall clock). Tests inject a fake
	// clock here; ScrapeAt bypasses it entirely.
	NowUs func() int64
}

// Scraper periodically samples the metric surfaces into the store. One
// goroutine; Close is idempotent.
type Scraper struct {
	cfg       ScrapeConfig
	dur       *trace.Histogram
	buf       bytes.Buffer
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewScraper builds a scraper (not yet started); ScrapeAt can be driven
// manually for deterministic tests.
func NewScraper(cfg ScrapeConfig) *Scraper {
	if cfg.NowUs == nil {
		cfg.NowUs = func() int64 { return time.Now().UnixMicro() }
	}
	sc := &Scraper{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if cfg.Registry != nil {
		sc.dur = cfg.Registry.Histogram("tsdb_scrape_duration_seconds")
	}
	return sc
}

// Start launches the scrape loop.
func (sc *Scraper) Start() {
	if sc.cfg.Interval <= 0 {
		close(sc.done)
		return
	}
	go sc.run()
}

func (sc *Scraper) run() {
	defer close(sc.done)
	t := time.NewTicker(sc.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-t.C:
			start := sc.cfg.NowUs()
			sc.ScrapeAt(start)
			sc.dur.Observe(time.Duration(sc.cfg.NowUs()-start) * time.Microsecond)
		}
	}
}

// Close stops the loop and waits for it to exit.
func (sc *Scraper) Close() {
	sc.closeOnce.Do(func() { close(sc.stop) })
	<-sc.done
}

// ScrapeAt performs one scrape, stamping every sample with the injected
// timestamp: gathered page samples first, histogram snapshots over them,
// then the store's own accounting, all appended in sorted name order.
func (sc *Scraper) ScrapeAt(tsUs int64) {
	samples := make(map[string]float64, 64)
	if sc.cfg.Gather != nil {
		sc.buf.Reset()
		sc.cfg.Gather(&sc.buf)
		parseExpositionInto(samples, sc.buf.String())
	}
	if sc.cfg.Registry != nil {
		for _, hs := range sc.cfg.Registry.Snapshots() {
			snapshotInto(samples, hs)
		}
	}
	stats := sc.cfg.Store.Stats()
	samples["tsdb_series"] = float64(stats.Series)
	samples["tsdb_points"] = float64(stats.Points)
	samples["tsdb_evictions"] = float64(stats.Evictions)

	batch := make([]Sample, 0, len(samples))
	for name, v := range samples {
		batch = append(batch, Sample{Name: name, Value: v}) //gridlint:allow floatmaprange(AppendBatch sorts by name before appending; order-independent)
	}
	sc.cfg.Store.AppendBatch(tsUs, batch)
}

// snapshotInto expands one histogram snapshot into its exposition series.
func snapshotInto(samples map[string]float64, hs trace.HistogramSnapshot) {
	lbl := func(extra string) string {
		switch {
		case hs.Labels == "" && extra == "":
			return ""
		case hs.Labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + hs.Labels + "}"
		default:
			return "{" + hs.Labels + "," + extra + "}"
		}
	}
	for _, b := range hs.Buckets {
		samples[hs.Family+"_bucket"+lbl(fmt.Sprintf("le=%q", b.LE))] = float64(b.Cum)
	}
	samples[hs.Family+"_sum"+lbl("")] = hs.SumSeconds
	samples[hs.Family+"_count"+lbl("")] = float64(hs.Count)
	if hs.Count > 0 {
		samples[hs.Family+"_p50"+lbl("")] = hs.P50
		samples[hs.Family+"_p95"+lbl("")] = hs.P95
		samples[hs.Family+"_p99"+lbl("")] = hs.P99
	}
}

// parseExpositionInto parses Prometheus text exposition lines
// ("name{labels} value" or "name value") into samples, keyed by the full
// series string. Comment lines and unparsable values are skipped.
func parseExpositionInto(samples map[string]float64, text string) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		name := strings.TrimSpace(line[:sp])
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil || name == "" {
			continue
		}
		samples[name] = v
	}
}
