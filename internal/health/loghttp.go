package health

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// appendEventJSON renders one event as a compact JSON object. Hand-rolled
// for the same reason the trace dump writer is: the fields are dynamic
// key/value pairs that encoding/json would force through maps, and the
// file sink runs under the ring lock.
func appendEventJSON(b []byte, proc string, ev *event) []byte {
	b = append(b, `{"tsUs":`...)
	b = strconv.AppendInt(b, ev.timeUs, 10)
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, ev.level.String())
	if proc != "" {
		b = append(b, `,"proc":`...)
		b = strconv.AppendQuote(b, proc)
	}
	b = append(b, `,"component":`...)
	b = strconv.AppendQuote(b, ev.component)
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, ev.msg)
	for _, f := range ev.fields {
		b = append(b, ',')
		b = appendFieldJSON(b, &f)
	}
	b = append(b, '}')
	return b
}

// appendFieldJSON renders one field as `"key":value`.
func appendFieldJSON(b []byte, f *Field) []byte {
	b = strconv.AppendQuote(b, f.Key)
	b = append(b, ':')
	if f.isInt {
		b = strconv.AppendInt(b, f.Int, 10)
	} else {
		b = strconv.AppendQuote(b, f.Str)
	}
	return b
}

// appendFieldsJSON renders a field list as one JSON object — the transit
// form a StreamEvent carries across processes.
func appendFieldsJSON(b []byte, fields []Field) []byte {
	b = append(b, '{')
	for i := range fields {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFieldJSON(b, &fields[i])
	}
	return append(b, '}')
}

// appendAPIEventJSON renders an /logs API event (same shape as the file
// sink lines).
func appendAPIEventJSON(b []byte, ev *Event) []byte {
	lv, _ := ParseLevel(ev.Level)
	e := event{timeUs: ev.TimeUs, level: lv, component: ev.Component, msg: ev.Msg, fields: ev.Fields}
	return appendEventJSON(b, "", &e)
}

// WriteLogDump renders the logger's ring as one JSON document — the /logs
// response body and the flight-recorder logs.json payload.
func WriteLogDump(w io.Writer, l *Logger, f LogFilter) error {
	events := l.Events(f)
	total, dropped, _ := l.Stats()
	b := make([]byte, 0, 256+128*len(events))
	b = append(b, `{"proc":`...)
	b = strconv.AppendQuote(b, l.Proc())
	b = append(b, `,"total":`...)
	b = strconv.AppendUint(b, total, 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendUint(b, dropped, 10)
	b = append(b, `,"events":[`...)
	for i := range events {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendAPIEventJSON(b, &events[i])
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}

// LogHandler serves the logger's ring as JSON. Query params: level
// (minimum level name), component (exact match), limit (newest N).
// Malformed params are a 400, not a silent full dump.
func LogHandler(l *Logger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var f LogFilter
		q := r.URL.Query()
		if s := q.Get("level"); s != "" {
			lv, err := ParseLevel(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad level %q", s), http.StatusBadRequest)
				return
			}
			f.MinLevel = lv
		}
		f.Component = q.Get("component")
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteLogDump(w, l, f)
	}
}

// WriteLogMetrics renders the logger's counters in Prometheus exposition
// format, matching the repo's fmt.Fprintf writer idiom.
func WriteLogMetrics(w io.Writer, l *Logger) {
	total, dropped, perLevel := l.Stats()
	fmt.Fprintf(w, "# TYPE health_log_events_total counter\n")
	for i, c := range perLevel {
		fmt.Fprintf(w, "health_log_events_total{level=%q} %d\n", Level(i).String(), c)
	}
	fmt.Fprintf(w, "# TYPE health_log_ring_total counter\nhealth_log_ring_total %d\n", total)
	fmt.Fprintf(w, "# TYPE health_log_ring_dropped_total counter\nhealth_log_ring_dropped_total %d\n", dropped)
}
