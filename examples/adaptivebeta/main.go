// Adaptivebeta explores the paper's future-work question (Section 7): "the
// effects of dynamically varying the value of beta on the basis of
// experience". It sweeps constant beta values against the adaptive variant
// that escalates beta whenever a round makes too little progress.
package main

import (
	"fmt"
	"log"

	"loadbalance"
	"loadbalance/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("E6: constant vs adaptive beta on the paper scenario")
	fmt.Println()
	tab, err := sim.E6BetaSweep([]float64{0.25, 0.5, 1, 1.85, 3, 5, 8})
	if err != nil {
		return err
	}
	fmt.Println(tab.String())

	// Show the escalation on one slow run: beta 0.25 stalls, the adaptive
	// session raises it round by round.
	s, err := loadbalance.PaperScenario()
	if err != nil {
		return err
	}
	s.Params.Beta = 0.25
	s.Params.AdaptiveBeta = true
	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Println("adaptive run at base beta 0.25 — effective beta per round:")
	for _, rec := range res.History {
		fmt.Printf("  round %2d: beta %.3f, overuse %.2f kWh\n", rec.Round, rec.BetaUsed, rec.OveruseKWh)
	}
	fmt.Printf("outcome: %s after %d rounds, reward paid %.2f\n",
		res.Outcome, res.Rounds, res.TotalReward)
	return nil
}
