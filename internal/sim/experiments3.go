package sim

import (
	"fmt"
	"time"

	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/resource"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
	"loadbalance/internal/world"
)

// E13ForecastDrivenNegotiation exercises the UA's statistical prediction
// task (Section 5.1.2) end to end: instead of an oracle reading of each
// customer's upcoming use, the UA forecasts it from fourteen days of metered
// history for the same evening window, then negotiates on the forecast. The
// table compares the oracle-driven and forecast-driven runs; the forecast
// MAPE quantifies the model error the negotiation absorbs.
func E13ForecastDrivenNegotiation(n int, seed int64) (*Table, error) {
	pop, err := world.NewPopulation(world.PopulationConfig{N: n, Seed: seed, EVShare: 0.2})
	if err != nil {
		return nil, err
	}
	const historyDays = 14
	target := units.Interval{
		Start: time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC),
		End:   time.Date(1998, 1, 20, 19, 0, 0, 0, time.UTC),
	}
	levels := paperLevels()

	// Metered history: the same window on each of the preceding days.
	histories := make(map[string][]float64, n)
	for _, h := range pop.Households {
		series := make([]float64, 0, historyDays)
		for d := historyDays; d >= 1; d-- {
			w := units.Interval{
				Start: target.Start.AddDate(0, 0, -d),
				End:   target.End.AddDate(0, 0, -d),
			}
			rep, err := resource.BuildReport(h, w, pop.Weather, resource.DefaultSampleCount(w))
			if err != nil {
				return nil, err
			}
			series = append(series, rep.TotalUse.KWhs())
		}
		histories[h.ID] = series
	}
	loads, fcReport, err := utilityagent.Forecaster{}.LoadsFromHistory(histories)
	if err != nil {
		return nil, err
	}

	// Oracle truth for the target window, which also drives the customers'
	// actual preferences (the customers know themselves).
	actual := make(map[string]units.Energy, n)
	specs := make([]core.CustomerSpec, 0, n)
	var totalActual units.Energy
	for _, h := range pop.Households {
		rep, err := resource.BuildReport(h, target, pop.Weather, resource.DefaultSampleCount(target))
		if err != nil {
			return nil, err
		}
		prefs, err := customeragent.FromReport(rep, levels, 0.2)
		if err != nil {
			return nil, err
		}
		actual[h.ID] = rep.TotalUse
		totalActual = totalActual.Add(rep.TotalUse)
		specs = append(specs, core.CustomerSpec{
			Name:      h.ID,
			Predicted: rep.TotalUse, // oracle run value; overwritten below for the forecast run
			Allowed:   rep.TotalUse,
			Prefs:     prefs,
			Strategy:  customeragent.StrategyGreedy,
		})
	}
	mape, err := utilityagent.ForecastError(loads, actual)
	if err != nil {
		return nil, err
	}
	capacity := totalActual.Scale(1 / 1.35) // the paper's 35% overuse

	run := func(label string, useForecast bool) ([]string, error) {
		s := core.Scenario{
			SessionID:    "e13-" + label,
			Window:       target,
			NormalUse:    capacity,
			Method:       utilityagent.MethodRewardTable,
			Params:       core.PaperParams(),
			InitialSlope: 42.5,
			Customers:    make([]core.CustomerSpec, len(specs)),
			Timeout:      60 * time.Second,
		}
		copy(s.Customers, specs)
		if useForecast {
			for i := range s.Customers {
				l := loads[s.Customers[i].Name]
				s.Customers[i].Predicted = l.Predicted
				s.Customers[i].Allowed = l.Allowed
			}
		}
		calibrateRewards(&s)
		res, err := core.Run(s)
		if err != nil {
			return nil, err
		}
		return []string{
			label,
			fmt.Sprintf("%.2f", res.InitialOveruseKWh),
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%.4f", res.FinalOveruseRatio),
			res.Outcome,
		}, nil
	}

	t := &Table{
		Name:    fmt.Sprintf("E13 (Section 5.1.2): oracle vs forecast-driven negotiation, %d customers", n),
		Columns: []string{"ua_model", "initial_overuse_kwh", "rounds", "final_overuse_ratio", "outcome"},
		Notes: fmt.Sprintf("fleet forecast MAPE %.1f%% over %d days of history; forecast total %.1f vs actual %.1f kWh",
			100*mape, historyDays, fcReport.TotalPredicted.KWhs(), totalActual.KWhs()),
	}
	for _, cfg := range []struct {
		label       string
		useForecast bool
	}{{"oracle", false}, {"forecast", true}} {
		row, err := run(cfg.label, cfg.useForecast)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}
