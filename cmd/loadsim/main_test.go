package main

import (
	"strings"
	"testing"

	"loadbalance/internal/store"
)

func TestRunPaperScenario(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("default run: %v", err)
	}
}

func TestRunMethodVariants(t *testing.T) {
	for _, method := range []string{"offer", "request_for_bids", "auto"} {
		if err := run([]string{"-method", method}); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunPopulationScenario(t *testing.T) {
	if err := run([]string{"-scenario", "population", "-n", "8", "-seed", "3"}); err != nil {
		t.Fatalf("population run: %v", err)
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	if err := run([]string{"-drop", "0.1", "-round-timeout", "25ms"}); err != nil {
		t.Fatalf("lossy run: %v", err)
	}
}

func TestRunAdaptiveBeta(t *testing.T) {
	if err := run([]string{"-beta", "0.5", "-adaptive"}); err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{name: "unknown scenario", args: []string{"-scenario", "mars"}, want: "unknown scenario"},
		{name: "unknown method", args: []string{"-method", "telepathy"}, want: "unknown method"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want %q", err, tt.want)
			}
		})
	}
}

// TestRunDataDirResumes covers -data-dir: the first run journals its
// outcome, the second resumes from the journal, and the journal holds one
// sealed session record with the full saved result.
func TestRunDataDirResumes(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scenario", "population", "-n", "6", "-seed", "3", "-data-dir", dir}
	if err := run(args); err != nil {
		t.Fatalf("first run: %v", err)
	}
	rec, err := store.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("journal not sealed after the run")
	}
	var sessions int
	for _, r := range rec.Records {
		if r.Kind != store.KindSession {
			continue
		}
		sessions++
		out, err := store.DecodeSession(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Result) == 0 {
			t.Fatal("flat run journaled no saved result document")
		}
	}
	if sessions != 1 {
		t.Fatalf("journal holds %d session records, want 1", sessions)
	}
	// The resume path must not append a second session record.
	if err := run(args); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	rec, err = store.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sessions = 0
	for _, r := range rec.Records {
		if r.Kind == store.KindSession {
			sessions++
		}
	}
	if sessions != 1 {
		t.Fatalf("resume re-negotiated: %d session records", sessions)
	}
}

// TestRunDataDirSharded journals an in-process sharded run through the
// cluster engine's decision point and resumes from the award summary.
func TestRunDataDirSharded(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scenario", "population", "-n", "8", "-seed", "5", "-shards", "2", "-data-dir", dir}
	if err := run(args); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	rec, err := store.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("sharded journal not sealed")
	}
	if err := run(args); err != nil {
		t.Fatalf("sharded resume: %v", err)
	}
}

// TestRunDataDirRejectsTCP keeps the unsupported combination loud.
func TestRunDataDirRejectsTCP(t *testing.T) {
	err := run([]string{"-shards", "2", "-tcp", "-data-dir", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "-data-dir") {
		t.Fatalf("error = %v, want the -data-dir/-tcp rejection", err)
	}
}

// TestRunDataDirRefusesChangedParameters pins the fingerprint check: a
// journal written under one beta must not replay as another beta's result.
func TestRunDataDirRefusesChangedParameters(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-beta", "1.85", "-data-dir", dir}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	err := run([]string{"-beta", "5", "-data-dir", dir})
	if err == nil || !strings.Contains(err.Error(), "different parameters") {
		t.Fatalf("error = %v, want the stale-parameters refusal", err)
	}
}
