// Fixture: in a restricted package only the replay/restore functions (by
// name, per the test's regexp) are clock-free; the live loop is not.
package restricted

import "time"

// RestoreState is on the replay surface: flagged.
func RestoreState() time.Time {
	return time.Now() // want `time\.Now`
}

func applyJournalRecord(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since`
}

// TickLoop is live-path code: the clock is its job.
func TickLoop() time.Time {
	return time.Now()
}
