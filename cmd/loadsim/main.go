// Command loadsim runs one load-balancing negotiation and prints the full
// per-round trace — the textual counterpart of the prototype's GUI screens
// in Figures 6-9 of the paper.
//
// Usage:
//
//	loadsim                          # the paper's Figures 6-9 scenario
//	loadsim -scenario population -n 50 -seed 7
//	loadsim -method offer            # compare announcement methods
//	loadsim -beta 3 -adaptive        # negotiation-speed experiments
//	loadsim -drop 0.1 -round-timeout 50ms
//	loadsim -shards 4                # hierarchical (concentrator) negotiation
//	loadsim -shards 4 -tcp           # concentrators behind TCP connections
//	loadsim -scenario population -n 5000 -data-dir ./run1   # resumable
//
// With -data-dir the negotiation outcome is journaled; re-running the same
// scenario against the same directory resumes from the journal instead of
// negotiating again — a long population run interrupted before its outcome
// was durable restarts from scratch, one interrupted after it replays
// instantly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"loadbalance"
	"loadbalance/internal/health"
	"loadbalance/internal/sim"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	var (
		scenario     = fs.String("scenario", "paper", "scenario: paper | population")
		n            = fs.Int("n", 50, "population size (population scenario)")
		seed         = fs.Int64("seed", 1, "random seed")
		method       = fs.String("method", "reward_table", "method: reward_table | offer | request_for_bids | auto")
		beta         = fs.Float64("beta", 0, "override beta (0 keeps the scenario default)")
		adaptive     = fs.Bool("adaptive", false, "enable adaptive beta (Section 7 extension)")
		drop         = fs.Float64("drop", 0, "message drop rate in [0,1]")
		roundTimeout = fs.Duration("round-timeout", 0, "close rounds on timeout (required with -drop)")
		margin       = fs.Float64("margin", 0.2, "customer profit margin (population scenario)")
		verifyTrace  = fs.Bool("verify", true, "verify the trace against the protocol properties")
		shards       = fs.Int("shards", 0, "negotiate through this many Concentrator Agents (0 = flat)")
		tcp          = fs.Bool("tcp", false, "place each concentrator behind its own TCP connections (requires -shards)")
		dataDir      = fs.String("data-dir", "", "journal the outcome under this directory; re-running the same scenario resumes from the journal")
		traceDump    = fs.String("trace-dump", "", "record negotiation spans and write the ring as JSON to this file on exit (the same document gridd serves on /trace)")
		logLevel     = fs.String("log-level", "info", "structured log level: debug | info | warn | error | off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := health.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := health.Init(health.Config{Proc: "loadsim", MinLevel: lvl, StderrLevel: health.Warn})
	if err != nil {
		return err
	}
	defer logger.Close()
	if *traceDump != "" {
		trace.Enable("loadsim", 16384)
		defer func() {
			var buf bytes.Buffer
			if err := trace.WriteDump(&buf, trace.Filter{}); err == nil {
				if werr := os.WriteFile(*traceDump, buf.Bytes(), 0o644); werr != nil {
					health.Logf(health.Error, "trace", "trace dump failed: %v", werr)
				}
			}
		}()
	}

	var s loadbalance.Scenario
	switch *scenario {
	case "paper":
		s, err = loadbalance.PaperScenario()
	case "population":
		s, err = loadbalance.PopulationScenario(loadbalance.PopulationConfig{
			N: *n, Seed: *seed, Margin: *margin,
		})
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	switch *method {
	case "reward_table":
		s.Method = loadbalance.MethodRewardTable
	case "offer":
		s.Method = loadbalance.MethodOffer
	case "request_for_bids":
		s.Method = loadbalance.MethodRequestForBids
	case "auto":
		s.Method = loadbalance.MethodAuto
		s.LeadTime = 2 * time.Hour
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if *beta > 0 {
		s.Params.Beta = *beta
	}
	s.Params.AdaptiveBeta = *adaptive
	s.DropRate = *drop
	s.RoundTimeout = *roundTimeout
	s.Seed = *seed

	if *tcp && *shards < 1 {
		return fmt.Errorf("-tcp requires -shards")
	}
	var journal *store.Store
	// The fingerprint covers every flag that changes the outcome, so a
	// resume can never replay an outcome negotiated under other parameters.
	fingerprint := fmt.Sprintf("scenario=%s n=%d seed=%d method=%s beta=%g adaptive=%t drop=%g round-timeout=%s margin=%g shards=%d",
		*scenario, *n, *seed, *method, s.Params.Beta, *adaptive, *drop, *roundTimeout, *margin, *shards)
	if *dataDir != "" {
		if *tcp {
			return fmt.Errorf("-data-dir does not combine with -tcp (the distributed runner owns its own processes)")
		}
		var rec *store.Recovered
		journal, rec, err = store.Open(*dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer journal.Close()
		done, err := resumeFromJournal(rec, s.SessionID, fingerprint)
		if err != nil {
			return err
		}
		if done {
			fmt.Printf("\nresumed from journal at %s: session %q already negotiated; delete the directory to re-run\n",
				*dataDir, s.SessionID)
			return nil
		}
	}
	if *shards > 0 {
		return runSharded(s, *shards, *tcp, journal, fingerprint)
	}

	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(loadbalance.Render(res))

	if *verifyTrace && s.Method == utilityagent.MethodRewardTable && len(res.History) > 0 {
		rep := loadbalance.VerifyTrace(res, s.Params)
		if rep.OK() {
			fmt.Printf("\nverified %d protocol properties: all hold\n", len(rep.Checked))
		} else {
			return fmt.Errorf("trace violates protocol properties: %w", rep.Error())
		}
	}
	if journal != nil {
		if err := journalFlatResult(journal, s.SessionID, fingerprint, res); err != nil {
			return err
		}
	}
	return nil
}

// journalFlatResult appends the flat run's outcome — including the full
// saved result document, so a resume can re-render the complete trace — and
// seals the journal.
func journalFlatResult(journal *store.Store, session, fingerprint string, res *loadbalance.Result) error {
	saved, err := json.Marshal(sim.ToSaved(res))
	if err != nil {
		return err
	}
	out := store.SessionOutcome{
		SessionID: session,
		Outcome:   res.Outcome,
		Rounds:    res.Rounds,
		Config:    fingerprint,
		Bids:      res.FinalBids,
		Awards:    make(map[string]store.AwardEntry, len(res.Awards)),
		Result:    saved,
	}
	for _, a := range res.Awards {
		out.Awards[a.Customer] = store.AwardEntry{CutDown: a.Award.CutDown, Reward: a.Award.Reward}
	}
	rec, err := store.NewSessionRecord(out)
	if err != nil {
		return err
	}
	if err := journal.Append(rec); err != nil {
		return err
	}
	return journal.Seal()
}

// resumeFromJournal looks for the session's outcome in the recovered
// journal and, when present, renders it instead of negotiating: the full
// trace when the record carries the saved result (flat runs), an award
// summary otherwise (sharded runs journaled by the cluster engine). An
// outcome fingerprinted with different parameters is refused, never
// silently replayed.
func resumeFromJournal(rec *store.Recovered, session, fingerprint string) (bool, error) {
	for i := len(rec.Records) - 1; i >= 0; i-- {
		r := rec.Records[i]
		if r.Kind != store.KindSession {
			continue
		}
		out, err := store.DecodeSession(r)
		if err != nil || out.SessionID != session {
			continue
		}
		if out.Config != "" && out.Config != fingerprint {
			return false, fmt.Errorf("journal holds session %q negotiated under different parameters\n  journal: %s\n  current: %s\ndelete the data directory to re-run", session, out.Config, fingerprint)
		}
		if len(out.Result) > 0 {
			var saved sim.SavedResult
			if err := json.Unmarshal(out.Result, &saved); err == nil {
				fmt.Print(loadbalance.Render(saved.FromSaved()))
				return true, nil
			}
		}
		fmt.Printf("session %s: %s after %d rounds\n", out.SessionID, out.Outcome, out.Rounds)
		names := make([]string, 0, len(out.Awards))
		for n := range out.Awards {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			a := out.Awards[n]
			fmt.Printf("  %-10s cut-down %.2f reward %.2f\n", n, a.CutDown, a.Reward)
		}
		return true, nil
	}
	return false, nil
}

// runSharded negotiates the scenario through a concentrator tree, in-process
// or (with tcp) with every concentrator behind its own TCP connection pair,
// and prints the root-session trace plus the transport's counters. A
// non-nil journal makes the in-process run resumable: the cluster engine
// records the outcome at its decision point.
func runSharded(s loadbalance.Scenario, shards int, tcp bool, journal *store.Store, fingerprint string) error {
	if !tcp {
		res, err := loadbalance.RunSharded(loadbalance.ClusterConfig{Scenario: s, Shards: shards, Journal: journal, JournalConfig: fingerprint})
		if err != nil {
			return err
		}
		for _, e := range res.AgentErrors {
			return fmt.Errorf("agent error: %w", e)
		}
		fmt.Print(loadbalance.Render(&loadbalance.Result{Result: res.Result, Bus: sumShardStats(res)}))
		fmt.Printf("\nsharded over %d concentrators; awards above are per-concentrator aggregates\n", res.Shards)
		if journal != nil {
			return journal.Seal()
		}
		return nil
	}
	res, err := loadbalance.RunDistributed(loadbalance.DistributedConfig{Scenario: s, Shards: shards})
	if err != nil {
		return err
	}
	for _, e := range res.AgentErrors {
		return fmt.Errorf("agent error: %w", e)
	}
	fmt.Print(loadbalance.Render(&loadbalance.Result{Result: res.Result.Result, Bus: sumShardStats(&res.Result)}))
	fmt.Printf("\ndistributed over %d concentrator connection pairs (wire protocol v2)\n", res.Shards)
	fmt.Printf("wire: root %d frames in / %d out; member %d in / %d out; %d dropped, %d malformed\n",
		res.RootWire.FramesIn, res.RootWire.FramesOut,
		res.MemberWire.FramesIn, res.MemberWire.FramesOut,
		res.RootWire.Dropped+res.MemberWire.Dropped,
		res.RootWire.Malformed+res.MemberWire.Malformed)
	return nil
}

// sumShardStats folds both tiers' bus counters into one, so flat and
// sharded renders compare fairly.
func sumShardStats(res *loadbalance.ClusterResult) loadbalance.BusStats {
	total := res.ParentBus
	for _, s := range res.ShardBuses {
		total.Sent += s.Sent
		total.Delivered += s.Delivered
		total.Dropped += s.Dropped
		total.Rejected += s.Rejected
	}
	return total
}
