package store

import (
	"fmt"
	"io"
	"time"
)

// WriteMetrics renders the store counters in Prometheus text exposition
// format — the store_* series gridd's /metrics endpoint exports next to the
// grid_* and bus_wire_* families.
func WriteMetrics(w io.Writer, st Stats) {
	counters := []struct {
		name string
		v    uint64
	}{
		{"store_appends_total", st.Appends},
		{"store_commits_total", st.Commits},
		{"store_fsyncs_total", st.Fsyncs},
		{"store_segment_rotations_total", st.Rotations},
		{"store_snapshots_total", st.Snapshots},
		{"store_bytes_written_total", st.BytesWritten},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}
	fmt.Fprintf(w, "# TYPE store_last_seq gauge\nstore_last_seq %d\n", st.LastSeq)
	fmt.Fprintf(w, "# TYPE store_snapshot_seq gauge\nstore_snapshot_seq %d\n", st.SnapshotSeq)
	age := -1.0
	if !st.SnapshotTime.IsZero() {
		age = time.Since(st.SnapshotTime).Seconds()
	}
	fmt.Fprintf(w, "# TYPE store_snapshot_age_seconds gauge\nstore_snapshot_age_seconds %g\n", age)
	appendAge := -1.0
	if !st.LastAppend.IsZero() {
		appendAge = time.Since(st.LastAppend).Seconds()
	}
	fmt.Fprintf(w, "# TYPE store_last_append_age_seconds gauge\nstore_last_append_age_seconds %g\n", appendAge)
	fmt.Fprintf(w, "# TYPE store_replayed_records gauge\nstore_replayed_records %d\n", st.Replayed)
	fmt.Fprintf(w, "# TYPE store_recovered gauge\nstore_recovered %d\n", boolGauge(st.Recovered))
	fmt.Fprintf(w, "# TYPE store_clean_start gauge\nstore_clean_start %d\n", boolGauge(st.CleanStart))
	fmt.Fprintf(w, "# TYPE store_torn_tail_bytes gauge\nstore_torn_tail_bytes %d\n", st.TornBytes)
}

// boolGauge renders a boolean as 0/1.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
