package sim

import (
	"fmt"
	"time"

	"loadbalance/internal/core"
	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
	"loadbalance/internal/verify"
	"loadbalance/internal/world"
)

// E1DemandCurve regenerates Figure 1: the daily residential demand curve
// with its peak, plus the normal/expensive production cost threshold. The
// returned profile backs the plot; the table summarises its shape.
func E1DemandCurve(n int, seed int64) (*world.Profile, *Table, error) {
	pop, err := world.NewPopulation(world.PopulationConfig{N: n, Seed: seed, EVShare: 0.2})
	if err != nil {
		return nil, nil, err
	}
	day := units.Interval{
		Start: time.Date(1998, 1, 20, 0, 0, 0, 0, time.UTC),
		End:   time.Date(1998, 1, 21, 0, 0, 0, 0, time.UTC),
	}
	prof, err := world.GenerateProfile(pop, day, 15*time.Minute)
	if err != nil {
		return nil, nil, err
	}
	peak, _ := prof.Peak()
	t := &Table{
		Name:    "E1 (Figure 1): demand curve with peak",
		Columns: []string{"households", "mean_kw", "peak_kw", "peak_time", "peak_to_mean", "local_peaks"},
		Notes:   "demand above mean×(1/peak_to_mean) is served by expensive peak production",
	}
	t.AddRowF(n, prof.Mean().KWs(), peak.Power.KWs(),
		peak.Interval.Start.Format("15:04"), prof.PeakToMean(), len(prof.LocalPeaks(1.05)))
	return prof, t, nil
}

// runPaper runs the canonical scenario once.
func runPaper() (*core.Result, core.Scenario, error) {
	s, err := core.PaperScenario()
	if err != nil {
		return nil, core.Scenario{}, err
	}
	res, err := core.Run(s)
	if err != nil {
		return nil, core.Scenario{}, err
	}
	return res, s, nil
}

// E2InitialPhase regenerates Figure 6: the Utility Agent's view in round 1
// — normal capacity, predicted usage, overuse and the initial reward table.
func E2InitialPhase() (*Table, error) {
	res, s, err := runPaper()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "E2 (Figure 6): UA initial phase, round 1",
		Columns: []string{"cut_down", "reward"},
		Notes: fmt.Sprintf("normal capacity %.0f, predicted usage %.0f, predicted overuse %.0f",
			s.NormalUse.KWhs(), s.NormalUse.KWhs()+res.InitialOveruseKWh, res.InitialOveruseKWh),
	}
	for _, e := range res.History[0].Table.Entries {
		t.AddRowF(e.CutDown, e.Reward)
	}
	return t, nil
}

// E3FinalPhase regenerates Figure 7: the Utility Agent's view in the final
// round — the grown reward table and the reduced overuse.
func E3FinalPhase() (*Table, error) {
	res, _, err := runPaper()
	if err != nil {
		return nil, err
	}
	last := res.History[len(res.History)-1]
	t := &Table{
		Name:    fmt.Sprintf("E3 (Figure 7): UA final phase, round %d", last.Round),
		Columns: []string{"cut_down", "reward"},
		Notes: fmt.Sprintf("predicted overuse reduced %.1f → %.2f kWh; outcome: %s",
			res.InitialOveruseKWh, res.FinalOveruseKWh, res.Outcome),
	}
	for _, e := range last.Table.Entries {
		t.AddRowF(e.CutDown, e.Reward)
	}
	return t, nil
}

// E4CustomerDecision regenerates Figures 8-9: the canonical customer's
// requirement table and its bid in every round.
func E4CustomerDecision() (*Table, error) {
	res, s, err := runPaper()
	if err != nil {
		return nil, err
	}
	const who = "c01"
	var prefs map[float64]float64
	for _, c := range s.Customers {
		if c.Name == who {
			prefs = c.Prefs.Required
		}
	}
	t := &Table{
		Name:    "E4 (Figures 8-9): customer c01 decisions per round",
		Columns: []string{"round", "offered_at_0.3", "offered_at_0.4", "required_0.3", "required_0.4", "bid"},
	}
	bids := core.BidsOf(res.History, who)
	for i, rec := range res.History {
		o3, _ := rec.Table.RewardFor(0.3)
		o4, _ := rec.Table.RewardFor(0.4)
		t.AddRowF(rec.Round, o3, o4, prefs[0.3], prefs[0.4], bids[i])
	}
	return t, nil
}

// E5MethodComparison runs all three announcement methods on one synthetic
// population and compares them on the Section 3.2.4 axes: speed (rounds,
// messages), effectiveness (final overuse) and cost (reward paid).
func E5MethodComparison(n int, seed int64) (*Table, error) {
	t := &Table{
		Name:    fmt.Sprintf("E5 (Section 3.2.4): method comparison, %d customers", n),
		Columns: []string{"method", "rounds", "messages", "final_overuse_ratio", "reward_paid", "outcome"},
		Notes:   "same population and 0.35 initial overuse for every method",
	}
	methods := []utilityagent.Method{
		utilityagent.MethodOffer,
		utilityagent.MethodRequestForBids,
		utilityagent.MethodRewardTable,
	}
	for _, m := range methods {
		s, err := core.PopulationScenario(core.PopulationConfig{
			N: n, Seed: seed, Margin: 0.2, Method: m,
		})
		if err != nil {
			return nil, err
		}
		s.RFB = protocol.RFBParams{
			LowPrice: 0.5, NormalPrice: 1, HighPrice: 4,
			AllowedOveruseRatio: s.Params.AllowedOveruseRatio,
		}
		res, err := core.Run(s)
		if err != nil {
			return nil, err
		}
		t.AddRowF(m.String(), res.Rounds, res.Bus.Sent, res.FinalOveruseRatio, res.TotalReward, res.Outcome)
	}
	return t, nil
}

// E6BetaSweep studies the negotiation-speed parameter (Section 7: "the
// factor beta which determines the speed of negotiation has a constant
// value"), plus the adaptive-beta extension the paper proposes.
func E6BetaSweep(betas []float64) (*Table, error) {
	t := &Table{
		Name:    "E6 (Section 7): effect of beta on the paper scenario",
		Columns: []string{"beta", "adaptive", "rounds", "final_overuse", "reward_paid", "outcome"},
	}
	run := func(beta float64, adaptive bool) error {
		s, err := core.PaperScenario()
		if err != nil {
			return err
		}
		s.Params.Beta = beta
		s.Params.AdaptiveBeta = adaptive
		res, err := core.Run(s)
		if err != nil {
			return err
		}
		t.AddRowF(beta, fmt.Sprintf("%v", adaptive), res.Rounds, res.FinalOveruseKWh, res.TotalReward, res.Outcome)
		return nil
	}
	for _, b := range betas {
		if err := run(b, false); err != nil {
			return nil, err
		}
	}
	for _, b := range betas {
		if err := run(b, true); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E7Scalability measures wall time and traffic against fleet size.
func E7Scalability(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		Name:    "E7: scalability in the number of Customer Agents",
		Columns: []string{"customers", "rounds", "messages", "elapsed_ms", "final_overuse_ratio"},
	}
	for _, n := range sizes {
		s, err := core.PopulationScenario(core.PopulationConfig{
			N: n, Seed: seed, Margin: 0.2, Method: utilityagent.MethodRewardTable,
		})
		if err != nil {
			return nil, err
		}
		s.Timeout = 120 * time.Second
		res, err := core.Run(s)
		if err != nil {
			return nil, err
		}
		t.AddRowF(n, res.Rounds, res.Bus.Sent, float64(res.Elapsed.Milliseconds()), res.FinalOveruseRatio)
	}
	return t, nil
}

// E8ProtocolProperties runs randomized scenarios and mechanically verifies
// every monotonic-concession property on the produced traces.
func E8ProtocolProperties(runs int, seed int64) (*Table, error) {
	t := &Table{
		Name:    "E8 (Section 3.1): protocol property verification",
		Columns: []string{"run", "customers", "beta", "rounds", "properties_checked", "violations"},
	}
	for i := 0; i < runs; i++ {
		n := 5 + (i*7+int(seed))%20
		beta := 0.8 + 0.4*float64(i%5)
		s, err := core.PopulationScenario(core.PopulationConfig{
			N: n, Seed: seed + int64(i), Margin: 0.2, Method: utilityagent.MethodRewardTable,
		})
		if err != nil {
			return nil, err
		}
		s.Params.Beta = beta
		res, err := core.Run(s)
		if err != nil {
			return nil, err
		}
		rep := verify.CheckRewardTableTrace(res.History, s.Params)
		t.AddRowF(i, n, beta, res.Rounds, len(rep.Checked), len(rep.Violations))
		if !rep.OK() {
			return t, rep.Error()
		}
	}
	return t, nil
}

// E9FailureInjection sweeps message-loss rates and silent-customer counts
// and confirms the negotiation still terminates (ref [6], sentinel-style
// fault handling).
func E9FailureInjection(dropRates []float64, silentCounts []int) (*Table, error) {
	t := &Table{
		Name:    "E9: negotiation liveness under faults",
		Columns: []string{"drop_rate", "silent_customers", "rounds", "dropped_msgs", "final_overuse", "outcome"},
		Notes:   "paper fleet; round timeout 25ms substitutes for quorum",
	}
	for _, dr := range dropRates {
		for _, silent := range silentCounts {
			s, err := core.PaperScenario()
			if err != nil {
				return nil, err
			}
			for i := 0; i < silent && i < len(s.Customers); i++ {
				s.Customers[i].Silent = true
			}
			s.DropRate = dr
			s.Seed = int64(100*dr) + int64(silent)
			s.RoundTimeout = 25 * time.Millisecond
			s.Timeout = 60 * time.Second
			res, err := core.Run(s)
			if err != nil {
				return nil, err
			}
			t.AddRowF(dr, silent, res.Rounds, res.Bus.Dropped, res.FinalOveruseKWh, res.Outcome)
		}
	}
	return t, nil
}

// E10RewardTableSeries emits the full per-round reward table series of the
// paper scenario — the complete data behind the Figure 6/7 panels.
func E10RewardTableSeries() (*Table, error) {
	res, _, err := runPaper()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "E10 (Figures 6-7): reward table per round",
		Columns: []string{"round", "cut_down", "reward", "overuse_after_round"},
	}
	for _, rec := range res.History {
		for _, e := range rec.Table.Entries {
			t.AddRowF(rec.Round, e.CutDown, e.Reward, rec.OveruseKWh)
		}
	}
	return t, nil
}
