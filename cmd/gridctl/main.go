// Command gridctl is the fleet operator console: it reads the /fleet
// endpoints a hub-hosting gridd daemon serves and renders them for a
// terminal.
//
//	gridctl -addr host:port top   [-interval 2s] [-n 0]
//	gridctl -addr host:port logs  [-f] [-level warn] [-proc p] [-component c] [-limit 50]
//	gridctl -addr host:port trace <session> [-limit N]
//
// top polls /fleet/status and renders the per-process table (score, replica
// lag, tick p95, batch age). logs dumps /fleet/logs once, or follows it with
// -f using the afterUs cursor so each event prints exactly once. trace
// fetches the stitched /fleet/trace for a session and prints the span tree.
// -addr defaults to $GRIDCTL_ADDR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"loadbalance/internal/obsplane"
	"loadbalance/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return usageError()
	}
	// Accept -addr before the subcommand too (gridctl -addr X top).
	global := flag.NewFlagSet("gridctl", flag.ContinueOnError)
	global.SetOutput(io.Discard)
	addr := global.String("addr", os.Getenv("GRIDCTL_ADDR"), "host:port of the hub daemon's HTTP endpoint")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usageError()
	}
	cmd, rest := rest[0], rest[1:]
	c := &client{w: w, addr: addr}
	switch cmd {
	case "top":
		return c.top(rest)
	case "logs":
		return c.logs(rest)
	case "trace":
		return c.trace(rest)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

const usage = `usage:
  gridctl -addr host:port top   [-interval 2s] [-n 0]
  gridctl -addr host:port logs  [-f] [-level warn] [-proc p] [-component c] [-limit 50]
  gridctl -addr host:port trace <session> [-limit N]`

func usageError() error { return fmt.Errorf("no command\n%s", usage) }

// client holds the target address and output sink shared by the
// subcommands. addr points at the flag so a subcommand may also accept
// -addr after its name.
type client struct {
	w    io.Writer
	addr *string
}

// flags builds a subcommand flag set that re-registers -addr, so both
// `gridctl -addr X top` and `gridctl top -addr X` work.
func (c *client) flags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(c.addr, "addr", *c.addr, "host:port of the hub daemon's HTTP endpoint")
	return fs
}

// get fetches one /fleet document into out.
func (c *client) get(path string, out any) error {
	if *c.addr == "" {
		return fmt.Errorf("no hub address: pass -addr or set GRIDCTL_ADDR")
	}
	url := "http://" + *c.addr + path
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusDoc mirrors /fleet/status.
type statusDoc struct {
	FleetScore float64               `json:"fleetScore"`
	SilenceAge float64               `json:"silenceAge"`
	Procs      []obsplane.ProcStatus `json:"procs"`
}

// top renders the fleet table; -n bounds the refresh count (0 = forever,
// 1 = print once and exit).
func (c *client) top(args []string) error {
	fs := c.flags("top")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	n := fs.Int("n", 1, "refreshes before exiting (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; ; i++ {
		var doc statusDoc
		if err := c.get("/fleet/status", &doc); err != nil {
			return err
		}
		fmt.Fprintf(c.w, "fleet score %.1f  procs %d  silence %.1fs\n",
			doc.FleetScore, len(doc.Procs), doc.SilenceAge)
		fmt.Fprintf(c.w, "%-20s %-12s %7s %8s %10s %8s %8s %6s\n",
			"PROC", "ROLE", "SCORE", "LAG", "TICK_P95", "BATCHES", "AGE", "STATE")
		for _, p := range doc.Procs {
			state := "live"
			if p.Closed {
				state = "closed"
			}
			fmt.Fprintf(c.w, "%-20s %-12s %7.1f %8.0f %9.3fs %8d %7.1fs %6s\n",
				p.Proc, p.Role, p.Score, p.Lag, p.TickP95, p.Batches, p.LastBatchAge, state)
		}
		if *n > 0 && i+1 >= *n {
			return nil
		}
		time.Sleep(*interval)
	}
}

// logs dumps or follows the merged fleet log.
func (c *client) logs(args []string) error {
	fs := c.flags("logs")
	follow := fs.Bool("f", false, "follow: poll for new events")
	level := fs.String("level", "", "minimum level (debug|info|warn|error)")
	proc := fs.String("proc", "", "only this process")
	component := fs.String("component", "", "only this component")
	limit := fs.Int("limit", 50, "newest N events on the first fetch")
	interval := fs.Duration("interval", time.Second, "poll interval with -f")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "/fleet/logs?"
	q := make([]string, 0, 4)
	if *level != "" {
		q = append(q, "level="+*level)
	}
	if *proc != "" {
		q = append(q, "proc="+*proc)
	}
	if *component != "" {
		q = append(q, "component="+*component)
	}
	var afterUs int64
	first := true
	for {
		params := q
		if first && *limit > 0 {
			params = append(params, fmt.Sprintf("limit=%d", *limit))
		}
		if afterUs > 0 {
			params = append(params, fmt.Sprintf("afterUs=%d", afterUs))
		}
		var doc obsplane.FleetLogsDoc
		if err := c.get(base+strings.Join(params, "&"), &doc); err != nil {
			return err
		}
		for _, ev := range doc.Events {
			line := fmt.Sprintf("%s %-5s [%s] %s: %s",
				time.UnixMicro(ev.TsUs).UTC().Format("15:04:05.000"),
				strings.ToUpper(ev.Level), ev.Proc, ev.Component, ev.Msg)
			if len(ev.Fields) > 2 { // more than "{}"
				line += " " + string(ev.Fields)
			}
			fmt.Fprintln(c.w, line)
			if ev.TsUs > afterUs {
				afterUs = ev.TsUs
			}
		}
		if !*follow {
			return nil
		}
		first = false
		time.Sleep(*interval)
	}
}

// trace prints the stitched span tree of one session.
func (c *client) trace(args []string) error {
	fs := c.flags("trace")
	limit := fs.Int("limit", 0, "newest N spans (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace wants exactly one session argument\n%s", usage)
	}
	session := fs.Arg(0)
	path := "/fleet/trace?session=" + session
	if *limit > 0 {
		path += fmt.Sprintf("&limit=%d", *limit)
	}
	var doc obsplane.FleetTraceDoc
	if err := c.get(path, &doc); err != nil {
		return err
	}
	fmt.Fprintf(c.w, "session %s: %d spans from %d processes %v (missed %d)\n",
		session, len(doc.Spans), len(doc.Procs), doc.Procs, doc.Missed)
	printTree(c.w, doc.Spans)
	return nil
}

// printTree renders spans as an indented forest: children group under their
// parent, orphans (parent outside the document) and roots print flush left.
func printTree(w io.Writer, spans []trace.Record) {
	children := make(map[string][]int, len(spans))
	have := make(map[string]bool, len(spans))
	for i := range spans {
		have[spans[i].Span] = true
	}
	var roots []int
	for i := range spans {
		if p := spans[i].Parent; p != "" && have[p] {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].StartUs < spans[idx[b]].StartUs })
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		r := &spans[i]
		fmt.Fprintf(w, "%s%s  %.3fms  proc=%s", strings.Repeat("  ", depth), r.Name,
			float64(r.DurUs)/1e3, r.Proc)
		if r.Agent != "" {
			fmt.Fprintf(w, " agent=%s", r.Agent)
		}
		if r.Shard != "" {
			fmt.Fprintf(w, " shard=%s", r.Shard)
		}
		fmt.Fprintln(w)
		kids := children[r.Span]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, i := range roots {
		walk(i, 0)
	}
}
