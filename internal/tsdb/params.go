package tsdb

// Shared query-parameter parsing for every history/observability
// endpoint: /query, /fleet/query and the PR-9 fleet endpoints all accept
// the same from/to/step/limit shapes and must reject malformed values
// with the same 400 text, so the helpers live here and the handlers stay
// one-liners.

import (
	"fmt"
	"strconv"
	"time"
)

// ParseLimitParam parses a limit query parameter: "" yields def, and any
// other value must be a positive integer.
func ParseLimitParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad limit %q: want a positive integer", s)
	}
	return n, nil
}

// ParseTimeParam parses a from/to query parameter into absolute
// microseconds: "" yields def, a bare integer is an absolute unix-µs
// timestamp, and a signed duration ("-30s", "1m") is relative to nowUs.
func ParseTimeParam(s string, def, nowUs int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	if us, err := strconv.ParseInt(s, 10, 64); err == nil {
		return us, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: want unix microseconds or a relative duration like -30s", s)
	}
	return nowUs + d.Microseconds(), nil
}

// ParseStepParam parses a step/window query parameter into microseconds:
// "" yields defUs, anything else must be a positive duration.
func ParseStepParam(s string, defUs int64) (int64, error) {
	if s == "" {
		return defUs, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad step %q: want a positive duration like 1s", s)
	}
	return d.Microseconds(), nil
}
