package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"loadbalance/internal/lint"
)

// writeFixture materializes a one-file package in a temp dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunReportsSortedAndSuppressed(t *testing.T) {
	dir := writeFixture(t, `package fix

import "math/rand"

func b() int { return rand.Int() }

func a() float64 {
	return rand.Float64() //gridlint:allow globalrand(seed irrelevant here: test fixture)
}

func c() int { return rand.Intn(7) }
`)
	pkg, err := lint.LoadDir(dir, "fix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.GlobalRand()})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (one suppressed), got %d: %v", len(findings), findings)
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		return findings[i].Line < findings[j].Line
	}) {
		t.Errorf("findings not sorted by position: %v", findings)
	}
	for _, f := range findings {
		if f.Analyzer != "globalrand" || f.File == "" || f.Line == 0 || f.Col == 0 {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestRunSurfacesMalformedAnnotations(t *testing.T) {
	dir := writeFixture(t, `package fix

import "math/rand"

func a() float64 {
	return rand.Float64() //gridlint:allow globalrand
}
`)
	pkg, err := lint.LoadDir(dir, "fix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.GlobalRand()})
	if err != nil {
		t.Fatal(err)
	}
	// The malformed annotation must NOT suppress, and must itself be a
	// finding under the unsuppressable "gridlint" name.
	var annCount, randCount int
	for _, f := range findings {
		switch f.Analyzer {
		case lint.AnnotationAnalyzerName:
			annCount++
		case "globalrand":
			randCount++
		}
	}
	if annCount != 1 || randCount != 1 {
		t.Fatalf("want 1 annotation + 1 globalrand finding, got %v", findings)
	}
}

func TestFindingJSONShape(t *testing.T) {
	f := lint.Finding{Analyzer: "walltime", File: "x.go", Line: 3, Col: 9, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON missing key %q: %s", k, b)
		}
	}
	if got, want := f.String(), "x.go:3:9: walltime: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", "./internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "loadbalance/internal/units" || p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Fatalf("incomplete package: %+v", p)
	}
}

func TestLoadDirRejectsEmptyDir(t *testing.T) {
	if _, err := lint.LoadDir(t.TempDir(), "empty"); err == nil {
		t.Fatal("want error for a directory with no Go files")
	}
}

func TestLoadDirRejectsBrokenSource(t *testing.T) {
	dir := writeFixture(t, `package fix

func broken() { undefinedSymbol() }
`)
	if _, err := lint.LoadDir(dir, "fix"); err == nil {
		t.Fatal("want typecheck error for broken source")
	}
}
