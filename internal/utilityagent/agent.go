package utilityagent

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"loadbalance/internal/agent"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/trace"
	"loadbalance/internal/units"
)

// Latency histograms shared by every UA in the process; they surface on
// /metrics as negotiation_round_seconds / negotiation_session_seconds.
var (
	roundHist   = trace.GetHistogram("negotiation_round_seconds")
	sessionHist = trace.GetHistogram("negotiation_session_seconds")
)

// Config parameterises one Utility Agent negotiation.
type Config struct {
	// Name is the UA's bus name (default "ua").
	Name string
	// SessionID identifies the negotiation.
	SessionID string
	// Window is the peak interval being negotiated.
	Window units.Interval
	// NormalUse is the normal production capacity for the window.
	NormalUse units.Energy
	// Loads is the UA's prediction per customer.
	Loads map[string]protocol.CustomerLoad
	// Method selects the announcement method (MethodAuto to let the UA pick).
	Method Method
	// LeadTime is the horizon before the window (used by MethodAuto).
	LeadTime time.Duration

	// Params drives the reward-table method.
	Params protocol.Params
	// InitialSlope is the slope of the round-1 linear reward table.
	InitialSlope float64

	// Offer holds the terms for MethodOffer; zero values get defaults
	// derived from the loads.
	Offer message.OfferTerms
	// RFB drives the request-for-bids method.
	RFB protocol.RFBParams

	// RoundTimeout closes a round even without quorum; 0 disables timeouts
	// (quorum only — the deterministic mode used by most tests).
	RoundTimeout time.Duration
	// WarrantRatio is the overuse ratio below which no negotiation starts.
	WarrantRatio float64

	// TraceParent links this session's root span under an enclosing trace
	// (a live tick's renegotiation); invalid starts a fresh trace.
	TraceParent trace.Context
}

// Result is the UA's "evaluate negotiation process" output.
type Result struct {
	SessionID string
	Method    Method
	Outcome   string
	Rounds    int

	// History holds per-round records for the reward-table method.
	History []protocol.RoundRecord
	// RFBHistory holds per-round records for the request-for-bids method.
	RFBHistory []protocol.RFBRound
	// Offer holds the outcome of the offer method.
	Offer *protocol.OfferOutcome

	Awards            []protocol.CustomerAward
	TotalReward       float64
	InitialOveruseKWh float64
	FinalOveruseKWh   float64
	FinalOveruseRatio float64
}

// Agent is the Utility Agent. All mutable state is confined to the hosting
// runtime goroutine.
type Agent struct {
	cfg   Config
	model *agent.Model

	rts     *protocol.RTSession
	offer   *protocol.OfferSession
	rfb     *protocol.RFBSession
	method  Method
	initial float64 // initial overuse kWh

	sessionSpan  trace.Span // session root; ends when the result publishes
	sessionStart time.Time

	done chan Result
}

// New validates the configuration and constructs the agent.
func New(cfg Config) (*Agent, error) {
	if cfg.Name == "" {
		cfg.Name = "ua"
	}
	if cfg.SessionID == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadConfig)
	}
	if len(cfg.Loads) == 0 {
		return nil, fmt.Errorf("%w: no customer loads", ErrBadConfig)
	}
	if cfg.NormalUse <= 0 {
		return nil, fmt.Errorf("%w: normal use must be positive", ErrBadConfig)
	}
	if cfg.InitialSlope == 0 {
		cfg.InitialSlope = 42.5 // the prototype's Figure 6 table
	}
	if cfg.InitialSlope < 0 {
		return nil, fmt.Errorf("%w: negative initial slope", ErrBadConfig)
	}
	m, err := agent.NewModel()
	if err != nil {
		return nil, err
	}
	return &Agent{
		cfg:   cfg,
		model: m,
		done:  make(chan Result, 1),
	}, nil
}

// Done returns the channel carrying the negotiation result.
func (a *Agent) Done() <-chan Result { return a.done }

// OnStart implements agent.Handler: the UA's pro-active opening. It
// evaluates the predicted balance and, when warranted, opens the session
// with the chosen announcement method.
func (a *Agent) OnStart(rt *agent.Runtime) error {
	a.sessionStart = time.Now() //gridlint:allow walltime(session latency clock start; feeds the negotiation_session histogram only)
	a.sessionSpan = trace.Child(a.cfg.TraceParent, "session.open")
	a.sessionSpan.SetAgent(a.cfg.Name)
	a.sessionSpan.SetSession(a.cfg.SessionID)
	// Everything the UA sends proactively belongs to the session span.
	rt.SetTraceCtx(a.sessionSpan.Context())

	ratio, negotiate := EvaluatePrediction(a.cfg.Loads, a.cfg.NormalUse, a.cfg.WarrantRatio)
	a.initial = protocol.PredictedOveruse(a.cfg.Loads, a.cfg.NormalUse)
	if err := a.model.SetWorldValue("predicted_overuse_ratio", ratio); err != nil {
		return err
	}
	if !negotiate {
		a.finish(Result{
			SessionID:         a.cfg.SessionID,
			Method:            a.cfg.Method,
			Outcome:           "no negotiation needed",
			InitialOveruseKWh: a.initial,
			FinalOveruseKWh:   a.initial,
			FinalOveruseRatio: ratio,
		})
		return nil
	}

	a.method = a.cfg.Method
	if a.method == MethodAuto {
		rate, _ := a.model.OverallResponseRate()
		a.method = ChooseMethod(Situation{
			LeadTime:     a.cfg.LeadTime,
			OveruseRatio: ratio,
			Customers:    len(a.cfg.Loads),
			ResponseRate: rate,
		})
	}

	switch a.method {
	case MethodRewardTable:
		return a.openRewardTable(rt)
	case MethodOffer:
		return a.openOffer(rt)
	case MethodRequestForBids:
		return a.openRFB(rt)
	default:
		return fmt.Errorf("%w: method %v", ErrBadConfig, a.method)
	}
}

// openRewardTable starts the prototype's method.
func (a *Agent) openRewardTable(rt *agent.Runtime) error {
	table, err := protocol.StandardTable(a.cfg.InitialSlope)
	if err != nil {
		return err
	}
	s, err := protocol.NewRTSession(a.cfg.SessionID, a.cfg.Window, a.cfg.Params, table, a.cfg.Loads, a.cfg.NormalUse)
	if err != nil {
		return err
	}
	a.rts = s
	return a.announceRT(rt)
}

// announceRT broadcasts the current table and arms the round timeout.
func (a *Agent) announceRT(rt *agent.Runtime) error {
	msg, err := a.rts.Announce()
	if err != nil {
		return err
	}
	sp := trace.Child(a.sessionSpan.Context(), "round.announce")
	sp.SetAgent(a.cfg.Name)
	sp.SetSession(a.cfg.SessionID)
	err = rt.SendCtx(sp.Context(), "", a.cfg.SessionID, msg)
	sp.End()
	if err != nil {
		return err
	}
	a.armTimeout(rt, a.rts.Round())
	return nil
}

// openOffer starts the one-shot offer method.
func (a *Agent) openOffer(rt *agent.Runtime) error {
	terms := a.cfg.Offer
	if terms.AllowanceKWh == 0 && terms.XMax == 0 {
		terms = a.defaultOfferTerms()
	}
	s, err := protocol.NewOfferSession(a.cfg.SessionID, terms, a.cfg.Loads, a.cfg.NormalUse)
	if err != nil {
		return err
	}
	a.offer = s
	announce, err := s.Announce()
	if err != nil {
		return err
	}
	if err := rt.Broadcast(a.cfg.SessionID, announce); err != nil {
		return err
	}
	a.armTimeout(rt, 1)
	return nil
}

// defaultOfferTerms derives offer terms from the prediction: cap everyone at
// the fraction that would clear the peak if all accepted.
func (a *Agent) defaultOfferTerms() message.OfferTerms {
	// Sorted-name summation: float addition in map-iteration order would
	// make xmax differ in the last ulp between runs of the same scenario.
	names := make([]string, 0, len(a.cfg.Loads))
	for n := range a.cfg.Loads {
		names = append(names, n)
	}
	sort.Strings(names)
	var predicted, allowed float64
	for _, n := range names {
		l := a.cfg.Loads[n]
		predicted += l.Predicted.KWhs()
		allowed += l.Allowed.KWhs()
	}
	xmax := 1.0
	if allowed > 0 {
		xmax = a.cfg.NormalUse.KWhs() / allowed
	}
	if xmax > 1 {
		xmax = 1
	}
	if xmax < 0.1 {
		xmax = 0.1
	}
	return message.OfferTerms{
		Window:       message.FromInterval(a.cfg.Window),
		XMax:         xmax,
		AllowanceKWh: allowed / float64(len(a.cfg.Loads)),
		LowPrice:     0.5,
		NormalPrice:  1,
		HighPrice:    2,
	}
}

// openRFB starts the request-for-bids method.
func (a *Agent) openRFB(rt *agent.Runtime) error {
	p := a.cfg.RFB
	if p.HighPrice == 0 {
		p = protocol.RFBParams{
			LowPrice:            0.5,
			NormalPrice:         1,
			HighPrice:           2,
			AllowedOveruseRatio: a.cfg.Params.AllowedOveruseRatio,
			MaxRounds:           a.cfg.Params.MaxRounds,
		}
	}
	s, err := protocol.NewRFBSession(a.cfg.SessionID, a.cfg.Window, p, a.cfg.Loads, a.cfg.NormalUse)
	if err != nil {
		return err
	}
	a.rfb = s
	return a.announceRFB(rt)
}

// announceRFB broadcasts the current bid request and arms the timeout.
func (a *Agent) announceRFB(rt *agent.Runtime) error {
	req, err := a.rfb.Announce()
	if err != nil {
		return err
	}
	if err := rt.Broadcast(a.cfg.SessionID, req); err != nil {
		return err
	}
	a.armTimeout(rt, a.rfb.Round())
	return nil
}

// timeoutTopic marks self-addressed round timeout nudges.
const timeoutTopic = "round_timeout:"

// armTimeout schedules a self-message that closes the round after the
// configured timeout, so negotiations survive silent customers (E9).
func (a *Agent) armTimeout(rt *agent.Runtime, round int) {
	if a.cfg.RoundTimeout <= 0 {
		return
	}
	name := a.cfg.Name
	session := a.cfg.SessionID
	window := message.FromInterval(a.cfg.Window)
	time.AfterFunc(a.cfg.RoundTimeout, func() { //gridlint:allow walltime(round liveness timeout; closes a round on silence, never changes a collected bid)
		// Delivery failure just means the agent already stopped.
		_ = rt.Send(name, session, message.InfoRequest{
			Topic:  timeoutTopic + strconv.Itoa(round),
			Window: window,
		})
	})
}

// OnMessage implements agent.Handler: cooperation management per inbound
// payload kind.
func (a *Agent) OnMessage(rt *agent.Runtime, env message.Envelope) error {
	if env.Session != a.cfg.SessionID {
		return nil // other sessions are not ours to handle
	}
	p, err := env.Decode()
	if err != nil {
		return err
	}
	switch m := p.(type) {
	case message.CutDownBid:
		return a.handleCutDownBid(rt, env.From, m)
	case message.OfferReply:
		return a.handleOfferReply(rt, env.From, m)
	case message.EnergyBid:
		return a.handleEnergyBid(rt, env.From, m)
	case message.InfoRequest:
		if env.From == a.cfg.Name && strings.HasPrefix(m.Topic, timeoutTopic) {
			round, err := strconv.Atoi(strings.TrimPrefix(m.Topic, timeoutTopic))
			if err != nil {
				return err
			}
			return a.handleTimeout(rt, round)
		}
		return nil
	default:
		return nil
	}
}

// handleCutDownBid records a reward-table bid and closes the round when the
// quorum is in.
func (a *Agent) handleCutDownBid(rt *agent.Runtime, from string, bid message.CutDownBid) error {
	if a.rts == nil || a.rts.Closed() {
		return nil
	}
	if bid.Round != a.rts.Round() {
		return nil // stale bid from a slower customer; the model keeps its last commitment
	}
	if err := a.rts.RecordBid(from, bid); err != nil {
		// A malformed or regressing bid is the customer's problem, not a
		// protocol-stopping event: note it and move on.
		return err
	}
	if err := a.model.RecordResponse(from, bid.CutDown > 0); err != nil {
		return err
	}
	if a.rts.QuorumReached() {
		return a.closeRTRound(rt)
	}
	return nil
}

// closeRTRound advances or terminates the reward-table session.
func (a *Agent) closeRTRound(rt *agent.Runtime) error {
	rec, err := a.rts.CloseRound()
	if err != nil {
		return err
	}
	if rec.Elapsed > 0 {
		roundHist.Observe(rec.Elapsed)
	}
	if !rec.Outcome.Terminal() {
		return a.announceRT(rt)
	}
	awards, err := a.rts.Awards()
	if err != nil {
		return err
	}
	sp := trace.Child(a.sessionSpan.Context(), "award.commit")
	sp.SetAgent(a.cfg.Name)
	sp.SetSession(a.cfg.SessionID)
	for _, aw := range awards {
		if err := rt.SendCtx(sp.Context(), aw.Customer, a.cfg.SessionID, aw.Award); err != nil {
			sp.End()
			return err
		}
	}
	sp.End()
	if err := rt.Broadcast(a.cfg.SessionID, message.SessionEnd{
		Round:  rec.Round,
		Reason: rec.Outcome.String(),
	}); err != nil {
		return err
	}
	history := a.rts.History()
	a.finish(Result{
		SessionID:         a.cfg.SessionID,
		Method:            MethodRewardTable,
		Outcome:           rec.Outcome.String(),
		Rounds:            len(history),
		History:           history,
		Awards:            awards,
		TotalReward:       protocol.TotalRewardPaid(awards),
		InitialOveruseKWh: a.initial,
		FinalOveruseKWh:   rec.OveruseKWh,
		FinalOveruseRatio: rec.OveruseRatio,
	})
	return nil
}

// handleOfferReply records a yes/no and closes once everyone answered.
func (a *Agent) handleOfferReply(rt *agent.Runtime, from string, reply message.OfferReply) error {
	if a.offer == nil {
		return nil
	}
	if err := a.offer.RecordReply(from, reply); err != nil {
		if errors.Is(err, protocol.ErrSessionClosed) {
			return nil // reply raced a timeout close; harmless
		}
		return err
	}
	if err := a.model.RecordResponse(from, reply.Accept); err != nil {
		return err
	}
	if a.offer.ResponseCount() >= len(a.cfg.Loads) {
		return a.closeOffer(rt)
	}
	return nil
}

// closeOffer finishes the offer session.
func (a *Agent) closeOffer(rt *agent.Runtime) error {
	out, err := a.offer.Close()
	if err != nil {
		return err
	}
	if err := rt.Broadcast(a.cfg.SessionID, message.SessionEnd{Round: 1, Reason: "offer closed"}); err != nil {
		return err
	}
	a.finish(Result{
		SessionID:         a.cfg.SessionID,
		Method:            MethodOffer,
		Outcome:           "offer closed",
		Rounds:            1,
		Offer:             &out,
		TotalReward:       out.DiscountCost,
		InitialOveruseKWh: a.initial,
		FinalOveruseKWh:   out.OveruseKWh,
		FinalOveruseRatio: out.OveruseRatio,
	})
	return nil
}

// handleEnergyBid records an RFB bid and closes the round on quorum.
func (a *Agent) handleEnergyBid(rt *agent.Runtime, from string, bid message.EnergyBid) error {
	if a.rfb == nil || a.rfb.Closed() {
		return nil
	}
	if bid.Round != a.rfb.Round() {
		return nil
	}
	if err := a.rfb.RecordBid(from, bid); err != nil {
		return err
	}
	if a.rfb.ResponseCount() >= len(a.cfg.Loads) {
		return a.closeRFBRound(rt)
	}
	return nil
}

// closeRFBRound advances or terminates the request-for-bids session.
func (a *Agent) closeRFBRound(rt *agent.Runtime) error {
	rec, err := a.rfb.CloseRound()
	if err != nil {
		return err
	}
	if !rec.Outcome.Terminal() {
		return a.announceRFB(rt)
	}
	if err := rt.Broadcast(a.cfg.SessionID, message.SessionEnd{
		Round:  rec.Round,
		Reason: rec.Outcome.String(),
	}); err != nil {
		return err
	}
	history := a.rfb.History()
	a.finish(Result{
		SessionID:         a.cfg.SessionID,
		Method:            MethodRequestForBids,
		Outcome:           rec.Outcome.String(),
		Rounds:            len(history),
		RFBHistory:        history,
		InitialOveruseKWh: a.initial,
		FinalOveruseKWh:   rec.OveruseKWh,
		FinalOveruseRatio: rec.OveruseRatio,
	})
	return nil
}

// handleTimeout closes the round the timeout was armed for, if it is still
// the current one.
func (a *Agent) handleTimeout(rt *agent.Runtime, round int) error {
	switch {
	case a.rts != nil && !a.rts.Closed() && a.rts.Round() == round:
		return a.closeRTRound(rt)
	case a.offer != nil && round == 1:
		if a.offer.ResponseCount() < len(a.cfg.Loads) {
			return a.closeOffer(rt)
		}
		return nil
	case a.rfb != nil && !a.rfb.Closed() && a.rfb.Round() == round:
		return a.closeRFBRound(rt)
	default:
		return nil // stale timeout for an already-advanced round
	}
}

// finish publishes the result exactly once and closes the session span.
func (a *Agent) finish(r Result) {
	if !a.sessionStart.IsZero() {
		sessionHist.Observe(time.Since(a.sessionStart)) //gridlint:allow walltime(session latency histogram observation; metrics only)
	}
	a.sessionSpan.End()
	select {
	case a.done <- r:
	default: // result already published (e.g. timeout racing quorum)
	}
}

var _ agent.Handler = (*Agent)(nil)
