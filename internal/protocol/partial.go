package protocol

import (
	"fmt"
	"sort"

	"loadbalance/internal/units"
)

// This file supports reusing a completed session's state to open a new
// session over part of the fleet: live operation detects that some customers
// drifted from their negotiated profile and re-negotiates only those, while
// the rest of the fleet keeps its awards. The helpers derive the partial
// session's inputs — the subset's customer models carrying their committed
// cut-downs, and the capacity left over once the untouched complement is held
// at its negotiated use.

// ApplyBids returns a copy of loads with each named customer's committed
// cut-down merged in (Responded set). Customers without a bid keep cut-down
// 0, exactly as the flat session models silent customers.
func ApplyBids(loads map[string]CustomerLoad, bids map[string]float64) map[string]CustomerLoad {
	out := make(map[string]CustomerLoad, len(loads))
	for name, l := range loads {
		if cd, ok := bids[name]; ok {
			l.CutDown = cd
			l.Responded = true
		}
		out[name] = l
	}
	return out
}

// SubsetLoads extracts the named customers' models from a fleet. Unknown
// names are an error: a partial session over customers the prior session
// never modelled has no state to reuse.
func SubsetLoads(loads map[string]CustomerLoad, names []string) (map[string]CustomerLoad, error) {
	out := make(map[string]CustomerLoad, len(names))
	for _, n := range names {
		l, ok := loads[n]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownCustomer, n)
		}
		out[n] = l
	}
	return out, nil
}

// minResidualFraction floors the residual capacity handed to a partial
// session: when the untouched complement already consumes (almost) all of
// normal use, the partial session still needs a positive target to negotiate
// against — the floor makes it escalate to the reward ceiling instead of
// failing validation.
const minResidualFraction = 0.01

// ResidualNormalUse returns the normal use available to a partial session
// over the subset: the fleet's normal use minus the complement's predicted
// use under its committed cut-downs. The result is floored at a small
// positive fraction of the fleet capacity, so a partial session is always
// runnable; a converged partial session then keeps the whole fleet within
// (1+allowed_overuse)·normal_use, because the complement's use is already
// accounted for.
func ResidualNormalUse(loads map[string]CustomerLoad, normalUse units.Energy, subset map[string]bool) units.Energy {
	// Sorted-name summation, like PredictedOveruse: keeps repeated runs of a
	// seeded live loop bitwise reproducible.
	names := make([]string, 0, len(loads))
	for name := range loads {
		if !subset[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var complement units.Energy
	for _, name := range names {
		complement = complement.Add(UseWithCutDown(loads[name]))
	}
	residual := normalUse.Sub(complement)
	if floor := normalUse.Scale(minResidualFraction); residual < floor {
		residual = floor
	}
	return residual
}
