package bus

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"loadbalance/internal/message"
)

func env(t *testing.T, from, to string) message.Envelope {
	t.Helper()
	e, err := message.NewEnvelope(from, to, "s1", message.CutDownBid{Round: 1, CutDown: 0.2})
	if err != nil {
		t.Fatalf("NewEnvelope: %v", err)
	}
	return e
}

func TestInProcPointToPoint(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	inbox, err := b.Register("ua", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register("c1", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env(t, "c1", "ua")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := <-inbox
	if got.From != "c1" || got.To != "ua" {
		t.Fatalf("envelope = %+v", got)
	}
	st := b.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInProcBroadcastExcludesSender(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	uaBox, err := b.Register("ua", 4)
	if err != nil {
		t.Fatal(err)
	}
	c1Box, err := b.Register("c1", 4)
	if err != nil {
		t.Fatal(err)
	}
	c2Box, err := b.Register("c2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env(t, "ua", "")); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if got := <-c1Box; got.To != "c1" {
		t.Fatalf("c1 envelope To = %q, want concretised recipient", got.To)
	}
	if got := <-c2Box; got.To != "c2" {
		t.Fatalf("c2 envelope To = %q", got.To)
	}
	select {
	case e := <-uaBox:
		t.Fatalf("sender received its own broadcast: %+v", e)
	default:
	}
	if st := b.Stats(); st.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.Delivered)
	}
}

func TestInProcRegistrationErrors(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Register("", 1); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("empty name error = %v", err)
	}
	if _, err := b.Register("ua", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register("ua", 1); !errors.Is(err, ErrDuplicateAgent) {
		t.Fatalf("duplicate error = %v", err)
	}
	if err := b.Send(env(t, "ua", "ghost")); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("unknown recipient error = %v", err)
	}
}

func TestInProcInboxFull(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Register("ua", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register("c1", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env(t, "c1", "ua")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env(t, "c1", "ua")); !errors.Is(err, ErrInboxFull) {
		t.Fatalf("full inbox error = %v", err)
	}
	if st := b.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestInProcUnregisterClosesInbox(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	inbox, err := b.Register("ua", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Unregister("ua")
	if _, open := <-inbox; open {
		t.Fatal("inbox should be closed after Unregister")
	}
	if got := b.Agents(); len(got) != 0 {
		t.Fatalf("agents = %v, want empty", got)
	}
}

func TestInProcDropRate(t *testing.T) {
	b, err := NewInProc(Config{DropRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	inbox, err := b.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register("c1", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Send(env(t, "c1", "ua")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	select {
	case e := <-inbox:
		t.Fatalf("message delivered despite drop rate 1: %+v", e)
	default:
	}
	if st := b.Stats(); st.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", st.Dropped)
	}
}

func TestInProcDropRateValidation(t *testing.T) {
	if _, err := NewInProc(Config{DropRate: 1.5}); err == nil {
		t.Fatal("drop rate > 1 should fail")
	}
	if _, err := NewInProc(Config{DropRate: -0.1}); err == nil {
		t.Fatal("negative drop rate should fail")
	}
}

func TestInProcDropDeterminism(t *testing.T) {
	run := func() Stats {
		b, err := NewInProc(Config{DropRate: 0.5, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, err := b.Register("ua", 64); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Register("c1", 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			_ = b.Send(env(t, "c1", "ua"))
		}
		return b.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
}

func TestInProcClose(t *testing.T) {
	b, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := b.Register("ua", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, open := <-inbox; open {
		t.Fatal("inbox should close on bus close")
	}
	if err := b.Send(env(t, "x", "ua")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close error = %v", err)
	}
	if _, err := b.Register("y", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close error = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	uaBox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Client -> server-side local agent.
	if err := cli.Send(env(t, "c1", "ua")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" || got.To != "ua" {
			t.Fatalf("server got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for client->server delivery")
	}

	// Local agent -> remote client (must wait for registration to complete,
	// which has already happened because the inbound message arrived).
	reply, err := message.NewEnvelope("ua", "c1", "s1", message.Award{Round: 1, CutDown: 0.2, Reward: 8.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Send(reply); err != nil {
		t.Fatalf("server send: %v", err)
	}
	select {
	case got := <-cli.Inbox():
		if got.Kind != message.KindAward {
			t.Fatalf("client got %+v", got)
		}
		p, err := got.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if a := p.(message.Award); a.Reward != 8.5 {
			t.Fatalf("award = %+v", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for server->client delivery")
	}
}

func TestTCPBroadcastReachesRemoteAgents(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := inner.Register("ua", 16); err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr(), "c2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Wait until both remote agents are registered on the inner bus.
	deadline := time.After(2 * time.Second)
	for len(inner.Agents()) < 3 {
		select {
		case <-deadline:
			t.Fatalf("agents never registered: %v", inner.Agents())
		case <-time.After(5 * time.Millisecond):
		}
	}

	bcast, err := message.NewEnvelope("ua", "", "s1", message.SessionEnd{Round: 1, Reason: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Send(bcast); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	for i, cli := range []*Client{c1, c2} {
		select {
		case got := <-cli.Inbox():
			if got.Kind != message.KindSessionEnd {
				t.Fatalf("client %d got %+v", i, got)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("client %d timeout", i)
		}
	}
}

func TestTCPClientIdentityIsForced(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	uaBox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	spoofed := env(t, "someoneelse", "ua")
	if err := cli.Send(spoofed); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" {
			t.Fatalf("spoofed From survived: %q", got.From)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPClientCloseIsIdempotent(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	cli.Close()
	if err := cli.Send(env(t, "c1", "ua")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close error = %v", err)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ""); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("empty name error = %v", err)
	}
}

// TestTCPServerSkipsMalformedFrames feeds garbage into the wire and checks
// the session survives and later valid traffic still flows.
func TestTCPServerSkipsMalformedFrames(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	uaBox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hello, then garbage, then a valid envelope frame.
	valid := env(t, "c1", "ua")
	frameBytes, err := json.Marshal(frame{Envelope: &valid})
	if err != nil {
		t.Fatal(err)
	}
	payload := "{\"hello\":\"c1\"}\n" +
		"this is not json\n" +
		"{\"envelope\":{\"kind\":\"bogus\",\"body\":{}}}\n" +
		string(frameBytes) + "\n"
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-uaBox:
		if got.From != "c1" {
			t.Fatalf("envelope = %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid frame after garbage never delivered")
	}
}
