package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar
//
//	//gridlint:allow name(reason)
//	//gridlint:allow name(reason), name2(reason2)
//
// where name is a registered analyzer name and reason is non-empty free
// text (anything but an unbalanced ')'). The annotation suppresses findings
// from the named analyzers on the line it appears on (trailing comment) or
// on the line directly below it (own-line comment). Anything else after the
// "//gridlint:" prefix — an unknown verb, an unknown analyzer name, a
// missing or empty reason, trailing junk — is itself reported as a finding
// under AnnotationAnalyzerName and suppresses nothing.

const annPrefix = "gridlint:"

// allowSet maps file -> line -> set of analyzer names allowed there.
// A diagnostic at (file, line) is suppressed when its analyzer is allowed
// at that line (trailing annotation) or at the line above (own-line
// annotation).
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names := byLine[line]
	if names == nil {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer]
}

// parseAnnotations scans every comment in the files for gridlint
// annotations. known is the set of analyzer names that may be allowed;
// anything else is malformed.
func parseAnnotations(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowSet, []rawDiag) {
	allows := make(allowSet)
	var bad []rawDiag
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+annPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, err := parseAllowBody(text)
				if err != nil {
					bad = append(bad, rawDiag{
						analyzer: AnnotationAnalyzerName,
						pos:      pos,
						message:  fmt.Sprintf("malformed annotation %q: %v", c.Text, err),
					})
					continue
				}
				for _, name := range names {
					if !known[name] {
						bad = append(bad, rawDiag{
							analyzer: AnnotationAnalyzerName,
							pos:      pos,
							message:  fmt.Sprintf("malformed annotation %q: unknown analyzer %q", c.Text, name),
						})
						continue
					}
					if name == AnnotationAnalyzerName {
						bad = append(bad, rawDiag{
							analyzer: AnnotationAnalyzerName,
							pos:      pos,
							message:  fmt.Sprintf("malformed annotation %q: annotation findings cannot be allowed", c.Text),
						})
						continue
					}
					allows.add(pos.Filename, pos.Line, name)
				}
			}
		}
	}
	return allows, bad
}

// parseAllowBody parses the text after "//gridlint:" into allowed analyzer
// names. It validates the grammar but not name registration (the caller
// checks names against the known set so the error message can distinguish
// the cases).
func parseAllowBody(text string) ([]string, error) {
	verb := text
	if i := strings.IndexAny(verb, " \t("); i >= 0 {
		verb = verb[:i]
	}
	if verb != "allow" {
		return nil, fmt.Errorf("unknown verb %q (only \"allow\" is defined)", verb)
	}
	rest := text[len(verb):]
	if rest == "" || !(rest[0] == ' ' || rest[0] == '\t') {
		return nil, fmt.Errorf("missing space after \"allow\"")
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, fmt.Errorf("missing analyzer list")
	}
	var names []string
	for {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("missing (reason) after %q", strings.TrimSpace(rest))
		}
		name := strings.TrimSpace(rest[:open])
		if !isIdent(name) {
			return nil, fmt.Errorf("bad analyzer name %q", name)
		}
		close := strings.IndexByte(rest[open:], ')')
		if close < 0 {
			return nil, fmt.Errorf("unclosed reason for %q", name)
		}
		reason := strings.TrimSpace(rest[open+1 : open+close])
		if reason == "" {
			return nil, fmt.Errorf("empty reason for %q", name)
		}
		names = append(names, name)
		rest = strings.TrimSpace(rest[open+close+1:])
		if rest == "" {
			return names, nil
		}
		var found bool
		rest, found = strings.CutPrefix(rest, ",")
		if !found {
			return nil, fmt.Errorf("trailing text %q", rest)
		}
		rest = strings.TrimSpace(rest)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_') {
			return false
		}
	}
	return true
}
