// Package linttest runs lint analyzers over testdata fixture packages and
// checks reported findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest's contract:
//
//	total += v // want `float accumulation`
//
// A line with one or more want comments must produce exactly the findings
// whose messages match the given (backquoted) regexps; any other finding,
// and any unmatched want, fails the test. Annotations (//gridlint:allow)
// are honored, so fixtures can also prove the escape hatch suppresses.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"loadbalance/internal/lint"
)

// Run loads the fixture package in dir (relative to the test's working
// directory, e.g. "testdata/src/floatmaprange/flag"), gives it pkgPath as
// its import path, runs the analyzers, and diffs findings against the
// fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.File != w.file || f.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts want expectations from the fixture's comments. A
// want comment applies to the line it sits on.
func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitWantPatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses a want payload: one or more space-separated
// backquoted regexps.
func splitWantPatterns(text string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		if rest[0] != '`' {
			return nil, fmt.Errorf("pattern must be backquoted: %q", rest)
		}
		end := strings.IndexByte(rest[1:], '`')
		if end < 0 {
			return nil, fmt.Errorf("unclosed backquote in %q", rest)
		}
		out = append(out, rest[1:1+end])
		rest = strings.TrimSpace(rest[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}
