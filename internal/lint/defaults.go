package lint

import "regexp"

// replayRestoreFuncs matches the telemetry functions that form the
// replay/restore surface: crash recovery (OpenDurable), standby replay
// (OpenStandby, Promote, the shared applySnapshotState/applyJournalRecord/
// finishReplay helpers), and the Restore*/SkipTicks state re-seeding
// entry points they call.
var replayRestoreFuncs = regexp.MustCompile(
	`(?i)^(Restore.*|Replay.*|Recover.*|SkipTicks|applySnapshotState|applyJournalRecord|finishReplay|OpenDurable|OpenStandby|Promote)$`)

// tsdbDeterministicFuncs matches the tsdb store's deterministic surface:
// every append/fold/query path takes injected timestamps and must never
// read the clock, or replaying the same scrape sequence would produce a
// different history. The scraper's own run loop (NewScraper/Start/run)
// stays unmatched — its ticker and wall-clock default are the one place
// time legitimately enters.
var tsdbDeterministicFuncs = regexp.MustCompile(
	`^(Append|AppendBatch|appendLocked|foldLocked|window|Query|Instant|ScrapeAt|scrapeExposition|snapshotInto|parseExpositionInto|evalWindow|thin)$`)

// DefaultWalltimeConfig scopes walltime to this repo's deterministic
// replay surface.
func DefaultWalltimeConfig() WalltimeConfig {
	return WalltimeConfig{
		ForbiddenPkgs: []string{
			"internal/protocol",
			"internal/core",
			"internal/cluster",
			"internal/utilityagent",
		},
		RestrictedFuncs: map[string]*regexp.Regexp{
			"internal/telemetry": replayRestoreFuncs,
			"internal/tsdb":      tsdbDeterministicFuncs,
		},
	}
}

// DefaultAnalyzers returns the gridlint suite with repo-default scopes.
// Order is the order findings list analyzers in -list output; findings
// themselves sort by position.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		FloatMapRange(),
		Walltime(DefaultWalltimeConfig()),
		GlobalRand(),
		StructuredLog(),
		LockedSend(),
	}
}
