package replica

import (
	"fmt"
	"sync"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
)

// applyHist measures one replicated batch's persist-and-replay latency on
// the standby (the replica_apply_seconds series on /metrics).
var applyHist = trace.GetHistogram("replica_apply_seconds")

// Tap is the receiver's application surface: where replicated snapshots and
// frames land. telemetry.StandbyEngine satisfies it (a hot standby holding
// live grid state); StoreTap satisfies it with a bare journal (an archival
// follower, and the replication benchmark).
type Tap interface {
	// LastSeq is the follower's newest applied journal position — where a
	// (re)subscription resumes.
	LastSeq() uint64
	// ApplySnapshot bootstraps the follower from the primary's snapshot.
	ApplySnapshot(seq uint64, blob []byte) error
	// ApplyFrames persists and applies one contiguous replicated frame run,
	// returning the records applied and whether the run carried the
	// primary's clean-shutdown seal.
	ApplyFrames(firstSeq uint64, frames []byte) (n int, sealed bool, err error)
}

// EventKind is a receiver lifecycle event.
type EventKind int

// Receiver events.
const (
	// EventConnected: subscribed to a primary (also after a reconnect).
	EventConnected EventKind = iota
	// EventPrimaryDead: no contact within the failover timeout. The receiver
	// keeps re-dialing — the owner decides whether to promote instead.
	EventPrimaryDead
	// EventCleanShutdown: the primary's seal arrived; the stream is over.
	EventCleanShutdown
	// EventFallenBehind: this follower's position was pruned out of the
	// primary's journal and the follower already holds local state, so a
	// snapshot bootstrap would fork its journal. Terminal: the operator
	// must wipe the follower's data directory and restart it.
	EventFallenBehind
	// EventDiverged: this follower holds records the primary's journal does
	// not — it is ahead of (forked from) the stream it was pointed at, e.g.
	// an old primary rejoining with an unreplicated tail. Terminal: it must
	// never apply this stream, and it must never promote over it.
	EventDiverged
	// EventApplyFailed: a replicated record persisted into the local
	// journal but could not be replayed into the replica state (most often
	// a standby launched with a configuration that does not match the
	// primary's). Terminal: continuing would silently diverge.
	EventApplyFailed
)

// Event is one receiver lifecycle notification.
type Event struct {
	Kind EventKind
	// Addr is the primary address the event refers to (EventConnected).
	Addr string
}

// ReceiverConfig parameterises a standby's stream receiver.
type ReceiverConfig struct {
	// ID is this replica's id — the subscription identity and the promotion
	// tiebreak key.
	ID string
	// Addrs is the dial list of replication addresses: the primary first,
	// then the peer standbys (so a promoted peer is found after failover).
	Addrs []string
	// FailoverTimeout is how long the primary may be silent (no batch, no
	// heartbeat, no successful dial) before EventPrimaryDead (default 3s).
	FailoverTimeout time.Duration
	// Redial is the pause between dial attempts (default 200ms).
	Redial time.Duration
	// Client tunes the underlying connection; MaxFrame must fit a snapshot
	// bootstrap (default 64 MiB).
	Client bus.ClientConfig
}

// withDefaults fills unset fields.
func (c ReceiverConfig) withDefaults() (ReceiverConfig, error) {
	if c.ID == "" {
		return c, fmt.Errorf("%w: receiver needs an id", ErrBadConfig)
	}
	if len(c.Addrs) == 0 {
		return c, fmt.Errorf("%w: receiver needs at least one primary address", ErrBadConfig)
	}
	if c.FailoverTimeout <= 0 {
		c.FailoverTimeout = 3 * time.Second
	}
	if c.Redial <= 0 {
		c.Redial = 200 * time.Millisecond
	}
	if c.Client.MaxFrame <= 0 {
		c.Client.MaxFrame = 64 << 20
	}
	if c.Client.InboxSize <= 0 {
		// Replication batches are flow-controlled by acks, so the inbox
		// bounds in-flight batches, not throughput.
		c.Client.InboxSize = 256
	}
	return c, nil
}

// ReceiverStatus is the standby-side replication state.
type ReceiverStatus struct {
	ID          string    `json:"id"`
	Connected   bool      `json:"connected"`
	Addr        string    `json:"addr"` // current (or last) primary address
	AppliedSeq  uint64    `json:"appliedSeq"`
	LastApplied time.Time `json:"lastApplied"` // wall time of the newest applied batch or snapshot
	LastContact time.Time `json:"lastContact"`
	Batches     uint64    `json:"batches"`
	Records     uint64    `json:"records"`
	Snapshots   uint64    `json:"snapshots"`
	Resyncs     uint64    `json:"resyncs"` // out-of-order batches answered with a re-subscribe
	Dials       uint64    `json:"dials"`
	Sealed      bool      `json:"sealed"`
	// Fatal is set when the stream ended terminally (fallen behind a
	// prune); the receiver has stopped for good.
	Fatal string `json:"fatal,omitempty"`
}

// Receiver follows a primary's journal stream and applies it to a Tap. It
// runs until Close (or the primary's clean shutdown), re-dialing through its
// address list on every connection loss.
type Receiver struct {
	cfg    ReceiverConfig
	tap    Tap
	events chan Event

	mu            sync.Mutex
	status        ReceiverStatus
	everContacted bool // a heartbeat/batch/snapshot has arrived at least once
	closed        bool

	stop chan struct{}
	done chan struct{}
}

// StartReceiver begins following the stream. Callers must Close it (unless
// the stream ends with EventCleanShutdown, after which the run loop exits on
// its own).
func StartReceiver(cfg ReceiverConfig, tap Tap) (*Receiver, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tap == nil {
		return nil, fmt.Errorf("%w: receiver needs a tap", ErrBadConfig)
	}
	r := &Receiver{
		cfg:    cfg,
		tap:    tap,
		events: make(chan Event, 16),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.status.ID = cfg.ID
	r.status.LastContact = time.Now()
	go r.run()
	return r, nil
}

// Events returns the receiver's lifecycle notifications. The channel is
// buffered; stale events are dropped rather than blocking the stream.
func (r *Receiver) Events() <-chan Event { return r.events }

// Status snapshots the receiver's state.
func (r *Receiver) Status() ReceiverStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// emit queues a lifecycle event without ever blocking the stream.
func (r *Receiver) emit(ev Event) {
	select {
	case r.events <- ev:
	default:
	}
}

// touch records primary contact.
func (r *Receiver) touch() {
	r.mu.Lock()
	r.status.LastContact = time.Now()
	r.everContacted = true
	r.mu.Unlock()
}

// fatal records a terminal stream failure and emits its event. The run loop
// exits instead of re-dialing: every terminal condition would simply repeat.
func (r *Receiver) fatal(kind EventKind, msg string) {
	health.Log(health.Error, "replica", msg, health.Str("id", r.cfg.ID))
	r.mu.Lock()
	r.status.Fatal = msg
	r.mu.Unlock()
	r.emit(Event{Kind: kind})
}

// run is the receiver's main loop: dial (rotating through the address list),
// subscribe, apply the stream; on loss, re-dial; on silence past the
// failover timeout, report the primary dead (once per silent stretch) and
// keep trying — the address list includes the peers, so a promoted standby's
// stream is found the same way. Contact means stream traffic (a batch, a
// snapshot, a heartbeat): a listener that accepts but never speaks is as
// dead as one that refuses.
func (r *Receiver) run() {
	defer close(r.done)
	addrIdx := 0
	var reportedContact time.Time
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		// A primary is only declared dead if it was ever alive from here: a
		// standby that has never reached any address keeps dialing instead
		// of promoting over what may be a healthy primary it simply cannot
		// see yet (misconfigured address, primary still starting).
		lc, contacted := r.lastContact()
		if contacted && time.Since(lc) > r.cfg.FailoverTimeout && !lc.Equal(reportedContact) {
			reportedContact = lc
			r.emit(Event{Kind: EventPrimaryDead})
		}
		cli, addr, idx := r.dialNext(addrIdx)
		if cli == nil {
			// No address answered this round.
			select {
			case <-r.stop:
				return
			case <-time.After(r.cfg.Redial):
			}
			continue
		}
		addrIdx = idx
		r.mu.Lock()
		r.status.Connected = true
		r.status.Addr = addr
		r.status.Dials++
		r.mu.Unlock()
		r.emit(Event{Kind: EventConnected, Addr: addr})

		sealed := r.follow(cli)
		cli.Close()
		r.mu.Lock()
		r.status.Connected = false
		r.status.Sealed = sealed
		fatal := r.status.Fatal
		r.mu.Unlock()
		if sealed {
			r.emit(Event{Kind: EventCleanShutdown})
			return
		}
		if fatal != "" {
			return // terminal; EventFallenBehind already emitted
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.Redial):
		}
	}
}

// lastContact reads the stream's newest contact time and whether any
// contact has ever happened.
func (r *Receiver) lastContact() (time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status.LastContact, r.everContacted
}

// dialNext tries the address list once, starting at from, returning the
// first connection that answers.
func (r *Receiver) dialNext(from int) (*bus.Client, string, int) {
	for i := 0; i < len(r.cfg.Addrs); i++ {
		idx := (from + i) % len(r.cfg.Addrs)
		addr := r.cfg.Addrs[idx]
		cli, err := bus.DialConfig(addr, r.cfg.ID, r.cfg.Client)
		if err == nil {
			return cli, addr, idx
		}
	}
	return nil, "", from
}

// silentTooLong reports whether the primary has been out of contact past the
// failover timeout.
func (r *Receiver) silentTooLong() bool {
	lc, _ := r.lastContact()
	return time.Since(lc) > r.cfg.FailoverTimeout
}

// subscribe (re)sends the subscription at the tap's current position.
func (r *Receiver) subscribe(cli *bus.Client) error {
	env, err := message.NewEnvelope(r.cfg.ID, senderName, "replication", message.ReplSubscribe{
		Replica: r.cfg.ID,
		FromSeq: r.tap.LastSeq(),
	})
	if err != nil {
		return err
	}
	return cli.Send(env)
}

// follow applies one connection's stream until it dies (returns false) or
// delivers the primary's seal (returns true).
func (r *Receiver) follow(cli *bus.Client) (sealed bool) {
	if err := r.subscribe(cli); err != nil {
		return false
	}
	idle := time.NewTicker(r.cfg.FailoverTimeout / 2)
	defer idle.Stop()
	for {
		select {
		case <-r.stop:
			return false
		case <-idle.C:
			if r.silentTooLong() {
				// The connection is up but silent — a wedged primary is as
				// dead as a crashed one. Drop the connection; the run loop
				// re-dials and reports.
				return false
			}
		case env, ok := <-cli.Inbox():
			if !ok {
				return false
			}
			p, err := env.Decode()
			if err != nil {
				continue
			}
			switch m := p.(type) {
			case message.ReplHeartbeat:
				r.touch()
				if m.LastSeq < r.tap.LastSeq() {
					// The stream's head is below our own position: this
					// follower holds records the primary does not — a forked
					// journal (an old primary rejoining with an unreplicated
					// tail). Applying or promoting over it would be split
					// brain; stop terminally.
					r.fatal(EventDiverged, fmt.Sprintf(
						"diverged: local journal at seq %d is ahead of the primary's stream at %d; this follower's unreplicated tail must be inspected, then its data directory re-bootstrapped",
						r.tap.LastSeq(), m.LastSeq))
					return false
				}
			case message.ReplSnapshot:
				r.touch()
				if r.tap.LastSeq() != 0 {
					// A snapshot answer to a non-zero subscription means our
					// position was pruned out of the primary's journal, and a
					// bootstrap over existing state would fork it. There is
					// no way forward from here: resubscribing just re-ships
					// the snapshot. Stop terminally and tell the operator.
					r.fatal(EventFallenBehind, fmt.Sprintf(
						"fallen behind: local seq %d was pruned out of the primary's journal; wipe this follower's data directory and restart it",
						r.tap.LastSeq()))
					return false
				}
				if err := r.tap.ApplySnapshot(m.Seq, m.Blob); err != nil {
					// The blob was validated against this follower's own
					// configuration and refused — retrying re-downloads the
					// same snapshot forever.
					r.fatal(EventApplyFailed, fmt.Sprintf("snapshot bootstrap at %d refused: %v", m.Seq, err))
					return false
				}
				r.mu.Lock()
				r.status.Snapshots++
				r.status.AppliedSeq = m.Seq
				r.status.LastApplied = time.Now()
				r.mu.Unlock()
				r.ack(cli, m.Seq)
			case message.ReplBatch:
				r.touch()
				if m.FirstSeq != r.tap.LastSeq()+1 {
					// A shed or reordered batch: resync rather than apply a
					// discontiguous run.
					r.resync(cli)
					continue
				}
				t0 := time.Now()
				sp := trace.Root("replication.apply")
				sp.SetAgent(r.cfg.ID)
				n, gotSeal, err := r.tap.ApplyFrames(m.FirstSeq, m.Frames)
				sp.End()
				applyHist.Observe(time.Since(t0))
				if err != nil {
					// The journal may now hold records the replica state
					// could not replay (configuration mismatch, corrupt
					// stream): resuming past them would silently diverge.
					r.fatal(EventApplyFailed, fmt.Sprintf("apply %d frames at %d: %v", m.Count, m.FirstSeq, err))
					return false
				}
				applied := m.FirstSeq + uint64(n) - 1
				r.mu.Lock()
				r.status.Batches++
				r.status.Records += uint64(n)
				r.status.AppliedSeq = applied
				r.status.LastApplied = time.Now()
				r.mu.Unlock()
				r.ack(cli, applied)
				if gotSeal {
					return true
				}
			}
		}
	}
}

// resync re-subscribes at the tap's position, counting the discontinuity.
func (r *Receiver) resync(cli *bus.Client) {
	r.mu.Lock()
	r.status.Resyncs++
	r.mu.Unlock()
	_ = r.subscribe(cli)
}

// ack reports the applied position.
func (r *Receiver) ack(cli *bus.Client, seq uint64) {
	env, err := message.NewEnvelope(r.cfg.ID, senderName, "replication", message.ReplAck{
		Replica: r.cfg.ID, AppliedSeq: seq,
	})
	if err == nil {
		_ = cli.Send(env)
	}
}

// Close stops the receiver and waits for its loop to exit.
func (r *Receiver) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}
