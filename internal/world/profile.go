package world

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"loadbalance/internal/units"
)

// Sample is one point of a load profile: average power over a slot.
type Sample struct {
	Interval units.Interval
	Power    units.Power
}

// Energy returns the energy consumed during the sample's slot.
func (s Sample) Energy() units.Energy {
	return s.Power.For(s.Interval.Duration())
}

// Profile is a time series of load samples over contiguous slots — the
// "demand curve" of Figure 1.
type Profile struct {
	Samples []Sample
}

// GenerateProfile samples a population's aggregate demand over an interval
// at the given resolution. This regenerates the Figure 1 demand curve.
func GenerateProfile(p *Population, iv units.Interval, resolution time.Duration) (*Profile, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("world: resolution %v must be positive", resolution)
	}
	n := int(iv.Duration() / resolution)
	if n == 0 {
		return nil, fmt.Errorf("world: interval %v shorter than resolution %v", iv.Duration(), resolution)
	}
	slots, err := iv.Split(n)
	if err != nil {
		return nil, err
	}
	prof := &Profile{Samples: make([]Sample, 0, len(slots))}
	for _, slot := range slots {
		mid := slot.Start.Add(slot.Duration() / 2)
		prof.Samples = append(prof.Samples, Sample{
			Interval: slot,
			Power:    p.DemandAt(mid),
		})
	}
	return prof, nil
}

// TotalEnergy returns the energy consumed over the whole profile.
func (p *Profile) TotalEnergy() units.Energy {
	var total units.Energy
	for _, s := range p.Samples {
		total = total.Add(s.Energy())
	}
	return total
}

// Peak returns the sample with the highest power. It returns false when the
// profile is empty.
func (p *Profile) Peak() (Sample, bool) {
	if len(p.Samples) == 0 {
		return Sample{}, false
	}
	best := p.Samples[0]
	for _, s := range p.Samples[1:] {
		if s.Power > best.Power {
			best = s
		}
	}
	return best, true
}

// Mean returns the average power over the profile (0 for empty profiles).
func (p *Profile) Mean() units.Power {
	if len(p.Samples) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range p.Samples {
		total += s.Power.KWs()
	}
	return units.Power(total / float64(len(p.Samples)))
}

// PeakToMean returns the peak/mean ratio — the quantity load management
// tries to shrink.
func (p *Profile) PeakToMean() float64 {
	peak, ok := p.Peak()
	if !ok {
		return 0
	}
	mean := p.Mean()
	if mean == 0 {
		return 0
	}
	return peak.Power.KWs() / mean.KWs()
}

// LocalPeaks returns the indices of samples that are strict local maxima
// exceeding threshold × mean. Figure 1's two-peak shape makes this ≥ 2 for a
// residential day at threshold ≈ 1.1.
func (p *Profile) LocalPeaks(threshold float64) []int {
	mean := p.Mean().KWs()
	var out []int
	for i := 1; i < len(p.Samples)-1; i++ {
		v := p.Samples[i].Power.KWs()
		if v > p.Samples[i-1].Power.KWs() && v >= p.Samples[i+1].Power.KWs() && v > threshold*mean {
			out = append(out, i)
		}
	}
	return out
}

// EnergyIn returns the energy the profile records inside the query interval,
// counting only whole slots fully contained in it.
func (p *Profile) EnergyIn(iv units.Interval) units.Energy {
	var total units.Energy
	for _, s := range p.Samples {
		if !s.Interval.Start.Before(iv.Start) && !s.Interval.End.After(iv.End) {
			total = total.Add(s.Energy())
		}
	}
	return total
}

// TickSeries returns the profile's per-slot energies in kWh, oldest first —
// the form live telemetry consumes: one value per tick for meter baselines
// and collector ring buffers.
func (p *Profile) TickSeries() []float64 {
	out := make([]float64, len(p.Samples))
	for i, s := range p.Samples {
		out[i] = s.Energy().KWhs()
	}
	return out
}

// CSV renders the profile as "start,kw" rows for the experiment harness.
func (p *Profile) CSV() string {
	var b strings.Builder
	b.WriteString("slot_start,kw\n")
	for _, s := range p.Samples {
		fmt.Fprintf(&b, "%s,%.4f\n", s.Interval.Start.Format(time.RFC3339), s.Power.KWs())
	}
	return b.String()
}

// ASCII renders a coarse vertical bar chart of the profile, one row per
// sample bucket, for terminal display of the Figure 1 curve.
func (p *Profile) ASCII(width int) string {
	if width <= 0 {
		width = 60
	}
	peak, ok := p.Peak()
	if !ok || peak.Power == 0 {
		return "(empty profile)\n"
	}
	var b strings.Builder
	for _, s := range p.Samples {
		bars := int(s.Power.KWs() / peak.Power.KWs() * float64(width))
		fmt.Fprintf(&b, "%s |%s %.1f kW\n",
			s.Interval.Start.Format("15:04"), strings.Repeat("#", bars), s.Power.KWs())
	}
	return b.String()
}

// Meter accumulates actual consumption readings per customer, the
// consumption information the UA's maintenance of world information stores.
type Meter struct {
	readings map[string][]Sample
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{readings: make(map[string][]Sample)}
}

// Record appends a consumption sample for a customer.
func (m *Meter) Record(customer string, s Sample) {
	m.readings[customer] = append(m.readings[customer], s)
}

// EnergyOf returns a customer's total recorded energy within an interval.
func (m *Meter) EnergyOf(customer string, iv units.Interval) units.Energy {
	var total units.Energy
	for _, s := range m.readings[customer] {
		if !s.Interval.Start.Before(iv.Start) && !s.Interval.End.After(iv.End) {
			total = total.Add(s.Energy())
		}
	}
	return total
}

// Customers returns the customer IDs with recorded readings, sorted.
func (m *Meter) Customers() []string {
	out := make([]string, 0, len(m.readings))
	for c := range m.readings {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
