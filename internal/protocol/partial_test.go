package protocol

import (
	"errors"
	"math"
	"testing"
)

func TestApplyBids(t *testing.T) {
	loads := map[string]CustomerLoad{
		"a": {Predicted: 10, Allowed: 10},
		"b": {Predicted: 20, Allowed: 20},
	}
	out := ApplyBids(loads, map[string]float64{"a": 0.3})
	if got := out["a"]; got.CutDown != 0.3 || !got.Responded {
		t.Fatalf("a = %+v, want cut-down 0.3, responded", got)
	}
	if got := out["b"]; got.CutDown != 0 || got.Responded {
		t.Fatalf("b = %+v, want untouched", got)
	}
	if loads["a"].CutDown != 0 {
		t.Fatal("ApplyBids mutated its input")
	}
}

func TestSubsetLoads(t *testing.T) {
	loads := map[string]CustomerLoad{
		"a": {Predicted: 10, Allowed: 10},
		"b": {Predicted: 20, Allowed: 20},
	}
	sub, err := SubsetLoads(loads, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub["b"].Predicted != 20 {
		t.Fatalf("subset = %v", sub)
	}
	if _, err := SubsetLoads(loads, []string{"zz"}); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatalf("unknown name error = %v", err)
	}
}

func TestResidualNormalUse(t *testing.T) {
	loads := map[string]CustomerLoad{
		"a": {Predicted: 10, Allowed: 10, CutDown: 0.2}, // uses 8
		"b": {Predicted: 10, Allowed: 10},               // uses 10
		"c": {Predicted: 10, Allowed: 10},               // subset member, excluded
	}
	got := ResidualNormalUse(loads, 30, map[string]bool{"c": true})
	if math.Abs(got.KWhs()-12) > 1e-9 {
		t.Fatalf("residual = %v, want 12 kWh", got)
	}

	// Complement consuming beyond capacity floors at the minimum fraction.
	got = ResidualNormalUse(loads, 15, map[string]bool{"c": true})
	if want := 15 * minResidualFraction; math.Abs(got.KWhs()-want) > 1e-9 {
		t.Fatalf("floored residual = %v, want %v kWh", got, want)
	}
	if got <= 0 {
		t.Fatal("residual must stay positive for scenario validation")
	}
}
