package cluster

import (
	"context"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
)

// awardsJSON renders customer awards as canonical JSON (sorted by name) so
// two runs can be compared byte for byte.
func awardsJSON(t *testing.T, awards []protocol.CustomerAward) []byte {
	t.Helper()
	b, err := json.Marshal(awards)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// memberAwardsJSON renders a distributed run's member awards in the same
// canonical shape as a flat run's award list.
func memberAwardsJSON(t *testing.T, awards map[string]message.Award) []byte {
	t.Helper()
	names := make([]string, 0, len(awards))
	for n := range awards {
		names = append(names, n)
	}
	// Match protocol.RTSession.Awards ordering (sorted by customer name).
	sort.Strings(names)
	out := make([]protocol.CustomerAward, 0, len(names))
	for _, n := range names {
		out = append(out, protocol.CustomerAward{Customer: n, Award: awards[n]})
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedByteIdenticalAwards is the acceptance gate for the
// distributed tier: the seeded paper scenario negotiated across 4
// concentrators — each behind its own pair of TCP connections — must
// produce awards byte-identical to the flat in-process run.
func TestDistributedByteIdenticalAwards(t *testing.T) {
	flat, err := core.Run(paperScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	flatJSON := awardsJSON(t, flat.Awards)

	res, err := RunDistributed(DistributedConfig{Scenario: paperScenario(t), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.AgentErrors {
		t.Errorf("agent error: %v", e)
	}
	if res.Outcome != flat.Outcome || res.Rounds != flat.Rounds {
		t.Fatalf("outcome %q in %d rounds, flat %q in %d", res.Outcome, res.Rounds, flat.Outcome, flat.Rounds)
	}
	distJSON := memberAwardsJSON(t, res.MemberAwards)
	if string(distJSON) != string(flatJSON) {
		t.Fatalf("awards differ:\ndistributed %s\nflat        %s", distJSON, flatJSON)
	}

	// The tier really ran over TCP: 4 concentrator connections on each
	// server, with envelope frames flowing both ways.
	if res.RootWire.Hellos != 4 {
		t.Fatalf("root server handshakes = %d, want 4", res.RootWire.Hellos)
	}
	if res.MemberWire.Hellos != 4 {
		t.Fatalf("member server handshakes = %d, want 4", res.MemberWire.Hellos)
	}
	for _, ws := range []bus.WireStats{res.RootWire, res.MemberWire} {
		if ws.FramesIn == 0 || ws.FramesOut == 0 {
			t.Fatalf("no frames crossed the wire: %+v", ws)
		}
		if ws.Malformed != 0 || ws.Rejected != 0 {
			t.Fatalf("transport errors: %+v", ws)
		}
	}
}

// TestDistributedDeterministic runs the distributed negotiation twice and
// expects bitwise-equal award sets — the reproducibility the sorted float
// summation fix buys.
func TestDistributedDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunDistributed(DistributedConfig{Scenario: paperScenario(t), Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return memberAwardsJSON(t, res.MemberAwards)
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two distributed runs differ:\n%s\nvs\n%s", a, b)
	}
}

// TestDistributedRejectsLossyScenario documents the lossless contract.
func TestDistributedRejectsLossyScenario(t *testing.T) {
	s := paperScenario(t)
	s.DropRate = 0.1
	s.RoundTimeout = 50 * time.Millisecond
	if _, err := RunDistributed(DistributedConfig{Scenario: s}); err == nil {
		t.Fatal("lossy scenario should be rejected")
	}
}

// TestRunWorker hosts one shard's concentrator through the worker entry
// point (the cmd/gridd -role concentrator path) against in-test servers,
// while the remaining shards run through DialTier.
func TestRunWorker(t *testing.T) {
	s := paperScenario(t)
	topo, err := NewTopology(s.Loads(), 3)
	if err != nil {
		t.Fatal(err)
	}

	memberBus, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer memberBus.Close()
	memberSrv, err := bus.ListenAndServe("127.0.0.1:0", memberBus)
	if err != nil {
		t.Fatal(err)
	}
	defer memberSrv.Close()
	rootBus, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rootBus.Close()
	rootSrv, err := bus.ListenAndServe("127.0.0.1:0", rootBus)
	if err != nil {
		t.Fatal(err)
	}
	defer rootSrv.Close()

	// The shard's members must exist on the member bus for the relay's
	// targeted sends to land; dummy mailboxes are enough.
	for _, name := range topo.Members(0) {
		if _, err := memberBus.Register(name, 16); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerConfig{
			UpAddr:   rootSrv.Addr(),
			DownAddr: memberSrv.Addr(),
			Concentrator: ConcentratorConfig{
				Name:      topo.ConcentratorName(0),
				SessionID: s.SessionID,
				Members:   topo.MemberLoads(0),
			},
		})
	}()

	// Wait for the worker's upward connection to register, then hand it a
	// session end so it unwinds; its members are silent, which is fine — the
	// worker only needs the relay to complete.
	deadline := time.After(5 * time.Second)
	for len(rootBus.Agents()) < 1 {
		select {
		case <-deadline:
			t.Fatalf("worker never registered upward: %v", rootBus.Agents())
		case <-time.After(5 * time.Millisecond):
		}
	}
	end, err := message.NewEnvelope("ua", topo.ConcentratorName(0), s.SessionID, message.SessionEnd{Round: 1, Reason: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rootBus.Send(end); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("worker never finished")
	}
}
