// Package desire provides an executable semantics for the compositional
// development method DESIRE (framework for DEsign and Specification of
// Interacting REasoning components) as used in Section 4 of the paper.
//
// DESIRE designs consist of three kinds of knowledge:
//
//   - process composition: processes modelled as components with typed input
//     and output information states, composed from sub-components;
//   - knowledge composition: ontologies and knowledge bases (see internal/kb);
//   - the relation between the two: which knowledge a process uses.
//
// This package models components with kb.Store input/output interfaces.
// Primitive components are either reasoning components (driven by a kb.Base)
// or task components (driven by a Go function — the paper allows primitive
// components "capable of performing tasks such as calculation, information
// retrieval, optimisation"). Composed components contain sub-components,
// information links that move facts between information states, and task
// control that sequences activations.
package desire

import (
	"errors"
	"fmt"

	"loadbalance/internal/kb"
)

// Errors reported by the framework.
var (
	ErrUnknownComponent = errors.New("desire: unknown component")
	ErrUnknownPort      = errors.New("desire: unknown port")
	ErrNoFixpoint       = errors.New("desire: task control did not quiesce")
	ErrBadLink          = errors.New("desire: invalid information link")
)

// Port selects a component's input or output information state.
type Port int

// Ports.
const (
	In Port = iota + 1
	Out
)

// String renders the port name.
func (p Port) String() string {
	switch p {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "?"
	}
}

// Component is a DESIRE process: a named unit with input and output
// information states and an activation step that derives new output from
// current input. Activation must be idempotent once inputs stop changing.
type Component interface {
	Name() string
	Input() *kb.Store
	Output() *kb.Store
	// Activate performs one activation and reports whether it changed the
	// output information state.
	Activate() (changed bool, err error)
}

// Reasoning is a primitive reasoning component: activation runs its
// knowledge base to a fixpoint over (input ∪ previous output) and publishes
// the facts of declared output predicates.
type Reasoning struct {
	name     string
	input    *kb.Store
	output   *kb.Store
	work     *kb.Store
	engine   *kb.Engine
	outPreds map[string]bool
}

// NewReasoning constructs a reasoning component. outPreds lists the
// predicates whose derived facts are published on the output state; all other
// derived facts remain internal (DESIRE's information hiding).
func NewReasoning(name string, ont *kb.Ontology, base *kb.Base, outPreds ...string) *Reasoning {
	preds := make(map[string]bool, len(outPreds))
	for _, p := range outPreds {
		preds[p] = true
	}
	return &Reasoning{
		name:     name,
		input:    kb.NewStore(ont),
		output:   kb.NewStore(ont),
		work:     kb.NewStore(ont),
		engine:   kb.NewEngine(base),
		outPreds: preds,
	}
}

// Name returns the component name.
func (r *Reasoning) Name() string { return r.name }

// Input returns the input information state.
func (r *Reasoning) Input() *kb.Store { return r.input }

// Output returns the output information state.
func (r *Reasoning) Output() *kb.Store { return r.output }

// Activate copies the input facts into the working state, runs the knowledge
// base to a fixpoint, and publishes derived facts for output predicates.
func (r *Reasoning) Activate() (bool, error) {
	r.work.Clear()
	for _, f := range r.input.Facts() {
		if err := r.work.Assert(f.Atom, f.Truth); err != nil {
			return false, fmt.Errorf("component %q: %w", r.name, err)
		}
	}
	derived, err := r.engine.Infer(r.work)
	if err != nil {
		return false, fmt.Errorf("component %q: %w", r.name, err)
	}
	changed := false
	for _, f := range derived {
		if !r.outPreds[f.Atom.Pred] {
			continue
		}
		if r.output.TruthOf(f.Atom) == f.Truth {
			continue
		}
		if err := r.output.Assert(f.Atom, f.Truth); err != nil {
			return changed, fmt.Errorf("component %q: %w", r.name, err)
		}
		changed = true
	}
	return changed, nil
}

// TaskFunc is the body of a task (calculation) component: it reads the input
// state and asserts results on the output state, reporting whether anything
// changed.
type TaskFunc func(in *kb.Store, out *kb.Store) (changed bool, err error)

// Task is a primitive non-reasoning component wrapping a Go function.
type Task struct {
	name   string
	input  *kb.Store
	output *kb.Store
	body   TaskFunc
}

// NewTask constructs a task component.
func NewTask(name string, ont *kb.Ontology, body TaskFunc) *Task {
	return &Task{
		name:   name,
		input:  kb.NewStore(ont),
		output: kb.NewStore(ont),
		body:   body,
	}
}

// Name returns the component name.
func (t *Task) Name() string { return t.name }

// Input returns the input information state.
func (t *Task) Input() *kb.Store { return t.input }

// Output returns the output information state.
func (t *Task) Output() *kb.Store { return t.output }

// Activate runs the task body.
func (t *Task) Activate() (bool, error) {
	changed, err := t.body(t.input, t.output)
	if err != nil {
		return changed, fmt.Errorf("component %q: %w", t.name, err)
	}
	return changed, nil
}

// PredMap renames a predicate as facts flow through an information link.
// DESIRE links translate between the ontologies of neighbouring components.
type PredMap struct {
	From string
	To   string
}

// Endpoint addresses one side of an information link. Component "" denotes
// the enclosing composed component itself; for the enclosing component the
// semantics invert (its In port is a source, its Out port a sink).
type Endpoint struct {
	Component string
	Port      Port
}

// Link is an information link: it copies facts whose predicate matches a
// PredMap entry from the source state to the destination state, renaming
// predicates as configured. An empty Map copies every fact unchanged.
type Link struct {
	Name string
	From Endpoint
	To   Endpoint
	Map  []PredMap
}

// Step is one task-control step: either activate a sub-component or transfer
// an information link. Exactly one field is set.
type Step struct {
	Activate string // component name
	Transfer string // link name
}

// Composed is a composed component: sub-components, information links and
// task control. Its own Input/Output states are the interface it presents to
// any enclosing composition.
type Composed struct {
	name      string
	input     *kb.Store
	output    *kb.Store
	children  map[string]Component
	links     map[string]Link
	control   []Step
	maxCycles int
}

// NewComposed constructs a composed component. Task control steps are run in
// order, repeatedly, until a full pass changes nothing (quiescence), bounded
// by maxCycles (0 means the default of 32).
func NewComposed(name string, ont *kb.Ontology, maxCycles int) *Composed {
	if maxCycles <= 0 {
		maxCycles = 32
	}
	return &Composed{
		name:      name,
		input:     kb.NewStore(ont),
		output:    kb.NewStore(ont),
		children:  make(map[string]Component),
		links:     make(map[string]Link),
		maxCycles: maxCycles,
	}
}

// Name returns the component name.
func (c *Composed) Name() string { return c.name }

// Input returns the input information state.
func (c *Composed) Input() *kb.Store { return c.input }

// Output returns the output information state.
func (c *Composed) Output() *kb.Store { return c.output }

// AddChild registers a sub-component.
func (c *Composed) AddChild(child Component) error {
	if _, ok := c.children[child.Name()]; ok {
		return fmt.Errorf("desire: duplicate child %q in %q", child.Name(), c.name)
	}
	c.children[child.Name()] = child
	return nil
}

// Child returns a registered sub-component.
func (c *Composed) Child(name string) (Component, error) {
	ch, ok := c.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", ErrUnknownComponent, name, c.name)
	}
	return ch, nil
}

// AddLink registers an information link after validating its endpoints.
func (c *Composed) AddLink(l Link) error {
	if l.Name == "" {
		return fmt.Errorf("%w: link must be named", ErrBadLink)
	}
	if _, ok := c.links[l.Name]; ok {
		return fmt.Errorf("desire: duplicate link %q in %q", l.Name, c.name)
	}
	if _, err := c.resolve(l.From, true); err != nil {
		return fmt.Errorf("link %q: %w", l.Name, err)
	}
	if _, err := c.resolve(l.To, false); err != nil {
		return fmt.Errorf("link %q: %w", l.Name, err)
	}
	c.links[l.Name] = l
	return nil
}

// SetControl installs the task-control sequence after validating every step.
func (c *Composed) SetControl(steps []Step) error {
	for i, s := range steps {
		switch {
		case s.Activate != "" && s.Transfer != "":
			return fmt.Errorf("desire: step %d in %q sets both Activate and Transfer", i, c.name)
		case s.Activate != "":
			if _, ok := c.children[s.Activate]; !ok {
				return fmt.Errorf("%w: step %d activates %q", ErrUnknownComponent, i, s.Activate)
			}
		case s.Transfer != "":
			if _, ok := c.links[s.Transfer]; !ok {
				return fmt.Errorf("desire: step %d transfers unknown link %q", i, s.Transfer)
			}
		default:
			return fmt.Errorf("desire: step %d in %q is empty", i, c.name)
		}
	}
	c.control = append([]Step(nil), steps...)
	return nil
}

// resolve maps an endpoint to its backing store. asSource selects the
// reading side: for the enclosing component (Component == "") the input state
// is readable and the output state writable, which is the inversion DESIRE
// applies at composition boundaries.
func (c *Composed) resolve(e Endpoint, asSource bool) (*kb.Store, error) {
	if e.Component == "" {
		switch e.Port {
		case In:
			if !asSource {
				return nil, fmt.Errorf("%w: own input is not a link target", ErrUnknownPort)
			}
			return c.input, nil
		case Out:
			if asSource {
				return nil, fmt.Errorf("%w: own output is not a link source", ErrUnknownPort)
			}
			return c.output, nil
		default:
			return nil, ErrUnknownPort
		}
	}
	ch, ok := c.children[e.Component]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownComponent, e.Component)
	}
	switch e.Port {
	case In:
		return ch.Input(), nil
	case Out:
		return ch.Output(), nil
	default:
		return nil, ErrUnknownPort
	}
}

// transfer copies matching facts across a link, reporting change.
func (c *Composed) transfer(l Link) (bool, error) {
	src, err := c.resolve(l.From, true)
	if err != nil {
		return false, err
	}
	dst, err := c.resolve(l.To, false)
	if err != nil {
		return false, err
	}
	rename := make(map[string]string, len(l.Map))
	for _, m := range l.Map {
		rename[m.From] = m.To
	}
	changed := false
	for _, f := range src.Facts() {
		atom := f.Atom
		if len(rename) > 0 {
			to, ok := rename[atom.Pred]
			if !ok {
				continue
			}
			atom = kb.Atom{Pred: to, Args: atom.Args}
		}
		if dst.TruthOf(atom) == f.Truth {
			continue
		}
		if err := dst.Assert(atom, f.Truth); err != nil {
			return changed, fmt.Errorf("link %q: %w", l.Name, err)
		}
		changed = true
	}
	return changed, nil
}

// Activate runs the task-control sequence to quiescence.
func (c *Composed) Activate() (bool, error) {
	anyChange := false
	for cycle := 0; cycle < c.maxCycles; cycle++ {
		changed := false
		for _, s := range c.control {
			switch {
			case s.Activate != "":
				ch := c.children[s.Activate]
				did, err := ch.Activate()
				if err != nil {
					return anyChange, fmt.Errorf("composed %q: %w", c.name, err)
				}
				changed = changed || did
			case s.Transfer != "":
				did, err := c.transfer(c.links[s.Transfer])
				if err != nil {
					return anyChange, fmt.Errorf("composed %q: %w", c.name, err)
				}
				changed = changed || did
			}
		}
		if !changed {
			return anyChange, nil
		}
		anyChange = true
	}
	return anyChange, fmt.Errorf("%w: %q after %d cycles", ErrNoFixpoint, c.name, c.maxCycles)
}

// Run is a convenience driver: it asserts the given facts on the component's
// input, activates it, and returns the output facts.
func Run(c Component, facts []kb.Fact) ([]kb.Fact, error) {
	for _, f := range facts {
		if err := c.Input().Assert(f.Atom, f.Truth); err != nil {
			return nil, fmt.Errorf("desire: seed %s: %w", f.Atom, err)
		}
	}
	if _, err := c.Activate(); err != nil {
		return nil, err
	}
	return c.Output().Facts(), nil
}
