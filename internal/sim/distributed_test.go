package sim

import (
	"strings"
	"testing"
)

func TestE15DistributedNegotiation(t *testing.T) {
	tab, err := E15DistributedNegotiation(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("distributed awards not byte-identical to flat:\n%s", out)
	}
	for _, mode := range []string{"flat", "sharded", "distributed"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("missing %q row:\n%s", mode, out)
		}
	}
	if strings.Count(out, "converged") != 3 {
		t.Fatalf("all three modes must converge:\n%s", out)
	}
}

func TestE15ShardDefaulting(t *testing.T) {
	// n below the shard count is raised to it; zero shards falls to 4.
	tab, err := E15DistributedNegotiation(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Name, "4 concentrators") {
		t.Fatalf("shard default not applied: %s", tab.Name)
	}
}
