package cluster

import (
	"errors"
	"math"
	"testing"

	"loadbalance/internal/core"
	"loadbalance/internal/units"
)

func TestSubScenario(t *testing.T) {
	s, err := core.SyntheticScenario(core.SyntheticConfig{N: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	members := []string{"c000002", "c000005"}
	sub, err := SubScenario(s, members, map[string]float64{"c000002": 2}, 5, "renego-1")
	if err != nil {
		t.Fatal(err)
	}
	if sub.SessionID != "renego-1" || sub.NormalUse != 5 {
		t.Fatalf("sub header = %q %v", sub.SessionID, sub.NormalUse)
	}
	if len(sub.Customers) != 2 {
		t.Fatalf("members = %d, want 2", len(sub.Customers))
	}
	for _, c := range sub.Customers {
		switch c.Name {
		case "c000002":
			if math.Abs(c.Predicted.KWhs()-27) > 1e-9 || math.Abs(c.Allowed.KWhs()-27) > 1e-9 {
				t.Fatalf("scaled member = %v/%v, want 27/27", c.Predicted, c.Allowed)
			}
		case "c000005":
			if math.Abs(c.Predicted.KWhs()-13.5) > 1e-9 {
				t.Fatalf("unscaled member = %v, want 13.5", c.Predicted)
			}
		default:
			t.Fatalf("unexpected member %q", c.Name)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub scenario invalid: %v", err)
	}
	// Parent stays untouched.
	if len(s.Customers) != 8 || s.SessionID == "renego-1" {
		t.Fatal("SubScenario mutated the parent")
	}
}

func TestSubScenarioRunsThroughTree(t *testing.T) {
	s, err := core.SyntheticScenario(core.SyntheticConfig{N: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	members := []string{"c000000", "c000001", "c000002", "c000003"}
	scale := make(map[string]float64, len(members))
	for _, n := range members {
		scale[n] = 2 // a measured 2x spike on every member
	}
	sub, err := SubScenario(s, members, scale, s.NormalUse.Scale(0.05), "renego-spike")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Scenario: sub, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("a spiked partial fleet over a tight residual must negotiate")
	}
	for _, n := range members {
		if res.FinalBids[n] <= 0 {
			t.Fatalf("member %s did not concede: bids=%v", n, res.FinalBids)
		}
	}
}

func TestSubScenarioErrors(t *testing.T) {
	s, err := core.SyntheticScenario(core.SyntheticConfig{N: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		members []string
		scale   map[string]float64
		normal  float64
		session string
	}{
		{"no members", nil, nil, 5, "x"},
		{"empty session", []string{"c000000"}, nil, 5, ""},
		{"bad normal", []string{"c000000"}, nil, 0, "x"},
		{"unknown member", []string{"nope"}, nil, 5, "x"},
		{"negative scale", []string{"c000000"}, map[string]float64{"c000000": -1}, 5, "x"},
	}
	for _, tc := range cases {
		if _, err := SubScenario(s, tc.members, tc.scale, units.Energy(tc.normal), tc.session); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}
