package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for shift := 0; shift < 40; shift++ {
		for _, off := range []uint64{0, 1} {
			ns := uint64(1)<<shift + off
			i := bucketIndex(ns)
			if i < 0 || i >= nBuckets {
				t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
			}
			if i < prev {
				t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
			}
			prev = i
		}
	}
	if bucketIndex(0) != 0 {
		t.Fatal("0 should land in the underflow bucket")
	}
	if bucketIndex(math.MaxUint64) != nBuckets-1 {
		t.Fatal("huge value should land in the overflow bucket")
	}
}

func TestBucketBoundsContainValues(t *testing.T) {
	// Every value must fall strictly below its bucket's upper bound and at
	// or above the previous bucket's upper bound.
	for _, ns := range []uint64{1500, 4096, 5000, 1 << 20, 3 << 20, 1e9, 30e9} {
		i := bucketIndex(ns)
		ub := bucketUpperNs(i)
		if ub != 0 && ns >= ub {
			t.Fatalf("ns %d >= upper bound %d of bucket %d", ns, ub, i)
		}
		if i > 0 {
			if lb := bucketUpperNs(i - 1); ns < lb {
				t.Fatalf("ns %d < lower bound %d of bucket %d", ns, lb, i)
			}
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := &Histogram{family: "x_seconds"}
	// 1000 observations uniform in [1ms, 2ms): p50 should sit near 1.5ms
	// within the 12.5% bucket resolution.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.0012 || p50 > 0.0018 {
		t.Fatalf("p50 = %g s, want ~0.0015", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	if h.Quantile(0.99) > 0.0025 {
		t.Fatalf("p99 = %g s, too high", p99)
	}
}

func TestEmptyHistogramQuantileZero(t *testing.T) {
	h := &Histogram{family: "x_seconds"}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if q := nilH.Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %g", q)
	}
	empty := &Histogram{family: "x_seconds"}
	if empty.Quantile(0) != 0 || empty.Quantile(1) != 0 {
		t.Fatal("empty histogram extreme quantiles nonzero")
	}

	// All mass in a single bucket: every quantile interpolates within that
	// bucket's bounds, q=0 pins the lower bound, q=1 the upper, and the
	// function stays monotone in q.
	h := &Histogram{family: "x_seconds"}
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	idx := bucketIndex(uint64(5 * time.Millisecond / time.Nanosecond))
	lb := float64(bucketUpperNs(idx-1)) / 1e9
	ub := float64(bucketUpperNs(idx)) / 1e9
	if q0 := h.Quantile(0); q0 != lb {
		t.Fatalf("q=0 gives %g, want bucket lower bound %g", q0, lb)
	}
	if q1 := h.Quantile(1); q1 != ub {
		t.Fatalf("q=1 gives %g, want bucket upper bound %g", q1, ub)
	}
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := h.Quantile(q)
		if v < lb || v > ub {
			t.Fatalf("Quantile(%g) = %g outside bucket [%g, %g]", q, v, lb, ub)
		}
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestRegistrySnapshots(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("a_seconds")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	r.HistogramL("b_seconds", "exp", "e1") // registered but never observed

	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	a, b := snaps[0], snaps[1]
	if a.Family != "a_seconds" || b.Family != "b_seconds" || b.Labels != `exp="e1"` {
		t.Fatalf("snapshot order/identity wrong: %+v / %+v", a, b)
	}
	if a.Count != 2 || a.SumSeconds != 0.003 {
		t.Fatalf("a count/sum = %d/%g", a.Count, a.SumSeconds)
	}
	last := a.Buckets[len(a.Buckets)-1]
	if last.LE != "+Inf" || last.Cum != 2 {
		t.Fatalf("a final bucket = %+v", last)
	}
	if len(a.Buckets) < 2 {
		t.Fatalf("occupied buckets missing: %+v", a.Buckets)
	}
	if a.P50 <= 0 || a.P99 < a.P50 {
		t.Fatalf("a quantiles = p50 %g p99 %g", a.P50, a.P99)
	}
	// The empty histogram still renders its +Inf bucket but no quantiles.
	if len(b.Buckets) != 1 || b.Buckets[0].LE != "+Inf" || b.Buckets[0].Cum != 0 {
		t.Fatalf("b buckets = %+v", b.Buckets)
	}
	if b.Count != 0 || b.P50 != 0 {
		t.Fatalf("b count/p50 = %d/%g", b.Count, b.P50)
	}
}

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("grid_tick_seconds")
	h.Observe(5 * time.Millisecond)
	h.Observe(7 * time.Millisecond)
	le := r.HistogramL("experiment_duration_seconds", "exp", "e14")
	le.Observe(time.Second)

	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE grid_tick_seconds histogram\n",
		"# TYPE experiment_duration_seconds histogram\n",
		"grid_tick_seconds_count 2\n",
		`grid_tick_seconds_bucket{le="+Inf"} 2`,
		`experiment_duration_seconds_bucket{exp="e14",le="+Inf"} 1`,
		`experiment_duration_seconds_count{exp="e14"} 1`,
		"# TYPE grid_tick_seconds_p50 gauge\n",
		"# TYPE grid_tick_seconds_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// _sum must be in seconds: 12ms total.
	if !strings.Contains(out, "grid_tick_seconds_sum 0.012") {
		t.Fatalf("sum not in seconds:\n%s", out)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramL("f_seconds", "exp", "e1")
	b := r.HistogramL("f_seconds", "exp", "e1")
	c := r.HistogramL("f_seconds", "exp", "e2")
	if a != b {
		t.Fatal("same family+label returned distinct histograms")
	}
	if a == c {
		t.Fatal("different labels shared a histogram")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{family: "bench_seconds"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	Enable("bench", 1024)
	defer Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Root("bench")
		sp.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Root("bench")
		sp.End()
	}
}
