// Command gridd runs the negotiation as separate OS processes over TCP: the
// Utility Agent as a daemon and each Customer Agent as a client, which is
// the "large open distributed industrial systems" deployment the paper's
// Discussion aims at.
//
// Server (waits for -customers clients, then negotiates):
//
//	gridd -serve :9340 -customers 10
//
// Sharded server (4 Concentrator Agents front the fleet, so the Utility
// Agent sees 4 aggregated bidders instead of 100):
//
//	gridd -serve :9340 -customers 100 -shards 4
//
// Live server (a continuously operating grid: an in-process fleet is
// negotiated once, then metered every -tick; drifting shards re-negotiate
// incrementally while -serve's address answers HTTP /healthz and /metrics):
//
//	gridd -serve :8080 -live -customers 64 -shards 16 -tick 1s
//
// Distributed sharded server (the concentrators run as separate OS
// processes; the root tier listens on -root-addr and waits for them):
//
//	gridd -serve :9340 -root-addr :9341 -customers 100 -shards 4
//
// Concentrator worker (one per shard; derives its member list from the
// c01..cNN naming convention shared with the root):
//
//	gridd -role concentrator -up localhost:9341 -down localhost:9340 \
//	      -shard 0 -shards 4 -customers 100
//
// Clients (one per customer; names must be c01..cNN):
//
//	gridd -connect localhost:9340 -name c01 -seed 1
//
// With -metrics ADDR the server also answers HTTP /healthz and /metrics,
// exposing the wire transport's frame/drop/reject counters.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: serve loops unwind, the
// HTTP listener drains and in-flight live ticks finish.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/sim"
	"loadbalance/internal/telemetry"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	var (
		serveAddr = fs.String("serve", "", "listen address for the Utility Agent daemon")
		customers = fs.Int("customers", 10, "customer count (daemon waits for this many; live mode synthesises them)")
		shards    = fs.Int("shards", 1, "concentrator agents fronting the fleet (server mode; 1 = flat)")
		rootAddr  = fs.String("root-addr", "", "listen address for the root tier: concentrators run as separate worker processes that dial in (requires -shards > 1)")
		metrics   = fs.String("metrics", "", "optional HTTP listen address answering /healthz and /metrics with wire transport counters (server mode)")
		live      = fs.Bool("live", false, "run the live grid: negotiate once, then meter, detect drift and re-negotiate incrementally; -serve's address answers HTTP /healthz and /metrics")
		tick      = fs.Duration("tick", time.Second, "live metering interval")
		liveTicks = fs.Int("live-ticks", 0, "stop the live grid after this many ticks (0 = run until SIGINT/SIGTERM)")
		connect   = fs.String("connect", "", "daemon address to join as a Customer Agent")
		name      = fs.String("name", "", "customer name (client mode)")
		seed      = fs.Int64("seed", 1, "preference randomisation seed (client and live modes)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "overall negotiation timeout")
		role      = fs.String("role", "", "process role: empty (server/client) or \"concentrator\" (worker process)")
		upAddr    = fs.String("up", "", "root-tier server address (concentrator role)")
		downAddr  = fs.String("down", "", "member-tier server address (concentrator role)")
		shard     = fs.Int("shard", 0, "shard index this worker fronts (concentrator role)")
		session   = fs.String("session", "gridd", "negotiation session id (concentrator role)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *role == "concentrator":
		if *upAddr == "" || *downAddr == "" {
			return fmt.Errorf("-role concentrator requires -up and -down")
		}
		if *shard < 0 || *shard >= *shards {
			return fmt.Errorf("-shard %d out of range for %d shards", *shard, *shards)
		}
		return runConcentrator(ctx, *upAddr, *downAddr, *shard, *shards, *customers, *session)
	case *role != "":
		return fmt.Errorf("unknown -role %q (want \"concentrator\")", *role)
	case *serveAddr != "" && *connect != "":
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	case *serveAddr != "":
		if *shards < 1 {
			return fmt.Errorf("-shards must be at least 1")
		}
		if *rootAddr != "" && *shards < 2 {
			return fmt.Errorf("-root-addr requires -shards > 1")
		}
		if *live {
			if *rootAddr != "" || *metrics != "" {
				return fmt.Errorf("-live runs in-process and serves its own /healthz and /metrics on -serve; it cannot combine with -root-addr or -metrics")
			}
			return runLive(ctx, *serveAddr, *customers, *shards, *tick, *liveTicks, *seed, nil)
		}
		return serve(ctx, serveConfig{
			addr:        *serveAddr,
			rootAddr:    *rootAddr,
			metricsAddr: *metrics,
			customers:   *customers,
			shards:      *shards,
			timeout:     *timeout,
		}, nil)
	case *connect != "":
		if *name == "" {
			return fmt.Errorf("-connect requires -name")
		}
		return runClient(ctx, *connect, *name, *seed)
	default:
		return fmt.Errorf("pass -serve ADDR or -connect ADDR")
	}
}

// customerAgents filters a bridged bus's agent list down to customers,
// dropping worker concentrators (cluster.Topology names them cc-NNN), which
// share the member-tier bus with the fleet they front.
func customerAgents(agents []string) []string {
	out := agents[:0:0]
	for _, n := range agents {
		if !strings.HasPrefix(n, "cc-") {
			out = append(out, n)
		}
	}
	return out
}

// fleetNames returns the daemon's conventional customer names c01..cNN —
// the contract that lets worker processes derive their shard membership
// without any exchange with the root.
func fleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i+1)
	}
	return names
}

// fleetLoads returns the daemon's uniform load model over the fleet.
func fleetLoads(names []string) map[string]protocol.CustomerLoad {
	loads := make(map[string]protocol.CustomerLoad, len(names))
	for _, n := range names {
		loads[n] = protocol.CustomerLoad{Predicted: 13.5, Allowed: 13.5}
	}
	return loads
}

// runConcentrator is the worker process: it fronts one shard of the fleet,
// dialing the root tier upward and the member tier downward. Membership is
// derived from the shared c01..cNN convention, so the worker and the root
// compute identical topologies independently.
func runConcentrator(ctx context.Context, up, down string, shard, shards, customers int, session string) error {
	topo, err := cluster.NewTopology(fleetLoads(fleetNames(customers)), shards)
	if err != nil {
		return err
	}
	name := topo.ConcentratorName(shard)
	fmt.Printf("gridd: concentrator %s fronting %d customers, up %s, down %s\n",
		name, len(topo.Members(shard)), up, down)
	err = cluster.RunWorker(ctx, cluster.WorkerConfig{
		UpAddr:   up,
		DownAddr: down,
		Concentrator: cluster.ConcentratorConfig{
			Name:         name,
			SessionID:    session,
			Members:      topo.MemberLoads(shard),
			RoundTimeout: serveRoundTimeout / 2,
		},
	})
	if err != nil && ctx.Err() != nil {
		fmt.Printf("gridd: %s interrupted\n", name)
		return nil
	}
	if err == nil {
		fmt.Printf("gridd: %s relayed session end, shutting down\n", name)
	}
	return err
}

// serveRoundTimeout is the UA's round timeout; concentrators must answer
// upward well inside it, so their own shard timeout is half of it. Worker
// processes share the constant through runConcentrator.
const serveRoundTimeout = 5 * time.Second

// serveConfig parameterises one negotiation daemon.
type serveConfig struct {
	addr        string // member-tier listen address
	rootAddr    string // non-empty: concentrators are separate worker processes dialing in here
	metricsAddr string // non-empty: HTTP /healthz and /metrics
	customers   int
	shards      int
	timeout     time.Duration
}

// serveAddrs reports the daemon's bound addresses to tests using ":0".
type serveAddrs struct {
	member  string
	root    string
	metrics string
}

// serve hosts the UA, bridges remote customers onto a local bus and
// negotiates once. The optional ready channel receives the bound addresses
// (used by tests binding to :0). With shards > 1 it interposes that many
// Concentrator Agents between the Utility Agent and the TCP-bridged fleet:
// the UA negotiates with the concentrators on a private root bus, while each
// concentrator fans out to its shard of remote customers over the shared
// bridged bus by targeted send. With rootAddr set the root bus is itself a
// TCP server and the concentrators are separate gridd worker processes that
// dial in before the negotiation starts. Cancelling ctx aborts cleanly at
// any phase.
func serve(ctx context.Context, cfg serveConfig, ready chan<- serveAddrs) error {
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return err
	}
	defer inner.Close()
	srv, err := bus.ListenAndServe(cfg.addr, inner)
	if err != nil {
		return err
	}
	defer srv.Close()

	var addrs serveAddrs
	addrs.member = srv.Addr()

	// Distributed root tier: a second TCP server the worker concentrators
	// dial into.
	var rootInner *bus.InProc
	var rootSrv *bus.Server
	if cfg.rootAddr != "" {
		rootInner, err = bus.NewInProc(bus.Config{})
		if err != nil {
			return err
		}
		defer rootInner.Close()
		rootSrv, err = bus.ListenAndServe(cfg.rootAddr, rootInner)
		if err != nil {
			return err
		}
		defer rootSrv.Close()
		addrs.root = rootSrv.Addr()
	}

	// Transport observability: /healthz and /metrics with the wire counters
	// of every server this daemon runs.
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return err
		}
		addrs.metrics = ln.Addr().String()
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "customers": len(customerAgents(inner.Agents()))})
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			transports := map[string]bus.WireStats{"member": srv.WireStats()}
			if rootSrv != nil {
				transports["root"] = rootSrv.WireStats()
			}
			telemetry.WriteWireMetrics(w, transports)
		})
		httpSrv := &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutdownCtx)
		}()
	}

	if ready != nil {
		ready <- addrs
	}
	fmt.Printf("gridd: listening on %s, waiting for %d customers\n", srv.Addr(), cfg.customers)

	// Wait for the fleet to dial in. Worker concentrators register their
	// cc-NNN names on this same bridged bus (their downward connection), so
	// only non-concentrator names count toward — and model — the fleet.
	deadline := time.Now().Add(cfg.timeout)
	for len(customerAgents(inner.Agents())) < cfg.customers {
		if err := ctx.Err(); err != nil {
			fmt.Println("gridd: interrupted while waiting for customers")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d customers connected", len(customerAgents(inner.Agents())), cfg.customers)
		}
		time.Sleep(50 * time.Millisecond)
	}
	names := customerAgents(inner.Agents())
	fmt.Printf("gridd: customers connected: %v\n", names)
	if cfg.rootAddr != "" {
		// Workers derive their shard membership from the c01..cNN naming
		// convention; a fleet dialed in under other names would negotiate
		// against nonexistent members. Fail fast instead of timing out.
		expected := fleetNames(cfg.customers)
		for i, n := range names {
			if i >= len(expected) || n != expected[i] {
				return fmt.Errorf("distributed mode requires customers named c01..c%02d (the workers' membership convention); got %v", cfg.customers, names)
			}
		}
	}

	loads := fleetLoads(names)
	totalPredicted := units.Energy(13.5 * float64(len(names)))

	const session = "gridd"
	params := core.PaperParams()
	uaBus := bus.Bus(inner)
	uaLoads := loads
	var parent *bus.InProc
	switch {
	case rootInner != nil:
		// Worker concentrators: wait until every shard's worker has dialed
		// the root tier, then negotiate with them over TCP.
		topo, err := cluster.NewTopology(loads, cfg.shards)
		if err != nil {
			return err
		}
		fmt.Printf("gridd: root tier on %s, waiting for %d concentrator workers\n", rootSrv.Addr(), cfg.shards)
		for len(rootInner.Agents()) < cfg.shards {
			if err := ctx.Err(); err != nil {
				fmt.Println("gridd: interrupted while waiting for concentrators")
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("only %d of %d concentrators connected", len(rootInner.Agents()), cfg.shards)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("gridd: concentrators connected: %v\n", rootInner.Agents())
		params = cluster.RootParams(params)
		uaBus = rootInner
		uaLoads = topo.AggregateLoads()
	case cfg.shards > 1:
		// In-process tier: the UA talks to concentrators on a private bus;
		// the concentrators reach their remote shards over the bridged bus.
		var err error
		parent, err = bus.NewInProc(bus.Config{})
		if err != nil {
			return err
		}
		defer parent.Close()
		topo, err := cluster.NewTopology(loads, cfg.shards)
		if err != nil {
			return err
		}
		tier, err := cluster.StartTier(parent, func(int) bus.Bus { return inner }, topo, cluster.TierConfig{
			SessionID:    session,
			RoundTimeout: serveRoundTimeout / 2,
			InboxSize:    4 * cfg.customers,
		})
		if err != nil {
			return err
		}
		defer tier.Stop()
		params = cluster.RootParams(params)
		uaBus = parent
		uaLoads = topo.AggregateLoads()
		fmt.Printf("gridd: fronting the fleet with %d concentrators\n", topo.Shards())
	}

	ua, err := utilityagent.New(utilityagent.Config{
		SessionID: session,
		Window:    windowNow(),
		// Capacity set for the paper's 35% initial overuse.
		NormalUse:    totalPredicted.Scale(1 / 1.35),
		Loads:        uaLoads,
		Method:       utilityagent.MethodRewardTable,
		Params:       params,
		InitialSlope: 42.5,
		RoundTimeout: serveRoundTimeout,
	})
	if err != nil {
		return err
	}
	rt, err := agentrt.Start("ua", uaBus, ua, 4*cfg.customers)
	if err != nil {
		return err
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		// Give the per-connection writers a moment to flush the awards and
		// the session-end broadcast before the deferred teardown cuts the
		// TCP connections.
		time.Sleep(300 * time.Millisecond)
		stats := inner.Stats()
		if parent != nil || rootInner != nil {
			// Count both tiers, so flat and sharded runs compare fairly.
			var p bus.Stats
			if parent != nil {
				p = parent.Stats()
			} else {
				p = rootInner.Stats()
			}
			stats.Sent += p.Sent
			stats.Delivered += p.Delivered
			stats.Dropped += p.Dropped
			stats.Rejected += p.Rejected
			fmt.Printf("note: awards below are per-concentrator aggregates; each customer's own award was delivered to its process\n")
		}
		full := &core.Result{Result: res, Bus: stats}
		fmt.Print(sim.RenderResult(full))
		ws := srv.WireStats()
		fmt.Printf("wire: member tier %d frames in / %d out, %d dropped, %d rejected\n",
			ws.FramesIn, ws.FramesOut, ws.Dropped, ws.Rejected)
		if rootSrv != nil {
			rs := rootSrv.WireStats()
			fmt.Printf("wire: root tier %d frames in / %d out, %d dropped, %d rejected\n",
				rs.FramesIn, rs.FramesOut, rs.Dropped, rs.Rejected)
		}
		return nil
	case <-ctx.Done():
		fmt.Println("gridd: interrupted, abandoning negotiation")
		return nil
	case <-time.After(cfg.timeout):
		return fmt.Errorf("negotiation timed out after %v", cfg.timeout)
	}
}

// runLive operates the grid continuously: an in-process elastic fleet is
// negotiated once through the concentrator tier, then metered every tick
// with incremental re-negotiation on drift. addr answers HTTP /healthz and
// /metrics (lbfeedback-style: the live load/deviation state a balancer or
// scraper consumes). maxTicks 0 runs until ctx is cancelled.
func runLive(ctx context.Context, addr string, customers, shards int, tick time.Duration, maxTicks int, seed int64, ready chan<- string) error {
	if tick <= 0 {
		return fmt.Errorf("-tick must be positive")
	}
	s, err := telemetry.ElasticFleetScenario(customers, seed)
	if err != nil {
		return err
	}
	eng, err := telemetry.NewLiveEngine(telemetry.LiveConfig{
		Scenario: s,
		Shards:   shards,
		Jitter:   0.02,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	defer eng.Stop()

	// The engine is single-threaded; the HTTP handlers read snapshots the
	// tick loop publishes under a lock.
	var snapMu sync.Mutex
	latest := eng.Snapshot()
	updateLatest := func(s telemetry.Snapshot) {
		snapMu.Lock()
		latest = s
		snapMu.Unlock()
	}
	readLatest := func() telemetry.Snapshot {
		snapMu.Lock()
		defer snapMu.Unlock()
		return latest
	}

	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := readLatest()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"tick":           snap.Tick,
			"uptimeSeconds":  time.Since(start).Seconds(),
			"renegotiations": snap.Renegotiations,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, readLatest())
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Printf("gridd: live grid of %d customers in %d shards; /healthz and /metrics on %s\n",
		customers, shards, ln.Addr())

	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	ticks := 0
	for {
		select {
		case <-ctx.Done():
			fmt.Println("gridd: interrupted, live grid shutting down")
			return nil
		case err := <-httpErr:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
			return nil
		case <-ticker.C:
			rep, err := eng.Tick()
			if err != nil {
				return err
			}
			if rep.Renegotiated != nil {
				fmt.Printf("gridd: tick %d: shards %v re-negotiated (%s, %d members)\n",
					rep.Tick, rep.Renegotiated.Shards, rep.Renegotiated.Outcome, rep.Renegotiated.Members)
			}
			updateLatest(eng.Snapshot())
			ticks++
			if maxTicks > 0 && ticks >= maxTicks {
				fmt.Printf("gridd: live grid finished %d ticks\n", ticks)
				return nil
			}
		}
	}
}

// writeMetrics renders a snapshot in Prometheus text exposition format.
func writeMetrics(w http.ResponseWriter, snap telemetry.Snapshot) {
	fmt.Fprintf(w, "# TYPE grid_tick counter\ngrid_tick %d\n", snap.Tick)
	fmt.Fprintf(w, "# TYPE grid_readings_total counter\ngrid_readings_total %d\n", snap.Readings)
	fmt.Fprintf(w, "# TYPE grid_renegotiations_total counter\ngrid_renegotiations_total %d\n", snap.Renegotiations)
	fmt.Fprintf(w, "# TYPE grid_fleet_load_kwh gauge\ngrid_fleet_load_kwh %g\n", snap.FleetKWh)
	fmt.Fprintf(w, "# TYPE grid_fleet_target_kwh gauge\ngrid_fleet_target_kwh %g\n", snap.TargetKWh)
	for i := range snap.ShardMeasured {
		fmt.Fprintf(w, "grid_shard_load_kwh{shard=\"%d\"} %g\n", i, snap.ShardMeasured[i])
		fmt.Fprintf(w, "grid_shard_expected_kwh{shard=\"%d\"} %g\n", i, snap.ShardExpected[i])
		breached := 0
		if snap.ShardBreached[i] {
			breached = 1
		}
		fmt.Fprintf(w, "grid_shard_breached{shard=\"%d\"} %d\n", i, breached)
		fmt.Fprintf(w, "grid_shard_renegotiations_total{shard=\"%d\"} %d\n", i, snap.ShardRenegotiations[i])
	}
}

// runClient joins as one Customer Agent and reacts until the session ends
// or ctx is cancelled.
func runClient(ctx context.Context, addr, name string, seed int64) error {
	cli, err := bus.Dial(addr, name)
	if err != nil {
		return err
	}
	defer cli.Close()

	// A cancelled context closes the connection, which unblocks the inbox
	// loop below; done stops this watcher on normal return.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			cli.Close()
		case <-done:
		}
	}()

	prefs, err := clientPreferences(seed)
	if err != nil {
		return err
	}
	ca, err := customeragent.New(name, prefs, customeragent.StrategyGreedy)
	if err != nil {
		return err
	}
	fmt.Printf("gridd: %s connected to %s\n", name, addr)

	for env := range cli.Inbox() {
		reply, ok, err := ca.React(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridd: %s: %v\n", name, err)
			continue
		}
		if ok {
			out, err := message.NewEnvelope(name, env.From, env.Session, reply)
			if err != nil {
				return err
			}
			if err := cli.Send(out); err != nil {
				return err
			}
		}
		if env.Kind == message.KindSessionEnd {
			if award, got := ca.AwardFor(env.Session); got {
				fmt.Printf("gridd: %s awarded cut-down %.1f for reward %.2f\n",
					name, award.CutDown, award.Reward)
			} else {
				fmt.Printf("gridd: %s: session ended without award\n", name)
			}
			return nil
		}
	}
	if ctx.Err() != nil {
		fmt.Printf("gridd: %s interrupted\n", name)
		return nil
	}
	return fmt.Errorf("connection closed before session end")
}

// clientPreferences derives a deterministic preference table from the seed:
// the paper customer's table scaled by a seed-dependent factor in [0.8, 1.6].
func clientPreferences(seed int64) (customeragent.Preferences, error) {
	return core.ScaledPaperPreferences(0.8 + float64(seed%9)/10)
}

// windowNow returns a 2-hour negotiation window starting one hour from now.
func windowNow() units.Interval {
	start := time.Now().Add(time.Hour).Truncate(time.Minute)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}
