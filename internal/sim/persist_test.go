package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/utilityagent"
)

// persistResult builds a small result for persistence tests.
func persistResult() *core.Result {
	return &core.Result{
		Result:    utilityagent.Result{SessionID: "s", Outcome: "converged", Rounds: 2},
		Bus:       bus.Stats{Sent: 10, Delivered: 10},
		FinalBids: map[string]float64{"c01": 0.2},
	}
}

func TestSaveResultAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")

	// Overwriting an existing file replaces it completely.
	if err := os.WriteFile(path, []byte("old partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveResult(persistResult(), path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(path)
	if err != nil {
		t.Fatalf("load after overwrite: %v", err)
	}
	if back.Outcome != "converged" || back.FinalBids["c01"] != 0.2 {
		t.Fatalf("round trip = %+v", back)
	}

	// No temp files survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".result-") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir = %v, want only result.json", entries)
	}
}

func TestSaveResultFailureLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	if err := SaveResult(persistResult(), path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A save into an unwritable directory fails before touching the target.
	if err := SaveResult(persistResult(), filepath.Join(dir, "missing", "result.json")); err == nil {
		t.Fatal("save into a missing directory must fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save corrupted an unrelated existing file")
	}
}
