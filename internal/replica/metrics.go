package replica

import (
	"fmt"
	"io"
	"time"
)

// WriteSenderMetrics renders a primary's replication counters in Prometheus
// text exposition format — the replica_* series gridd's /metrics endpoint
// exports next to the grid_*, store_* and bus_wire_* families.
func WriteSenderMetrics(w io.Writer, st SenderStatus) {
	fmt.Fprintf(w, "# TYPE replica_role gauge\nreplica_role 0\n") // 0 = primary
	fmt.Fprintf(w, "# TYPE replica_standbys gauge\nreplica_standbys %d\n", len(st.Standbys))
	fmt.Fprintf(w, "# TYPE replica_batches_shipped_total counter\nreplica_batches_shipped_total %d\n", st.Batches)
	fmt.Fprintf(w, "# TYPE replica_records_shipped_total counter\nreplica_records_shipped_total %d\n", st.Records)
	fmt.Fprintf(w, "# TYPE replica_bytes_shipped_total counter\nreplica_bytes_shipped_total %d\n", st.Bytes)
	fmt.Fprintf(w, "# TYPE replica_snapshots_shipped_total counter\nreplica_snapshots_shipped_total %d\n", st.Snapshots)
	fmt.Fprintf(w, "# TYPE replica_resyncs_total counter\nreplica_resyncs_total %d\n", st.Resyncs)
	fmt.Fprintf(w, "# TYPE replica_standby_acked_seq gauge\n")
	for _, sb := range st.Standbys {
		fmt.Fprintf(w, "replica_standby_acked_seq{standby=%q} %d\n", sb.ID, sb.AckedSeq)
	}
	fmt.Fprintf(w, "# TYPE replica_standby_lag_records gauge\n")
	for _, sb := range st.Standbys {
		fmt.Fprintf(w, "replica_standby_lag_records{standby=%q} %d\n", sb.ID, sb.LagRecords)
	}
	fmt.Fprintf(w, "# TYPE replica_standby_last_ack_age_seconds gauge\n")
	for _, sb := range st.Standbys {
		fmt.Fprintf(w, "replica_standby_last_ack_age_seconds{standby=%q} %g\n", sb.ID, time.Since(sb.LastAck).Seconds())
	}
}

// WriteReceiverMetrics renders a standby's replication counters.
func WriteReceiverMetrics(w io.Writer, st ReceiverStatus) {
	fmt.Fprintf(w, "# TYPE replica_role gauge\nreplica_role 1\n") // 1 = standby
	fmt.Fprintf(w, "# TYPE replica_source_up gauge\nreplica_source_up %d\n", boolGauge(st.Connected))
	fmt.Fprintf(w, "# TYPE replica_applied_seq gauge\nreplica_applied_seq %d\n", st.AppliedSeq)
	fmt.Fprintf(w, "# TYPE replica_batches_applied_total counter\nreplica_batches_applied_total %d\n", st.Batches)
	fmt.Fprintf(w, "# TYPE replica_records_applied_total counter\nreplica_records_applied_total %d\n", st.Records)
	fmt.Fprintf(w, "# TYPE replica_snapshots_applied_total counter\nreplica_snapshots_applied_total %d\n", st.Snapshots)
	fmt.Fprintf(w, "# TYPE replica_resyncs_total counter\nreplica_resyncs_total %d\n", st.Resyncs)
	fmt.Fprintf(w, "# TYPE replica_dials_total counter\nreplica_dials_total %d\n", st.Dials)
	fmt.Fprintf(w, "# TYPE replica_last_contact_age_seconds gauge\nreplica_last_contact_age_seconds %g\n", time.Since(st.LastContact).Seconds())
	appliedAge := -1.0
	if !st.LastApplied.IsZero() {
		appliedAge = time.Since(st.LastApplied).Seconds()
	}
	fmt.Fprintf(w, "# TYPE replica_last_applied_age_seconds gauge\nreplica_last_applied_age_seconds %g\n", appliedAge)
}

// boolGauge renders a boolean as 0/1.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
