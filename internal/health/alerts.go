package health

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The alert engine evaluates threshold rules over the metric namespace
// (registered gauges + histogram percentiles) once per tick. A rule fires
// only after its condition holds for `for=N` consecutive evaluations —
// sustain is counted in evaluations, not wall time, so drills running at
// fast ticks stay deterministic — and resolves the first evaluation the
// condition clears. Transitions emit structured events and, on firing,
// invoke the OnFire hook (the flight recorder).

// RuleConfig is one parsed alert rule.
type RuleConfig struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Op        string  `json:"op"` // "<" or ">"
	Threshold float64 `json:"threshold"`
	For       int     `json:"for"` // consecutive breaching evals before firing (>=1)
}

// ParseRule parses the rule grammar used by the -alerts flag:
//
//	name:metric<threshold[:for=N]
//	name:metric>threshold[:for=N]
//
// e.g. "overload:feedback_score<40:for=2" or
// "slow_sessions:negotiation_session_seconds_p99>1.5".
func ParseRule(s string) (RuleConfig, error) {
	var rc RuleConfig
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return rc, fmt.Errorf("health: rule %q: want name:metric<threshold[:for=N]", s)
	}
	rc.Name = name
	cond := rest
	if body, forPart, ok := strings.Cut(rest, ":"); ok {
		cond = body
		k, v, ok := strings.Cut(forPart, "=")
		if !ok || k != "for" {
			return rc, fmt.Errorf("health: rule %q: trailing clause %q (want for=N)", s, forPart)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return rc, fmt.Errorf("health: rule %q: bad for=%q", s, v)
		}
		rc.For = n
	} else {
		rc.For = 1
	}
	opIdx := strings.IndexAny(cond, "<>")
	if opIdx <= 0 || opIdx == len(cond)-1 {
		return rc, fmt.Errorf("health: rule %q: want metric<threshold or metric>threshold", s)
	}
	rc.Metric = cond[:opIdx]
	rc.Op = string(cond[opIdx])
	thr, err := strconv.ParseFloat(cond[opIdx+1:], 64)
	if err != nil {
		return rc, fmt.Errorf("health: rule %q: bad threshold %q", s, cond[opIdx+1:])
	}
	rc.Threshold = thr
	return rc, nil
}

// ParseRules parses a comma-separated rule list (the -alerts flag value).
func ParseRules(s string) ([]RuleConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []RuleConfig
	for _, part := range strings.Split(s, ",") {
		rc, err := ParseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, rc)
	}
	return out, nil
}

// Alert states.
const (
	StateOK      = "ok"
	StatePending = "pending" // breaching, sustain not yet met
	StateFiring  = "firing"
)

// AlertStatus is one rule's current state as served on /alerts.
type AlertStatus struct {
	Rule       RuleConfig `json:"rule"`
	State      string     `json:"state"`
	Value      float64    `json:"value"`   // metric value at last eval
	Breach     int        `json:"breach"`  // consecutive breaching evals
	FiredUs    int64      `json:"firedUs"` // last transition to firing (0 = never)
	ResolvedUs int64      `json:"resolvedUs"`
	FireCount  int        `json:"fireCount"`
}

// Engine evaluates alert rules. Eval is called from the owning loop (one
// goroutine); readers come from HTTP handlers, hence the lock.
type Engine struct {
	logger *Logger
	// OnFire runs on each ok/pending→firing transition (the flight
	// recorder hook). Called without the engine lock held.
	OnFire func(a AlertStatus)

	mu    sync.Mutex
	rules []*ruleState
}

type ruleState struct {
	cfg        RuleConfig
	state      string
	value      float64
	breach     int
	firedUs    int64
	resolvedUs int64
	fireCount  int
}

// NewEngine builds an engine over rules, logging transitions to logger
// (nil = process default).
func NewEngine(rules []RuleConfig, logger *Logger) *Engine {
	e := &Engine{logger: logger}
	for _, rc := range rules {
		if rc.For < 1 {
			rc.For = 1
		}
		e.rules = append(e.rules, &ruleState{cfg: rc, state: StateOK})
	}
	return e
}

func (e *Engine) log() *Logger {
	if e.logger != nil {
		return e.logger
	}
	return Default()
}

// Eval evaluates every rule against the live metric namespace. Returns
// the statuses after this evaluation (also readable via Status).
func (e *Engine) Eval() []AlertStatus {
	var fired []AlertStatus
	var resolved []AlertStatus

	e.mu.Lock()
	for _, r := range e.rules {
		v, ok := LookupMetric(r.cfg.Metric)
		r.value = v
		breaching := false
		if ok {
			if r.cfg.Op == "<" {
				breaching = v < r.cfg.Threshold
			} else {
				breaching = v > r.cfg.Threshold
			}
		}
		if breaching {
			r.breach++
			if r.state != StateFiring {
				if r.breach >= r.cfg.For {
					r.state = StateFiring
					r.firedUs = time.Now().UnixMicro()
					r.fireCount++
					fired = append(fired, statusOf(r))
				} else {
					r.state = StatePending
				}
			}
		} else {
			if r.state == StateFiring {
				r.resolvedUs = time.Now().UnixMicro()
				resolved = append(resolved, statusOf(r))
			}
			r.breach = 0
			r.state = StateOK
		}
	}
	out := make([]AlertStatus, len(e.rules))
	for i, r := range e.rules {
		out[i] = statusOf(r)
	}
	e.mu.Unlock()

	for _, a := range fired {
		e.log().Log(Warn, "alerts", "alert firing",
			Str("alert", a.Rule.Name),
			Str("metric", a.Rule.Metric),
			Str("op", a.Rule.Op),
			Str("threshold", strconv.FormatFloat(a.Rule.Threshold, 'g', -1, 64)),
			Str("value", strconv.FormatFloat(a.Value, 'g', -1, 64)),
			Int("for", int64(a.Rule.For)))
		if e.OnFire != nil {
			e.OnFire(a)
		}
	}
	for _, a := range resolved {
		e.log().Log(Info, "alerts", "alert resolved",
			Str("alert", a.Rule.Name),
			Str("metric", a.Rule.Metric),
			Str("value", strconv.FormatFloat(a.Value, 'g', -1, 64)))
	}
	return out
}

func statusOf(r *ruleState) AlertStatus {
	return AlertStatus{
		Rule:       r.cfg,
		State:      r.state,
		Value:      r.value,
		Breach:     r.breach,
		FiredUs:    r.firedUs,
		ResolvedUs: r.resolvedUs,
		FireCount:  r.fireCount,
	}
}

// Status returns every rule's current state, sorted by rule name.
func (e *Engine) Status() []AlertStatus {
	e.mu.Lock()
	out := make([]AlertStatus, len(e.rules))
	for i, r := range e.rules {
		out[i] = statusOf(r)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// FiringCount returns how many rules are currently firing.
func (e *Engine) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.rules {
		if r.state == StateFiring {
			n++
		}
	}
	return n
}

// AlertsHandler serves /alerts as JSON.
func AlertsHandler(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeAlertsJSON(w, e.Status())
	}
}

// writeAlertsJSON renders alert statuses without encoding/json (shared
// with the flight recorder, which runs in failure paths and should not
// depend on reflection succeeding).
func writeAlertsJSON(w io.Writer, alerts []AlertStatus) {
	b := make([]byte, 0, 256+192*len(alerts))
	b = append(b, `{"alerts":[`...)
	for i := range alerts {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendAlertJSON(b, &alerts[i])
	}
	b = append(b, "]}\n"...)
	_, _ = w.Write(b)
}

func appendAlertJSON(b []byte, a *AlertStatus) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, a.Rule.Name)
	b = append(b, `,"metric":`...)
	b = strconv.AppendQuote(b, a.Rule.Metric)
	b = append(b, `,"op":`...)
	b = strconv.AppendQuote(b, a.Rule.Op)
	b = append(b, `,"threshold":`...)
	b = strconv.AppendFloat(b, a.Rule.Threshold, 'g', -1, 64)
	b = append(b, `,"for":`...)
	b = strconv.AppendInt(b, int64(a.Rule.For), 10)
	b = append(b, `,"state":`...)
	b = strconv.AppendQuote(b, a.State)
	b = append(b, `,"value":`...)
	b = strconv.AppendFloat(b, a.Value, 'g', -1, 64)
	b = append(b, `,"breach":`...)
	b = strconv.AppendInt(b, int64(a.Breach), 10)
	b = append(b, `,"firedUs":`...)
	b = strconv.AppendInt(b, a.FiredUs, 10)
	b = append(b, `,"resolvedUs":`...)
	b = strconv.AppendInt(b, a.ResolvedUs, 10)
	b = append(b, `,"fireCount":`...)
	b = strconv.AppendInt(b, int64(a.FireCount), 10)
	b = append(b, '}')
	return b
}

// WriteAlertMetrics renders alert states as gauges (1 = firing).
func WriteAlertMetrics(w io.Writer, e *Engine) {
	alerts := e.Status()
	if len(alerts) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE health_alert_firing gauge\n")
	for _, a := range alerts {
		v := 0
		if a.State == StateFiring {
			v = 1
		}
		fmt.Fprintf(w, "health_alert_firing{alert=%q} %d\n", a.Rule.Name, v)
	}
	fmt.Fprintf(w, "# TYPE health_alert_fired_total counter\n")
	for _, a := range alerts {
		fmt.Fprintf(w, "health_alert_fired_total{alert=%q} %d\n", a.Rule.Name, a.FireCount)
	}
}
