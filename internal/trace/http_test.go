package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// getTrace runs one request against the handler and decodes the dump when
// the status is 200.
func getTrace(t *testing.T, query string) (int, Dump) {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace"+query, nil))
	var d Dump
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
			t.Fatalf("GET /trace%s: bad JSON: %v\n%s", query, err, rec.Body.String())
		}
	}
	return rec.Code, d
}

func TestHandlerFilterCombinations(t *testing.T) {
	Disable()
	t.Cleanup(Disable)
	Enable("combproc", 64)

	// Two sessions across two shards; remember one span's trace id to
	// filter on it.
	var wantTrace string
	for i := 0; i < 3; i++ {
		sp := Root("session.open")
		sp.SetSession("s-A")
		sp.SetShard("shard-0")
		sp.End()
	}
	sp := Root("session.open")
	sp.SetSession("s-A")
	sp.SetShard("shard-1")
	wantTrace = hexID(sp.Context().Trace)
	sp.End()
	for i := 0; i < 2; i++ {
		sp := Root("session.open")
		sp.SetSession("s-B")
		sp.SetShard("shard-1")
		sp.End()
	}

	cases := []struct {
		query string
		want  int // matching span count
	}{
		{"", 6},
		{"?session=s-A", 4},
		{"?session=s-A&shard=shard-0", 3},
		{"?session=s-A&shard=shard-1", 1},
		{"?session=s-A&shard=shard-1&trace=" + wantTrace, 1},
		{"?session=s-B&trace=" + wantTrace, 0}, // trace belongs to s-A
		{"?session=s-A&limit=2", 2},
		{"?session=s-A&shard=shard-0&limit=1", 1},
		{"?trace=" + wantTrace + "&limit=5", 1},
		{"?session=absent", 0},
		{"?shard=shard-9", 0},
	}
	for _, c := range cases {
		code, d := getTrace(t, c.query)
		if code != 200 {
			t.Fatalf("GET /trace%s = %d, want 200", c.query, code)
		}
		if len(d.Spans) != c.want {
			t.Fatalf("GET /trace%s: %d spans, want %d", c.query, len(d.Spans), c.want)
		}
		for _, s := range d.Spans {
			if q := c.query; q != "" && s.Session == "" {
				t.Fatalf("GET /trace%s returned unlabeled span %+v", c.query, s)
			}
		}
	}
}

func TestHandlerBadParams(t *testing.T) {
	Disable()
	t.Cleanup(Disable)
	Enable("badproc", 16)
	sp := Root("x")
	sp.End()

	for _, q := range []string{
		"?limit=xyz",
		"?limit=0",
		"?limit=-4",
		"?trace=not-hex",
		"?trace=123zz",
		"?session=s&limit=nope",
	} {
		code, _ := getTrace(t, q)
		if code != 400 {
			t.Fatalf("GET /trace%s = %d, want 400", q, code)
		}
	}

	// A well-formed trace id that matches nothing is an empty result, not
	// an error.
	code, d := getTrace(t, "?trace=00000000000000ff")
	if code != 200 || len(d.Spans) != 0 {
		t.Fatalf("unmatched trace id: code=%d spans=%d, want 200/0", code, len(d.Spans))
	}
}
