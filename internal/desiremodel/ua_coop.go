package desiremodel

import (
	"fmt"
	"math"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
)

// This file assembles Figure 3: the Utility Agent's cooperation management,
// split into "determine announcement" (here by the generate-and-select
// approach: generate candidate announcements, evaluate the prediction for
// each, select one) and "determine bid acceptance" (monitor bid receipt,
// evaluate bids, select bids).

// uaCoopOntology declares the Figure 3 information types.
func uaCoopOntology() (*kb.Ontology, error) {
	o := kb.NewOntology()
	steps := []error{
		o.DeclareSort("customer", kb.SortAny),
		// Inputs.
		o.DeclarePred("base_slope", kb.SortNumber),
		o.DeclarePred("response_rate", kb.SortNumber), // historical positive-response rate
		o.DeclarePred("overuse_kwh", kb.SortNumber),
		o.DeclarePred("expected_customer", kb.SortString),
		o.DeclarePred("bid", kb.SortString, kb.SortNumber, kb.SortNumber), // customer, cutdown, previous cutdown
		// Generate and select.
		o.DeclarePred("candidate_slope", kb.SortNumber),
		o.DeclarePred("predicted_reduction", kb.SortNumber, kb.SortNumber), // slope, kwh
		o.DeclarePred("selected_slope", kb.SortNumber),
		// Bid acceptance.
		o.DeclarePred("received", kb.SortString),
		o.DeclarePred("missing", kb.SortString),
		o.DeclarePred("valid_bid", kb.SortString, kb.SortNumber),
		o.DeclarePred("accepted_bid", kb.SortString, kb.SortNumber),
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("desiremodel: ua coop ontology: %w", err)
		}
	}
	return o, nil
}

// generateAnnouncementsTask is "generate announcements": candidate slopes
// at 75%, 100% and 125% of the base slope.
func generateAnnouncementsTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("generate_announcements", ont, func(in, out *kb.Store) (bool, error) {
		changed := false
		for _, a := range in.Query(kb.A("base_slope", kb.V("S"))) {
			base := a.Args[0].Num
			for _, f := range []float64{0.75, 1, 1.25} {
				atom := kb.A("candidate_slope", kb.N(base*f))
				if out.Holds(atom) {
					continue
				}
				if err := out.Assert(atom, kb.True); err != nil {
					return changed, err
				}
				changed = true
			}
		}
		return changed, nil
	})
}

// evaluatePredictionTask is "evaluate prediction for announcements": the
// predicted first-round reduction for a candidate is proportional to the
// slope (richer tables unlock deeper acceptable cut-downs) scaled by the
// observed response rate — the paper's "e.g., the Utility Agent knows that
// normally about 70% of the Customer Agents will respond positively".
func evaluatePredictionTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("evaluate_prediction_for_announcements", ont, func(in, out *kb.Store) (bool, error) {
		rate := 0.7
		for _, a := range in.Query(kb.A("response_rate", kb.V("R"))) {
			rate = a.Args[0].Num
		}
		overuse := 0.0
		for _, a := range in.Query(kb.A("overuse_kwh", kb.V("O"))) {
			overuse = a.Args[0].Num
		}
		changed := false
		for _, a := range in.Query(kb.A("candidate_slope", kb.V("S"))) {
			slope := a.Args[0].Num
			// A steeper table is predicted to unlock proportionally more of
			// the needed reduction, saturating at the full overuse.
			predicted := overuse * rate * math.Min(1, slope/42.5)
			atom := kb.A("predicted_reduction", kb.N(slope), kb.N(predicted))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
}

// selectAnnouncementTask is "select announcement": the cheapest candidate
// achieving the best predicted reduction (lowest slope among maxima — the
// UA does not pay more than necessary).
func selectAnnouncementTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("select_announcement", ont, func(in, out *kb.Store) (bool, error) {
		bestSlope, bestReduction := math.Inf(1), math.Inf(-1)
		for _, a := range in.Query(kb.A("predicted_reduction", kb.V("S"), kb.V("P"))) {
			s, p := a.Args[0].Num, a.Args[1].Num
			if p > bestReduction+1e-12 || (math.Abs(p-bestReduction) <= 1e-12 && s < bestSlope) {
				bestReduction, bestSlope = p, s
			}
		}
		if math.IsInf(bestSlope, 1) {
			return false, nil
		}
		atom := kb.A("selected_slope", kb.N(bestSlope))
		if out.Holds(atom) {
			return false, nil
		}
		return true, out.Assert(atom, kb.True)
	})
}

// monitorBidReceiptRules is "monitor bid receipt": mark received customers
// and flag expected customers that stayed silent.
func monitorBidReceiptRules() (*kb.Base, error) {
	return kb.NewBase("monitor_bid_receipt",
		kb.Rule{
			Name: "mark_received",
			If:   []kb.Literal{kb.Pos(kb.A("bid", kb.V("C"), kb.V("Cut"), kb.V("Prev")))},
			Then: []kb.Atom{kb.A("received", kb.V("C"))},
		},
		kb.Rule{
			Name: "mark_missing",
			If: []kb.Literal{
				kb.Pos(kb.A("expected_customer", kb.V("C"))),
				kb.Neg(kb.A("received", kb.V("C"))),
			},
			Then: []kb.Atom{kb.A("missing", kb.V("C"))},
		},
	)
}

// evaluateBidsRules is "evaluate bids": a bid is valid when it does not
// regress (monotonic concession).
func evaluateBidsRules() (*kb.Base, error) {
	return kb.NewBase("evaluate_bids",
		kb.Rule{
			Name: "valid_if_monotonic",
			If:   []kb.Literal{kb.Pos(kb.A("bid", kb.V("C"), kb.V("Cut"), kb.V("Prev")))},
			Guards: []kb.Guard{
				{Op: kb.OpGeq, Left: kb.V("Cut"), Right: kb.V("Prev")},
			},
			Then: []kb.Atom{kb.A("valid_bid", kb.V("C"), kb.V("Cut"))},
		},
	)
}

// selectBidsRules is "select bids": every valid bid is accepted (the
// prototype's acceptance strategy: all monotonic bids count toward the
// balance).
func selectBidsRules() (*kb.Base, error) {
	return kb.NewBase("select_bids",
		kb.Rule{
			Name: "accept_valid",
			If:   []kb.Literal{kb.Pos(kb.A("valid_bid", kb.V("C"), kb.V("Cut")))},
			Then: []kb.Atom{kb.A("accepted_bid", kb.V("C"), kb.V("Cut"))},
		},
	)
}

// NewUACooperationManagement assembles Figure 3.
func NewUACooperationManagement() (*desire.Composed, error) {
	ont, err := uaCoopOntology()
	if err != nil {
		return nil, err
	}
	monitor, err := monitorBidReceiptRules()
	if err != nil {
		return nil, err
	}
	evalBids, err := evaluateBidsRules()
	if err != nil {
		return nil, err
	}
	selBids, err := selectBidsRules()
	if err != nil {
		return nil, err
	}

	cm := desire.NewComposed("cooperation_management", ont, 0)
	children := []desire.Component{
		generateAnnouncementsTask(ont),
		evaluatePredictionTask(ont),
		selectAnnouncementTask(ont),
		desire.NewReasoning("monitor_bid_receipt", ont, monitor, "received", "missing"),
		desire.NewReasoning("evaluate_bids", ont, evalBids, "valid_bid"),
		desire.NewReasoning("select_bids", ont, selBids, "accepted_bid"),
	}
	for _, c := range children {
		if err := cm.AddChild(c); err != nil {
			return nil, err
		}
	}
	links := []desire.Link{
		{Name: "base_in", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "generate_announcements", Port: desire.In}},
		{Name: "candidates_to_eval", From: desire.Endpoint{Component: "generate_announcements", Port: desire.Out},
			To: desire.Endpoint{Component: "evaluate_prediction_for_announcements", Port: desire.In}},
		{Name: "situation_to_eval", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "evaluate_prediction_for_announcements", Port: desire.In}},
		{Name: "eval_to_select", From: desire.Endpoint{Component: "evaluate_prediction_for_announcements", Port: desire.Out},
			To: desire.Endpoint{Component: "select_announcement", Port: desire.In}},
		{Name: "bids_to_monitor", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "monitor_bid_receipt", Port: desire.In}},
		{Name: "bids_to_evaluate", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "evaluate_bids", Port: desire.In}},
		{Name: "valid_to_select", From: desire.Endpoint{Component: "evaluate_bids", Port: desire.Out},
			To: desire.Endpoint{Component: "select_bids", Port: desire.In}},
		{Name: "announcement_out", From: desire.Endpoint{Component: "select_announcement", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "monitor_out", From: desire.Endpoint{Component: "monitor_bid_receipt", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "accepted_out", From: desire.Endpoint{Component: "select_bids", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
	}
	for _, l := range links {
		if err := cm.AddLink(l); err != nil {
			return nil, err
		}
	}
	err = cm.SetControl([]desire.Step{
		{Transfer: "base_in"},
		{Activate: "generate_announcements"},
		{Transfer: "candidates_to_eval"},
		{Transfer: "situation_to_eval"},
		{Activate: "evaluate_prediction_for_announcements"},
		{Transfer: "eval_to_select"},
		{Activate: "select_announcement"},
		{Transfer: "bids_to_monitor"},
		{Activate: "monitor_bid_receipt"},
		{Transfer: "bids_to_evaluate"},
		{Activate: "evaluate_bids"},
		{Transfer: "valid_to_select"},
		{Activate: "select_bids"},
		{Transfer: "announcement_out"},
		{Transfer: "monitor_out"},
		{Transfer: "accepted_out"},
	})
	if err != nil {
		return nil, err
	}
	return cm, nil
}
