// Package lint implements gridlint: a suite of static analyzers that
// mechanically enforce the invariants this repo's byte-identical-equivalence
// tests depend on — sorted-order float summation, no wall clock or global RNG
// in replayed paths, structured logging only, no blocking sends under locks.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate onto the real framework the day
// the dependency is available; this build environment is offline with an
// empty module cache, so everything here is standard library only. Package
// loading shells out to `go list -export` and type-checks against compiler
// export data (see load.go), which is the same substrate x/tools uses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. It is run once per loaded
// package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //gridlint:allow annotations. Lowercase identifier.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run inspects the package via pass and reports violations with
	// pass.Reportf. The error return is for operational failures only
	// (it aborts the whole run), never for findings.
	Run func(pass *Pass) error
}

// A Pass hands one package to one analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the package's import path (for testdata fixtures, the
	// fixture's synthetic path); scope-gated analyzers match against it.
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	diags     *[]rawDiag
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, rawDiag{
		analyzer: p.Analyzer.Name,
		pos:      p.Fset.Position(pos),
		message:  fmt.Sprintf(format, args...),
	})
}

type rawDiag struct {
	analyzer string
	pos      token.Position
	message  string
}

// A Finding is one reported violation, in the shape cmd/gridlint prints
// (and marshals in -json mode).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// AnnotationAnalyzerName is the analyzer name under which malformed
// //gridlint: annotations are reported. Findings under this name cannot be
// suppressed: a broken escape hatch must never silence the check it was
// escaping.
const AnnotationAnalyzerName = "gridlint"

// Run executes every analyzer over every package, applies //gridlint:allow
// suppression, and returns the surviving findings sorted by position.
// Malformed annotations become findings themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows, badAnns := parseAnnotations(pkg.Fset, pkg.Files, known)
		for _, ba := range badAnns {
			findings = append(findings, Finding{
				Analyzer: AnnotationAnalyzerName,
				File:     ba.pos.Filename,
				Line:     ba.pos.Line,
				Col:      ba.pos.Column,
				Message:  ba.message,
			})
		}
		var diags []rawDiag
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgPath:   pkg.PkgPath,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range diags {
			if allows.suppressed(d.analyzer, d.pos) {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: d.analyzer,
				File:     d.pos.Filename,
				Line:     d.pos.Line,
				Col:      d.pos.Column,
				Message:  d.message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
