package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/utilityagent"
)

// SavedResult is the on-disk form of a negotiation result: identical to
// core.Result except that agent errors become strings (error values do not
// marshal) and the elapsed time is explicit nanoseconds.
type SavedResult struct {
	utilityagent.Result
	Bus         bus.Stats          `json:"bus"`
	FinalBids   map[string]float64 `json:"finalBids"`
	ElapsedNS   int64              `json:"elapsedNs"`
	AgentErrors []string           `json:"agentErrors,omitempty"`
}

// ToSaved converts a live result.
func ToSaved(res *core.Result) SavedResult {
	out := SavedResult{
		Result:    res.Result,
		Bus:       res.Bus,
		FinalBids: res.FinalBids,
		ElapsedNS: res.Elapsed.Nanoseconds(),
	}
	for _, err := range res.AgentErrors {
		out.AgentErrors = append(out.AgentErrors, err.Error())
	}
	return out
}

// FromSaved converts back to the in-memory form (agent errors stay strings
// inside the saved form and are not reconstructed as error values).
func (s SavedResult) FromSaved() *core.Result {
	return &core.Result{
		Result:    s.Result,
		Bus:       s.Bus,
		FinalBids: s.FinalBids,
		Elapsed:   time.Duration(s.ElapsedNS),
	}
}

// SaveResult writes a result as indented JSON. The write is atomic (a temp
// file in the destination directory renamed over the target), so a live run
// interrupted mid-save can never leave a truncated result behind — readers
// see either the previous complete file or the new one.
func SaveResult(res *core.Result, path string) error {
	data, err := json.MarshalIndent(ToSaved(res), "", "  ")
	if err != nil {
		return fmt.Errorf("sim: marshal result: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".result-*.json")
	if err != nil {
		return fmt.Errorf("sim: temp result: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("sim: write result: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("sim: chmod result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sim: close result: %w", err)
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer applies
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("sim: publish result: %w", err)
	}
	return nil
}

// LoadResult reads a result saved by SaveResult.
func LoadResult(path string) (*core.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: read result: %w", err)
	}
	var saved SavedResult
	if err := json.Unmarshal(data, &saved); err != nil {
		return nil, fmt.Errorf("sim: parse result: %w", err)
	}
	return saved.FromSaved(), nil
}
