package telemetry

import (
	"fmt"
	"io"
	"sort"

	"loadbalance/internal/bus"
)

// WriteWireMetrics renders TCP transport endpoints' frame counters in
// Prometheus text exposition format, one series per transport label. gridd's
// /metrics endpoint passes one entry per server (member tier, root tier), so
// a scraper sees queue-overflow drops and hello rejections the moment a peer
// goes slow or a name collides.
func WriteWireMetrics(w io.Writer, transports map[string]bus.WireStats) {
	names := make([]string, 0, len(transports))
	for n := range transports {
		names = append(names, n)
	}
	sort.Strings(names)
	metrics := []struct {
		name string
		get  func(bus.WireStats) uint64
	}{
		{"bus_wire_frames_in_total", func(s bus.WireStats) uint64 { return s.FramesIn }},
		{"bus_wire_frames_out_total", func(s bus.WireStats) uint64 { return s.FramesOut }},
		{"bus_wire_bytes_in_total", func(s bus.WireStats) uint64 { return s.BytesIn }},
		{"bus_wire_bytes_out_total", func(s bus.WireStats) uint64 { return s.BytesOut }},
		{"bus_wire_dropped_total", func(s bus.WireStats) uint64 { return s.Dropped }},
		{"bus_wire_hellos_total", func(s bus.WireStats) uint64 { return s.Hellos }},
		{"bus_wire_legacy_conns_total", func(s bus.WireStats) uint64 { return s.LegacyConn }},
		{"bus_wire_rejected_total", func(s bus.WireStats) uint64 { return s.Rejected }},
		{"bus_wire_malformed_total", func(s bus.WireStats) uint64 { return s.Malformed }},
		{"bus_wire_protocol_errors_total", func(s bus.WireStats) uint64 { return s.ProtoErrs }},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# TYPE %s counter\n", m.name)
		for _, n := range names {
			fmt.Fprintf(w, "%s{transport=%q} %d\n", m.name, n, m.get(transports[n]))
		}
	}
}
