package main

import (
	"io"
	"net/http"
	"time"

	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

// The metrics-history layer: every role with an HTTP endpoint runs a
// tsdb scraper over its own metrics page and serves range queries on
// /query; the serve root additionally retains the fleet's streamed
// samples (hub-side) behind /fleet/query.

// historyOptions carries the -tsdb-interval/-tsdb-retention flags.
type historyOptions struct {
	interval  time.Duration // 0 disables history entirely
	retention time.Duration
}

// rawCapacity sizes the raw ring so it spans the requested retention at
// the scrape interval, clamped to keep per-series memory bounded. Older
// points continue into the downsampled tier beyond this.
func (o historyOptions) rawCapacity() int {
	if o.interval <= 0 {
		return 0
	}
	n := int(o.retention / o.interval)
	if n < 64 {
		n = 64
	}
	if n > 65536 {
		n = 65536
	}
	return n
}

// newHistoryStore builds a store sized by the flags, or nil when history
// is disabled.
func newHistoryStore(o historyOptions) *tsdb.Store {
	if o.interval <= 0 {
		return nil
	}
	return tsdb.New(tsdb.Config{RawCapacity: o.rawCapacity()})
}

// startHistoryScraper launches the scrape loop filling store from gather
// plus the process trace registry. Returns nil when history is disabled.
func startHistoryScraper(o historyOptions, store *tsdb.Store, gather func(io.Writer)) *tsdb.Scraper {
	if store == nil {
		return nil
	}
	sc := tsdb.NewScraper(tsdb.ScrapeConfig{
		Store:    store,
		Interval: o.interval,
		Gather:   gather,
		Registry: trace.DefaultRegistry(),
	})
	sc.Start()
	return sc
}

// mountQuery serves /query over the process-local store (no-op when
// history is disabled).
func mountQuery(mux *http.ServeMux, store *tsdb.Store) {
	if store == nil {
		return
	}
	mux.HandleFunc("/query", tsdb.Handler(store, func() int64 { return time.Now().UnixMicro() }))
}

// closeScraper stops a scraper if one runs.
func closeScraper(sc *tsdb.Scraper) {
	if sc != nil {
		sc.Close()
	}
}
