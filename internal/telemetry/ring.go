// Package telemetry is the live-grid feedback loop: meters stream measured
// consumption over the bus, a collector aggregates it into per-shard time
// series, a deviation detector compares measured against negotiated profiles,
// and a live engine reacts to sustained drift by re-negotiating only the
// breaching shards through the cluster tier — the pattern of feedback agents
// streaming health measurements to a load balancer that adjusts weights
// online, brought to the agent grid.
//
// The paper's negotiation (Brazier et al., ICDCS '98) balances a *predicted*
// profile once per period; this package closes the loop for continuous
// operation, where actual consumption drifts from the agreement and the
// system must notice and react without re-running the fleet negotiation.
package telemetry

import (
	"errors"
	"fmt"
)

// Errors reported by the package.
var (
	ErrBadConfig = errors.New("telemetry: invalid configuration")
	ErrNoData    = errors.New("telemetry: no data")
)

// Ring is a fixed-capacity ring buffer of float64 samples — the collector's
// per-shard time series. Pushing beyond capacity overwrites the oldest
// sample; memory use is constant regardless of how long the grid runs.
type Ring struct {
	buf  []float64
	head int // index of the next write
	n    int // samples held, ≤ cap
}

// NewRing allocates a ring holding up to capacity samples.
func NewRing(capacity int) (*Ring, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: ring capacity %d", ErrBadConfig, capacity)
	}
	return &Ring{buf: make([]float64, capacity)}, nil
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(v float64) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the number of samples held.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Last returns the newest sample.
func (r *Ring) Last() (float64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[(r.head-1+len(r.buf))%len(r.buf)], true
}

// Series copies the held samples oldest-first — the form the prediction
// package's estimators consume.
func (r *Ring) Series() []float64 {
	out := make([]float64, r.n)
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Sum returns the sum of the held samples.
func (r *Ring) Sum() float64 {
	total := 0.0
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		total += r.buf[(start+i)%len(r.buf)]
	}
	return total
}

// Mean returns the average of the held samples (0 when empty).
func (r *Ring) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.Sum() / float64(r.n)
}
