package protocol

import (
	"errors"
	"testing"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

func TestInterpolatedReward(t *testing.T) {
	tab, err := StandardTable(42.5) // linear: reward = 42.5 × cut-down
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		cut, want float64
	}{
		{0, 0},
		{0.1, 4.25},           // exact grid level
		{0.25, 42.5 * 0.25},   // between levels
		{0.137, 42.5 * 0.137}, // arbitrary fraction
		{0.95, 42.5 * 0.9},    // above the top level: clamp to last reward
		{1.0, 42.5 * 0.9},     // ditto
		{0.05, 42.5 * 0.05},   // below the first positive level
	}
	for _, tt := range tests {
		if got := tab.InterpolatedReward(tt.cut); !units.NearlyEqual(got, tt.want, 1e-9) {
			t.Fatalf("InterpolatedReward(%v) = %v, want %v", tt.cut, got, tt.want)
		}
	}
	if got := (Table{}).InterpolatedReward(0.4); got != 0 {
		t.Fatalf("empty table pays %v", got)
	}
	// Interpolation between non-linear rows.
	nl := Table{Entries: []Entry{{CutDown: 0.2, Reward: 10}, {CutDown: 0.4, Reward: 30}}}
	if got := nl.InterpolatedReward(0.3); !units.NearlyEqual(got, 20, 1e-9) {
		t.Fatalf("midpoint = %v, want 20", got)
	}
	if got := nl.InterpolatedReward(0.1); !units.NearlyEqual(got, 5, 1e-9) {
		t.Fatalf("below first row = %v, want 5 (ramp from origin)", got)
	}
}

// TestContinuousBids covers the concentrator-facing session mode: off-grid
// bids are accepted, stay monotonic, and are awarded interpolated rewards.
func TestContinuousBids(t *testing.T) {
	p := paperParams()
	p.ContinuousBids = true
	s := newSession(t, p)

	if err := s.RecordBid("a", message.CutDownBid{Round: 1, CutDown: 0.137}); err != nil {
		t.Fatalf("off-grid bid rejected: %v", err)
	}
	// Monotonic concession still applies to continuous bids.
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBid("a", message.CutDownBid{Round: 2, CutDown: 0.12}); !errors.Is(err, ErrNonMonotonicBid) {
		t.Fatalf("regressing bid: err = %v", err)
	}
	if err := s.RecordBid("a", message.CutDownBid{Round: 2, CutDown: 0.55}); err != nil {
		t.Fatal(err)
	}
	for s.Round() > 0 && !s.Closed() {
		if _, err := s.CloseRound(); err != nil {
			t.Fatal(err)
		}
	}
	aw, err := s.AwardFor("a")
	if err != nil {
		t.Fatal(err)
	}
	if aw.CutDown != 0.55 {
		t.Fatalf("award cut-down = %v", aw.CutDown)
	}
	want := s.Table().InterpolatedReward(0.55)
	if !units.NearlyEqual(aw.Reward, want, 1e-9) {
		t.Fatalf("award reward = %v, want interpolated %v", aw.Reward, want)
	}
	if aw.Reward <= 0 {
		t.Fatal("interpolated award should be positive")
	}
}

// TestDiscreteSessionsStillRejectOffGridBids pins the default behaviour.
func TestDiscreteSessionsStillRejectOffGridBids(t *testing.T) {
	s := newSession(t, paperParams())
	if err := s.RecordBid("a", message.CutDownBid{Round: 1, CutDown: 0.137}); !errors.Is(err, ErrBadTable) {
		t.Fatalf("off-grid bid on a discrete session: err = %v", err)
	}
}
