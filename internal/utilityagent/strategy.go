// Package utilityagent implements the Utility Agent (UA): the pro-active
// party that predicts the consumption/production balance, decides whether a
// coming peak warrants negotiation, selects an announcement method, and
// drives the negotiation sessions defined in internal/protocol over the bus.
//
// The structure mirrors the paper's task decomposition (Section 5.1):
//
//   - own process control → determine general negotiation strategy
//     (ChooseMethod) and evaluate negotiation process (the Result);
//   - agent specific tasks → determine predicted balance (EvaluatePrediction);
//   - cooperation management → determine announcement / determine bid
//     acceptance (the session drivers in agent.go);
//   - agent interaction management → the agent.Runtime;
//   - maintenance of agent information → agent.Model (response statistics).
package utilityagent

import (
	"errors"
	"fmt"
	"time"

	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
)

// Errors reported by the package.
var (
	ErrBadConfig = errors.New("utilityagent: invalid configuration")
)

// Method is the announcement method for a negotiation (Section 3.2).
type Method int

// Methods.
const (
	// MethodAuto lets the UA pick via ChooseMethod (generate and select).
	MethodAuto Method = iota
	// MethodOffer is the one-shot take-it-or-leave-it offer (3.2.1).
	MethodOffer
	// MethodRequestForBids is the iterated free bid method (3.2.2).
	MethodRequestForBids
	// MethodRewardTable is the announce-reward-tables method (3.2.3) used by
	// the paper's prototype.
	MethodRewardTable
)

// String renders the method name.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodOffer:
		return "offer"
	case MethodRequestForBids:
		return "request_for_bids"
	case MethodRewardTable:
		return "reward_table"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Situation is the input to strategy selection: what the UA knows when a
// peak is predicted.
type Situation struct {
	// LeadTime is how long before the peak window starts.
	LeadTime time.Duration
	// OveruseRatio is the predicted overuse fraction.
	OveruseRatio float64
	// Customers is the number of Customer Agents addressed.
	Customers int
	// ResponseRate is the historically observed positive-response rate;
	// the paper's rule of thumb is "normally about 70%".
	ResponseRate float64
}

// Default strategy thresholds. The offer method "is very fast, because only
// one round of negotiation is required" and so is the only choice shortly
// before a peak; the request-for-bids method "cannot be made shortly before
// a peak is expected".
const (
	// offerLeadTime is the lead time below which only the offer method fits.
	offerLeadTime = 15 * time.Minute
	// rfbLeadTime is the lead time above which the slow request-for-bids
	// method becomes admissible.
	rfbLeadTime = 6 * time.Hour
	// smallOveruse is an overuse ratio small enough that the blunt offer
	// method is expected to clear it without per-customer targeting.
	smallOveruse = 0.10
)

// ChooseMethod implements "determine general negotiation strategy" by the
// generate-and-select approach (Section 5.1.3): every admissible method is
// generated, a predicted outcome is attached, and the best is selected.
//
// The decision logic encodes Section 3.2.4's evaluation: offer is fastest
// but gives customers no influence; request for bids maximises customer
// influence but is slow; reward tables sit in between and are the default.
func ChooseMethod(s Situation) Method {
	if s.LeadTime < offerLeadTime {
		return MethodOffer // nothing else can finish in time
	}
	rate := s.ResponseRate
	if rate <= 0 {
		rate = 0.7 // the paper's prior
	}
	// Predicted relative reduction from an offer: responders cap around the
	// announced fraction; a blunt instrument that suffices for small peaks.
	if s.OveruseRatio*(1-rate*0.5) <= smallOveruse && s.OveruseRatio <= smallOveruse*2 {
		return MethodOffer
	}
	// With a long horizon and few customers the fine-grained RFB method can
	// afford its many rounds.
	if s.LeadTime >= rfbLeadTime && s.Customers <= 50 {
		return MethodRequestForBids
	}
	return MethodRewardTable
}

// EvaluatePrediction implements the agent-specific task "evaluate
// prediction": whether the predicted overuse warrants starting a negotiation
// at all ("whether the predicted overuse is high enough to warrant the
// effort involved", Section 5.1.2).
func EvaluatePrediction(loads map[string]protocol.CustomerLoad, normalUse units.Energy, warrantRatio float64) (ratio float64, negotiate bool) {
	ratio = protocol.OveruseRatio(loads, normalUse)
	return ratio, ratio > warrantRatio
}
