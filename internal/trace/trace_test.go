package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDisabledTracingIsNoOp(t *testing.T) {
	Disable()
	sp := Root("x")
	if sp.Context().Valid() {
		t.Fatalf("disabled Root returned valid context %+v", sp.Context())
	}
	sp.SetSession("s")
	sp.End() // must not panic
	ch := Child(Context{Trace: 5, Span: 6}, "y")
	if ch.Context().Valid() {
		t.Fatalf("disabled Child returned valid context")
	}
}

func TestSpanParentChildStitching(t *testing.T) {
	tr := NewTracer("p1", 64)
	root := tr.Root("session.open")
	root.SetSession("s-1")
	child := tr.Child(root.Context(), "round.announce")
	child.SetSession("s-1")
	grand := tr.Child(child.Context(), "handle.reward_table")
	grand.End()
	child.End()
	root.End()

	recs := tr.Records(Filter{})
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// All three share one trace id.
	for _, r := range recs {
		if r.Trace != recs[0].Trace {
			t.Fatalf("trace ids differ: %q vs %q", r.Trace, recs[0].Trace)
		}
	}
	// Parent links chain root <- child <- grand.
	var rootRec, childRec, grandRec Record
	for _, r := range recs {
		switch r.Name {
		case "session.open":
			rootRec = r
		case "round.announce":
			childRec = r
		case "handle.reward_table":
			grandRec = r
		}
	}
	if rootRec.Parent != "" {
		t.Fatalf("root has parent %q", rootRec.Parent)
	}
	if childRec.Parent != rootRec.Span {
		t.Fatalf("child parent %q != root span %q", childRec.Parent, rootRec.Span)
	}
	if grandRec.Parent != childRec.Span {
		t.Fatalf("grand parent %q != child span %q", grandRec.Parent, childRec.Span)
	}
	if rootRec.Proc != "p1" {
		t.Fatalf("proc = %q", rootRec.Proc)
	}
}

func TestChildOfInvalidContextStartsNewTrace(t *testing.T) {
	tr := NewTracer("p", 16)
	sp := tr.Child(Context{}, "orphan")
	if !sp.Context().Valid() {
		t.Fatal("child of invalid context should start a new trace")
	}
	sp.End()
	recs := tr.Records(Filter{})
	if len(recs) != 1 || recs[0].Parent != "" {
		t.Fatalf("unexpected records %+v", recs)
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	tr := NewTracer("p", 16)
	for i := 0; i < 40; i++ {
		sp := tr.Root("n")
		sp.End()
	}
	total, dropped := tr.Stats()
	if total != 40 {
		t.Fatalf("total = %d", total)
	}
	if dropped != 40-16 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	if got := len(tr.Records(Filter{})); got != 16 {
		t.Fatalf("ring holds %d, want 16", got)
	}
}

func TestFilterSessionShardLimit(t *testing.T) {
	tr := NewTracer("p", 64)
	for i := 0; i < 4; i++ {
		sp := tr.Root("a")
		sp.SetSession("s-A")
		sp.SetShard("shard-0")
		sp.End()
	}
	sp := tr.Root("b")
	sp.SetSession("s-B")
	sp.SetAgent("conc-shard-3-up")
	sp.End()

	if got := len(tr.Records(Filter{Session: "s-A"})); got != 4 {
		t.Fatalf("session filter got %d, want 4", got)
	}
	if got := len(tr.Records(Filter{Shard: "shard-0"})); got != 4 {
		t.Fatalf("shard filter got %d, want 4", got)
	}
	// Shard filter also matches agent names that embed the shard token.
	if got := len(tr.Records(Filter{Shard: "shard-3"})); got != 1 {
		t.Fatalf("agent-embedded shard filter got %d, want 1", got)
	}
	if got := len(tr.Records(Filter{Session: "s-A", Limit: 2})); got != 2 {
		t.Fatalf("limit got %d, want 2", got)
	}
}

func TestHexIDRoundTrip(t *testing.T) {
	for _, v := range []uint64{1, 0xdeadbeef, ^uint64(0), 1 << 63} {
		s := hexID(v)
		if len(s) != 16 {
			t.Fatalf("hexID(%d) = %q, want 16 digits", v, s)
		}
		got, ok := ParseID(s)
		if !ok || got != v {
			t.Fatalf("ParseID(hexID(%d)) = %d, %v", v, got, ok)
		}
	}
	if _, ok := ParseID("xyz"); ok {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestHTTPHandlerFiltersAndDisabledState(t *testing.T) {
	Disable()
	t.Cleanup(Disable)

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var off Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled {
		t.Fatal("disabled tracer reported enabled")
	}

	Enable("webproc", 32)
	for i := 0; i < 3; i++ {
		sp := Root("tick")
		sp.SetSession("live")
		sp.End()
	}
	other := Root("misc")
	other.End()

	rec = httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace?session=live&limit=2", nil))
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if !d.Enabled || d.Proc != "webproc" {
		t.Fatalf("dump header %+v", d)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(d.Spans))
	}
	for _, s := range d.Spans {
		if s.Session != "live" {
			t.Fatalf("filter leaked span %+v", s)
		}
	}
}

func TestSpanDurationRecorded(t *testing.T) {
	tr := NewTracer("p", 16)
	sp := tr.Root("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	recs := tr.Records(Filter{})
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].DurUs < 1000 {
		t.Fatalf("duration %dus, want >= 1000", recs[0].DurUs)
	}
	if recs[0].StartUs == 0 {
		t.Fatal("start timestamp missing")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer("p", 16)
	sp := tr.Root("once")
	sp.End()
	sp.End()
	if got := len(tr.Records(Filter{})); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}
