package sim

import (
	"strings"
	"testing"
)

func TestE14LiveGrid(t *testing.T) {
	tab, err := E14LiveGrid(32, 8, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 ticks", len(tab.Rows))
	}
	// The spike must trigger at least one incremental re-negotiation, and
	// the counter must not run away (one event per injected excursion).
	last := tab.Rows[len(tab.Rows)-1]
	total := last[len(last)-1]
	if total != "1" {
		t.Fatalf("final renegotiation total = %q, want 1\n%s", total, tab)
	}
	// Some tick recorded the breaching shards re-bidding.
	found := false
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[6], "shards 0+4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no row records the re-negotiation of shards 0 and 4:\n%s", tab)
	}
	// The run ends back under target.
	if last[3] != "no" {
		t.Fatalf("fleet still over target at the final tick:\n%s", tab)
	}
	if !strings.Contains(tab.CSV(), "tick,fleet_kwh") {
		t.Fatal("CSV header missing")
	}
}
