package health

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"loadbalance/internal/trace"
)

// The composite feedback score condenses the process's operational state
// into one number in [0,100] — 100 = fully healthy, 0 = refuse traffic —
// in the shape HAProxy-style agent checks and lbfeedback responders
// consume. Each source is mapped through a monotone clamp-linear health
// function (1 at-or-below its good budget, 0 at-or-above its bad budget,
// linear between), and the score is the weighted mean × 100. Monotone
// per-component mappings make the whole score monotone in offered load,
// which the overload drill asserts.

// Sources supplies the raw inputs for one score computation. Zero-valued
// optional callbacks mean "not applicable" and drop that component's
// weight from the denominator, so a process without replication isn't
// penalised for lacking a standby.
type Sources struct {
	// SessionP95 returns the negotiation session p95 latency in seconds
	// (from the PR-6 histograms). Nil falls back to the default trace
	// registry's negotiation_session_seconds histogram.
	SessionP95 func() float64
	// Utilization returns offered/target fleet load; 1.0 = at target.
	Utilization func() float64
	// ReplicationLag returns the worst standby lag in records.
	ReplicationLag func() float64
}

// Budgets are the clamp-linear breakpoints: a component reads health 1 at
// Good, 0 at Bad, linear between. Good < Bad always (higher raw value =
// worse).
type Budgets struct {
	GCPauseGoodMs, GCPauseBadMs     float64
	GoroutinesGood, GoroutinesBad   float64
	HeapGoodMiB, HeapBadMiB         float64
	SessionP95GoodS, SessionP95BadS float64
	UtilizationGood, UtilizationBad float64
	ReplLagGoodRecs, ReplLagBadRecs float64
}

// DefaultBudgets sizes the breakpoints for the small grids the repo's
// drills run: utilization is the dominant overload signal, latency and
// runtime load back it up.
func DefaultBudgets() Budgets {
	return Budgets{
		GCPauseGoodMs: 1, GCPauseBadMs: 100,
		GoroutinesGood: 200, GoroutinesBad: 5000,
		HeapGoodMiB: 256, HeapBadMiB: 2048,
		SessionP95GoodS: 0.05, SessionP95BadS: 2,
		UtilizationGood: 1.0, UtilizationBad: 1.5,
		ReplLagGoodRecs: 16, ReplLagBadRecs: 4096,
	}
}

// Weights set each component's share of the score. Components whose
// source is absent are dropped and the rest renormalised.
type Weights struct {
	Runtime     float64 // GC pause + goroutines + heap (averaged)
	Latency     float64 // negotiation session p95
	Utilization float64 // offered vs target fleet load
	Replication float64 // worst standby lag
}

// DefaultWeights favour the signals that track offered load directly.
func DefaultWeights() Weights {
	return Weights{Runtime: 1, Latency: 2, Utilization: 3, Replication: 1}
}

// Component is one scored input as reported on /healthz.
type Component struct {
	Name   string  `json:"name"`
	Raw    float64 `json:"raw"`    // raw source value
	Health float64 `json:"health"` // clamp-linear health in [0,1]
	Weight float64 `json:"weight"`
}

// Score is one computed feedback score with its breakdown.
type Score struct {
	Value      float64     `json:"score"` // [0,100]
	Components []Component `json:"components"`
	ComputedUs int64       `json:"computedUs"`
}

// Scorer recomputes the feedback score on demand (the live loop calls it
// once per tick) and caches the latest result for readers.
type Scorer struct {
	src     Sources
	budgets Budgets
	weights Weights

	gcStats func() (pauseMs float64, heapMiB float64) // test seam

	mu     sync.Mutex
	latest Score

	// value mirrors latest.Value for the lock-free gauge read.
	value atomic.Uint64 // math.Float64bits
}

// NewScorer builds a scorer and registers its "feedback_score" gauge.
func NewScorer(src Sources, budgets Budgets, weights Weights) *Scorer {
	s := &Scorer{src: src, budgets: budgets, weights: weights, gcStats: runtimeGCStats}
	s.value.Store(math.Float64bits(100)) // healthy until first compute
	RegisterGauge("feedback_score", s.Value)
	return s
}

// runtimeGCStats reads the real runtime's recent max GC pause and heap
// size.
func runtimeGCStats() (pauseMs, heapMiB float64) {
	var gc debug.GCStats
	debug.ReadGCStats(&gc)
	n := len(gc.Pause)
	if n > 8 {
		n = 8
	}
	var max time.Duration
	for _, p := range gc.Pause[:n] {
		if p > max {
			max = p
		}
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return float64(max) / 1e6, float64(mem.HeapAlloc) / (1 << 20)
}

// clampHealth maps raw through the (good, bad) clamp-linear breakpoints.
func clampHealth(raw, good, bad float64) float64 {
	if bad <= good {
		if raw > good {
			return 0
		}
		return 1
	}
	switch {
	case raw <= good:
		return 1
	case raw >= bad:
		return 0
	default:
		return (bad - raw) / (bad - good)
	}
}

// Compute recomputes the score from live sources and caches it.
func (s *Scorer) Compute() Score {
	b := s.budgets
	var comps []Component
	add := func(name string, raw, good, bad, weight float64) {
		comps = append(comps, Component{Name: name, Raw: raw, Health: clampHealth(raw, good, bad), Weight: weight})
	}

	if s.weights.Runtime > 0 {
		pauseMs, heapMiB := s.gcStats()
		w := s.weights.Runtime / 3
		add("gc_pause_ms", pauseMs, b.GCPauseGoodMs, b.GCPauseBadMs, w)
		add("goroutines", float64(runtime.NumGoroutine()), b.GoroutinesGood, b.GoroutinesBad, w)
		add("heap_mib", heapMiB, b.HeapGoodMiB, b.HeapBadMiB, w)
	}
	if s.weights.Latency > 0 {
		p95 := 0.0
		if s.src.SessionP95 != nil {
			p95 = s.src.SessionP95()
		} else {
			p95 = trace.LookupHistogram("negotiation_session_seconds").Quantile(0.95)
		}
		add("session_p95_s", p95, b.SessionP95GoodS, b.SessionP95BadS, s.weights.Latency)
	}
	if s.weights.Utilization > 0 && s.src.Utilization != nil {
		add("utilization", s.src.Utilization(), b.UtilizationGood, b.UtilizationBad, s.weights.Utilization)
	}
	if s.weights.Replication > 0 && s.src.ReplicationLag != nil {
		add("replication_lag_records", s.src.ReplicationLag(), b.ReplLagGoodRecs, b.ReplLagBadRecs, s.weights.Replication)
	}

	var sumW, sumWH float64
	for _, c := range comps {
		sumW += c.Weight
		sumWH += c.Weight * c.Health
	}
	v := 100.0
	if sumW > 0 {
		v = 100 * sumWH / sumW
	}
	sc := Score{Value: v, Components: comps, ComputedUs: time.Now().UnixMicro()}

	s.mu.Lock()
	s.latest = sc
	s.mu.Unlock()
	s.value.Store(math.Float64bits(v))
	return sc
}

// Value returns the latest score (lock-free; the gauge read).
func (s *Scorer) Value() float64 { return math.Float64frombits(s.value.Load()) }

// Latest returns the latest score with its component breakdown.
func (s *Scorer) Latest() Score {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc := s.latest
	sc.Components = append([]Component(nil), s.latest.Components...)
	return sc
}

// WriteScoreMetrics renders the score and its components as gauges.
func WriteScoreMetrics(w io.Writer, s *Scorer) {
	sc := s.Latest()
	fmt.Fprintf(w, "# TYPE feedback_score gauge\nfeedback_score %g\n", sc.Value)
	if len(sc.Components) > 0 {
		fmt.Fprintf(w, "# TYPE feedback_component_health gauge\n")
		for _, c := range sc.Components {
			fmt.Fprintf(w, "feedback_component_health{component=%q} %g\n", c.Name, c.Health)
		}
	}
}
