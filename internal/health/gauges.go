package health

import (
	"sort"
	"strings"
	"sync"

	"loadbalance/internal/trace"
)

// The metric namespace the alert engine evaluates over: named gauges
// registered by the process (feedback score, replication lag, journal
// append age, ...) plus percentile views over the trace package's latency
// histograms, addressed as "<family>_p50|_p95|_p99" — e.g.
// "negotiation_session_seconds_p99".

// GaugeFunc returns a gauge's current value.
type GaugeFunc func() float64

var (
	gaugeMu sync.Mutex
	gauges  = map[string]GaugeFunc{}
)

// RegisterGauge installs (or replaces) a named gauge.
func RegisterGauge(name string, fn GaugeFunc) {
	gaugeMu.Lock()
	gauges[name] = fn
	gaugeMu.Unlock()
}

// UnregisterGauge removes a named gauge.
func UnregisterGauge(name string) {
	gaugeMu.Lock()
	delete(gauges, name)
	gaugeMu.Unlock()
}

// GaugeNames returns the registered gauge names, sorted.
func GaugeNames() []string {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// quantileSuffixes maps metric-name suffixes to histogram quantiles.
var quantileSuffixes = []struct {
	suffix string
	q      float64
}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}

// LookupMetric resolves a metric name to its current value. Registered
// gauges win; otherwise a _p50/_p95/_p99 suffix resolves against the
// default trace histogram registry (an unobserved histogram reads 0).
// ok=false means the name matches neither namespace.
func LookupMetric(name string) (v float64, ok bool) {
	gaugeMu.Lock()
	fn := gauges[name]
	gaugeMu.Unlock()
	if fn != nil {
		return fn(), true
	}
	for _, qs := range quantileSuffixes {
		if strings.HasSuffix(name, qs.suffix) && len(name) > len(qs.suffix) {
			family := strings.TrimSuffix(name, qs.suffix)
			// Lookup (not Get) so probing a family that never observed
			// anything doesn't add an empty series to /metrics; a missing
			// or empty histogram reads 0.
			return trace.LookupHistogram(family).Quantile(qs.q), true
		}
	}
	return 0, false
}
