package telemetry

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/health"
	"loadbalance/internal/prediction"
	"loadbalance/internal/protocol"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

// Live-loop latency histograms, rendered on gridd's /metrics.
var (
	tickHist    = trace.GetHistogram("grid_tick_seconds")
	renegHist   = trace.GetHistogram("grid_renegotiation_seconds")
	journalHist = trace.GetHistogram("grid_tick_journal_seconds")
)

// Names on the live engine's telemetry bus.
const (
	collectorName = "collector"
	meteringName  = "metering"
)

// ingestDeadline bounds the wait for one tick's readings to cross the bus.
const ingestDeadline = 10 * time.Second

// LiveConfig parameterises a live grid.
type LiveConfig struct {
	// Scenario is the fleet to operate: it is negotiated once at start and
	// re-negotiated incrementally when shards drift. Reward-table method
	// only (the cluster tier's requirement).
	Scenario core.Scenario
	// Shards is the concentrator count fronting the fleet (default 4).
	Shards int
	// TicksPerWindow divides the scenario window into live ticks; a meter's
	// per-tick baseline is its predicted window use over this count
	// (default 16).
	TicksPerWindow int
	// RingTicks is the collector's per-shard history depth (default 64).
	RingTicks int
	// Jitter is the meters' stochastic measurement noise amplitude.
	Jitter float64
	// Seed drives all randomness (meter jitter streams).
	Seed int64
	// Detector holds the deviation thresholds; zero thresholds default to
	// Rel 0.25 with an absolute floor of 5% of an average shard's share of
	// the per-tick normal use.
	Detector DeviationConfig
	// Forecast estimates a shard's next-tick load from its measured series
	// when re-negotiating (default: moving average over the breach window,
	// so the estimate sees only post-change samples).
	Forecast prediction.Predictor
	// ShardEvents injects demand disturbances into every meter of a shard.
	ShardEvents map[int][]Event
	// BatchSize caps readings per published envelope (default 128).
	BatchSize int
}

// Award is a customer's current standing agreement in the live grid.
type Award struct {
	CutDown float64 `json:"cutDown"`
	Reward  float64 `json:"reward"`
}

// RenegotiateEvent records one incremental re-negotiation.
type RenegotiateEvent struct {
	// Tick is the live tick the breach fired on.
	Tick int
	// Shards lists the breaching shard indices, ascending.
	Shards []int
	// SessionID is the partial session's id.
	SessionID string
	// Members is the re-bidding customer count.
	Members int
	// Outcome is the partial negotiation's terminal outcome.
	Outcome string
	// Factors holds the demand factor estimated per breaching shard.
	Factors map[int]float64
}

// TickReport is one live tick's outcome.
type TickReport struct {
	Tick          int
	ShardMeasured []float64 // measured kWh per shard this tick
	ShardExpected []float64 // negotiated expectation per shard this tick
	FleetKWh      float64   // Σ measured
	TargetKWh     float64   // (1+allowed_overuse)·normal_use per tick
	Breached      []int     // shards whose breach fired this tick
	Renegotiated  *RenegotiateEvent
}

// Snapshot is the engine's observable state for health/metrics endpoints.
type Snapshot struct {
	Tick                int
	FleetKWh            float64
	TargetKWh           float64
	ShardMeasured       []float64
	ShardExpected       []float64
	ShardBreached       []bool
	ShardRenegotiations []int
	Renegotiations      int
	Readings            int64
	Batches             int64
}

// LiveEngine runs a grid continuously: negotiate once, then meter every
// tick, detect sustained deviation per shard, and re-negotiate only the
// breaching shards — unaffected shards keep their awards untouched.
type LiveEngine struct {
	cfg  LiveConfig
	topo cluster.Topology

	bus       *bus.InProc
	fleet     *Fleet
	collector *Collector
	colRT     *agent.Runtime
	det       *DeviationDetector

	// origLoads is the scenario's demand model (never rescaled); the live
	// demand estimate is origLoads × shardFactor.
	origLoads   map[string]protocol.CustomerLoad
	bids        map[string]float64 // current committed cut-down per customer
	awards      map[string]Award   // current standing award per customer
	shardFactor []float64          // estimated demand factor per shard

	tick        int
	sessionSeq  int
	renegs      int
	shardRenegs []int
	events      []RenegotiateEvent
	started     bool

	normalPerTick float64
	targetPerTick float64

	// Durability (nil st = volatile engine, the pre-journal behaviour).
	st             *store.Store
	snapshotEvery  int
	batchesPerTick int64
}

// NewLiveEngine validates the configuration and builds the grid (buses,
// meters, collector, detector). Start runs the initial negotiation.
func NewLiveEngine(cfg LiveConfig) (*LiveEngine, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadConfig, cfg.Shards)
	}
	if cfg.TicksPerWindow == 0 {
		cfg.TicksPerWindow = 16
	}
	if cfg.TicksPerWindow < 1 {
		return nil, fmt.Errorf("%w: ticks per window %d", ErrBadConfig, cfg.TicksPerWindow)
	}
	topo, err := cluster.NewTopology(cfg.Scenario.Loads(), cfg.Shards)
	if err != nil {
		return nil, err
	}

	normalPerTick := cfg.Scenario.NormalUse.KWhs() / float64(cfg.TicksPerWindow)
	if cfg.Detector.AbsKWh == 0 && cfg.Detector.Rel == 0 {
		// The absolute floor guards against relative triggers on near-zero
		// expectations, so it must be small against a SHARD's load, not the
		// fleet's — at 256 shards a fleet-scaled floor would swallow even a
		// whole-shard outage.
		cfg.Detector.Rel = 0.25
		cfg.Detector.AbsKWh = 0.05 * normalPerTick / float64(cfg.Shards)
	}
	cfg.Detector = cfg.Detector.withDefaults()
	det, err := NewDeviationDetector(cfg.Shards, cfg.Detector)
	if err != nil {
		return nil, err
	}
	if cfg.Forecast == nil {
		cfg.Forecast = prediction.MovingAverage{Window: cfg.Detector.BreachTicks}
	}

	shardOf := make(map[string]int, topo.FleetSize())
	for i := 0; i < topo.Shards(); i++ {
		for _, n := range topo.Members(i) {
			shardOf[n] = i
		}
	}

	meters := make([]*Meter, 0, len(cfg.Scenario.Customers))
	for i, spec := range cfg.Scenario.Customers {
		m, err := NewMeter(MeterConfig{
			Customer: spec.Name,
			BaseKWh:  spec.Predicted.KWhs() / float64(cfg.TicksPerWindow),
			Jitter:   cfg.Jitter,
			Seed:     cfg.Seed + int64(i) + 1,
			Events:   cfg.ShardEvents[shardOf[spec.Name]],
		})
		if err != nil {
			return nil, err
		}
		meters = append(meters, m)
	}
	fleet, err := NewFleet(meters, cfg.BatchSize)
	if err != nil {
		return nil, err
	}

	col, err := NewCollector(CollectorConfig{ShardOf: shardOf, Shards: cfg.Shards, RingTicks: cfg.RingTicks})
	if err != nil {
		return nil, err
	}
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}

	factors := make([]float64, cfg.Shards)
	for i := range factors {
		factors[i] = 1
	}
	return &LiveEngine{
		cfg:           cfg,
		topo:          topo,
		bus:           b,
		fleet:         fleet,
		collector:     col,
		det:           det,
		origLoads:     cfg.Scenario.Loads(),
		bids:          make(map[string]float64, topo.FleetSize()),
		awards:        make(map[string]Award, topo.FleetSize()),
		shardFactor:   factors,
		shardRenegs:   make([]int, cfg.Shards),
		normalPerTick: normalPerTick,
		targetPerTick: normalPerTick * (1 + cfg.Scenario.Params.AllowedOveruseRatio),
	}, nil
}

// Start negotiates the whole fleet once through the cluster tier, actuates
// the awards into the meters and opens the telemetry stream.
func (e *LiveEngine) Start() error {
	if e.started {
		return fmt.Errorf("%w: engine already started", ErrBadConfig)
	}
	res, err := cluster.Run(cluster.Config{Scenario: e.cfg.Scenario, Shards: e.cfg.Shards})
	if err != nil {
		return fmt.Errorf("telemetry: initial negotiation: %w", err)
	}
	e.applyOutcome(allMembers(e.topo), res)
	if e.st != nil {
		if err := e.journalSession(res); err != nil {
			return err
		}
	}
	return e.openTelemetry()
}

// openTelemetry starts the collector runtime over the metering bus — the
// part of Start shared with recovery, which must not re-negotiate.
func (e *LiveEngine) openTelemetry() error {
	// Collector inbox sized for several ticks of batches in flight.
	batchesPerTick := (e.fleet.Size() + defaultBatchSize - 1) / defaultBatchSize
	if e.cfg.BatchSize > 0 {
		batchesPerTick = (e.fleet.Size() + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	}
	e.batchesPerTick = int64(batchesPerTick)
	rt, err := agent.Start(collectorName, e.bus, e.collector.Handler(), max(64, 8*batchesPerTick))
	if err != nil {
		return err
	}
	e.colRT = rt
	e.started = true
	return nil
}

// Stop tears the telemetry stream down. A durable engine's journal is left
// exactly as the last tick committed it — indistinguishable from a crash,
// which is what crash tests rely on; a clean exit goes through Shutdown.
func (e *LiveEngine) Stop() {
	if e.colRT != nil {
		e.colRT.Stop()
		e.colRT = nil
	}
	e.bus.Close()
	e.started = false
}

// Shutdown is the graceful exit of a durable engine: a final snapshot, the
// seal record, a sealed journal on disk, then the telemetry teardown. On a
// volatile engine it is just Stop.
func (e *LiveEngine) Shutdown() error {
	var err error
	if e.st != nil {
		if serr := e.st.Snapshot(e.snapshotBlob()); serr != nil {
			err = serr
		}
		if serr := e.st.Seal(); serr != nil && err == nil {
			err = serr
		}
		if serr := e.st.Close(); serr != nil && err == nil {
			err = serr
		}
		e.st = nil
	}
	e.Stop()
	return err
}

// allMembers flattens a topology into one member list.
func allMembers(t cluster.Topology) []string {
	out := make([]string, 0, t.FleetSize())
	for i := 0; i < t.Shards(); i++ {
		out = append(out, t.Members(i)...)
	}
	return out
}

// applyOutcome merges a negotiation result over the given members into the
// standing state: committed bids, awards (reward interpolated from the final
// table) and meter actuation.
func (e *LiveEngine) applyOutcome(members []string, res *cluster.Result) {
	var table protocol.Table
	haveTable := len(res.History) > 0
	if haveTable {
		table = res.History[len(res.History)-1].Table
	}
	changed := make(map[string]float64, len(members))
	for _, name := range members {
		cd := res.FinalBids[name] // 0 when the member never bid (or no negotiation was warranted)
		reward := 0.0
		if haveTable && cd > 0 {
			var ok bool
			reward, ok = table.RewardFor(cd)
			if !ok {
				reward = table.InterpolatedReward(cd)
			}
		}
		e.bids[name] = cd
		e.awards[name] = Award{CutDown: cd, Reward: reward}
		changed[name] = cd
	}
	e.fleet.Actuate(changed)
}

// expectedTick returns shard i's negotiated per-tick expectation: the
// members' predicted-use-with-cutdown under the current demand factor,
// spread over the window's ticks.
func (e *LiveEngine) expectedTick(i int) float64 {
	var sum float64
	for _, n := range e.topo.Members(i) {
		l := e.origLoads[n]
		l.Predicted = l.Predicted.Scale(e.shardFactor[i])
		l.Allowed = l.Allowed.Scale(e.shardFactor[i])
		l.CutDown = e.bids[n]
		sum += protocol.UseWithCutDown(l).KWhs()
	}
	return sum / float64(e.cfg.TicksPerWindow)
}

// Tick runs one live iteration: meters publish, the collector closes the
// tick, deviations are screened, and any fired shards re-negotiate.
func (e *LiveEngine) Tick() (TickReport, error) {
	if !e.started {
		return TickReport{}, fmt.Errorf("%w: engine not started", ErrBadConfig)
	}
	t := e.tick
	e.tick++

	tickStart := time.Now()
	tickSpan := trace.Root("tick")
	tickSpan.SetSession(e.cfg.Scenario.SessionID)
	defer func() {
		tickSpan.End()
		tickHist.Observe(time.Since(tickStart))
	}()

	collectSpan := trace.Child(tickSpan.Context(), "tick.collect")
	collectSpan.SetSession(e.cfg.Scenario.SessionID)
	n, err := e.fleet.PublishTick(e.bus, meteringName, collectorName, e.cfg.Scenario.SessionID, t)
	if err != nil {
		collectSpan.End()
		return TickReport{}, err
	}
	if err := e.collector.WaitTick(t, n, ingestDeadline); err != nil {
		collectSpan.End()
		return TickReport{}, err
	}
	measured := e.collector.CloseTick(t)
	collectSpan.End()

	rep := TickReport{
		Tick:          t,
		ShardMeasured: measured,
		ShardExpected: make([]float64, e.topo.Shards()),
		TargetKWh:     e.targetPerTick,
	}
	var fired []int
	for i := 0; i < e.topo.Shards(); i++ {
		rep.ShardExpected[i] = e.expectedTick(i)
		rep.FleetKWh += measured[i]
		if e.det.Observe(i, measured[i], rep.ShardExpected[i]) {
			fired = append(fired, i)
		}
	}
	if len(fired) > 0 {
		rep.Breached = fired
		if health.Enabled(health.Warn) {
			fields := []health.Field{health.Int("tick", int64(t))}
			for _, i := range fired {
				fields = append(fields, health.Int("shard", int64(i)))
			}
			health.Log(health.Warn, "telemetry", "shard demand breached detector, re-negotiating", fields...)
		}
		ev, err := e.renegotiate(tickSpan.Context(), t, fired)
		if err != nil {
			return rep, err
		}
		rep.Renegotiated = ev
	}
	if e.st != nil {
		jStart := time.Now()
		jSpan := trace.Child(tickSpan.Context(), "tick.journal")
		jSpan.SetSession(e.cfg.Scenario.SessionID)
		err := e.journalTick(t, measured, int64(n), rep.Renegotiated)
		jSpan.End()
		journalHist.Observe(time.Since(jStart))
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// Run executes ticks iterations and returns their reports.
func (e *LiveEngine) Run(ticks int) ([]TickReport, error) {
	out := make([]TickReport, 0, ticks)
	for i := 0; i < ticks; i++ {
		rep, err := e.Tick()
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// renegotiate runs the incremental partial negotiation for the fired
// shards: their demand factors are re-estimated from the measured series,
// a sub-scenario over only their members is negotiated through the cluster
// tier against the fleet's residual capacity, and the resulting awards
// replace theirs — every other shard's award is untouched.
func (e *LiveEngine) renegotiate(parent trace.Context, tick int, shards []int) (*RenegotiateEvent, error) {
	sort.Ints(shards)

	// Estimate each breaching shard's demand factor: forecast of the
	// measured series over the shard's baseline intent (original demand
	// under current cut-downs). The meter model makes this the event factor.
	factors := make(map[int]float64, len(shards))
	var members []string
	scale := make(map[string]float64)
	for _, i := range shards {
		ms := e.topo.Members(i)
		if len(ms) == 0 {
			continue // an empty shard has nobody to re-bid
		}
		forecast, err := e.collector.ForecastShard(i, e.cfg.Forecast)
		if err != nil {
			return nil, err
		}
		var baseTick float64
		for _, n := range ms {
			l := e.origLoads[n]
			l.CutDown = e.bids[n]
			baseTick += protocol.UseWithCutDown(l).KWhs()
		}
		baseTick /= float64(e.cfg.TicksPerWindow)
		f := 0.0
		if baseTick > 0 {
			f = forecast / baseTick
		}
		if f < 0 {
			f = 0
		}
		factors[i] = f
		for _, n := range ms {
			scale[n] = f
		}
		members = append(members, ms...)
	}
	if len(members) == 0 {
		return nil, nil
	}

	// The residual capacity holds every customer outside the partial fleet
	// at its current expected use.
	subset := make(map[string]bool, len(members))
	for _, n := range members {
		subset[n] = true
	}
	current := make(map[string]protocol.CustomerLoad, len(e.origLoads))
	for i := 0; i < e.topo.Shards(); i++ {
		for _, n := range e.topo.Members(i) {
			l := e.origLoads[n]
			l.Predicted = l.Predicted.Scale(e.shardFactor[i])
			l.Allowed = l.Allowed.Scale(e.shardFactor[i])
			l.CutDown = e.bids[n]
			current[n] = l
		}
	}
	residual := protocol.ResidualNormalUse(current, e.cfg.Scenario.NormalUse, subset)

	e.sessionSeq++
	sessionID := fmt.Sprintf("%s-renego-%d", e.cfg.Scenario.SessionID, e.sessionSeq)
	sub, err := cluster.SubScenario(e.cfg.Scenario, members, scale, residual, sessionID)
	if err != nil {
		return nil, err
	}
	// The reneg decision span parents the partial session's whole span
	// tree, so a /trace query for the tick shows why — and how long — the
	// shards re-negotiated.
	renegStart := time.Now()
	renegSpan := trace.Child(parent, "tick.renegotiate")
	renegSpan.SetSession(sessionID)
	res, err := cluster.Run(cluster.Config{
		Scenario:    sub,
		Shards:      len(shards),
		TraceParent: renegSpan.Context(),
	})
	renegSpan.End()
	renegHist.Observe(time.Since(renegStart))
	if err != nil {
		return nil, fmt.Errorf("telemetry: renegotiate %s: %w", sessionID, err)
	}

	e.applyOutcome(members, res)
	for i, f := range factors {
		e.shardFactor[i] = f
		e.det.Reset(i)
		e.shardRenegs[i]++
	}
	e.renegs++
	ev := RenegotiateEvent{
		Tick:      tick,
		Shards:    shards,
		SessionID: sessionID,
		Members:   len(members),
		Outcome:   res.Outcome,
		Factors:   factors,
	}
	e.events = append(e.events, ev)
	health.Log(health.Info, "telemetry", "partial re-negotiation complete",
		health.Str("session", sessionID),
		health.Str("outcome", res.Outcome),
		health.Int("tick", int64(tick)),
		health.Int("members", int64(len(members))))
	return &ev, nil
}

// Events returns the re-negotiation history.
func (e *LiveEngine) Events() []RenegotiateEvent {
	return append([]RenegotiateEvent(nil), e.events...)
}

// Renegotiations returns the number of re-negotiation events so far.
func (e *LiveEngine) Renegotiations() int { return e.renegs }

// AwardOf returns a customer's current standing award.
func (e *LiveEngine) AwardOf(name string) (Award, bool) {
	a, ok := e.awards[name]
	return a, ok
}

// ShardAwards returns shard i's standing awards keyed by member name.
func (e *LiveEngine) ShardAwards(i int) map[string]Award {
	out := make(map[string]Award)
	for _, n := range e.topo.Members(i) {
		out[n] = e.awards[n]
	}
	return out
}

// Topology returns the engine's shard partition.
func (e *LiveEngine) Topology() cluster.Topology { return e.topo }

// NormalPerTick returns the fleet's per-tick normal capacity in kWh.
func (e *LiveEngine) NormalPerTick() float64 { return e.normalPerTick }

// Snapshot captures the observable state for health/metrics endpoints.
func (e *LiveEngine) Snapshot() Snapshot {
	s := Snapshot{
		Tick:                e.tick,
		TargetKWh:           e.targetPerTick,
		ShardMeasured:       make([]float64, e.topo.Shards()),
		ShardExpected:       make([]float64, e.topo.Shards()),
		ShardBreached:       make([]bool, e.topo.Shards()),
		ShardRenegotiations: append([]int(nil), e.shardRenegs...),
		Renegotiations:      e.renegs,
	}
	for i := 0; i < e.topo.Shards(); i++ {
		if last, ok := e.collector.ShardLast(i); ok {
			s.ShardMeasured[i] = last
			s.FleetKWh += last
		}
		s.ShardExpected[i] = e.expectedTick(i)
		s.ShardBreached[i] = e.det.Breached(i)
	}
	st := e.collector.Stats()
	s.Readings, s.Batches = st.Readings, st.Batches
	return s
}

// ElasticFleetScenario builds an N-customer live-operation fleet: every
// customer is a seeded variation of a 13.5 kWh customer whose requirement
// table stays finite through cut-down 0.9, so an incremental re-negotiation
// under a demand spike always has concession headroom (the paper's
// calibrated customer tops out at 0.4, which caps how much load a live spike
// can shed). Capacity is set for the paper's 35% initial overuse.
func ElasticFleetScenario(n int, seed int64) (core.Scenario, error) {
	if n <= 0 {
		return core.Scenario{}, fmt.Errorf("%w: fleet size %d", ErrBadConfig, n)
	}
	levels := make([]float64, 0, 10)
	for _, cd := range units.StandardCutDowns() {
		levels = append(levels, cd.Float())
	}
	baseReq := map[float64]float64{
		0: 0, 0.1: 4, 0.2: 9, 0.3: 15, 0.4: 22, 0.5: 30, 0.6: 39, 0.7: 49, 0.8: 60, 0.9: 72,
	}
	window, err := units.NewInterval(
		time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC),
		time.Date(1998, 1, 20, 19, 0, 0, 0, time.UTC),
	)
	if err != nil {
		return core.Scenario{}, err
	}
	s := core.Scenario{
		SessionID:    fmt.Sprintf("live-%d-%d", n, seed),
		Window:       window,
		Method:       utilityagent.MethodRewardTable,
		Params:       core.PaperParams(),
		InitialSlope: 42.5,
		Customers:    make([]core.CustomerSpec, 0, n),
	}
	rng := rand.New(rand.NewSource(seed))
	var total float64
	for i := 0; i < n; i++ {
		factor := 0.8 + 0.8*rng.Float64()
		req := make(map[float64]float64, len(baseReq))
		for l, r := range baseReq {
			req[l] = r * factor
		}
		prefs, err := customeragent.NewPreferences(levels, req)
		if err != nil {
			return core.Scenario{}, err
		}
		s.Customers = append(s.Customers, core.CustomerSpec{
			Name:      fmt.Sprintf("c%06d", i),
			Predicted: 13.5,
			Allowed:   13.5,
			Prefs:     prefs.WithExpectedUse(13.5),
			Strategy:  customeragent.StrategyGreedy,
		})
		total += 13.5
	}
	s.NormalUse = units.Energy(total / 1.35)
	return s, nil
}
