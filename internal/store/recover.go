package store

import (
	"fmt"
	"os"
)

// readDir recovers a data directory: the newest valid snapshot plus the
// journal tail after it. Damage never fails recovery — the log simply ends
// at the last valid record:
//
//   - a frame that ends mid-field (crash-torn tail) is dropped; with repair
//     set the segment file is truncated back to the last whole frame so the
//     garbage can never shadow future appends;
//   - a checksum mismatch or an unknown segment version ends the log there;
//   - segments beyond a damaged or missing one are not replayed (their
//     records are discontiguous); with repair set they are renamed aside
//     with an ".orphaned" suffix so the names stay free for the new writer.
func readDir(dir string, repair bool) (*Recovered, error) {
	rec := &Recovered{}
	if seq, blob, ok := latestSnapshot(dir); ok {
		rec.SnapshotSeq = seq
		rec.Snapshot = blob
	}

	segs := segmentGlob(dir)
	seq := uint64(0) // sequence number of the last record consumed
	broken := -1     // index of the first unusable segment
	var lastKind Kind
	var sawRecord bool

scan:
	for i, path := range segs {
		firstSeq, ok := segmentFirstSeq(path)
		if !ok {
			broken = i
			break
		}
		if seq != 0 && firstSeq != seq+1 {
			// A hole in the sequence: everything from here on is
			// discontiguous with the log we have.
			broken = i
			break
		}
		if seq == 0 && rec.SnapshotSeq > 0 && firstSeq > rec.SnapshotSeq+1 {
			// The oldest surviving segment starts beyond the snapshot's
			// position: its records cannot be applied on top of the
			// snapshot. Keep the snapshot, set the tail aside.
			broken = i
			break
		}
		data, err := os.ReadFile(path)
		if err != nil {
			broken = i
			break
		}
		if len(data) < headerSize || string(data[:len(segMagic)]) != segMagic || data[len(segMagic)] != segVersion {
			broken = i
			break
		}
		off := headerSize
		segSeq := firstSeq - 1
		for off < len(data) {
			r, n, err := decodeFrame(data[off:])
			if err != nil {
				// Torn tail or bit rot: the log ends at the last valid
				// record. Repair cuts the garbage off the file so the next
				// writer's segments stay unambiguous.
				rec.TornBytes += len(data) - off
				if repair {
					if truncErr := os.Truncate(path, int64(off)); truncErr != nil {
						return nil, fmt.Errorf("store: repair %s: %w", path, truncErr)
					}
				}
				if i+1 < len(segs) {
					broken = i + 1
				}
				seq = segSeq
				break scan
			}
			segSeq++
			sawRecord = true
			lastKind = r.Kind
			if segSeq > rec.SnapshotSeq {
				body := make([]byte, len(r.Body))
				copy(body, r.Body)
				rec.Records = append(rec.Records, Record{Kind: r.Kind, Body: body})
			}
			off += n
		}
		seq = segSeq
	}

	if broken >= 0 && repair {
		for _, path := range segs[broken:] {
			if err := os.Rename(path, path+".orphaned"); err != nil {
				return nil, fmt.Errorf("store: set aside %s: %w", path, err)
			}
		}
	}

	if seq < rec.SnapshotSeq {
		// The journal tail is older than the snapshot (its segments were
		// pruned); the snapshot's position is the log's true head.
		seq = rec.SnapshotSeq
	}
	rec.LastSeq = seq
	rec.Sealed = sawRecord && lastKind == KindSeal
	return rec, nil
}
