package protocol

import (
	"fmt"
	"sort"
	"time"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// Outcome classifies how a reward-table negotiation round ended.
type Outcome int

// Outcomes.
const (
	// OutcomeContinue means another round follows with an improved table.
	OutcomeContinue Outcome = iota + 1
	// OutcomeConverged means the predicted overuse is at most the allowed
	// overuse — the paper's condition (1).
	OutcomeConverged
	// OutcomeCeiling means the reward step fell to Epsilon with the table at
	// (or asymptotically near) max_reward — the paper's condition (2). The
	// saturated table is always announced before the session ends, so the
	// final bids were made against the best offer the UA can make.
	OutcomeCeiling
	// OutcomeMaxRounds means the safety bound on rounds was hit.
	OutcomeMaxRounds
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeContinue:
		return "continue"
	case OutcomeConverged:
		return "converged"
	case OutcomeCeiling:
		return "reward ceiling reached"
	case OutcomeMaxRounds:
		return "max rounds reached"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Terminal reports whether the outcome ends the session.
func (o Outcome) Terminal() bool { return o != OutcomeContinue }

// RoundRecord captures one completed round for tracing and verification —
// the data behind Figures 6-9.
type RoundRecord struct {
	Round        int
	Table        Table              // table announced this round
	Bids         map[string]float64 // cut-down bids received this round
	Responses    int
	OveruseKWh   float64 // predicted overuse after merging bids
	OveruseRatio float64
	MaxDelta     float64 // largest reward increase when advancing the table
	BetaUsed     float64 // effective beta for the table update (adaptive runs)
	Outcome      Outcome
	// Elapsed is the wall-clock time from the round's announcement to its
	// close — the per-round latency fed to the observability histograms.
	// Zero when the round closed without ever being announced.
	Elapsed time.Duration
}

// RTSession is the Utility Agent's state machine for one negotiation using
// the announce-reward-tables method (Section 3.2.3). It is not safe for
// concurrent use; the owning agent goroutine drives it.
type RTSession struct {
	id        string
	window    units.Interval
	params    Params
	normalUse units.Energy

	loads     map[string]CustomerLoad
	table     Table
	round     int
	bids      map[string]float64
	history   []RoundRecord
	outcome   Outcome
	closed    bool
	betaScale float64 // adaptive-beta multiplier (Section 7 extension)

	announcedAt time.Time // when the current round's table went out
}

// NewRTSession starts a reward-table negotiation. initial is the round-1
// table; loads maps every addressed customer to the UA's model of it.
func NewRTSession(id string, window units.Interval, p Params, initial Table, loads map[string]CustomerLoad, normalUse units.Energy) (*RTSession, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadParams)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(initial.Entries) == 0 {
		return nil, fmt.Errorf("%w: empty initial table", ErrBadTable)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: no customers", ErrBadParams)
	}
	ls := make(map[string]CustomerLoad, len(loads))
	for name, l := range loads {
		l.CutDown = 0
		l.Responded = false
		ls[name] = l
	}
	return &RTSession{
		id:        id,
		window:    window,
		params:    p,
		normalUse: normalUse,
		loads:     ls,
		table:     initial.Clone(),
		round:     1,
		bids:      make(map[string]float64),
		betaScale: 1,
	}, nil
}

// ID returns the session identifier.
func (s *RTSession) ID() string { return s.id }

// Round returns the current round number (1-based).
func (s *RTSession) Round() int { return s.round }

// Table returns a copy of the current reward table.
func (s *RTSession) Table() Table { return s.table.Clone() }

// Window returns the negotiation window.
func (s *RTSession) Window() units.Interval { return s.window }

// Closed reports whether the session has terminated.
func (s *RTSession) Closed() bool { return s.closed }

// FinalOutcome returns the terminal outcome (zero before termination).
func (s *RTSession) FinalOutcome() Outcome { return s.outcome }

// History returns the completed round records.
func (s *RTSession) History() []RoundRecord {
	return append([]RoundRecord(nil), s.history...)
}

// Announce returns the wire form of the current round's table and starts
// the round's latency clock.
func (s *RTSession) Announce() (message.RewardTable, error) {
	if s.closed {
		return message.RewardTable{}, ErrSessionClosed
	}
	s.announcedAt = time.Now() //gridlint:allow walltime(round latency clock start; Elapsed is measurement, never negotiated state)
	return s.table.Message(s.window, s.round), nil
}

// RecordBid validates and stores a customer's cut-down bid for the current
// round. The monotonic concession protocol requires the bid to be "a new bid
// or the same bid again" — the cut-down may never decrease across rounds —
// and the level must appear in the announced table.
func (s *RTSession) RecordBid(customer string, bid message.CutDownBid) error {
	if s.closed {
		return ErrSessionClosed
	}
	load, ok := s.loads[customer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCustomer, customer)
	}
	if bid.Round != s.round {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongRound, bid.Round, s.round)
	}
	if err := bid.Validate(); err != nil {
		return err
	}
	if !s.params.ContinuousBids {
		if _, ok := s.table.RewardFor(bid.CutDown); !ok {
			return fmt.Errorf("%w: cut-down %v not in announced table", ErrBadTable, bid.CutDown)
		}
	}
	if bid.CutDown < load.CutDown {
		return fmt.Errorf("%w: %q bid %v after %v", ErrNonMonotonicBid, customer, bid.CutDown, load.CutDown)
	}
	s.bids[customer] = bid.CutDown
	return nil
}

// ResponseCount returns how many customers have bid this round.
func (s *RTSession) ResponseCount() int { return len(s.bids) }

// QuorumReached reports whether the "acceptable number of bids" has been
// collected (all customers when MinResponses is 0).
func (s *RTSession) QuorumReached() bool {
	need := s.params.MinResponses
	if need <= 0 || need > len(s.loads) {
		need = len(s.loads)
	}
	return len(s.bids) >= need
}

// CloseRound merges the round's bids into the customer models, predicts the
// new balance and applies the termination rules. It returns the completed
// round record; when record.Outcome is terminal the session is closed.
func (s *RTSession) CloseRound() (RoundRecord, error) {
	if s.closed {
		return RoundRecord{}, ErrSessionClosed
	}
	for customer, cd := range s.bids {
		load := s.loads[customer]
		load.CutDown = cd
		load.Responded = true
		s.loads[customer] = load
	}
	rec := RoundRecord{
		Round:     s.round,
		Table:     s.table.Clone(),
		Bids:      s.bids,
		Responses: len(s.bids),
	}
	if !s.announcedAt.IsZero() {
		rec.Elapsed = time.Since(s.announcedAt) //gridlint:allow walltime(round latency measurement for RoundRecord.Elapsed; never feeds negotiated state)
		s.announcedAt = time.Time{}
	}
	s.bids = make(map[string]float64)

	rec.OveruseKWh = PredictedOveruse(s.loads, s.normalUse)
	rec.OveruseRatio = OveruseRatio(s.loads, s.normalUse)

	effective := s.params
	effective.Beta *= s.betaScale
	rec.BetaUsed = effective.Beta
	next, maxDelta := s.table.Update(rec.OveruseRatio, effective)
	rec.MaxDelta = maxDelta

	// Section 7 extension: scale beta up when the round made little
	// progress on the overuse.
	if s.params.AdaptiveBeta && len(s.history) > 0 {
		prev := s.history[len(s.history)-1].OveruseKWh
		if prev > 0 {
			reduction := (prev - rec.OveruseKWh) / prev
			if reduction < s.params.adaptThreshold() {
				s.betaScale *= s.params.adaptFactor()
				if s.betaScale > maxBetaScale {
					s.betaScale = maxBetaScale
				}
			}
		}
	}

	switch {
	case rec.OveruseRatio <= s.params.AllowedOveruseRatio:
		rec.Outcome = OutcomeConverged
	case maxDelta <= s.params.Epsilon:
		// The table could not improve by more than Epsilon — it has reached
		// (or can no longer meaningfully approach) max_reward. Note the
		// ceiling table itself was announced and bid on before this fires: a
		// jump straight to the ceiling still gets one more round, so
		// customers always see the best offer the UA will ever make. An
		// urgent re-negotiation over a small residual capacity relies on
		// this — its first update typically saturates the table.
		rec.Outcome = OutcomeCeiling
	case s.round >= s.params.maxRounds():
		rec.Outcome = OutcomeMaxRounds
	default:
		rec.Outcome = OutcomeContinue
	}

	s.history = append(s.history, rec)
	if rec.Outcome.Terminal() {
		s.closed = true
		s.outcome = rec.Outcome
	} else {
		s.table = next
		s.round++
	}
	return rec, nil
}

// AwardFor returns the award message for one customer at session end: the
// cut-down it last bid and the reward the final table pays for it.
func (s *RTSession) AwardFor(customer string) (message.Award, error) {
	if !s.closed {
		return message.Award{}, fmt.Errorf("protocol: session %q still open", s.id)
	}
	load, ok := s.loads[customer]
	if !ok {
		return message.Award{}, fmt.Errorf("%w: %q", ErrUnknownCustomer, customer)
	}
	reward, ok := s.table.RewardFor(load.CutDown)
	if !ok {
		if s.params.ContinuousBids {
			reward = s.table.InterpolatedReward(load.CutDown)
		} else {
			reward = 0
		}
	}
	return message.Award{Round: s.round, CutDown: load.CutDown, Reward: reward}, nil
}

// Awards returns the award for every responding customer, sorted by name.
func (s *RTSession) Awards() ([]CustomerAward, error) {
	if !s.closed {
		return nil, fmt.Errorf("protocol: session %q still open", s.id)
	}
	names := make([]string, 0, len(s.loads))
	for n, l := range s.loads {
		if l.Responded {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]CustomerAward, 0, len(names))
	for _, n := range names {
		a, err := s.AwardFor(n)
		if err != nil {
			return nil, err
		}
		out = append(out, CustomerAward{Customer: n, Award: a})
	}
	return out, nil
}

// CustomerAward pairs a customer with its award.
type CustomerAward struct {
	Customer string
	Award    message.Award
}

// TotalRewardPaid sums the rewards of all awards — the UA's cost of the
// negotiation, used by experiment E6.
func TotalRewardPaid(awards []CustomerAward) float64 {
	total := 0.0
	for _, a := range awards {
		total += a.Award.Reward
	}
	return total
}

// LoadOf exposes the UA's current model of a customer (for tracing).
func (s *RTSession) LoadOf(customer string) (CustomerLoad, bool) {
	l, ok := s.loads[customer]
	return l, ok
}

// Customers returns the customer names in the session, sorted.
func (s *RTSession) Customers() []string {
	out := make([]string, 0, len(s.loads))
	for n := range s.loads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
