// Fixture: blocking sends and conn writes under a held mutex lockedsend
// must flag.
package flag

import (
	"net"
	"sync"
)

type svc struct {
	mu sync.Mutex
	ch chan int
}

func (s *svc) direct(v int) {
	s.mu.Lock()
	s.ch <- v // want `blocking channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *svc) deferred(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `blocking channel send while s\.mu is held`
}

func (s *svc) insideBranch(v int, b bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b {
		s.ch <- v // want `blocking channel send while s\.mu is held`
	}
}

func (s *svc) selectNoDefault(v int, done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // want `blocking select send while s\.mu is held`
	case <-done:
	}
}

func (s *svc) connWrite(c net.Conn, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Write(b) // want `net\.Conn Write while s\.mu is held`
	return err
}

type rw struct {
	mu sync.RWMutex
	ch chan int
}

func (r *rw) underReadLock(v int) {
	r.mu.RLock()
	r.ch <- v // want `blocking channel send while r\.mu is held`
	r.mu.RUnlock()
}

// The escape hatch: a reviewed dedicated writer gate.
func (s *svc) writerGate(c net.Conn, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Write(b) //gridlint:allow lockedsend(fixture: dedicated writer gate, encode happens outside)
	return err
}
