// Package world simulates the External World of the paper: weather
// conditions and domestic electricity consumption. The Utility Agent's world
// interaction management task acquires "(1) general information about the
// external world itself, for example weather conditions, and (2) information
// about electricity consumption" (Section 5.1.4); this package is the source
// of both.
//
// The paper's prototype consumed Swedish utility field data, which is not
// available; the substitution (see DESIGN.md) is a deterministic, seedable
// simulator of domestic demand that reproduces the canonical two-peak daily
// demand curve of Figure 1. Every stochastic choice flows from an injected
// seed, so experiments are reproducible bit-for-bit.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Weather describes the conditions the Utility Agent acquires from the
// external world at a given instant.
type Weather struct {
	At time.Time
	// TemperatureC is the outdoor temperature in degrees Celsius.
	TemperatureC float64
	// CloudCover in [0,1] drives lighting demand.
	CloudCover float64
	// WindSpeedMS in m/s increases heat loss (wind chill on buildings).
	WindSpeedMS float64
}

// WeatherModel generates deterministic weather for a Nordic-style climate:
// cold winters, mild summers, a diurnal temperature swing, and weather
// "fronts" that evolve slowly day to day.
type WeatherModel struct {
	seed int64
	// MeanAnnualC is the annual mean temperature.
	MeanAnnualC float64
	// SeasonalSwingC is the summer/winter amplitude.
	SeasonalSwingC float64
	// DiurnalSwingC is the day/night amplitude.
	DiurnalSwingC float64
}

// NewWeatherModel returns a weather model with Karlskrona-like defaults.
func NewWeatherModel(seed int64) *WeatherModel {
	return &WeatherModel{
		seed:           seed,
		MeanAnnualC:    7.5,
		SeasonalSwingC: 10,
		DiurnalSwingC:  4,
	}
}

// At returns the weather at an instant. The same instant always yields the
// same weather for the same seed.
func (m *WeatherModel) At(t time.Time) Weather {
	yearFrac := float64(t.YearDay()-1) / 365
	hourFrac := (float64(t.Hour()) + float64(t.Minute())/60) / 24

	// Coldest around mid-January (yearFrac ~ 0.04), warmest mid-July.
	seasonal := -m.SeasonalSwingC * math.Cos(2*math.Pi*(yearFrac-0.04))
	// Coldest just before dawn (~05:00), warmest mid-afternoon (~15:00).
	diurnal := -m.DiurnalSwingC * math.Cos(2*math.Pi*(hourFrac-5.0/24)*24/20)

	dayRng := m.dayRand(t)
	front := dayRng.NormFloat64() * 3 // day-scale weather front
	cloud := clamp01(0.5 + 0.4*dayRng.NormFloat64())
	wind := math.Abs(dayRng.NormFloat64()) * 4

	return Weather{
		At:           t,
		TemperatureC: m.MeanAnnualC + seasonal + diurnal + front,
		CloudCover:   cloud,
		WindSpeedMS:  wind,
	}
}

// dayRand returns the deterministic per-day random source.
func (m *WeatherModel) dayRand(t time.Time) *rand.Rand {
	y, mo, d := t.Date()
	dayKey := int64(y)*10000 + int64(mo)*100 + int64(d)
	return rand.New(rand.NewSource(m.seed ^ dayKey*0x9E3779B9))
}

// HeatingDegree returns the heating demand driver: how far the effective
// (wind-chilled) temperature sits below the 17 °C heating threshold, in
// degrees, floored at zero.
func (w Weather) HeatingDegree() float64 {
	effective := w.TemperatureC - 0.3*w.WindSpeedMS
	const threshold = 17
	if effective >= threshold {
		return 0
	}
	return threshold - effective
}

// String renders the weather compactly.
func (w Weather) String() string {
	return fmt.Sprintf("%.1f°C cloud=%.2f wind=%.1fm/s", w.TemperatureC, w.CloudCover, w.WindSpeedMS)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
