package market

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"loadbalance/internal/units"
)

func TestNewDemandValidation(t *testing.T) {
	tests := []struct {
		name     string
		customer string
		segments []DemandSegment
	}{
		{name: "empty customer", segments: []DemandSegment{{Energy: 1, Value: 1}}},
		{name: "no segments", customer: "c"},
		{name: "zero energy", customer: "c", segments: []DemandSegment{{Energy: 0, Value: 1}}},
		{name: "negative value", customer: "c", segments: []DemandSegment{{Energy: 1, Value: -1}}},
		{name: "nan value", customer: "c", segments: []DemandSegment{{Energy: 1, Value: math.NaN()}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewDemand(tt.customer, tt.segments); !errors.Is(err, ErrBadDemand) {
				t.Fatalf("error = %v, want ErrBadDemand", err)
			}
		})
	}
}

func TestDemandAtIsMonotoneStep(t *testing.T) {
	d, err := NewDemand("c", []DemandSegment{
		{Energy: 5, Value: 10}, // essential
		{Energy: 3, Value: 2},  // comfort
		{Energy: 2, Value: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		price float64
		want  float64
	}{
		{0, 10},
		{0.5, 10}, // value >= price keeps the 0.5 segment
		{0.51, 8},
		{2, 8},
		{2.1, 5},
		{10, 5},
		{10.1, 0},
	}
	for _, tt := range tests {
		if got := d.At(tt.price); !units.NearlyEqual(got.KWhs(), tt.want, 1e-12) {
			t.Fatalf("At(%v) = %v, want %v", tt.price, got, tt.want)
		}
	}
	if got := d.Total(); got != 10 {
		t.Fatalf("Total = %v", got)
	}
}

func TestFromComfortCosts(t *testing.T) {
	d, err := FromComfortCosts("c", 10, []DemandSegment{
		{Energy: 4, Value: 1}, // sheddable at comfort cost 1/kWh
		{Energy: 2, Value: 3},
	}, 1.0 /* base price */, 100 /* essential value */)
	if err != nil {
		t.Fatal(err)
	}
	// Essential 4 kWh at value 100; sheddables valued base+comfort.
	if got := d.At(150); got != 0 {
		t.Fatalf("demand above essential value = %v", got)
	}
	if got := d.At(50); got != 4 {
		t.Fatalf("essential-only demand = %v, want 4", got)
	}
	if got := d.At(3.5); got != 6 {
		t.Fatalf("demand at 3.5 = %v, want 6 (essential + costly tranche)", got)
	}
	if got := d.At(1.5); got != 10 {
		t.Fatalf("demand at 1.5 = %v, want all 10", got)
	}
	if _, err := FromComfortCosts("c", 3, []DemandSegment{{Energy: 5, Value: 1}}, 1, 100); !errors.Is(err, ErrBadDemand) {
		t.Fatal("sheddable above total should fail")
	}
}

func fleetDemands(t *testing.T) []Demand {
	t.Helper()
	var out []Demand
	for i := 0; i < 10; i++ {
		comfort := 0.5 + float64(i)*0.3
		d, err := FromComfortCosts(
			string(rune('a'+i)), 13.5,
			[]DemandSegment{{Energy: 5.4, Value: comfort}}, // 40% flexible
			1.0, 1000,
		)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestClearFindsPriceThatFitsCapacity(t *testing.T) {
	demands := fleetDemands(t)
	clearing, err := Auctioneer{}.Clear(demands, 100) // total demand 135
	if err != nil {
		t.Fatal(err)
	}
	if clearing.TotalDemand.KWhs() > 100+1e-6 {
		t.Fatalf("cleared demand %v exceeds capacity", clearing.TotalDemand)
	}
	if clearing.Price <= 1 {
		t.Fatalf("price %v should exceed the base price under scarcity", clearing.Price)
	}
	if clearing.Shed <= 0 {
		t.Fatal("scarcity must shed something")
	}
	// Cheapest-comfort customers shed first: customer a (comfort 0.5) must
	// be shed before customer j (comfort 3.2).
	if clearing.Allocations["a"] >= clearing.Allocations["j"] {
		t.Fatalf("allocations: a=%v j=%v; cheap flexibility should shed first",
			clearing.Allocations["a"], clearing.Allocations["j"])
	}
	if clearing.OveruseRatio() > 1e-6 {
		t.Fatalf("overuse ratio = %v, want <= 0", clearing.OveruseRatio())
	}
}

func TestClearNoScarcity(t *testing.T) {
	demands := fleetDemands(t)
	clearing, err := Auctioneer{}.Clear(demands, 200)
	if err != nil {
		t.Fatal(err)
	}
	if clearing.Price != 0 {
		t.Fatalf("price = %v, want 0 without scarcity", clearing.Price)
	}
	if clearing.TotalDemand != 135 {
		t.Fatalf("demand = %v, want everything", clearing.TotalDemand)
	}
	if clearing.Shed != 0 {
		t.Fatalf("shed = %v, want 0", clearing.Shed)
	}
}

func TestClearValidation(t *testing.T) {
	if _, err := (Auctioneer{}).Clear(nil, 100); !errors.Is(err, ErrNoAgents) {
		t.Fatal("no agents should fail")
	}
	demands := fleetDemands(t)
	if _, err := (Auctioneer{}).Clear(demands, 0); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("zero capacity should fail")
	}
}

func TestClearInelasticDemandFails(t *testing.T) {
	// All load essential at an effectively infinite value: no price clears.
	d, err := NewDemand("c", []DemandSegment{{Energy: 10, Value: math.MaxFloat64 / 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Auctioneer{MaxIterations: 16}).Clear([]Demand{d}, 5); !errors.Is(err, ErrNoClearing) {
		t.Fatalf("error = %v, want ErrNoClearing", err)
	}
}

func TestConsumerSurplus(t *testing.T) {
	d, err := NewDemand("c", []DemandSegment{
		{Energy: 2, Value: 10},
		{Energy: 3, Value: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Clearing{Price: 5}
	// Only the value-10 segment consumes: surplus (10-5)×2 = 10.
	if got := c.ConsumerSurplus([]Demand{d}); !units.NearlyEqual(got, 10, 1e-9) {
		t.Fatalf("surplus = %v, want 10", got)
	}
}

// Property: clearing never over-allocates and a higher capacity never raises
// the price.
func TestClearProperties(t *testing.T) {
	f := func(capRaw uint8, seed uint8) bool {
		capacity := units.Energy(60 + float64(capRaw%80))
		var demands []Demand
		for i := 0; i < 8; i++ {
			comfort := 0.2 + float64((int(seed)+i*13)%30)/10
			d, err := FromComfortCosts(
				string(rune('a'+i)), 13.5,
				[]DemandSegment{{Energy: 6, Value: comfort}},
				1.0, 1000,
			)
			if err != nil {
				return false
			}
			demands = append(demands, d)
		}
		c1, err := Auctioneer{}.Clear(demands, capacity)
		if err != nil {
			return false
		}
		if c1.TotalDemand.KWhs() > capacity.KWhs()+1e-6 {
			return false
		}
		c2, err := Auctioneer{}.Clear(demands, capacity+20)
		if err != nil {
			return false
		}
		return c2.Price <= c1.Price+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
