package lint

import "regexp"

// replayRestoreFuncs matches the telemetry functions that form the
// replay/restore surface: crash recovery (OpenDurable), standby replay
// (OpenStandby, Promote, the shared applySnapshotState/applyJournalRecord/
// finishReplay helpers), and the Restore*/SkipTicks state re-seeding
// entry points they call.
var replayRestoreFuncs = regexp.MustCompile(
	`(?i)^(Restore.*|Replay.*|Recover.*|SkipTicks|applySnapshotState|applyJournalRecord|finishReplay|OpenDurable|OpenStandby|Promote)$`)

// DefaultWalltimeConfig scopes walltime to this repo's deterministic
// replay surface.
func DefaultWalltimeConfig() WalltimeConfig {
	return WalltimeConfig{
		ForbiddenPkgs: []string{
			"internal/protocol",
			"internal/core",
			"internal/cluster",
			"internal/utilityagent",
		},
		RestrictedFuncs: map[string]*regexp.Regexp{
			"internal/telemetry": replayRestoreFuncs,
		},
	}
}

// DefaultAnalyzers returns the gridlint suite with repo-default scopes.
// Order is the order findings list analyzers in -list output; findings
// themselves sort by position.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		FloatMapRange(),
		Walltime(DefaultWalltimeConfig()),
		GlobalRand(),
		StructuredLog(),
		LockedSend(),
	}
}
