package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"loadbalance/internal/obsplane"
	"loadbalance/internal/trace"
)

// fleetRun is one full distributed deployment streamed onto a single obs
// hub: the serve daemon (hub host) plus exec'd concentrator workers and an
// exec'd hot standby, all pointed at -obs. The serve daemon lingers after
// the session so tests can scrape the merged /fleet view once every process
// has flushed its final spans.
type fleetRun struct {
	addrs   serveAddrs
	procs   []string // every fleet proc label expected on the hub
	release func(t *testing.T)
}

// startFleet boots the deployment and blocks until the negotiation is done,
// every worker and the standby have exited (final obs batches flushed), and
// the hub has merged their Closing marks. The returned release func ends
// the serve daemon's linger window.
func startFleet(t *testing.T, customers, shards int, base string) *fleetRun {
	t.Helper()
	dirP := filepath.Join(base, "primary")
	dirS := filepath.Join(base, "standby")
	if err := os.MkdirAll(dirP, 0o755); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	linger := make(chan struct{})
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			rootAddr:    "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			obsAddr:     "127.0.0.1:0",
			customers:   customers,
			shards:      shards,
			timeout:     60 * time.Second,
			dataDir:     dirP,
			replAddr:    "127.0.0.1:0",
			linger:      linger,
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	if addrs.obs == "" {
		t.Fatal("serve bound no obs hub address")
	}
	replAddr := waitReplAddr(t, dirP, 30*time.Second)

	// Hot standby: a separate OS process tailing the journal and streaming
	// its own observability state (proc gridd-live-r0) to the hub.
	standby := exec.Command(os.Args[0],
		"-serve", "127.0.0.1:0", "-live",
		"-customers", "16", "-shards", "4",
		"-tick", "50ms", "-seed", "1",
		"-data-dir", dirS,
		"-replica-of", replAddr, "-replica-id", "r0",
		"-failover-timeout", "60s",
		"-trace", "-trace-ring", "16384",
		"-obs", addrs.obs,
	)
	standby.Env = append(os.Environ(), "GRIDD_HELPER=1")
	standby.Stdout = os.Stdout
	standby.Stderr = os.Stderr
	if err := standby.Start(); err != nil {
		t.Fatalf("standby: %v", err)
	}

	// Concentrator workers: separate OS processes, each streaming spans and
	// logs to the hub instead of dumping rings to files.
	workers := make([]*exec.Cmd, shards)
	for i := range workers {
		cmd := exec.Command(os.Args[0],
			"-role", "concentrator",
			"-up", addrs.root,
			"-down", addrs.member,
			"-shard", strconv.Itoa(i),
			"-shards", strconv.Itoa(shards),
			"-customers", strconv.Itoa(customers),
			"-trace", "-trace-ring", "16384",
			"-obs", addrs.obs,
		)
		cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = cmd
	}
	t.Cleanup(func() {
		for _, w := range workers {
			if w.Process != nil {
				_ = w.Process.Kill()
			}
		}
		if standby.Process != nil {
			_ = standby.Process.Kill()
		}
	})

	var wg sync.WaitGroup
	clientErrs := make([]error, customers)
	for i := 0; i < customers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addrs.member, fmt.Sprintf("c%02d", i+1), int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	for i, w := range workers {
		done := make(chan error, 1)
		go func(w *exec.Cmd) { done <- w.Wait() }(w)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exited: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			_ = w.Process.Kill()
			t.Errorf("worker %d never exited", i)
		}
	}
	// The sealed journal reaches the standby, which exits cleanly — its
	// deferred emitter Close ships the final Closing batch first.
	standbyDone := make(chan error, 1)
	go func() { standbyDone <- standby.Wait() }()
	select {
	case err := <-standbyDone:
		if err != nil {
			t.Errorf("standby exited: %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = standby.Process.Kill()
		t.Error("standby never saw the sealed journal")
	}

	run := &fleetRun{addrs: addrs}
	for i := 0; i < shards; i++ {
		run.procs = append(run.procs, fmt.Sprintf("gridd-cc-%03d", i))
	}
	run.procs = append(run.procs, "gridd-live-r0")

	// Wait for the hub to merge every process's Closing batch: only then is
	// the /fleet view complete.
	waitDeadline := time.Now().Add(15 * time.Second)
	for {
		var status struct {
			Procs []obsplane.ProcStatus `json:"procs"`
		}
		fleetGetJSON(t, run.addrs.metrics, "/fleet/status", &status)
		closed := map[string]bool{}
		for _, p := range status.Procs {
			if p.Closed {
				closed[p.Proc] = true
			}
		}
		allClosed := true
		for _, want := range run.procs {
			if !closed[want] {
				allClosed = false
			}
		}
		if allClosed {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("fleet procs never all closed on the hub: %+v", status.Procs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	released := false
	run.release = func(t *testing.T) {
		if released {
			return
		}
		released = true
		close(linger)
		select {
		case err := <-serverErr:
			if err != nil {
				t.Fatalf("server: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("server never finished after linger release")
		}
	}
	return run
}

// fleetGetJSON fetches one /fleet document from the serve daemon's metrics
// endpoint.
func fleetGetJSON(t *testing.T, addr, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// TestFleetStitchedTrace is the fleet observability acceptance run: the full
// distributed deployment — root tier, four concentrator worker processes,
// eight TCP customers and a hot standby — streams spans to the root's obs
// hub, and the root's /fleet/trace endpoint alone must serve exactly one
// stitched session trace with every parent resolving and spans from all six
// processes, no in-test ring merging.
func TestFleetStitchedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	trace.Disable()
	t.Cleanup(trace.Disable)
	trace.Enable("gridd-fleet", 16384)

	const (
		customers = 8
		shards    = 4
	)
	run := startFleet(t, customers, shards, t.TempDir())

	// The full merged view spans all six processes: the serve daemon and
	// its in-process customers (the local "gridd-fleet" ring the hub folds
	// in), the four streamed workers, and the streamed standby.
	var full obsplane.FleetTraceDoc
	fleetGetJSON(t, run.addrs.metrics, "/fleet/trace", &full)
	wantProcs := append([]string{"gridd-fleet"}, run.procs...)
	got := map[string]bool{}
	for _, p := range full.Procs {
		got[p] = true
	}
	for _, want := range wantProcs {
		if !got[want] {
			t.Errorf("/fleet/trace procs %v missing %q", full.Procs, want)
		}
	}
	if len(full.Procs) != len(wantProcs) {
		t.Errorf("/fleet/trace spans %d processes (%v), want %d", len(full.Procs), full.Procs, len(wantProcs))
	}
	var gotApply bool
	for _, r := range full.Spans {
		if r.Name == "replication.apply" && r.Proc == "gridd-live-r0" {
			gotApply = true
		}
	}
	if !gotApply {
		t.Error("standby streamed no replication.apply span to the hub")
	}

	// The session-filtered view stitches into exactly one tree: one trace
	// id, one root, every parent resolving inside the document, spanning
	// the daemon-side ring and all four workers.
	var doc obsplane.FleetTraceDoc
	fleetGetJSON(t, run.addrs.metrics, "/fleet/trace?session=gridd", &doc)
	byTrace := make(map[string][]trace.Record)
	for _, r := range doc.Spans {
		if r.Session != "gridd" {
			t.Fatalf("session filter leaked span %+v", r)
		}
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	if len(byTrace) != 1 {
		t.Fatalf("got %d session traces, want exactly 1 tree for the gridd session", len(byTrace))
	}
	for id, recs := range byTrace {
		spanSet := make(map[string]bool, len(recs))
		for _, r := range recs {
			spanSet[r.Span] = true
		}
		roots := 0
		procs := make(map[string]bool)
		for _, r := range recs {
			procs[r.Proc] = true
			if r.Parent == "" {
				roots++
			} else if !spanSet[r.Parent] {
				t.Errorf("trace %s: span %s (%s in %s) has parent %s served by no process", id, r.Span, r.Name, r.Proc, r.Parent)
			}
		}
		if roots != 1 {
			t.Errorf("trace %s stitches into %d roots, want 1", id, roots)
		}
		if len(procs) != shards+1 {
			t.Errorf("trace %s spans %d processes (%v), want %d", id, len(procs), procKeys(procs), shards+1)
		}
	}

	// The status rows carry the fleet identities and their clean closes.
	var status struct {
		Procs []obsplane.ProcStatus `json:"procs"`
	}
	fleetGetJSON(t, run.addrs.metrics, "/fleet/status", &status)
	roles := map[string]string{}
	for _, p := range status.Procs {
		roles[p.Proc] = p.Role
	}
	for i := 0; i < shards; i++ {
		if r := roles[fmt.Sprintf("gridd-cc-%03d", i)]; r != "worker" {
			t.Errorf("worker %d role = %q, want worker", i, r)
		}
	}
	if roles["gridd-live-r0"] != "standby" {
		t.Errorf("standby role = %q, want standby", roles["gridd-live-r0"])
	}

	run.release(t)
}

// TestFleetDrill is the CI fleet drill: a smaller deployment — root, two
// TCP workers, a standby — checked on the merged /fleet/logs and
// /fleet/metrics surfaces. GRIDD_FLEET_DIR points at a directory CI uploads
// on failure; the drill dumps the fleet view there when it goes red.
func TestFleetDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	trace.Disable()
	t.Cleanup(trace.Disable)
	trace.Enable("gridd-fleet", 16384)

	base := os.Getenv("GRIDD_FLEET_DIR")
	if base == "" {
		base = t.TempDir()
	} else if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatalf("GRIDD_FLEET_DIR: %v", err)
	}
	run := startFleet(t, 4, 2, base)
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for _, path := range []string{"/fleet/status", "/fleet/logs", "/fleet/trace"} {
			resp, err := http.Get("http://" + run.addrs.metrics + path)
			if err != nil {
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			name := strings.ReplaceAll(strings.TrimPrefix(path, "/"), "/", "-") + ".json"
			_ = os.WriteFile(filepath.Join(base, name), body, 0o644)
		}
	})

	// Merged logs: every streamed process present, events from more than
	// one process in one document, level filter narrowing it.
	var logs obsplane.FleetLogsDoc
	fleetGetJSON(t, run.addrs.metrics, "/fleet/logs", &logs)
	for _, want := range run.procs {
		found := false
		for _, p := range logs.Procs {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("/fleet/logs procs %v missing %q", logs.Procs, want)
		}
	}
	eventProcs := map[string]bool{}
	for _, ev := range logs.Events {
		eventProcs[ev.Proc] = true
	}
	if len(eventProcs) < 2 {
		t.Errorf("/fleet/logs merged events from %d processes (%v), want >= 2", len(eventProcs), procKeys(eventProcs))
	}
	fleetGetJSON(t, run.addrs.metrics, "/fleet/logs?level=warn", &logs)
	for _, ev := range logs.Events {
		if ev.Level != "warn" && ev.Level != "error" {
			t.Errorf("level filter leaked %+v", ev)
		}
	}

	// Stitched trace: the session tree crosses the daemon ring and both
	// workers.
	var doc obsplane.FleetTraceDoc
	fleetGetJSON(t, run.addrs.metrics, "/fleet/trace?session=gridd", &doc)
	procs := map[string]bool{}
	spanSet := map[string]bool{}
	for _, r := range doc.Spans {
		procs[r.Proc] = true
		spanSet[r.Span] = true
	}
	for _, r := range doc.Spans {
		if r.Parent != "" && !spanSet[r.Parent] {
			t.Errorf("span %s (%s in %s) has unresolved parent %s", r.Span, r.Name, r.Proc, r.Parent)
		}
	}
	if len(procs) != 3 {
		t.Errorf("session trace spans %d processes (%v), want 3", len(procs), procKeys(procs))
	}

	// The fleet metrics page serves the hub summary and relayed, relabelled
	// process samples.
	resp, err := http.Get("http://" + run.addrs.metrics + "/fleet/metrics")
	if err != nil {
		t.Fatalf("GET /fleet/metrics: %v", err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Errorf("/fleet/metrics Content-Type = %q", got)
	}
	for _, want := range []string{
		"fleet_procs 3",
		`obs_batches_total{proc="gridd-cc-000"}`,
		`obs_spans_total{proc="gridd-live-r0"}`,
		`log_events_total{proc="gridd-cc-001",level="info"}`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/fleet/metrics missing %q", want)
		}
	}

	run.release(t)
}

// TestSigquitFlightRecorder sends SIGQUIT to a running serve-mode daemon:
// it must dump a flight-recorder bundle under <data-dir>/flightrec/ and
// keep running — the on-demand bundle trigger on roles without an alert
// engine.
func TestSigquitFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0],
		"-serve", "127.0.0.1:0",
		"-customers", "1",
		"-timeout", "60s",
		"-data-dir", dir,
		"-repl-addr", "127.0.0.1:0",
	)
	cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// The repl-addr file publishing means the daemon is fully up (and the
	// SIGQUIT handler installed — that happens before any serving starts).
	waitReplAddr(t, dir, 30*time.Second)
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}

	frDir := filepath.Join(dir, "flightrec")
	deadline := time.Now().Add(10 * time.Second)
	var bundle string
	for bundle == "" {
		entries, err := os.ReadDir(frDir)
		if err == nil {
			for _, e := range entries {
				if e.IsDir() && strings.Contains(e.Name(), "-sigquit-") {
					bundle = filepath.Join(frDir, e.Name())
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no sigquit bundle under %s", frDir)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, f := range []string{"meta.json", "logs.json", "metrics.prom"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	var meta struct {
		Reason string `json:"reason"`
	}
	data, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "sigquit" {
		t.Errorf("bundle reason = %q, want sigquit", meta.Reason)
	}

	// The daemon must still be alive after the dump (signal 0 probes it).
	if err := cmd.Process.Signal(syscall.Signal(0)); err != nil {
		t.Fatalf("daemon died after SIGQUIT: %v", err)
	}
}

// TestWorkerEndpointContentTypes audits the worker role's endpoint parity:
// a concentrator with -metrics serves the same /healthz, /metrics, /logs
// and /trace contract as the server roles.
func TestWorkerEndpointContentTypes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:      "127.0.0.1:0",
			rootAddr:  "127.0.0.1:0",
			customers: 4,
			shards:    2,
			timeout:   30 * time.Second,
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// Both workers in-process; the first one serves HTTP. The daemon waits
	// for customers that never come, so the endpoints stay scrapeable until
	// the context unwinds everything.
	workerReady := make(chan string, 1)
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		opts := concOptions{
			up: addrs.root, down: addrs.member,
			shard: i, shards: 2, customers: 4, session: "gridd",
		}
		var ready chan<- string
		if i == 0 {
			opts.metricsAddr = "127.0.0.1:0"
			opts.history = historyOptions{interval: 50 * time.Millisecond, retention: time.Minute}
			ready = workerReady
		}
		go func(opts concOptions, ready chan<- string) {
			workerErrs <- runConcentrator(ctx, opts, ready)
		}(opts, ready)
	}
	var workerAddr string
	select {
	case workerAddr = <-workerReady:
	case <-time.After(5 * time.Second):
		t.Fatal("worker metrics endpoint never became ready")
	}

	tests := []struct {
		path string
		want string
	}{
		{"/healthz", "application/json"},
		{"/metrics", "text/plain; version=0.0.4"},
		{"/logs", "application/json"},
		{"/trace", "application/json"},
		{"/query?series=tsdb_points", "application/json"},
	}
	for _, tt := range tests {
		resp, err := http.Get("http://" + workerAddr + tt.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tt.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tt.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tt.want {
			t.Errorf("GET %s: Content-Type %q, want %q", tt.path, got, tt.want)
		}
		if tt.path == "/healthz" {
			var doc struct {
				Role  string `json:"role"`
				Shard int    `json:"shard"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("/healthz: %v", err)
			}
			if doc.Role != "worker" || doc.Shard != 0 {
				t.Errorf("/healthz = %s, want role worker shard 0", body)
			}
		}
	}

	// Unwind: cancelled workers and daemon all return nil.
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErrs:
			if err != nil {
				t.Errorf("worker returned %v, want nil on cancellation", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not shut down on cancellation")
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Errorf("server returned %v, want nil on cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on cancellation")
	}
}

// parityDoc mirrors the /query and /fleet/query response document.
type parityDoc struct {
	Series string `json:"series"`
	Points []struct {
		TsUs  int64   `json:"tsUs"`
		Value float64 `json:"value"`
	} `json:"points"`
}

// TestFleetQueryParity is the metrics-history acceptance check: the hub's
// streamed history behind /fleet/query must agree with the worker's locally
// scraped history behind /query on the worker's own negotiation counter
// rate, to within one scrape interval of skew — the fleet view is the local
// view, one hop later.
func TestFleetQueryParity(t *testing.T) {
	const scrape = 50 * time.Millisecond
	hist := historyOptions{interval: scrape, retention: time.Minute}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			rootAddr:    "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			obsAddr:     "127.0.0.1:0",
			customers:   4,
			shards:      2,
			timeout:     60 * time.Second,
			history:     hist,
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// In-process workers as in TestWorkerEndpointContentTypes; the first one
	// serves HTTP with a local history scraper. No customers connect, so the
	// fleet idles while both histories fill.
	workerReady := make(chan string, 1)
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		opts := concOptions{
			up: addrs.root, down: addrs.member,
			shard: i, shards: 2, customers: 4, session: "gridd",
		}
		var ready chan<- string
		if i == 0 {
			opts.metricsAddr = "127.0.0.1:0"
			opts.history = hist
			ready = workerReady
		}
		go func(opts concOptions, ready chan<- string) {
			workerErrs <- runConcentrator(ctx, opts, ready)
		}(opts, ready)
	}
	var workerAddr string
	select {
	case workerAddr = <-workerReady:
	case <-time.After(5 * time.Second):
		t.Fatal("worker metrics endpoint never became ready")
	}

	// Stream the worker's observability state to the hub exactly as the -obs
	// flag wires it: same proc label, same metrics page. The hub stamps each
	// arriving sample into the store behind /fleet/query.
	em := obsplane.StartEmitter(obsplane.EmitterConfig{
		Hub:       addrs.obs,
		Proc:      "gridd-cc-000",
		Role:      "worker",
		Interval:  scrape,
		MetricsFn: writeObsMetrics,
	})
	defer em.Close()

	// Steady negotiation traffic: the session histogram advances at a fixed
	// pace so both stores record the same counter slope.
	driveCtx, stopDrive := context.WithCancel(ctx)
	defer stopDrive()
	go func() {
		h := trace.GetHistogram("negotiation_session_seconds")
		tk := time.NewTicker(5 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-driveCtx.Done():
				return
			case <-tk.C:
				h.Observe(2 * time.Millisecond)
			}
		}
	}()

	queryHistory := func(addr, path, series string) (parityDoc, error) {
		v := url.Values{}
		v.Set("series", series)
		v.Set("from", "-5s")
		v.Set("to", "0s")
		v.Set("step", "1s")
		resp, err := http.Get("http://" + addr + path + "?" + v.Encode())
		if err != nil {
			return parityDoc{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return parityDoc{}, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
		}
		var doc parityDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return parityDoc{}, err
		}
		return doc, nil
	}
	last := func(doc parityDoc) float64 {
		if len(doc.Points) == 0 {
			return 0
		}
		return doc.Points[len(doc.Points)-1].Value
	}

	// Poll until both histories hold enough of the counter to evaluate a
	// positive rate at the latest step, then compare that step. The 2s rate
	// window spans ~40 samples per store at the 50ms cadence.
	localSeries := "rate(negotiation_session_seconds_count[2s])"
	fleetSeries := `rate(negotiation_session_seconds_count{proc="gridd-cc-000"}[2s])`
	var local, fleet parityDoc
	deadline := time.Now().Add(20 * time.Second)
	for {
		l, lerr := queryHistory(workerAddr, "/query", localSeries)
		f, ferr := queryHistory(addrs.metrics, "/fleet/query", fleetSeries)
		if lerr == nil && ferr == nil && last(l) > 0 && last(f) > 0 {
			local, fleet = l, f
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("histories never converged:\nlocal: %+v (%v)\nfleet: %+v (%v)", l, lerr, f, ferr)
		}
		time.Sleep(scrape)
	}

	// Both stores sample the same monotone counter; their windows can be
	// offset by at most one scrape interval at each edge, so the rates must
	// match well inside 20% even with scheduler jitter on top.
	lv, fv := last(local), last(fleet)
	if diff := math.Abs(lv - fv); diff > 0.2*math.Max(lv, fv) {
		t.Fatalf("fleet rate %g diverges from local rate %g (diff %g)", fv, lv, diff)
	}
	if !strings.Contains(local.Series, "negotiation_session_seconds_count") ||
		!strings.Contains(fleet.Series, `proc="gridd-cc-000"`) {
		t.Fatalf("series round-trip: local %q, fleet %q", local.Series, fleet.Series)
	}

	stopDrive()
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErrs:
			if err != nil {
				t.Errorf("worker returned %v, want nil on cancellation", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not shut down on cancellation")
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Errorf("server returned %v, want nil on cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on cancellation")
	}
}

// TestServeEndpointContentTypes audits the serve role's endpoint contract,
// the /fleet surfaces included when the daemon hosts the obs hub.
func TestServeEndpointContentTypes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			obsAddr:     "127.0.0.1:0",
			customers:   4,
			shards:      1,
			timeout:     30 * time.Second,
			history:     historyOptions{interval: 50 * time.Millisecond, retention: time.Minute},
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	tests := []struct {
		path string
		want string
	}{
		{"/healthz", "application/json"},
		{"/metrics", "text/plain; version=0.0.4"},
		{"/logs", "application/json"},
		{"/trace", "application/json"},
		{"/fleet/status", "application/json"},
		{"/fleet/logs", "application/json"},
		{"/fleet/trace", "application/json"},
		{"/fleet/metrics", "text/plain; version=0.0.4"},
		{"/query?series=tsdb_points", "application/json"},
		{"/fleet/query?series=tsdb_points", "application/json"},
	}
	for _, tt := range tests {
		resp, err := http.Get("http://" + addrs.metrics + tt.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tt.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", tt.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tt.want {
			t.Errorf("GET %s: Content-Type %q, want %q", tt.path, got, tt.want)
		}
	}

	cancel()
	select {
	case err := <-serverErr:
		if err != nil {
			t.Errorf("server returned %v, want nil on cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on cancellation")
	}
}
