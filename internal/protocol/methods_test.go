package protocol

import (
	"errors"
	"testing"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

func offerTerms() message.OfferTerms {
	return message.OfferTerms{
		Window:       message.FromInterval(testWindow()),
		XMax:         0.8,
		AllowanceKWh: 13.5,
		LowPrice:     0.5,
		NormalPrice:  1,
		HighPrice:    2,
	}
}

func TestNewOfferSessionValidation(t *testing.T) {
	if _, err := NewOfferSession("", offerTerms(), tenCustomers(), 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("empty id should fail")
	}
	bad := offerTerms()
	bad.XMax = 0
	if _, err := NewOfferSession("s", bad, tenCustomers(), 100); err == nil {
		t.Fatal("invalid terms should fail")
	}
	if _, err := NewOfferSession("s", offerTerms(), nil, 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("no customers should fail")
	}
}

func TestOfferSessionLifecycle(t *testing.T) {
	s, err := NewOfferSession("s", offerTerms(), tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Announce(); err != nil {
		t.Fatal(err)
	}
	// 7 accept, 2 decline, 1 silent.
	accepts := []string{"a", "b", "c", "d", "e", "f", "g"}
	for _, c := range accepts {
		if err := s.RecordReply(c, message.OfferReply{Round: 1, Accept: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []string{"h", "i"} {
		if err := s.RecordReply(c, message.OfferReply{Round: 1, Accept: false}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ResponseCount(); got != 9 {
		t.Fatalf("responses = %d, want 9", got)
	}
	out, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 7 || out.Declined != 2 || out.Silent != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// Accepting customers cap at 0.8×13.5 = 10.8; usage 7×10.8 + 3×13.5 =
	// 116.1 → overuse 16.1.
	if !units.NearlyEqual(out.OveruseKWh, 16.1, 1e-9) {
		t.Fatalf("overuse = %v, want 16.1", out.OveruseKWh)
	}
	if !units.NearlyEqual(out.OveruseRatio, 0.161, 1e-12) {
		t.Fatalf("ratio = %v, want 0.161", out.OveruseRatio)
	}
	// Post-close operations fail.
	if err := s.RecordReply("a", message.OfferReply{Round: 1, Accept: true}); !errors.Is(err, ErrSessionClosed) {
		t.Fatal("reply after close should fail")
	}
	if _, err := s.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Fatal("double close should fail")
	}
}

func TestOfferRecordReplyValidation(t *testing.T) {
	s, err := NewOfferSession("s", offerTerms(), tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordReply("ghost", message.OfferReply{Round: 1, Accept: true}); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatal("unknown customer should fail")
	}
	if err := s.RecordReply("a", message.OfferReply{Round: 0}); err == nil {
		t.Fatal("invalid reply should fail")
	}
	// Changing one's mind before close is allowed.
	if err := s.RecordReply("a", message.OfferReply{Round: 1, Accept: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordReply("a", message.OfferReply{Round: 1, Accept: false}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 0 || out.Declined != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func rfbParams() RFBParams {
	return RFBParams{LowPrice: 0.5, NormalPrice: 1, HighPrice: 2, AllowedOveruseRatio: 0.15}
}

func TestNewRFBSessionValidation(t *testing.T) {
	if _, err := NewRFBSession("", testWindow(), rfbParams(), tenCustomers(), 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("empty id should fail")
	}
	bad := rfbParams()
	bad.LowPrice = 5
	if _, err := NewRFBSession("s", testWindow(), bad, tenCustomers(), 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("bad prices should fail")
	}
	if _, err := NewRFBSession("s", testWindow(), rfbParams(), nil, 100); !errors.Is(err, ErrBadParams) {
		t.Fatal("no customers should fail")
	}
}

func TestRFBMonotonicBids(t *testing.T) {
	p := rfbParams()
	p.AllowedOveruseRatio = 0.0001
	s, err := NewRFBSession("s", testWindow(), p, tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 1, YMinKWh: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	// Round 2: bidding more energy than committed is a regression.
	if err := s.RecordBid("a", message.EnergyBid{Round: 2, YMinKWh: 13}); !errors.Is(err, ErrNonMonotonicBid) {
		t.Fatalf("regressing bid error = %v", err)
	}
	// Stand still and step forward are legal.
	if err := s.RecordBid("a", message.EnergyBid{Round: 2, YMinKWh: 12}); err != nil {
		t.Fatalf("stand still rejected: %v", err)
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 2, YMinKWh: 11}); err != nil {
		t.Fatalf("step forward rejected: %v", err)
	}
	// First bid may not exceed the prediction either.
	if err := s.RecordBid("b", message.EnergyBid{Round: 2, YMinKWh: 14}); !errors.Is(err, ErrNonMonotonicBid) {
		t.Fatalf("bid above prediction error = %v", err)
	}
}

func TestRFBRecordBidValidation(t *testing.T) {
	s, err := NewRFBSession("s", testWindow(), rfbParams(), tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBid("ghost", message.EnergyBid{Round: 1, YMinKWh: 10}); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatal("unknown customer should fail")
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 9, YMinKWh: 10}); !errors.Is(err, ErrWrongRound) {
		t.Fatal("wrong round should fail")
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 1, YMinKWh: -1}); err == nil {
		t.Fatal("negative bid should fail")
	}
}

func TestRFBConvergence(t *testing.T) {
	s, err := NewRFBSession("s", testWindow(), rfbParams(), tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone bids 11 kWh: usage 110, ratio 0.10 ≤ 0.15 → converged.
	for c := range tenCustomers() {
		if err := s.RecordBid(c, message.EnergyBid{Round: 1, YMinKWh: 11}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != RFBConverged {
		t.Fatalf("outcome = %v, want converged", rec.Outcome)
	}
	if !units.NearlyEqual(rec.OveruseKWh, 10, 1e-9) {
		t.Fatalf("overuse = %v, want 10", rec.OveruseKWh)
	}
	if !s.Closed() || s.FinalOutcome() != RFBConverged {
		t.Fatal("session should be closed")
	}
}

func TestRFBStallDetection(t *testing.T) {
	p := rfbParams()
	p.AllowedOveruseRatio = 0.0001
	s, err := NewRFBSession("s", testWindow(), p, tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: everyone steps to 13 kWh. Not enough; continue.
	for c := range tenCustomers() {
		if err := s.RecordBid(c, message.EnergyBid{Round: 1, YMinKWh: 13}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != RFBContinue {
		t.Fatalf("round 1 outcome = %v", rec.Outcome)
	}
	if rec.Improved != 10 {
		t.Fatalf("improved = %d, want 10", rec.Improved)
	}
	// Round 2: all stand still → stalled.
	for c := range tenCustomers() {
		if err := s.RecordBid(c, message.EnergyBid{Round: 2, YMinKWh: 13}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err = s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != RFBStalled {
		t.Fatalf("round 2 outcome = %v, want stalled", rec.Outcome)
	}
	if s.FinalOutcome() != RFBStalled {
		t.Fatal("session should be stalled")
	}
}

func TestRFBMaxRounds(t *testing.T) {
	p := rfbParams()
	p.AllowedOveruseRatio = 0.0001
	p.MaxRounds = 2
	s, err := NewRFBSession("s", testWindow(), p, tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// One customer keeps improving slightly so no stall fires.
	if err := s.RecordBid("a", message.EnergyBid{Round: 1, YMinKWh: 13}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 2, YMinKWh: 12.5}); err != nil {
		t.Fatal(err)
	}
	rec, err := s.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != RFBMaxRounds {
		t.Fatalf("outcome = %v, want max rounds", rec.Outcome)
	}
}

func TestRFBAnnounceAndCommitted(t *testing.T) {
	s, err := NewRFBSession("s", testWindow(), rfbParams(), tenCustomers(), 100)
	if err != nil {
		t.Fatal(err)
	}
	req, err := s.Announce()
	if err != nil {
		t.Fatal(err)
	}
	if req.Round != 1 || req.LowPrice != 0.5 {
		t.Fatalf("request = %+v", req)
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("request invalid: %v", err)
	}
	y, ok := s.CommittedYMin("a")
	if !ok || y != 13.5 {
		t.Fatalf("committed = %v, %v; want prediction 13.5", y, ok)
	}
	if _, ok := s.CommittedYMin("ghost"); ok {
		t.Fatal("ghost should miss")
	}
	if err := s.RecordBid("a", message.EnergyBid{Round: 1, YMinKWh: 11}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseRound(); err != nil {
		t.Fatal(err)
	}
	if y, _ := s.CommittedYMin("a"); y != 11 {
		t.Fatalf("committed after round = %v, want 11", y)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeContinue, OutcomeConverged, OutcomeCeiling, OutcomeMaxRounds} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
	if OutcomeContinue.Terminal() {
		t.Fatal("continue should not be terminal")
	}
	for _, o := range []RFBOutcome{RFBContinue, RFBConverged, RFBStalled, RFBMaxRounds} {
		if o.String() == "" {
			t.Fatal("empty rfb outcome string")
		}
	}
	if RFBContinue.Terminal() {
		t.Fatal("rfb continue should not be terminal")
	}
}
