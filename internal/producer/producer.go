// Package producer models the Producer Agent: the Utility Agent's source of
// information about "availability of electricity and cost" (Section 5.1).
// Negotiation between the Utility Agent and Producer Agents is out of the
// paper's scope; what the UA needs is a queryable model of normal production
// capacity and the marginal cost of exceeding it — the "normal production
// costs" vs "expensive production costs" split of Figure 1.
package producer

import (
	"errors"
	"fmt"
	"sort"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// Errors reported by the package.
var (
	ErrBadCapacity  = errors.New("producer: capacity must be positive")
	ErrBadCost      = errors.New("producer: costs must be non-negative and peak >= base")
	ErrNoBlocks     = errors.New("producer: no capacity blocks")
	ErrUnknownTopic = errors.New("producer: unknown info topic")
)

// Topics the producer answers.
const (
	TopicCapacity = "production_capacity"
	TopicCost     = "production_cost"
)

// Block is one production tranche: Capacity kWh available in the window at
// CostPerKWh. Blocks stack: base load plants first, peakers last.
type Block struct {
	Name       string
	Capacity   units.Energy
	CostPerKWh float64
}

// Agent is a Producer Agent with a merit-order production stack.
type Agent struct {
	name   string
	blocks []Block
}

// New validates the stack and constructs the agent. Blocks are sorted into
// merit order (ascending cost).
func New(name string, blocks []Block) (*Agent, error) {
	if name == "" {
		return nil, errors.New("producer: empty agent name")
	}
	if len(blocks) == 0 {
		return nil, ErrNoBlocks
	}
	bs := append([]Block(nil), blocks...)
	for _, b := range bs {
		if b.Capacity <= 0 {
			return nil, fmt.Errorf("%w: block %q", ErrBadCapacity, b.Name)
		}
		if b.CostPerKWh < 0 {
			return nil, fmt.Errorf("%w: block %q", ErrBadCost, b.Name)
		}
	}
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].CostPerKWh < bs[j].CostPerKWh })
	return &Agent{name: name, blocks: bs}, nil
}

// Standard builds the canonical two-tranche producer used in experiments:
// normalCapacity kWh of cheap base production and a peaker tranche at
// peakCost. This is exactly the Figure 1 cost structure.
func Standard(normalCapacity units.Energy, baseCost, peakCost float64, peakCapacity units.Energy) (*Agent, error) {
	if peakCost < baseCost {
		return nil, ErrBadCost
	}
	return New("producer", []Block{
		{Name: "base", Capacity: normalCapacity, CostPerKWh: baseCost},
		{Name: "peak", Capacity: peakCapacity, CostPerKWh: peakCost},
	})
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// NormalCapacity returns the capacity of the cheapest tranche — the
// "normal_use" the Utility Agent balances against.
func (a *Agent) NormalCapacity() units.Energy {
	return a.blocks[0].Capacity
}

// TotalCapacity returns the stack's total capacity.
func (a *Agent) TotalCapacity() units.Energy {
	var total units.Energy
	for _, b := range a.blocks {
		total = total.Add(b.Capacity)
	}
	return total
}

// CostOf returns the total production cost of supplying the given demand
// through the merit order. Demand beyond the stack is priced at the most
// expensive block's cost (emergency imports).
func (a *Agent) CostOf(demand units.Energy) float64 {
	remaining := demand.KWhs()
	cost := 0.0
	for _, b := range a.blocks {
		if remaining <= 0 {
			break
		}
		take := b.Capacity.KWhs()
		if take > remaining {
			take = remaining
		}
		cost += take * b.CostPerKWh
		remaining -= take
	}
	if remaining > 0 {
		cost += remaining * a.blocks[len(a.blocks)-1].CostPerKWh
	}
	return cost
}

// MarginalCostAt returns the cost of the next kWh at the given demand.
func (a *Agent) MarginalCostAt(demand units.Energy) float64 {
	cum := units.Energy(0)
	for _, b := range a.blocks {
		cum = cum.Add(b.Capacity)
		if demand < cum {
			return b.CostPerKWh
		}
	}
	return a.blocks[len(a.blocks)-1].CostPerKWh
}

// PeakPremium returns the extra cost of serving demand versus serving it at
// base cost only — the money the UA can spend on rewards and still win.
func (a *Agent) PeakPremium(demand units.Energy) float64 {
	base := demand.KWhs() * a.blocks[0].CostPerKWh
	return a.CostOf(demand) - base
}

// HandleInfoRequest answers the UA's information requests (the paper's
// "interaction with the Producer Agent is essential to acquire information
// about the availability of electricity and the cost involved").
func (a *Agent) HandleInfoRequest(req message.InfoRequest) (message.InfoReply, error) {
	if err := req.Validate(); err != nil {
		return message.InfoReply{}, err
	}
	switch req.Topic {
	case TopicCapacity:
		return message.InfoReply{
			Topic: TopicCapacity,
			Values: map[string]float64{
				"normal_kwh": a.NormalCapacity().KWhs(),
				"total_kwh":  a.TotalCapacity().KWhs(),
			},
		}, nil
	case TopicCost:
		return message.InfoReply{
			Topic: TopicCost,
			Values: map[string]float64{
				"base_cost_per_kwh": a.blocks[0].CostPerKWh,
				"peak_cost_per_kwh": a.blocks[len(a.blocks)-1].CostPerKWh,
			},
		}, nil
	default:
		return message.InfoReply{}, fmt.Errorf("%w: %q", ErrUnknownTopic, req.Topic)
	}
}
