package message

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestObsBinaryRoundTrip runs the observability kinds through the binary
// codec and checks the decoded payloads survive field-for-field.
func TestObsBinaryRoundTrip(t *testing.T) {
	payloads := []Payload{
		ObsSubscribe{Proc: "gridd-cc-003", Role: "worker", Addr: "127.0.0.1:9", MinLevel: "info"},
		ObsAck{Seq: 42},
		ObsBatch{
			Seq: 7,
			Metrics: []ObsMetricSample{
				{Name: "feedback_score", Value: 91.5},
				{Name: `grid_shard_load_kwh{shard="2"}`, Value: 3.25},
			},
			Logs: []ObsLogEvent{{
				TsUs: 1000, Level: "warn", Component: "overload", Msg: "shed",
				Fields: json.RawMessage(`{"shard":"2"}`),
			}},
			Spans: []ObsSpan{{
				Trace: "00000000000000a1", Span: "00000000000000a2", Parent: "00000000000000a3",
				Name: "phase.negotiate", Agent: "cc-2", Session: "gridd", Shard: "2",
				StartUs: 5, DurUs: 17,
			}},
			MissedLogs: 3, MissedSpans: 9,
		},
		ObsBatch{Seq: 1, Closing: true}, // keepalive/final shape: no data
	}
	for _, p := range payloads {
		env, err := NewEnvelope("gridd-cc-003", "obshub", "obsplane", p)
		if err != nil {
			t.Fatalf("%s: NewEnvelope: %v", p.Kind(), err)
		}
		data, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", p.Kind(), err)
		}
		got, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", p.Kind(), err)
		}
		if got.Kind != p.Kind() {
			t.Fatalf("kind = %s, want %s", got.Kind, p.Kind())
		}
		dp, err := got.Decode()
		if err != nil {
			t.Fatalf("%s: Decode: %v", p.Kind(), err)
		}
		if !reflect.DeepEqual(dp, p) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", p.Kind(), dp, p)
		}
	}
}

// TestObsValidate covers the validation rules of the observability kinds.
func TestObsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Payload
		ok   bool
	}{
		{"subscribe ok", ObsSubscribe{Proc: "w1", Role: "worker"}, true},
		{"subscribe no proc", ObsSubscribe{Role: "worker"}, false},
		{"subscribe no role", ObsSubscribe{Proc: "w1"}, false},
		{"batch keepalive", ObsBatch{Seq: 1}, true},
		{"batch seq 0", ObsBatch{}, false},
		{"ack ok", ObsAck{Seq: 1}, true},
		{"ack seq 0", ObsAck{}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Fatalf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("%s: validation passed, want error", c.name)
		}
	}
	// Invalid payloads must be refused at envelope construction too.
	if _, err := NewEnvelope("w1", "obshub", "obsplane", ObsBatch{}); err == nil {
		t.Fatal("NewEnvelope accepted a seq-0 batch")
	}
	if !errors.Is(ObsAck{}.Validate(), ErrBadValue) {
		t.Fatal("ack seq 0 should wrap ErrBadValue")
	}
}
