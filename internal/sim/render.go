package sim

import (
	"fmt"
	"sort"
	"strings"

	"loadbalance/internal/core"
	"loadbalance/internal/utilityagent"
)

// RenderResult formats a finished negotiation as the textual counterpart of
// the prototype's GUI (Figures 6-9): per-round reward tables, bids and the
// predicted balance, followed by the awards.
func RenderResult(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "session %s — method %s\n", res.SessionID, res.Method)
	fmt.Fprintf(&b, "initial predicted overuse: %.2f kWh\n", res.InitialOveruseKWh)

	switch res.Method {
	case utilityagent.MethodRewardTable:
		for _, rec := range res.History {
			fmt.Fprintf(&b, "\nround %d\n", rec.Round)
			tbl := Table{Columns: []string{"cut_down", "reward"}}
			for _, e := range rec.Table.Entries {
				tbl.AddRowF(e.CutDown, e.Reward)
			}
			b.WriteString(tbl.String())
			fmt.Fprintf(&b, "bids: %s\n", renderBids(rec.Bids))
			fmt.Fprintf(&b, "predicted overuse after bids: %.2f kWh (ratio %.3f) → %s\n",
				rec.OveruseKWh, rec.OveruseRatio, rec.Outcome)
		}
	case utilityagent.MethodRequestForBids:
		for _, rec := range res.RFBHistory {
			fmt.Fprintf(&b, "\nround %d: %d bids, %d improved, overuse %.2f kWh → %s\n",
				rec.Round, rec.Responses, rec.Improved, rec.OveruseKWh, rec.Outcome)
		}
	case utilityagent.MethodOffer:
		if res.Offer != nil {
			fmt.Fprintf(&b, "\noffer: %d accepted, %d declined, %d silent; discount cost %.2f\n",
				res.Offer.Accepted, res.Offer.Declined, res.Offer.Silent, res.Offer.DiscountCost)
		}
	}

	fmt.Fprintf(&b, "\noutcome: %s after %d round(s)\n", res.Outcome, res.Rounds)
	fmt.Fprintf(&b, "final predicted overuse: %.2f kWh (ratio %.3f)\n", res.FinalOveruseKWh, res.FinalOveruseRatio)
	if len(res.Awards) > 0 {
		fmt.Fprintf(&b, "total reward paid: %.2f\n", res.TotalReward)
		tbl := Table{Columns: []string{"customer", "cut_down", "reward"}}
		for _, aw := range res.Awards {
			tbl.AddRowF(aw.Customer, aw.Award.CutDown, aw.Award.Reward)
		}
		b.WriteString(tbl.String())
	}
	fmt.Fprintf(&b, "bus: %d sent, %d delivered, %d dropped; elapsed %v\n",
		res.Bus.Sent, res.Bus.Delivered, res.Bus.Dropped, res.Elapsed.Round(1e6))
	return b.String()
}

// renderBids formats a bid map deterministically.
func renderBids(bids map[string]float64) string {
	names := make([]string, 0, len(bids))
	for n := range bids {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%.1f", n, bids[n]))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}
