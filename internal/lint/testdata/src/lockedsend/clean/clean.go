// Fixture: the sanctioned shapes lockedsend must NOT flag.
package clean

import (
	"net"
	"sync"
)

type svc struct {
	mu sync.Mutex
	ch chan int
}

// Send after releasing.
func (s *svc) sendOutside(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// Non-blocking send under the lock is the bounded-queue overload pattern.
func (s *svc) nonBlocking(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// A spawned goroutine does not inherit the spawner's holds.
func (s *svc) spawn(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

// Encode under the lock, write outside: the bus pattern.
func (s *svc) encodeThenWrite(c net.Conn, b []byte) error {
	s.mu.Lock()
	buf := append([]byte(nil), b...)
	s.mu.Unlock()
	_, err := c.Write(buf)
	return err
}

// A lock taken inside a branch is not provably held after it.
func (s *svc) branchScoped(v int, b bool) {
	if b {
		s.mu.Lock()
		s.mu.Unlock()
	}
	s.ch <- v
}
