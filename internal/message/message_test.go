package message

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/units"
)

func window() Window {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	return Window{Start: start, End: start.Add(2 * time.Hour)}
}

func validTable() RewardTable {
	return RewardTable{
		Window: window(),
		Round:  1,
		Entries: []RewardEntry{
			{CutDown: 0, Reward: 0},
			{CutDown: 0.1, Reward: 4.25},
			{CutDown: 0.2, Reward: 8.5},
			{CutDown: 0.3, Reward: 12.75},
			{CutDown: 0.4, Reward: 17},
		},
	}
}

func TestWindowRoundTrip(t *testing.T) {
	iv, err := units.NewInterval(window().Start, window().End)
	if err != nil {
		t.Fatal(err)
	}
	w := FromInterval(iv)
	got, err := w.Interval()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(iv.Start) || !got.End.Equal(iv.End) {
		t.Fatalf("round trip = %v, want %v", got, iv)
	}
}

func TestOfferTermsValidate(t *testing.T) {
	valid := OfferTerms{Window: window(), XMax: 0.8, AllowanceKWh: 10, LowPrice: 1, NormalPrice: 2, HighPrice: 3}
	tests := []struct {
		name    string
		mutate  func(*OfferTerms)
		wantErr error
	}{
		{name: "valid", mutate: func(o *OfferTerms) {}},
		{name: "xmax zero", mutate: func(o *OfferTerms) { o.XMax = 0 }, wantErr: ErrBadFraction},
		{name: "xmax above one", mutate: func(o *OfferTerms) { o.XMax = 1.2 }, wantErr: ErrBadFraction},
		{name: "negative price", mutate: func(o *OfferTerms) { o.LowPrice = -1 }, wantErr: ErrBadValue},
		{name: "price order", mutate: func(o *OfferTerms) { o.LowPrice = 5 }, wantErr: ErrBadValue},
		{name: "bad window", mutate: func(o *OfferTerms) { o.Window.End = o.Window.Start }, wantErr: ErrBadInterval},
		{name: "nan allowance", mutate: func(o *OfferTerms) { o.AllowanceKWh = math.NaN() }, wantErr: ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := valid
			tt.mutate(&o)
			if err := o.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBidRequestValidate(t *testing.T) {
	valid := BidRequest{Window: window(), Round: 1, LowPrice: 1, NormalPrice: 2, HighPrice: 3}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request: %v", err)
	}
	bad := valid
	bad.Round = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatalf("round 0 error = %v", err)
	}
}

func TestRewardTableValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*RewardTable)
		wantErr error
	}{
		{name: "valid", mutate: func(t *RewardTable) {}},
		{name: "empty", mutate: func(t *RewardTable) { t.Entries = nil }, wantErr: ErrEmptyTable},
		{name: "unordered", mutate: func(t *RewardTable) { t.Entries[2].CutDown = 0.05 }, wantErr: ErrTableOrder},
		{name: "duplicate", mutate: func(t *RewardTable) { t.Entries[1].CutDown = 0 }, wantErr: ErrTableOrder},
		{name: "cutdown above 1", mutate: func(t *RewardTable) { t.Entries[4].CutDown = 1.4 }, wantErr: ErrBadFraction},
		{name: "negative reward", mutate: func(t *RewardTable) { t.Entries[3].Reward = -2 }, wantErr: ErrBadValue},
		{name: "round zero", mutate: func(t *RewardTable) { t.Round = 0 }, wantErr: ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tab := validTable()
			tab.Entries = append([]RewardEntry(nil), validTable().Entries...)
			tt.mutate(&tab)
			if err := tab.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestRewardFor(t *testing.T) {
	tab := validTable()
	if r, ok := tab.RewardFor(0.4); !ok || r != 17 {
		t.Fatalf("RewardFor(0.4) = %v, %v", r, ok)
	}
	if _, ok := tab.RewardFor(0.55); ok {
		t.Fatal("RewardFor(0.55) should miss")
	}
}

func TestBidValidation(t *testing.T) {
	if err := (CutDownBid{Round: 1, CutDown: 0.4}).Validate(); err != nil {
		t.Fatalf("valid cutdown bid: %v", err)
	}
	if err := (CutDownBid{Round: 1, CutDown: 1.5}).Validate(); !errors.Is(err, ErrBadFraction) {
		t.Fatal("cutdown 1.5 should fail")
	}
	if err := (EnergyBid{Round: 1, YMinKWh: 5}).Validate(); err != nil {
		t.Fatalf("valid energy bid: %v", err)
	}
	if err := (EnergyBid{Round: 1, YMinKWh: -5}).Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatal("negative ymin should fail")
	}
	if err := (OfferReply{Round: 0}).Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatal("round 0 reply should fail")
	}
	if err := (Award{Round: 2, CutDown: 0.4, Reward: 24.8}).Validate(); err != nil {
		t.Fatalf("valid award: %v", err)
	}
	if err := (Award{Round: 2, CutDown: -0.1, Reward: 1}).Validate(); !errors.Is(err, ErrBadFraction) {
		t.Fatal("negative cutdown award should fail")
	}
}

func TestInfoValidation(t *testing.T) {
	if err := (InfoRequest{Topic: "production_capacity", Window: window()}).Validate(); err != nil {
		t.Fatalf("valid info request: %v", err)
	}
	if err := (InfoRequest{Window: window()}).Validate(); !errors.Is(err, ErrEmptyField) {
		t.Fatal("empty topic should fail")
	}
	if err := (InfoReply{Topic: "x", Values: map[string]float64{"capacity": 100}}).Validate(); err != nil {
		t.Fatalf("valid info reply: %v", err)
	}
	if err := (InfoReply{Topic: "x", Values: map[string]float64{"capacity": math.Inf(1)}}).Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatal("inf value should fail")
	}
}

func TestSessionEndValidation(t *testing.T) {
	if err := (SessionEnd{Round: 3, Reason: "converged"}).Validate(); err != nil {
		t.Fatalf("valid session end: %v", err)
	}
	if err := (SessionEnd{Round: 3}).Validate(); !errors.Is(err, ErrEmptyField) {
		t.Fatal("missing reason should fail")
	}
}

func TestMeterBatchValidation(t *testing.T) {
	ok := MeterBatch{Tick: 2, Readings: []MeterReading{{Customer: "c1", Tick: 2, KWh: 1.5}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	if err := (MeterBatch{Tick: 2}).Validate(); !errors.Is(err, ErrEmptyField) {
		t.Fatal("empty batch should fail")
	}
	if err := (MeterBatch{Tick: -1, Readings: ok.Readings}).Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatal("negative batch tick should fail")
	}
	bad := []MeterReading{
		{Customer: "", Tick: 0, KWh: 1},
		{Customer: "c", Tick: -1, KWh: 1},
		{Customer: "c", Tick: 0, KWh: -1},
		{Customer: "c", Tick: 0, KWh: math.NaN()},
	}
	for i, r := range bad {
		if err := (MeterBatch{Readings: []MeterReading{r}}).Validate(); err == nil {
			t.Errorf("bad reading %d passed validation", i)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payloads := []Payload{
		OfferTerms{Window: window(), XMax: 0.8, AllowanceKWh: 10, LowPrice: 1, NormalPrice: 2, HighPrice: 3},
		BidRequest{Window: window(), Round: 2, LowPrice: 1, NormalPrice: 2, HighPrice: 3},
		validTable(),
		OfferReply{Round: 1, Accept: true},
		EnergyBid{Round: 2, YMinKWh: 7.5},
		CutDownBid{Round: 3, CutDown: 0.4},
		Award{Round: 3, CutDown: 0.4, Reward: 24.8},
		InfoRequest{Topic: "capacity", Window: window()},
		InfoReply{Topic: "capacity", Values: map[string]float64{"kwh": 100}},
		SessionEnd{Round: 3, Reason: "converged"},
	}
	for _, p := range payloads {
		t.Run(string(p.Kind()), func(t *testing.T) {
			env, err := NewEnvelope("ua", "c1", "s1", p)
			if err != nil {
				t.Fatalf("NewEnvelope: %v", err)
			}
			data, err := env.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if back.From != "ua" || back.To != "c1" || back.Session != "s1" || back.Kind != p.Kind() {
				t.Fatalf("envelope metadata = %+v", back)
			}
			decoded, err := back.Decode()
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if decoded.Kind() != p.Kind() {
				t.Fatalf("decoded kind = %v, want %v", decoded.Kind(), p.Kind())
			}
		})
	}
}

func TestEnvelopeDecodedValuesSurvive(t *testing.T) {
	env, err := NewEnvelope("ua", "", "s1", validTable())
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := p.(RewardTable)
	if !ok {
		t.Fatalf("decoded type = %T, want RewardTable", p)
	}
	if r, ok := tab.RewardFor(0.4); !ok || r != 17 {
		t.Fatalf("decoded table lost data: %v %v", r, ok)
	}
}

func TestNewEnvelopeRejects(t *testing.T) {
	if _, err := NewEnvelope("", "c1", "s1", OfferReply{Round: 1}); !errors.Is(err, ErrEmptyField) {
		t.Fatal("empty from should fail")
	}
	if _, err := NewEnvelope("ua", "c1", "", OfferReply{Round: 1}); !errors.Is(err, ErrEmptyField) {
		t.Fatal("empty session should fail")
	}
	if _, err := NewEnvelope("ua", "c1", "s1", CutDownBid{Round: 0, CutDown: 0.2}); err == nil {
		t.Fatal("invalid payload should fail")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	env := Envelope{From: "x", Session: "s", Kind: Kind("bogus"), Body: []byte("{}")}
	if _, err := env.Decode(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("error = %v, want ErrUnknownKind", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	// Valid JSON envelope but invalid body for the kind.
	env := Envelope{From: "ua", Session: "s", Kind: KindCutDownBid, Body: []byte(`{"round":0,"cutDown":2}`)}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("invalid body should fail validation on unmarshal")
	}
}

// Property: any structurally-valid cut-down bid survives a marshal round
// trip with its fields intact.
func TestCutDownBidRoundTripProperty(t *testing.T) {
	f := func(round uint8, cdRaw uint16) bool {
		bid := CutDownBid{Round: int(round%50) + 1, CutDown: float64(cdRaw%1001) / 1000}
		env, err := NewEnvelope("ua", "c1", "s", bid)
		if err != nil {
			return false
		}
		data, err := env.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		p, err := back.Decode()
		if err != nil {
			return false
		}
		got, ok := p.(CutDownBid)
		return ok && got == bid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
