package telemetry

import (
	"errors"
	"math"
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/prediction"
)

func TestRing(t *testing.T) {
	if _, err := NewRing(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero capacity err = %v", err)
	}
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring has no last")
	}
	for i := 1; i <= 5; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	got := r.Series()
	want := []float64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	if last, _ := r.Last(); last != 5 {
		t.Fatalf("last = %v", last)
	}
	if r.Sum() != 12 || r.Mean() != 4 {
		t.Fatalf("sum/mean = %v/%v", r.Sum(), r.Mean())
	}
}

func TestMeterDeterministicAndEventful(t *testing.T) {
	mk := func() *Meter {
		m, err := NewMeter(MeterConfig{
			Customer: "c1", BaseKWh: 2, Jitter: 0.05, Seed: 7,
			Events: []Event{{StartTick: 3, EndTick: 4, Factor: 2}, {StartTick: 6, EndTick: 6, Factor: 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	for tick := 0; tick < 8; tick++ {
		ra, rb := a.Sample(tick), b.Sample(tick)
		if ra != rb {
			t.Fatalf("tick %d: same seed diverged: %v vs %v", tick, ra, rb)
		}
		switch {
		case tick == 3 || tick == 4:
			if ra.KWh < 2*2*0.95 || ra.KWh > 2*2*1.05 {
				t.Fatalf("spike tick %d = %v kWh, want ≈4", tick, ra.KWh)
			}
		case tick == 6:
			if ra.KWh != 0 {
				t.Fatalf("outage tick = %v kWh, want 0", ra.KWh)
			}
		default:
			if ra.KWh < 2*0.95 || ra.KWh > 2*1.05 {
				t.Fatalf("normal tick %d = %v kWh, want ≈2", tick, ra.KWh)
			}
		}
	}
	// Actuated cut-downs scale subsequent samples.
	a.SetCutDown(0.5)
	if r := a.Sample(10); r.KWh < 0.95 || r.KWh > 1.05 {
		t.Fatalf("cut-down sample = %v kWh, want ≈1", r.KWh)
	}
}

func TestMeterSeriesBaseline(t *testing.T) {
	m, err := NewMeter(MeterConfig{Customer: "c1", Series: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for tick, want := range []float64{1, 2, 3, 1, 2} {
		if got := m.Sample(tick).KWh; got != want {
			t.Fatalf("tick %d = %v, want %v (series wraps)", tick, got, want)
		}
	}
}

func TestMeterConfigValidation(t *testing.T) {
	cases := []MeterConfig{
		{Customer: "", BaseKWh: 1},
		{Customer: "c", BaseKWh: -1},
		{Customer: "c"},
		{Customer: "c", BaseKWh: 1, Jitter: 1},
		{Customer: "c", BaseKWh: 1, Events: []Event{{StartTick: 2, EndTick: 1, Factor: 1}}},
		{Customer: "c", BaseKWh: 1, Events: []Event{{Factor: -1}}},
	}
	for i, cfg := range cases {
		if _, err := NewMeter(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestFleetBatchesAndPublishes(t *testing.T) {
	meters := make([]*Meter, 0, 5)
	for _, name := range []string{"c3", "c1", "c2", "c5", "c4"} {
		m, err := NewMeter(MeterConfig{Customer: name, BaseKWh: 1})
		if err != nil {
			t.Fatal(err)
		}
		meters = append(meters, m)
	}
	fleet, err := NewFleet(meters, 2)
	if err != nil {
		t.Fatal(err)
	}
	batches := fleet.SampleTick(0)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 (5 meters, batch size 2)", len(batches))
	}
	if got := batches[0].Readings[0].Customer; got != "c1" {
		t.Fatalf("first reading from %q, want c1 (sorted order)", got)
	}

	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	col, err := NewCollector(CollectorConfig{
		ShardOf: map[string]int{"c1": 0, "c2": 0, "c3": 1, "c4": 1, "c5": 1},
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := b.Register(collectorName, 16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := fleet.PublishTick(b, meteringName, collectorName, "s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("published %d readings, want 5", n)
	}
	for i := 0; i < 3; i++ {
		env := <-inbox
		p, err := env.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(p.(message.MeterBatch)); err != nil {
			t.Fatal(err)
		}
	}
	per := col.CloseTick(1)
	if math.Abs(per[0]-2) > 1e-9 || math.Abs(per[1]-3) > 1e-9 {
		t.Fatalf("per-shard = %v, want [2 3]", per)
	}
}

func TestCollectorRingsAndForecast(t *testing.T) {
	col, err := NewCollector(CollectorConfig{ShardOf: map[string]int{"a": 0}, Shards: 1, RingTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 3; tick++ {
		if err := col.Ingest(message.MeterBatch{Tick: tick, Readings: []message.MeterReading{
			{Customer: "a", Tick: tick, KWh: float64(tick + 1)},
			{Customer: "ghost", Tick: tick, KWh: 99}, // unknown: counted as rejected
		}}); err != nil {
			t.Fatal(err)
		}
		col.CloseTick(tick)
	}
	series := col.ShardSeries(0)
	if len(series) != 3 || series[2] != 3 {
		t.Fatalf("series = %v", series)
	}
	got, err := col.ForecastShard(0, prediction.MovingAverage{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("forecast = %v, want 2.5", got)
	}
	st := col.Stats()
	if st.Readings != 3 || st.Batches != 3 || st.Rejected != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorWaitTick(t *testing.T) {
	col, err := NewCollector(CollectorConfig{ShardOf: map[string]int{"a": 0}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.WaitTick(0, 1, 5*time.Millisecond); err == nil {
		t.Fatal("want deadline error with no readings")
	}
	if err := col.Ingest(message.MeterBatch{Tick: 0, Readings: []message.MeterReading{{Customer: "a", KWh: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := col.WaitTick(0, 1, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationDetectorHysteresis(t *testing.T) {
	d, err := NewDeviationDetector(2, DeviationConfig{AbsKWh: 0.1, Rel: 0.2, BreachTicks: 2, ClearTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One out-of-threshold tick never fires.
	if d.Observe(0, 2, 1) {
		t.Fatal("fired on first deviating tick despite BreachTicks=2")
	}
	// An in-threshold tick resets the streak.
	if d.Observe(0, 1.05, 1) || d.Observe(0, 2, 1) {
		t.Fatal("streak should have reset")
	}
	// Two consecutive deviating ticks fire exactly once.
	if !d.Observe(0, 2, 1) {
		t.Fatal("want breach on second consecutive deviating tick")
	}
	if !d.Breached(0) {
		t.Fatal("breach not latched")
	}
	if d.Observe(0, 2, 1) {
		t.Fatal("latched breach fired again")
	}
	// The other shard is independent.
	if d.Breached(1) {
		t.Fatal("shard 1 never deviated")
	}
	// ClearTicks in-threshold ticks re-arm without a reset.
	d.Observe(0, 1, 1)
	d.Observe(0, 1, 1)
	if d.Breached(0) {
		t.Fatal("breach should have cleared after ClearTicks")
	}
	// Reset clears immediately.
	d.Observe(1, 5, 1)
	d.Observe(1, 5, 1)
	if !d.Breached(1) {
		t.Fatal("shard 1 should be breached")
	}
	d.Reset(1)
	if d.Breached(1) {
		t.Fatal("reset did not clear")
	}
}

func TestDeviationSignificance(t *testing.T) {
	d, err := NewDeviationDetector(1, DeviationConfig{AbsKWh: 0.5, Rel: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Significant(1.3, 1) {
		t.Fatal("0.3 deviation under the 0.5 kWh absolute floor must be insignificant")
	}
	if d.Significant(10.8, 10) {
		t.Fatal("8% deviation under the 10% relative floor must be insignificant")
	}
	if !d.Significant(12, 10) {
		t.Fatal("20% / 2 kWh deviation must be significant")
	}
	if !d.Significant(1, 0) {
		t.Fatal("deviation against a zero expectation is judged on the absolute floor alone")
	}
}

func TestDeviationConfigValidation(t *testing.T) {
	if _, err := NewDeviationDetector(0, DeviationConfig{Rel: 0.1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("shards=0 err = %v", err)
	}
	if _, err := NewDeviationDetector(1, DeviationConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("all-zero thresholds err = %v", err)
	}
	if _, err := NewDeviationDetector(1, DeviationConfig{AbsKWh: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative abs err = %v", err)
	}
}

func TestMeterBatchRoundTripOnBus(t *testing.T) {
	batch := message.MeterBatch{Tick: 3, Readings: []message.MeterReading{
		{Customer: "c1", Tick: 3, KWh: 1.25},
	}}
	env, err := message.NewEnvelope("metering", "collector", "s", batch)
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := message.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	got := p.(message.MeterBatch)
	if got.Tick != 3 || len(got.Readings) != 1 || got.Readings[0] != batch.Readings[0] {
		t.Fatalf("round trip = %+v", got)
	}
}
