package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"loadbalance/internal/message"
)

// Snapshot file layout: a 5-byte magic, a version byte, the uvarint journal
// position the blob covers, the uvarint-length-prefixed blob, and a CRC32C
// over everything after the magic. Snapshots are written to a temp file and
// renamed into place, so a crash mid-write can never damage an existing one.
const (
	snapMagic   = "LBSNP"
	snapVersion = byte(1)
)

// snapshotName renders the file name of the snapshot at a journal position.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016x.snp", seq)
}

// snapshotSeq parses a snapshot file name back into its journal position.
func snapshotSeq(path string) (uint64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snp") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snp"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeSnapshot atomically publishes a snapshot of the application state at
// journal position seq.
func writeSnapshot(dir string, seq uint64, blob []byte) error {
	payload := make([]byte, 0, len(snapMagic)+1+binary.MaxVarintLen64+message.LenPrefixedSize(len(blob))+4)
	payload = append(payload, snapMagic...)
	payload = append(payload, snapVersion)
	payload = binary.AppendUvarint(payload, seq)
	payload = message.AppendLenPrefixed(payload, blob)
	sum := crc32.Checksum(payload[len(snapMagic):], crcTable)
	payload = binary.LittleEndian.AppendUint32(payload, sum)

	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("store: temp snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(payload); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("store: chmod snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, filepath.Join(dir, snapshotName(seq))); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	// Make the rename itself durable: without the directory fsync a machine
	// crash can forget the entry even though the file data was synced.
	return syncDir(dir)
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (seq uint64, blob []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+1 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot magic", ErrCorrupt)
	}
	if data[len(snapMagic)] != snapVersion {
		return 0, nil, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, data[len(snapMagic)])
	}
	if len(data) < len(snapMagic)+1+4 {
		return 0, nil, fmt.Errorf("%w: snapshot", ErrTruncated)
	}
	body, trailer := data[len(snapMagic):len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return 0, nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	body = body[1:] // version byte
	seq, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: snapshot position", ErrCorrupt)
	}
	blob, rest, err := message.ReadLenPrefixed(body[n:])
	if err != nil || len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: snapshot blob", ErrCorrupt)
	}
	return seq, blob, nil
}

// snapshotPaths lists the directory's snapshots, newest first.
func snapshotPaths(dir string) []string {
	names, _ := filepath.Glob(filepath.Join(dir, "snap-*.snp"))
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

// latestSnapshot returns the newest snapshot that validates, skipping (but
// not deleting) damaged ones.
func latestSnapshot(dir string) (seq uint64, blob []byte, ok bool) {
	for _, path := range snapshotPaths(dir) {
		s, b, err := readSnapshot(path)
		if err != nil {
			continue
		}
		return s, b, true
	}
	return 0, nil, false
}

// snapshotTime returns the modification time of the snapshot at seq.
func snapshotTime(dir string, seq uint64) (time.Time, bool) {
	fi, err := os.Stat(filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return time.Time{}, false
	}
	return fi.ModTime(), true
}

// pruneSnapshots deletes all but the newest keep snapshots and returns the
// journal position of the oldest survivor (0 when none).
func pruneSnapshots(dir string, keep int) uint64 {
	paths := snapshotPaths(dir)
	var oldestKept uint64
	for i, path := range paths {
		if i < keep {
			if s, ok := snapshotSeq(path); ok {
				oldestKept = s
			}
			continue
		}
		_ = os.Remove(path)
	}
	return oldestKept
}

// pruneSegments deletes journal segments whose every record lies at or below
// coveredSeq (the oldest kept snapshot's position), never touching the
// segment currently being written. A segment's record range ends where the
// next segment begins, so only segments with a successor are candidates.
func pruneSegments(dir string, coveredSeq uint64, activePath string) {
	if coveredSeq == 0 {
		return
	}
	segs := segmentGlob(dir)
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == activePath {
			continue
		}
		nextFirst, ok := segmentFirstSeq(segs[i+1])
		if !ok {
			continue
		}
		// Last record of segs[i] is nextFirst-1.
		if nextFirst-1 <= coveredSeq {
			_ = os.Remove(segs[i])
		}
	}
}
