package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"loadbalance/internal/replica"
	"loadbalance/internal/telemetry"
)

// FailoverReport is E17's machine-readable result: the kill/promote timeline,
// the availability gap and the award-continuity verdict, saved as JSON next
// to the CSV.
type FailoverReport struct {
	Fleet            int    `json:"fleet"`
	Shards           int    `json:"shards"`
	Ticks            int    `json:"ticks"`
	KillTick         int    `json:"killTick"`
	ReplicatedSeq    uint64 `json:"replicatedSeq"`    // standby position at promotion
	DetectLatencyNS  int64  `json:"detectLatencyNs"`  // last primary contact → dead verdict
	PromoteLatencyNS int64  `json:"promoteLatencyNs"` // dead verdict → serving engine
	ResumeTick       int    `json:"resumeTick"`
	Renegotiations   int    `json:"renegotiations"`
	AwardsBytes      int    `json:"awardsBytes"`
	AwardsMatch      bool   `json:"awardsMatch"`
}

// E17Failover demonstrates hot-standby replication: one seeded spiked run is
// executed twice — uninterrupted on a single node, and replicated over TCP to
// a hot standby with the primary killed halfway. The standby detects the
// silence, promotes by the lowest-id rule, and finishes the run; the table's
// last row asserts the awards and shard profiles are byte-identical to the
// uninterrupted run, and the report records the availability gap (failure
// detection + promotion).
//
// dir hosts the data directories; empty uses a temp dir removed on return.
func E17Failover(n, shards, ticks int, seed int64, dir string) (*Table, *FailoverReport, error) {
	if n < shards {
		n = shards
	}
	if ticks < 8 {
		ticks = 8
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "e17-*")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	killTick := ticks / 2
	spikeAt := ticks / 3
	cfg := func() (telemetry.LiveConfig, error) {
		s, err := telemetry.ElasticFleetScenario(n, seed)
		if err != nil {
			return telemetry.LiveConfig{}, err
		}
		return telemetry.LiveConfig{
			Scenario:       s,
			Shards:         shards,
			TicksPerWindow: 8,
			Jitter:         0.01,
			Seed:           seed,
			ShardEvents: map[int][]telemetry.Event{
				0:          {{StartTick: spikeAt, EndTick: ticks + 1, Factor: 2.5}},
				shards / 2: {{StartTick: spikeAt, EndTick: ticks + 1, Factor: 2.5}},
			},
		}, nil
	}
	durable := func(sub string) telemetry.DurableConfig {
		return telemetry.DurableConfig{Dir: filepath.Join(dir, sub), SnapshotEvery: 5}
	}
	profile := func(e *telemetry.LiveEngine) ([]byte, error) { return json.Marshal(e.Profile()) }

	t := &Table{
		Name:    fmt.Sprintf("E17Failover: %d customers, %d shards, primary killed at tick %d of %d", n, shards, killTick, ticks),
		Columns: []string{"phase", "ticks", "renegs", "notes"},
		Notes:   "a hot standby fed the primary's WAL stream promotes on primary death and converges byte-identically",
	}

	// Reference: uninterrupted single-node run.
	c, err := cfg()
	if err != nil {
		return nil, nil, err
	}
	ref, _, err := telemetry.OpenDurable(c, durable("uninterrupted"))
	if err != nil {
		return nil, nil, err
	}
	if _, err := ref.Run(ticks); err != nil {
		return nil, nil, err
	}
	want, err := profile(ref)
	if err != nil {
		return nil, nil, err
	}
	refRenegs := ref.Renegotiations()
	if err := ref.Shutdown(); err != nil {
		return nil, nil, err
	}
	t.AddRowF("uninterrupted", ticks, refRenegs, "(reference)")

	// Primary: same run, streaming its journal; a hot standby follows.
	c, err = cfg()
	if err != nil {
		return nil, nil, err
	}
	prim, _, err := telemetry.OpenDurable(c, durable("primary"))
	if err != nil {
		return nil, nil, err
	}
	sender, err := replica.StartSender(replica.SenderConfig{
		Dir:       filepath.Join(dir, "primary"),
		Addr:      "127.0.0.1:0",
		Heartbeat: 30 * time.Millisecond,
		Poll:      5 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	c, err = cfg()
	if err != nil {
		return nil, nil, err
	}
	stby, _, err := replica.StartStandby(replica.StandbyConfig{
		ID:              "r0",
		Peers:           []string{"r0", "r1"},
		PrimaryAddrs:    []string{sender.Addr()},
		Live:            c,
		Durable:         durable("standby"),
		FailoverTimeout: 250 * time.Millisecond,
		Redial:          20 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	type result struct {
		o   replica.Outcome
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		o, err := stby.Run(context.Background())
		resCh <- result{o, err}
	}()

	if _, err := prim.Run(killTick); err != nil {
		return nil, nil, err
	}
	// Wait for the stream to catch up, then kill the primary: engine torn
	// down, journal left unsealed, replication listener gone.
	primSeq := prim.Store().Stats().LastSeq
	catchup := time.Now().Add(10 * time.Second)
	for stby.Eng.LastSeq() < primSeq {
		if time.Now().After(catchup) {
			return nil, nil, fmt.Errorf("sim: e17 standby stuck at seq %d of %d", stby.Eng.LastSeq(), primSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	prim.Stop()
	if err := prim.Store().Close(); err != nil {
		return nil, nil, err
	}
	sender.Close()
	t.AddRowF("killed", killTick, prim.Renegotiations(), fmt.Sprintf("primary dead at seq %d, journal unsealed", primSeq))

	var res result
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		return nil, nil, fmt.Errorf("sim: e17 standby never promoted")
	}
	if res.err != nil {
		return nil, nil, res.err
	}
	if !res.o.Promoted {
		return nil, nil, fmt.Errorf("sim: e17 standby outcome %+v, want promotion", res.o)
	}
	eng, pinfo := res.o.Engine, res.o.Promotion
	if _, err := eng.Run(ticks - pinfo.ResumeTick); err != nil {
		return nil, nil, err
	}
	got, err := profile(eng)
	if err != nil {
		return nil, nil, err
	}
	recRenegs := eng.Renegotiations()
	if err := eng.Shutdown(); err != nil {
		return nil, nil, err
	}

	match := bytes.Equal(got, want)
	verdict := "awards DIFFER from reference"
	if match {
		verdict = "awards byte-identical to reference"
	}
	t.AddRowF("failed over", ticks-pinfo.ResumeTick, recRenegs,
		fmt.Sprintf("detect %v + promote %v from seq %d; %s",
			res.o.DetectLatency.Round(time.Millisecond), pinfo.Elapsed.Round(10*time.Microsecond),
			pinfo.FromSeq, verdict))

	rep := &FailoverReport{
		Fleet:            n,
		Shards:           shards,
		Ticks:            ticks,
		KillTick:         killTick,
		ReplicatedSeq:    pinfo.FromSeq,
		DetectLatencyNS:  res.o.DetectLatency.Nanoseconds(),
		PromoteLatencyNS: pinfo.Elapsed.Nanoseconds(),
		ResumeTick:       pinfo.ResumeTick,
		Renegotiations:   recRenegs,
		AwardsBytes:      len(got),
		AwardsMatch:      match,
	}
	if !match {
		return t, rep, fmt.Errorf("sim: e17 failed-over awards diverged from the uninterrupted run")
	}
	return t, rep, nil
}
