package desiremodel

import (
	"testing"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
	"loadbalance/internal/units"
)

// runUACoop feeds facts into a fresh Figure 3 composition and indexes the
// output facts by predicate.
func runUACoop(t *testing.T, facts []kb.Fact) map[string][]kb.Atom {
	t.Helper()
	cm, err := NewUACooperationManagement()
	if err != nil {
		t.Fatal(err)
	}
	out, err := desire.Run(cm, facts)
	if err != nil {
		t.Fatal(err)
	}
	byPred := make(map[string][]kb.Atom)
	for _, f := range out {
		if f.Truth == kb.True {
			byPred[f.Atom.Pred] = append(byPred[f.Atom.Pred], f.Atom)
		}
	}
	return byPred
}

func TestGenerateAndSelectAnnouncement(t *testing.T) {
	out := runUACoop(t, []kb.Fact{
		{Atom: kb.A("base_slope", kb.N(42.5)), Truth: kb.True},
		{Atom: kb.A("response_rate", kb.N(0.7)), Truth: kb.True},
		{Atom: kb.A("overuse_kwh", kb.N(35)), Truth: kb.True},
	})
	if len(out["selected_slope"]) != 1 {
		t.Fatalf("selected slopes = %v", out["selected_slope"])
	}
	// Predicted reduction saturates at slope 42.5 (min(1, s/42.5)); among
	// the maxima {42.5, 53.125} the cheaper 42.5 wins.
	got := out["selected_slope"][0].Args[0].Num
	if !units.NearlyEqual(got, 42.5, 1e-9) {
		t.Fatalf("selected slope = %v, want 42.5", got)
	}
	// All three candidates were generated and evaluated.
	if len(out["predicted_reduction"]) != 0 {
		t.Fatalf("predicted_reduction should stay internal, got %v", out["predicted_reduction"])
	}
}

func TestMonitorBidReceiptFlagsSilentCustomers(t *testing.T) {
	out := runUACoop(t, []kb.Fact{
		{Atom: kb.A("base_slope", kb.N(42.5)), Truth: kb.True},
		{Atom: kb.A("expected_customer", kb.S("c01")), Truth: kb.True},
		{Atom: kb.A("expected_customer", kb.S("c02")), Truth: kb.True},
		{Atom: kb.A("bid", kb.S("c01"), kb.N(0.2), kb.N(0)), Truth: kb.True},
	})
	if len(out["received"]) != 1 || out["received"][0].Args[0].Str != "c01" {
		t.Fatalf("received = %v", out["received"])
	}
	if len(out["missing"]) != 1 || out["missing"][0].Args[0].Str != "c02" {
		t.Fatalf("missing = %v", out["missing"])
	}
}

func TestBidEvaluationRejectsRegressions(t *testing.T) {
	out := runUACoop(t, []kb.Fact{
		{Atom: kb.A("base_slope", kb.N(42.5)), Truth: kb.True},
		// c01 steps forward: valid. c02 regresses 0.3 → 0.1: invalid.
		{Atom: kb.A("bid", kb.S("c01"), kb.N(0.4), kb.N(0.2)), Truth: kb.True},
		{Atom: kb.A("bid", kb.S("c02"), kb.N(0.1), kb.N(0.3)), Truth: kb.True},
	})
	accepted := out["accepted_bid"]
	if len(accepted) != 1 {
		t.Fatalf("accepted = %v, want only c01", accepted)
	}
	if accepted[0].Args[0].Str != "c01" || accepted[0].Args[1].Num != 0.4 {
		t.Fatalf("accepted = %v", accepted[0])
	}
}

func TestLowResponseRateLowersPrediction(t *testing.T) {
	// With rate 0.2 the best candidate still saturates at min(1, s/42.5),
	// so selection is unchanged — but the composition must run cleanly with
	// a non-default rate and an explicit zero-overuse situation.
	out := runUACoop(t, []kb.Fact{
		{Atom: kb.A("base_slope", kb.N(42.5)), Truth: kb.True},
		{Atom: kb.A("response_rate", kb.N(0.2)), Truth: kb.True},
		{Atom: kb.A("overuse_kwh", kb.N(0)), Truth: kb.True},
	})
	if len(out["selected_slope"]) != 1 {
		t.Fatalf("selected = %v", out["selected_slope"])
	}
}
