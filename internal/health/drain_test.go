package health

import (
	"fmt"
	"strings"
	"testing"
)

// drainLogger builds a ring-only logger for cursor tests.
func drainLogger(t *testing.T, ring int) *Logger {
	t.Helper()
	l, err := New(Config{Proc: "t", MinLevel: Debug, RingSize: ring, StderrLevel: Off})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

// TestLogDrainSinceCursor walks the streaming cursor through fills, idle
// drains and ring wraps — the obsplane emitter's log-export contract.
func TestLogDrainSinceCursor(t *testing.T) {
	l := drainLogger(t, 16)

	evs, cur, missed := l.DrainSince(0, Debug)
	if len(evs) != 0 || cur != 0 || missed != 0 {
		t.Fatalf("empty drain = %d evs, cur %d, missed %d", len(evs), cur, missed)
	}

	for i := 0; i < 10; i++ {
		l.Log(Info, "c", fmt.Sprintf("ev-%02d", i), Int("i", int64(i)))
	}
	evs, cur, missed = l.DrainSince(0, Debug)
	if len(evs) != 10 || cur != 10 || missed != 0 {
		t.Fatalf("first drain = %d evs, cur %d, missed %d", len(evs), cur, missed)
	}
	for i, ev := range evs {
		if ev.Msg != fmt.Sprintf("ev-%02d", i) {
			t.Fatalf("event %d = %s, out of order", i, ev.Msg)
		}
	}
	if !strings.Contains(string(evs[3].Fields), `"i":3`) {
		t.Fatalf("fields not rendered: %s", evs[3].Fields)
	}

	// Idle drain: nothing new, cursor stable.
	evs, cur2, missed := l.DrainSince(cur, Debug)
	if len(evs) != 0 || cur2 != cur || missed != 0 {
		t.Fatalf("idle drain = %d evs, cur %d, missed %d", len(evs), cur2, missed)
	}

	// Wrap far past the cursor: losses accounted, window oldest-first.
	for i := 0; i < 40; i++ {
		l.Log(Info, "c", fmt.Sprintf("wrap-%02d", i))
	}
	evs, cur, missed = l.DrainSince(cur, Debug)
	if len(evs) != 16 || missed != 24 || cur != 50 {
		t.Fatalf("wrap drain = %d evs, cur %d, missed %d; want 16, 50, 24", len(evs), cur, missed)
	}
	if evs[0].Msg != "wrap-24" || evs[15].Msg != "wrap-39" {
		t.Fatalf("wrap window = %s..%s", evs[0].Msg, evs[15].Msg)
	}

	// Stale cursor beyond total is safe.
	evs, cur2, missed = l.DrainSince(cur+100, Debug)
	if len(evs) != 0 || cur2 != cur || missed != 0 {
		t.Fatalf("stale cursor drain = %d evs, cur %d, missed %d", len(evs), cur2, missed)
	}
}

// TestLogDrainSinceLevelFilter checks the min level gates what ships while
// the cursor still advances past filtered events (they are consumed, not
// re-delivered).
func TestLogDrainSinceLevelFilter(t *testing.T) {
	l := drainLogger(t, 64)
	l.Log(Debug, "c", "noise")
	l.Log(Info, "c", "info")
	l.Log(Warn, "c", "warn")
	l.Log(Error, "c", "error")

	evs, cur, _ := l.DrainSince(0, Warn)
	if len(evs) != 2 || evs[0].Msg != "warn" || evs[1].Msg != "error" {
		t.Fatalf("warn drain = %+v", evs)
	}
	if cur != 4 {
		t.Fatalf("cursor = %d, want 4 (filtered events still consumed)", cur)
	}
	// The filtered-out info event never re-appears on the next drain.
	evs, _, _ = l.DrainSince(cur, Debug)
	if len(evs) != 0 {
		t.Fatalf("re-delivered %d filtered events", len(evs))
	}
}

// TestLogDrainSinceNilLogger checks the nil receiver path the emitter
// relies on before a logger is installed.
func TestLogDrainSinceNilLogger(t *testing.T) {
	var l *Logger
	evs, cur, missed := l.DrainSince(7, Debug)
	if evs != nil || cur != 7 || missed != 0 {
		t.Fatalf("nil drain = %v, cur %d, missed %d", evs, cur, missed)
	}
}
