// Package units defines the domain quantities used throughout the load
// balancing system: energy, power, money, dimensionless fractions and time
// intervals.
//
// The paper (Brazier et al., ICDCS 1998) expresses cut-downs as fractions of
// allowed use, rewards as scalar money amounts and consumption either "in
// percentages or in kWh's" (Section 3.2.3). Keeping these as distinct types
// prevents the classic unit-confusion bugs (a kW where a kWh was meant, a
// percentage where a fraction was meant) that plain float64 invites.
package units

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Energy is an amount of electric energy in kilowatt-hours.
type Energy float64

// Power is an instantaneous rate of consumption in kilowatts.
type Power float64

// Money is a scalar reward/price amount. The paper never names a currency;
// rewards are abstract "reward values" (e.g. 17 for a cut-down of 0.4).
type Money float64

// Fraction is a dimensionless value normally in [0,1], used for cut-down
// fractions and overuse ratios. Overuse ratios may legitimately exceed 1.
type Fraction float64

// Sentinel errors reported by validation helpers.
var (
	ErrNegativeEnergy   = errors.New("units: energy must be non-negative")
	ErrNegativePower    = errors.New("units: power must be non-negative")
	ErrNegativeMoney    = errors.New("units: money must be non-negative")
	ErrFractionRange    = errors.New("units: fraction must lie in [0,1]")
	ErrIntervalInverted = errors.New("units: interval end must be after start")
	ErrNotFinite        = errors.New("units: value must be finite")
)

// KWh constructs an Energy value, validating that it is finite and
// non-negative.
func KWh(v float64) (Energy, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNotFinite
	}
	if v < 0 {
		return 0, ErrNegativeEnergy
	}
	return Energy(v), nil
}

// KWhs returns the underlying float64 kilowatt-hour amount.
func (e Energy) KWhs() float64 { return float64(e) }

// Add returns the sum of two energies.
func (e Energy) Add(o Energy) Energy { return e + o }

// Sub returns e − o, floored at zero: negative energy is meaningless in this
// domain (consumption cannot be negative).
func (e Energy) Sub(o Energy) Energy {
	if o >= e {
		return 0
	}
	return e - o
}

// Scale multiplies an energy by a dimensionless factor.
func (e Energy) Scale(f float64) Energy { return Energy(float64(e) * f) }

// Over returns e expressed as a ratio of base (e/base). A zero base yields a
// zero ratio, which matches the paper's convention that overuse against an
// empty grid is not meaningful.
func (e Energy) Over(base Energy) Fraction {
	if base == 0 {
		return 0
	}
	return Fraction(float64(e) / float64(base))
}

// String renders the energy with the kWh suffix.
func (e Energy) String() string { return fmt.Sprintf("%.3f kWh", float64(e)) }

// KW constructs a Power value, validating that it is finite and non-negative.
func KW(v float64) (Power, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNotFinite
	}
	if v < 0 {
		return 0, ErrNegativePower
	}
	return Power(v), nil
}

// KWs returns the underlying float64 kilowatt amount.
func (p Power) KWs() float64 { return float64(p) }

// For converts a constant power draw over a duration into energy.
func (p Power) For(d time.Duration) Energy {
	return Energy(float64(p) * d.Hours())
}

// String renders the power with the kW suffix.
func (p Power) String() string { return fmt.Sprintf("%.3f kW", float64(p)) }

// Amount constructs a Money value, validating that it is finite and
// non-negative. Rewards in the paper are always non-negative.
func Amount(v float64) (Money, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNotFinite
	}
	if v < 0 {
		return 0, ErrNegativeMoney
	}
	return Money(v), nil
}

// Value returns the underlying float64 amount.
func (m Money) Value() float64 { return float64(m) }

// Add returns the sum of two amounts.
func (m Money) Add(o Money) Money { return m + o }

// Scale multiplies an amount by a dimensionless factor.
func (m Money) Scale(f float64) Money { return Money(float64(m) * f) }

// String renders the amount to two decimals.
func (m Money) String() string { return fmt.Sprintf("%.2f", float64(m)) }

// Frac constructs a Fraction, validating it lies within [0,1].
func Frac(v float64) (Fraction, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNotFinite
	}
	if v < 0 || v > 1 {
		return 0, ErrFractionRange
	}
	return Fraction(v), nil
}

// Ratio constructs a Fraction that may exceed 1 (used for overuse ratios).
func Ratio(v float64) (Fraction, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrNotFinite
	}
	if v < 0 {
		return 0, ErrFractionRange
	}
	return Fraction(v), nil
}

// Float returns the underlying float64 value.
func (f Fraction) Float() float64 { return float64(f) }

// Complement returns 1 − f, floored at zero.
func (f Fraction) Complement() Fraction {
	if f >= 1 {
		return 0
	}
	return 1 - f
}

// Clamp01 limits the fraction to [0,1].
func (f Fraction) Clamp01() Fraction {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// String renders the fraction to three decimals.
func (f Fraction) String() string { return fmt.Sprintf("%.3f", float64(f)) }

// Interval is a half-open time window [Start, End) during which a cut-down
// or a prediction applies. Reward tables always carry "a time interval"
// (Section 3.2.3).
type Interval struct {
	Start time.Time
	End   time.Time
}

// NewInterval validates and constructs an Interval.
func NewInterval(start, end time.Time) (Interval, error) {
	if !end.After(start) {
		return Interval{}, ErrIntervalInverted
	}
	return Interval{Start: start, End: end}, nil
}

// Duration returns the length of the interval.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Overlaps reports whether two intervals share any instant.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start.Before(o.End) && o.Start.Before(iv.End)
}

// Split divides the interval into n equal sub-intervals. n must be positive.
func (iv Interval) Split(n int) ([]Interval, error) {
	if n <= 0 {
		return nil, fmt.Errorf("units: split count %d must be positive", n)
	}
	step := iv.Duration() / time.Duration(n)
	if step <= 0 {
		return nil, fmt.Errorf("units: interval %v too short to split into %d", iv.Duration(), n)
	}
	out := make([]Interval, 0, n)
	cur := iv.Start
	for i := 0; i < n; i++ {
		next := cur.Add(step)
		if i == n-1 {
			next = iv.End
		}
		out = append(out, Interval{Start: cur, End: next})
		cur = next
	}
	return out, nil
}

// String renders the interval in RFC 3339.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Start.Format(time.RFC3339), iv.End.Format(time.RFC3339))
}

// CutDown is a discrete cut-down level: a fraction of allowed use that a
// customer agrees to save during an interval. The prototype uses the levels
// 0.0, 0.1, ..., 0.9 (Figures 6-9).
type CutDown = Fraction

// StandardCutDowns returns the paper's cut-down grid 0.0, 0.1, …, 0.9.
func StandardCutDowns() []CutDown {
	out := make([]CutDown, 10)
	for i := range out {
		out[i] = CutDown(float64(i) / 10)
	}
	return out
}

// NearlyEqual reports whether two float64 values agree within tol. It is the
// single comparison helper used by tests and golden assertions.
func NearlyEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}
