package core

import (
	"fmt"
	"math/rand"

	"loadbalance/internal/customeragent"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

// SyntheticConfig parameterises a scale-test scenario.
type SyntheticConfig struct {
	// N is the number of customers.
	N int
	// Seed drives the preference randomisation.
	Seed int64
	// TargetOveruse sets normal capacity so predicted demand exceeds it by
	// this ratio; must be positive (0 means the default 0.35, the paper's
	// situation — a fleet with no peak has nothing to negotiate).
	TargetOveruse float64
}

// ScaledPaperPreferences builds the paper customer's private requirement
// table scaled by factor, with the prototype's 13.5 kWh expected use. This
// is the one definition of the canonical synthetic customer; the scale-test
// generator below and cmd/gridd's TCP clients both derive their fleets from
// it.
func ScaledPaperPreferences(factor float64) (customeragent.Preferences, error) {
	prefs, err := customeragent.NewPreferences(paperLevels(), map[float64]float64{
		0: 0, 0.1: 4 * factor, 0.2: 8 * factor, 0.3: 13 * factor, 0.4: 21 * factor,
	})
	if err != nil {
		return customeragent.Preferences{}, err
	}
	return prefs.WithExpectedUse(13.5), nil
}

// SyntheticScenario builds an N-customer scenario without the household
// simulator: every customer is a seeded variation of the paper's 13.5 kWh
// customer (its requirement table scaled by a factor in [0.8, 1.6]). The
// world-model synthesis behind PopulationScenario costs seconds per thousand
// households, which would dominate any scale measurement; this generator is
// O(N) map fills, so experiments and benchmarks at 10k-100k customers
// measure the negotiation engine, not the workload generator.
func SyntheticScenario(cfg SyntheticConfig) (Scenario, error) {
	if cfg.N <= 0 {
		return Scenario{}, fmt.Errorf("%w: population size %d", ErrBadScenario, cfg.N)
	}
	if cfg.TargetOveruse < 0 {
		return Scenario{}, fmt.Errorf("%w: target overuse %v must be positive", ErrBadScenario, cfg.TargetOveruse)
	}
	if cfg.TargetOveruse == 0 {
		cfg.TargetOveruse = 0.35
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Scenario{
		SessionID:    fmt.Sprintf("synth-%d-%d", cfg.N, cfg.Seed),
		Window:       paperWindow(),
		Method:       utilityagent.MethodRewardTable,
		Params:       PaperParams(),
		InitialSlope: 42.5,
		Customers:    make([]CustomerSpec, 0, cfg.N),
	}
	var total float64
	for i := 0; i < cfg.N; i++ {
		prefs, err := ScaledPaperPreferences(0.8 + 0.8*rng.Float64())
		if err != nil {
			return Scenario{}, err
		}
		s.Customers = append(s.Customers, CustomerSpec{
			Name:      fmt.Sprintf("c%06d", i),
			Predicted: 13.5,
			Allowed:   13.5,
			Prefs:     prefs,
			Strategy:  customeragent.StrategyGreedy,
		})
		total += 13.5
	}
	s.NormalUse = units.Energy(total / (1 + cfg.TargetOveruse))
	return s, nil
}
