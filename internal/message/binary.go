package message

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary envelope codec for the TCP transport's v2 wire format. The JSON
// codec (Marshal/Unmarshal) stays the interchange format for persistence and
// for v1 connections; the binary codec exists so an envelope crossing the
// network is encoded in a single pass — five length-prefixed byte strings —
// instead of being re-marshalled as a JSON document inside a JSON frame.
//
// Layout (all lengths are unsigned varints):
//
//	uvarint(len(From))    From bytes
//	uvarint(len(To))      To bytes
//	uvarint(len(Session)) Session bytes
//	uvarint(len(Kind))    Kind bytes
//	uvarint(len(Body))    Body bytes (the payload's JSON document, verbatim)
//	[uvarint(16) TraceID.be64 SpanID.be64]   optional trace context
//
// The Body stays JSON: payload schemas evolve faster than routing metadata,
// and the frame-level decoder never needs to look inside it.
//
// The trailing trace field was added after v2 shipped, so it is optional in
// both directions: an envelope without a trace context encodes exactly as
// before (five fields, byte-identical), and the decoder accepts both the
// five-field and six-field layouts. Peers running the original five-field
// decoder reject a traced envelope as malformed and drop that frame — the
// frame counter records it and the negotiation's quorum/timeout rules
// absorb the loss, the same degradation as any dropped announcement —
// while every untraced envelope interoperates unchanged.

// ErrTruncated reports a binary envelope that ends mid-field.
var ErrTruncated = errors.New("message: truncated binary envelope")

// traceFieldLen is the payload size of the optional trace field: two
// big-endian 64-bit ids.
const traceFieldLen = 16

// BinarySize returns the exact encoded size of the envelope in bytes.
func (e Envelope) BinarySize() int {
	n := varintStringSize(len(e.From)) +
		varintStringSize(len(e.To)) +
		varintStringSize(len(e.Session)) +
		varintStringSize(len(string(e.Kind))) +
		varintStringSize(len(e.Body))
	if e.Traced() {
		n += varintStringSize(traceFieldLen)
	}
	return n
}

// varintStringSize is the encoded size of one length-prefixed byte string.
func varintStringSize(n int) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], uint64(n)) + n
}

// AppendBinary appends the binary encoding of the envelope to dst and
// returns the extended slice.
func (e Envelope) AppendBinary(dst []byte) []byte {
	dst = appendVarintString(dst, e.From)
	dst = appendVarintString(dst, e.To)
	dst = appendVarintString(dst, e.Session)
	dst = appendVarintString(dst, string(e.Kind))
	dst = appendVarintString(dst, string(e.Body))
	if e.Traced() {
		dst = append(dst, traceFieldLen) // uvarint(16) is one byte
		dst = binary.BigEndian.AppendUint64(dst, e.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, e.SpanID)
	}
	return dst
}

// MarshalBinary renders the envelope in the v2 binary layout.
func (e Envelope) MarshalBinary() ([]byte, error) {
	return e.AppendBinary(make([]byte, 0, e.BinarySize())), nil
}

// appendVarintString appends one length-prefixed byte string.
func appendVarintString(dst []byte, s string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	dst = append(dst, tmp[:n]...)
	return append(dst, s...)
}

// UnmarshalBinary parses a binary envelope. It checks structure only (five
// well-formed fields consuming exactly data); callers validate content with
// Envelope.Decode, mirroring the JSON transport's split between framing and
// payload validation.
func UnmarshalBinary(data []byte) (Envelope, error) {
	var e Envelope
	var err error
	if e.From, data, err = readVarintString(data); err != nil {
		return Envelope{}, fmt.Errorf("%w: from", err)
	}
	if e.To, data, err = readVarintString(data); err != nil {
		return Envelope{}, fmt.Errorf("%w: to", err)
	}
	if e.Session, data, err = readVarintString(data); err != nil {
		return Envelope{}, fmt.Errorf("%w: session", err)
	}
	var kind string
	if kind, data, err = readVarintString(data); err != nil {
		return Envelope{}, fmt.Errorf("%w: kind", err)
	}
	e.Kind = Kind(kind)
	var body string
	if body, data, err = readVarintString(data); err != nil {
		return Envelope{}, fmt.Errorf("%w: body", err)
	}
	if len(body) > 0 {
		e.Body = []byte(body)
	}
	if len(data) > 0 {
		// Optional sixth field: the trace context.
		var tc string
		if tc, data, err = readVarintString(data); err != nil {
			return Envelope{}, fmt.Errorf("%w: trace", err)
		}
		if len(tc) != traceFieldLen {
			return Envelope{}, fmt.Errorf("message: trace field is %d bytes, want %d", len(tc), traceFieldLen)
		}
		e.TraceID = binary.BigEndian.Uint64([]byte(tc[:8]))
		e.SpanID = binary.BigEndian.Uint64([]byte(tc[8:]))
	}
	if len(data) != 0 {
		return Envelope{}, fmt.Errorf("message: %d trailing bytes after binary envelope", len(data))
	}
	return e, nil
}

// readVarintString consumes one length-prefixed byte string.
func readVarintString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return "", nil, ErrTruncated
	}
	data = data[used:]
	if uint64(len(data)) < n {
		return "", nil, ErrTruncated
	}
	return string(data[:n]), data[n:], nil
}

// AppendLenPrefixed appends one uvarint-length-prefixed byte string — the
// primitive the envelope codec above is built from, exported so other binary
// formats (the durability journal's record frames) share the exact encoding.
func AppendLenPrefixed(dst, val []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(val)))
	dst = append(dst, tmp[:n]...)
	return append(dst, val...)
}

// LenPrefixedSize returns the encoded size of a length-prefixed byte string
// of n bytes.
func LenPrefixedSize(n int) int { return varintStringSize(n) }

// ReadLenPrefixed consumes one uvarint-length-prefixed byte string and
// returns it alongside the remaining data. The returned value aliases data.
func ReadLenPrefixed(data []byte) (val, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, nil, ErrTruncated
	}
	data = data[used:]
	if uint64(len(data)) < n {
		return nil, nil, ErrTruncated
	}
	return data[:n], data[n:], nil
}
