// Fixture: wall-clock reads walltime must flag in a forbidden package
// (the test scopes the analyzer to this fixture's path).
package flag

import "time"

func now() time.Time {
	return time.Now() // want `time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since`
}

func remaining(t1 time.Time) time.Duration {
	return time.Until(t1) // want `time\.Until`
}

func wait(d time.Duration) {
	<-time.After(d) // want `time\.After`
}

func timers(d time.Duration) {
	tick := time.NewTicker(d) // want `time\.NewTicker`
	tick.Stop()
	tm := time.NewTimer(d) // want `time\.NewTimer`
	tm.Stop()
	time.AfterFunc(d, func() {}).Stop() // want `time\.AfterFunc`
}

// The escape hatch for genuine measurement sites.
func measured(t0 time.Time) time.Duration {
	return time.Since(t0) //gridlint:allow walltime(fixture: latency measurement that never feeds replayed state)
}

// Explicit-instant arithmetic is fine: the instant came from the caller
// (ultimately from the journal), not the wall clock.
func derive(t0 time.Time, d time.Duration) time.Time {
	return t0.Add(d)
}
