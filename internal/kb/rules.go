package kb

import (
	"fmt"
	"strings"
)

// Guard is a numeric side-condition in a rule antecedent, comparing two terms
// after substitution. DESIRE knowledge bases routinely contain arithmetic
// comparisons such as "offered reward >= required reward"; guards provide
// exactly that without a full arithmetic theory.
type Guard struct {
	Op    GuardOp
	Left  Term
	Right Term
}

// GuardOp enumerates the comparison operators usable in guards.
type GuardOp int

// Guard operators.
const (
	OpEq GuardOp = iota + 1
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

// String renders the operator symbol.
func (op GuardOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	default:
		return "?"
	}
}

// Eval evaluates the guard under a binding. Numeric operands compare
// numerically; any other ground operands compare by structural equality
// (only for == and !=). Unbound variables make the guard fail.
func (g Guard) Eval(b Binding) bool {
	l := substitute(g.Left, b)
	r := substitute(g.Right, b)
	if !l.IsGround() || !r.IsGround() {
		return false
	}
	if l.Kind == KindNumber && r.Kind == KindNumber {
		switch g.Op {
		case OpEq:
			return l.Num == r.Num
		case OpNeq:
			return l.Num != r.Num
		case OpLt:
			return l.Num < r.Num
		case OpLeq:
			return l.Num <= r.Num
		case OpGt:
			return l.Num > r.Num
		case OpGeq:
			return l.Num >= r.Num
		}
		return false
	}
	switch g.Op {
	case OpEq:
		return l.Equal(r)
	case OpNeq:
		return !l.Equal(r)
	default:
		return false
	}
}

// String renders the guard.
func (g Guard) String() string {
	return fmt.Sprintf("%s %s %s", g.Left, g.Op, g.Right)
}

// Literal is an atom or its negation inside a rule antecedent. Negation is
// negation-as-unknown over the current store: "not p" succeeds when p is not
// explicitly True.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos returns a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// String renders the literal.
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is an if-then rule: when every antecedent literal is satisfied (and
// every guard passes) under some binding, each consequent atom is asserted
// True under that binding. Negated antecedents must not bind new variables
// (they are checks, not generators), mirroring safe Datalog.
type Rule struct {
	Name      string
	If        []Literal
	Guards    []Guard
	Then      []Atom
	ThenFalse []Atom // consequents asserted False (DESIRE supports explicit negative conclusions)
}

// Validate performs static safety checks: every variable in a consequent or
// negated literal or guard must occur in some positive antecedent literal.
func (r Rule) Validate() error {
	bound := make(map[string]bool)
	for _, l := range r.If {
		if l.Negated {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.Kind == KindVar {
				bound[t.Name] = true
			}
		}
	}
	check := func(where string, ts []Term) error {
		for _, t := range ts {
			if t.Kind == KindVar && !bound[t.Name] {
				return fmt.Errorf("kb: rule %q: unbound variable ?%s in %s", r.Name, t.Name, where)
			}
		}
		return nil
	}
	for _, l := range r.If {
		if !l.Negated {
			continue
		}
		if err := check("negated antecedent "+l.Atom.String(), l.Atom.Args); err != nil {
			return err
		}
	}
	for _, g := range r.Guards {
		if err := check("guard "+g.String(), []Term{g.Left, g.Right}); err != nil {
			return err
		}
	}
	for _, a := range r.Then {
		if err := check("consequent "+a.String(), a.Args); err != nil {
			return err
		}
	}
	for _, a := range r.ThenFalse {
		if err := check("negative consequent "+a.String(), a.Args); err != nil {
			return err
		}
	}
	return nil
}

// String renders the rule.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteString(": if ")
	parts := make([]string, 0, len(r.If)+len(r.Guards))
	for _, l := range r.If {
		parts = append(parts, l.String())
	}
	for _, g := range r.Guards {
		parts = append(parts, g.String())
	}
	b.WriteString(strings.Join(parts, " and "))
	b.WriteString(" then ")
	outs := make([]string, 0, len(r.Then)+len(r.ThenFalse))
	for _, a := range r.Then {
		outs = append(outs, a.String())
	}
	for _, a := range r.ThenFalse {
		outs = append(outs, "not "+a.String())
	}
	b.WriteString(strings.Join(outs, " and "))
	return b.String()
}

// Base is a knowledge base: a named collection of rules. Bases compose per
// DESIRE's knowledge composition (Compose).
type Base struct {
	Name  string
	Rules []Rule
}

// NewBase validates all rules and constructs a Base.
func NewBase(name string, rules ...Rule) (*Base, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &Base{Name: name, Rules: append([]Rule(nil), rules...)}, nil
}

// Compose concatenates several knowledge bases into one, preserving rule
// order (earlier bases' rules fire first within each fixpoint pass).
func Compose(name string, bases ...*Base) *Base {
	var rules []Rule
	for _, b := range bases {
		rules = append(rules, b.Rules...)
	}
	return &Base{Name: name, Rules: rules}
}

// Engine evaluates a knowledge base against a store by forward chaining.
type Engine struct {
	base *Base
	// MaxPasses bounds fixpoint iteration as a defence against pathological
	// rule sets; 0 means the default.
	MaxPasses int
}

// NewEngine returns an engine for the given base.
func NewEngine(base *Base) *Engine { return &Engine{base: base} }

const defaultMaxPasses = 64

// Infer applies the rules to the store until no pass derives a new fact,
// returning the facts derived (in derivation order). Positive consequents are
// asserted True, negative consequents False. A consequent never downgrades an
// existing value: once a store holds True or False for an atom, conflicting
// derivations are reported as an error, matching DESIRE's consistency
// requirement on information states.
func (e *Engine) Infer(s *Store) ([]Fact, error) {
	maxPasses := e.MaxPasses
	if maxPasses <= 0 {
		maxPasses = defaultMaxPasses
	}
	var derived []Fact
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, r := range e.base.Rules {
			bindings, err := e.antecedentBindings(s, r)
			if err != nil {
				return derived, err
			}
			for _, b := range bindings {
				ok, err := e.applyConsequents(s, r, b, &derived)
				if err != nil {
					return derived, err
				}
				if ok {
					changed = true
				}
			}
		}
		if !changed {
			return derived, nil
		}
	}
	return derived, fmt.Errorf("kb: base %q did not reach a fixpoint within %d passes", e.base.Name, maxPasses)
}

// antecedentBindings enumerates all bindings satisfying a rule's antecedent.
func (e *Engine) antecedentBindings(s *Store, r Rule) ([]Binding, error) {
	bindings := []Binding{{}}
	for _, l := range r.If {
		if l.Negated {
			var keep []Binding
			for _, b := range bindings {
				g := SubstituteAtom(l.Atom, b)
				if !g.IsGround() {
					return nil, fmt.Errorf("kb: rule %q: negated literal %s not ground at evaluation", r.Name, l.Atom)
				}
				if s.TruthOf(g) != True {
					keep = append(keep, b)
				}
			}
			bindings = keep
		} else {
			var next []Binding
			for _, b := range bindings {
				next = append(next, s.Match(l.Atom, b)...)
			}
			bindings = next
		}
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	var keep []Binding
	for _, b := range bindings {
		ok := true
		for _, g := range r.Guards {
			if !g.Eval(b) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, b)
		}
	}
	return keep, nil
}

// applyConsequents asserts a rule's consequents under one binding. It returns
// whether any store change occurred.
func (e *Engine) applyConsequents(s *Store, r Rule, b Binding, derived *[]Fact) (bool, error) {
	changed := false
	apply := func(a Atom, tv Truth) error {
		g := SubstituteAtom(a, b)
		if !g.IsGround() {
			return fmt.Errorf("kb: rule %q: consequent %s not ground", r.Name, a)
		}
		switch cur := s.TruthOf(g); cur {
		case tv:
			return nil
		case Unknown:
			if err := s.Assert(g, tv); err != nil {
				return fmt.Errorf("kb: rule %q: %w", r.Name, err)
			}
			*derived = append(*derived, Fact{Atom: g, Truth: tv})
			changed = true
			return nil
		default:
			return fmt.Errorf("kb: rule %q derives %s = %s but store holds %s", r.Name, g, tv, cur)
		}
	}
	for _, a := range r.Then {
		if err := apply(a, True); err != nil {
			return changed, err
		}
	}
	for _, a := range r.ThenFalse {
		if err := apply(a, False); err != nil {
			return changed, err
		}
	}
	return changed, nil
}
