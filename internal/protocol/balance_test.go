package protocol

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/units"
)

func testWindow() units.Interval {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}

func TestUseWithCutDown(t *testing.T) {
	tests := []struct {
		name string
		give CustomerLoad
		want float64
	}{
		{
			// (1-0.4)*10 = 6 < 9: the cap binds.
			name: "cap binds",
			give: CustomerLoad{Predicted: 9, Allowed: 10, CutDown: 0.4},
			want: 6,
		},
		{
			// (1-0.1)*10 = 9 >= 8: prediction stands.
			name: "cap does not bind",
			give: CustomerLoad{Predicted: 8, Allowed: 10, CutDown: 0.1},
			want: 8,
		},
		{
			name: "zero cutdown",
			give: CustomerLoad{Predicted: 13.5, Allowed: 13.5, CutDown: 0},
			want: 13.5,
		},
		{
			name: "full cutdown",
			give: CustomerLoad{Predicted: 13.5, Allowed: 13.5, CutDown: 1},
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UseWithCutDown(tt.give); !units.NearlyEqual(got.KWhs(), tt.want, 1e-12) {
				t.Fatalf("UseWithCutDown = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestPaperBalanceNumbers pins the Figure 6 situation: normal capacity 100,
// predicted usage 135, overuse 35 and ratio 0.35 before any cut-downs.
func TestPaperBalanceNumbers(t *testing.T) {
	loads := make(map[string]CustomerLoad, 10)
	for i := 0; i < 10; i++ {
		loads[string(rune('a'+i))] = CustomerLoad{Predicted: 13.5, Allowed: 13.5}
	}
	if got := PredictedOveruse(loads, 100); !units.NearlyEqual(got, 35, 1e-9) {
		t.Fatalf("overuse = %v, want 35", got)
	}
	if got := OveruseRatio(loads, 100); !units.NearlyEqual(got, 0.35, 1e-12) {
		t.Fatalf("ratio = %v, want 0.35", got)
	}
}

func TestOveruseCanBeNegative(t *testing.T) {
	loads := map[string]CustomerLoad{"a": {Predicted: 40, Allowed: 40}}
	if got := PredictedOveruse(loads, 100); got != -60 {
		t.Fatalf("overuse = %v, want -60", got)
	}
	if got := OveruseRatio(nil, 0); got != 0 {
		t.Fatalf("ratio with zero base = %v, want 0", got)
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Params{Beta: 1.95, MaxRewardSlope: 125, Epsilon: 1, AllowedOveruseRatio: 0.05}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "zero beta", mutate: func(p *Params) { p.Beta = 0 }},
		{name: "negative slope", mutate: func(p *Params) { p.MaxRewardSlope = -1 }},
		{name: "negative epsilon", mutate: func(p *Params) { p.Epsilon = -0.1 }},
		{name: "negative allowed overuse", mutate: func(p *Params) { p.AllowedOveruseRatio = -0.1 }},
		{name: "negative rounds", mutate: func(p *Params) { p.MaxRounds = -1 }},
		{name: "negative min responses", mutate: func(p *Params) { p.MinResponses = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid
			tt.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrBadParams) {
				t.Fatalf("Validate = %v, want ErrBadParams", err)
			}
		})
	}
}

// Property: UseWithCutDown is bounded by both the prediction and the scaled
// allowance, and is monotonically non-increasing in the cut-down.
func TestUseWithCutDownProperties(t *testing.T) {
	f := func(pRaw, aRaw uint16, c1Raw, c2Raw uint8) bool {
		pred := units.Energy(float64(pRaw) / 100)
		allowed := units.Energy(float64(aRaw) / 100)
		c1 := float64(c1Raw%101) / 100
		c2 := float64(c2Raw%101) / 100
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		u1 := UseWithCutDown(CustomerLoad{Predicted: pred, Allowed: allowed, CutDown: c1})
		u2 := UseWithCutDown(CustomerLoad{Predicted: pred, Allowed: allowed, CutDown: c2})
		if u1 > pred || u2 > pred {
			return false
		}
		if u1.KWhs() > allowed.KWhs()*(1-c1)+1e-9 {
			return false
		}
		return u2 <= u1+1e-9 // more cut-down never increases use
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
