// Package cluster scales the paper's single Utility-Agent ↔ N Customer-Agent
// negotiation to large fleets by interposing an aggregation tier: a
// hierarchical negotiation tree in which each Concentrator Agent fronts a
// shard of Customer Agents. The root Utility Agent announces reward tables to
// K concentrators instead of N customers; each concentrator fans the
// announcement out to its shard, collects the shard's bids concurrently on
// its own bus, and answers upward with one aggregated bid. Per-round work at
// the root drops from O(N) to O(K), shards negotiate in parallel, and —
// because predicted use, savable load and allowance are additive across
// customers — the root's balance prediction, reward-table updates and the
// paper's convergence conditions (1) and (2) are preserved exactly.
//
// The aggregated bid is continuous (a capacity-weighted effective cut-down),
// so the root session runs with protocol.Params.ContinuousBids: bids may land
// between grid levels and rewards interpolate linearly. Customers themselves
// still bid grid levels against the very same tables they would see flat, so
// a seeded scenario negotiated flat and negotiated through the tree reaches
// the same terminal outcome with the same aggregate predicted overuse (up to
// floating-point rounding).
package cluster

import (
	"fmt"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
	"loadbalance/internal/utilityagent"
)

// Config parameterises a hierarchical negotiation run.
type Config struct {
	// Scenario is the flat scenario to negotiate through the tree. Only the
	// reward-table method is supported (the prototype's method; the offer
	// and request-for-bids methods have no additive aggregate).
	Scenario core.Scenario
	// Shards is the number of concentrators (default 4).
	Shards int
	// ShardRoundTimeout closes a shard round without full quorum; it must
	// be comfortably shorter than the scenario's RoundTimeout so a forced
	// shard answer still reaches the root inside the root's round window
	// (defaults to half the scenario's RoundTimeout). Required, like the
	// flat engine's, whenever the scenario is lossy or has silent
	// customers.
	ShardRoundTimeout time.Duration
	// Journal optionally records the negotiation's terminal outcome — the
	// per-member bids and awards — as a durable session record before Run
	// returns, making a long scenario run resumable from its data dir.
	Journal *store.Store
	// JournalConfig fingerprints the parameters this run executes under;
	// it is copied into the session record so a resume can refuse an
	// outcome computed under different parameters.
	JournalConfig string
	// TraceParent links the session's root span under an enclosing trace
	// (a live tick's renegotiation decision); invalid starts a new trace.
	TraceParent trace.Context
}

// Result is the outcome of one hierarchical negotiation run.
type Result struct {
	utilityagent.Result
	// Shards is the concentrator count used.
	Shards int
	// ParentBus holds the root-tier transport counters.
	ParentBus bus.Stats
	// ShardBuses holds each shard bus's counters.
	ShardBuses []bus.Stats
	// FinalBids maps each non-silent customer to its last cut-down bid.
	FinalBids map[string]float64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// AgentErrors collects handler errors from every runtime.
	AgentErrors []error
}

// Messages sums the traffic across both tiers.
func (r *Result) Messages() int {
	total := r.ParentBus.Sent
	for _, s := range r.ShardBuses {
		total += s.Sent
	}
	return total
}

// Run executes a scenario through a 2-level concentrator tree: a root bus
// carrying the Utility Agent and K concentrators, and K independent
// in-process shard buses each carrying one concentrator and its customers.
func Run(cfg Config) (*Result, error) {
	s := cfg.Scenario
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Method != utilityagent.MethodRewardTable {
		return nil, fmt.Errorf("%w: cluster negotiation requires the reward-table method, got %v", ErrBadConfig, s.Method)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadConfig, cfg.Shards)
	}
	if cfg.ShardRoundTimeout <= 0 {
		cfg.ShardRoundTimeout = s.RoundTimeout / 2
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	topo, err := NewTopology(s.Loads(), cfg.Shards)
	if err != nil {
		return nil, err
	}
	specs := make(map[string]core.CustomerSpec, len(s.Customers))
	for _, spec := range s.Customers {
		specs[spec.Name] = spec
	}

	// The root tier is lossless: concentrator links model the utility's own
	// backbone, while the scenario's DropRate injects loss on the customer
	// links, one seeded stream per shard.
	parent, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}
	defer parent.Close()

	start := time.Now() //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)

	var runtimes []*agentrt.Runtime
	var tier *Tier
	var shardBuses []*bus.InProc
	defer func() {
		if tier != nil {
			tier.Stop()
		}
		for _, rt := range runtimes {
			rt.Stop()
		}
		for _, b := range shardBuses {
			b.Close()
		}
	}()

	maxShardSize := 0
	cas := make(map[string]*customeragent.Agent, len(s.Customers))
	for i := 0; i < topo.Shards(); i++ {
		members := topo.Members(i)
		if len(members) > maxShardSize {
			maxShardSize = len(members)
		}
		shardBus, err := bus.NewInProc(bus.Config{DropRate: s.DropRate, Seed: s.Seed + int64(i) + 1})
		if err != nil {
			return nil, err
		}
		shardBuses = append(shardBuses, shardBus)

		for _, name := range members {
			spec := specs[name]
			var handler agentrt.Handler
			if spec.Silent {
				handler = agentrt.HandlerFuncs{}
			} else {
				ca, err := customeragent.New(spec.Name, spec.Prefs, spec.Strategy)
				if err != nil {
					return nil, fmt.Errorf("cluster: customer %q: %w", spec.Name, err)
				}
				cas[spec.Name] = ca
				handler = ca
			}
			rt, err := agentrt.Start(spec.Name, shardBus, handler, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: start %q: %w", spec.Name, err)
			}
			runtimes = append(runtimes, rt)
		}
	}

	tier, err = StartTier(parent, func(i int) bus.Bus { return shardBuses[i] }, topo, TierConfig{
		SessionID:         s.SessionID,
		FleetMinResponses: s.Params.MinResponses,
		RoundTimeout:      cfg.ShardRoundTimeout,
		InboxSize:         4 * max(maxShardSize, 16),
	})
	if err != nil {
		return nil, err
	}

	// The root negotiates with the K concentrators over aggregated loads.
	ua, err := utilityagent.New(utilityagent.Config{
		Name:         "ua",
		SessionID:    s.SessionID,
		Window:       s.Window,
		NormalUse:    s.NormalUse,
		Loads:        topo.AggregateLoads(),
		Method:       utilityagent.MethodRewardTable,
		Params:       RootParams(s.Params),
		LeadTime:     s.LeadTime,
		InitialSlope: s.InitialSlope,
		RoundTimeout: s.RoundTimeout,
		WarrantRatio: s.Params.AllowedOveruseRatio,
		TraceParent:  cfg.TraceParent,
	})
	if err != nil {
		return nil, err
	}
	uaRT, err := agentrt.Start("ua", parent, ua, 4*max(topo.Shards(), 16))
	if err != nil {
		return nil, err
	}
	runtimes = append(runtimes, uaRT)

	var uaResult utilityagent.Result
	select {
	case uaResult = <-ua.Done():
	case <-time.After(timeout): //gridlint:allow walltime(liveness timeout for a stalled fleet; fires only when the run already failed)
		return nil, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}

	// Let awards and session-end relays propagate down the tree before
	// teardown, so member awards are consistent. A below-warrant prediction
	// ends without any announcement, so there is nothing to relay.
	if len(uaResult.History) > 0 {
		drainDeadline := time.Now().Add(200 * time.Millisecond) //gridlint:allow walltime(bounded message-drain deadline; liveness only, awards are already decided)
		for time.Now().Before(drainDeadline) {                  //gridlint:allow walltime(bounded message-drain deadline; liveness only, awards are already decided)
			if allRelayed(tier.Concentrators) && allAwarded(tier.Concentrators, cas, s.SessionID) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	res := &Result{
		Result:    uaResult,
		Shards:    topo.Shards(),
		ParentBus: parent.Stats(),
		FinalBids: make(map[string]float64, len(cas)),
		Elapsed:   time.Since(start), //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)
	}
	for name, ca := range cas {
		res.FinalBids[name] = ca.LastBid(s.SessionID)
	}
	for _, b := range shardBuses {
		res.ShardBuses = append(res.ShardBuses, b.Stats())
	}
	for _, rt := range runtimes {
		res.AgentErrors = append(res.AgentErrors, rt.Errors()...)
	}
	res.AgentErrors = append(res.AgentErrors, tier.Errors()...)
	if cfg.Journal != nil {
		if err := journalOutcome(cfg.Journal, s.SessionID, cfg.JournalConfig, res, cas); err != nil {
			return res, err
		}
	}
	return res, nil
}

// journalOutcome appends the session's terminal record: every in-process
// member's final bid and delivered award. A journaling failure surfaces as
// the run's error — durable mode must never report success for an outcome
// that is not on disk.
func journalOutcome(j *store.Store, session, config string, res *Result, cas map[string]*customeragent.Agent) error {
	out := store.SessionOutcome{
		SessionID: session,
		Outcome:   res.Outcome,
		Rounds:    res.Rounds,
		Config:    config,
		Bids:      make(map[string]float64, len(res.FinalBids)),
		Awards:    make(map[string]store.AwardEntry, len(cas)),
	}
	for name, bid := range res.FinalBids {
		out.Bids[name] = bid
	}
	for name, ca := range cas {
		if award, ok := ca.AwardFor(session); ok {
			out.Awards[name] = store.AwardEntry{CutDown: award.CutDown, Reward: award.Reward}
		}
	}
	rec, err := store.NewSessionRecord(out)
	if err != nil {
		return err
	}
	if err := j.Append(rec); err != nil {
		return err
	}
	return j.Sync()
}

// allRelayed reports whether every concentrator has forwarded the session
// end to its shard.
func allRelayed(ccs []*Concentrator) bool {
	for _, c := range ccs {
		if !c.Done() {
			return false
		}
	}
	return true
}

// allAwarded reports whether every responding member hosted in-process has
// seen its award. Lossy shard buses may legitimately drop awards, so this
// only gates the drain loop, never the result.
func allAwarded(ccs []*Concentrator, cas map[string]*customeragent.Agent, session string) bool {
	for _, c := range ccs {
		for _, name := range c.RespondedMembers() {
			ca, ok := cas[name]
			if !ok {
				continue
			}
			if _, got := ca.AwardFor(session); !got {
				return false
			}
		}
	}
	return true
}

// shardQuorum scales the fleet-level "acceptable number of bids" to one
// shard, rounding up so shards are never laxer than the flat session.
func shardQuorum(fleetMin, fleetSize, shardSize int) int {
	if fleetMin <= 0 || fleetSize <= 0 || shardSize == 0 {
		return 0
	}
	q := (fleetMin*shardSize + fleetSize - 1) / fleetSize
	if q > shardSize {
		q = shardSize
	}
	if q < 1 {
		q = 1
	}
	return q
}
