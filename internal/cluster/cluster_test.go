package cluster

import (
	"math"
	"testing"
	"time"

	"loadbalance/internal/core"
	"loadbalance/internal/protocol"
	"loadbalance/internal/store"
	"loadbalance/internal/utilityagent"
)

// paperScenario fetches the seeded Figures 6-9 scenario.
func paperScenario(t *testing.T) core.Scenario {
	t.Helper()
	s, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFlatVsShardedEquivalence is the acceptance gate: the seeded paper
// scenario negotiated flat and through 2-level concentrator trees of several
// widths reaches the same terminal outcome in the same number of rounds, with
// the aggregate predicted overuse matching within float tolerance.
func TestFlatVsShardedEquivalence(t *testing.T) {
	flat, err := core.Run(paperScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 5} {
		res, err := Run(Config{Scenario: paperScenario(t), Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, e := range res.AgentErrors {
			t.Errorf("shards=%d: agent error: %v", shards, e)
		}
		if res.Outcome != flat.Outcome {
			t.Fatalf("shards=%d: outcome %q, flat %q", shards, res.Outcome, flat.Outcome)
		}
		if res.Rounds != flat.Rounds {
			t.Fatalf("shards=%d: rounds %d, flat %d", shards, res.Rounds, flat.Rounds)
		}
		if d := math.Abs(res.FinalOveruseKWh - flat.FinalOveruseKWh); d > 1e-6 {
			t.Fatalf("shards=%d: final overuse %v, flat %v (Δ %v)", shards, res.FinalOveruseKWh, flat.FinalOveruseKWh, d)
		}
		if d := math.Abs(res.InitialOveruseKWh - flat.InitialOveruseKWh); d > 1e-6 {
			t.Fatalf("shards=%d: initial overuse %v, flat %v", shards, res.InitialOveruseKWh, flat.InitialOveruseKWh)
		}
		// Every customer's final commitment must match its flat bid: the
		// concentrators forward the identical tables, so the identical
		// deciders make the identical choices.
		for name, bid := range flat.FinalBids {
			if got := res.FinalBids[name]; got != bid {
				t.Fatalf("shards=%d: %s final bid %v, flat %v", shards, name, got, bid)
			}
		}
		// The root sees K concentrators, so its announcements fan out K
		// envelopes per round instead of N.
		if shards < len(paperScenario(t).Customers) && res.ParentBus.Sent >= flat.Bus.Sent {
			t.Fatalf("shards=%d: parent traffic %d not below flat %d", shards, res.ParentBus.Sent, flat.Bus.Sent)
		}
	}
}

// TestShardedAwardsMatchFlat checks the concentrators pay members exactly
// what the flat Utility Agent would have paid them.
func TestShardedAwardsMatchFlat(t *testing.T) {
	flat, err := core.Run(paperScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	flatRewards := make(map[string]float64, len(flat.Awards))
	for _, aw := range flat.Awards {
		flatRewards[aw.Customer] = aw.Award.Reward
	}
	res, err := Run(Config{Scenario: paperScenario(t), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalBids) != len(flatRewards) {
		t.Fatalf("customers = %d, want %d", len(res.FinalBids), len(flatRewards))
	}
	// Member awards are delivered to the customer agents; FinalBids carries
	// the commitments the rewards were computed from.
	for name, bid := range res.FinalBids {
		if bid != flat.FinalBids[name] {
			t.Fatalf("%s: bid %v, flat %v", name, bid, flat.FinalBids[name])
		}
	}
}

// TestEmptyShard runs more shards than customers: the surplus concentrators
// front empty shards and must answer 0 upward without stalling the session.
func TestEmptyShard(t *testing.T) {
	s := paperScenario(t)
	s.Customers = s.Customers[:3]
	s.NormalUse = 30 // keep the paper's ≈35% overuse for the 3×13.5 kWh fleet
	res, err := Run(Config{Scenario: s, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 5 {
		t.Fatalf("shards = %d", res.Shards)
	}
	if res.Outcome == "" || res.Rounds == 0 {
		t.Fatalf("no negotiation ran: %+v", res.Result)
	}
}

// TestSingleCustomerShards runs one customer per shard: the effective
// cut-down of a singleton shard reproduces (or dominates, when the cap does
// not bind) the member's own bid, and the outcome still matches flat.
func TestSingleCustomerShards(t *testing.T) {
	flat, err := core.Run(paperScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	s := paperScenario(t)
	res, err := Run(Config{Scenario: s, Shards: len(s.Customers)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != flat.Outcome || res.Rounds != flat.Rounds {
		t.Fatalf("outcome %q in %d rounds, flat %q in %d", res.Outcome, res.Rounds, flat.Outcome, flat.Rounds)
	}
	if d := math.Abs(res.FinalOveruseKWh - flat.FinalOveruseKWh); d > 1e-6 {
		t.Fatalf("final overuse %v, flat %v", res.FinalOveruseKWh, flat.FinalOveruseKWh)
	}
}

// TestLossyShards injects message loss on the shard buses: the concentrators'
// round timeouts implement the "acceptable number of bids" rule, so the
// negotiation must still terminate with a terminal outcome.
func TestLossyShards(t *testing.T) {
	s := paperScenario(t)
	s.DropRate = 0.15
	s.Seed = 7
	s.RoundTimeout = 50 * time.Millisecond
	s.Timeout = 60 * time.Second
	res, err := Run(Config{
		Scenario:          s,
		Shards:            3,
		ShardRoundTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Outcome {
	case protocol.OutcomeConverged.String(), protocol.OutcomeCeiling.String(), protocol.OutcomeMaxRounds.String():
	default:
		t.Fatalf("non-terminal outcome %q", res.Outcome)
	}
	dropped := 0
	for _, b := range res.ShardBuses {
		dropped += b.Dropped
	}
	if dropped == 0 {
		t.Fatal("expected injected loss on the shard buses")
	}
}

// TestSilentMembers puts silent customers in the shards and leaves
// ShardRoundTimeout at its default (half the root's RoundTimeout): the shard
// timeouts must fire inside the root's round window, so the live members'
// bids still count toward the root's balance prediction.
func TestSilentMembers(t *testing.T) {
	s := paperScenario(t)
	s.Customers[0].Silent = true
	s.Customers[5].Silent = true
	s.RoundTimeout = 100 * time.Millisecond
	s.Timeout = 60 * time.Second
	res, err := Run(Config{Scenario: s, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("negotiation never ran")
	}
	if _, ok := res.FinalBids[s.Customers[0].Name]; ok {
		t.Fatal("silent customer should have no recorded bid")
	}
	// The eight live customers concede; if the shards' forced answers were
	// arriving after the root closed its rounds, no bid would ever land and
	// the overuse would stay at its initial 35 kWh.
	if res.FinalOveruseKWh >= res.InitialOveruseKWh {
		t.Fatalf("live members' bids never reached the root: overuse %v → %v",
			res.InitialOveruseKWh, res.FinalOveruseKWh)
	}
}

// TestTopologyPartitions checks determinism, balance and aggregate sums.
func TestTopologyPartitions(t *testing.T) {
	loads := map[string]protocol.CustomerLoad{
		"a": {Predicted: 10, Allowed: 12},
		"b": {Predicted: 20, Allowed: 22},
		"c": {Predicted: 30, Allowed: 32},
		"d": {Predicted: 40, Allowed: 42},
		"e": {Predicted: 50, Allowed: 52},
	}
	topo, err := NewTopology(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Members(0); len(got) != 3 || got[0] != "a" {
		t.Fatalf("shard 0 = %v", got)
	}
	if got := topo.Members(1); len(got) != 2 || got[0] != "d" {
		t.Fatalf("shard 1 = %v", got)
	}
	agg := topo.AggregateLoads()
	if len(agg) != 2 {
		t.Fatalf("aggregates = %v", agg)
	}
	var pred float64
	for _, l := range agg {
		pred += l.Predicted.KWhs()
	}
	if pred != 150 {
		t.Fatalf("aggregate predicted = %v", pred)
	}
	if _, err := NewTopology(loads, 0); err == nil {
		t.Fatal("zero shards should fail")
	}
}

// TestConcentratorConfigValidation covers the constructor's rejections.
func TestConcentratorConfigValidation(t *testing.T) {
	valid := ConcentratorConfig{Name: "cc", SessionID: "s"}
	if _, err := NewConcentrator(valid); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []ConcentratorConfig{
		{SessionID: "s"},
		{Name: "cc"},
		{Name: "cc", SessionID: "s", MinResponses: 1},
		{Name: "cc", SessionID: "s", Members: map[string]protocol.CustomerLoad{"cc": {}}},
	} {
		if _, err := NewConcentrator(cfg); err == nil {
			t.Fatalf("config %+v should fail", cfg)
		}
	}
}

// TestRunRejectsNonRewardTableMethods documents the cluster's scope.
func TestRunRejectsNonRewardTableMethods(t *testing.T) {
	s := paperScenario(t)
	s.Method = utilityagent.MethodOffer
	if _, err := Run(Config{Scenario: s, Shards: 2}); err == nil {
		t.Fatal("offer method through a cluster should fail")
	}
}

// TestShardQuorum checks the proportional scaling rounds up.
func TestShardQuorum(t *testing.T) {
	tests := []struct {
		fleetMin, fleetSize, shardSize, want int
	}{
		{0, 10, 5, 0},
		{10, 10, 5, 5},
		{5, 10, 4, 2},
		{1, 10, 3, 1},
		{9, 10, 1, 1},
		{3, 9, 0, 0},
	}
	for _, tt := range tests {
		if got := shardQuorum(tt.fleetMin, tt.fleetSize, tt.shardSize); got != tt.want {
			t.Fatalf("shardQuorum(%d,%d,%d) = %d, want %d", tt.fleetMin, tt.fleetSize, tt.shardSize, got, tt.want)
		}
	}
}

// TestRunJournalsOutcome checks the engine's decision-point journaling: a
// run with a Journal leaves a durable session record carrying every member's
// final bid and delivered award.
func TestRunJournalsOutcome(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Scenario: paperScenario(t), Shards: 2, Journal: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := store.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Kind != store.KindSession {
		t.Fatalf("journal holds %d records, want 1 session record", len(rec.Records))
	}
	out, err := store.DecodeSession(rec.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcome != res.Outcome || out.Rounds != res.Rounds {
		t.Fatalf("journaled outcome %q/%d, run said %q/%d", out.Outcome, out.Rounds, res.Outcome, res.Rounds)
	}
	if len(out.Bids) != len(res.FinalBids) {
		t.Fatalf("journaled %d bids, run had %d", len(out.Bids), len(res.FinalBids))
	}
	for name, bid := range res.FinalBids {
		if out.Bids[name] != bid {
			t.Fatalf("bid %q: journal %v, run %v", name, out.Bids[name], bid)
		}
	}
	if len(out.Awards) == 0 {
		t.Fatal("no awards journaled")
	}
}
