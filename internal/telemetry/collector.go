package telemetry

import (
	"fmt"
	"sync"
	"time"

	"loadbalance/internal/agent"
	"loadbalance/internal/message"
	"loadbalance/internal/prediction"
)

// CollectorConfig parameterises a collector.
type CollectorConfig struct {
	// ShardOf maps every metered customer to its shard index in [0,Shards).
	ShardOf map[string]int
	// Shards is the shard count.
	Shards int
	// RingTicks is the per-shard time-series capacity (how much history the
	// forecasters see); default 64.
	RingTicks int
}

// Collector is the utility-side sink of the metering stream: it ingests
// MeterBatch messages (directly or via its bus Handler), accumulates each
// tick's readings into per-shard running loads, and maintains a ring-buffer
// time series per shard that prediction estimators forecast from. It is safe
// for concurrent use — the bus handler runs on the collector agent's
// goroutine while the live engine reads from its own.
type Collector struct {
	mu      sync.Mutex
	shardOf map[string]int
	rings   []*Ring
	// acc accumulates per-shard energy and reading counts for ticks that are
	// still open (readings may arrive interleaved across batches).
	acc      map[int]*tickAcc
	readings int64
	batches  int64
	rejected int64 // readings from unknown customers
}

// tickAcc is one open tick's accumulation.
type tickAcc struct {
	perShard []float64
	readings int
}

// NewCollector validates the configuration and constructs the collector.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadConfig, cfg.Shards)
	}
	if len(cfg.ShardOf) == 0 {
		return nil, fmt.Errorf("%w: no customers", ErrBadConfig)
	}
	if cfg.RingTicks <= 0 {
		cfg.RingTicks = 64
	}
	c := &Collector{
		shardOf: make(map[string]int, len(cfg.ShardOf)),
		rings:   make([]*Ring, cfg.Shards),
		acc:     make(map[int]*tickAcc),
	}
	for name, s := range cfg.ShardOf {
		if s < 0 || s >= cfg.Shards {
			return nil, fmt.Errorf("%w: customer %q in shard %d of %d", ErrBadConfig, name, s, cfg.Shards)
		}
		c.shardOf[name] = s
	}
	for i := range c.rings {
		r, err := NewRing(cfg.RingTicks)
		if err != nil {
			return nil, err
		}
		c.rings[i] = r
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Collector) Shards() int { return len(c.rings) }

// Ingest merges one batch of readings into the open ticks.
func (c *Collector) Ingest(b message.MeterBatch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches++
	for _, r := range b.Readings {
		shard, ok := c.shardOf[r.Customer]
		if !ok {
			c.rejected++
			continue
		}
		acc, ok := c.acc[r.Tick]
		if !ok {
			acc = &tickAcc{perShard: make([]float64, len(c.rings))}
			c.acc[r.Tick] = acc
		}
		acc.perShard[shard] += r.KWh
		acc.readings++
		c.readings++
	}
	return nil
}

// Handler adapts the collector to the agent runtime: MeterBatch envelopes
// are ingested, everything else is ignored (the collector may share a bus
// with negotiation traffic).
func (c *Collector) Handler() agent.Handler {
	return agent.HandlerFuncs{
		Message: func(rt *agent.Runtime, env message.Envelope) error {
			if env.Kind != message.KindMeterBatch {
				return nil
			}
			p, err := env.Decode()
			if err != nil {
				return err
			}
			return c.Ingest(p.(message.MeterBatch))
		},
	}
}

// ReadingsAt returns how many readings have arrived for a still-open tick.
func (c *Collector) ReadingsAt(tick int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if acc, ok := c.acc[tick]; ok {
		return acc.readings
	}
	return 0
}

// WaitTick blocks until want readings have arrived for the tick or the
// deadline passes — the live engine's barrier between publishing a tick and
// closing it, which keeps the loop deterministic over the asynchronous bus.
func (c *Collector) WaitTick(tick, want int, deadline time.Duration) error {
	limit := time.Now().Add(deadline)
	for {
		if c.ReadingsAt(tick) >= want {
			return nil
		}
		if time.Now().After(limit) {
			return fmt.Errorf("telemetry: tick %d: %d of %d readings after %v", tick, c.ReadingsAt(tick), want, deadline)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// CloseTick finalises a tick: its per-shard energies are pushed into the
// ring series and returned. Closing an unseen tick pushes zeros (a tick in
// which nothing was measured is a measurement of zero, e.g. a total outage).
func (c *Collector) CloseTick(tick int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	perShard := make([]float64, len(c.rings))
	if acc, ok := c.acc[tick]; ok {
		copy(perShard, acc.perShard)
		delete(c.acc, tick)
	}
	for i, v := range perShard {
		c.rings[i].Push(v)
	}
	return perShard
}

// RestoreTick replays one closed tick into the collector during recovery:
// the per-shard energies enter the ring series and the counters advance as
// if the readings had crossed the bus.
func (c *Collector) RestoreTick(perShard []float64, readings, batches int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(perShard) != len(c.rings) {
		return fmt.Errorf("%w: restoring %d shards into %d", ErrBadConfig, len(perShard), len(c.rings))
	}
	for i, v := range perShard {
		c.rings[i].Push(v)
	}
	c.readings += readings
	c.batches += batches
	return nil
}

// RestoreState replaces the collector's series and counters with a
// snapshot's — the starting point recovery replays the journal tail onto.
func (c *Collector) RestoreState(series [][]float64, stats CollectorStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(series) != len(c.rings) {
		return fmt.Errorf("%w: restoring %d shard series into %d", ErrBadConfig, len(series), len(c.rings))
	}
	for i, s := range series {
		r, err := NewRing(c.rings[i].Cap())
		if err != nil {
			return err
		}
		for _, v := range s {
			r.Push(v)
		}
		c.rings[i] = r
	}
	c.readings, c.batches, c.rejected = stats.Readings, stats.Batches, stats.Rejected
	return nil
}

// ShardSeries copies shard i's closed-tick series, oldest first.
func (c *Collector) ShardSeries(i int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rings[i].Series()
}

// ShardLast returns shard i's newest closed-tick energy without copying the
// series — the O(1) read the metrics snapshot takes every tick.
func (c *Collector) ShardLast(i int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rings[i].Last()
}

// ForecastShard feeds shard i's series to a prediction estimator and returns
// the one-tick-ahead forecast of the shard's load.
func (c *Collector) ForecastShard(i int, p prediction.Predictor) (float64, error) {
	series := c.ShardSeries(i)
	if len(series) == 0 {
		return 0, ErrNoData
	}
	return p.Predict(series)
}

// CollectorStats is a snapshot of the ingestion counters.
type CollectorStats struct {
	Readings int64
	Batches  int64
	Rejected int64
}

// Stats returns the cumulative ingestion counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{Readings: c.readings, Batches: c.batches, Rejected: c.rejected}
}
