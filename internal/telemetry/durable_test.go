package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// durableCfg builds the spiked live-grid configuration the durability tests
// share: demand doubles on two shards from tick 4, so every run contains an
// initial negotiation, breach detection and one incremental re-negotiation.
func durableCfg(t *testing.T, n, shards int, seed int64) LiveConfig {
	t.Helper()
	s, err := ElasticFleetScenario(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return LiveConfig{
		Scenario:       s,
		Shards:         shards,
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           seed,
		ShardEvents: map[int][]Event{
			0:          {{StartTick: 4, EndTick: 1 << 20, Factor: 2.5}},
			shards / 2: {{StartTick: 4, EndTick: 1 << 20, Factor: 2.5}},
		},
	}
}

// profileJSON renders the canonical outcome.
func profileJSON(t *testing.T, e *LiveEngine) []byte {
	t.Helper()
	b, err := json.Marshal(e.Profile())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runTicks advances the engine n ticks.
func runTicks(t *testing.T, e *LiveEngine, n int) {
	t.Helper()
	if _, err := e.Run(n); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashReplayByteIdentical is the engine-level recovery
// guarantee: crash a durable live engine at any tick, recover from the data
// directory, finish the run — the final awards, demand factors and measured
// series are byte-identical to an uninterrupted run's.
func TestDurableCrashReplayByteIdentical(t *testing.T) {
	const total = 12
	cfg := durableCfg(t, 24, 4, 7)

	engU, infoU, err := OpenDurable(cfg, DurableConfig{Dir: t.TempDir(), SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if infoU.Recovered {
		t.Fatal("fresh directory reported recovered")
	}
	runTicks(t, engU, total)
	want := profileJSON(t, engU)
	if err := engU.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if engU.Renegotiations() == 0 {
		t.Fatal("reference run never re-negotiated; the spike config is broken")
	}

	// Crash at ticks spanning before, at and after the re-negotiation.
	for _, crashAt := range []int{3, 5, 7} {
		dir := t.TempDir()
		eng1, _, err := OpenDurable(cfg, DurableConfig{Dir: dir, SnapshotEvery: 5})
		if err != nil {
			t.Fatal(err)
		}
		runTicks(t, eng1, crashAt)
		// Crash: tear down telemetry and close the journal without sealing
		// it — on disk this is indistinguishable from the process dying.
		eng1.Stop()
		if err := eng1.Store().Close(); err != nil {
			t.Fatal(err)
		}

		eng2, info, err := OpenDurable(cfg, DurableConfig{Dir: dir, SnapshotEvery: 5})
		if err != nil {
			t.Fatalf("crashAt %d: recover: %v", crashAt, err)
		}
		if !info.Recovered || info.CleanStart {
			t.Fatalf("crashAt %d: info = %+v, want a crash recovery", crashAt, info)
		}
		if info.ResumeTick != crashAt {
			t.Fatalf("crashAt %d: resumed at tick %d", crashAt, info.ResumeTick)
		}
		runTicks(t, eng2, total-crashAt)
		got := profileJSON(t, eng2)
		if err := eng2.Shutdown(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("crashAt %d: recovered run diverged from the uninterrupted run\n got: %s\nwant: %s", crashAt, got, want)
		}
	}
}

// TestDurableTornTailReplaysOneTickEarlier loses the last committed tick to
// a torn write: recovery resumes one tick earlier, the meters re-sample the
// lost tick from the same RNG position, and the final state is still
// byte-identical.
func TestDurableTornTailReplaysOneTickEarlier(t *testing.T) {
	const total = 10
	cfg := durableCfg(t, 16, 4, 11)

	engU, _, err := OpenDurable(cfg, DurableConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, engU, total)
	want := profileJSON(t, engU)
	if err := engU.Shutdown(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	eng1, _, err := OpenDurable(cfg, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, eng1, 7)
	eng1.Stop()
	if err := eng1.Store().Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: the tick-6 record loses its checksum.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, info, err := OpenDurable(cfg, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumeTick != 6 {
		t.Fatalf("resumed at tick %d, want 6 (the torn tick replays live)", info.ResumeTick)
	}
	runTicks(t, eng2, total-6)
	got := profileJSON(t, eng2)
	if err := eng2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("torn-tail recovery diverged\n got: %s\nwant: %s", got, want)
	}
}

// TestDurableSealedResume continues a cleanly shut down grid: recovery
// reports the seal and the run picks up at the next tick.
func TestDurableSealedResume(t *testing.T) {
	cfg := durableCfg(t, 16, 4, 3)
	dir := t.TempDir()
	eng1, _, err := OpenDurable(cfg, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, eng1, 6)
	if err := eng1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	eng2, info, err := OpenDurable(cfg, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Shutdown()
	if !info.Recovered || !info.CleanStart || info.ResumeTick != 6 {
		t.Fatalf("info = %+v, want a clean resume at tick 6", info)
	}
	rep, err := eng2.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tick != 6 {
		t.Fatalf("first tick after resume = %d, want 6", rep.Tick)
	}
}

// TestDurableRejectsMismatchedScenario refuses to replay a journal into a
// differently-parameterised grid.
func TestDurableRejectsMismatchedScenario(t *testing.T) {
	cfg := durableCfg(t, 16, 4, 3)
	dir := t.TempDir()
	eng, _, err := OpenDurable(cfg, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, eng, 2)
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}

	other := durableCfg(t, 16, 4, 99) // different seed, different run
	if _, _, err := OpenDurable(other, DurableConfig{Dir: dir}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mismatched scenario error = %v, want ErrBadConfig", err)
	}
}

// TestDurableStoreMetricsAdvance checks the journal counters the /metrics
// endpoint exports actually move with the loop.
func TestDurableStoreMetricsAdvance(t *testing.T) {
	cfg := durableCfg(t, 16, 4, 5)
	eng, _, err := OpenDurable(cfg, DurableConfig{Dir: t.TempDir(), SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, eng, 7)
	st := eng.Store().Stats()
	if st.Appends < 10 { // registration + session + 7 ticks
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Snapshots != 2 { // after ticks 3 and 6
		t.Fatalf("snapshots = %d, want 2", st.Snapshots)
	}
	if st.SnapshotTime.IsZero() {
		t.Fatal("snapshot time not recorded")
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
