package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loadbalance/internal/store"
	"loadbalance/internal/telemetry"
)

// liveCfg is the seeded spiked scenario the replica tests run.
func liveCfg(t *testing.T, n, shards, ticks int) telemetry.LiveConfig {
	t.Helper()
	s, err := telemetry.ElasticFleetScenario(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return telemetry.LiveConfig{
		Scenario:       s,
		Shards:         shards,
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           11,
		ShardEvents: map[int][]telemetry.Event{
			0: {{StartTick: ticks / 3, EndTick: ticks + 1, Factor: 2.5}},
		},
	}
}

// fastTimings are test-speed sender/receiver cadences.
func fastSender(dir, addr string) SenderConfig {
	return SenderConfig{Dir: dir, Addr: addr, Heartbeat: 25 * time.Millisecond, Poll: 5 * time.Millisecond}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalReplicaByteIdentical streams a primary's journal to a
// journal-only follower over TCP: the replica's record stream must be
// byte-identical to the primary's, including a propagated seal.
func TestJournalReplicaByteIdentical(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, _, err := store.Open(primDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	repl, _, err := store.Open(replDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tap := &StoreTap{St: repl}
	rx, err := StartReceiver(ReceiverConfig{ID: "r0", Addrs: []string{sender.Addr()}, FailoverTimeout: time.Second, Redial: 20 * time.Millisecond}, tap)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{float64(i)}, Readings: 4, Batches: 1})); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			if err := prim.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := prim.Seal(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "seal to replicate", func() bool { return rx.Status().Sealed })
	if got := tap.LastSeq(); got != n+1 { // + the seal record
		t.Fatalf("replica at seq %d, want %d", got, n+1)
	}
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-identical record streams.
	want, err := store.OpenTail(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	got, err := store.OpenTail(replDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	var wantBytes, gotBytes []byte
	for {
		b, err := want.Next(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if b.Count == 0 {
			break
		}
		wantBytes = append(wantBytes, b.Frames...)
	}
	for {
		b, err := got.Next(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if b.Count == 0 {
			break
		}
		gotBytes = append(gotBytes, b.Frames...)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatalf("replica journal diverged: %d bytes vs %d", len(gotBytes), len(wantBytes))
	}
	// The receiver observed the clean shutdown.
	st := rx.Status()
	if st.Resyncs != 0 {
		t.Fatalf("lossless local stream needed %d resyncs", st.Resyncs)
	}
}

// TestSnapshotBootstrapAfterPrune: a standby subscribing below the primary's
// pruned journal head is bootstrapped from the latest snapshot, then tailed.
func TestSnapshotBootstrapAfterPrune(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, _, err := store.Open(primDir, store.Options{SegmentBytes: 1024, KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	// Fill several segments, snapshot twice so pruning moves the journal head.
	for i := 0; i < 300; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Snapshot([]byte("app-state-1")); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 400; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Snapshot([]byte("app-state-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenTail(primDir, 0); err == nil {
		t.Fatal("test precondition failed: journal head did not move")
	}

	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	repl, _, err := store.Open(replDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	tap := &StoreTap{St: repl}
	rx, err := StartReceiver(ReceiverConfig{ID: "r0", Addrs: []string{sender.Addr()}, FailoverTimeout: time.Second, Redial: 20 * time.Millisecond}, tap)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	waitFor(t, 5*time.Second, "snapshot bootstrap + tail", func() bool { return tap.LastSeq() == 400 })
	st := rx.Status()
	if st.Snapshots != 1 {
		t.Fatalf("receiver applied %d snapshots, want 1", st.Snapshots)
	}
	stats := repl.Stats()
	if stats.SnapshotSeq != 400 {
		t.Fatalf("replica snapshot at %d, want 400", stats.SnapshotSeq)
	}
	// The replicated snapshot blob is the primary's newest.
	_, blob, ok := store.LatestSnapshotData(replDir)
	if !ok || string(blob) != "app-state-2" {
		t.Fatalf("replica snapshot blob = %q", blob)
	}
	// New appends keep flowing after the bootstrap.
	if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: 400, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
		t.Fatal(err)
	}
	if err := prim.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "post-bootstrap tail", func() bool { return tap.LastSeq() == 401 })
}

// TestFallenBehindFollowerFailsTerminally: a follower that holds local state
// but whose position was pruned out of the primary's journal must stop with
// a loud terminal error — not livelock re-shipping the snapshot forever, and
// never fork its journal by bootstrapping over existing state.
func TestFallenBehindFollowerFailsTerminally(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, _, err := store.Open(primDir, store.Options{SegmentBytes: 1024, KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	// The follower replicates an early prefix, then goes offline.
	for i := 0; i < 20; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Commit(); err != nil {
		t.Fatal(err)
	}
	repl, _, err := store.Open(replDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	tap := &StoreTap{St: repl}
	tl, err := store.OpenTail(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		batch, err := tl.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Count == 0 {
			break
		}
		if _, _, err := tap.ApplyFrames(batch.FirstSeq, batch.Frames); err != nil {
			t.Fatal(err)
		}
	}
	tl.Close()
	if tap.LastSeq() != 20 {
		t.Fatalf("offline follower at seq %d, want 20", tap.LastSeq())
	}

	// Meanwhile the primary moves on far enough that pruning erases the
	// follower's position.
	for i := 20; i < 320; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Snapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	for i := 320; i < 400; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Snapshot([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenTail(primDir, 20); err == nil {
		t.Fatal("test precondition failed: follower position not pruned")
	}

	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	rx, err := StartReceiver(ReceiverConfig{ID: "r0", Addrs: []string{sender.Addr()}, FailoverTimeout: 2 * time.Second, Redial: 20 * time.Millisecond}, tap)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	deadline := time.Now().Add(5 * time.Second)
	var sawFatal bool
	for !sawFatal {
		select {
		case ev := <-rx.Events():
			if ev.Kind == EventFallenBehind {
				sawFatal = true
			}
		case <-time.After(time.Until(deadline)):
			t.Fatalf("receiver never reported EventFallenBehind (status %+v)", rx.Status())
		}
	}
	st := rx.Status()
	if st.Fatal == "" || !strings.Contains(st.Fatal, "fallen behind") {
		t.Fatalf("status.Fatal = %q, want a fallen-behind diagnosis", st.Fatal)
	}
	// The follower's journal was not forked: still exactly the prefix.
	if tap.LastSeq() != 20 {
		t.Fatalf("follower journal moved to seq %d; a fallen-behind follower must not be mutated", tap.LastSeq())
	}
}

// TestDivergedFollowerFailsTerminally: a follower whose journal is ahead of
// the primary's (an old primary rejoining with an unreplicated tail) must be
// told so — the sender answers with a head-position heartbeat instead of
// silence, and the receiver stops terminally rather than mistaking the
// rejection for a dead primary and promoting into split brain.
func TestDivergedFollowerFailsTerminally(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, _, err := store.Open(primDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	for i := 0; i < 5; i++ {
		if err := prim.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{1}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Commit(); err != nil {
		t.Fatal(err)
	}

	// The "old primary": a journal with records beyond the new primary's.
	repl, _, err := store.Open(replDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	for i := 0; i < 10; i++ {
		if err := repl.Append(store.NewTickRecord(store.TickCheckpoint{Tick: i, Shard: []float64{2}, Readings: 1, Batches: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := repl.Commit(); err != nil {
		t.Fatal(err)
	}

	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	tap := &StoreTap{St: repl}
	rx, err := StartReceiver(ReceiverConfig{ID: "old-primary", Addrs: []string{sender.Addr()}, FailoverTimeout: 2 * time.Second, Redial: 20 * time.Millisecond}, tap)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-rx.Events():
			if ev.Kind == EventDiverged {
				st := rx.Status()
				if !strings.Contains(st.Fatal, "diverged") {
					t.Fatalf("status.Fatal = %q, want a divergence diagnosis", st.Fatal)
				}
				if tap.LastSeq() != 10 {
					t.Fatalf("diverged follower mutated to seq %d", tap.LastSeq())
				}
				return
			}
			if ev.Kind == EventPrimaryDead {
				t.Fatal("diverged follower declared the healthy primary dead")
			}
		case <-deadline:
			t.Fatalf("receiver never reported EventDiverged (status %+v)", rx.Status())
		}
	}
}

// TestNeverContactedStandbyNeverDeclaresDeath: a standby that has never
// reached any primary (wrong address, primary still starting) must keep
// dialing — not declare a primary it never saw dead and promote a fork over
// a possibly healthy grid head.
func TestNeverContactedStandbyNeverDeclaresDeath(t *testing.T) {
	repl, _, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	rx, err := StartReceiver(ReceiverConfig{
		ID:              "r0",
		Addrs:           []string{"127.0.0.1:1"}, // nothing listens here
		FailoverTimeout: 100 * time.Millisecond,
		Redial:          10 * time.Millisecond,
	}, &StoreTap{St: repl})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	select {
	case ev := <-rx.Events():
		t.Fatalf("receiver emitted %v without ever reaching a primary", ev.Kind)
	case <-time.After(600 * time.Millisecond): // 6× the failover timeout
	}
}

// TestHotStandbyFailoverByteIdentical is the package-level failover story: a
// live durable primary streams to a hot standby over TCP; the primary is
// killed mid-run (no seal); the standby detects the silence, promotes, and
// finishes the run byte-identical to an uninterrupted single-node run.
func TestHotStandbyFailoverByteIdentical(t *testing.T) {
	const (
		n      = 10
		shards = 2
		ticks  = 16
		crash  = 8
	)
	base := t.TempDir()

	// Reference: uninterrupted single-node run.
	ref, _, err := telemetry.OpenDurable(liveCfg(t, n, shards, ticks), telemetry.DurableConfig{Dir: filepath.Join(base, "ref")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Primary with a replication sender.
	primDir := filepath.Join(base, "primary")
	prim, _, err := telemetry.OpenDurable(liveCfg(t, n, shards, ticks), telemetry.DurableConfig{Dir: primDir})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}

	sb, _, err := StartStandby(StandbyConfig{
		ID:              "r0",
		PrimaryAddrs:    []string{sender.Addr()},
		Live:            liveCfg(t, n, shards, ticks),
		Durable:         telemetry.DurableConfig{Dir: filepath.Join(base, "standby")},
		FailoverTimeout: 300 * time.Millisecond,
		Redial:          20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	outcome := make(chan Outcome, 1)
	runErr := make(chan error, 1)
	go func() {
		o, err := sb.Run(context.Background())
		outcome <- o
		runErr <- err
	}()

	for i := 0; i < crash; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the stream catch up, then kill the primary: engine torn down,
	// journal closed unsealed, listener gone — exactly a process death.
	waitFor(t, 5*time.Second, "standby to catch up", func() bool { return sb.Eng.Tick() == crash })
	prim.Stop()
	if err := prim.Store().Close(); err != nil {
		t.Fatal(err)
	}
	sender.Close()

	var o Outcome
	select {
	case o = <-outcome:
	case <-time.After(10 * time.Second):
		t.Fatal("standby never decided")
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !o.Promoted || o.Engine == nil {
		t.Fatalf("outcome = %+v, want promotion", o)
	}
	if o.Promotion.ResumeTick != crash {
		t.Fatalf("promoted engine resumes at tick %d, want %d", o.Promotion.ResumeTick, crash)
	}
	if _, err := o.Engine.Run(ticks - o.Promotion.ResumeTick); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(o.Engine.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Engine.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted standby diverged from the uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// TestLowestIDWinsPromotion pins the deterministic promotion rule, and that
// a standby losing the tiebreak does NOT promote on primary death.
func TestLowestIDWinsPromotion(t *testing.T) {
	tests := []struct {
		self  string
		peers []string
		want  bool
	}{
		{self: "r0", peers: nil, want: true},
		{self: "r0", peers: []string{"r0", "r1", "r2"}, want: true},
		{self: "r1", peers: []string{"r0", "r1", "r2"}, want: false},
		{self: "r2", peers: []string{"r0", "r1"}, want: false},
		{self: "a", peers: []string{"b", "c"}, want: true},
	}
	for _, tt := range tests {
		if got := Promotable(tt.self, tt.peers); got != tt.want {
			t.Errorf("Promotable(%q, %v) = %v, want %v", tt.self, tt.peers, got, tt.want)
		}
	}

	// Live check: the higher-id standby of a two-standby set observes the
	// primary's death and keeps waiting instead of promoting.
	const (
		nCust  = 6
		shards = 2
		ticks  = 8
	)
	base := t.TempDir()
	primDir := filepath.Join(base, "primary")
	prim, _, err := telemetry.OpenDurable(liveCfg(t, nCust, shards, ticks), telemetry.DurableConfig{Dir: primDir})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := StartSender(fastSender(primDir, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := StartStandby(StandbyConfig{
		ID:              "r1",
		Peers:           []string{"r0", "r1"},
		PrimaryAddrs:    []string{sender.Addr()},
		Live:            liveCfg(t, nCust, shards, ticks),
		Durable:         telemetry.DurableConfig{Dir: filepath.Join(base, "standby1")},
		FailoverTimeout: 200 * time.Millisecond,
		Redial:          20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer close(done)
		o, err := sb.Run(ctx)
		if err == nil || o.Promoted {
			t.Errorf("losing standby returned (%+v, %v), want to keep waiting until cancelled", o, err)
		}
	}()

	for i := 0; i < 3; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "standby to catch up", func() bool { return sb.Eng.Tick() == 3 })
	prim.Stop()
	if err := prim.Store().Close(); err != nil {
		t.Fatal(err)
	}
	sender.Close()

	// Give it several failover timeouts' worth of opportunity to misbehave.
	select {
	case <-done:
		t.Fatal("losing standby stopped following")
	case <-time.After(time.Second):
	}
	cancel()
	<-done
}

// TestReplicaMetricsRender smoke-tests the replica_* exposition text.
func TestReplicaMetricsRender(t *testing.T) {
	var b strings.Builder
	WriteSenderMetrics(&b, SenderStatus{
		Standbys: []StandbyStatus{{ID: "r0", ShippedSeq: 10, AckedSeq: 8, LagRecords: 2, LastAck: time.Now()}},
		Batches:  3, Records: 10, Bytes: 512,
	})
	out := b.String()
	for _, want := range []string{
		"replica_role 0",
		"replica_standbys 1",
		"replica_records_shipped_total 10",
		`replica_standby_lag_records{standby="r0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sender metrics missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WriteReceiverMetrics(&b, ReceiverStatus{ID: "r0", Connected: true, AppliedSeq: 8, Records: 10, LastContact: time.Now()})
	out = b.String()
	for _, want := range []string{
		"replica_role 1",
		"replica_source_up 1",
		"replica_applied_seq 8",
		"replica_records_applied_total 10",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("receiver metrics missing %q:\n%s", want, out)
		}
	}
}
