package bus

import (
	"fmt"
	"sort"
	"sync"

	"loadbalance/internal/message"
)

// Remote is a Bus whose agents live behind TCP connections to a Server:
// Register dials the server as the named agent, so every registered agent
// owns its own connection. Agent code (internal/agent.Runtime, the cluster
// concentrators) runs unchanged against it — the substrate is the only
// difference — which is how a concentrator tier is placed in a separate OS
// process from the Utility Agent it negotiates with.
type Remote struct {
	addrs []string
	cfg   ClientConfig

	mu      sync.Mutex
	clients map[string]*Client
	closed  bool
}

var _ Bus = (*Remote)(nil)

// NewRemote returns a Bus view of the server at addr with default tuning.
func NewRemote(addr string) *Remote {
	return NewRemoteConfig(addr, ClientConfig{})
}

// NewRemoteConfig returns a Bus view with explicit connection tuning.
func NewRemoteConfig(addr string, cfg ClientConfig) *Remote {
	return NewRemoteList([]string{addr}, cfg)
}

// NewRemoteList returns a Bus view over a dial list: each Register tries the
// addresses in order until one answers — the high-availability form, where
// the list names the primary grid head first and its standbys after it.
func NewRemoteList(addrs []string, cfg ClientConfig) *Remote {
	return &Remote{addrs: append([]string(nil), addrs...), cfg: cfg, clients: make(map[string]*Client)}
}

// Register implements Bus: it dials the server as name and returns the
// connection's inbox. The handshake is synchronous, so a name the server
// rejects (duplicate, say) fails here.
func (r *Remote) Register(name string, inboxSize int) (<-chan message.Envelope, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownAgent)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := r.clients[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAgent, name)
	}
	r.mu.Unlock()

	cfg := r.cfg
	if inboxSize > 0 {
		cfg.InboxSize = inboxSize
	}
	cli, err := DialListConfig(r.addrs, name, cfg)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		go cli.Close()
		return nil, ErrClosed
	}
	if _, ok := r.clients[name]; ok {
		go cli.Close()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAgent, name)
	}
	r.clients[name] = cli
	return cli.Inbox(), nil
}

// Unregister implements Bus: it closes the agent's connection, which closes
// its inbox.
func (r *Remote) Unregister(name string) {
	r.mu.Lock()
	cli, ok := r.clients[name]
	delete(r.clients, name)
	r.mu.Unlock()
	if ok {
		cli.Close()
	}
}

// Send implements Bus: the envelope travels over its sender's connection;
// routing (including broadcast for an empty To) happens on the server's
// bridged bus.
func (r *Remote) Send(env message.Envelope) error {
	r.mu.Lock()
	cli, ok := r.clients[env.From]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q is not registered here", ErrUnknownAgent, env.From)
	}
	return cli.Send(env)
}

// Agents implements Bus: the locally registered agent names, sorted. Remote
// peers on the server's bus are not visible from here.
func (r *Remote) Agents() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clients))
	for n := range r.clients {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats sums the traffic counters across the live connections.
func (r *Remote) Stats() ClientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total ClientStats
	for _, cli := range r.clients {
		s := cli.Stats()
		total.Received += s.Received
		total.Dropped += s.Dropped
		total.Sent += s.Sent
	}
	return total
}

// Close tears down every connection; subsequent Registers fail.
func (r *Remote) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	clients := make([]*Client, 0, len(r.clients))
	for n, c := range r.clients {
		clients = append(clients, c)
		delete(r.clients, n)
	}
	r.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
