package desiremodel

import (
	"fmt"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
)

// This file assembles Figure 4: the Customer Agent's own process control —
// "determine general negotiation strategies" (a general resource allocation
// strategy for its Resource Consumer Agents and a general bidding strategy
// toward the Utility Agent) plus "evaluate processes".

// Attitude constants of sort "attitude": the customer profile that drives
// strategy selection. The paper: models of consumers "need to be adaptive
// and flexible" since customers differ in the price/risk they accept.
const (
	AttitudeEager    = "eager"    // wants the deal now → greedy bidding
	AttitudeCautious = "cautious" // concedes a step at a time → incremental
	AttitudePatient  = "patient"  // waits for a premium → holdout
)

// Strategy and allocation constants.
const (
	BidGreedy      = "greedy"
	BidIncremental = "incremental"
	BidHoldout     = "holdout"

	AllocCheapestFirst = "cheapest_comfort_first"
	AllocProportional  = "proportional"
)

// caOPCOntology declares the Figure 4 information types.
func caOPCOntology() (*kb.Ontology, error) {
	o := kb.NewOntology()
	steps := []error{
		o.DeclareSort("attitude", kb.SortAny),
		o.DeclareSort("bidstrategy", kb.SortAny),
		o.DeclareSort("allocstrategy", kb.SortAny),
		o.DeclareConst(AttitudeEager, "attitude"),
		o.DeclareConst(AttitudeCautious, "attitude"),
		o.DeclareConst(AttitudePatient, "attitude"),
		o.DeclareConst(BidGreedy, "bidstrategy"),
		o.DeclareConst(BidIncremental, "bidstrategy"),
		o.DeclareConst(BidHoldout, "bidstrategy"),
		o.DeclareConst(AllocCheapestFirst, "allocstrategy"),
		o.DeclareConst(AllocProportional, "allocstrategy"),

		o.DeclarePred("customer_attitude", "attitude"),
		o.DeclarePred("devices_heterogeneous", kb.SortNumber), // 1 when comfort costs differ
		o.DeclarePred("bidding_strategy", "bidstrategy"),
		o.DeclarePred("allocation_strategy", "allocstrategy"),
		// Evaluation.
		o.DeclarePred("award_received", kb.SortNumber), // 1/0
		o.DeclarePred("surplus", kb.SortNumber),        // reward − requirement
		o.DeclarePred("bidding_verdict", kb.SortString),
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("desiremodel: ca opc ontology: %w", err)
		}
	}
	return o, nil
}

// caStrategyRules encodes "determine general negotiation strategies".
func caStrategyRules() (*kb.Base, error) {
	return kb.NewBase("determine_general_negotiation_strategies",
		kb.Rule{
			Name: "eager_bids_greedy",
			If:   []kb.Literal{kb.Pos(kb.A("customer_attitude", kb.C(AttitudeEager)))},
			Then: []kb.Atom{kb.A("bidding_strategy", kb.C(BidGreedy))},
		},
		kb.Rule{
			Name: "cautious_bids_incrementally",
			If:   []kb.Literal{kb.Pos(kb.A("customer_attitude", kb.C(AttitudeCautious)))},
			Then: []kb.Atom{kb.A("bidding_strategy", kb.C(BidIncremental))},
		},
		kb.Rule{
			Name: "patient_holds_out",
			If:   []kb.Literal{kb.Pos(kb.A("customer_attitude", kb.C(AttitudePatient)))},
			Then: []kb.Atom{kb.A("bidding_strategy", kb.C(BidHoldout))},
		},
		kb.Rule{
			Name: "heterogeneous_devices_shed_cheapest_first",
			If:   []kb.Literal{kb.Pos(kb.A("devices_heterogeneous", kb.N(1)))},
			Then: []kb.Atom{kb.A("allocation_strategy", kb.C(AllocCheapestFirst))},
		},
		kb.Rule{
			Name: "homogeneous_devices_shed_proportionally",
			If:   []kb.Literal{kb.Pos(kb.A("devices_heterogeneous", kb.N(0)))},
			Then: []kb.Atom{kb.A("allocation_strategy", kb.C(AllocProportional))},
		},
	)
}

// caEvaluationRules encodes "evaluate processes": a bidding process that
// ended with an award and non-negative surplus succeeded.
func caEvaluationRules() (*kb.Base, error) {
	return kb.NewBase("evaluate_processes",
		kb.Rule{
			Name: "award_with_surplus_is_good",
			If: []kb.Literal{
				kb.Pos(kb.A("award_received", kb.N(1))),
				kb.Pos(kb.A("surplus", kb.V("S"))),
			},
			Guards: []kb.Guard{{Op: kb.OpGeq, Left: kb.V("S"), Right: kb.N(0)}},
			Then:   []kb.Atom{kb.A("bidding_verdict", kb.S("satisfactory"))},
		},
		kb.Rule{
			Name: "award_below_requirement_is_bad",
			If: []kb.Literal{
				kb.Pos(kb.A("award_received", kb.N(1))),
				kb.Pos(kb.A("surplus", kb.V("S"))),
			},
			Guards: []kb.Guard{{Op: kb.OpLt, Left: kb.V("S"), Right: kb.N(0)}},
			Then:   []kb.Atom{kb.A("bidding_verdict", kb.S("reconsider_strategy"))},
		},
		kb.Rule{
			Name: "no_award_means_missed_deal",
			If: []kb.Literal{
				kb.Pos(kb.A("award_received", kb.N(0))),
			},
			Then: []kb.Atom{kb.A("bidding_verdict", kb.S("no_deal"))},
		},
	)
}

// NewCAOwnProcessControl assembles Figure 4.
func NewCAOwnProcessControl() (*desire.Composed, error) {
	ont, err := caOPCOntology()
	if err != nil {
		return nil, err
	}
	strat, err := caStrategyRules()
	if err != nil {
		return nil, err
	}
	eval, err := caEvaluationRules()
	if err != nil {
		return nil, err
	}
	opc := desire.NewComposed("own_process_control", ont, 0)
	children := []desire.Component{
		desire.NewReasoning("determine_general_negotiation_strategies", ont, strat,
			"bidding_strategy", "allocation_strategy"),
		desire.NewReasoning("evaluate_processes", ont, eval, "bidding_verdict"),
	}
	for _, c := range children {
		if err := opc.AddChild(c); err != nil {
			return nil, err
		}
	}
	links := []desire.Link{
		{Name: "profile_in", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "determine_general_negotiation_strategies", Port: desire.In}},
		{Name: "results_in", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "evaluate_processes", Port: desire.In}},
		{Name: "strategies_out", From: desire.Endpoint{Component: "determine_general_negotiation_strategies", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "verdict_out", From: desire.Endpoint{Component: "evaluate_processes", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
	}
	for _, l := range links {
		if err := opc.AddLink(l); err != nil {
			return nil, err
		}
	}
	err = opc.SetControl([]desire.Step{
		{Transfer: "profile_in"},
		{Activate: "determine_general_negotiation_strategies"},
		{Transfer: "results_in"},
		{Activate: "evaluate_processes"},
		{Transfer: "strategies_out"},
		{Transfer: "verdict_out"},
	})
	if err != nil {
		return nil, err
	}
	return opc, nil
}
