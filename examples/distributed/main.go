// Distributed runs the negotiation over real TCP on localhost: the Utility
// Agent behind a bus server, and every Customer Agent as a TCP client that
// decodes announcements and ships bids back over its own connection — the
// deployment shape the paper's "large open distributed industrial systems"
// discussion targets. (cmd/gridd does the same across OS processes.)
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/sim"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenario, err := core.PaperScenario()
	if err != nil {
		return err
	}

	// Server side: a local bus bridged onto TCP.
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return err
	}
	defer inner.Close()
	srv, err := bus.ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("utility agent daemon on %s\n", srv.Addr())

	// Client side: each customer dials in and reacts from its own
	// goroutine, exactly as a separate process would.
	var wg sync.WaitGroup
	for _, spec := range scenario.Customers {
		ca, err := customeragent.New(spec.Name, spec.Prefs, spec.Strategy)
		if err != nil {
			return err
		}
		cli, err := bus.Dial(srv.Addr(), spec.Name)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(name string, ca *customeragent.Agent, cli *bus.Client) {
			defer wg.Done()
			defer cli.Close()
			for env := range cli.Inbox() {
				reply, ok, err := ca.React(env)
				if err != nil {
					log.Printf("%s: %v", name, err)
					continue
				}
				if ok {
					out, err := message.NewEnvelope(name, env.From, env.Session, reply)
					if err != nil {
						log.Printf("%s: %v", name, err)
						return
					}
					if err := cli.Send(out); err != nil {
						return
					}
				}
				if env.Kind == message.KindSessionEnd {
					return
				}
			}
		}(spec.Name, ca, cli)
	}

	// Wait until all ten customers are bridged onto the bus.
	for len(inner.Agents()) < len(scenario.Customers) {
		time.Sleep(5 * time.Millisecond)
	}

	ua, err := utilityagent.New(utilityagent.Config{
		SessionID:    scenario.SessionID,
		Window:       scenario.Window,
		NormalUse:    scenario.NormalUse,
		Loads:        scenario.Loads(),
		Method:       utilityagent.MethodRewardTable,
		Params:       scenario.Params,
		InitialSlope: scenario.InitialSlope,
		RoundTimeout: 2 * time.Second,
	})
	if err != nil {
		return err
	}
	rt, err := agentrt.Start("ua", inner, ua, 64)
	if err != nil {
		return err
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		wg.Wait() // all clients saw the session end
		full := &core.Result{Result: res, Bus: inner.Stats()}
		fmt.Print(sim.RenderResult(full))
		fmt.Println("\nall customer connections closed cleanly")
		return nil
	case <-time.After(time.Minute):
		return fmt.Errorf("negotiation timed out")
	}
}
